#include "src/workloads/fileserver.h"

#include "src/kernel/syscalls.h"

namespace erebor {

namespace {

struct ServerState {
  ServerKind kind = ServerKind::kNginx;
  uint64_t file_bytes = 0;
  uint64_t requests = 0;
  uint64_t completed = 0;
  // Nginx reads in 16 KiB buffers; the SSH channel packetizes at 4 KiB, so it makes
  // 4x the syscalls per byte (why the paper sees a larger OpenSSH reduction).
  uint64_t chunk = 16 * 1024;
  bool done = false;
  bool failed = false;
  std::string error;
  Cycles cycles_used = 0;
  int phase = 0;
  Vaddr buffer = 0;
  int fd = -1;

  // Crypto cost for the OpenSSH-style server: ~6 cycles/byte (AES-NI-ish).
  static constexpr Cycles kCryptoCyclesPerByteX100 = 600;
};

Status ReopenFile(SyscallContext& ctx, ServerState& s, bool create) {
  const std::string path = "served.bin";
  EREBOR_RETURN_IF_ERROR(ctx.WriteUser(
      s.buffer, reinterpret_cast<const uint8_t*>(path.data()), path.size()));
  EREBOR_ASSIGN_OR_RETURN(const uint64_t fd,
                          ctx.Syscall(sys::kOpen, s.buffer, path.size(), create ? 1 : 0));
  s.fd = static_cast<int>(fd);
  return OkStatus();
}

ProgramFn MakeServerProgram(std::shared_ptr<ServerState> state) {
  return [state](SyscallContext& ctx) -> StepOutcome {
    ServerState& s = *state;
    auto fail = [&](const Status& st) {
      s.failed = true;
      s.error = st.ToString();
      s.done = true;
      return StepOutcome::kExited;
    };

    if (s.phase == 0) {
      // Setup: mmap a transfer buffer and create the served file.
      auto buf = ctx.task().aspace->CreateVma(
          PageAlignUp(s.chunk) + 2 * kPageSize,
          pte::kPresent | pte::kUser | pte::kWritable | pte::kNoExecute, VmaKind::kAnon);
      if (!buf.ok()) {
        return fail(buf.status());
      }
      s.buffer = *buf;
      Status st = ReopenFile(ctx, s, true);
      if (!st.ok()) {
        return fail(st);
      }
      // Populate the file in chunk-sized writes.
      Bytes junk(s.chunk, 0x5A);
      for (uint64_t off = 0; off < s.file_bytes; off += s.chunk) {
        const uint64_t n = std::min(s.chunk, s.file_bytes - off);
        st = ctx.WriteUser(s.buffer + kPageSize, junk.data(), n);
        if (!st.ok()) {
          return fail(st);
        }
        auto w = ctx.Syscall(sys::kWrite, s.fd, s.buffer + kPageSize, n);
        if (!w.ok()) {
          return fail(w.status());
        }
      }
      st = ctx.Syscall(sys::kClose, s.fd).status();
      if (!st.ok()) {
        return fail(st);
      }
      s.phase = 1;
      return StepOutcome::kYield;
    }

    // One request per slice: accept -> open -> chunked read (+ crypto for ssh) ->
    // net send of a summary frame -> close.
    if (s.completed < s.requests) {
      const Cycles before = ctx.cpu().cycles().now();
      ctx.Compute(25'000);  // request parsing / session handling (mode-independent)
      Status st = ReopenFile(ctx, s, false);
      if (!st.ok()) {
        return fail(st);
      }
      uint64_t transferred = 0;
      while (transferred < s.file_bytes) {
        auto r = ctx.Syscall(sys::kRead, s.fd, s.buffer + kPageSize, s.chunk);
        if (!r.ok()) {
          return fail(r.status());
        }
        if (*r == 0) {
          break;
        }
        if (s.kind == ServerKind::kOpenSsh) {
          // Encrypt the chunk: one real pass over the bytes + charged cipher cost.
          auto page = ctx.PagePtr(s.buffer + kPageSize, true);
          if (page.ok()) {
            uint8_t x = 0x3C;
            for (uint64_t i = 0; i < std::min<uint64_t>(*r, kPageSize); ++i) {
              (*page)[i] ^= x;
              x = static_cast<uint8_t>(x * 5 + 1);
            }
          }
          ctx.Compute(*r * ServerState::kCryptoCyclesPerByteX100 / 100);
        }
        transferred += *r;
        if (!ctx.Poll()) {
          s.done = true;
          return StepOutcome::kExited;
        }
      }
      // Send a transfer-complete frame to the client over the virtio net path.
      uint8_t frame[16];
      StoreLe64(frame, s.completed);
      StoreLe64(frame + 8, transferred);
      st = ctx.WriteUser(s.buffer, frame, sizeof(frame));
      if (!st.ok()) {
        return fail(st);
      }
      (void)ctx.Syscall(sys::kSendto, s.buffer, sizeof(frame));
      st = ctx.Syscall(sys::kClose, s.fd).status();
      if (!st.ok()) {
        return fail(st);
      }
      ++s.completed;
      s.cycles_used += ctx.cpu().cycles().now() - before;
      return StepOutcome::kYield;
    }
    s.done = true;
    return StepOutcome::kExited;
  };
}

}  // namespace

std::vector<uint64_t> FileServerSizes() {
  return {1ull << 10, 4ull << 10, 16ull << 10, 64ull << 10, 256ull << 10,
          1ull << 20, 4ull << 20, 16ull << 20};
}

StatusOr<FileServerResult> RunFileServer(ServerKind kind, SimMode mode,
                                         uint64_t file_bytes, uint64_t requests,
                                         const RunnerOptions& options) {
  WorldConfig config;
  config.mode = mode;
  config.machine.num_cpus = options.num_cpus;
  // The 16 MiB file sweep needs more guest memory than the RunnerOptions
  // default; keep the historical 256 MiB sizing regardless of the option.
  config.machine.memory_frames = 64 * 1024;
  World world(config);
  EREBOR_RETURN_IF_ERROR(world.Boot());

  auto state = std::make_shared<ServerState>();
  state->kind = kind;
  state->file_bytes = file_bytes;
  state->requests = requests;
  if (kind == ServerKind::kOpenSsh) {
    state->chunk = 2 * 1024;
  }

  EREBOR_RETURN_IF_ERROR(
      world.LaunchProcess("fileserver", MakeServerProgram(state)).status());
  EREBOR_RETURN_IF_ERROR(world.RunUntil([&] { return state->done; }, 50'000'000));
  if (state->failed) {
    return InternalError("fileserver: " + state->error);
  }

  FileServerResult result;
  result.kind = kind;
  result.file_bytes = file_bytes;
  result.requests = state->completed;
  result.total_cycles = state->cycles_used;
  return result;
}

}  // namespace erebor
