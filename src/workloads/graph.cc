#include "src/workloads/graph.h"

#include <algorithm>
#include <functional>

#include "src/common/rng.h"

namespace erebor {

namespace {
struct GraphRun {
  bool have_input = false;
  bool csr_built = false;
  uint32_t num_nodes = 0;
  uint32_t num_edges = 0;
  // Confined-memory arrays (VAs).
  Vaddr row_ptr = 0;    // u32[num_nodes + 1]
  Vaddr col_idx = 0;    // u32[num_edges]
  Vaddr rank = 0;       // u64 fixed-point [num_nodes]
  Vaddr next_rank = 0;  // u64 [num_nodes]
  Vaddr out_degree = 0; // u32 [num_nodes]
  uint32_t iteration = 0;
  uint32_t next_chunk = 0;   // node-range work queue
  uint32_t chunks_done = 0;
  uint32_t total_chunks = 0;
  bool done = false;
  EagainBackoff input_backoff;  // bounded wait for the client graph
};

constexpr uint64_t kFixedOne = 1ull << 32;
constexpr uint32_t kNodesPerChunk = 2048;
constexpr Cycles kCyclesPerEdge = 26;
}  // namespace

LibosManifest GraphWorkload::Manifest() const {
  LibosManifest manifest;
  manifest.name = "graphchi";
  manifest.heap_bytes = 8ull << 20;  // (paper: 2 GB confined, scaled)
  manifest.num_threads = params_.threads;
  return manifest;
}

Bytes GraphWorkload::MakeClientInput(uint64_t seed) const {
  const EdgeList graph =
      GeneratePowerLawGraph(params_.num_nodes, params_.num_edges, seed * 97 + 3);
  Bytes input(8 + graph.edges.size() * 8);
  StoreLe32(input.data(), graph.num_nodes);
  StoreLe32(input.data() + 4, static_cast<uint32_t>(graph.edges.size()));
  for (size_t i = 0; i < graph.edges.size(); ++i) {
    StoreLe32(input.data() + 8 + 8 * i, graph.edges[i].first);
    StoreLe32(input.data() + 12 + 8 * i, graph.edges[i].second);
  }
  return input;
}

ProgramFn GraphWorkload::MakeProgram(std::shared_ptr<AppState> state) {
  auto run = std::make_shared<GraphRun>();
  const GraphParams params = params_;

  // Helpers for typed confined-memory access via page pointers. All arrays are
  // page-aligned and element accesses never straddle pages (4 | 8 divide 4096).
  auto u32_at = [state](SyscallContext& ctx, Vaddr base, uint64_t i,
                        bool write) -> uint32_t* {
    uint8_t* p = MustPage(ctx, *state, base + 4 * i, write);
    return reinterpret_cast<uint32_t*>(p);
  };
  auto u64_at = [state](SyscallContext& ctx, Vaddr base, uint64_t i,
                        bool write) -> uint64_t* {
    uint8_t* p = MustPage(ctx, *state, base + 8 * i, write);
    return reinterpret_cast<uint64_t*>(p);
  };

  // Processes one node-range chunk of the current PageRank iteration: pushes each
  // node's rank share along its out-edges into next_rank.
  auto process_chunk = [state, run, u32_at, u64_at,
                        params](SyscallContext& ctx, uint32_t chunk) {
    const uint32_t first = chunk * kNodesPerChunk;
    const uint32_t last = std::min(run->num_nodes, first + kNodesPerChunk);
    uint64_t edges_touched = 0;
    for (uint32_t node = first; node < last; ++node) {
      uint32_t* rp0 = u32_at(ctx, run->row_ptr, node, false);
      uint32_t* rp1 = u32_at(ctx, run->row_ptr, node + 1, false);
      uint64_t* rank = u64_at(ctx, run->rank, node, false);
      if (rp0 == nullptr || rp1 == nullptr || rank == nullptr) {
        return;
      }
      const uint32_t degree = *rp1 - *rp0;
      if (degree == 0) {
        continue;
      }
      const uint64_t share = *rank / degree;
      for (uint32_t e = *rp0; e < *rp1; ++e) {
        uint32_t* dst = u32_at(ctx, run->col_idx, e, false);
        if (dst == nullptr) {
          return;
        }
        uint64_t* nr = u64_at(ctx, run->next_rank, *dst, true);
        if (nr == nullptr) {
          return;
        }
        // Threads own disjoint *source* ranges but destinations collide; the fixed-
        // point addition is applied under the env lock by chunk (coarse-grained), so
        // plain adds are safe in the cooperative schedule.
        *nr += share;
        ++edges_touched;
      }
    }
    state->env->ChargeRuntime(ctx, edges_touched / 50 + 40);  // LibOS tax
    ctx.Compute(kCyclesPerEdge * edges_touched + 4000);
  };

  auto grab_chunk = [run](LibosEnv& env, SyscallContext& ctx) -> int {
    if (!env.lock(3).TryAcquire(ctx, ctx.task().tid)) {
      return -2;  // contended
    }
    int chunk = -1;
    if (run->csr_built && run->next_chunk < run->total_chunks) {
      chunk = static_cast<int>(run->next_chunk++);
    }
    env.lock(3).Release();
    return chunk;
  };

  auto complete_chunk = [run](LibosEnv& env, SyscallContext& ctx) {
    while (!env.lock(3).TryAcquire(ctx, ctx.task().tid)) {
      ctx.Compute(40);
    }
    ++run->chunks_done;
    env.lock(3).Release();
  };

  auto worker_body = [state, run, grab_chunk, process_chunk,
                      complete_chunk](SyscallContext& ctx) -> StepOutcome {
    if (run->done || state->failed) {
      return StepOutcome::kExited;
    }
    const int chunk = grab_chunk(*state->env, ctx);
    if (chunk >= 0) {
      process_chunk(ctx, static_cast<uint32_t>(chunk));
      complete_chunk(*state->env, ctx);
    } else {
      ctx.Compute(250);
    }
    if (!ctx.Poll()) {
      return StepOutcome::kExited;
    }
    return StepOutcome::kYield;
  };

  return [state, run, params, u32_at, u64_at, grab_chunk, process_chunk, complete_chunk,
          worker_body](SyscallContext& ctx) -> StepOutcome {
    LibosEnv& env = *state->env;
    if (state->failed) {
      return StepOutcome::kExited;
    }
    if (!env.initialized()) {
      Status st = env.Initialize(ctx);
      if (st.ok() && params.threads > 1) {
        st = env.SpawnWorkers(ctx,
                              std::vector<ProgramFn>(params.threads - 1, worker_body));
      }
      if (!st.ok()) {
        state->failed = true;
        state->failure = st.ToString();
        return StepOutcome::kExited;
      }
      state->init_done = true;
      return StepOutcome::kYield;
    }
    if (!run->have_input) {
      auto input = env.RecvInput(ctx, 4ull << 20);
      if (!input.ok()) {
        if (!IsWouldBlock(input.status())) {
          state->failed = true;
          state->failure = input.status().ToString();
          return StepOutcome::kExited;
        }
        if (!run->input_backoff.ShouldRetry(ctx)) {
          state->failed = true;
          state->failure = "client input retry budget exhausted";
          return StepOutcome::kExited;
        }
        return StepOutcome::kYield;
      }
      run->input_backoff.Reset();
      if (input->size() < 8) {
        state->failed = true;
        state->failure = "short graph input";
        return StepOutcome::kExited;
      }
      run->num_nodes = LoadLe32(input->data());
      run->num_edges = LoadLe32(input->data() + 4);

      // Allocate page-aligned CSR arrays in confined memory.
      auto alloc_aligned = [&env](uint64_t bytes) -> StatusOr<Vaddr> {
        EREBOR_ASSIGN_OR_RETURN(const Vaddr va, env.Alloc(bytes + kPageSize));
        return PageAlignUp(va);
      };
      auto rp = alloc_aligned(4ull * (run->num_nodes + 1));
      auto ci = alloc_aligned(4ull * run->num_edges);
      auto rk = alloc_aligned(8ull * run->num_nodes);
      auto nr = alloc_aligned(8ull * run->num_nodes);
      auto od = alloc_aligned(4ull * run->num_nodes);
      if (!rp.ok() || !ci.ok() || !rk.ok() || !nr.ok() || !od.ok()) {
        state->failed = true;
        state->failure = "graph arena exhausted";
        return StepOutcome::kExited;
      }
      run->row_ptr = *rp;
      run->col_idx = *ci;
      run->rank = *rk;
      run->next_rank = *nr;
      run->out_degree = *od;

      // Build the CSR (counting sort over sources).
      for (uint32_t i = 0; i < run->num_edges; ++i) {
        const uint32_t src = LoadLe32(input->data() + 8 + 8 * i) % run->num_nodes;
        uint32_t* deg = u32_at(ctx, run->out_degree, src, true);
        if (deg == nullptr) {
          return StepOutcome::kExited;
        }
        ++*deg;
      }
      uint32_t cursor = 0;
      for (uint32_t n = 0; n < run->num_nodes; ++n) {
        uint32_t* rp_n = u32_at(ctx, run->row_ptr, n, true);
        uint32_t* deg = u32_at(ctx, run->out_degree, n, false);
        uint64_t* rank = u64_at(ctx, run->rank, n, true);
        if (rp_n == nullptr || deg == nullptr || rank == nullptr) {
          return StepOutcome::kExited;
        }
        *rp_n = cursor;
        cursor += *deg;
        *rank = kFixedOne;
      }
      uint32_t* rp_end = u32_at(ctx, run->row_ptr, run->num_nodes, true);
      if (rp_end == nullptr) {
        return StepOutcome::kExited;
      }
      *rp_end = cursor;
      // Second pass: place destinations.
      std::vector<uint32_t> fill(run->num_nodes, 0);
      for (uint32_t i = 0; i < run->num_edges; ++i) {
        const uint32_t src = LoadLe32(input->data() + 8 + 8 * i) % run->num_nodes;
        const uint32_t dst = LoadLe32(input->data() + 12 + 8 * i) % run->num_nodes;
        uint32_t* rp_n = u32_at(ctx, run->row_ptr, src, false);
        if (rp_n == nullptr) {
          return StepOutcome::kExited;
        }
        uint32_t* slot = u32_at(ctx, run->col_idx, *rp_n + fill[src], true);
        if (slot == nullptr) {
          return StepOutcome::kExited;
        }
        *slot = dst;
        ++fill[src];
      }
      ctx.Compute(static_cast<Cycles>(run->num_edges) * 22);
      run->total_chunks = (run->num_nodes + kNodesPerChunk - 1) / kNodesPerChunk;
      run->csr_built = true;
      run->have_input = true;
      return StepOutcome::kYield;
    }

    // ---- PageRank iterations ----
    if (run->iteration < params.iterations) {
      // Leader participates in the chunk queue.
      const int chunk = grab_chunk(env, ctx);
      if (chunk >= 0) {
        process_chunk(ctx, static_cast<uint32_t>(chunk));
        complete_chunk(env, ctx);
        if (!ctx.Poll()) {
          return StepOutcome::kExited;
        }
        return StepOutcome::kYield;
      }
      if (run->chunks_done < run->total_chunks) {
        ctx.Compute(250);
        return StepOutcome::kYield;
      }
      // Iteration barrier: damp + swap rank arrays.
      for (uint32_t n = 0; n < run->num_nodes; ++n) {
        uint64_t* nr = u64_at(ctx, run->next_rank, n, true);
        uint64_t* rk = u64_at(ctx, run->rank, n, true);
        if (nr == nullptr || rk == nullptr) {
          return StepOutcome::kExited;
        }
        *rk = kFixedOne * 15 / 100 + (*nr * 85) / 100;
        *nr = 0;
      }
      ctx.Compute(static_cast<Cycles>(run->num_nodes) * 6);
      ++run->iteration;
      run->next_chunk = 0;
      run->chunks_done = 0;
      if (run->iteration % 2 == 0) {
        (void)ctx.Cpuid(1);
      }
      return StepOutcome::kYield;
    }

    // ---- Output: top-8 ranked nodes ----
    if (!state->output_sent) {
      std::vector<std::pair<uint64_t, uint32_t>> top;
      for (uint32_t n = 0; n < run->num_nodes; ++n) {
        uint64_t* rk = u64_at(ctx, run->rank, n, false);
        if (rk == nullptr) {
          return StepOutcome::kExited;
        }
        top.emplace_back(*rk, n);
      }
      std::partial_sort(top.begin(), top.begin() + 8, top.end(),
                        std::greater<std::pair<uint64_t, uint32_t>>());
      Bytes out;
      for (int i = 0; i < 8; ++i) {
        uint8_t rec[12];
        StoreLe32(rec, top[i].second);
        StoreLe64(rec + 4, top[i].first);
        out.insert(out.end(), rec, rec + sizeof(rec));
      }
      ctx.Compute(static_cast<Cycles>(run->num_nodes) * 4);
      const Status st = env.SendOutput(ctx, out);
      if (!st.ok()) {
        state->failed = true;
        state->failure = st.ToString();
      }
      state->output_sent = true;
      run->done = true;
    }
    return StepOutcome::kExited;
  };
}

bool GraphWorkload::CheckOutput(const Bytes& input, const Bytes& output) const {
  return output.size() == 8 * 12;
}

}  // namespace erebor
