// LLM inference service (llama.cpp stand-in, Table 5 row 1).
//
// A scaled-down decoder-only transformer: byte-level vocabulary, integer weights held
// in the *common* region (the shared model, read-only across sandboxes), per-client
// K-V cache in *confined* memory. The client sends a prompt; the service generates
// tokens greedily and returns the text. Worker threads share the per-layer work queue
// under a userspace spinlock (the LibOS-only overhead source the paper observes).
#ifndef EREBOR_SRC_WORKLOADS_LLM_H_
#define EREBOR_SRC_WORKLOADS_LLM_H_

#include "src/workloads/workload.h"

namespace erebor {

struct LlmParams {
  uint32_t dim = 48;
  uint32_t layers = 3;
  uint32_t context = 96;
  uint32_t generate_tokens = 192;
  uint32_t experts = 96;             // model shards touched pseudo-randomly per token
  uint64_t model_bytes = 24ull << 20;  // common-region model size
  int threads = 4;
};

class LlmWorkload : public Workload {
 public:
  explicit LlmWorkload(LlmParams params = {}) : params_(params) {}

  std::string name() const override { return "llama.cpp"; }
  LibosManifest Manifest() const override;
  uint64_t common_bytes() const override { return params_.model_bytes; }
  void FillCommonPage(uint64_t page_index, uint8_t* page) const override;
  Bytes MakeClientInput(uint64_t seed) const override;
  uint64_t background_vm_rate() const override { return 45'000; }
  ProgramFn MakeProgram(std::shared_ptr<AppState> state) override;
  bool CheckOutput(const Bytes& input, const Bytes& output) const override;

  const LlmParams& params() const { return params_; }

 private:
  LlmParams params_;
};

}  // namespace erebor

#endif  // EREBOR_SRC_WORKLOADS_LLM_H_
