#include "src/workloads/llm.h"

#include <cstring>

#include "src/common/rng.h"

namespace erebor {

namespace {

// Per-run shared state (leader + workers).
struct LlmRun {
  bool have_input = false;
  Bytes prompt;
  Bytes generated;
  uint32_t token_index = 0;
  uint32_t layer_cursor = 0;     // work queue: next layer chunk to process
  uint32_t layers_done = 0;
  bool token_in_flight = false;
  bool done = false;
  Vaddr kv_cache = 0;            // confined K-V cache
  uint64_t state_hash = 0x9E3779B97F4A7C15ULL;
  EagainBackoff input_backoff;   // bounded wait for the client prompt
};

constexpr Cycles kCyclesPerLayerChunk = 110'000;  // calibrated: full matmul cost
constexpr uint32_t kCpuidEveryTokens = 8;         // library feature-check cadence

}  // namespace

LibosManifest LlmWorkload::Manifest() const {
  LibosManifest manifest;
  manifest.name = "llama";
  manifest.heap_bytes = 6ull << 20;  // K-V cache + runtime heap (paper: 256MB, scaled)
  manifest.num_threads = params_.threads;
  manifest.output_pad_bytes = 4096;
  manifest.preload_files.push_back({"tokenizer.bin", Bytes(4096, 0x7A)});
  return manifest;
}

void LlmWorkload::FillCommonPage(uint64_t page_index, uint8_t* page) const {
  // Deterministic pseudo-weights: each page is an independent PRNG stream so any page
  // can be generated on demand.
  Rng rng(0x11A3A * 7919 + page_index);
  rng.Fill(page, kPageSize);
}

Bytes LlmWorkload::MakeClientInput(uint64_t seed) const {
  static const char* kPrompts[] = {
      "Translate to French: the quick brown fox jumps over the lazy dog",
      "Write a function that reverses a linked list in C",
      "Summarize: confidential virtual machines protect data in use",
  };
  const std::string prompt = kPrompts[seed % 3];
  return Bytes(prompt.begin(), prompt.end());
}

ProgramFn LlmWorkload::MakeProgram(std::shared_ptr<AppState> state) {
  auto run = std::make_shared<LlmRun>();
  const LlmParams params = params_;

  // One unit of transformer work: attention + FFN for one layer of the current token.
  // Reads real bytes from the model (common memory) and the K-V cache (confined).
  auto process_layer = [state, run, params](SyscallContext& ctx, uint32_t layer) {
    // Pick an "expert" shard for this (token, layer): touches a pseudo-random model
    // page, which demand-faults common memory like a real large model.
    const uint64_t pages = params.model_bytes >> kPageShift;
    SplitMix64 pick(run->state_hash ^ (static_cast<uint64_t>(layer) << 32) ^
                    run->token_index);
    uint64_t acc = 0;
    for (int touch = 0; touch < 3; ++touch) {
      // Hot-set skew: most touches hit a small working set, occasionally straying
      // across the whole model (big-model locality).
      const uint64_t raw = pick.Next();
      const uint64_t page =
          (raw % 100 < 85) ? (raw / 100) % (pages / 16) : raw % pages;
      uint8_t* w = MustPage(ctx, *state, state->common_base + AddrOf(page), false);
      if (w == nullptr) {
        return;
      }
      // Integer dot-product slice over real weight bytes (the rest of the matmul is
      // charged as cycles).
      for (uint32_t i = 0; i < params.dim; ++i) {
        acc += static_cast<uint64_t>(w[i]) * ((run->state_hash >> (i % 48)) & 0xFF);
      }
    }
    // K-V cache update (confined memory, real write).
    const uint64_t kv_slot =
        (static_cast<uint64_t>(layer) * params.context + (run->token_index % params.context)) *
        params.dim;
    // 16-byte aligned so the 8-byte store never crosses a page boundary.
    const uint64_t kv_offset = (kv_slot % ((4ull << 20) - kPageSize)) & ~15ULL;
    uint8_t* kv = MustPage(ctx, *state, run->kv_cache + kv_offset, true);
    if (kv == nullptr) {
      return;
    }
    StoreLe64(kv, acc);
    run->state_hash = run->state_hash * 0x100000001B3ULL + acc;
    state->env->ChargeRuntime(ctx, 380);  // LibOS allocator/TLS tax per layer
    ctx.Compute(kCyclesPerLayerChunk);
  };

  // Worker thread body: pull layer chunks off the shared queue under the spinlock.
  auto worker_body = [state, run, params, process_layer](SyscallContext& ctx) -> StepOutcome {
    if (run->done || state->failed) {
      return StepOutcome::kExited;
    }
    LibosEnv& env = *state->env;
    if (!run->token_in_flight) {
      ctx.Compute(300);
      return StepOutcome::kYield;
    }
    if (!env.lock(0).TryAcquire(ctx, ctx.task().tid)) {
      return StepOutcome::kYield;  // busy-wait (charged)
    }
    int layer = -1;
    if (run->layer_cursor < params.layers) {
      layer = static_cast<int>(run->layer_cursor++);
    }
    env.lock(0).Release();
    if (layer >= 0) {
      process_layer(ctx, static_cast<uint32_t>(layer));
      if (!env.lock(0).TryAcquire(ctx, ctx.task().tid)) {
        // Rare: completion counter contended; spin once more next slice.
        ctx.Compute(120);
        if (!env.lock(0).TryAcquire(ctx, ctx.task().tid)) {
          return StepOutcome::kYield;
        }
      }
      ++run->layers_done;
      env.lock(0).Release();
    }
    if (!ctx.Poll()) {
      return StepOutcome::kExited;
    }
    return StepOutcome::kYield;
  };

  return [state, run, params, process_layer, worker_body](SyscallContext& ctx) -> StepOutcome {
    LibosEnv& env = *state->env;
    if (state->failed) {
      return StepOutcome::kExited;
    }

    // ---- Initialization ----
    if (!env.initialized()) {
      Status st = env.Initialize(ctx);
      if (st.ok()) {
        auto kv = env.Alloc(4ull << 20);
        if (kv.ok()) {
          run->kv_cache = *kv;
        } else {
          st = kv.status();
        }
      }
      if (st.ok() && params.threads > 1) {
        std::vector<ProgramFn> workers(params.threads - 1, worker_body);
        st = env.SpawnWorkers(ctx, workers);
      }
      if (!st.ok()) {
        state->failed = true;
        state->failure = st.ToString();
        return StepOutcome::kExited;
      }
      state->init_done = true;
      return StepOutcome::kYield;
    }

    // ---- Await client prompt ----
    if (!run->have_input) {
      auto input = env.RecvInput(ctx, 64 * 1024);
      if (!input.ok()) {
        if (!IsWouldBlock(input.status())) {
          state->failed = true;
          state->failure = input.status().ToString();
          return StepOutcome::kExited;
        }
        if (!run->input_backoff.ShouldRetry(ctx)) {
          state->failed = true;
          state->failure = "client input retry budget exhausted";
          return StepOutcome::kExited;
        }
        return StepOutcome::kYield;
      }
      run->input_backoff.Reset();
      run->prompt = std::move(*input);
      for (const uint8_t byte : run->prompt) {
        run->state_hash = run->state_hash * 0x100000001B3ULL + byte;
      }
      run->have_input = true;
      return StepOutcome::kYield;
    }

    // ---- Token generation loop (the leader works the queue alongside workers) ----
    if (run->token_index < params.generate_tokens) {
      if (!run->token_in_flight) {
        run->layer_cursor = 0;
        run->layers_done = 0;
        run->token_in_flight = true;
      }
      while (true) {
        int layer = -1;
        if (env.lock(0).TryAcquire(ctx, ctx.task().tid)) {
          if (run->layer_cursor < params.layers) {
            layer = static_cast<int>(run->layer_cursor++);
          }
          env.lock(0).Release();
        }
        if (layer < 0) {
          break;
        }
        process_layer(ctx, static_cast<uint32_t>(layer));
        if (state->failed) {
          return StepOutcome::kExited;
        }
        while (!env.lock(0).TryAcquire(ctx, ctx.task().tid)) {
          ctx.Compute(40);
        }
        ++run->layers_done;
        env.lock(0).Release();
      }
      if (run->layers_done == params.layers) {
        // Token complete: greedy "sampling" from the accumulated activations.
        run->generated.push_back(static_cast<uint8_t>('a' + run->state_hash % 26));
        ++run->token_index;
        run->token_in_flight = false;
        if (run->token_index % kCpuidEveryTokens == 0) {
          (void)ctx.Cpuid(1);  // library feature probe -> #VE path
        }
      }
      if (!ctx.Poll()) {
        return StepOutcome::kExited;
      }
      return StepOutcome::kYield;
    }

    // ---- Emit the generated text to the client ----
    if (!state->output_sent) {
      const Status st = env.SendOutput(ctx, run->generated);
      if (!st.ok()) {
        state->failed = true;
        state->failure = st.ToString();
      }
      state->output_sent = true;
      run->done = true;
    }
    return StepOutcome::kExited;
  };
}

bool LlmWorkload::CheckOutput(const Bytes& input, const Bytes& output) const {
  return !output.empty();
}

}  // namespace erebor
