#include "src/workloads/workload.h"

#include "src/workloads/graph.h"
#include "src/workloads/ids.h"
#include "src/workloads/llm.h"
#include "src/workloads/retrieval.h"
#include "src/workloads/vision.h"

namespace erebor {

std::vector<std::unique_ptr<Workload>> MakePaperWorkloads() {
  std::vector<std::unique_ptr<Workload>> workloads;
  workloads.push_back(std::make_unique<LlmWorkload>());
  workloads.push_back(std::make_unique<VisionWorkload>());
  workloads.push_back(std::make_unique<RetrievalWorkload>());
  workloads.push_back(std::make_unique<GraphWorkload>());
  workloads.push_back(std::make_unique<IdsWorkload>());
  return workloads;
}

std::unique_ptr<Workload> MakeWorkloadByName(const std::string& name) {
  if (name == "llama.cpp" || name == "llama" || name == "llm") {
    return std::make_unique<LlmWorkload>();
  }
  if (name == "yolo" || name == "vision") {
    return std::make_unique<VisionWorkload>();
  }
  if (name == "drugbank" || name == "retrieval") {
    return std::make_unique<RetrievalWorkload>();
  }
  if (name == "graphchi" || name == "graph") {
    return std::make_unique<GraphWorkload>();
  }
  if (name == "unicorn" || name == "ids") {
    return std::make_unique<IdsWorkload>();
  }
  return nullptr;
}

}  // namespace erebor
