#include "src/workloads/retrieval.h"

#include "src/common/rng.h"

namespace erebor {

namespace {
struct RetrievalRun {
  bool have_input = false;
  std::vector<uint64_t> queries;
  uint64_t next_query = 0;   // work cursor
  uint64_t queries_done = 0;
  uint64_t hits = 0;
  uint64_t checksum = 0;
  bool done = false;
  EagainBackoff input_backoff;  // bounded wait for the query batch
};

constexpr Cycles kCyclesPerQuery = 2'300;      // hash + probe + copy cost
constexpr uint64_t kQueriesPerSlice = 512;     // work-chunk granularity
}  // namespace

uint64_t RetrievalKeyForRecord(uint64_t index) {
  SplitMix64 sm(index * 2654435761ULL + 1);
  return sm.Next() | 1;  // non-zero
}

LibosManifest RetrievalWorkload::Manifest() const {
  LibosManifest manifest;
  manifest.name = "drugbank";
  manifest.heap_bytes = 4ull << 20;
  manifest.num_threads = params_.threads;
  manifest.preload_files.push_back({"schema.json", Bytes(1024, 0x7B)});
  return manifest;
}

void RetrievalWorkload::FillCommonPage(uint64_t page_index, uint8_t* page) const {
  // Records are placed at slot = key % num_records (linear probing collisions are
  // resolved by construction: slot i simply stores record i, keyed so lookups land
  // directly — a perfect-hash simplification that keeps probes one-page touches).
  const uint64_t records_per_page = kPageSize / kRetrievalRecordSize;
  for (uint64_t r = 0; r < records_per_page; ++r) {
    const uint64_t index = page_index * records_per_page + r;
    uint8_t* record = page + r * kRetrievalRecordSize;
    StoreLe64(record, RetrievalKeyForRecord(index));
    StoreLe64(record + 8, index);
    Rng rng(index ^ 0xD2C6);
    rng.Fill(record + 16, kRetrievalRecordSize - 16);
  }
}

Bytes RetrievalWorkload::MakeClientInput(uint64_t seed) const {
  // Zipf-skewed query batch of record indices, encoded as u64 little-endian.
  Rng rng(seed * 7 + 5);
  Bytes input(params_.num_queries * 8);
  for (uint32_t i = 0; i < params_.num_queries; ++i) {
    const uint64_t record = rng.NextZipf(params_.num_records, 0.8);
    StoreLe64(input.data() + 8ull * i, record);
  }
  return input;
}

ProgramFn RetrievalWorkload::MakeProgram(std::shared_ptr<AppState> state) {
  auto run = std::make_shared<RetrievalRun>();
  const RetrievalParams params = params_;

  // Executes one chunk of queries against the common-region table.
  auto process_chunk = [state, run, params](SyscallContext& ctx, uint64_t first,
                                            uint64_t count) {
    for (uint64_t q = first; q < first + count; ++q) {
      const uint64_t index = run->queries[q] % params.num_records;
      const uint64_t offset = index * kRetrievalRecordSize;
      uint8_t* record =
          MustPage(ctx, *state, state->common_base + offset, false);
      if (record == nullptr) {
        return;
      }
      const uint64_t key = LoadLe64(record);
      if (key == RetrievalKeyForRecord(index)) {
        ++run->hits;
        // Checksum the payload (real read of the record body).
        uint64_t sum = 0;
        for (int i = 16; i < 64; i += 8) {
          sum += LoadLe64(record + i);
        }
        run->checksum ^= sum + key;
      }
    }
    state->env->ChargeRuntime(ctx, count);  // LibOS tax per query
    ctx.Compute(kCyclesPerQuery * count);
    ++run->queries_done;  // chunk counter misuse-proofed below by cursor comparison
    if (count > 0 && (first / kQueriesPerSlice) % 12 == 0) {
      (void)ctx.Cpuid(1);  // periodic library feature probe -> #VE path
    }
  };

  auto grab_chunk = [run](LibosEnv& env, SyscallContext& ctx) -> std::pair<uint64_t, uint64_t> {
    if (!env.lock(2).TryAcquire(ctx, ctx.task().tid)) {
      return {0, 0};
    }
    const uint64_t first = run->next_query;
    const uint64_t count =
        std::min<uint64_t>(kQueriesPerSlice, run->queries.size() - first);
    run->next_query += count;
    env.lock(2).Release();
    return {first, count};
  };

  auto worker_body = [state, run, grab_chunk, process_chunk](SyscallContext& ctx) -> StepOutcome {
    if (run->done || state->failed) {
      return StepOutcome::kExited;
    }
    if (!run->have_input) {
      ctx.Compute(300);
      return StepOutcome::kYield;
    }
    const auto [first, count] = grab_chunk(*state->env, ctx);
    if (count > 0) {
      process_chunk(ctx, first, count);
    }
    if (!ctx.Poll()) {
      return StepOutcome::kExited;
    }
    return StepOutcome::kYield;
  };

  return [state, run, params, grab_chunk, process_chunk,
          worker_body](SyscallContext& ctx) -> StepOutcome {
    LibosEnv& env = *state->env;
    if (state->failed) {
      return StepOutcome::kExited;
    }
    if (!env.initialized()) {
      Status st = env.Initialize(ctx);
      if (st.ok() && params.threads > 1) {
        st = env.SpawnWorkers(ctx,
                              std::vector<ProgramFn>(params.threads - 1, worker_body));
      }
      if (!st.ok()) {
        state->failed = true;
        state->failure = st.ToString();
        return StepOutcome::kExited;
      }
      state->init_done = true;
      return StepOutcome::kYield;
    }
    if (!run->have_input) {
      auto input = env.RecvInput(ctx, 5ull << 19);
      if (!input.ok()) {
        if (!IsWouldBlock(input.status())) {
          state->failed = true;
          state->failure = input.status().ToString();
          return StepOutcome::kExited;
        }
        if (!run->input_backoff.ShouldRetry(ctx)) {
          state->failed = true;
          state->failure = "client input retry budget exhausted";
          return StepOutcome::kExited;
        }
        return StepOutcome::kYield;
      }
      run->input_backoff.Reset();
      run->queries.resize(input->size() / 8);
      for (size_t i = 0; i < run->queries.size(); ++i) {
        run->queries[i] = LoadLe64(input->data() + 8 * i);
      }
      run->have_input = true;
      return StepOutcome::kYield;
    }
    const auto [first, count] = grab_chunk(env, ctx);
    if (count > 0) {
      process_chunk(ctx, first, count);
      if (!ctx.Poll()) {
        return StepOutcome::kExited;
      }
      return StepOutcome::kYield;
    }
    if (run->next_query < run->queries.size()) {
      ctx.Compute(200);
      return StepOutcome::kYield;
    }
    if (!state->output_sent) {
      Bytes out(24);
      StoreLe64(out.data(), run->hits);
      StoreLe64(out.data() + 8, run->checksum);
      StoreLe64(out.data() + 16, run->queries.size());
      const Status st = env.SendOutput(ctx, out);
      if (!st.ok()) {
        state->failed = true;
        state->failure = st.ToString();
      }
      state->output_sent = true;
      run->done = true;
    }
    return StepOutcome::kExited;
  };
}

bool RetrievalWorkload::CheckOutput(const Bytes& input, const Bytes& output) const {
  if (output.size() != 24) {
    return false;
  }
  // All queries must have been answered and every lookup must hit (perfect-hash DB).
  const uint64_t hits = LoadLe64(output.data());
  const uint64_t total = LoadLe64(output.data() + 16);
  return total == input.size() / 8 && hits == total;
}

}  // namespace erebor
