// System-intensive background servers (Figure 10): OpenSSH-style (per-chunk crypto)
// and Nginx-style (plain sendfile-ish) file transfer services running as normal
// non-sandboxed processes. Throughput relative to Native across file sizes shows the
// interposition overhead amortizing with transfer size.
#ifndef EREBOR_SRC_WORKLOADS_FILESERVER_H_
#define EREBOR_SRC_WORKLOADS_FILESERVER_H_

#include "src/sim/world.h"
#include "src/workloads/runner.h"

namespace erebor {

enum class ServerKind : uint8_t { kOpenSsh, kNginx };

struct FileServerResult {
  ServerKind kind = ServerKind::kNginx;
  uint64_t file_bytes = 0;
  uint64_t requests = 0;
  Cycles total_cycles = 0;
  double throughput_bytes_per_sec() const {
    return total_cycles == 0
               ? 0
               : static_cast<double>(file_bytes) * requests * 2.1e9 / total_cycles;
  }
};

// Serves `requests` transfers of a `file_bytes` file in the given mode.
// options.num_cpus sizes the machine (Figure 10 is single-core: default 1 vCPU).
StatusOr<FileServerResult> RunFileServer(
    ServerKind kind, SimMode mode, uint64_t file_bytes, uint64_t requests,
    const RunnerOptions& options = SingleCpuRunnerOptions());

// The Figure 10 file-size sweep.
std::vector<uint64_t> FileServerSizes();

}  // namespace erebor

#endif  // EREBOR_SRC_WORKLOADS_FILESERVER_H_
