#include "src/workloads/ids.h"

#include <algorithm>
#include <cstring>

#include "src/common/rng.h"

namespace erebor {

namespace {
// Event record (16 bytes): actor(4) | object(4) | action(4) | ts(4).
constexpr uint64_t kEventSize = 16;

struct IdsRun {
  bool have_input = false;
  Vaddr log_buf = 0;      // confined copy of the event log
  Vaddr sketch = 0;       // u32[sketch_bins] per window (reused)
  uint32_t num_events = 0;
  uint32_t next_window = 0;   // work queue over windows
  uint32_t windows_done = 0;
  uint32_t total_windows = 0;
  Bytes flagged;              // window index + score records
  bool done = false;
  EagainBackoff input_backoff;  // bounded wait for the event log
};

constexpr Cycles kCyclesPerEvent = 540;
}  // namespace

LibosManifest IdsWorkload::Manifest() const {
  LibosManifest manifest;
  manifest.name = "unicorn";
  manifest.heap_bytes = 12ull << 20;  // (paper: 2 GB cache, scaled)
  manifest.num_threads = params_.threads;
  manifest.preload_files.push_back({"baseline.model", Bytes(8192, 0x42)});
  return manifest;
}

Bytes IdsWorkload::MakeClientInput(uint64_t seed) const {
  // Mostly-benign synthetic provenance log with injected anomalous bursts.
  Rng rng(seed * 31337 + 1);
  Bytes log(static_cast<size_t>(params_.num_events) * kEventSize);
  for (uint32_t i = 0; i < params_.num_events; ++i) {
    uint8_t* event = log.data() + static_cast<size_t>(i) * kEventSize;
    const bool anomalous = (i / params_.window_events) % 17 == 13;
    const uint32_t actor = anomalous ? 0xBAD0 + static_cast<uint32_t>(rng.NextBelow(4))
                                     : static_cast<uint32_t>(rng.NextZipf(512, 1.1));
    const uint32_t object =
        anomalous ? 0xBEEF : static_cast<uint32_t>(rng.NextZipf(4096, 0.9));
    const uint32_t action =
        anomalous ? 0xF0 + static_cast<uint32_t>(rng.NextBelow(2))
                  : static_cast<uint32_t>(rng.NextBelow(12));
    StoreLe32(event, actor);
    StoreLe32(event + 4, object);
    StoreLe32(event + 8, action);
    StoreLe32(event + 12, i);
  }
  return log;
}

ProgramFn IdsWorkload::MakeProgram(std::shared_ptr<AppState> state) {
  auto run = std::make_shared<IdsRun>();
  const IdsParams params = params_;

  // Scores one window: feature-hash its events into a fresh region of the sketch,
  // then compute a rarity score (anomalous windows concentrate mass in few bins).
  auto process_window = [state, run, params](SyscallContext& ctx, uint32_t window) {
    const uint32_t first_event = window * params.window_events;
    const uint32_t last_event =
        std::min(run->num_events, first_event + params.window_events);
    // Each thread uses a disjoint sketch stripe (window % threads) to avoid races.
    const uint64_t stripe =
        (window % static_cast<uint32_t>(params.threads)) * params.sketch_bins * 4ull;

    // Clear the stripe.
    for (uint64_t off = 0; off < params.sketch_bins * 4ull; off += kPageSize) {
      uint8_t* page = MustPage(ctx, *state, run->sketch + stripe + off, true);
      if (page == nullptr) {
        return;
      }
      const uint64_t n = std::min<uint64_t>(kPageSize, params.sketch_bins * 4ull - off);
      std::memset(page, 0, n);
    }

    uint64_t max_bin = 0;
    uint64_t total = 0;
    for (uint32_t e = first_event; e < last_event; ++e) {
      uint8_t* event = MustPage(ctx, *state, run->log_buf + e * kEventSize, false);
      if (event == nullptr) {
        return;
      }
      const uint32_t actor = LoadLe32(event);
      const uint32_t object = LoadLe32(event + 4);
      const uint32_t action = LoadLe32(event + 8);
      const uint64_t feature =
          (static_cast<uint64_t>(actor) << 32) ^ (object * 2654435761u) ^ action;
      SplitMix64 h(feature);
      const uint32_t bin = static_cast<uint32_t>(h.Next() % params.sketch_bins);
      uint8_t* cell = MustPage(ctx, *state, run->sketch + stripe + bin * 4ull, true);
      if (cell == nullptr) {
        return;
      }
      const uint32_t count = LoadLe32(cell) + 1;
      StoreLe32(cell, count);
      total += 1;
      max_bin = std::max<uint64_t>(max_bin, count);
    }
    state->env->ChargeRuntime(ctx, (last_event - first_event) / 6 + 60);
    ctx.Compute(kCyclesPerEvent * (last_event - first_event));

    // Concentration score in percent; benign Zipf traffic stays well below the
    // anomalous bursts that hammer a handful of (actor, action) features.
    if (window % 12 == 0) {
      (void)ctx.Cpuid(1);  // periodic feature probe -> #VE path
    }
    const uint32_t score =
        total == 0 ? 0 : static_cast<uint32_t>(max_bin * 100 / total);
    if (score >= 5) {
      uint8_t rec[8];
      StoreLe32(rec, window);
      StoreLe32(rec + 4, score);
      run->flagged.insert(run->flagged.end(), rec, rec + sizeof(rec));
    }
  };

  auto grab_window = [run](LibosEnv& env, SyscallContext& ctx) -> int {
    if (!env.lock(4).TryAcquire(ctx, ctx.task().tid)) {
      return -2;
    }
    int window = -1;
    if (run->have_input && run->next_window < run->total_windows) {
      window = static_cast<int>(run->next_window++);
    }
    env.lock(4).Release();
    return window;
  };

  auto complete_window = [run](LibosEnv& env, SyscallContext& ctx) {
    while (!env.lock(4).TryAcquire(ctx, ctx.task().tid)) {
      ctx.Compute(40);
    }
    ++run->windows_done;
    env.lock(4).Release();
  };

  auto worker_body = [state, run, grab_window, process_window,
                      complete_window](SyscallContext& ctx) -> StepOutcome {
    if (run->done || state->failed) {
      return StepOutcome::kExited;
    }
    const int window = grab_window(*state->env, ctx);
    if (window >= 0) {
      process_window(ctx, static_cast<uint32_t>(window));
      complete_window(*state->env, ctx);
    } else {
      ctx.Compute(250);
    }
    if (!ctx.Poll()) {
      return StepOutcome::kExited;
    }
    return StepOutcome::kYield;
  };

  return [state, run, params, grab_window, process_window, complete_window,
          worker_body](SyscallContext& ctx) -> StepOutcome {
    LibosEnv& env = *state->env;
    if (state->failed) {
      return StepOutcome::kExited;
    }
    if (!env.initialized()) {
      Status st = env.Initialize(ctx);
      if (st.ok()) {
        auto log_buf = env.Alloc(params.num_events * kEventSize + kPageSize);
        auto sketch = env.Alloc(static_cast<uint64_t>(params.threads) *
                                    params.sketch_bins * 4ull +
                                kPageSize);
        if (log_buf.ok() && sketch.ok()) {
          run->log_buf = PageAlignUp(*log_buf);
          run->sketch = PageAlignUp(*sketch);
        } else {
          st = log_buf.ok() ? sketch.status() : log_buf.status();
        }
      }
      if (st.ok() && params.threads > 1) {
        st = env.SpawnWorkers(ctx,
                              std::vector<ProgramFn>(params.threads - 1, worker_body));
      }
      if (!st.ok()) {
        state->failed = true;
        state->failure = st.ToString();
        return StepOutcome::kExited;
      }
      state->init_done = true;
      return StepOutcome::kYield;
    }
    if (!run->have_input) {
      auto input = env.RecvInput(ctx, 4ull << 20);
      if (!input.ok()) {
        if (!IsWouldBlock(input.status())) {
          state->failed = true;
          state->failure = input.status().ToString();
          return StepOutcome::kExited;
        }
        if (!run->input_backoff.ShouldRetry(ctx)) {
          state->failed = true;
          state->failure = "client input retry budget exhausted";
          return StepOutcome::kExited;
        }
        return StepOutcome::kYield;
      }
      run->input_backoff.Reset();
      const Status st = ctx.WriteUser(run->log_buf, input->data(), input->size());
      if (!st.ok()) {
        state->failed = true;
        state->failure = st.ToString();
        return StepOutcome::kExited;
      }
      run->num_events = static_cast<uint32_t>(input->size() / kEventSize);
      run->total_windows =
          (run->num_events + params.window_events - 1) / params.window_events;
      run->have_input = true;
      return StepOutcome::kYield;
    }
    const int window = grab_window(env, ctx);
    if (window >= 0) {
      process_window(ctx, static_cast<uint32_t>(window));
      complete_window(env, ctx);
      if (!ctx.Poll()) {
        return StepOutcome::kExited;
      }
      return StepOutcome::kYield;
    }
    if (run->windows_done < run->total_windows) {
      ctx.Compute(250);
      return StepOutcome::kYield;
    }
    if (!state->output_sent) {
      const Status st = env.SendOutput(ctx, run->flagged);
      if (!st.ok()) {
        state->failed = true;
        state->failure = st.ToString();
      }
      state->output_sent = true;
      run->done = true;
    }
    return StepOutcome::kExited;
  };
}

bool IdsWorkload::CheckOutput(const Bytes& input, const Bytes& output) const {
  // Records are 8 bytes and there must be at least one flagged (injected) window.
  return output.size() % 8 == 0 && !output.empty();
}

}  // namespace erebor
