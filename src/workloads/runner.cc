#include "src/workloads/runner.h"

#include "src/common/log.h"
#include "src/common/trace.h"

namespace erebor {

namespace {

// Provider-side population of a common region's backing frames (the shared instance
// is prepared once, before any client arrives).
void FillCommonFrames(Machine& machine, const Workload& workload, FrameNum first,
                      uint64_t count) {
  for (uint64_t i = 0; i < count; ++i) {
    workload.FillCommonPage(i, machine.memory().FramePtr(first + i));
  }
}

// Background VM housekeeping: mmap/populate/munmap churn paced against simulated
// time. Natively each PTE update is a cached store; under Erebor each goes through an
// EMC — this is the service's steady-state MMU traffic (Table 6 EMC/s).
ProgramFn MakeHousekeepingProgram(uint64_t pte_ops_per_sec) {
  auto last = std::make_shared<Cycles>(0);
  return [last, pte_ops_per_sec](SyscallContext& ctx) -> StepOutcome {
    constexpr uint64_t kPagesPerChunk = 16;
    // One chunk = populate + unmap: ~2 PTE writes per page plus table upkeep.
    constexpr double kPteOpsPerChunk = 2.0 * kPagesPerChunk + 3;
    const Cycles now = ctx.kernel().machine().TotalCycles();
    if (*last == 0) {
      *last = now;
      return StepOutcome::kYield;
    }
    uint64_t due = static_cast<uint64_t>((now - *last) * pte_ops_per_sec / 2.1e9 /
                                         kPteOpsPerChunk);
    due = std::min<uint64_t>(due, 32);
    if (due == 0) {
      ctx.Compute(1200);  // idle tick
      return StepOutcome::kYield;
    }
    *last = now;
    for (uint64_t i = 0; i < due; ++i) {
      auto va = ctx.Syscall(sys::kMmap, 0, kPagesPerChunk * kPageSize,
                            sys::kProtRead | sys::kProtWrite, sys::kMapPopulate);
      if (va.ok()) {
        (void)ctx.Syscall(sys::kMunmap, *va);
      }
    }
    return StepOutcome::kYield;
  };
}

}  // namespace

RunReport RunWorkload(Workload& workload, SimMode mode, const RunnerOptions& options) {
  RunReport report;
  report.workload = workload.name();
  report.mode = mode;

  // Honor EREBOR_TRACE / EREBOR_TRACE_JSON; a bench may also have enabled the tracer
  // programmatically, in which case this is a no-op.
  Tracer& tracer = Tracer::Global();
  tracer.EnableFromEnv();

  WorldConfig config;
  config.mode = mode;
  config.machine.memory_frames = options.memory_frames;
  config.machine.num_cpus = options.num_cpus;
  World world(config);
  Status st = world.Boot();
  if (!st.ok()) {
    report.error = "boot: " + st.ToString();
    return report;
  }
  if (world.monitor() != nullptr) {
    world.monitor()->SetMitigations(options.mitigations);
    world.monitor()->EnableBatchedMmu(options.batched_mmu);
  }

  const LibosManifest manifest = workload.Manifest();
  auto state = std::make_shared<AppState>();
  state->env = std::make_shared<LibosEnv>(manifest, world.libos_backend(),
                                          world.libos_overheads());
  state->common_bytes = workload.common_bytes();
  state->common_base = state->common_bytes > 0 ? kLibosCommonBase : 0;

  const Bytes input = workload.MakeClientInput(options.input_seed);

  Task* task = nullptr;
  Sandbox* sandbox = nullptr;
  ProgramFn program = workload.MakeProgram(state);
  if (world.erebor_active()) {
    SandboxSpec spec;
    spec.name = workload.name();
    spec.confined_budget_bytes = manifest.heap_bytes + (4ull << 20);
    spec.max_threads = manifest.num_threads;
    spec.output_pad_bytes = manifest.output_pad_bytes;
    auto sb = world.LaunchSandboxProcess(workload.name(), spec, std::move(program), &task);
    if (!sb.ok()) {
      report.error = "launch: " + sb.status().ToString();
      return report;
    }
    sandbox = *sb;
  } else {
    auto t = world.LaunchProcess(workload.name(), std::move(program));
    if (!t.ok()) {
      report.error = "launch: " + t.status().ToString();
      return report;
    }
    task = *t;
    // The native baseline's "client" drops its input into the exchange file.
    (void)world.kernel().fs().Create(manifest.name + ".client_input", input);
  }

  Cpu& cpu0 = world.machine().cpu(0);

  // The service's background VM activity runs in every mode (its cost differs).
  if (workload.background_vm_rate() > 0) {
    auto hk = world.LaunchProcess("vm-housekeeping",
                                  MakeHousekeepingProgram(workload.background_vm_rate()));
    if (!hk.ok()) {
      report.error = "housekeeping: " + hk.status().ToString();
      return report;
    }
  }

  // Common region: provider-prepared shared instance.
  if (state->common_bytes > 0) {
    const uint64_t common_frames = PageAlignUp(state->common_bytes) >> kPageShift;
    if (world.erebor_active()) {
      auto region = world.monitor()->CreateCommonRegion(workload.name() + ".common",
                                                        state->common_bytes);
      if (!region.ok()) {
        report.error = "common region: " + region.status().ToString();
        return report;
      }
      FillCommonFrames(world.machine(), workload, (*region)->first_frame,
                       (*region)->num_frames);
      st = world.monitor()->AttachCommon(cpu0, *sandbox, (*region)->id, kLibosCommonBase,
                                         /*writable_until_seal=*/false);
      if (!st.ok()) {
        report.error = "attach common: " + st.ToString();
        return report;
      }
    } else {
      // Native: the shared instance is shm-style memory, still demand-mapped.
      auto first = world.kernel().pool().AllocContiguous(common_frames);
      if (!first.ok()) {
        report.error = "native common alloc: " + first.status().ToString();
        return report;
      }
      FillCommonFrames(world.machine(), workload, *first, common_frames);
      auto vma = task->aspace->CreateVma(common_frames << kPageShift,
                                         pte::kPresent | pte::kUser | pte::kNoExecute,
                                         VmaKind::kCommon, kLibosCommonBase);
      if (!vma.ok()) {
        report.error = "native common vma: " + vma.status().ToString();
        return report;
      }
      Vma* v = task->aspace->FindVma(*vma);
      v->backing.resize(common_frames);
      for (uint64_t i = 0; i < common_frames; ++i) {
        v->backing[i] = *first + i;
      }
    }
  }

  // ---- Phase 1: initialization ----
  tracer.MarkPhase("init", world.machine().TotalCycles());
  const Cycles before_init = world.machine().TotalCycles();
  st = world.RunUntil([&] { return state->init_done || state->failed; },
                      options.max_slices);
  if (!st.ok() || state->failed) {
    report.error = "init: " + (state->failed ? state->failure : st.ToString());
    return report;
  }
  report.init_cycles = world.machine().TotalCycles() - before_init;

  // ---- Phase 2: install client data ----
  if (world.erebor_active()) {
    st = world.monitor()->DebugInstallClientData(cpu0, *sandbox, input);
    if (!st.ok()) {
      report.error = "install: " + st.ToString();
      return report;
    }
  }

  // ---- Phase 3: processing ----
  tracer.MarkPhase("run", world.machine().TotalCycles());
  const KernelStats stats_before = world.kernel().stats();
  const uint64_t emc_before =
      world.erebor_active() ? world.monitor()->counters().emc_total : 0;
  const uint64_t trace_emc_before = tracer.CountKind(TraceEvent::kEmcEnter);
  const uint64_t sandbox_pf_before = sandbox != nullptr ? sandbox->exits.page_faults : 0;
  const uint64_t sandbox_timer_before =
      sandbox != nullptr ? sandbox->exits.timer_interrupts : 0;
  const uint64_t sandbox_ve_before = sandbox != nullptr ? sandbox->exits.ve_exits : 0;

  const Cycles before_run = world.machine().TotalCycles();
  st = world.RunUntil([&] { return state->output_sent || state->failed; },
                      options.max_slices);
  if (!st.ok() || state->failed) {
    report.error = "run: " + (state->failed ? state->failure : st.ToString());
    return report;
  }
  report.run_cycles = world.machine().TotalCycles() - before_run;
  report.run_seconds = report.GhzSeconds(report.run_cycles);

  // ---- Phase 4: fetch output ----
  tracer.MarkPhase("output", world.machine().TotalCycles());
  if (world.erebor_active()) {
    auto padded = world.monitor()->DebugFetchOutput(*sandbox);
    if (!padded.ok()) {
      report.error = "output: " + padded.status().ToString();
      return report;
    }
    auto unpadded = UnpadOutput(*padded);
    if (!unpadded.ok()) {
      report.error = "unpad: " + unpadded.status().ToString();
      return report;
    }
    report.output = *unpadded;
  } else {
    auto file = world.kernel().fs().Open(manifest.name + ".client_output", false);
    if (!file.ok()) {
      report.error = "output file: " + file.status().ToString();
      return report;
    }
    report.output = (*file)->data;
  }

  // ---- Statistics ----
  const KernelStats& stats_after = world.kernel().stats();
  const double secs = report.run_seconds > 0 ? report.run_seconds : 1e-9;
  if (sandbox != nullptr) {
    report.pf_per_sec = (sandbox->exits.page_faults - sandbox_pf_before) / secs;
    report.timer_per_sec = (sandbox->exits.timer_interrupts - sandbox_timer_before) / secs;
    report.ve_per_sec = (sandbox->exits.ve_exits - sandbox_ve_before) / secs;
    report.confined_bytes = sandbox->confined_bytes;
  } else {
    report.pf_per_sec = (stats_after.page_faults - stats_before.page_faults) / secs;
    report.timer_per_sec =
        (stats_after.timer_interrupts - stats_before.timer_interrupts) / secs;
    report.ve_per_sec = (stats_after.ve_exits - stats_before.ve_exits) / secs;
    report.confined_bytes = state->env->heap_used();
  }
  report.total_exits_per_sec =
      report.pf_per_sec + report.timer_per_sec + report.ve_per_sec;
  if (world.erebor_active()) {
    const MonitorCounters& counters = world.monitor()->counters();
    report.emc_total = counters.emc_total - emc_before;
    report.emc_per_sec = report.emc_total / secs;
    report.mitigation_stalls = counters.exit_stalls;
    report.mitigation_flushes = counters.cache_flushes;
    report.mitigation_quantized = counters.quantized_outputs;
  }
  report.common_bytes = state->common_bytes;
  if (tracer.enabled()) {
    // Same window as the emc_total delta: nothing between the two reads crosses a
    // gate, so a mismatch means an uninstrumented (or double-counted) crossing.
    report.trace_emc_enter = tracer.CountKind(TraceEvent::kEmcEnter) - trace_emc_before;
    report.trace_summary = tracer.SummaryTable();
    if (!tracer.json_path().empty()) {
      const Status export_st = tracer.WriteChromeTrace(tracer.json_path());
      if (!export_st.ok()) {
        LOG_WARN() << "trace export failed: " << export_st;
      }
    }
  }

  // Session cleanup (zeroization) for the sandbox.
  if (sandbox != nullptr) {
    (void)world.monitor()->TeardownSandbox(cpu0, *sandbox);
  }
  report.ok = true;
  return report;
}

std::vector<RunReport> RunAblation(Workload& workload, const RunnerOptions& options) {
  std::vector<RunReport> reports;
  for (const SimMode mode :
       {SimMode::kNative, SimMode::kLibosOnly, SimMode::kEreborMmuOnly,
        SimMode::kEreborExitOnly, SimMode::kEreborFull}) {
    reports.push_back(RunWorkload(workload, mode, options));
  }
  return reports;
}

}  // namespace erebor
