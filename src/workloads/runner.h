// Workload runner: boots a World in a given evaluation mode, runs one workload
// end-to-end (init -> client data -> processing -> output) and reports cycle counts
// plus the Table-6 execution statistics.
#ifndef EREBOR_SRC_WORKLOADS_RUNNER_H_
#define EREBOR_SRC_WORKLOADS_RUNNER_H_

#include "src/sim/world.h"
#include "src/workloads/workload.h"

namespace erebor {

struct RunReport {
  std::string workload;
  SimMode mode = SimMode::kNative;
  bool ok = false;
  std::string error;

  Cycles init_cycles = 0;  // program launch -> ready for client data
  Cycles run_cycles = 0;   // client data installed -> output produced
  Bytes output;

  // Table 6 statistics (rates are per simulated second at 2.1 GHz).
  double pf_per_sec = 0;
  double timer_per_sec = 0;
  double ve_per_sec = 0;
  double total_exits_per_sec = 0;
  double emc_per_sec = 0;
  double run_seconds = 0;
  uint64_t confined_bytes = 0;
  uint64_t common_bytes = 0;
  uint64_t emc_total = 0;
  // Mitigation activity during the processing phase.
  uint64_t mitigation_stalls = 0;
  uint64_t mitigation_flushes = 0;
  uint64_t mitigation_quantized = 0;

  // Observability (filled when the global tracer is enabled): trace-measured EMC gate
  // entries over the processing phase — must equal emc_total exactly — plus the
  // per-phase event summary.
  uint64_t trace_emc_enter = 0;
  std::string trace_summary;

  double GhzSeconds(Cycles c) const { return static_cast<double>(c) / 2.1e9; }
};

struct RunnerOptions {
  uint64_t memory_frames = 48 * 1024;  // 192 MiB guest
  int num_cpus = 2;
  uint64_t input_seed = 42;
  uint64_t max_slices = 4'000'000;
  // Optional section-12 side-channel mitigations (Erebor modes only).
  MitigationConfig mitigations;
  // Batched MMU updates (section 9.1 optimization).
  bool batched_mmu = false;
};

// Defaults for the single-process microbenchmark entry points (lmbench,
// fileserver): one vCPU, everything else as RunnerOptions. The figures those
// benches reproduce are single-core measurements, so 1 stays the documented
// default — but it is now an option, not a hardcode, and multi-vCPU scaling
// runs (bench/emc_scaling) can raise it.
inline RunnerOptions SingleCpuRunnerOptions() {
  RunnerOptions options;
  options.num_cpus = 1;
  return options;
}

// Runs `workload` under `mode` and returns the report.
RunReport RunWorkload(Workload& workload, SimMode mode, const RunnerOptions& options = {});

// Convenience: runs all modes of the Figure-9 ablation and returns reports in order
// {Native, LibOS-only, MMU, Exit, Full}.
std::vector<RunReport> RunAblation(Workload& workload, const RunnerOptions& options = {});

}  // namespace erebor

#endif  // EREBOR_SRC_WORKLOADS_RUNNER_H_
