// Private information retrieval service (DrugBank-style in-memory database, Table 5
// row 3). The database is an open-addressing hash table in the common region; the
// client sends a batch of record keys (Zipf-skewed), the service probes the table and
// returns per-query record checksums.
#ifndef EREBOR_SRC_WORKLOADS_RETRIEVAL_H_
#define EREBOR_SRC_WORKLOADS_RETRIEVAL_H_

#include "src/workloads/workload.h"

namespace erebor {

struct RetrievalParams {
  uint64_t num_records = 48 * 1024;  // 64-byte records -> 3 MiB table (paper: 400 MB)
  uint32_t num_queries = 150'000;     // (paper: 2.2M, scaled)
  int threads = 4;
};

// Record layout (64 bytes): key(8) | flags(8) | payload(48).
inline constexpr uint64_t kRetrievalRecordSize = 64;

uint64_t RetrievalKeyForRecord(uint64_t index);

class RetrievalWorkload : public Workload {
 public:
  explicit RetrievalWorkload(RetrievalParams params = {}) : params_(params) {}

  std::string name() const override { return "drugbank"; }
  LibosManifest Manifest() const override;
  uint64_t common_bytes() const override {
    return params_.num_records * kRetrievalRecordSize;
  }
  void FillCommonPage(uint64_t page_index, uint8_t* page) const override;
  Bytes MakeClientInput(uint64_t seed) const override;
  uint64_t background_vm_rate() const override { return 85'000; }
  ProgramFn MakeProgram(std::shared_ptr<AppState> state) override;
  bool CheckOutput(const Bytes& input, const Bytes& output) const override;

  const RetrievalParams& params() const { return params_; }

 private:
  RetrievalParams params_;
};

}  // namespace erebor

#endif  // EREBOR_SRC_WORKLOADS_RETRIEVAL_H_
