// Graph processing service (GraphChi-style PageRank, Table 5 row 4).
//
// The client sends an edge list (its private social graph); the service builds a CSR
// in confined memory and runs PageRank iterations over it (fixed-point arithmetic),
// returning the top-ranked vertices. No common region: everything is client data.
#ifndef EREBOR_SRC_WORKLOADS_GRAPH_H_
#define EREBOR_SRC_WORKLOADS_GRAPH_H_

#include "src/workloads/workload.h"

namespace erebor {

struct GraphParams {
  uint32_t num_nodes = 24'000;
  uint32_t num_edges = 160'000;  // (paper: 6.8M edges, scaled)
  uint32_t iterations = 16;
  int threads = 4;
};

class GraphWorkload : public Workload {
 public:
  explicit GraphWorkload(GraphParams params = {}) : params_(params) {}

  std::string name() const override { return "graphchi"; }
  LibosManifest Manifest() const override;
  Bytes MakeClientInput(uint64_t seed) const override;
  uint64_t background_vm_rate() const override { return 60'000; }
  ProgramFn MakeProgram(std::shared_ptr<AppState> state) override;
  bool CheckOutput(const Bytes& input, const Bytes& output) const override;

 private:
  GraphParams params_;
};

}  // namespace erebor

#endif  // EREBOR_SRC_WORKLOADS_GRAPH_H_
