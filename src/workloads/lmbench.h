// LMBench-style system microbenchmarks (Figure 8). Each benchmark runs as a normal
// (non-sandboxed) process and measures cycles/operation, so running it under Native
// and Erebor worlds yields the paper's relative-latency bars plus the EMC/s rates.
#ifndef EREBOR_SRC_WORKLOADS_LMBENCH_H_
#define EREBOR_SRC_WORKLOADS_LMBENCH_H_

#include "src/sim/world.h"
#include "src/workloads/runner.h"

namespace erebor {

struct LmbenchResult {
  std::string name;
  uint64_t operations = 0;
  Cycles total_cycles = 0;
  uint64_t emc_count = 0;
  // Trace-measured EMC gate entries over the same window (0 when the global tracer is
  // disabled; must equal emc_count when it is enabled).
  uint64_t trace_emc_enter = 0;
  double cycles_per_op() const {
    return operations == 0 ? 0 : static_cast<double>(total_cycles) / operations;
  }
  double emc_per_sec() const {
    return total_cycles == 0 ? 0 : emc_count * 2.1e9 / total_cycles;
  }
};

// The Figure 8 benchmark set.
std::vector<std::string> LmbenchNames();

// How the kernel under test submits MMU updates to the monitor (the section 9.1
// ablation axis). kPerOp is the paper's measured configuration: one EMC gate
// crossing per PTE store. kBatched turns on the monitor's batched PTE-write
// validation (one crossing per leaf batch). kRing additionally routes the
// MMU-heavy kernel paths through the submission/completion rings — descriptors
// staged in shared memory, one doorbell crossing per drained window.
enum class MmuUpdateMode { kPerOp, kBatched, kRing };

// Runs one named benchmark (`null`, `read`, `write`, `stat`, `sig`, `fork`, `mmap`,
// `pagefault`) in the given world-mode for `iterations` operations.
// options.num_cpus sizes the machine (Figure 8 is a single-core measurement, so
// the default stays 1 vCPU via SingleCpuRunnerOptions).
StatusOr<LmbenchResult> RunLmbench(const std::string& name, SimMode mode,
                                   uint64_t iterations = 2000,
                                   MmuUpdateMode mmu = MmuUpdateMode::kPerOp,
                                   const RunnerOptions& options = SingleCpuRunnerOptions());

}  // namespace erebor

#endif  // EREBOR_SRC_WORKLOADS_LMBENCH_H_
