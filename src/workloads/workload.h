// Common harness for the paper's five real-world service workloads (Table 5).
//
// Each workload is a real (scaled-down) computation written against the LibOS API.
// It runs unmodified in every evaluation mode; the harness (runner.h) measures the
// initialization and data-processing phases in simulated cycles and collects the
// Table-6 statistics.
#ifndef EREBOR_SRC_WORKLOADS_WORKLOAD_H_
#define EREBOR_SRC_WORKLOADS_WORKLOAD_H_

#include <memory>

#include "src/libos/libos.h"

namespace erebor {

// Shared run-state between the harness and the application program.
struct AppState {
  std::shared_ptr<LibosEnv> env;
  bool init_done = false;     // set by the app when ready for client data
  bool output_sent = false;   // set by the app after SendOutput
  bool failed = false;
  std::string failure;
  Vaddr common_base = 0;      // where the common region is mapped (0 = none)
  uint64_t common_bytes = 0;
  int workers_running = 0;
  // Scratch shared between leader and worker threads (workload-specific use).
  std::vector<uint64_t> shared_u64;
};

class Workload {
 public:
  virtual ~Workload() = default;

  virtual std::string name() const = 0;
  virtual LibosManifest Manifest() const = 0;

  // Size of the provider's shared instance (model/database); 0 if none.
  virtual uint64_t common_bytes() const { return 0; }
  // Deterministically fills one 4 KiB page of the common region (provider data).
  virtual void FillCommonPage(uint64_t page_index, uint8_t* page) const {}

  // The client's request payload.
  virtual Bytes MakeClientInput(uint64_t seed) const = 0;

  // Rate (PTE updates/second) of the service's background virtual-memory activity —
  // page-cache churn, allocator trimming, buffer recycling. This drives the bulk of
  // Table 6's EMC/s once the MMU interface is virtualized.
  virtual uint64_t background_vm_rate() const { return 40'000; }

  // Builds the leader program. It must: initialize the LibOS env, optionally populate
  // the common region (pre-seal), set state->init_done, then await input via
  // env->RecvInput, process, SendOutput, set state->output_sent, and exit.
  virtual ProgramFn MakeProgram(std::shared_ptr<AppState> state) = 0;

  // Expected sanity property of the output given the input (used by tests).
  virtual bool CheckOutput(const Bytes& input, const Bytes& output) const { return true; }
};

// Helpers shared by workload implementations.

// Touches + returns a page pointer, recording a failure into state on error.
inline uint8_t* MustPage(SyscallContext& ctx, AppState& state, Vaddr va, bool write) {
  auto ptr = ctx.PagePtr(va, write);
  if (!ptr.ok()) {
    state.failed = true;
    state.failure = std::string(ptr.status().message());
    return nullptr;
  }
  return *ptr;
}

// Registry of the five paper workloads (llm, vision, retrieval, graph, ids).
std::vector<std::unique_ptr<Workload>> MakePaperWorkloads();
std::unique_ptr<Workload> MakeWorkloadByName(const std::string& name);

}  // namespace erebor

#endif  // EREBOR_SRC_WORKLOADS_WORKLOAD_H_
