#include "src/workloads/lmbench.h"

#include "src/common/trace.h"
#include "src/kernel/syscalls.h"

namespace erebor {

namespace {

struct BenchState {
  uint64_t iterations = 0;
  uint64_t completed = 0;
  bool done = false;
  bool failed = false;
  std::string error;
  Cycles cycles_used = 0;
  int phase = 0;
  Vaddr buffer = 0;
  int fd = -1;
  uint64_t scratch = 0;
};

using BenchOp = std::function<Status(SyscallContext&, BenchState&)>;

// Generic driver: sets up (phase 0), then loops the operation, accounting cycles.
ProgramFn MakeBenchProgram(std::shared_ptr<BenchState> state, BenchOp setup, BenchOp op) {
  return [state, setup, op](SyscallContext& ctx) -> StepOutcome {
    if (state->phase == 0) {
      if (setup) {
        const Status st = setup(ctx, *state);
        if (!st.ok()) {
          state->failed = true;
          state->error = st.ToString();
          state->done = true;
          return StepOutcome::kExited;
        }
      }
      state->phase = 1;
      return StepOutcome::kYield;
    }
    // Run a batch per slice so timer interrupts still get a chance to fire.
    const uint64_t batch = 64;
    const Cycles before = ctx.cpu().cycles().now();
    for (uint64_t i = 0; i < batch && state->completed < state->iterations; ++i) {
      const Status st = op(ctx, *state);
      if (!st.ok()) {
        state->failed = true;
        state->error = st.ToString();
        state->done = true;
        return StepOutcome::kExited;
      }
      ++state->completed;
    }
    state->cycles_used += ctx.cpu().cycles().now() - before;
    if (!ctx.Poll()) {
      state->done = true;
      return StepOutcome::kExited;
    }
    if (state->completed >= state->iterations) {
      state->done = true;
      return StepOutcome::kExited;
    }
    return StepOutcome::kYield;
  };
}

Status SetupFileAndBuffer(SyscallContext& ctx, BenchState& state, uint64_t file_bytes) {
  EREBOR_ASSIGN_OR_RETURN(
      state.buffer,
      ctx.task().aspace->CreateVma(16 * kPageSize,
                                   pte::kPresent | pte::kUser | pte::kWritable |
                                       pte::kNoExecute,
                                   VmaKind::kAnon));
  const std::string path = "lmbench.dat";
  EREBOR_RETURN_IF_ERROR(ctx.WriteUser(
      state.buffer, reinterpret_cast<const uint8_t*>(path.data()), path.size()));
  EREBOR_ASSIGN_OR_RETURN(const uint64_t fd,
                          ctx.Syscall(sys::kOpen, state.buffer, path.size(), 1));
  state.fd = static_cast<int>(fd);
  if (file_bytes > 0) {
    Bytes junk(file_bytes, 0x55);
    EREBOR_RETURN_IF_ERROR(ctx.WriteUser(state.buffer + kPageSize, junk.data(), junk.size()));
    EREBOR_RETURN_IF_ERROR(
        ctx.Syscall(sys::kWrite, fd, state.buffer + kPageSize, file_bytes).status());
  }
  return OkStatus();
}

}  // namespace

std::vector<std::string> LmbenchNames() {
  return {"null", "read", "write", "stat", "sig", "fork", "mmap", "pagefault"};
}

StatusOr<LmbenchResult> RunLmbench(const std::string& name, SimMode mode,
                                   uint64_t iterations, MmuUpdateMode mmu,
                                   const RunnerOptions& options) {
  WorldConfig config;
  config.mode = mode;
  config.machine.num_cpus = options.num_cpus;
  World world(config);
  EREBOR_RETURN_IF_ERROR(world.Boot());
  if (world.monitor() != nullptr) {
    if (mmu == MmuUpdateMode::kBatched) {
      world.monitor()->EnableBatchedMmu(true);
    } else if (mmu == MmuUpdateMode::kRing) {
      world.monitor()->EnableMmuRings(true);
    }
  }

  auto state = std::make_shared<BenchState>();
  state->iterations = iterations;

  BenchOp setup;
  BenchOp op;

  if (name == "null") {
    op = [](SyscallContext& ctx, BenchState& s) {
      return ctx.Syscall(sys::kGetpid).status();
    };
  } else if (name == "read") {
    setup = [](SyscallContext& ctx, BenchState& s) {
      return SetupFileAndBuffer(ctx, s, 4096);
    };
    op = [](SyscallContext& ctx, BenchState& s) -> Status {
      // Re-read the same 1 KiB from offset 0: reopen cheaply by seeking via a fresh
      // read from a rewound description (the mini-kernel keeps a shared offset, so
      // alternate read/write offsets by recreating when exhausted).
      auto r = ctx.Syscall(sys::kRead, s.fd, s.buffer + kPageSize, 1024);
      if (r.ok() && *r == 0) {
        // Rewind by closing + reopening.
        EREBOR_RETURN_IF_ERROR(ctx.Syscall(sys::kClose, s.fd).status());
        const std::string path = "lmbench.dat";
        EREBOR_RETURN_IF_ERROR(ctx.WriteUser(
            s.buffer, reinterpret_cast<const uint8_t*>(path.data()), path.size()));
        EREBOR_ASSIGN_OR_RETURN(const uint64_t fd,
                                ctx.Syscall(sys::kOpen, s.buffer, path.size(), 0));
        s.fd = static_cast<int>(fd);
        return OkStatus();
      }
      return r.status();
    };
  } else if (name == "write") {
    setup = [](SyscallContext& ctx, BenchState& s) {
      return SetupFileAndBuffer(ctx, s, 0);
    };
    op = [](SyscallContext& ctx, BenchState& s) -> Status {
      if (s.scratch > 4096) {
        // Keep the file bounded: recreate it.
        EREBOR_RETURN_IF_ERROR(ctx.Syscall(sys::kClose, s.fd).status());
        const std::string path = "lmbench.dat";
        EREBOR_RETURN_IF_ERROR(ctx.WriteUser(
            s.buffer, reinterpret_cast<const uint8_t*>(path.data()), path.size()));
        EREBOR_ASSIGN_OR_RETURN(const uint64_t fd,
                                ctx.Syscall(sys::kOpen, s.buffer, path.size(), 1));
        s.fd = static_cast<int>(fd);
        s.scratch = 0;
      }
      ++s.scratch;
      return ctx.Syscall(sys::kWrite, s.fd, s.buffer + kPageSize, 1024).status();
    };
  } else if (name == "stat") {
    setup = [](SyscallContext& ctx, BenchState& s) {
      return SetupFileAndBuffer(ctx, s, 128);
    };
    op = [](SyscallContext& ctx, BenchState& s) -> Status {
      const std::string path = "lmbench.dat";
      EREBOR_RETURN_IF_ERROR(ctx.WriteUser(
          s.buffer, reinterpret_cast<const uint8_t*>(path.data()), path.size()));
      return ctx.Syscall(sys::kStat, s.buffer, path.size()).status();
    };
  } else if (name == "sig") {
    setup = [](SyscallContext& ctx, BenchState& s) -> Status {
      const uint64_t token = StashSignalHandler([](int) {});
      return ctx.Syscall(sys::kSigaction, 10, token).status();
    };
    op = [](SyscallContext& ctx, BenchState& s) -> Status {
      EREBOR_RETURN_IF_ERROR(ctx.Syscall(sys::kKill, ctx.task().tid, 10).status());
      ctx.Poll();  // deliver
      return OkStatus();
    };
  } else if (name == "fork") {
    // A realistic fork copies the parent's image: map a populated working set first.
    setup = [](SyscallContext& ctx, BenchState& s) -> Status {
      EREBOR_ASSIGN_OR_RETURN(
          s.buffer, ctx.Syscall(sys::kMmap, 0, 32 * kPageSize,
                                sys::kProtRead | sys::kProtWrite, sys::kMapPopulate));
      return OkStatus();
    };
    op = [](SyscallContext& ctx, BenchState& s) -> Status {
      EREBOR_ASSIGN_OR_RETURN(const uint64_t pid, ctx.Syscall(sys::kFork));
      // Reap: the child exits immediately; wait may need retries.
      for (int i = 0; i < 64; ++i) {
        auto r = ctx.Syscall(sys::kWait4, pid);
        if (r.ok()) {
          return OkStatus();
        }
        if (r.status().code() != ErrorCode::kUnavailable) {
          return r.status();
        }
        return OkStatus();  // child will be reaped by the scheduler; cost is captured
      }
      return OkStatus();
    };
  } else if (name == "mmap") {
    op = [](SyscallContext& ctx, BenchState& s) -> Status {
      EREBOR_ASSIGN_OR_RETURN(
          const uint64_t va,
          ctx.Syscall(sys::kMmap, 0, 16 * kPageSize,
                      sys::kProtRead | sys::kProtWrite, sys::kMapPopulate));
      return ctx.Syscall(sys::kMunmap, va).status();
    };
  } else if (name == "pagefault") {
    op = [](SyscallContext& ctx, BenchState& s) -> Status {
      EREBOR_ASSIGN_OR_RETURN(
          const uint64_t va,
          ctx.Syscall(sys::kMmap, 0, 8 * kPageSize, sys::kProtRead | sys::kProtWrite, 0));
      // Touch each page: demand faults through the full #PF path.
      for (int p = 0; p < 8; ++p) {
        uint8_t byte = static_cast<uint8_t>(p);
        EREBOR_RETURN_IF_ERROR(ctx.WriteUser(va + p * kPageSize, &byte, 1));
      }
      return ctx.Syscall(sys::kMunmap, va).status();
    };
  } else {
    return InvalidArgumentError("unknown lmbench benchmark: " + name);
  }

  auto task = world.LaunchProcess("lmbench-" + name, MakeBenchProgram(state, setup, op));
  EREBOR_RETURN_IF_ERROR(task.status());

  const uint64_t emc_before = world.privops().emc_count();
  const uint64_t trace_emc_before = Tracer::Global().CountKind(TraceEvent::kEmcEnter);
  EREBOR_RETURN_IF_ERROR(world.RunUntil([&] { return state->done; }, 10'000'000));
  if (state->failed) {
    return InternalError("lmbench " + name + ": " + state->error);
  }

  LmbenchResult result;
  result.name = name;
  result.operations = state->completed;
  result.total_cycles = state->cycles_used;
  result.emc_count = world.privops().emc_count() - emc_before;
  result.trace_emc_enter =
      Tracer::Global().CountKind(TraceEvent::kEmcEnter) - trace_emc_before;
  return result;
}

}  // namespace erebor
