#include "src/workloads/vision.h"

#include <cstring>

#include "src/common/rng.h"

namespace erebor {

namespace {
struct VisionRun {
  bool have_input = false;
  Bytes images;            // raw input batch
  Vaddr image_buf = 0;     // confined copy of the batch
  uint32_t next_image = 0; // work queue cursor
  uint32_t images_done = 0;
  Bytes results;
  bool done = false;
  EagainBackoff input_backoff;  // bounded wait for the image batch
};

constexpr Cycles kCyclesPerImage = 1'600'000;  // full conv pyramid cost
}  // namespace

LibosManifest VisionWorkload::Manifest() const {
  LibosManifest manifest;
  manifest.name = "yolo";
  manifest.heap_bytes = 4ull << 20;
  manifest.num_threads = params_.threads;
  manifest.preload_files.push_back({"labels.txt", Bytes(2048, 0x4C)});
  return manifest;
}

void VisionWorkload::FillCommonPage(uint64_t page_index, uint8_t* page) const {
  Rng rng(0x105E * 31 + page_index);
  rng.Fill(page, kPageSize);
}

Bytes VisionWorkload::MakeClientInput(uint64_t seed) const {
  // Batch of synthetic images with structured gradients + noise.
  const uint32_t dim = params_.image_dim;
  Bytes batch(static_cast<size_t>(params_.num_images) * dim * dim);
  Rng rng(seed * 1000003);
  for (uint32_t img = 0; img < params_.num_images; ++img) {
    uint8_t* base = batch.data() + static_cast<size_t>(img) * dim * dim;
    for (uint32_t y = 0; y < dim; ++y) {
      for (uint32_t x = 0; x < dim; ++x) {
        base[y * dim + x] =
            static_cast<uint8_t>((x * 2 + y + rng.NextBelow(32)) & 0xFF);
      }
    }
  }
  return batch;
}

ProgramFn VisionWorkload::MakeProgram(std::shared_ptr<AppState> state) {
  auto run = std::make_shared<VisionRun>();
  const VisionParams params = params_;

  // Processes one image: conv3x3 per layer with kernels read from the common model,
  // then threshold segmentation; appends {segments, mass} to results.
  auto process_image = [state, run, params](SyscallContext& ctx, uint32_t img) {
    const uint32_t dim = params.image_dim;
    const uint64_t img_bytes = static_cast<uint64_t>(dim) * dim;
    const Vaddr src_va = run->image_buf + img * img_bytes;

    // Kernel weights from common memory (touches model pages).
    const uint64_t model_pages = params.model_bytes >> kPageShift;
    uint8_t* kpage = MustPage(
        ctx, *state, state->common_base + AddrOf((img * 7) % model_pages), false);
    if (kpage == nullptr) {
      return;
    }
    int8_t kernel[9];
    for (int i = 0; i < 9; ++i) {
      kernel[i] = static_cast<int8_t>(kpage[i * 5] % 7 - 3);
    }

    // Real convolution over a sample of rows (full cost charged as cycles).
    uint64_t mass = 0;
    uint32_t segments = 0;
    for (uint32_t layer = 0; layer < params.conv_layers; ++layer) {
      for (uint32_t y = 1; y + 1 < dim; y += 4) {
        // Page pointers for three consecutive rows (all within one page if the image
        // is small enough; handle the general case per access).
        for (uint32_t x = 1; x + 1 < dim; ++x) {
          int32_t acc = 0;
          for (int dy = -1; dy <= 1; ++dy) {
            const Vaddr row_va = src_va + (y + dy) * dim;
            uint8_t* row = MustPage(ctx, *state, row_va, false);
            if (row == nullptr) {
              return;
            }
            const uint64_t row_off = row_va & kPageMask;
            (void)row_off;
            for (int dx = -1; dx <= 1; ++dx) {
              acc += kernel[(dy + 1) * 3 + (dx + 1)] *
                     static_cast<int32_t>(row[x + dx]);
            }
          }
          if (acc > 96) {
            ++segments;
            mass += static_cast<uint64_t>(acc);
          }
        }
      }
    }
    state->env->ChargeRuntime(ctx, 900);  // LibOS tax per image
    ctx.Compute(kCyclesPerImage);

    uint8_t record[12];
    StoreLe32(record, img);
    StoreLe32(record + 4, segments);
    StoreLe32(record + 8, static_cast<uint32_t>(mass & 0xFFFFFFFF));
    run->results.insert(run->results.end(), record, record + sizeof(record));
    if (img % 16 == 0) {
      (void)ctx.Cpuid(7);  // SIMD feature probe -> #VE path
    }
  };

  auto worker_body = [state, run, params, process_image](SyscallContext& ctx) -> StepOutcome {
    if (run->done || state->failed) {
      return StepOutcome::kExited;
    }
    LibosEnv& env = *state->env;
    if (!run->have_input) {
      ctx.Compute(300);
      return StepOutcome::kYield;
    }
    int img = -1;
    if (env.lock(1).TryAcquire(ctx, ctx.task().tid)) {
      if (run->next_image < params.num_images) {
        img = static_cast<int>(run->next_image++);
      }
      env.lock(1).Release();
    }
    if (img >= 0) {
      process_image(ctx, static_cast<uint32_t>(img));
      while (!env.lock(1).TryAcquire(ctx, ctx.task().tid)) {
        ctx.Compute(40);
      }
      ++run->images_done;
      env.lock(1).Release();
    }
    if (!ctx.Poll()) {
      return StepOutcome::kExited;
    }
    return StepOutcome::kYield;
  };

  return [state, run, params, process_image, worker_body](SyscallContext& ctx) -> StepOutcome {
    LibosEnv& env = *state->env;
    if (state->failed) {
      return StepOutcome::kExited;
    }
    if (!env.initialized()) {
      Status st = env.Initialize(ctx);
      const uint64_t batch_bytes =
          static_cast<uint64_t>(params.num_images) * params.image_dim * params.image_dim;
      if (st.ok()) {
        // Page-aligned so per-row accesses never straddle a frame boundary.
        auto buf = env.Alloc(batch_bytes + kPageSize);
        if (buf.ok()) {
          run->image_buf = PageAlignUp(*buf);
        } else {
          st = buf.status();
        }
      }
      if (st.ok() && params.threads > 1) {
        st = env.SpawnWorkers(ctx,
                              std::vector<ProgramFn>(params.threads - 1, worker_body));
      }
      if (!st.ok()) {
        state->failed = true;
        state->failure = st.ToString();
        return StepOutcome::kExited;
      }
      state->init_done = true;
      return StepOutcome::kYield;
    }
    if (!run->have_input) {
      auto input = env.RecvInput(ctx, 1ull << 20);
      if (!input.ok()) {
        if (!IsWouldBlock(input.status())) {
          state->failed = true;
          state->failure = input.status().ToString();
          return StepOutcome::kExited;
        }
        if (!run->input_backoff.ShouldRetry(ctx)) {
          state->failed = true;
          state->failure = "client input retry budget exhausted";
          return StepOutcome::kExited;
        }
        return StepOutcome::kYield;
      }
      run->input_backoff.Reset();
      // Stage the batch into confined memory (the client data install point).
      const Status st = ctx.WriteUser(run->image_buf, input->data(), input->size());
      if (!st.ok()) {
        state->failed = true;
        state->failure = st.ToString();
        return StepOutcome::kExited;
      }
      run->have_input = true;
      return StepOutcome::kYield;
    }
    // Leader also processes images.
    int img = -1;
    if (env.lock(1).TryAcquire(ctx, ctx.task().tid)) {
      if (run->next_image < params.num_images) {
        img = static_cast<int>(run->next_image++);
      }
      env.lock(1).Release();
    }
    if (img >= 0) {
      process_image(ctx, static_cast<uint32_t>(img));
      while (!env.lock(1).TryAcquire(ctx, ctx.task().tid)) {
        ctx.Compute(40);
      }
      ++run->images_done;
      env.lock(1).Release();
      if (!ctx.Poll()) {
        return StepOutcome::kExited;
      }
      return StepOutcome::kYield;
    }
    if (run->images_done < params.num_images) {
      ctx.Compute(200);  // wait for stragglers
      return StepOutcome::kYield;
    }
    if (!state->output_sent) {
      const Status st = env.SendOutput(ctx, run->results);
      if (!st.ok()) {
        state->failed = true;
        state->failure = st.ToString();
      }
      state->output_sent = true;
      run->done = true;
    }
    return StepOutcome::kExited;
  };
}

bool VisionWorkload::CheckOutput(const Bytes& input, const Bytes& output) const {
  return output.size() == static_cast<size_t>(params_.num_images) * 12;
}

}  // namespace erebor
