// Image-processing service (NCNN/YOLO-style segmentation, Table 5 row 2).
//
// The client sends a batch of grayscale images; the service runs a small convolution
// pyramid (real integer convolutions over the pixel data in confined memory, kernels
// from the common model region) and returns per-image segment statistics.
#ifndef EREBOR_SRC_WORKLOADS_VISION_H_
#define EREBOR_SRC_WORKLOADS_VISION_H_

#include "src/workloads/workload.h"

namespace erebor {

struct VisionParams {
  uint32_t image_dim = 64;     // images are dim x dim bytes
  uint32_t num_images = 96;
  uint32_t conv_layers = 2;
  uint64_t model_bytes = 2ull << 20;  // common model (kernels + LUTs)
  int threads = 4;
};

class VisionWorkload : public Workload {
 public:
  explicit VisionWorkload(VisionParams params = {}) : params_(params) {}

  std::string name() const override { return "yolo"; }
  LibosManifest Manifest() const override;
  uint64_t common_bytes() const override { return params_.model_bytes; }
  void FillCommonPage(uint64_t page_index, uint8_t* page) const override;
  Bytes MakeClientInput(uint64_t seed) const override;
  uint64_t background_vm_rate() const override { return 75'000; }
  ProgramFn MakeProgram(std::shared_ptr<AppState> state) override;
  bool CheckOutput(const Bytes& input, const Bytes& output) const override;

 private:
  VisionParams params_;
};

}  // namespace erebor

#endif  // EREBOR_SRC_WORKLOADS_VISION_H_
