// Cloud intrusion-detection service (Unicorn-style streaming provenance analysis,
// Table 5 row 5). The client sends a parsed event log; the service streams it through
// sliding-window feature hashing into per-window sketch histograms (confined memory)
// and scores each window against a baseline, returning flagged windows.
#ifndef EREBOR_SRC_WORKLOADS_IDS_H_
#define EREBOR_SRC_WORKLOADS_IDS_H_

#include "src/workloads/workload.h"

namespace erebor {

struct IdsParams {
  uint32_t num_events = 240'000;   // 16-byte events -> ~2 MB log (paper: 20 MB)
  uint32_t window_events = 2'048;
  uint32_t sketch_bins = 4'096;
  int threads = 4;
};

class IdsWorkload : public Workload {
 public:
  explicit IdsWorkload(IdsParams params = {}) : params_(params) {}

  std::string name() const override { return "unicorn"; }
  LibosManifest Manifest() const override;
  Bytes MakeClientInput(uint64_t seed) const override;
  uint64_t background_vm_rate() const override { return 52'000; }
  ProgramFn MakeProgram(std::shared_ptr<AppState> state) override;
  bool CheckOutput(const Bytes& input, const Bytes& output) const override;

 private:
  IdsParams params_;
};

}  // namespace erebor

#endif  // EREBOR_SRC_WORKLOADS_IDS_H_
