#include "src/client/client.h"

#include <cstring>

#include "src/common/metrics.h"

namespace erebor {

Digest256 ComputeExpectedMrtd(const Bytes& firmware_image, const Bytes& monitor_image) {
  MeasurementRegisters regs;
  regs.ExtendMrtd(Sha256::Hash(firmware_image));
  regs.ExtendMrtd(Sha256::Hash(monitor_image));
  return regs.mrtd;
}

namespace {
// Default retransmit schedule, in scheduler slices: generous enough for chaos soaks
// (dozens of retransmission rounds under heavy fault injection), tight enough that a
// dead peer exhausts the budget instead of wedging the session driver.
constexpr BackoffPolicy kClientRetryPolicy{
    .max_attempts = 256, .base_wait = 8, .max_wait = 256, .jitter_pct = 50};
}  // namespace

RemoteClient::RemoteClient(ClientTrustAnchors anchors, uint64_t seed)
    : anchors_(anchors), rng_(seed), backoff_(kClientRetryPolicy, seed) {}

void RemoteClient::SetRetryPolicy(const BackoffPolicy& policy) {
  // Re-seed from the client's own stream so distinct clients stay decorrelated.
  backoff_ = JitteredBackoff(policy, rng_.Next());
}

void RemoteClient::AccountResend() {
  ++retries_;
  MetricsRegistry::Global().Increment("channel.retries");
  if (!backoff_.NextWait(&retry_wait_)) {
    retry_wait_ = backoff_.policy().max_wait;  // exhausted: caller must give up
  }
}

Bytes RemoteClient::MakeHello(int sandbox_id) {
  sandbox_id_ = sandbox_id;
  ephemeral_ = GenerateKeyPair(GroupParams::Default(), rng_);
  rng_.Fill(nonce_.data(), nonce_.size());
  Packet packet;
  packet.type = PacketType::kClientHello;
  packet.sandbox_id = sandbox_id;
  packet.client_public = ephemeral_.public_key;
  packet.nonce = nonce_;
  last_hello_wire_ = packet.Serialize();
  return last_hello_wire_;
}

Bytes RemoteClient::ResendHello() {
  AccountResend();
  return last_hello_wire_;
}

Bytes RemoteClient::ResendData() {
  AccountResend();
  return last_data_wire_;
}

Status RemoteClient::ProcessServerHello(const Bytes& wire) {
  EREBOR_ASSIGN_OR_RETURN(const Packet packet, Packet::Deserialize(wire));
  if (packet.type != PacketType::kServerHello) {
    return InvalidArgumentError("expected ServerHello");
  }
  // 1. Quote signature: signed by the platform attestation key.
  if (!SchnorrVerify(GroupParams::Default(), anchors_.platform_attestation_key,
                     packet.quote.report.SerializeForMac(), packet.quote.signature)) {
    return PermissionDeniedError("quote signature verification failed");
  }
  // 2. Measurement: the CVM must be running exactly the expected firmware + monitor.
  if (!ConstantTimeEqual(packet.quote.report.measurements.mrtd.data(),
                         anchors_.expected_mrtd.data(), 32)) {
    return PermissionDeniedError("MRTD mismatch: unexpected monitor/firmware");
  }
  // 3. Transcript binding: report_data must commit to *this* handshake, so the DH peer
  // is the measured monitor (no impersonation by the untrusted OS, claim C5).
  const Digest256 transcript =
      HandshakeTranscript(ephemeral_.public_key, packet.monitor_public, nonce_);
  if (!ConstantTimeEqual(packet.quote.report.report_data.data(), transcript.data(), 32)) {
    return PermissionDeniedError("quote does not bind this handshake");
  }
  const Bytes shared =
      DhSharedSecret(GroupParams::Default(), ephemeral_.private_key, packet.monitor_public);
  keys_ = DeriveSessionKeys(shared, transcript);
  established_ = true;
  return OkStatus();
}

Bytes RemoteClient::SealData(const Bytes& plaintext) {
  // Seal straight into the wire buffer; byte-identical to the old
  // Packet-serialize path, minus its staging copies.
  last_data_wire_ = SealRecordWire(keys_.client_to_server, PacketType::kDataRecord,
                                   sandbox_id_, send_seq_++, plaintext);
  return last_data_wire_;
}

StatusOr<Bytes> RemoteClient::OpenResult(const Bytes& wire) {
  EREBOR_ASSIGN_OR_RETURN(const RecordView view, ParseRecordWire(wire));
  if (view.type != PacketType::kResultRecord) {
    return InvalidArgumentError("expected ResultRecord");
  }
  if (view.sandbox_id != sandbox_id_) {
    return InvalidArgumentError("result record for a different sandbox");
  }
  const uint64_t seq = view.sequence;
  if (seq < recv_seq_) {
    return AlreadyExistsError("duplicate result record (seq " + std::to_string(seq) +
                              " already consumed)");
  }
  if (seq > recv_seq_) {
    if (seq - recv_seq_ > ChannelSession::kReorderWindow) {
      return OutOfRangeError("result record beyond the reorder window");
    }
    SealedRecord& slot = stashed_[seq];
    slot.sequence = seq;
    slot.ciphertext.assign(view.ciphertext, view.ciphertext + view.ciphertext_len);
    slot.tag = view.tag;
    return UnavailableError("result out of order; stashed awaiting seq " +
                            std::to_string(recv_seq_));
  }
  EREBOR_ASSIGN_OR_RETURN(const Bytes padded,
                          OpenRecordWire(keys_.server_to_client, view, recv_seq_));
  ++recv_seq_;
  return UnpadOutput(padded);
}

StatusOr<Bytes> RemoteClient::PopStashedResult() {
  const auto it = stashed_.find(recv_seq_);
  if (it == stashed_.end()) {
    return NotFoundError("no stashed result at seq " + std::to_string(recv_seq_));
  }
  const RecordAad aad{static_cast<uint8_t>(PacketType::kResultRecord), sandbox_id_};
  EREBOR_ASSIGN_OR_RETURN(
      const Bytes padded, AeadOpen(keys_.server_to_client, aad, it->second, recv_seq_));
  stashed_.erase(it);
  ++recv_seq_;
  return UnpadOutput(padded);
}

Bytes RemoteClient::MakeFin() {
  Packet packet;
  packet.type = PacketType::kFin;
  packet.sandbox_id = sandbox_id_;
  return packet.Serialize();
}

}  // namespace erebor
