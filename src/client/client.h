// The remote client: owns sensitive data, verifies the CVM quote, and exchanges data
// with the Erebor monitor over the authenticated encrypted channel (paper section 6.3).
// Runs entirely "outside" the simulated machine — it only ever sees wire bytes.
#ifndef EREBOR_SRC_CLIENT_CLIENT_H_
#define EREBOR_SRC_CLIENT_CLIENT_H_

#include <map>

#include "src/common/backoff.h"
#include "src/monitor/channel.h"

namespace erebor {

// What a client must know a priori: the platform vendor's attestation public key and
// the measurement of the open-source firmware + monitor it expects to talk to.
struct ClientTrustAnchors {
  U256 platform_attestation_key;
  Digest256 expected_mrtd{};
};

// Computes the expected MRTD for given firmware + monitor binaries (the client builds
// these reproducibly from the open-source releases).
Digest256 ComputeExpectedMrtd(const Bytes& firmware_image, const Bytes& monitor_image);

class RemoteClient {
 public:
  RemoteClient(ClientTrustAnchors anchors, uint64_t seed);

  // Handshake.
  Bytes MakeHello(int sandbox_id);
  // Verifies the quote (signature, measurement, transcript binding) and derives the
  // session keys. kPermissionDenied on any verification failure.
  Status ProcessServerHello(const Bytes& wire);
  bool established() const { return established_; }

  // Data exchange.
  Bytes SealData(const Bytes& plaintext);          // -> kDataRecord wire
  // Opens the next result. The transport (the untrusted host) may duplicate or
  // reorder records, so the client keeps its own window:
  //  - a record below recv_seq is a duplicate -> AlreadyExistsError (safe to ignore);
  //  - a record ahead of recv_seq within kReorderWindow is stashed ->
  //    UnavailableError (drain it with PopStashedResult once the gap fills);
  //  - anything further ahead -> OutOfRangeError.
  StatusOr<Bytes> OpenResult(const Bytes& wire);   // <- kResultRecord wire (unpads)
  // Opens the stashed record at recv_seq, if any (NotFoundError otherwise). Call
  // repeatedly after an in-order OpenResult to drain a healed reorder gap.
  StatusOr<Bytes> PopStashedResult();
  bool HasStashedResult() const { return stashed_.count(recv_seq_) != 0; }
  Bytes MakeFin();

  // Loss recovery: byte-identical retransmissions of the last hello / data record.
  // The monitor's handshake replay cache answers a resent hello with the identical
  // cached ServerHello; a resent data record is absorbed as a duplicate and triggers
  // a retransmit of any lost result. Both bump the "channel.retries" metric.
  //
  // Retransmit pacing is centralized here instead of in every caller's loop: both
  // resend paths draw on one jittered exponential retry budget (src/common/backoff.h)
  // seeded per-client, so a fleet of clients that time out together does not
  // retransmit in lockstep. Each Resend* accounts one attempt and refreshes
  // retry_wait() — the pause, in scheduler slices, the caller should pump before
  // expecting the retransmission to have been answered. Once the budget is
  // exhausted, retry_budget_exhausted() turns true and the caller must fail the
  // session rather than keep flooding a peer that will never answer.
  Bytes ResendHello();
  Bytes ResendData();
  uint64_t retry_wait() const { return retry_wait_; }
  bool retry_budget_exhausted() const { return backoff_.exhausted(); }
  void SetRetryPolicy(const BackoffPolicy& policy);  // resets the budget
  void ResetRetryBudget() { backoff_.Reset(); }
  uint64_t retries() const { return retries_; }

  int sandbox_id() const { return sandbox_id_; }

 private:
  void AccountResend();

  ClientTrustAnchors anchors_;
  Rng rng_;
  int sandbox_id_ = -1;
  KeyPair ephemeral_;
  std::array<uint8_t, 32> nonce_{};
  SessionKeys keys_;
  uint64_t send_seq_ = 0;
  uint64_t recv_seq_ = 0;
  bool established_ = false;

  Bytes last_hello_wire_;
  Bytes last_data_wire_;
  uint64_t retries_ = 0;
  JitteredBackoff backoff_;
  uint64_t retry_wait_ = 0;
  std::map<uint64_t, SealedRecord> stashed_;  // out-of-order results awaiting the gap
};

}  // namespace erebor

#endif  // EREBOR_SRC_CLIENT_CLIENT_H_
