// The remote client: owns sensitive data, verifies the CVM quote, and exchanges data
// with the Erebor monitor over the authenticated encrypted channel (paper section 6.3).
// Runs entirely "outside" the simulated machine — it only ever sees wire bytes.
#ifndef EREBOR_SRC_CLIENT_CLIENT_H_
#define EREBOR_SRC_CLIENT_CLIENT_H_

#include "src/monitor/channel.h"

namespace erebor {

// What a client must know a priori: the platform vendor's attestation public key and
// the measurement of the open-source firmware + monitor it expects to talk to.
struct ClientTrustAnchors {
  U256 platform_attestation_key;
  Digest256 expected_mrtd{};
};

// Computes the expected MRTD for given firmware + monitor binaries (the client builds
// these reproducibly from the open-source releases).
Digest256 ComputeExpectedMrtd(const Bytes& firmware_image, const Bytes& monitor_image);

class RemoteClient {
 public:
  RemoteClient(ClientTrustAnchors anchors, uint64_t seed);

  // Handshake.
  Bytes MakeHello(int sandbox_id);
  // Verifies the quote (signature, measurement, transcript binding) and derives the
  // session keys. kPermissionDenied on any verification failure.
  Status ProcessServerHello(const Bytes& wire);
  bool established() const { return established_; }

  // Data exchange.
  Bytes SealData(const Bytes& plaintext);          // -> kDataRecord wire
  StatusOr<Bytes> OpenResult(const Bytes& wire);   // <- kResultRecord wire (unpads)
  Bytes MakeFin();

  int sandbox_id() const { return sandbox_id_; }

 private:
  ClientTrustAnchors anchors_;
  Rng rng_;
  int sandbox_id_ = -1;
  KeyPair ephemeral_;
  std::array<uint8_t, 32> nonce_{};
  SessionKeys keys_;
  uint64_t send_seq_ = 0;
  uint64_t recv_seq_ = 0;
  bool established_ = false;
};

}  // namespace erebor

#endif  // EREBOR_SRC_CLIENT_CLIENT_H_
