// Guest-Host Communication Interface (GHCI) request/response structures used for
// synchronous CVM exits (tdcall with the vmcall leaf), per Figure 1 of the paper.
#ifndef EREBOR_SRC_TDX_GHCI_H_
#define EREBOR_SRC_TDX_GHCI_H_

#include <cstdint>

#include "src/common/bytes.h"

namespace erebor {

enum class GhciReason : uint32_t {
  kCpuid,      // CPUID emulation request
  kMmioRead,   // device MMIO read
  kMmioWrite,  // device MMIO write
  kNetTx,      // transmit a packet buffer (shared memory)
  kNetRx,      // poll for a received packet
  kHalt,       // idle / yield to host
};

struct GhciRequest {
  GhciReason reason = GhciReason::kHalt;
  uint64_t arg0 = 0;  // e.g. cpuid leaf, MMIO gpa, packet gpa
  uint64_t arg1 = 0;  // e.g. cpuid subleaf, MMIO size, packet length
};

struct GhciResponse {
  uint64_t ret0 = 0;
  uint64_t ret1 = 0;
  Bytes payload;  // host-filled payload (e.g. received packet)
};

// tdcall leaf numbers (subset of the real interface).
namespace tdcall_leaf {
inline constexpr uint64_t kVmcall = 0;       // TDG.VP.VMCALL: synchronous exit to host
inline constexpr uint64_t kTdReport = 4;     // TDG.MR.REPORT
inline constexpr uint64_t kRtmrExtend = 2;   // TDG.MR.RTMR.EXTEND
inline constexpr uint64_t kMapGpa = 16;      // TDG.VP.VMCALL<MapGPA>: shared<->private
inline constexpr uint64_t kAcceptPage = 6;   // TDG.MEM.PAGE.ACCEPT
}  // namespace tdcall_leaf

}  // namespace erebor

#endif  // EREBOR_SRC_TDX_GHCI_H_
