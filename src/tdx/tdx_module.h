// Simulated TDX module: the trusted, Intel-signed software that mediates between the
// CVM guest and the untrusted host (paper section 2.1).
//
// Responsibilities modelled:
//  - the secure EPT: per-frame private/shared state, flipped only via tdcall(MapGPA);
//  - tdcall leaves: VMCALL (synchronous exit via GHCI), TDREPORT, RTMR extension;
//  - asynchronous exit context protection: guest registers are saved and scrubbed
//    before the host regains control, and restored on re-entry;
//  - quote signing with the platform attestation key.
#ifndef EREBOR_SRC_TDX_TDX_MODULE_H_
#define EREBOR_SRC_TDX_TDX_MODULE_H_

#include <functional>
#include <map>

#include "src/crypto/group.h"
#include "src/crypto/hmac.h"
#include "src/hw/cpu.h"
#include "src/hw/machine.h"
#include "src/tdx/ghci.h"
#include "src/tdx/report.h"

namespace erebor {

// Host-side VMCALL handler (implemented by host::HostVmm).
class VmcallSink {
 public:
  virtual ~VmcallSink() = default;
  virtual GhciResponse HandleVmcall(const GhciRequest& request) = 0;
};

class TdxModule : public TdcallSink {
 public:
  explicit TdxModule(Machine* machine);

  void SetVmcallSink(VmcallSink* sink) { vmcall_sink_ = sink; }

  // ---- Measured boot ----
  // Called by the loader for the firmware and monitor binaries before guest launch.
  void MeasureBootComponent(const Bytes& binary);
  const MeasurementRegisters& measurements() const { return measurements_; }

  // ---- TdcallSink ----
  // args layout per leaf:
  //   kVmcall:     args[0]=GhciReason, args[1..2]=request args; response written to
  //                args[1..2] and, for payloads, to the guest buffer named by args[1].
  //   kTdReport:   args[0]=gpa of 64-byte report_data in, args[1]=gpa of report out.
  //   kMapGpa:     args[0]=gpa, args[1]=num pages, args[2]=1 for shared / 0 private.
  //   kRtmrExtend: args[0]=rtmr index, args[1]=gpa of 32-byte digest.
  Status Tdcall(Cpu& cpu, uint64_t leaf, uint64_t* args, size_t nargs) override;

  // Reads back a report deposited by the kTdReport leaf (simulation-side accessor used
  // by the monitor, which in real hardware would parse the guest buffer).
  StatusOr<TdReport> TakeLastReport();

  // ---- Quote signing (quoting-enclave stand-in) ----
  TdQuote SignQuote(const TdReport& report);
  const U256& attestation_public_key() const { return attestation_key_.public_key; }

  // ---- Asynchronous exits (host preemption) ----
  // The TDX module saves and scrubs guest register state so the host observes nothing.
  void AsyncExitToHost(Cpu& cpu);
  void ResumeFromHost(Cpu& cpu);
  bool HasSavedContext(int cpu_index) const;
  // What the *host* can see of the guest registers after an async exit (all zeros).
  Gprs HostVisibleGuestState(const Cpu& cpu) const;

  // Statistics.
  uint64_t vmcall_count() const { return vmcall_count_; }
  uint64_t map_gpa_count() const { return map_gpa_count_; }
  uint64_t report_count() const { return report_count_; }

 private:
  GhciResponse DispatchVmcall(const GhciRequest& request);

  Machine* machine_;
  VmcallSink* vmcall_sink_ = nullptr;
  MeasurementRegisters measurements_;
  Bytes report_mac_key_;         // module-internal HMAC key
  KeyPair attestation_key_;      // platform quote-signing key
  Rng rng_;
  std::map<int, Gprs> saved_contexts_;
  bool has_last_report_ = false;
  TdReport last_report_;
  uint64_t vmcall_count_ = 0;
  uint64_t map_gpa_count_ = 0;
  uint64_t report_count_ = 0;
};

}  // namespace erebor

#endif  // EREBOR_SRC_TDX_TDX_MODULE_H_
