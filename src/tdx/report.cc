#include "src/tdx/report.h"

namespace erebor {

void MeasurementRegisters::ExtendRtmr(int index, const Digest256& digest) {
  Sha256 hasher;
  hasher.Update(rtmr[index].data(), rtmr[index].size());
  hasher.Update(digest.data(), digest.size());
  rtmr[index] = hasher.Finish();
}

void MeasurementRegisters::ExtendMrtd(const Digest256& digest) {
  Sha256 hasher;
  hasher.Update(mrtd.data(), mrtd.size());
  hasher.Update(digest.data(), digest.size());
  mrtd = hasher.Finish();
}

Bytes MeasurementRegisters::Serialize() const {
  Bytes out;
  out.insert(out.end(), mrtd.begin(), mrtd.end());
  for (const auto& r : rtmr) {
    out.insert(out.end(), r.begin(), r.end());
  }
  return out;
}

Bytes TdReport::SerializeForMac() const {
  Bytes out = measurements.Serialize();
  out.insert(out.end(), report_data.begin(), report_data.end());
  return out;
}

}  // namespace erebor
