// TDREPORT / quote structures (paper section 2.1 "Remote attestation").
//
// A TDREPORT binds the CVM's boot measurements (MRTD + runtime measurement registers)
// to 64 bytes of guest-chosen report data, MAC'd with a key known only to the TDX
// module/CPU. A quote wraps the report in a signature verifiable off-platform; the
// simulation signs with a Schnorr key standing in for the Intel quoting enclave chain.
#ifndef EREBOR_SRC_TDX_REPORT_H_
#define EREBOR_SRC_TDX_REPORT_H_

#include <array>

#include "src/common/bytes.h"
#include "src/crypto/group.h"
#include "src/crypto/sha256.h"

namespace erebor {

struct MeasurementRegisters {
  Digest256 mrtd{};                    // build-time measurement (firmware + monitor)
  std::array<Digest256, 4> rtmr{};     // runtime measurement registers

  // RTMR extension: rtmr[i] = SHA256(rtmr[i] || digest).
  void ExtendRtmr(int index, const Digest256& digest);
  void ExtendMrtd(const Digest256& digest);

  Bytes Serialize() const;
};

struct TdReport {
  MeasurementRegisters measurements;
  std::array<uint8_t, 64> report_data{};
  Digest256 mac{};  // integrity over measurements || report_data, keyed by the module

  Bytes SerializeForMac() const;
};

struct TdQuote {
  TdReport report;
  Signature signature;  // over SerializeForMac(), by the platform attestation key
};

}  // namespace erebor

#endif  // EREBOR_SRC_TDX_REPORT_H_
