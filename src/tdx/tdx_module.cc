#include "src/tdx/tdx_module.h"

#include <cstring>

#include "src/common/faultpoint.h"
#include "src/common/log.h"
#include "src/common/metrics.h"
#include "src/common/trace.h"

namespace erebor {

TdxModule::TdxModule(Machine* machine)
    : machine_(machine), rng_(0x7D7E51D0D) {
  report_mac_key_.resize(32);
  rng_.Fill(report_mac_key_.data(), report_mac_key_.size());
  attestation_key_ = GenerateKeyPair(GroupParams::Default(), rng_);
}

void TdxModule::MeasureBootComponent(const Bytes& binary) {
  measurements_.ExtendMrtd(Sha256::Hash(binary));
}

GhciResponse TdxModule::DispatchVmcall(const GhciRequest& request) {
  ++vmcall_count_;
  if (vmcall_sink_ == nullptr) {
    return GhciResponse{};
  }
  return vmcall_sink_->HandleVmcall(request);
}

Status TdxModule::Tdcall(Cpu& cpu, uint64_t leaf, uint64_t* args, size_t nargs) {
  if (FaultInjector::Armed() &&
      FaultInjector::Global().Fire("tdx.tdcall.entry", FaultAction::kFail)) {
    // Models a transient SEAMCALL/TDCALL refusal (host scheduling the SEAM module
    // out): the guest sees a retryable error, never partial module state.
    return UnavailableError("EAGAIN: injected tdcall fault");
  }
  switch (leaf) {
    case tdcall_leaf::kVmcall: {
      if (nargs < 3) {
        return InvalidArgumentError("vmcall needs 3 args");
      }
      // Synchronous exit: the TDX module saves/restores the guest context around the
      // host handoff, so only the explicit GHCI registers are visible to the host.
      cpu.cycles().Charge(cpu.costs().tdcall_round_trip);
      Tracer& tracer = Tracer::Global();
      if (tracer.enabled()) {
        tracer.Record(TraceEvent::kTdxVmcall, cpu.index(), cpu.cycles().now(), -1,
                      args[0]);
        MetricsRegistry::Global()
            .GetHistogram("trace.tdcall_cycles")
            ->Observe(cpu.costs().tdcall_round_trip);
      }
      GhciRequest request;
      request.reason = static_cast<GhciReason>(args[0]);
      request.arg0 = args[1];
      request.arg1 = args[2];
      GhciResponse response = DispatchVmcall(request);
      if (FaultInjector::Armed() &&
          FaultInjector::Global().Fire("tdx.tdcall.exit", FaultAction::kCorrupt)) {
        // The host's GHCI response registers are untrusted. The injected corruption
        // scrubs them to the "host returned nothing" shape; consumers must treat it
        // as a failed/empty exchange and retry, never as trusted data.
        response = GhciResponse{};
      }
      args[1] = response.ret0;
      args[2] = response.ret1;
      if (!response.payload.empty() && request.reason == GhciReason::kNetRx) {
        // Host writes the received packet into the shared buffer named by arg0. The
        // DMA path enforces that the buffer is shared memory.
        EREBOR_RETURN_IF_ERROR(machine_->dma().DeviceWrite(
            request.arg0, response.payload.data(), response.payload.size()));
        args[1] = response.payload.size();
      }
      return OkStatus();
    }
    case tdcall_leaf::kTdReport: {
      if (nargs < 2) {
        return InvalidArgumentError("tdreport needs 2 args");
      }
      cpu.cycles().Charge(cpu.costs().native_tdreport);
      Tracer::Global().Record(TraceEvent::kTdxReport, cpu.index(), cpu.cycles().now());
      TdReport report;
      report.measurements = measurements_;
      EREBOR_RETURN_IF_ERROR(machine_->memory().Read(args[0], report.report_data.data(),
                                                     report.report_data.size()));
      const Bytes serialized = report.SerializeForMac();
      HmacSha256 mac(report_mac_key_);
      mac.Update(serialized);
      report.mac = mac.Finish();
      last_report_ = report;
      has_last_report_ = true;
      ++report_count_;
      return OkStatus();
    }
    case tdcall_leaf::kRtmrExtend: {
      if (nargs < 2) {
        return InvalidArgumentError("rtmr-extend needs 2 args");
      }
      if (args[0] >= 4) {
        return InvalidArgumentError("rtmr index out of range");
      }
      Digest256 digest;
      EREBOR_RETURN_IF_ERROR(machine_->memory().Read(args[1], digest.data(), digest.size()));
      measurements_.ExtendRtmr(static_cast<int>(args[0]), digest);
      Tracer::Global().Record(TraceEvent::kTdxRtmrExtend, cpu.index(),
                              cpu.cycles().now(), -1, args[0]);
      return OkStatus();
    }
    case tdcall_leaf::kMapGpa: {
      if (nargs < 3) {
        return InvalidArgumentError("map-gpa needs 3 args");
      }
      cpu.cycles().Charge(cpu.costs().tdcall_round_trip);
      const Paddr gpa = args[0];
      const uint64_t pages = args[1];
      const bool to_shared = args[2] != 0;
      if (!machine_->memory().Contains(gpa, pages * kPageSize)) {
        return OutOfRangeError("MapGPA range outside guest memory");
      }
      for (uint64_t i = 0; i < pages; ++i) {
        const FrameNum frame = FrameOf(gpa) + i;
        if (to_shared) {
          // Converting to shared surrenders the contents: the module scrubs the frame
          // so no stale private data leaks to the host.
          machine_->memory().ZeroFrame(frame);
        }
        machine_->memory().SetShared(frame, to_shared);
      }
      ++map_gpa_count_;
      Tracer::Global().Record(TraceEvent::kTdxMapGpa, cpu.index(), cpu.cycles().now(),
                              -1, pages);
      return OkStatus();
    }
    case tdcall_leaf::kAcceptPage:
      // Page-accept is a no-op in this simplified sEPT model (frames are pre-accepted).
      return OkStatus();
    default:
      return UnimplementedError("unknown tdcall leaf " + std::to_string(leaf));
  }
}

StatusOr<TdReport> TdxModule::TakeLastReport() {
  if (!has_last_report_) {
    return NotFoundError("no TDREPORT generated");
  }
  has_last_report_ = false;
  return last_report_;
}

TdQuote TdxModule::SignQuote(const TdReport& report) {
  TdQuote quote;
  quote.report = report;
  quote.signature = SchnorrSign(GroupParams::Default(), attestation_key_.private_key,
                                report.SerializeForMac(), rng_);
  return quote;
}

void TdxModule::AsyncExitToHost(Cpu& cpu) {
  // Save then scrub: the host scheduler sees zeroed registers (paper section 2.1).
  saved_contexts_[cpu.index()] = cpu.gprs();
  cpu.gprs().Clear();
}

void TdxModule::ResumeFromHost(Cpu& cpu) {
  const auto it = saved_contexts_.find(cpu.index());
  if (it != saved_contexts_.end()) {
    cpu.gprs() = it->second;
    saved_contexts_.erase(it);
  }
}

bool TdxModule::HasSavedContext(int cpu_index) const {
  return saved_contexts_.count(cpu_index) > 0;
}

Gprs TdxModule::HostVisibleGuestState(const Cpu& cpu) const {
  // During an async exit the guest state lives in the TDX module's protected save area;
  // the host-visible register file is whatever the module left in the vCPU (zeros).
  Gprs visible{};
  if (!HasSavedContext(cpu.index())) {
    visible = const_cast<Cpu&>(cpu).gprs();
  }
  return visible;
}

}  // namespace erebor
