#include "src/kernel/fs.h"

namespace erebor {

Status RamFs::Create(const std::string& path, Bytes contents) {
  auto file = std::make_unique<RamFile>();
  file->data = std::move(contents);
  files_[path] = std::move(file);
  return OkStatus();
}

StatusOr<RamFile*> RamFs::Open(const std::string& path, bool create) {
  auto it = files_.find(path);
  if (it == files_.end()) {
    if (!create) {
      return NotFoundError("no such file: " + path);
    }
    files_[path] = std::make_unique<RamFile>();
    it = files_.find(path);
  }
  return it->second.get();
}

Status RamFs::Remove(const std::string& path) {
  if (files_.erase(path) == 0) {
    return NotFoundError("no such file: " + path);
  }
  return OkStatus();
}

StatusOr<uint64_t> RamFs::SizeOf(const std::string& path) const {
  const auto it = files_.find(path);
  if (it == files_.end()) {
    return NotFoundError("no such file: " + path);
  }
  return it->second->data.size();
}

std::vector<std::string> RamFs::List() const {
  std::vector<std::string> names;
  names.reserve(files_.size());
  for (const auto& [name, _] : files_) {
    names.push_back(name);
  }
  return names;
}

uint64_t RamFs::total_bytes() const {
  uint64_t total = 0;
  for (const auto& [_, file] : files_) {
    total += file->data.size();
  }
  return total;
}

int FdTable::Install(OpenFile file) {
  const int fd = next_fd_++;
  files_[fd] = std::move(file);
  return fd;
}

StatusOr<OpenFile*> FdTable::Get(int fd) {
  const auto it = files_.find(fd);
  if (it == files_.end()) {
    return InvalidArgumentError("bad file descriptor " + std::to_string(fd));
  }
  return &it->second;
}

Status FdTable::Close(int fd) {
  if (files_.erase(fd) == 0) {
    return InvalidArgumentError("bad file descriptor " + std::to_string(fd));
  }
  return OkStatus();
}

}  // namespace erebor
