// Physical frame allocators: a general bitmap pool and a contiguous CMA-style region
// reserved for sandbox confined memory (paper section 7: "Linux Contiguous Memory
// Allocator" backend).
#ifndef EREBOR_SRC_KERNEL_FRAME_ALLOC_H_
#define EREBOR_SRC_KERNEL_FRAME_ALLOC_H_

#include <vector>

#include "src/common/status.h"
#include "src/hw/types.h"

namespace erebor {

class FrameAllocator {
 public:
  FrameAllocator(FrameNum first, FrameNum count);

  StatusOr<FrameNum> Alloc();
  StatusOr<FrameNum> AllocContiguous(uint64_t count);
  Status Free(FrameNum frame);

  FrameNum first() const { return first_; }
  FrameNum count() const { return count_; }
  uint64_t used() const { return used_; }
  uint64_t available() const { return count_ - used_; }
  bool Owns(FrameNum frame) const { return frame >= first_ && frame < first_ + count_; }

 private:
  FrameNum first_;
  FrameNum count_;
  std::vector<bool> bitmap_;
  FrameNum next_hint_ = 0;
  uint64_t used_ = 0;
};

}  // namespace erebor

#endif  // EREBOR_SRC_KERNEL_FRAME_ALLOC_H_
