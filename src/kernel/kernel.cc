#include "src/kernel/kernel.h"

#include <algorithm>
#include <cstring>

#include "src/common/backoff.h"
#include "src/common/faultpoint.h"
#include "src/common/log.h"
#include "src/common/metrics.h"
#include "src/common/trace.h"

namespace erebor {

namespace {
// Program/handler stashes: syscall arguments are integers, so callables crossing the
// syscall boundary (clone entry points, signal handlers) are registered here first and
// referenced by token.
struct Stash {
  std::map<uint64_t, ProgramFn> programs;
  std::map<uint64_t, SignalHandlerFn> signals;
  uint64_t next_token = 1;
};
Stash& GetStash() {
  static Stash stash;
  return stash;
}
}  // namespace

uint64_t StashProgram(ProgramFn fn) {
  Stash& stash = GetStash();
  const uint64_t token = stash.next_token++;
  stash.programs[token] = std::move(fn);
  return token;
}

uint64_t StashSignalHandler(SignalHandlerFn fn) {
  Stash& stash = GetStash();
  const uint64_t token = stash.next_token++;
  stash.signals[token] = std::move(fn);
  return token;
}

Kernel::Kernel(Machine* machine, PrivilegedOps* ops, TdxModule* tdx, HostVmm* host,
               KernelConfig config)
    : machine_(machine), ops_(ops), tdx_(tdx), host_(host), config_(config) {
  current_.resize(machine->num_cpus(), nullptr);
}

Status Kernel::Boot() {
  Cpu& cpu = boot_cpu();
  const Cycles boot_start = cpu.cycles().now();

  // Physical pools: [general | CMA]; CMA occupies the top kCmaFractionPercent of RAM.
  const FrameNum total = machine_->memory().num_frames();
  const FrameNum cma_frames = total * layout::kCmaFractionPercent / 100;
  const FrameNum cma_first = total - cma_frames;
  pool_ = std::make_unique<FrameAllocator>(layout::kGeneralPoolFirstFrame,
                                           cma_first - layout::kGeneralPoolFirstFrame);
  cma_ = std::make_unique<FrameAllocator>(cma_first, cma_frames);

  EREBOR_ASSIGN_OR_RETURN(kernel_aspace_,
                          BuildKernelAddressSpace(cpu, machine_, ops_, pool_.get()));

  // Program every CPU: CR3, protection bits, IDT, syscall entry.
  EREBOR_RETURN_IF_ERROR(SetupIdt());
  EREBOR_RETURN_IF_ERROR(SetupSyscallMsr());
  for (int i = 0; i < machine_->num_cpus(); ++i) {
    Cpu& c = machine_->cpu(i);
    EREBOR_RETURN_IF_ERROR(ops_->WriteCr(c, 3, kernel_aspace_->root()));
    EREBOR_RETURN_IF_ERROR(ops_->WriteCr(c, 0, cr::kCr0Wp));
    uint64_t cr4 = c.cr4();
    if (config_.enable_smep_smap) {
      cr4 |= cr::kCr4Smep | cr::kCr4Smap;
    }
    EREBOR_RETURN_IF_ERROR(ops_->WriteCr(c, 4, cr4));
  }

  // Shared-IO window for device DMA: convert to shared via the GHCI.
  net_buffer_pa_ = AddrOf(layout::kSharedIoFirstFrame);
  uint64_t args[3] = {net_buffer_pa_, config_.shared_net_buffer_frames, 1};
  EREBOR_RETURN_IF_ERROR(ops_->Tdcall(cpu, tdcall_leaf::kMapGpa, args, 3));

  machine_->interrupts().SetTimerPeriod(config_.timer_period);

  stats_.boot_cycles = cpu.cycles().now() - boot_start;
  booted_ = true;
  return OkStatus();
}

Status Kernel::SetupIdt() {
  CodeRegistry& registry = machine_->registry();
  const CodeLabelId pf_label = registry.Register("kernel_page_fault", CodeDomain::kKernel, true);
  const CodeLabelId timer_label = registry.Register("kernel_timer", CodeDomain::kKernel, true);
  const CodeLabelId device_label = registry.Register("kernel_device_irq", CodeDomain::kKernel, true);
  const CodeLabelId ve_label = registry.Register("kernel_ve", CodeDomain::kKernel, true);
  const CodeLabelId gp_label = registry.Register("kernel_gp", CodeDomain::kKernel, true);
  const CodeLabelId excp_label =
      registry.Register("kernel_fatal_exception", CodeDomain::kKernel, true);

  idt_.gate[static_cast<uint8_t>(Vector::kPageFault)] = pf_label;
  idt_.gate[static_cast<uint8_t>(Vector::kTimer)] = timer_label;
  idt_.gate[static_cast<uint8_t>(Vector::kDevice)] = device_label;
  idt_.gate[static_cast<uint8_t>(Vector::kVirtualizationException)] = ve_label;
  idt_.gate[static_cast<uint8_t>(Vector::kGeneralProtection)] = gp_label;
  idt_.gate[static_cast<uint8_t>(Vector::kDivideError)] = excp_label;
  idt_.gate[static_cast<uint8_t>(Vector::kInvalidOpcode)] = excp_label;

  for (int i = 0; i < machine_->num_cpus(); ++i) {
    Cpu& c = machine_->cpu(i);
    c.BindHandler(pf_label, [this](Cpu& cpu, const Fault& f) { PageFaultEntry(cpu, f); });
    c.BindHandler(timer_label, [this](Cpu& cpu, const Fault& f) { TimerEntry(cpu, f); });
    c.BindHandler(device_label, [this](Cpu& cpu, const Fault& f) {
      const auto kernel_handler = [this] { ++stats_.device_interrupts; };
      if (interrupt_interposer_) {
        interrupt_interposer_(cpu, f, kernel_handler);
      } else {
        kernel_handler();
      }
    });
    c.BindHandler(ve_label, [this](Cpu& cpu, const Fault& f) { VeEntry(cpu, f); });
    c.BindHandler(gp_label, [this](Cpu& cpu, const Fault& f) {
      Task* task = current_[cpu.index()];
      if (task != nullptr) {
        KillTask(*task, "#GP: " + f.reason);
      }
    });
    c.BindHandler(excp_label, [this](Cpu& cpu, const Fault& f) {
      // Fatal software exceptions (#DE, #UD, ...): route through the interposer so a
      // sealed sandbox's exception is scrubbed and observed by the monitor before the
      // task dies (paper claim C8).
      const auto kernel_handler = [this, &cpu, &f] {
        Task* task = current_[cpu.index()];
        if (task != nullptr) {
          KillTask(*task, VectorName(f.vector) + ": " + f.reason);
        }
      };
      if (interrupt_interposer_) {
        interrupt_interposer_(cpu, f, kernel_handler);
      } else {
        kernel_handler();
      }
    });
    EREBOR_RETURN_IF_ERROR(ops_->LoadIdt(c, &idt_));
  }
  return OkStatus();
}

Status Kernel::SetupSyscallMsr() {
  syscall_entry_label_ =
      machine_->registry().Register("kernel_syscall_entry", CodeDomain::kKernel, true);
  for (int i = 0; i < machine_->num_cpus(); ++i) {
    EREBOR_RETURN_IF_ERROR(
        ops_->WriteMsr(machine_->cpu(i), msr::kIa32Lstar, syscall_entry_label_));
  }
  return OkStatus();
}

void Kernel::SetSyscallInterposer(SyscallInterposer interposer) {
  syscall_interposer_ = std::move(interposer);
}

void Kernel::SetInterruptInterposer(InterruptInterposer interposer) {
  interrupt_interposer_ = std::move(interposer);
}

void Kernel::SetVeInterposer(VeInterposer interposer) {
  ve_interposer_ = std::move(interposer);
}

// ---- Processes / threads ----

StatusOr<Task*> Kernel::SpawnProcess(const std::string& name, ProgramFn program) {
  Cpu& cpu = boot_cpu();
  EREBOR_ASSIGN_OR_RETURN(auto aspace,
                          AddressSpace::Create(cpu, machine_, ops_, pool_.get(),
                                               kernel_aspace_.get()));
  auto task = std::make_unique<Task>();
  task->tid = next_tid_++;
  task->pid = task->tid;
  task->name = name;
  task->aspace = std::move(aspace);
  task->fds = std::make_shared<FdTable>();
  task->program = std::move(program);
  Task* raw = task.get();
  tasks_.push_back(std::move(task));
  run_queue_.push_back(raw);
  return raw;
}

StatusOr<Task*> Kernel::SpawnThread(Task& parent, const std::string& name,
                                    ProgramFn program) {
  auto task = std::make_unique<Task>();
  task->tid = next_tid_++;
  task->pid = parent.pid;
  task->name = name;
  task->aspace = parent.aspace;
  task->fds = parent.fds;
  task->program = std::move(program);
  task->is_sandbox_member = parent.is_sandbox_member;
  task->sandbox_id = parent.sandbox_id;
  Task* raw = task.get();
  tasks_.push_back(std::move(task));
  run_queue_.push_back(raw);
  return raw;
}

Task* Kernel::FindTask(int tid) {
  for (auto& task : tasks_) {
    if (task->tid == tid) {
      return task.get();
    }
  }
  return nullptr;
}

void Kernel::KillTask(Task& task, const std::string& reason) {
  if (task.state == TaskState::kExited) {
    return;
  }
  task.state = TaskState::kExited;
  task.killed_by_monitor = true;
  task.kill_reason = reason;
  LOG_DEBUG() << "task " << task.name << " killed: " << reason;
  if (kill_observer_) {
    kill_observer_(task, reason);
  }
}

int Kernel::live_tasks() const {
  int live = 0;
  for (const auto& task : tasks_) {
    if (task->state != TaskState::kExited) {
      ++live;
    }
  }
  return live;
}

void Kernel::ReapTask(Task& task) {
  task.state = TaskState::kExited;
  // Wake any waiter.
  for (auto& t : tasks_) {
    if (t->state == TaskState::kBlocked && t->waiting_for_pid == task.pid) {
      t->waiting_for_pid = 0;
      t->state = TaskState::kRunnable;
      run_queue_.push_back(t.get());
    }
  }
  if (task.aspace && task.aspace.use_count() == 1) {
    task.aspace->ReleaseUserFrames(boot_cpu());
  }
}

// ---- Scheduler ----

Task* Kernel::PickNext() {
  while (!run_queue_.empty()) {
    Task* task = run_queue_.front();
    run_queue_.pop_front();
    bool already_running = false;
    for (Task* cur : current_) {
      if (cur == task) {
        already_running = true;
      }
    }
    if (already_running) {
      // Re-queued by a waker while mid-slice; try again later.
      run_queue_.push_back(task);
      return nullptr;
    }
    if (task->state == TaskState::kRunnable) {
      return task;
    }
  }
  return nullptr;
}

void Kernel::ContextSwitch(Cpu& cpu, Task* task) {
  // Continuing the same address space on the same CPU is not a context switch (no CR3
  // reload, no TLB flush) — matching real scheduler behaviour.
  if (cpu.cr3() != task->aspace->root()) {
    ++stats_.context_switches;
    cpu.cycles().Charge(cpu.costs().context_switch);
    (void)ops_->WriteCr(cpu, 3, task->aspace->root());
    Tracer::Global().Record(TraceEvent::kContextSwitch, cpu.index(), cpu.cycles().now(),
                            task->is_sandbox_member ? task->sandbox_id : -1, task->tid);
  }
  cpu.gprs() = task->saved_gprs;
}

void Kernel::DeliverInterruptsFor(Cpu& cpu, Task* task) {
  while (machine_->interrupts().HasPending(cpu)) {
    auto vector = machine_->interrupts().TakePending(cpu);
    if (!vector.ok()) {
      break;
    }
    Fault fault;
    fault.vector = *vector;
    fault.reason = "external interrupt";
    (void)cpu.Deliver(fault);
  }
}

bool Kernel::RunOnce() {
  bool ran = false;
  for (int c = 0; c < machine_->num_cpus(); ++c) {
    Task* task = PickNext();
    if (task == nullptr) {
      break;
    }
    ran = true;
    Cpu& cpu = machine_->cpu(c);
    current_[c] = task;
    ContextSwitch(cpu, task);

    SyscallContext ctx(this, task, &cpu);
    cpu.SetMode(CpuMode::kUser);
    StepOutcome outcome = StepOutcome::kExited;
    if (task->state == TaskState::kRunnable) {
      outcome = task->program(ctx);
    }
    cpu.SetMode(CpuMode::kSupervisor);
    task->saved_gprs = cpu.gprs();
    current_[c] = nullptr;

    if (task->state == TaskState::kExited) {
      ReapTask(*task);
    } else {
      switch (outcome) {
        case StepOutcome::kYield:
          run_queue_.push_back(task);
          break;
        case StepOutcome::kBlocked:
          if (task->futex_wait_addr == 0 && task->waiting_for_pid == 0) {
            // Already woken before we could block; stay runnable.
            run_queue_.push_back(task);
          } else {
            task->state = TaskState::kBlocked;
          }
          break;
        case StepOutcome::kExited:
          ReapTask(*task);
          break;
      }
    }
    DeliverInterruptsFor(cpu, task);
  }
  return ran;
}

void Kernel::Run(uint64_t max_slices) {
  for (uint64_t i = 0; i < max_slices; ++i) {
    if (!RunOnce()) {
      break;
    }
  }
}

// ---- Entry points ----

void Kernel::PageFaultEntry(Cpu& cpu, const Fault& fault) {
  ++stats_.page_faults;
  Tracer::Global().Record(TraceEvent::kPageFault, cpu.index(), cpu.cycles().now(), -1,
                          fault.address);
  const auto kernel_handler = [&] {
    cpu.cycles().Charge(cpu.costs().page_fault_service_native);
    Task* task = current_[cpu.index()];
    AddressSpace* aspace =
        task != nullptr ? task->aspace.get() : kernel_aspace_.get();
    auto result = aspace->HandleDemandFault(cpu, fault.address);
    if (!result.ok() && result.status().code() == ErrorCode::kResourceExhausted) {
      // Transient allocator exhaustion (e.g. an injected fault) gets one bounded
      // retry before the task is declared dead; a genuinely full pool fails again.
      result = aspace->HandleDemandFault(cpu, fault.address);
      if (result.ok() && FaultInjector::Armed()) {
        NoteFaultRecovered();
      }
    }
    if (!result.ok() && task != nullptr) {
      KillTask(*task, "segfault at " + std::to_string(fault.address) + ": " +
                          std::string(result.status().message()));
    }
    if (task != nullptr) {
      ++task->minor_faults;
    }
  };
  if (interrupt_interposer_) {
    interrupt_interposer_(cpu, fault, kernel_handler);
  } else {
    kernel_handler();
  }
}

void Kernel::TimerEntry(Cpu& cpu, const Fault& fault) {
  Tracer::Global().Record(TraceEvent::kInterrupt, cpu.index(), cpu.cycles().now(), -1,
                          static_cast<uint64_t>(fault.vector));
  const auto kernel_handler = [&] { ++stats_.timer_interrupts; };
  if (interrupt_interposer_) {
    interrupt_interposer_(cpu, fault, kernel_handler);
  } else {
    kernel_handler();
  }
}

void Kernel::VeEntry(Cpu& cpu, const Fault& fault) {
  ++stats_.ve_exits;
  Tracer::Global().Record(TraceEvent::kVeExit, cpu.index(), cpu.cycles().now());
}

StatusOr<uint64_t> Kernel::SyscallEntry(SyscallContext& ctx, Task& task, int nr,
                                        const uint64_t* args) {
  return DoSyscall(ctx, task, nr, args);
}

// ---- Syscall implementation ----

namespace {
Status WouldBlock() { return UnavailableError("EAGAIN"); }
}  // namespace

bool IsWouldBlock(const Status& status) {
  return !status.ok() && status.code() == ErrorCode::kUnavailable;
}

bool EagainBackoff::ShouldRetry(SyscallContext& ctx) {
  if (attempts >= max_attempts) {
    return false;
  }
  const BackoffPolicy policy{.max_attempts = max_attempts,
                             .base_wait = base_wait_cycles,
                             .max_wait = max_wait_cycles,
                             .jitter_pct = jitter_pct};
  ctx.Compute(JitteredBackoffWait(policy, jitter_seed, attempts));
  ++attempts;
  return true;
}

Status Kernel::FaultInUserRange(SyscallContext& ctx, Task& task, Vaddr va, uint64_t len) {
  if (len == 0) {
    return OkStatus();
  }
  for (Vaddr page = PageAlignDown(va); page < va + len; page += kPageSize) {
    if (task.aspace->LookupCached(ctx.cpu(), page).ok()) {
      continue;
    }
    ++stats_.page_faults;
    ++task.minor_faults;
    ctx.cpu().cycles().Charge(ctx.cpu().costs().exception_delivery +
                              ctx.cpu().costs().page_fault_service_native);
    EREBOR_RETURN_IF_ERROR(task.aspace->HandleDemandFault(ctx.cpu(), page).status());
  }
  return OkStatus();
}

StatusOr<uint64_t> Kernel::DoSyscall(SyscallContext& ctx, Task& task, int nr,
                                     const uint64_t* args) {
  switch (nr) {
    case sys::kGetpid:
      return static_cast<uint64_t>(task.pid);
    case sys::kGettid:
      return static_cast<uint64_t>(task.tid);
    case sys::kSchedYield:
      return 0;
    case sys::kNanosleep:
      ctx.cpu().cycles().Charge(args[0]);
      return 0;
    case sys::kExit:
      task.state = TaskState::kExited;
      task.exit_code = static_cast<int>(args[0]);
      return 0;
    case sys::kOpen: {
      // args[0] = user VA of path string, args[1] = length, args[2] = create flag.
      std::string path(args[1], '\0');
      EREBOR_RETURN_IF_ERROR(FaultInUserRange(ctx, task, args[0], args[1]));
      EREBOR_RETURN_IF_ERROR(ops_->CopyFromUser(
          ctx.cpu(), args[0], reinterpret_cast<uint8_t*>(path.data()), args[1]));
      // Device files.
      for (size_t i = 0; i < devices_.size(); ++i) {
        if (devices_[i].path == path) {
          OpenFile of;
          of.path = path;
          of.is_device = true;
          of.device_id = static_cast<int>(i);
          return static_cast<uint64_t>(task.fds->Install(of));
        }
      }
      EREBOR_ASSIGN_OR_RETURN(RamFile * file, fs_.Open(path, args[2] != 0));
      OpenFile of;
      of.path = path;
      of.file = file;
      return static_cast<uint64_t>(task.fds->Install(of));
    }
    case sys::kClose:
      EREBOR_RETURN_IF_ERROR(task.fds->Close(static_cast<int>(args[0])));
      return 0;
    case sys::kStat: {
      std::string path(args[1], '\0');
      EREBOR_RETURN_IF_ERROR(FaultInUserRange(ctx, task, args[0], args[1]));
      EREBOR_RETURN_IF_ERROR(ops_->CopyFromUser(
          ctx.cpu(), args[0], reinterpret_cast<uint8_t*>(path.data()), args[1]));
      return fs_.SizeOf(path);
    }
    case sys::kRead:
    case sys::kWrite:
      return SysReadWrite(ctx, task, nr, args);
    case sys::kMmap:
      return SysMmap(ctx, task, args);
    case sys::kMunmap:
      EREBOR_RETURN_IF_ERROR(task.aspace->DestroyVma(ctx.cpu(), args[0]));
      return 0;
    case sys::kBrk:
      return 0;  // the LibOS manages its own heap; brk is a no-op
    case sys::kIoctl: {
      EREBOR_ASSIGN_OR_RETURN(OpenFile * of, task.fds->Get(static_cast<int>(args[0])));
      if (!of->is_device) {
        return InvalidArgumentError("ioctl on non-device fd");
      }
      return devices_[of->device_id].handler(ctx, task, args[1], args[2]);
    }
    case sys::kFutex:
      return SysFutex(ctx, task, args);
    case sys::kFork:
    case sys::kClone:
      return SysForkClone(ctx, task, nr, args);
    case sys::kWait4: {
      const int pid = static_cast<int>(args[0]);
      bool found_live = false;
      for (auto& t : tasks_) {
        if (t->pid == pid && t.get() != &task && t->state != TaskState::kExited) {
          found_live = true;
        }
      }
      if (!found_live) {
        return 0;  // child already exited (or never existed)
      }
      task.waiting_for_pid = pid;
      return WouldBlock();
    }
    case sys::kKill: {
      Task* target = FindTask(static_cast<int>(args[0]));
      if (target == nullptr) {
        return NotFoundError("no such task");
      }
      target->pending_signals.push_back(static_cast<int>(args[1]));
      if (target->state == TaskState::kBlocked) {
        target->state = TaskState::kRunnable;
        target->futex_wait_addr = 0;
        run_queue_.push_back(target);
      }
      return 0;
    }
    case sys::kSigaction: {
      const int signo = static_cast<int>(args[0]);
      const uint64_t token = args[1];
      auto& stash = GetStash();
      const auto it = stash.signals.find(token);
      if (it == stash.signals.end()) {
        return InvalidArgumentError("bad signal-handler token");
      }
      task.signal_handlers[signo] = it->second;
      return 0;
    }
    case sys::kSendto: {
      Bytes packet(args[1]);
      EREBOR_RETURN_IF_ERROR(FaultInUserRange(ctx, task, args[0], args[1]));
      EREBOR_RETURN_IF_ERROR(
          ops_->CopyFromUser(ctx.cpu(), args[0], packet.data(), packet.size()));
      EREBOR_RETURN_IF_ERROR(NetSend(ctx.cpu(), packet));
      return packet.size();
    }
    case sys::kRecvfrom: {
      EREBOR_ASSIGN_OR_RETURN(Bytes packet, NetReceive(ctx.cpu()));
      if (packet.size() > args[1]) {
        return OutOfRangeError("recv buffer too small");
      }
      EREBOR_RETURN_IF_ERROR(FaultInUserRange(ctx, task, args[0], packet.size()));
      EREBOR_RETURN_IF_ERROR(
          ops_->CopyToUser(ctx.cpu(), args[0], packet.data(), packet.size()));
      return packet.size();
    }
    default:
      return UnimplementedError("syscall " + std::to_string(nr));
  }
}

StatusOr<uint64_t> Kernel::SysMmap(SyscallContext& ctx, Task& task, const uint64_t* args) {
  // args: [0]=hint(0), [1]=length, [2]=prot, [3]=flags.
  Pte flags = pte::kPresent | pte::kUser | pte::kNoExecute;
  if ((args[2] & sys::kProtWrite) != 0) {
    flags |= pte::kWritable;
  }
  EREBOR_ASSIGN_OR_RETURN(const Vaddr va,
                          task.aspace->CreateVma(args[1], flags, VmaKind::kAnon, args[0]));
  if ((args[3] & sys::kMapPopulate) != 0) {
    const uint64_t pages = PageAlignUp(args[1]) >> kPageShift;
    stats_.page_faults += pages;
    task.minor_faults += pages;
    ctx.cpu().cycles().Charge(pages * ctx.cpu().costs().page_fault_service_native);
    EREBOR_RETURN_IF_ERROR(task.aspace->PopulateVmaBatched(ctx.cpu(), va));
  }
  return va;
}

StatusOr<uint64_t> Kernel::SysReadWrite(SyscallContext& ctx, Task& task, int nr,
                                        const uint64_t* args) {
  // args: [0]=fd, [1]=user buffer, [2]=length.
  EREBOR_ASSIGN_OR_RETURN(OpenFile * of, task.fds->Get(static_cast<int>(args[0])));
  if (of->is_device) {
    return InvalidArgumentError("read/write on device fd (use ioctl)");
  }
  EREBOR_RETURN_IF_ERROR(FaultInUserRange(ctx, task, args[1], args[2]));
  if (of->file == nullptr) {
    // stdio: accept and discard writes.
    return nr == sys::kWrite ? args[2] : 0;
  }
  if (nr == sys::kRead) {
    const uint64_t available =
        of->offset >= of->file->data.size() ? 0 : of->file->data.size() - of->offset;
    const uint64_t n = std::min(args[2], available);
    if (n > 0) {
      EREBOR_RETURN_IF_ERROR(
          ops_->CopyToUser(ctx.cpu(), args[1], of->file->data.data() + of->offset, n));
      of->offset += n;
    }
    return n;
  }
  // write
  const uint64_t n = args[2];
  if (of->file->data.size() < of->offset + n) {
    of->file->data.resize(of->offset + n);
  }
  EREBOR_RETURN_IF_ERROR(
      ops_->CopyFromUser(ctx.cpu(), args[1], of->file->data.data() + of->offset, n));
  of->offset += n;
  return n;
}

StatusOr<uint64_t> Kernel::SysFutex(SyscallContext& ctx, Task& task, const uint64_t* args) {
  // args: [0]=user VA of 32-bit futex word, [1]=op, [2]=expected value / wake count.
  const Vaddr addr = args[0];
  if (args[1] == sys::kFutexWait) {
    uint8_t word[4];
    EREBOR_RETURN_IF_ERROR(FaultInUserRange(ctx, task, addr, sizeof(word)));
    EREBOR_RETURN_IF_ERROR(ops_->CopyFromUser(ctx.cpu(), addr, word, sizeof(word)));
    if (LoadLe32(word) != static_cast<uint32_t>(args[2])) {
      return 1;  // value changed; do not block
    }
    task.futex_wait_addr = addr;
    return WouldBlock();
  }
  if (args[1] == sys::kFutexWake) {
    uint64_t woken = 0;
    for (auto& t : tasks_) {
      if (woken >= args[2]) {
        break;
      }
      if (t->futex_wait_addr == addr && t->state == TaskState::kBlocked) {
        t->futex_wait_addr = 0;
        t->state = TaskState::kRunnable;
        run_queue_.push_back(t.get());
        ++woken;
      } else if (t->futex_wait_addr == addr && t->state != TaskState::kExited) {
        // Blocked-in-progress (will check on slice end).
        t->futex_wait_addr = 0;
        ++woken;
      }
    }
    return woken;
  }
  return InvalidArgumentError("bad futex op");
}

StatusOr<uint64_t> Kernel::SysForkClone(SyscallContext& ctx, Task& task, int nr,
                                        const uint64_t* args) {
  ++stats_.forks;
  ProgramFn child_program;
  if (nr == sys::kClone && args[0] != 0) {
    auto& stash = GetStash();
    const auto it = stash.programs.find(args[0]);
    if (it == stash.programs.end()) {
      return InvalidArgumentError("bad clone program token");
    }
    child_program = it->second;
    stash.programs.erase(it);
  } else {
    child_program = [](SyscallContext&) { return StepOutcome::kExited; };
  }

  if (nr == sys::kClone) {
    EREBOR_ASSIGN_OR_RETURN(Task * child,
                            SpawnThread(task, task.name + "+thr", std::move(child_program)));
    return static_cast<uint64_t>(child->tid);
  }

  // fork: duplicate the address space (allocates frames + copies pages + PTE writes).
  Cpu& cpu = ctx.cpu();
  EREBOR_ASSIGN_OR_RETURN(auto aspace,
                          AddressSpace::Create(cpu, machine_, ops_, pool_.get(),
                                               kernel_aspace_.get()));
  EREBOR_RETURN_IF_ERROR(aspace->CloneUserMappings(cpu, *task.aspace));
  auto child = std::make_unique<Task>();
  child->tid = next_tid_++;
  child->pid = child->tid;
  child->name = task.name + "+fork";
  child->aspace = std::move(aspace);
  child->fds = std::make_shared<FdTable>();
  child->program = std::move(child_program);
  Task* raw = child.get();
  tasks_.push_back(std::move(child));
  run_queue_.push_back(raw);
  return static_cast<uint64_t>(raw->pid);
}

// ---- Devices ----

int Kernel::RegisterDevice(const std::string& path, DeviceIoctlFn handler) {
  devices_.push_back(Device{path, std::move(handler)});
  return static_cast<int>(devices_.size() - 1);
}

// ---- Networking ----

Status Kernel::NetSend(Cpu& cpu, const Bytes& packet) {
  const uint64_t capacity = config_.shared_net_buffer_frames * kPageSize;
  if (packet.size() > capacity) {
    return OutOfRangeError("packet larger than net bounce buffer");
  }
  // Stage in the shared window, then GHCI NetTx.
  EREBOR_RETURN_IF_ERROR(machine_->memory().Write(net_buffer_pa_, packet.data(),
                                                  packet.size()));
  uint64_t args[3] = {static_cast<uint64_t>(GhciReason::kNetTx), net_buffer_pa_,
                      packet.size()};
  EREBOR_RETURN_IF_ERROR(ops_->Tdcall(cpu, tdcall_leaf::kVmcall, args, 3));
  if (args[1] == 0) {
    return UnavailableError("host dropped packet (DMA blocked?)");
  }
  return OkStatus();
}

StatusOr<Bytes> Kernel::NetReceive(Cpu& cpu) {
  uint64_t args[3] = {static_cast<uint64_t>(GhciReason::kNetRx), net_buffer_pa_, 0};
  EREBOR_RETURN_IF_ERROR(ops_->Tdcall(cpu, tdcall_leaf::kVmcall, args, 3));
  const uint64_t len = args[1];
  if (len == 0) {
    return WouldBlock();
  }
  Bytes packet(len);
  EREBOR_RETURN_IF_ERROR(machine_->memory().Read(net_buffer_pa_, packet.data(), len));
  return packet;
}

// ---- SyscallContext ----

StatusOr<uint64_t> SyscallContext::Syscall(int nr, uint64_t a0, uint64_t a1, uint64_t a2,
                                           uint64_t a3, uint64_t a4, uint64_t a5) {
  Cpu& cpu = *cpu_;
  cpu.cycles().Charge(cpu.costs().syscall_round_trip);
  ++kernel_->stats_.syscalls;
  ++task_->syscall_count;
  ++syscalls_made;
  Tracer& tracer = Tracer::Global();
  const int32_t trace_sandbox = task_->is_sandbox_member ? task_->sandbox_id : -1;
  const Cycles trace_start = tracer.enabled() ? cpu.cycles().now() : 0;
  tracer.Record(TraceEvent::kSyscallEnter, cpu.index(), trace_start, trace_sandbox,
                static_cast<uint64_t>(nr));

  const uint64_t args[6] = {a0, a1, a2, a3, a4, a5};
  const CpuMode saved_mode = cpu.mode();
  cpu.SetMode(CpuMode::kSupervisor);

  StatusOr<uint64_t> result = 0;
  const SyscallEntryFn kernel_entry = [this](SyscallContext& ctx, Task& task, int nr2,
                                             const uint64_t* args2) {
    return kernel_->SyscallEntry(ctx, task, nr2, args2);
  };
  if (kernel_->syscall_interposer_) {
    result = kernel_->syscall_interposer_(*this, *task_, nr, args, kernel_entry);
  } else {
    result = kernel_->SyscallEntry(*this, *task_, nr, args);
  }
  cpu.SetMode(saved_mode);
  if (tracer.enabled()) {
    const Cycles now = cpu.cycles().now();
    // Dispatch time plus the modeled round-trip entry cost, comparable to Table 3.
    const Cycles total = (now - trace_start) + cpu.costs().syscall_round_trip;
    tracer.Record(TraceEvent::kSyscallExit, cpu.index(), now, trace_sandbox,
                  static_cast<uint64_t>(nr));
    MetricsRegistry::Global().GetHistogram("trace.syscall_cycles")->Observe(total);
  }

  // Signal + interrupt delivery on the return-to-user path.
  if (task_->state != TaskState::kExited) {
    kernel_->DeliverSignals(*this, *task_);
  }
  return result;
}

StatusOr<uint64_t> SyscallContext::Cpuid(uint32_t leaf) {
  Cpu& cpu = *cpu_;
  ++kernel_->stats_.ve_exits;
  cpu.cycles().Charge(cpu.costs().ve_delivery);
  Tracer::Global().Record(TraceEvent::kVeExit, cpu.index(), cpu.cycles().now(),
                          task_->is_sandbox_member ? task_->sandbox_id : -1, leaf);
  const CpuMode saved_mode = cpu.mode();
  cpu.SetMode(CpuMode::kSupervisor);

  const auto hypercall = [&]() -> StatusOr<uint64_t> {
    uint64_t args[3] = {static_cast<uint64_t>(GhciReason::kCpuid), leaf, 0};
    EREBOR_RETURN_IF_ERROR(kernel_->ops_->Tdcall(cpu, tdcall_leaf::kVmcall, args, 3));
    return args[1];
  };
  StatusOr<uint64_t> result = 0;
  if (kernel_->ve_interposer_) {
    result = kernel_->ve_interposer_(*this, *task_, leaf, hypercall);
  } else {
    result = hypercall();
  }
  cpu.SetMode(saved_mode);
  return result;
}

namespace {
// Shared demand-paged user access loop: every faulting page gets one #PF delivery
// (through the full interposed handler path) and one retry, like real hardware
// restart semantics.
Status UserAccessLoop(Cpu& cpu, Task& task, Vaddr va, uint8_t* buffer, uint64_t len,
                      bool write) {
  uint64_t done = 0;
  int faults_on_page = 0;
  while (done < len) {
    const uint64_t chunk = std::min(len - done, kPageSize - ((va + done) & kPageMask));
    Fault fault;
    const Status st =
        write ? cpu.WriteVirt(va + done, buffer + done, chunk, &fault)
              : cpu.ReadVirt(va + done, buffer + done, chunk, &fault);
    if (st.ok()) {
      done += chunk;
      faults_on_page = 0;
      continue;
    }
    if (++faults_on_page > 1) {
      return st;  // fault persists after service: a real access violation
    }
    const CpuMode saved = cpu.mode();
    cpu.SetMode(CpuMode::kSupervisor);
    (void)cpu.Deliver(fault);
    cpu.SetMode(saved);
    if (task.state == TaskState::kExited) {
      return AbortedError("task killed during fault handling");
    }
  }
  return OkStatus();
}
}  // namespace

Status SyscallContext::RaiseException(Vector vector, const std::string& reason) {
  Fault fault;
  fault.vector = vector;
  fault.reason = reason;
  const CpuMode saved = cpu_->mode();
  cpu_->SetMode(CpuMode::kSupervisor);
  const Status st = cpu_->Deliver(fault);
  cpu_->SetMode(saved);
  return st;
}

Status SyscallContext::ReadUser(Vaddr va, uint8_t* out, uint64_t len) {
  return UserAccessLoop(*cpu_, *task_, va, out, len, /*write=*/false);
}

Status SyscallContext::WriteUser(Vaddr va, const uint8_t* data, uint64_t len) {
  return UserAccessLoop(*cpu_, *task_, va, const_cast<uint8_t*>(data), len,
                        /*write=*/true);
}

StatusOr<uint8_t*> SyscallContext::PagePtr(Vaddr va, bool for_write) {
  const AccessType access = for_write ? AccessType::kWrite : AccessType::kRead;
  for (int attempt = 0; attempt < 2; ++attempt) {
    Fault fault;
    auto walk = cpu_->Translate(va, access, &fault);
    if (walk.ok()) {
      return cpu_->memory().FramePtr(FrameOf(walk->pa)) + (va & kPageMask);
    }
    if (attempt == 0) {
      const CpuMode saved = cpu_->mode();
      cpu_->SetMode(CpuMode::kSupervisor);
      (void)cpu_->Deliver(fault);
      cpu_->SetMode(saved);
      if (task_->state == TaskState::kExited) {
        return AbortedError("task killed during fault handling");
      }
      continue;
    }
    return walk.status();
  }
  return InternalError("unreachable");
}

void SyscallContext::Compute(Cycles cycles) { cpu_->cycles().Charge(cycles); }

bool SyscallContext::Poll() {
  kernel_->DeliverInterruptsFor(*cpu_, task_);
  kernel_->DeliverSignals(*this, *task_);
  return task_->state != TaskState::kExited;
}

void Kernel::DeliverSignals(SyscallContext& ctx, Task& task) {
  while (!task.pending_signals.empty()) {
    const int signo = task.pending_signals.back();
    task.pending_signals.pop_back();
    const auto it = task.signal_handlers.find(signo);
    if (it != task.signal_handlers.end()) {
      ++stats_.signals_delivered;
      ctx.cpu().cycles().Charge(ctx.cpu().costs().exception_delivery);
      it->second(signo);
    }
  }
}

}  // namespace erebor
