// System call numbers (Linux x86-64 numbering where an equivalent exists).
#ifndef EREBOR_SRC_KERNEL_SYSCALLS_H_
#define EREBOR_SRC_KERNEL_SYSCALLS_H_

#include <cstdint>

namespace erebor {
namespace sys {

inline constexpr int kRead = 0;
inline constexpr int kWrite = 1;
inline constexpr int kOpen = 2;
inline constexpr int kClose = 3;
inline constexpr int kStat = 4;
inline constexpr int kMmap = 9;
inline constexpr int kMunmap = 11;
inline constexpr int kBrk = 12;
inline constexpr int kSigaction = 13;
inline constexpr int kIoctl = 16;
inline constexpr int kSchedYield = 24;
inline constexpr int kNanosleep = 35;
inline constexpr int kGetpid = 39;
inline constexpr int kSendto = 44;
inline constexpr int kRecvfrom = 45;
inline constexpr int kClone = 56;
inline constexpr int kFork = 57;
inline constexpr int kExit = 60;
inline constexpr int kWait4 = 61;
inline constexpr int kKill = 62;
inline constexpr int kGettid = 186;
inline constexpr int kFutex = 202;

// mmap prot/flags (subset).
inline constexpr uint64_t kProtRead = 1;
inline constexpr uint64_t kProtWrite = 2;
inline constexpr uint64_t kMapPopulate = 0x8000;

// futex ops.
inline constexpr uint64_t kFutexWait = 0;
inline constexpr uint64_t kFutexWake = 1;

// Result convention: syscalls return StatusOr<uint64_t>; a kUnavailable status with
// message "EAGAIN" models would-block situations the caller should retry after
// yielding (see kernel.h).

}  // namespace sys

class Status;
class SyscallContext;

// True for the would-block convention above (any kUnavailable status). Callers must
// treat every other error as hard failure — retrying a PermissionDenied forever is
// how sessions wedge.
bool IsWouldBlock(const Status& status);

// The one sanctioned retry policy for would-block results. Cooperative programs are
// cross-slice state machines, so the backoff is a value held in the program's state:
// each ShouldRetry() call accounts one attempt, charges an exponentially growing
// compute wait (capped at max_wait_cycles) and tells the caller whether budget
// remains. Exhaustion returns false — the caller must fail the operation instead of
// spinning forever on a peer that will never answer.
//
// The schedule itself comes from the shared policy in src/common/backoff.h: with
// jitter_pct == 0 (the default) it is the fixed doubling sequence the workload
// golden counts were calibrated against; seeding jitter_pct/jitter_seed
// desynchronizes a fleet of sandboxes all polling for input at once.
//
//   if (!input.ok()) {
//     if (!IsWouldBlock(input.status())) return Fail(input.status());
//     if (!state->backoff.ShouldRetry(ctx)) return Fail("retry budget exhausted");
//     return StepOutcome::kYield;
//   }
//   state->backoff.Reset();  // progress: re-arm the budget
struct EagainBackoff {
  uint64_t attempts = 0;
  uint64_t max_attempts = 10'000;
  uint64_t base_wait_cycles = 1'000;
  uint64_t max_wait_cycles = 64'000;
  uint32_t jitter_pct = 0;  // 0 = fixed schedule (bit-compatible with goldens)
  uint64_t jitter_seed = 0;

  bool ShouldRetry(SyscallContext& ctx);  // defined in kernel.cc
  void Reset() { attempts = 0; }
};

}  // namespace erebor

#endif  // EREBOR_SRC_KERNEL_SYSCALLS_H_
