// System call numbers (Linux x86-64 numbering where an equivalent exists).
#ifndef EREBOR_SRC_KERNEL_SYSCALLS_H_
#define EREBOR_SRC_KERNEL_SYSCALLS_H_

#include <cstdint>

namespace erebor {
namespace sys {

inline constexpr int kRead = 0;
inline constexpr int kWrite = 1;
inline constexpr int kOpen = 2;
inline constexpr int kClose = 3;
inline constexpr int kStat = 4;
inline constexpr int kMmap = 9;
inline constexpr int kMunmap = 11;
inline constexpr int kBrk = 12;
inline constexpr int kSigaction = 13;
inline constexpr int kIoctl = 16;
inline constexpr int kSchedYield = 24;
inline constexpr int kNanosleep = 35;
inline constexpr int kGetpid = 39;
inline constexpr int kSendto = 44;
inline constexpr int kRecvfrom = 45;
inline constexpr int kClone = 56;
inline constexpr int kFork = 57;
inline constexpr int kExit = 60;
inline constexpr int kWait4 = 61;
inline constexpr int kKill = 62;
inline constexpr int kGettid = 186;
inline constexpr int kFutex = 202;

// mmap prot/flags (subset).
inline constexpr uint64_t kProtRead = 1;
inline constexpr uint64_t kProtWrite = 2;
inline constexpr uint64_t kMapPopulate = 0x8000;

// futex ops.
inline constexpr uint64_t kFutexWait = 0;
inline constexpr uint64_t kFutexWake = 1;

// Result convention: syscalls return StatusOr<uint64_t>; a kUnavailable status with
// message "EAGAIN" models would-block situations the caller should retry after
// yielding (see kernel.h).

}  // namespace sys
}  // namespace erebor

#endif  // EREBOR_SRC_KERNEL_SYSCALLS_H_
