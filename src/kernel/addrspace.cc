#include "src/kernel/addrspace.h"

#include <algorithm>
#include <cstring>

#include "src/common/faultpoint.h"
#include "src/kernel/mmu_ring.h"

namespace erebor {

namespace {
// Pages mapped around a demand fault when the ring path is available: the
// marginal page costs one descriptor instead of a full #PF + EMC round trip,
// so a modest window recovers most of the per-fault gate cost.
constexpr uint64_t kFaultAroundPages = 16;
}  // namespace

PteWriter AddressSpace::MakeWriter(Cpu& cpu, int* pte_writes) {
  PteWriter writer;
  writer.write_pte = [this, &cpu, pte_writes](Paddr entry_pa, Pte value) -> Status {
    if (pte_writes != nullptr) {
      ++*pte_writes;
    }
    const Pte old = machine_->memory().Read64(entry_pa);
    EREBOR_RETURN_IF_ERROR(ops_->WritePte(cpu, entry_pa, value));
    // Kernel-side TLB maintenance: rewriting a previously present entry (remap,
    // U/S widening of an intermediate, unmap, protect) invalidates any cached
    // translation that depends on it. Batched leaf writes skip this wrapper but
    // only ever target non-present slots.
    if (Tlb::hooks().invlpg && pte::Present(old) && old != value) {
      machine_->ShootdownTlbLeaf(entry_pa, cpu.index());
    }
    return OkStatus();
  };
  writer.alloc_ptp = [this, &cpu]() -> StatusOr<FrameNum> {
    EREBOR_ASSIGN_OR_RETURN(const FrameNum frame, pool_->Alloc());
    machine_->memory().ZeroFrame(frame);
    // Touch the frame so the PTP is committed (page tables are real data).
    machine_->memory().FramePtr(frame);
    EREBOR_RETURN_IF_ERROR(ops_->RegisterPtp(cpu, frame, root_));
    owned_ptps_.push_back(frame);
    return frame;
  };
  return writer;
}

StatusOr<std::unique_ptr<AddressSpace>> AddressSpace::Create(
    Cpu& cpu, Machine* machine, PrivilegedOps* ops, FrameAllocator* pool,
    const AddressSpace* kernel_template) {
  EREBOR_ASSIGN_OR_RETURN(const FrameNum root_frame, pool->Alloc());
  machine->memory().ZeroFrame(root_frame);
  machine->memory().FramePtr(root_frame);
  EREBOR_RETURN_IF_ERROR(ops->RegisterPtp(cpu, root_frame, AddrOf(root_frame)));
  auto space = std::unique_ptr<AddressSpace>(
      new AddressSpace(machine, ops, pool, AddrOf(root_frame)));
  space->owned_ptps_.push_back(root_frame);

  if (kernel_template != nullptr) {
    // Share the kernel half: copy PML4 entries 256..511 (they point into the kernel's
    // PDPT subtrees, so every process sees identical kernel mappings).
    for (uint64_t i = 256; i < kPteEntries; ++i) {
      const Paddr src_pa = kernel_template->root() + i * sizeof(Pte);
      const Pte entry = machine->memory().Read64(src_pa);
      if (pte::Present(entry)) {
        EREBOR_RETURN_IF_ERROR(
            ops->WritePte(cpu, space->root() + i * sizeof(Pte), entry));
      }
    }
  }
  return space;
}

Status AddressSpace::MapFrame(Cpu& cpu, Vaddr va, FrameNum frame, Pte flags) {
  PteWriter writer = MakeWriter(cpu);
  EREBOR_RETURN_IF_ERROR(MapPage(machine_->memory(), root_, va, frame, flags, writer));
  if ((flags & pte::kUser) != 0) {
    ++mapped_user_pages_;
  }
  return OkStatus();
}

Status AddressSpace::RingFlush(Cpu& cpu, EmcRing* ring, MmuRingBatch& batch) {
  if (batch.staged() == 0) {
    return OkStatus();
  }
  batch.Publish();
  int32_t first_error = 0;
  // One doorbell normally drains the whole window; a CQ-backpressured monitor
  // leaves SQEs pending, so ring until they are gone.
  while (ring->SqPending() > 0) {
    EREBOR_RETURN_IF_ERROR(ops_->RingDoorbell(cpu));
    batch.Reap(&first_error);
  }
  batch.Reap(&first_error);
  if (first_error != 0) {
    return InternalError("MMU-ring descriptor refused (monitor code " +
                         std::to_string(-first_error) + ")");
  }
  return OkStatus();
}

Status AddressSpace::MapRangeRing(Cpu& cpu, EmcRing* ring,
                                  const std::vector<PageMapping>& mappings) {
  MmuRingBatch batch(ring);
  // Phase 1: walk down per mapping, staging PTP registrations and intermediate
  // links. The batch overlay makes staged intermediates visible to later walks
  // in the same window, so a PTP created for one mapping is reused by its
  // neighbours without a flush.
  std::vector<std::pair<Paddr, Pte>> leaves;
  leaves.reserve(mappings.size());
  for (const PageMapping& mapping : mappings) {
    Paddr table = root_;
    const bool user = (mapping.flags & pte::kUser) != 0;
    for (int level = kPagingLevels - 1; level >= 1; --level) {
      const Paddr entry_pa = table + PteIndex(mapping.va, level) * sizeof(Pte);
      Pte entry = batch.PendingRead(entry_pa, machine_->memory().Read64(entry_pa));
      if (!pte::Present(entry)) {
        if (batch.FreeSlots() < 2) {
          EREBOR_RETURN_IF_ERROR(RingFlush(cpu, ring, batch));
        }
        EREBOR_ASSIGN_OR_RETURN(const FrameNum ptp, pool_->Alloc());
        machine_->memory().ZeroFrame(ptp);
        machine_->memory().FramePtr(ptp);
        Pte inter = pte::Make(ptp, pte::kPresent | pte::kWritable);
        if (user) {
          inter |= pte::kUser;
        }
        // Registration precedes the linking write in the SQ, and the drain is
        // in-order, so the monitor sees the frame as a PTP before any PTE
        // points at it.
        if (!batch.StageRegisterPtp(ptp, root_) ||
            !batch.StagePteWrite(entry_pa, inter)) {
          return InternalError("MMU-ring batch overflow while linking a PTP");
        }
        owned_ptps_.push_back(ptp);
        entry = inter;
      } else if (user && !pte::User(entry)) {
        if (batch.FreeSlots() < 1) {
          EREBOR_RETURN_IF_ERROR(RingFlush(cpu, ring, batch));
        }
        if (!batch.StagePteWrite(entry_pa, entry | pte::kUser)) {
          return InternalError("MMU-ring batch overflow widening an intermediate");
        }
      }
      table = pte::Frame(entry) << kPageShift;
    }
    leaves.emplace_back(table + PteIndex(mapping.va, 0) * sizeof(Pte),
                        pte::Make(mapping.frame, mapping.flags | pte::kPresent));
    if (user) {
      ++mapped_user_pages_;
    }
  }
  // Phase 2: leaf stores ride as spans, chunked to whatever room the SQ has
  // left (a span needs its header slot plus one per entry).
  size_t i = 0;
  while (i < leaves.size()) {
    size_t room = batch.FreeSlots();
    if (room < 2) {
      EREBOR_RETURN_IF_ERROR(RingFlush(cpu, ring, batch));
      room = batch.FreeSlots();
    }
    const size_t take = std::min(leaves.size() - i, room - 1);
    const std::vector<std::pair<Paddr, Pte>> chunk(leaves.begin() + i,
                                                   leaves.begin() + i + take);
    if (!batch.StagePteSpan(chunk)) {
      return InternalError("MMU-ring span staging failed");
    }
    i += take;
  }
  return RingFlush(cpu, ring, batch);
}

Status AddressSpace::MapRangeBatched(Cpu& cpu, const std::vector<PageMapping>& mappings) {
  if (EmcRing* ring = ops_->mmu_ring(cpu.index()); ring != nullptr) {
    return MapRangeRing(cpu, ring, mappings);
  }
  // Phase 1: materialize the leaf slots (may create intermediate PTPs; those writes
  // stay per-entry because each links a fresh table).
  std::vector<PrivilegedOps::PteUpdate> updates;
  updates.reserve(mappings.size());
  PteWriter writer = MakeWriter(cpu);
  for (const PageMapping& mapping : mappings) {
    // Walk down, creating levels, but defer the leaf store into the batch.
    Paddr table = root_;
    const bool user = (mapping.flags & pte::kUser) != 0;
    for (int level = kPagingLevels - 1; level >= 1; --level) {
      const Paddr entry_pa = table + PteIndex(mapping.va, level) * sizeof(Pte);
      Pte entry = machine_->memory().Read64(entry_pa);
      if (!pte::Present(entry)) {
        EREBOR_ASSIGN_OR_RETURN(const FrameNum ptp, writer.alloc_ptp());
        Pte inter = pte::Make(ptp, pte::kPresent | pte::kWritable);
        if (user) {
          inter |= pte::kUser;
        }
        EREBOR_RETURN_IF_ERROR(writer.write_pte(entry_pa, inter));
        entry = inter;
      } else if (user && !pte::User(entry)) {
        EREBOR_RETURN_IF_ERROR(writer.write_pte(entry_pa, entry | pte::kUser));
      }
      table = pte::Frame(entry) << kPageShift;
    }
    updates.push_back({table + PteIndex(mapping.va, 0) * sizeof(Pte),
                       pte::Make(mapping.frame, mapping.flags | pte::kPresent)});
    if (user) {
      ++mapped_user_pages_;
    }
  }
  // Phase 2: one privileged call for all leaf entries.
  return ops_->WritePteBatch(cpu, updates.data(), updates.size());
}

Status AddressSpace::PopulateVmaBatched(Cpu& cpu, Vaddr start) {
  Vma* vma = FindVma(start);
  if (vma == nullptr) {
    return NotFoundError("no VMA to populate");
  }
  std::vector<PageMapping> mappings;
  for (Vaddr va = vma->start; va < vma->end; va += kPageSize) {
    if (LookupCached(cpu, va).ok()) {
      continue;
    }
    FrameNum frame = 0;
    if (vma->kind == VmaKind::kCommon) {
      const uint64_t index = (va - vma->start) >> kPageShift;
      if (index >= vma->backing.size()) {
        return InternalError("common VMA without backing frame");
      }
      frame = vma->backing[index];
    } else {
      EREBOR_ASSIGN_OR_RETURN(frame, pool_->Alloc());
      machine_->memory().ZeroFrame(frame);
      machine_->memory().FramePtr(frame);
      owned_frames_.push_back(frame);
      cpu.cycles().Charge(cpu.costs().page_zero);
    }
    mappings.push_back({va, frame, vma->flags});
  }
  return MapRangeBatched(cpu, mappings);
}

Status AddressSpace::UnmapPage(Cpu& cpu, Vaddr va) {
  PteWriter writer = MakeWriter(cpu);
  EREBOR_RETURN_IF_ERROR(erebor::UnmapPage(machine_->memory(), root_, va, writer));
  ops_->InvlPg(cpu, root_, va);
  return OkStatus();
}

Status AddressSpace::ProtectPage(Cpu& cpu, Vaddr va, Pte flags) {
  PteWriter writer = MakeWriter(cpu);
  EREBOR_RETURN_IF_ERROR(erebor::ProtectPage(machine_->memory(), root_, va, flags, writer));
  ops_->InvlPg(cpu, root_, va);
  return OkStatus();
}

StatusOr<WalkResult> AddressSpace::Lookup(Vaddr va) const {
  return WalkPageTables(machine_->memory(), root_, va);
}

StatusOr<WalkResult> AddressSpace::LookupCached(Cpu& cpu, Vaddr va) const {
  return cpu.WalkCached(root_, va, CpuMode::kSupervisor);
}

StatusOr<Vaddr> AddressSpace::CreateVma(uint64_t len, Pte flags, VmaKind kind, Vaddr fixed) {
  if (len == 0) {
    return InvalidArgumentError("zero-length VMA");
  }
  len = PageAlignUp(len);
  Vaddr start = fixed;
  if (start == 0) {
    start = mmap_cursor_;
    mmap_cursor_ += len + kPageSize;  // guard gap
  }
  // Overlap check.
  for (const auto& [s, vma] : vmas_) {
    if (start < vma.end && vma.start < start + len) {
      return AlreadyExistsError("VMA overlap");
    }
  }
  Vma vma;
  vma.start = start;
  vma.end = start + len;
  vma.flags = flags;
  vma.kind = kind;
  vmas_[start] = std::move(vma);
  return start;
}

Status AddressSpace::DestroyVmaRing(Cpu& cpu, EmcRing* ring, const Vma& vma) {
  // Zero every mapped leaf through the ring; the monitor defers the shootdown
  // for each present-entry rewrite and flushes the coalesced set once per
  // drain, replacing the per-page InvlPg of the synchronous path.
  MmuRingBatch batch(ring);
  for (Vaddr va = vma.start; va < vma.end; va += kPageSize) {
    const auto walk = LookupCached(cpu, va);
    if (!walk.ok()) {
      continue;
    }
    if (batch.FreeSlots() < 1) {
      EREBOR_RETURN_IF_ERROR(RingFlush(cpu, ring, batch));
    }
    if (!batch.StagePteWrite(walk->leaf_entry_pa, 0)) {
      return InternalError("MMU-ring batch overflow while unmapping");
    }
  }
  return RingFlush(cpu, ring, batch);
}

Status AddressSpace::DestroyVma(Cpu& cpu, Vaddr start) {
  const auto it = vmas_.find(start);
  if (it == vmas_.end()) {
    return NotFoundError("no VMA at given start");
  }
  if (EmcRing* ring = ops_->mmu_ring(cpu.index()); ring != nullptr) {
    EREBOR_RETURN_IF_ERROR(DestroyVmaRing(cpu, ring, it->second));
  } else {
    for (Vaddr va = it->second.start; va < it->second.end; va += kPageSize) {
      const auto walk = LookupCached(cpu, va);
      if (walk.ok()) {
        (void)UnmapPage(cpu, va);
      }
    }
  }
  vmas_.erase(it);
  return OkStatus();
}

Vma* AddressSpace::FindVma(Vaddr va) {
  auto it = vmas_.upper_bound(va);
  if (it == vmas_.begin()) {
    return nullptr;
  }
  --it;
  return (va >= it->second.start && va < it->second.end) ? &it->second : nullptr;
}

StatusOr<int> AddressSpace::FaultAroundRing(Cpu& cpu, EmcRing* ring, Vma& vma,
                                            Vaddr page_va) {
  std::vector<PageMapping> mappings;
  for (Vaddr va = page_va;
       va < vma.end && mappings.size() < kFaultAroundPages; va += kPageSize) {
    if (va != page_va && LookupCached(cpu, va).ok()) {
      break;  // window runs to the first already-mapped page
    }
    auto alloc = pool_->Alloc();
    if (!alloc.ok() && alloc.status().code() == ErrorCode::kResourceExhausted) {
      // Same bounded-retry degradation contract as the synchronous fault path.
      alloc = pool_->Alloc();
      if (alloc.ok() && FaultInjector::Armed()) {
        NoteFaultRecovered();
      }
    }
    if (!alloc.ok()) {
      if (va == page_va) {
        return alloc.status();  // the faulting page itself must map
      }
      break;  // fault-around is best-effort
    }
    machine_->memory().ZeroFrame(*alloc);
    machine_->memory().FramePtr(*alloc);
    owned_frames_.push_back(*alloc);
    cpu.cycles().Charge(cpu.costs().page_zero);
    mappings.push_back({va, *alloc, vma.flags});
  }
  EREBOR_RETURN_IF_ERROR(MapRangeRing(cpu, ring, mappings));
  return static_cast<int>(mappings.size());
}

StatusOr<int> AddressSpace::HandleDemandFault(Cpu& cpu, Vaddr va, PhysMemory* file_source) {
  Vma* vma = FindVma(va);
  if (vma == nullptr) {
    return NotFoundError("segmentation fault: no VMA for address");
  }
  const Vaddr page_va = PageAlignDown(va);
  if (EmcRing* ring = ops_->mmu_ring(cpu.index());
      ring != nullptr && vma->kind != VmaKind::kCommon) {
    // Ring path: map the faulting page plus the following unmapped window
    // through one doorbell, so neighbouring touches never fault at all.
    return FaultAroundRing(cpu, ring, *vma, page_va);
  }
  int pte_writes = 0;
  PteWriter writer = MakeWriter(cpu, &pte_writes);

  FrameNum frame = 0;
  switch (vma->kind) {
    case VmaKind::kCommon: {
      const uint64_t index = (page_va - vma->start) >> kPageShift;
      if (index >= vma->backing.size()) {
        return InternalError("common VMA without backing frame");
      }
      frame = vma->backing[index];
      break;
    }
    case VmaKind::kAnon:
    case VmaKind::kConfined:
    case VmaKind::kFile: {
      auto alloc = pool_->Alloc();
      if (!alloc.ok() && alloc.status().code() == ErrorCode::kResourceExhausted) {
        // Transient exhaustion gets one bounded retry at the allocation itself, so
        // every demand-fault caller — page-fault entry and syscall paths alike —
        // shares the same degradation contract; a genuinely full pool fails again.
        alloc = pool_->Alloc();
        if (alloc.ok() && FaultInjector::Armed()) {
          NoteFaultRecovered();
        }
      }
      EREBOR_ASSIGN_OR_RETURN(frame, alloc);
      machine_->memory().ZeroFrame(frame);
      machine_->memory().FramePtr(frame);
      owned_frames_.push_back(frame);
      cpu.cycles().Charge(cpu.costs().page_zero);
      break;
    }
  }
  EREBOR_RETURN_IF_ERROR(
      MapPage(machine_->memory(), root_, page_va, frame, vma->flags, writer));
  if ((vma->flags & pte::kUser) != 0) {
    ++mapped_user_pages_;
  }
  return pte_writes;
}

Status AddressSpace::CloneUserMappings(Cpu& cpu, const AddressSpace& src) {
  std::vector<PageMapping> mappings;
  for (const auto& [start, vma] : src.vmas_) {
    vmas_[start] = vma;
    for (Vaddr va = vma.start; va < vma.end; va += kPageSize) {
      const auto walk = src.LookupCached(cpu, va);
      if (!walk.ok()) {
        continue;  // never faulted in
      }
      FrameNum frame = pte::Frame(walk->leaf);
      if (vma.kind != VmaKind::kCommon) {
        // Private page: allocate and copy.
        EREBOR_ASSIGN_OR_RETURN(const FrameNum copy, pool_->Alloc());
        std::memcpy(machine_->memory().FramePtr(copy),
                    machine_->memory().FramePtr(frame), kPageSize);
        cpu.cycles().Charge(cpu.costs().page_copy);
        owned_frames_.push_back(copy);
        frame = copy;
      }
      mappings.push_back({va, frame, vma.flags});
    }
  }
  return MapRangeBatched(cpu, mappings);
}

bool AddressSpace::ReclaimFramesRing(Cpu& cpu, EmcRing* ring) {
  MmuRingBatch batch(ring);
  for (const FrameNum frame : owned_frames_) {
    if (batch.FreeSlots() < 1 && !RingFlush(cpu, ring, batch).ok()) {
      return false;
    }
    if (!batch.StageFrameReclaim(frame)) {
      return false;
    }
  }
  return RingFlush(cpu, ring, batch).ok();
}

void AddressSpace::ReleaseUserFrames(Cpu& cpu) {
  // The root and PTP frames return to the pool and may be recycled as page tables of
  // a future process, so every cached translation keyed by this root must die now.
  // Always on (not a test-toggleable hook): this is allocator hygiene, not one of the
  // paper's invalidation obligations.
  machine_->FlushTlbRoot(root_);
  // Ring path: the monitor scrubs the released frames (kFrameReclaim); if any
  // descriptor is refused, fall back to zeroing everything kernel-side — a
  // double zero is harmless, an unscrubbed frame is not.
  EmcRing* ring = ops_->mmu_ring(cpu.index());
  const bool scrubbed =
      ring != nullptr && !owned_frames_.empty() && ReclaimFramesRing(cpu, ring);
  for (const FrameNum frame : owned_frames_) {
    if (!scrubbed) {
      machine_->memory().ZeroFrame(frame);
    }
    (void)pool_->Free(frame);
  }
  owned_frames_.clear();
  for (const FrameNum frame : owned_ptps_) {
    (void)pool_->Free(frame);
  }
  owned_ptps_.clear();
}

StatusOr<std::unique_ptr<AddressSpace>> BuildKernelAddressSpace(Cpu& cpu, Machine* machine,
                                                                PrivilegedOps* ops,
                                                                FrameAllocator* pool) {
  EREBOR_ASSIGN_OR_RETURN(auto space,
                          AddressSpace::Create(cpu, machine, ops, pool, nullptr));
  // Direct map: supervisor read-write, non-executable.
  const uint64_t frames = machine->memory().num_frames();
  for (FrameNum f = 0; f < frames; ++f) {
    EREBOR_RETURN_IF_ERROR(space->MapFrame(
        cpu, layout::DirectMap(AddrOf(f)), f,
        pte::kPresent | pte::kWritable | pte::kNoExecute));
  }
  // Kernel text window: executable, read-only.
  for (FrameNum i = 0; i < layout::kKernelTextFrames; ++i) {
    EREBOR_RETURN_IF_ERROR(space->MapFrame(cpu, layout::kKernelTextBase + AddrOf(i),
                                           layout::kKernelTextFirstFrame + i,
                                           pte::kPresent));
  }
  return space;
}

}  // namespace erebor
