#include "src/kernel/addrspace.h"

#include <cstring>

#include "src/common/faultpoint.h"

namespace erebor {

PteWriter AddressSpace::MakeWriter(Cpu& cpu, int* pte_writes) {
  PteWriter writer;
  writer.write_pte = [this, &cpu, pte_writes](Paddr entry_pa, Pte value) -> Status {
    if (pte_writes != nullptr) {
      ++*pte_writes;
    }
    const Pte old = machine_->memory().Read64(entry_pa);
    EREBOR_RETURN_IF_ERROR(ops_->WritePte(cpu, entry_pa, value));
    // Kernel-side TLB maintenance: rewriting a previously present entry (remap,
    // U/S widening of an intermediate, unmap, protect) invalidates any cached
    // translation that depends on it. Batched leaf writes skip this wrapper but
    // only ever target non-present slots.
    if (Tlb::hooks().invlpg && pte::Present(old) && old != value) {
      machine_->ShootdownTlbLeaf(entry_pa, cpu.index());
    }
    return OkStatus();
  };
  writer.alloc_ptp = [this, &cpu]() -> StatusOr<FrameNum> {
    EREBOR_ASSIGN_OR_RETURN(const FrameNum frame, pool_->Alloc());
    machine_->memory().ZeroFrame(frame);
    // Touch the frame so the PTP is committed (page tables are real data).
    machine_->memory().FramePtr(frame);
    EREBOR_RETURN_IF_ERROR(ops_->RegisterPtp(cpu, frame, root_));
    owned_ptps_.push_back(frame);
    return frame;
  };
  return writer;
}

StatusOr<std::unique_ptr<AddressSpace>> AddressSpace::Create(
    Cpu& cpu, Machine* machine, PrivilegedOps* ops, FrameAllocator* pool,
    const AddressSpace* kernel_template) {
  EREBOR_ASSIGN_OR_RETURN(const FrameNum root_frame, pool->Alloc());
  machine->memory().ZeroFrame(root_frame);
  machine->memory().FramePtr(root_frame);
  EREBOR_RETURN_IF_ERROR(ops->RegisterPtp(cpu, root_frame, AddrOf(root_frame)));
  auto space = std::unique_ptr<AddressSpace>(
      new AddressSpace(machine, ops, pool, AddrOf(root_frame)));
  space->owned_ptps_.push_back(root_frame);

  if (kernel_template != nullptr) {
    // Share the kernel half: copy PML4 entries 256..511 (they point into the kernel's
    // PDPT subtrees, so every process sees identical kernel mappings).
    for (uint64_t i = 256; i < kPteEntries; ++i) {
      const Paddr src_pa = kernel_template->root() + i * sizeof(Pte);
      const Pte entry = machine->memory().Read64(src_pa);
      if (pte::Present(entry)) {
        EREBOR_RETURN_IF_ERROR(
            ops->WritePte(cpu, space->root() + i * sizeof(Pte), entry));
      }
    }
  }
  return space;
}

Status AddressSpace::MapFrame(Cpu& cpu, Vaddr va, FrameNum frame, Pte flags) {
  PteWriter writer = MakeWriter(cpu);
  EREBOR_RETURN_IF_ERROR(MapPage(machine_->memory(), root_, va, frame, flags, writer));
  if ((flags & pte::kUser) != 0) {
    ++mapped_user_pages_;
  }
  return OkStatus();
}

Status AddressSpace::MapRangeBatched(Cpu& cpu, const std::vector<PageMapping>& mappings) {
  // Phase 1: materialize the leaf slots (may create intermediate PTPs; those writes
  // stay per-entry because each links a fresh table).
  std::vector<PrivilegedOps::PteUpdate> updates;
  updates.reserve(mappings.size());
  PteWriter writer = MakeWriter(cpu);
  for (const PageMapping& mapping : mappings) {
    // Walk down, creating levels, but defer the leaf store into the batch.
    Paddr table = root_;
    const bool user = (mapping.flags & pte::kUser) != 0;
    for (int level = kPagingLevels - 1; level >= 1; --level) {
      const Paddr entry_pa = table + PteIndex(mapping.va, level) * sizeof(Pte);
      Pte entry = machine_->memory().Read64(entry_pa);
      if (!pte::Present(entry)) {
        EREBOR_ASSIGN_OR_RETURN(const FrameNum ptp, writer.alloc_ptp());
        Pte inter = pte::Make(ptp, pte::kPresent | pte::kWritable);
        if (user) {
          inter |= pte::kUser;
        }
        EREBOR_RETURN_IF_ERROR(writer.write_pte(entry_pa, inter));
        entry = inter;
      } else if (user && !pte::User(entry)) {
        EREBOR_RETURN_IF_ERROR(writer.write_pte(entry_pa, entry | pte::kUser));
      }
      table = pte::Frame(entry) << kPageShift;
    }
    updates.push_back({table + PteIndex(mapping.va, 0) * sizeof(Pte),
                       pte::Make(mapping.frame, mapping.flags | pte::kPresent)});
    if (user) {
      ++mapped_user_pages_;
    }
  }
  // Phase 2: one privileged call for all leaf entries.
  return ops_->WritePteBatch(cpu, updates.data(), updates.size());
}

Status AddressSpace::PopulateVmaBatched(Cpu& cpu, Vaddr start) {
  Vma* vma = FindVma(start);
  if (vma == nullptr) {
    return NotFoundError("no VMA to populate");
  }
  std::vector<PageMapping> mappings;
  for (Vaddr va = vma->start; va < vma->end; va += kPageSize) {
    if (LookupCached(cpu, va).ok()) {
      continue;
    }
    FrameNum frame = 0;
    if (vma->kind == VmaKind::kCommon) {
      const uint64_t index = (va - vma->start) >> kPageShift;
      if (index >= vma->backing.size()) {
        return InternalError("common VMA without backing frame");
      }
      frame = vma->backing[index];
    } else {
      EREBOR_ASSIGN_OR_RETURN(frame, pool_->Alloc());
      machine_->memory().ZeroFrame(frame);
      machine_->memory().FramePtr(frame);
      owned_frames_.push_back(frame);
      cpu.cycles().Charge(cpu.costs().page_zero);
    }
    mappings.push_back({va, frame, vma->flags});
  }
  return MapRangeBatched(cpu, mappings);
}

Status AddressSpace::UnmapPage(Cpu& cpu, Vaddr va) {
  PteWriter writer = MakeWriter(cpu);
  EREBOR_RETURN_IF_ERROR(erebor::UnmapPage(machine_->memory(), root_, va, writer));
  ops_->InvlPg(cpu, root_, va);
  return OkStatus();
}

Status AddressSpace::ProtectPage(Cpu& cpu, Vaddr va, Pte flags) {
  PteWriter writer = MakeWriter(cpu);
  EREBOR_RETURN_IF_ERROR(erebor::ProtectPage(machine_->memory(), root_, va, flags, writer));
  ops_->InvlPg(cpu, root_, va);
  return OkStatus();
}

StatusOr<WalkResult> AddressSpace::Lookup(Vaddr va) const {
  return WalkPageTables(machine_->memory(), root_, va);
}

StatusOr<WalkResult> AddressSpace::LookupCached(Cpu& cpu, Vaddr va) const {
  return cpu.WalkCached(root_, va, CpuMode::kSupervisor);
}

StatusOr<Vaddr> AddressSpace::CreateVma(uint64_t len, Pte flags, VmaKind kind, Vaddr fixed) {
  if (len == 0) {
    return InvalidArgumentError("zero-length VMA");
  }
  len = PageAlignUp(len);
  Vaddr start = fixed;
  if (start == 0) {
    start = mmap_cursor_;
    mmap_cursor_ += len + kPageSize;  // guard gap
  }
  // Overlap check.
  for (const auto& [s, vma] : vmas_) {
    if (start < vma.end && vma.start < start + len) {
      return AlreadyExistsError("VMA overlap");
    }
  }
  Vma vma;
  vma.start = start;
  vma.end = start + len;
  vma.flags = flags;
  vma.kind = kind;
  vmas_[start] = std::move(vma);
  return start;
}

Status AddressSpace::DestroyVma(Cpu& cpu, Vaddr start) {
  const auto it = vmas_.find(start);
  if (it == vmas_.end()) {
    return NotFoundError("no VMA at given start");
  }
  for (Vaddr va = it->second.start; va < it->second.end; va += kPageSize) {
    const auto walk = LookupCached(cpu, va);
    if (walk.ok()) {
      (void)UnmapPage(cpu, va);
    }
  }
  vmas_.erase(it);
  return OkStatus();
}

Vma* AddressSpace::FindVma(Vaddr va) {
  auto it = vmas_.upper_bound(va);
  if (it == vmas_.begin()) {
    return nullptr;
  }
  --it;
  return (va >= it->second.start && va < it->second.end) ? &it->second : nullptr;
}

StatusOr<int> AddressSpace::HandleDemandFault(Cpu& cpu, Vaddr va, PhysMemory* file_source) {
  Vma* vma = FindVma(va);
  if (vma == nullptr) {
    return NotFoundError("segmentation fault: no VMA for address");
  }
  const Vaddr page_va = PageAlignDown(va);
  int pte_writes = 0;
  PteWriter writer = MakeWriter(cpu, &pte_writes);

  FrameNum frame = 0;
  switch (vma->kind) {
    case VmaKind::kCommon: {
      const uint64_t index = (page_va - vma->start) >> kPageShift;
      if (index >= vma->backing.size()) {
        return InternalError("common VMA without backing frame");
      }
      frame = vma->backing[index];
      break;
    }
    case VmaKind::kAnon:
    case VmaKind::kConfined:
    case VmaKind::kFile: {
      auto alloc = pool_->Alloc();
      if (!alloc.ok() && alloc.status().code() == ErrorCode::kResourceExhausted) {
        // Transient exhaustion gets one bounded retry at the allocation itself, so
        // every demand-fault caller — page-fault entry and syscall paths alike —
        // shares the same degradation contract; a genuinely full pool fails again.
        alloc = pool_->Alloc();
        if (alloc.ok() && FaultInjector::Armed()) {
          NoteFaultRecovered();
        }
      }
      EREBOR_ASSIGN_OR_RETURN(frame, alloc);
      machine_->memory().ZeroFrame(frame);
      machine_->memory().FramePtr(frame);
      owned_frames_.push_back(frame);
      cpu.cycles().Charge(cpu.costs().page_zero);
      break;
    }
  }
  EREBOR_RETURN_IF_ERROR(
      MapPage(machine_->memory(), root_, page_va, frame, vma->flags, writer));
  if ((vma->flags & pte::kUser) != 0) {
    ++mapped_user_pages_;
  }
  return pte_writes;
}

Status AddressSpace::CloneUserMappings(Cpu& cpu, const AddressSpace& src) {
  std::vector<PageMapping> mappings;
  for (const auto& [start, vma] : src.vmas_) {
    vmas_[start] = vma;
    for (Vaddr va = vma.start; va < vma.end; va += kPageSize) {
      const auto walk = src.LookupCached(cpu, va);
      if (!walk.ok()) {
        continue;  // never faulted in
      }
      FrameNum frame = pte::Frame(walk->leaf);
      if (vma.kind != VmaKind::kCommon) {
        // Private page: allocate and copy.
        EREBOR_ASSIGN_OR_RETURN(const FrameNum copy, pool_->Alloc());
        std::memcpy(machine_->memory().FramePtr(copy),
                    machine_->memory().FramePtr(frame), kPageSize);
        cpu.cycles().Charge(cpu.costs().page_copy);
        owned_frames_.push_back(copy);
        frame = copy;
      }
      mappings.push_back({va, frame, vma.flags});
    }
  }
  return MapRangeBatched(cpu, mappings);
}

void AddressSpace::ReleaseUserFrames(Cpu& cpu) {
  // The root and PTP frames return to the pool and may be recycled as page tables of
  // a future process, so every cached translation keyed by this root must die now.
  // Always on (not a test-toggleable hook): this is allocator hygiene, not one of the
  // paper's invalidation obligations.
  machine_->FlushTlbRoot(root_);
  for (const FrameNum frame : owned_frames_) {
    machine_->memory().ZeroFrame(frame);
    (void)pool_->Free(frame);
  }
  owned_frames_.clear();
  for (const FrameNum frame : owned_ptps_) {
    (void)pool_->Free(frame);
  }
  owned_ptps_.clear();
}

StatusOr<std::unique_ptr<AddressSpace>> BuildKernelAddressSpace(Cpu& cpu, Machine* machine,
                                                                PrivilegedOps* ops,
                                                                FrameAllocator* pool) {
  EREBOR_ASSIGN_OR_RETURN(auto space,
                          AddressSpace::Create(cpu, machine, ops, pool, nullptr));
  // Direct map: supervisor read-write, non-executable.
  const uint64_t frames = machine->memory().num_frames();
  for (FrameNum f = 0; f < frames; ++f) {
    EREBOR_RETURN_IF_ERROR(space->MapFrame(
        cpu, layout::DirectMap(AddrOf(f)), f,
        pte::kPresent | pte::kWritable | pte::kNoExecute));
  }
  // Kernel text window: executable, read-only.
  for (FrameNum i = 0; i < layout::kKernelTextFrames; ++i) {
    EREBOR_RETURN_IF_ERROR(space->MapFrame(cpu, layout::kKernelTextBase + AddrOf(i),
                                           layout::kKernelTextFirstFrame + i,
                                           pte::kPresent));
  }
  return space;
}

}  // namespace erebor
