// Per-process address spaces: a page-table tree in simulated physical memory plus VMA
// bookkeeping for demand paging. All PTE stores flow through PrivilegedOps so the same
// code runs natively or EMC-instrumented.
#ifndef EREBOR_SRC_KERNEL_ADDRSPACE_H_
#define EREBOR_SRC_KERNEL_ADDRSPACE_H_

#include <map>
#include <memory>

#include "src/hw/machine.h"
#include "src/kernel/frame_alloc.h"
#include "src/kernel/layout.h"
#include "src/kernel/privops.h"

namespace erebor {

struct EmcRing;
class MmuRingBatch;

enum class VmaKind : uint8_t {
  kAnon,      // demand-zero anonymous memory
  kConfined,  // sandbox confined memory (pre-populated + pinned by the monitor)
  kCommon,    // sandbox common memory (shared frames, read-only once sealed)
  kFile,      // file-backed (populated from the ramfs at fault time)
};

struct Vma {
  Vaddr start = 0;
  Vaddr end = 0;  // exclusive
  Pte flags = 0;  // leaf PTE flags to install on fault
  VmaKind kind = VmaKind::kAnon;
  // kCommon: backing frames, indexed by (va - start) / kPageSize.
  std::vector<FrameNum> backing;
  std::string file;        // kFile: ramfs path
  uint64_t file_offset = 0;
};

class AddressSpace {
 public:
  // Creates an empty address space whose kernel half mirrors `kernel_template` (PML4
  // entries 256..511 copied so all processes share kernel mappings).
  static StatusOr<std::unique_ptr<AddressSpace>> Create(Cpu& cpu, Machine* machine,
                                                        PrivilegedOps* ops,
                                                        FrameAllocator* pool,
                                                        const AddressSpace* kernel_template);

  Paddr root() const { return root_; }
  FrameAllocator& pool() { return *pool_; }

  // ---- Raw mapping primitives (PTE writes via PrivilegedOps) ----
  Status MapFrame(Cpu& cpu, Vaddr va, FrameNum frame, Pte flags);
  // Maps many pages with one batched privileged call for the leaf entries
  // (intermediate page-table pages are still created individually). This is the
  // batched-MMU-update optimization of paper section 9.1.
  struct PageMapping {
    Vaddr va;
    FrameNum frame;
    Pte flags;
  };
  Status MapRangeBatched(Cpu& cpu, const std::vector<PageMapping>& mappings);
  // When the backend exposes an MMU ring for `cpu` (PrivilegedOps::mmu_ring),
  // MapRangeBatched, DestroyVma, HandleDemandFault, and ReleaseUserFrames all
  // switch to staging descriptors and crossing the gate once per doorbell; the
  // synchronous per-op paths above remain byte-for-byte what they were.

  // Populates every not-yet-mapped page of the VMA at `start` (anon/file kinds get
  // fresh zeroed frames; common kinds use their backing), with leaf writes batched.
  Status PopulateVmaBatched(Cpu& cpu, Vaddr start);
  Status UnmapPage(Cpu& cpu, Vaddr va);
  Status ProtectPage(Cpu& cpu, Vaddr va, Pte flags);
  StatusOr<WalkResult> Lookup(Vaddr va) const;
  // Lookup through `cpu`'s software TLB (hot paths: demand-fault probes, fork scans).
  StatusOr<WalkResult> LookupCached(Cpu& cpu, Vaddr va) const;

  // ---- VMA layer ----
  StatusOr<Vaddr> CreateVma(uint64_t len, Pte flags, VmaKind kind, Vaddr fixed = 0);
  Status DestroyVma(Cpu& cpu, Vaddr start);
  Vma* FindVma(Vaddr va);
  const std::map<Vaddr, Vma>& vmas() const { return vmas_; }

  // Demand-fault service: allocates/maps the page backing `va`. Returns the number of
  // PTE writes performed. kNotFound if no VMA covers va (a real segfault).
  StatusOr<int> HandleDemandFault(Cpu& cpu, Vaddr va,
                                  PhysMemory* file_source = nullptr);

  // Copies all user mappings of `src` into this space (fork). Allocates fresh frames
  // and copies page contents (no COW, matching the mini-kernel's simplicity).
  Status CloneUserMappings(Cpu& cpu, const AddressSpace& src);

  // Releases every frame owned by user mappings (process teardown).
  void ReleaseUserFrames(Cpu& cpu);

  uint64_t mapped_user_pages() const { return mapped_user_pages_; }

 private:
  AddressSpace(Machine* machine, PrivilegedOps* ops, FrameAllocator* pool, Paddr root)
      : machine_(machine), ops_(ops), pool_(pool), root_(root) {}

  PteWriter MakeWriter(Cpu& cpu, int* pte_writes = nullptr);

  // ---- MMU-ring staging paths (active only when ops_->mmu_ring() != nullptr) ----
  // Publishes the staged batch and crosses the gate until the SQ drains; the
  // first per-descriptor refusal comes back as an error.
  Status RingFlush(Cpu& cpu, EmcRing* ring, MmuRingBatch& batch);
  Status MapRangeRing(Cpu& cpu, EmcRing* ring, const std::vector<PageMapping>& mappings);
  Status DestroyVmaRing(Cpu& cpu, EmcRing* ring, const Vma& vma);
  // Maps the faulting page plus up to a window of following unmapped pages of
  // the VMA through one doorbell. Returns the number of pages mapped.
  StatusOr<int> FaultAroundRing(Cpu& cpu, EmcRing* ring, Vma& vma, Vaddr page_va);
  // Stages kFrameReclaim for every owned frame (the monitor scrubs them).
  // Returns false if any descriptor was refused — the caller falls back to
  // zeroing kernel-side.
  bool ReclaimFramesRing(Cpu& cpu, EmcRing* ring);

  Machine* machine_;
  PrivilegedOps* ops_;
  FrameAllocator* pool_;
  Paddr root_;
  std::map<Vaddr, Vma> vmas_;
  Vaddr mmap_cursor_ = layout::kUserBase + (1ULL << 30);  // anonymous-mmap arena
  uint64_t mapped_user_pages_ = 0;
  std::vector<FrameNum> owned_frames_;  // frames this space allocated (anon/file/fork)
  std::vector<FrameNum> owned_ptps_;    // intermediate page-table pages
};

// Builds the kernel master address space: direct map of all physical memory
// (supervisor, NX) and the kernel text window (supervisor, executable, read-only).
StatusOr<std::unique_ptr<AddressSpace>> BuildKernelAddressSpace(Cpu& cpu, Machine* machine,
                                                                PrivilegedOps* ops,
                                                                FrameAllocator* pool);

}  // namespace erebor

#endif  // EREBOR_SRC_KERNEL_ADDRSPACE_H_
