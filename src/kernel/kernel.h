// The guest operating system kernel (untrusted in the Erebor threat model).
//
// A deliberately small but real OS: boot (CR/MSR/IDT setup through PrivilegedOps),
// physical frame management, process/thread lifecycle, a round-robin scheduler with
// APIC-timer preemption, a Linux-flavoured syscall table, demand paging, an in-memory
// filesystem, signals, futexes, a character-device registry (hosting /dev/erebor), and
// a GHCI-backed virtio-style network path used by the untrusted proxy.
//
// Interposition hooks: when Erebor is active the monitor substitutes the IDT and the
// syscall entry (IA32_LSTAR) with its own stubs, which wrap the kernel entry points
// declared here. The kernel itself never needs to know whether it is being interposed,
// which is exactly the paper's drop-in property.
#ifndef EREBOR_SRC_KERNEL_KERNEL_H_
#define EREBOR_SRC_KERNEL_KERNEL_H_

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "src/host/vmm.h"
#include "src/hw/machine.h"
#include "src/kernel/fs.h"
#include "src/kernel/frame_alloc.h"
#include "src/kernel/layout.h"
#include "src/kernel/privops.h"
#include "src/kernel/syscalls.h"
#include "src/kernel/task.h"
#include "src/tdx/tdx_module.h"

namespace erebor {

class Kernel;

// Registers a callable so an integer syscall argument can refer to it (clone entry
// points, signal handlers). Returns the token to pass through the syscall.
uint64_t StashProgram(ProgramFn fn);
uint64_t StashSignalHandler(SignalHandlerFn fn);

struct KernelStats {
  uint64_t syscalls = 0;
  uint64_t page_faults = 0;
  uint64_t timer_interrupts = 0;
  uint64_t device_interrupts = 0;
  uint64_t ve_exits = 0;          // #VE events (cpuid and other synchronous exits)
  uint64_t context_switches = 0;
  uint64_t signals_delivered = 0;
  uint64_t forks = 0;
  Cycles boot_cycles = 0;

  void Reset() { *this = KernelStats{}; }
};

// User-side API handed to program step functions: syscall issue, user-memory access
// with demand paging, compute-cycle accounting, and preemption polling.
class SyscallContext {
 public:
  SyscallContext(Kernel* kernel, Task* task, Cpu* cpu)
      : kernel_(kernel), task_(task), cpu_(cpu) {}

  Kernel& kernel() { return *kernel_; }
  Task& task() { return *task_; }
  Cpu& cpu() { return *cpu_; }

  // Issues a syscall (charges transition cost, runs the kernel entry in supervisor
  // mode, returns to user). For a sealed sandbox task the monitor stub kills the task:
  // the returned status is kAborted and the task must stop running.
  StatusOr<uint64_t> Syscall(int nr, uint64_t a0 = 0, uint64_t a1 = 0, uint64_t a2 = 0,
                             uint64_t a3 = 0, uint64_t a4 = 0, uint64_t a5 = 0);

  // cpuid "instruction": inside a CVM this raises #VE; the handler performs the
  // hypercall (or, for sealed sandboxes, the monitor serves its cached values).
  StatusOr<uint64_t> Cpuid(uint32_t leaf);

  // Models a faulting instruction in user code (divide-by-zero, ud2, ...): delivers
  // the exception through the IDT. The task is usually dead afterwards.
  Status RaiseException(Vector vector, const std::string& reason);

  // User-memory access with demand paging: on #PF the kernel fault path runs and the
  // access retries. A true segfault (no VMA) kills the task.
  Status ReadUser(Vaddr va, uint8_t* out, uint64_t len);
  Status WriteUser(Vaddr va, const uint8_t* data, uint64_t len);
  // Faults in the page containing va and returns a host pointer to it (valid within
  // the page only) — the fast path for compute kernels.
  StatusOr<uint8_t*> PagePtr(Vaddr va, bool for_write);

  // Charges user compute cycles.
  void Compute(Cycles cycles);

  // Preemption point: delivers pending interrupts and signals. Returns false if the
  // task was killed and must unwind.
  bool Poll();

  uint64_t syscalls_made = 0;

 private:
  Kernel* kernel_;
  Task* task_;
  Cpu* cpu_;
};

// Device ioctl signature: (context, task, request, arg_va) -> result.
using DeviceIoctlFn =
    std::function<StatusOr<uint64_t>(SyscallContext&, Task&, uint64_t, Vaddr)>;

// Kernel syscall entry signature, as reachable from the LSTAR-configured entry label.
using SyscallEntryFn =
    std::function<StatusOr<uint64_t>(SyscallContext&, Task&, int, const uint64_t*)>;

struct KernelConfig {
  Cycles timer_period = 2'100'000;  // ~1 kHz at the paper's 2.1 GHz
  bool enable_smep_smap = true;
  uint64_t shared_net_buffer_frames = 64;  // 256 KiB virtio ring (the channel MTU)
};

class Kernel {
 public:
  Kernel(Machine* machine, PrivilegedOps* ops, TdxModule* tdx, HostVmm* host,
         KernelConfig config = {});

  // ---- Boot ----
  // Builds the kernel address space, programs CRs/MSRs/IDT through PrivilegedOps,
  // converts the shared-IO window, and starts the timer.
  Status Boot();

  // ---- Accessors ----
  Machine& machine() { return *machine_; }
  Cpu& boot_cpu() { return machine_->cpu(0); }
  PrivilegedOps& privops() { return *ops_; }
  RamFs& fs() { return fs_; }
  KernelStats& stats() { return stats_; }
  FrameAllocator& pool() { return *pool_; }
  FrameAllocator& cma() { return *cma_; }
  AddressSpace& kernel_aspace() { return *kernel_aspace_; }
  const KernelConfig& config() const { return config_; }
  const IdtTable& kernel_idt() const { return idt_; }

  // ---- Processes / threads ----
  StatusOr<Task*> SpawnProcess(const std::string& name, ProgramFn program);
  StatusOr<Task*> SpawnThread(Task& parent, const std::string& name, ProgramFn program);
  Task* FindTask(int tid);
  void KillTask(Task& task, const std::string& reason);
  int live_tasks() const;

  // ---- Scheduler ----
  // Runs until no runnable tasks remain or `max_slices` quanta have executed.
  void Run(uint64_t max_slices = UINT64_MAX);
  // Runs a single scheduling round across CPUs. Returns false when idle.
  bool RunOnce();

  // ---- Kernel entry points (wrapped by the monitor when Erebor is active) ----
  StatusOr<uint64_t> SyscallEntry(SyscallContext& ctx, Task& task, int nr,
                                  const uint64_t* args);
  void PageFaultEntry(Cpu& cpu, const Fault& fault);
  void TimerEntry(Cpu& cpu, const Fault& fault);
  void VeEntry(Cpu& cpu, const Fault& fault);

  // Interposition hooks (installed by the monitor).
  using SyscallInterposer = std::function<StatusOr<uint64_t>(
      SyscallContext&, Task&, int, const uint64_t*, const SyscallEntryFn& kernel_entry)>;
  using InterruptInterposer =
      std::function<void(Cpu&, const Fault&, const std::function<void()>& kernel_handler)>;
  void SetSyscallInterposer(SyscallInterposer interposer);
  void SetInterruptInterposer(InterruptInterposer interposer);
  using VeInterposer = std::function<StatusOr<uint64_t>(SyscallContext&, Task&, uint32_t,
                                                        const std::function<StatusOr<uint64_t>()>&)>;
  void SetVeInterposer(VeInterposer interposer);
  // Called after a task is marked killed (monitor policy, segfault, ...). The monitor
  // uses this to quarantine the victim's sandbox instead of leaving it half-alive.
  using KillObserver = std::function<void(Task&, const std::string& reason)>;
  void SetKillObserver(KillObserver observer) { kill_observer_ = std::move(observer); }

  // ---- Devices ----
  int RegisterDevice(const std::string& path, DeviceIoctlFn handler);

  // Services demand faults for a user range before a kernel-initiated usercopy (the
  // kernel's equivalent of handling #PF raised inside copy_from/to_user). Also used by
  // the monitor before shepherding data into untrusted user buffers.
  Status FaultInUserRange(SyscallContext& ctx, Task& task, Vaddr va, uint64_t len);

  // ---- Networking (GHCI-backed) ----
  Status NetSend(Cpu& cpu, const Bytes& packet);
  StatusOr<Bytes> NetReceive(Cpu& cpu);

  // Current task on a CPU (set during a quantum; null when idle).
  Task* current(int cpu_index) { return current_[cpu_index]; }

  // Internal syscall implementation, public for the monitor's forwarding stub.
  friend class SyscallContext;

 private:
  struct Device {
    std::string path;
    DeviceIoctlFn handler;
  };

  Status SetupIdt();
  Status SetupSyscallMsr();
  void DeliverInterruptsFor(Cpu& cpu, Task* task);
  void DeliverSignals(SyscallContext& ctx, Task& task);
  Task* PickNext();
  void ContextSwitch(Cpu& cpu, Task* task);
  void ReapTask(Task& task);

  StatusOr<uint64_t> DoSyscall(SyscallContext& ctx, Task& task, int nr,
                               const uint64_t* args);
  StatusOr<uint64_t> SysMmap(SyscallContext& ctx, Task& task, const uint64_t* args);
  StatusOr<uint64_t> SysReadWrite(SyscallContext& ctx, Task& task, int nr,
                                  const uint64_t* args);
  StatusOr<uint64_t> SysFutex(SyscallContext& ctx, Task& task, const uint64_t* args);
  StatusOr<uint64_t> SysForkClone(SyscallContext& ctx, Task& task, int nr,
                                  const uint64_t* args);

  Machine* machine_;
  PrivilegedOps* ops_;
  TdxModule* tdx_;
  HostVmm* host_;
  KernelConfig config_;

  std::unique_ptr<FrameAllocator> pool_;  // general-purpose frames
  std::unique_ptr<FrameAllocator> cma_;   // contiguous region for confined memory
  std::unique_ptr<AddressSpace> kernel_aspace_;
  RamFs fs_;
  KernelStats stats_;
  IdtTable idt_;
  CodeLabelId syscall_entry_label_ = kInvalidCodeLabel;

  std::vector<std::unique_ptr<Task>> tasks_;
  std::deque<Task*> run_queue_;
  std::vector<Task*> current_;
  int next_tid_ = 1;

  std::vector<Device> devices_;
  Paddr net_buffer_pa_ = 0;

  SyscallInterposer syscall_interposer_;
  InterruptInterposer interrupt_interposer_;
  VeInterposer ve_interposer_;
  KillObserver kill_observer_;

  bool booted_ = false;
};

}  // namespace erebor

#endif  // EREBOR_SRC_KERNEL_KERNEL_H_
