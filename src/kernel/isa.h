// Genuine x86-64 byte encodings of the sensitive privileged instructions from Table 2
// of the paper, plus helpers to emit native or EMC-instrumented instruction streams.
//
// The guest kernel "binary" is a real byte image: the native build embeds these
// opcode sequences and the instrumented build replaces each with a call to the EMC
// entry gate. The monitor's verified boot performs byte-level scanning over executable
// sections for these patterns (paper section 5.1), so both the scanner and its attack
// tests (hidden, misaligned, boundary-straddling opcodes) operate on real encodings.
#ifndef EREBOR_SRC_KERNEL_ISA_H_
#define EREBOR_SRC_KERNEL_ISA_H_

#include <string>
#include <vector>

#include "src/common/bytes.h"

namespace erebor {

enum class SensitiveOp : uint8_t {
  kMovToCr0,
  kMovToCr3,
  kMovToCr4,
  kWrmsr,
  kStac,
  kClac,
  kLidt,
  kTdcall,
  kVmcall,
};

std::string SensitiveOpName(SensitiveOp op);

// Byte encodings.
//   mov %rax,%cr0  : 0F 22 C0      mov %rax,%cr3 : 0F 22 D8      mov %rax,%cr4 : 0F 22 E0
//   wrmsr          : 0F 30
//   stac           : 0F 01 CB      clac          : 0F 01 CA
//   lidt (m)       : 0F 01 /3 (modrm 0x1D rip-relative form used here)
//   tdcall         : 66 0F 01 CC
//   vmcall         : 0F 01 C1
Bytes EncodeSensitiveOp(SensitiveOp op);

// endbr64: F3 0F 1E FA.
Bytes EncodeEndbr64();

// call rel32 (E8 xx xx xx xx) to the EMC entry gate; the relocation target is symbolic
// in the simulation, so the displacement is a fixed marker value.
Bytes EncodeEmcCall();

// All byte patterns the scanner must reject, with names for diagnostics.
struct SensitivePattern {
  SensitiveOp op;
  Bytes bytes;
};
const std::vector<SensitivePattern>& SensitivePatterns();

// Scans `code` for any sensitive pattern at *any* byte offset (instruction streams can
// hide opcodes at unaligned offsets). Returns the offset and matched op of the first
// hit, or nullopt-equivalent via found=false.
struct ScanHit {
  bool found = false;
  size_t offset = 0;
  SensitiveOp op = SensitiveOp::kWrmsr;
};
ScanHit ScanForSensitiveBytes(const uint8_t* code, size_t len);
inline ScanHit ScanForSensitiveBytes(const Bytes& code) {
  return ScanForSensitiveBytes(code.data(), code.size());
}

}  // namespace erebor

#endif  // EREBOR_SRC_KERNEL_ISA_H_
