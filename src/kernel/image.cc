#include "src/kernel/image.h"

#include <cstring>

#include "src/common/rng.h"
#include "src/kernel/layout.h"

namespace erebor {

namespace {

constexpr char kMagic[4] = {'K', 'E', 'L', 'F'};

}  // namespace

Bytes KernelImage::Serialize() const {
  // Exact-size the buffer and write by offset: one allocation, no reallocating
  // insert() growth (which GCC's -Werror stringop-overflow analysis flags with
  // false positives on empty vectors).
  size_t total = 4 + 4 + 4;
  for (const auto& section : sections) {
    total += 4 + section.name.size() + 4 + 8 + 4 + section.data.size();
  }
  for (const auto& symbol : symbols) {
    total += 4 + symbol.name.size() + 8 + 4;
  }
  Bytes out(total);
  size_t off = 0;
  auto put_raw = [&](const void* p, size_t n) {
    if (n != 0) {
      std::memcpy(out.data() + off, p, n);
      off += n;
    }
  };
  put_raw(kMagic, 4);
  auto put32 = [&](uint32_t v) {
    uint8_t tmp[4];
    StoreLe32(tmp, v);
    put_raw(tmp, 4);
  };
  auto put64 = [&](uint64_t v) {
    uint8_t tmp[8];
    StoreLe64(tmp, v);
    put_raw(tmp, 8);
  };
  auto put_string = [&](const std::string& s) {
    put32(static_cast<uint32_t>(s.size()));
    put_raw(s.data(), s.size());
  };

  put32(static_cast<uint32_t>(sections.size()));
  for (const auto& section : sections) {
    put_string(section.name);
    put32((section.executable ? 1u : 0u) | (section.writable ? 2u : 0u));
    put64(section.vaddr);
    put32(static_cast<uint32_t>(section.data.size()));
    put_raw(section.data.data(), section.data.size());
  }
  put32(static_cast<uint32_t>(symbols.size()));
  for (const auto& symbol : symbols) {
    put_string(symbol.name);
    put64(symbol.vaddr);
    put32(symbol.size);
  }
  return out;
}

StatusOr<KernelImage> KernelImage::Deserialize(const Bytes& raw) {
  size_t pos = 0;
  auto need = [&](size_t n) -> bool { return pos + n <= raw.size(); };
  auto get32 = [&]() -> uint32_t {
    const uint32_t v = LoadLe32(raw.data() + pos);
    pos += 4;
    return v;
  };
  auto get64 = [&]() -> uint64_t {
    const uint64_t v = LoadLe64(raw.data() + pos);
    pos += 8;
    return v;
  };

  if (!need(8) || std::memcmp(raw.data(), kMagic, 4) != 0) {
    return InvalidArgumentError("bad KELF magic");
  }
  pos = 4;
  KernelImage image;
  const uint32_t num_sections = get32();
  if (num_sections > 1024) {
    return InvalidArgumentError("implausible section count");
  }
  for (uint32_t i = 0; i < num_sections; ++i) {
    KernelSection section;
    if (!need(4)) {
      return InvalidArgumentError("truncated section name length");
    }
    const uint32_t name_len = get32();
    if (!need(name_len)) {
      return InvalidArgumentError("truncated section name");
    }
    section.name.assign(raw.begin() + pos, raw.begin() + pos + name_len);
    pos += name_len;
    if (!need(16)) {
      return InvalidArgumentError("truncated section header");
    }
    const uint32_t flags = get32();
    section.executable = (flags & 1u) != 0;
    section.writable = (flags & 2u) != 0;
    section.vaddr = get64();
    const uint32_t size = get32();
    if (!need(size)) {
      return InvalidArgumentError("truncated section data");
    }
    section.data.assign(raw.begin() + pos, raw.begin() + pos + size);
    pos += size;
    image.sections.push_back(std::move(section));
  }
  if (!need(4)) {
    return InvalidArgumentError("truncated symbol table");
  }
  const uint32_t num_symbols = get32();
  if (num_symbols > 65536) {
    return InvalidArgumentError("implausible symbol count");
  }
  for (uint32_t i = 0; i < num_symbols; ++i) {
    KernelSymbol symbol;
    if (!need(4)) {
      return InvalidArgumentError("truncated symbol name length");
    }
    const uint32_t name_len = get32();
    // 64-bit arithmetic: a crafted name_len near UINT32_MAX must not wrap the bound.
    if (!need(static_cast<uint64_t>(name_len) + 12)) {
      return InvalidArgumentError("truncated symbol");
    }
    symbol.name.assign(raw.begin() + pos, raw.begin() + pos + name_len);
    pos += name_len;
    symbol.vaddr = get64();
    symbol.size = get32();
    image.symbols.push_back(std::move(symbol));
  }
  return image;
}

const KernelSection* KernelImage::FindSection(const std::string& name) const {
  for (const auto& section : sections) {
    if (section.name == name) {
      return &section;
    }
  }
  return nullptr;
}

uint64_t KernelImage::TotalLoadSize() const {
  uint64_t total = 0;
  for (const auto& section : sections) {
    total += section.data.size();
  }
  return total;
}

namespace {

// Filler "instruction stream" bytes. Restricted to encodings that cannot combine with
// neighbours into a sensitive pattern (no 0x0F / 0x66 escape bytes).
void EmitFiller(Bytes& text, Rng& rng, int n) {
  static const uint8_t kSafe[] = {0x90, 0x55, 0x53, 0x51, 0x50, 0x89, 0xC3,
                                  0x48, 0x31, 0xC0, 0x83, 0xE9, 0x01, 0x75};
  for (int i = 0; i < n; ++i) {
    text.push_back(kSafe[rng.NextBelow(sizeof(kSafe))]);
  }
}

void Append(Bytes& text, const Bytes& bytes) {
  text.insert(text.end(), bytes.begin(), bytes.end());
}

}  // namespace

KernelImage BuildKernelImage(const KernelBuildOptions& options) {
  Rng rng(options.seed);
  KernelImage image;
  KernelSection text;
  text.name = ".text";
  text.executable = true;
  text.writable = false;
  text.vaddr = layout::kKernelTextBase;

  struct FunctionSpec {
    std::string name;
    std::vector<SensitiveOp> ops;
  };
  const std::vector<FunctionSpec> functions = {
      {"start_kernel", {SensitiveOp::kMovToCr0, SensitiveOp::kMovToCr4}},
      {"switch_mm", {SensitiveOp::kMovToCr3}},
      {"native_write_msr", {SensitiveOp::kWrmsr}},
      {"syscall_init", {SensitiveOp::kWrmsr}},
      {"copy_from_user", {SensitiveOp::kStac, SensitiveOp::kClac}},
      {"copy_to_user", {SensitiveOp::kStac, SensitiveOp::kClac}},
      {"load_current_idt", {SensitiveOp::kLidt}},
      {"tdx_hypercall", {SensitiveOp::kTdcall}},
      {"tdx_mcall_get_report", {SensitiveOp::kTdcall}},
      {"tdx_enc_status_changed", {SensitiveOp::kTdcall}},
      {"native_set_pte", {}},  // PTE writes are plain stores; policy comes from PKS
  };

  auto emit_function = [&](const std::string& name, const std::vector<SensitiveOp>& ops) {
    KernelSymbol symbol;
    symbol.name = name;
    symbol.vaddr = text.vaddr + text.data.size();
    Append(text.data, EncodeEndbr64());
    EmitFiller(text.data, rng, 6 + static_cast<int>(rng.NextBelow(18)));
    for (const SensitiveOp op : ops) {
      if (options.instrumented) {
        Append(text.data, EncodeEmcCall());
      } else {
        Append(text.data, EncodeSensitiveOp(op));
      }
      EmitFiller(text.data, rng, 2 + static_cast<int>(rng.NextBelow(8)));
    }
    text.data.push_back(0xC3);  // ret
    symbol.size = static_cast<uint32_t>(text.vaddr + text.data.size() - symbol.vaddr);
    image.symbols.push_back(symbol);
  };

  for (const auto& fn : functions) {
    emit_function(fn.name, fn.ops);
  }
  for (int i = 0; i < options.extra_functions; ++i) {
    emit_function("kfunc_" + std::to_string(i), {});
  }

  if (options.smuggle_sensitive_op) {
    // Hide the op mid-stream, unaligned relative to any function start, to exercise
    // the scanner's byte-level (not instruction-level) matching.
    const size_t insert_at = text.data.size() / 2 + 1;
    const Bytes op_bytes = EncodeSensitiveOp(options.smuggled_op);
    text.data.insert(text.data.begin() + insert_at, op_bytes.begin(), op_bytes.end());
  }

  image.sections.push_back(std::move(text));

  KernelSection data;
  data.name = ".data";
  data.executable = false;
  data.writable = true;
  data.vaddr = layout::kKernelTextBase + 0x200000;
  data.data.resize(4096);
  rng.Fill(data.data.data(), data.data.size());
  image.sections.push_back(std::move(data));

  KernelSection rodata;
  rodata.name = ".rodata";
  rodata.executable = false;
  rodata.writable = false;
  rodata.vaddr = layout::kKernelTextBase + 0x300000;
  rodata.data.assign({'E', 'R', 'E', 'B', 'O', 'R', '-', 'G', 'U', 'E', 'S', 'T'});
  image.sections.push_back(std::move(rodata));

  return image;
}

}  // namespace erebor
