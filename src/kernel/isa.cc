#include "src/kernel/isa.h"

namespace erebor {

std::string SensitiveOpName(SensitiveOp op) {
  switch (op) {
    case SensitiveOp::kMovToCr0:
      return "mov %cr0";
    case SensitiveOp::kMovToCr3:
      return "mov %cr3";
    case SensitiveOp::kMovToCr4:
      return "mov %cr4";
    case SensitiveOp::kWrmsr:
      return "wrmsr";
    case SensitiveOp::kStac:
      return "stac";
    case SensitiveOp::kClac:
      return "clac";
    case SensitiveOp::kLidt:
      return "lidt";
    case SensitiveOp::kTdcall:
      return "tdcall";
    case SensitiveOp::kVmcall:
      return "vmcall";
  }
  return "?";
}

Bytes EncodeSensitiveOp(SensitiveOp op) {
  switch (op) {
    case SensitiveOp::kMovToCr0:
      return {0x0F, 0x22, 0xC0};
    case SensitiveOp::kMovToCr3:
      return {0x0F, 0x22, 0xD8};
    case SensitiveOp::kMovToCr4:
      return {0x0F, 0x22, 0xE0};
    case SensitiveOp::kWrmsr:
      return {0x0F, 0x30};
    case SensitiveOp::kStac:
      return {0x0F, 0x01, 0xCB};
    case SensitiveOp::kClac:
      return {0x0F, 0x01, 0xCA};
    case SensitiveOp::kLidt:
      return {0x0F, 0x01, 0x1D, 0x00, 0x00, 0x00, 0x00};  // lidt 0x0(%rip)
    case SensitiveOp::kTdcall:
      return {0x66, 0x0F, 0x01, 0xCC};
    case SensitiveOp::kVmcall:
      return {0x0F, 0x01, 0xC1};
  }
  return {};
}

Bytes EncodeEndbr64() { return {0xF3, 0x0F, 0x1E, 0xFA}; }

Bytes EncodeEmcCall() {
  // call rel32 with a symbolic displacement (resolved at load; marker 0x454D0043 "EMC").
  return {0xE8, 0x43, 0x00, 0x4D, 0x45};
}

const std::vector<SensitivePattern>& SensitivePatterns() {
  static const std::vector<SensitivePattern> kPatterns = [] {
    std::vector<SensitivePattern> patterns;
    // mov-to-CR: match the two-byte opcode 0F 22 with *any* modrm (all CR targets are
    // sensitive, including encodings the builder never emits).
    patterns.push_back({SensitiveOp::kMovToCr0, {0x0F, 0x22}});
    for (SensitiveOp op : {SensitiveOp::kWrmsr, SensitiveOp::kStac, SensitiveOp::kClac,
                           SensitiveOp::kTdcall, SensitiveOp::kVmcall}) {
      patterns.push_back({op, EncodeSensitiveOp(op)});
    }
    // lidt: 0F 01 with modrm reg-field /3 (memory forms). Match the common rip-relative
    // and register-indirect modrm bytes.
    patterns.push_back({SensitiveOp::kLidt, {0x0F, 0x01, 0x1D}});
    patterns.push_back({SensitiveOp::kLidt, {0x0F, 0x01, 0x18}});
    patterns.push_back({SensitiveOp::kLidt, {0x0F, 0x01, 0x5D}});
    return patterns;
  }();
  return kPatterns;
}

ScanHit ScanForSensitiveBytes(const uint8_t* code, size_t len) {
  ScanHit hit;
  const auto& patterns = SensitivePatterns();
  for (size_t i = 0; i < len; ++i) {
    for (const auto& pattern : patterns) {
      const size_t n = pattern.bytes.size();
      if (i + n > len) {
        continue;
      }
      bool match = true;
      for (size_t j = 0; j < n; ++j) {
        if (code[i + j] != pattern.bytes[j]) {
          match = false;
          break;
        }
      }
      if (match) {
        hit.found = true;
        hit.offset = i;
        hit.op = pattern.op;
        return hit;
      }
    }
  }
  return hit;
}

}  // namespace erebor
