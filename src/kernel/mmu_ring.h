// MMU submission/completion rings (kernel <-> monitor shared memory).
//
// Fig8's worst overheads are the MMU-heavy paths because every PTE store, TLB
// shootdown, and frame op pays the full EMC gate round trip. This header is the
// shared-memory ring ABI that amortizes the crossing io_uring-style: the kernel
// stages typed descriptors into a fixed-slot submission queue (SQ), crosses the
// EMC gate once per doorbell, and the monitor drains the window through the
// table-driven dispatch core — validating, charging Table-4 cost, and tracing
// per descriptor exactly as the synchronous path does — posting one completion
// (CQE) per descriptor that the kernel reaps without a second crossing.
//
// Trust model: everything the kernel writes (sq_tail, cq_head, the SQ slots) is
// untrusted input to the monitor. The monitor keeps private shadow copies of
// the indexes it owns (sq_head, cq_tail) and snapshots the SQ window before
// validating it, so mid-drain mutation of a slot is harmless by construction.
// The structures live here (kernel/) because the kernel allocates them; the
// monitor-side drain and hardening live in src/monitor/emc_ring.{h,cc}.
#ifndef EREBOR_SRC_KERNEL_MMU_RING_H_
#define EREBOR_SRC_KERNEL_MMU_RING_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <vector>

#include "src/hw/paging.h"
#include "src/hw/types.h"

namespace erebor {

// Descriptor opcodes. A kPteSpan header is followed by `count` payload slots
// (flagged kSpanPayload), giving the ring the same all-or-nothing PTE-batch
// shape as EmcWritePteBatch without a variable-length SQE.
enum class RingOp : uint8_t {
  kNop = 0,
  kWritePte,      // arg0 = entry_pa, arg1 = value
  kPteSpan,       // header; count payload slots follow, each (entry_pa, value)
  kTlbShootdown,  // arg0 = leaf entry_pa (coalesced across the drained window)
  kRegisterPtp,   // arg0 = frame, arg1 = root_pa
  kFrameReclaim,  // arg0 = frame (monitor-side scrub of a released frame)
  kCount,
};

namespace ring_flags {
inline constexpr uint8_t kSpanPayload = 1u << 0;  // slot is kPteSpan payload
}  // namespace ring_flags

// Submission-queue entry: POD, fixed size, written by the (untrusted) kernel.
struct RingSqe {
  RingOp op = RingOp::kNop;
  uint8_t flags = 0;
  uint16_t count = 0;       // kPteSpan header: number of payload slots following
  int32_t sandbox_id = -1;  // must match the ring's binding (-1 = kernel ring)
  uint64_t arg0 = 0;
  uint64_t arg1 = 0;
  uint64_t user_data = 0;   // echoed in the CQE, opaque to the monitor
};

// Completion-queue entry, written by the monitor. `result` is 0 on success or
// the negated ErrorCode of the per-descriptor refusal.
struct RingCqe {
  uint64_t user_data = 0;
  int32_t result = 0;
  uint32_t flags = 0;
};

// One ring pair in kernel<->monitor shared memory. Indexes are free-running
// (slot = index & kMask, io_uring-style); all atomics are relaxed — the EMC
// gate crossing is the synchronization point between the two sides, the
// atomics only keep cross-thread index reads well-defined under the
// real-thread engine.
struct EmcRing {
  static constexpr uint32_t kSlots = 256;  // power of two
  static constexpr uint32_t kMask = kSlots - 1;

  // Kernel-written side (untrusted input to the monitor).
  std::atomic<uint32_t> sq_tail{0};
  std::atomic<uint32_t> cq_head{0};
  std::array<RingSqe, kSlots> sq{};

  // Monitor-written side (the kernel treats these as read-only).
  std::atomic<uint32_t> sq_head{0};
  std::atomic<uint32_t> cq_tail{0};
  std::array<RingCqe, kSlots> cq{};

  uint32_t SqPending() const {
    return sq_tail.load(std::memory_order_relaxed) -
           sq_head.load(std::memory_order_relaxed);
  }
  uint32_t CqPending() const {
    return cq_tail.load(std::memory_order_relaxed) -
           cq_head.load(std::memory_order_relaxed);
  }
};

// Kernel-side batch builder. Descriptors are staged locally, then Publish()
// copies them into the SQ and advances sq_tail; the caller crosses the gate
// (PrivilegedOps::RingDoorbell) and Reap() consumes the completions.
//
// The builder also keeps a write overlay — entry_pa -> staged PTE value — so
// page-table walks made while a batch is open observe staged-but-unapplied
// entries (MapRangeBatched creates an intermediate PTP and immediately links
// leaves under it within one batch). The overlay is cleared after a doorbell,
// once the monitor has applied the writes to real memory.
class MmuRingBatch {
 public:
  explicit MmuRingBatch(EmcRing* ring) : ring_(ring) {}

  size_t staged() const { return staged_.size(); }
  // SQ slots still available to this batch (capacity minus unconsumed SQEs
  // minus what is already staged locally).
  size_t FreeSlots() const {
    const uint32_t in_flight = ring_->SqPending();
    const size_t used = static_cast<size_t>(in_flight) + staged_.size();
    return used >= EmcRing::kSlots ? 0 : EmcRing::kSlots - used;
  }

  bool StagePteWrite(Paddr entry_pa, Pte value) {
    if (FreeSlots() < 1) {
      return false;
    }
    RingSqe sqe;
    sqe.op = RingOp::kWritePte;
    sqe.arg0 = entry_pa;
    sqe.arg1 = value;
    sqe.user_data = next_user_data_++;
    staged_.push_back(sqe);
    overlay_[entry_pa] = value;
    return true;
  }

  bool StagePteSpan(const std::vector<std::pair<Paddr, Pte>>& updates) {
    if (updates.empty() || FreeSlots() < updates.size() + 1) {
      return false;
    }
    RingSqe header;
    header.op = RingOp::kPteSpan;
    header.count = static_cast<uint16_t>(updates.size());
    header.user_data = next_user_data_++;
    staged_.push_back(header);
    for (const auto& [entry_pa, value] : updates) {
      RingSqe sqe;
      sqe.op = RingOp::kWritePte;
      sqe.flags = ring_flags::kSpanPayload;
      sqe.arg0 = entry_pa;
      sqe.arg1 = value;
      sqe.user_data = next_user_data_++;
      staged_.push_back(sqe);
      overlay_[entry_pa] = value;
    }
    return true;
  }

  bool StageShootdown(Paddr entry_pa) {
    if (FreeSlots() < 1) {
      return false;
    }
    RingSqe sqe;
    sqe.op = RingOp::kTlbShootdown;
    sqe.arg0 = entry_pa;
    sqe.user_data = next_user_data_++;
    staged_.push_back(sqe);
    return true;
  }

  bool StageRegisterPtp(FrameNum frame, Paddr root_pa) {
    if (FreeSlots() < 1) {
      return false;
    }
    RingSqe sqe;
    sqe.op = RingOp::kRegisterPtp;
    sqe.arg0 = frame;
    sqe.arg1 = root_pa;
    sqe.user_data = next_user_data_++;
    staged_.push_back(sqe);
    return true;
  }

  bool StageFrameReclaim(FrameNum frame) {
    if (FreeSlots() < 1) {
      return false;
    }
    RingSqe sqe;
    sqe.op = RingOp::kFrameReclaim;
    sqe.arg0 = frame;
    sqe.user_data = next_user_data_++;
    staged_.push_back(sqe);
    return true;
  }

  // Overlay read for walks issued while the batch is open: returns the staged
  // value for entry_pa, or `fallback` (the caller's Read64 result) when no
  // write to that slot is pending.
  Pte PendingRead(Paddr entry_pa, Pte fallback) const {
    const auto it = overlay_.find(entry_pa);
    return it == overlay_.end() ? fallback : it->second;
  }
  bool HasPending(Paddr entry_pa) const {
    return overlay_.find(entry_pa) != overlay_.end();
  }

  // Copies the staged descriptors into the SQ and advances sq_tail. Returns
  // the number of SQEs published (0 when nothing is staged).
  uint32_t Publish() {
    const uint32_t n = static_cast<uint32_t>(staged_.size());
    uint32_t tail = ring_->sq_tail.load(std::memory_order_relaxed);
    for (const RingSqe& sqe : staged_) {
      ring_->sq[tail & EmcRing::kMask] = sqe;
      ++tail;
    }
    ring_->sq_tail.store(tail, std::memory_order_relaxed);
    staged_.clear();
    return n;
  }

  // Consumes every available CQE, advancing cq_head. Returns the number
  // reaped; the first non-zero result (negated ErrorCode) lands in
  // *first_error when provided. Clears the overlay: once the monitor has
  // drained, staged writes are visible in real page-table memory.
  size_t Reap(int32_t* first_error = nullptr) {
    uint32_t head = ring_->cq_head.load(std::memory_order_relaxed);
    const uint32_t tail = ring_->cq_tail.load(std::memory_order_relaxed);
    size_t reaped = 0;
    while (head != tail) {
      const RingCqe& cqe = ring_->cq[head & EmcRing::kMask];
      if (first_error != nullptr && *first_error == 0 && cqe.result != 0) {
        *first_error = cqe.result;
      }
      ++head;
      ++reaped;
    }
    ring_->cq_head.store(head, std::memory_order_relaxed);
    overlay_.clear();
    return reaped;
  }

 private:
  EmcRing* ring_;
  std::vector<RingSqe> staged_;
  std::map<Paddr, Pte> overlay_;
  uint64_t next_user_data_ = 1;
};

}  // namespace erebor

#endif  // EREBOR_SRC_KERNEL_MMU_RING_H_
