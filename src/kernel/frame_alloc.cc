#include "src/kernel/frame_alloc.h"

#include "src/common/faultpoint.h"

namespace erebor {

FrameAllocator::FrameAllocator(FrameNum first, FrameNum count)
    : first_(first), count_(count), bitmap_(count, false) {}

StatusOr<FrameNum> FrameAllocator::Alloc() {
  if (FaultInjector::Armed() &&
      FaultInjector::Global().Fire("frame_alloc.alloc", FaultAction::kExhaust)) {
    return ResourceExhaustedError("frame pool exhausted (injected)");
  }
  for (FrameNum i = 0; i < count_; ++i) {
    const FrameNum slot = (next_hint_ + i) % count_;
    if (!bitmap_[slot]) {
      bitmap_[slot] = true;
      next_hint_ = slot + 1;
      ++used_;
      return first_ + slot;
    }
  }
  return ResourceExhaustedError("frame pool exhausted");
}

StatusOr<FrameNum> FrameAllocator::AllocContiguous(uint64_t count) {
  if (count == 0 || count > count_) {
    return InvalidArgumentError("bad contiguous request");
  }
  if (FaultInjector::Armed() &&
      FaultInjector::Global().Fire("frame_alloc.alloc", FaultAction::kExhaust)) {
    return ResourceExhaustedError("no contiguous run (injected exhaustion)");
  }
  uint64_t run = 0;
  for (FrameNum slot = 0; slot < count_; ++slot) {
    run = bitmap_[slot] ? 0 : run + 1;
    if (run == count) {
      const FrameNum start = slot + 1 - count;
      for (FrameNum i = start; i <= slot; ++i) {
        bitmap_[i] = true;
      }
      used_ += count;
      return first_ + start;
    }
  }
  return ResourceExhaustedError("no contiguous run of " + std::to_string(count));
}

Status FrameAllocator::Free(FrameNum frame) {
  if (!Owns(frame)) {
    return InvalidArgumentError("frame not owned by this allocator");
  }
  const FrameNum slot = frame - first_;
  if (!bitmap_[slot]) {
    return FailedPreconditionError("double free of frame " + std::to_string(frame));
  }
  bitmap_[slot] = false;
  --used_;
  return OkStatus();
}

}  // namespace erebor
