#include "src/kernel/privops.h"

namespace erebor {

void PrivilegedOps::InvlPg(Cpu& cpu, Paddr root, Vaddr va) {
  // No cycle charge: invlpg cost is already folded into the page-op cycle constants,
  // and the software TLB must stay cycle-neutral.
  cpu.InvlpgBroadcast(root, va);
}

Status NativePrivOps::WritePte(Cpu& cpu, Paddr entry_pa, Pte value) {
  // native_set_pte: a plain store into the page-table page. Deliberately no TLB
  // shootdown here — hardware does not snoop PTE stores; coherence is the kernel's
  // job via InvlPg (which is what the stale-TLB tests rely on).
  cpu.cycles().Charge(cpu.costs().native_pte_write);
  cpu.memory().Write64(entry_pa, value);
  return OkStatus();
}

Status NativePrivOps::WriteCr(Cpu& cpu, int reg, uint64_t value) {
  switch (reg) {
    case 0:
      return cpu.WriteCr0(value);
    case 3:
      return cpu.WriteCr3(value);
    case 4:
      return cpu.WriteCr4(value);
    default:
      return InvalidArgumentError("bad control register");
  }
}

Status NativePrivOps::WriteMsr(Cpu& cpu, uint32_t index, uint64_t value) {
  return cpu.WriteMsr(index, value);
}

Status NativePrivOps::LoadIdt(Cpu& cpu, const IdtTable* table) { return cpu.Lidt(table); }

Status NativePrivOps::CopyToUser(Cpu& cpu, Vaddr dst, const uint8_t* src, uint64_t len) {
  cpu.cycles().Charge(len * cpu.costs().usercopy_per_byte_x100 / 100);
  EREBOR_RETURN_IF_ERROR(cpu.Stac());
  const Status st = cpu.WriteVirt(dst, src, len);
  EREBOR_RETURN_IF_ERROR(cpu.Clac());
  return st;
}

Status NativePrivOps::CopyFromUser(Cpu& cpu, Vaddr src, uint8_t* dst, uint64_t len) {
  cpu.cycles().Charge(len * cpu.costs().usercopy_per_byte_x100 / 100);
  EREBOR_RETURN_IF_ERROR(cpu.Stac());
  const Status st = cpu.ReadVirt(src, dst, len);
  EREBOR_RETURN_IF_ERROR(cpu.Clac());
  return st;
}

Status NativePrivOps::Tdcall(Cpu& cpu, uint64_t leaf, uint64_t* args, size_t nargs) {
  return cpu.Tdcall(leaf, args, nargs);
}

Status NativePrivOps::TextPoke(Cpu& cpu, Paddr code_pa, const uint8_t* bytes, uint64_t len) {
  // Natively the kernel flips CR0.WP (or uses a temporary mapping) and patches.
  cpu.cycles().Charge(cpu.costs().native_cr_write * 2);
  return cpu.memory().Write(code_pa, bytes, len);
}

}  // namespace erebor
