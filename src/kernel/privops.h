// The instrumentation seam (paper section 5.1).
//
// Every sensitive privileged operation in the guest kernel goes through this
// interface. The native backend executes the operation directly on the vCPU (the
// un-instrumented kernel). The EMC backend — installed when Erebor is active — routes
// each operation through the monitor's gated EMC path, where isolation policies are
// enforced before the instruction is executed on the kernel's behalf.
#ifndef EREBOR_SRC_KERNEL_PRIVOPS_H_
#define EREBOR_SRC_KERNEL_PRIVOPS_H_

#include "src/hw/cpu.h"
#include "src/hw/paging.h"

namespace erebor {

struct EmcRing;  // src/kernel/mmu_ring.h

class PrivilegedOps {
 public:
  virtual ~PrivilegedOps() = default;

  // Page-table entry store (native_set_pte / EMC.WritePte).
  virtual Status WritePte(Cpu& cpu, Paddr entry_pa, Pte value) = 0;
  // Batched PTE stores: the paper (section 9.1) notes fork/pagefault costs "could be
  // lowered if batched MMU update is enabled [Nested Kernel]" — one privilege
  // transition amortized over many validated writes. Entries are (entry_pa, value)
  // pairs; the batch fails atomically on the first policy denial.
  struct PteUpdate {
    Paddr entry_pa;
    Pte value;
  };
  virtual Status WritePteBatch(Cpu& cpu, const PteUpdate* updates, size_t count) {
    if (count == 0) {
      return OkStatus();
    }
    for (size_t i = 0; i < count; ++i) {
      EREBOR_RETURN_IF_ERROR(WritePte(cpu, updates[i].entry_pa, updates[i].value));
    }
    return OkStatus();
  }
  // Single-page TLB invalidation after unmap/protect. invlpg is privileged but not
  // in the paper's sensitive set (Table 2), so both backends execute it directly on
  // the vCPUs — no EMC round trip. Overridable so tests can interpose.
  virtual void InvlPg(Cpu& cpu, Paddr root, Vaddr va);
  // Declares a freshly allocated frame as a page-table page rooted at `root_pa` (the
  // monitor re-types the frame and write-protects it with the PTP protection key).
  virtual Status RegisterPtp(Cpu& cpu, FrameNum frame, Paddr root_pa) = 0;
  // Control registers: reg in {0, 3, 4}.
  virtual Status WriteCr(Cpu& cpu, int reg, uint64_t value) = 0;
  virtual Status WriteMsr(Cpu& cpu, uint32_t index, uint64_t value) = 0;
  virtual Status LoadIdt(Cpu& cpu, const IdtTable* table) = 0;

  // User-memory copies (the stac/clac window; interposed by the monitor, section 6.1).
  virtual Status CopyToUser(Cpu& cpu, Vaddr dst, const uint8_t* src, uint64_t len) = 0;
  virtual Status CopyFromUser(Cpu& cpu, Vaddr src, uint8_t* dst, uint64_t len) = 0;

  // GHCI (tdcall) requests.
  virtual Status Tdcall(Cpu& cpu, uint64_t leaf, uint64_t* args, size_t nargs) = 0;

  // Self-modifying kernel code (text_poke): validated + applied by the monitor.
  virtual Status TextPoke(Cpu& cpu, Paddr code_pa, const uint8_t* bytes, uint64_t len) = 0;

  // MMU-ring doorbell: one gate crossing that asks the monitor to drain this
  // vCPU's submission ring (src/kernel/mmu_ring.h). Backends without rings
  // refuse; callers must have checked mmu_ring() first.
  virtual Status RingDoorbell(Cpu& cpu) {
    (void)cpu;
    return FailedPreconditionError("this backend has no MMU rings");
  }
  // The submission/completion ring for a vCPU, or nullptr when rings are
  // disabled (the default). Not an EMC: this is how the kernel discovers the
  // shared-memory mapping, not a privileged operation.
  virtual EmcRing* mmu_ring(int cpu_index) {
    (void)cpu_index;
    return nullptr;
  }

  // Number of monitor calls made (0 for the native backend); Table 6's EMC/s metric.
  virtual uint64_t emc_count() const = 0;
};

// Direct execution on the vCPU (no Erebor).
class NativePrivOps : public PrivilegedOps {
 public:
  Status WritePte(Cpu& cpu, Paddr entry_pa, Pte value) override;
  Status RegisterPtp(Cpu& cpu, FrameNum frame, Paddr root_pa) override { return OkStatus(); }
  Status WriteCr(Cpu& cpu, int reg, uint64_t value) override;
  Status WriteMsr(Cpu& cpu, uint32_t index, uint64_t value) override;
  Status LoadIdt(Cpu& cpu, const IdtTable* table) override;
  Status CopyToUser(Cpu& cpu, Vaddr dst, const uint8_t* src, uint64_t len) override;
  Status CopyFromUser(Cpu& cpu, Vaddr src, uint8_t* dst, uint64_t len) override;
  Status Tdcall(Cpu& cpu, uint64_t leaf, uint64_t* args, size_t nargs) override;
  Status TextPoke(Cpu& cpu, Paddr code_pa, const uint8_t* bytes, uint64_t len) override;
  uint64_t emc_count() const override { return 0; }
};

}  // namespace erebor

#endif  // EREBOR_SRC_KERNEL_PRIVOPS_H_
