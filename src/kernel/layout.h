// Guest physical and virtual memory layout.
#ifndef EREBOR_SRC_KERNEL_LAYOUT_H_
#define EREBOR_SRC_KERNEL_LAYOUT_H_

#include "src/hw/types.h"

namespace erebor {
namespace layout {

// ---- Physical layout (frame numbers) ----
inline constexpr FrameNum kFirmwareFirstFrame = 1;     // frame 0 stays unmapped (NULL)
inline constexpr FrameNum kFirmwareFrames = 32;

inline constexpr FrameNum kMonitorFirstFrame = 64;     // monitor code/data/stacks
inline constexpr FrameNum kMonitorFrames = 512;        // 2 MiB

inline constexpr FrameNum kKernelTextFirstFrame = 640;
inline constexpr FrameNum kKernelTextFrames = 256;     // 1 MiB of kernel text

inline constexpr FrameNum kSharedIoFirstFrame = 1024;  // device-visible (shared) window
inline constexpr FrameNum kSharedIoFrames = 256;       // 1 MiB

inline constexpr FrameNum kGeneralPoolFirstFrame = 1536;
// The general pool runs to the start of the CMA region; the CMA (confined-memory)
// region occupies the top fraction of RAM and is sized at boot.

// Fraction of total frames reserved for the sandbox confined-memory CMA region.
inline constexpr int kCmaFractionPercent = 40;

// ---- Virtual layout ----
inline constexpr Vaddr kUserBase = 0x0000000000400000ULL;
inline constexpr Vaddr kUserTop = 0x00007FFFFFFFFFFFULL;
inline constexpr Vaddr kDirectMapBase = 0xFFFF888000000000ULL;  // va = base + pa
inline constexpr Vaddr kKernelTextBase = 0xFFFFFFFF81000000ULL;

inline constexpr Vaddr DirectMap(Paddr pa) { return kDirectMapBase + pa; }
inline constexpr Paddr DirectUnmap(Vaddr va) { return va - kDirectMapBase; }

// ---- PKS protection-key assignment (paper section 5.2) ----
inline constexpr uint8_t kDefaultKey = 0;      // ordinary kernel/user data
inline constexpr uint8_t kMonitorKey = 1;      // monitor code/data/stacks: AD for kernel
inline constexpr uint8_t kPtpKey = 2;          // page-table pages: WD for kernel
inline constexpr uint8_t kKernelTextKey = 3;   // kernel code: WD always (W^X)
inline constexpr uint8_t kShadowStackKey = 4;  // CET shadow stacks

}  // namespace layout
}  // namespace erebor

#endif  // EREBOR_SRC_KERNEL_LAYOUT_H_
