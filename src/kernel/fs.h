// A minimal in-kernel RAM filesystem plus per-process descriptor tables. File contents
// live in simulated physical frames so that read/write syscalls exercise the usercopy
// (stac/clac) path the monitor interposes.
#ifndef EREBOR_SRC_KERNEL_FS_H_
#define EREBOR_SRC_KERNEL_FS_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/bytes.h"

namespace erebor {

struct RamFile {
  Bytes data;
};

class RamFs {
 public:
  Status Create(const std::string& path, Bytes contents);
  bool Exists(const std::string& path) const { return files_.count(path) > 0; }
  StatusOr<RamFile*> Open(const std::string& path, bool create);
  Status Remove(const std::string& path);
  StatusOr<uint64_t> SizeOf(const std::string& path) const;
  std::vector<std::string> List() const;

  uint64_t total_bytes() const;

 private:
  std::map<std::string, std::unique_ptr<RamFile>> files_;
};

// Open-file description.
struct OpenFile {
  std::string path;
  RamFile* file = nullptr;
  uint64_t offset = 0;
  bool is_device = false;
  int device_id = 0;  // kernel device registry index
};

class FdTable {
 public:
  int Install(OpenFile file);
  StatusOr<OpenFile*> Get(int fd);
  Status Close(int fd);
  size_t open_count() const { return files_.size(); }

 private:
  std::map<int, OpenFile> files_;
  int next_fd_ = 3;  // 0..2 reserved for stdio
};

}  // namespace erebor

#endif  // EREBOR_SRC_KERNEL_FS_H_
