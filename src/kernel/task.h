// Kernel task (process/thread) model.
//
// User programs are modelled as step functions: each scheduler quantum invokes the
// program, which performs work, issues syscalls through the SyscallContext, and
// returns an outcome (yield / blocked / exited). Threads of one process share an
// address space and descriptor table.
#ifndef EREBOR_SRC_KERNEL_TASK_H_
#define EREBOR_SRC_KERNEL_TASK_H_

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "src/hw/cpu.h"
#include "src/kernel/addrspace.h"
#include "src/kernel/fs.h"

namespace erebor {

enum class TaskState : uint8_t { kRunnable, kBlocked, kExited };

enum class StepOutcome : uint8_t {
  kYield,    // quantum used; schedule me again
  kBlocked,  // waiting (futex/wait/net); kernel marks blocked
  kExited,   // program finished
};

class SyscallContext;
using ProgramFn = std::function<StepOutcome(SyscallContext&)>;
using SignalHandlerFn = std::function<void(int)>;

struct Task {
  int tid = 0;
  int pid = 0;
  std::string name;
  TaskState state = TaskState::kRunnable;
  Gprs saved_gprs;
  std::shared_ptr<AddressSpace> aspace;
  std::shared_ptr<FdTable> fds;
  ProgramFn program;

  // Sandbox membership (managed by the monitor).
  bool is_sandbox_member = false;
  int sandbox_id = -1;
  bool killed_by_monitor = false;
  std::string kill_reason;

  // Blocking state.
  Vaddr futex_wait_addr = 0;
  int waiting_for_pid = 0;

  int exit_code = 0;

  // Signals.
  std::map<int, SignalHandlerFn> signal_handlers;
  std::vector<int> pending_signals;

  // Statistics.
  uint64_t syscall_count = 0;
  uint64_t minor_faults = 0;
};

}  // namespace erebor

#endif  // EREBOR_SRC_KERNEL_TASK_H_
