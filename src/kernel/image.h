// Kernel binary image ("KELF"): a miniature ELF-like container with named sections,
// flags and load addresses, serialized to real bytes.
//
// The builder synthesizes a kernel text section from a function manifest. In the
// *native* build, functions that need privileged operations embed the genuine x86
// opcode bytes (kernel/isa.h). In the *instrumented* build (paper section 5.1), every
// sensitive instruction is replaced by a call to the EMC entry gate. The monitor's
// two-stage verified boot deserializes this image, byte-scans executable sections and
// refuses to load anything containing sensitive encodings.
#ifndef EREBOR_SRC_KERNEL_IMAGE_H_
#define EREBOR_SRC_KERNEL_IMAGE_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/hw/types.h"
#include "src/kernel/isa.h"

namespace erebor {

struct KernelSection {
  std::string name;
  bool executable = false;
  bool writable = false;
  Vaddr vaddr = 0;
  Bytes data;
};

struct KernelSymbol {
  std::string name;
  Vaddr vaddr = 0;
  uint32_t size = 0;
};

struct KernelImage {
  std::vector<KernelSection> sections;
  std::vector<KernelSymbol> symbols;

  Bytes Serialize() const;
  static StatusOr<KernelImage> Deserialize(const Bytes& raw);

  const KernelSection* FindSection(const std::string& name) const;
  uint64_t TotalLoadSize() const;
};

struct KernelBuildOptions {
  bool instrumented = true;       // replace sensitive ops with EMC calls
  uint64_t seed = 0x5EED;         // filler-byte stream seed
  int extra_functions = 48;       // plain functions beside the privileged ones
  // Test hooks: smuggle one sensitive op into the instrumented text at a misaligned
  // offset (models a malicious service provider shipping a trojaned kernel).
  bool smuggle_sensitive_op = false;
  SensitiveOp smuggled_op = SensitiveOp::kWrmsr;
};

// Builds the guest kernel image. Text base is layout::kKernelTextBase.
KernelImage BuildKernelImage(const KernelBuildOptions& options);

}  // namespace erebor

#endif  // EREBOR_SRC_KERNEL_IMAGE_H_
