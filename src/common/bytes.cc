#include "src/common/bytes.h"

namespace erebor {

std::string HexEncode(const uint8_t* data, size_t len) {
  static const char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(len * 2);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(kHex[data[i] >> 4]);
    out.push_back(kHex[data[i] & 0xF]);
  }
  return out;
}

bool ConstantTimeEqual(const uint8_t* a, const uint8_t* b, size_t len) {
  uint8_t diff = 0;
  for (size_t i = 0; i < len; ++i) {
    diff |= static_cast<uint8_t>(a[i] ^ b[i]);
  }
  return diff == 0;
}

void SecureZero(uint8_t* data, size_t len) {
  volatile uint8_t* p = data;
  for (size_t i = 0; i < len; ++i) {
    p[i] = 0;
  }
}

}  // namespace erebor
