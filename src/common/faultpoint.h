// Deterministic fault-point engine for chaos testing every trust boundary.
//
// Call sites at trust boundaries (tdcall entry/exit, EMC gate transitions, channel
// packet delivery, host preemption/DMA probes, frame-allocator exhaustion) register
// *named fault points*: a probe that asks the process-global injector whether a
// fault fires at this visit. Every decision is a pure function of the armed
// (seed, schedule) pair, the site name, and the site's per-process hit index — so a
// failing run replays bit-identically from its seed alone, with no engine-side
// shared RNG stream that could skew when sites are visited in a different order.
//
// The engine is zero-cost when disarmed: `FaultInjector::Armed()` is a single load
// of an inline static bool, and every probe site guards on it before doing any
// work. Benches assert in-process that simulated operation/cycle counts are
// bit-identical with the engine compiled in but inactive.
#ifndef EREBOR_SRC_COMMON_FAULTPOINT_H_
#define EREBOR_SRC_COMMON_FAULTPOINT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace erebor {

enum class FaultAction : uint8_t {
  kNone = 0,
  kFail,       // the operation returns an injected transient error
  kDrop,       // a packet/message silently disappears
  kDuplicate,  // a packet is delivered twice
  kReorder,    // a packet jumps ahead of earlier queued traffic
  kCorrupt,    // payload bytes flipped (or MSR state scrambled at gate sites)
  kTruncate,   // payload cut short
  kPreempt,    // host-injected preemption at the site
  kExhaust,    // a resource allocator reports exhaustion
};

const char* FaultActionName(FaultAction action);

struct FaultDecision {
  FaultAction action = FaultAction::kNone;
  uint64_t entropy = 0;  // deterministic per-firing word (corruption offset, size...)
  explicit operator bool() const { return action != FaultAction::kNone; }
};

// One schedule entry. `site` is an exact fault-point name or a trailing-'*' prefix
// pattern ("net.*"). With h the site's hit index (counted per site from arming), the
// rule fires when h >= first_hit, (h - first_hit) % period == 0, the deterministic
// per-mille dice pass, and the rule has fired fewer than max_fires times. The first
// matching rule in schedule order wins.
struct FaultRule {
  std::string site;
  FaultAction action = FaultAction::kFail;
  uint32_t per_mille = 1000;  // firing probability gate in 1/1000ths
  uint64_t first_hit = 0;
  uint64_t period = 1;
  uint64_t max_fires = ~0ull;
};

struct FaultSchedule {
  std::vector<FaultRule> rules;

  // Chaos-soak schedule: a deterministic function of `seed` alone, picking a handful
  // of rules over the standard trust-boundary sites with sparse periods so sessions
  // stay completable (retries converge) while every boundary gets exercised.
  static FaultSchedule Randomized(uint64_t seed);
};

// Journal entry: one fired fault. The journal (and its hash) is the replay-identity
// witness: same (seed, schedule) + same workload => identical journal.
struct FiredFault {
  std::string site;
  uint64_t hit = 0;
  FaultAction action = FaultAction::kNone;
};

class FaultInjector {
 public:
  static FaultInjector& Global();

  // The zero-cost guard: one relaxed load. Probe sites must check this before
  // calling At().
  static bool Armed() { return armed_.load(std::memory_order_relaxed); }

  // Arms the engine with a (seed, schedule) pair; resets hit counters and journal.
  void Arm(uint64_t seed, FaultSchedule schedule);
  void Disarm();

  // The probe: advances `site`'s hit counter and returns the (deterministic)
  // decision. Counts "faults.injected", emits a kFaultInject trace event, and
  // notifies the observer on every firing.
  //
  // Thread-safety: the whole probe is serialized under one mutex, which makes a
  // site's hit indices equal to its At()-call order even under real threads. The
  // decision for (site, hit) is a pure function, so the *set* of fired faults —
  // and the order-independent JournalHash() — depends only on each site's total
  // visit count, not on which thread drew which hit. A threaded run and its
  // single-thread replay with equal per-site visit counts hash identically.
  FaultDecision At(const char* site);

  // Convenience probe for sites with a single meaningful action.
  bool Fire(const char* site, FaultAction expected) {
    const FaultDecision decision = At(site);
    return decision.action == expected;
  }

  // Observer hook (the World chaos harness uses it to trigger invariant checks).
  using Observer = std::function<void(const FiredFault&)>;
  void SetObserver(Observer observer) { observer_ = std::move(observer); }

  uint64_t seed() const { return seed_; }
  const FaultSchedule& schedule() const { return schedule_; }
  uint64_t fired() const { return total_fired_; }
  const std::vector<FiredFault>& journal() const { return journal_; }
  // FNV-1a over (site, hit, action) triples, hashed in (site, hit, action) sorted
  // order so the hash witnesses the *set* of injected faults: journal append
  // order may differ between a threaded run and its single-thread replay, the
  // fired set may not.
  uint64_t JournalHash() const;
  // Per-site visit count so far (0 if never probed); a replay harness matches
  // these to certify that a journal-hash comparison is meaningful.
  uint64_t SiteHits(const std::string& site) const;

 private:
  FaultInjector() = default;

  static inline std::atomic<bool> armed_{false};

  // Serializes At() (and journal reads taken while probes may still be running).
  // Arm/Disarm flip armed_ only from quiesced single-threaded code.
  mutable std::mutex mu_;
  uint64_t seed_ = 0;
  FaultSchedule schedule_;
  std::map<std::string, uint64_t> hits_;  // per-site visit counters (under mu_)
  std::vector<uint64_t> rule_fires_;      // per-rule firing counts (max_fires cap)
  std::vector<FiredFault> journal_;
  uint64_t total_fired_ = 0;
  Observer observer_;
  uint64_t* injected_ = nullptr;  // cached "faults.injected" registry cell
};

// Recovery accounting: graceful-degradation paths (bounded retries, duplicate
// healing, gate re-entry) call this when they successfully absorb a fault.
// Increments "faults.recovered"; no-op cost beyond one cached pointer bump.
void NoteFaultRecovered();

}  // namespace erebor

#endif  // EREBOR_SRC_COMMON_FAULTPOINT_H_
