#include "src/common/status.h"

namespace erebor {

std::string_view ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "OK";
    case ErrorCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case ErrorCode::kPermissionDenied:
      return "PERMISSION_DENIED";
    case ErrorCode::kNotFound:
      return "NOT_FOUND";
    case ErrorCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case ErrorCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case ErrorCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case ErrorCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case ErrorCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case ErrorCode::kInternal:
      return "INTERNAL";
    case ErrorCode::kUnavailable:
      return "UNAVAILABLE";
    case ErrorCode::kAborted:
      return "ABORTED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out(ErrorCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

Status InvalidArgumentError(std::string message) {
  return Status(ErrorCode::kInvalidArgument, std::move(message));
}
Status PermissionDeniedError(std::string message) {
  return Status(ErrorCode::kPermissionDenied, std::move(message));
}
Status NotFoundError(std::string message) {
  return Status(ErrorCode::kNotFound, std::move(message));
}
Status AlreadyExistsError(std::string message) {
  return Status(ErrorCode::kAlreadyExists, std::move(message));
}
Status ResourceExhaustedError(std::string message) {
  return Status(ErrorCode::kResourceExhausted, std::move(message));
}
Status FailedPreconditionError(std::string message) {
  return Status(ErrorCode::kFailedPrecondition, std::move(message));
}
Status OutOfRangeError(std::string message) {
  return Status(ErrorCode::kOutOfRange, std::move(message));
}
Status UnimplementedError(std::string message) {
  return Status(ErrorCode::kUnimplemented, std::move(message));
}
Status InternalError(std::string message) {
  return Status(ErrorCode::kInternal, std::move(message));
}
Status UnavailableError(std::string message) {
  return Status(ErrorCode::kUnavailable, std::move(message));
}
Status AbortedError(std::string message) {
  return Status(ErrorCode::kAborted, std::move(message));
}

}  // namespace erebor
