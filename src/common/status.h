// Status / StatusOr error-handling primitives used throughout the Erebor simulation.
//
// The simulation models faults (page faults, #GP, #CP, ...) as error returns rather
// than C++ exceptions, so nearly every fallible API returns Status or StatusOr<T>.
#ifndef EREBOR_SRC_COMMON_STATUS_H_
#define EREBOR_SRC_COMMON_STATUS_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace erebor {

enum class ErrorCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kPermissionDenied,   // policy violation (monitor refused, PKS/SMAP/W^X denial, ...)
  kNotFound,
  kAlreadyExists,
  kResourceExhausted,  // out of frames / budget / descriptors
  kFailedPrecondition, // operation issued in the wrong state
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kUnavailable,
  kAborted,            // execution killed (e.g. sealed sandbox attempted an exit)
};

std::string_view ErrorCodeName(ErrorCode code);

// A lightweight status: a code plus a human-readable message. kOk carries no message.
class Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  Status(ErrorCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  ErrorCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status::Ok(); }

Status InvalidArgumentError(std::string message);
Status PermissionDeniedError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status ResourceExhaustedError(std::string message);
Status FailedPreconditionError(std::string message);
Status OutOfRangeError(std::string message);
Status UnimplementedError(std::string message);
Status InternalError(std::string message);
Status UnavailableError(std::string message);
Status AbortedError(std::string message);

std::ostream& operator<<(std::ostream& os, const Status& status);

// StatusOr<T>: either a value or a non-OK Status.
template <typename T>
class StatusOr {
 public:
  StatusOr(const T& value) : rep_(value) {}          // NOLINT(google-explicit-constructor)
  StatusOr(T&& value) : rep_(std::move(value)) {}    // NOLINT(google-explicit-constructor)
  StatusOr(Status status) : rep_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    if (std::get<Status>(rep_).ok()) {
      rep_ = InternalError("StatusOr constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) {
      return kOk;
    }
    return std::get<Status>(rep_);
  }

  T& value() & { return std::get<T>(rep_); }
  const T& value() const& { return std::get<T>(rep_); }
  T&& value() && { return std::get<T>(std::move(rep_)); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> rep_;
};

// Propagation helpers.
#define EREBOR_RETURN_IF_ERROR(expr)         \
  do {                                       \
    ::erebor::Status _st = (expr);           \
    if (!_st.ok()) {                         \
      return _st;                            \
    }                                        \
  } while (0)

#define EREBOR_CONCAT_INNER(a, b) a##b
#define EREBOR_CONCAT(a, b) EREBOR_CONCAT_INNER(a, b)

#define EREBOR_ASSIGN_OR_RETURN(lhs, expr)                        \
  auto EREBOR_CONCAT(_statusor_, __LINE__) = (expr);              \
  if (!EREBOR_CONCAT(_statusor_, __LINE__).ok()) {                \
    return EREBOR_CONCAT(_statusor_, __LINE__).status();          \
  }                                                               \
  lhs = std::move(EREBOR_CONCAT(_statusor_, __LINE__)).value()

}  // namespace erebor

#endif  // EREBOR_SRC_COMMON_STATUS_H_
