// Execution-engine seam: deterministic single-thread oracle vs real OS threads.
//
// The simulation has two execution engines with identical *simulated* semantics:
//
//   kDeterministic — every vCPU is driven from one host thread (the historical
//     engine). Contention is modeled by SimLock's cycle arithmetic, cross-CPU TLB
//     maintenance applies immediately, and every run is bit-for-bit replayable.
//     This mode is the oracle: fig8/fig9 cycle counts are defined by it.
//
//   kRealThreads — each vCPU is driven by its own OS thread (World::RunOnThreads).
//     SimLocks are backed by real mutexes (same names, same LockAudit rank
//     discipline), cross-CPU TLB shootdowns queue on the target CPU and drain at
//     gate boundaries, and shared counters use relaxed atomics. Wall-clock
//     ordering differs run to run; *charged cycles and counters may not* — the
//     engine only changes who executes, never what is charged. Simulated lock
//     contention charging is disabled under real threads (waits are real), so an
//     oracle comparison pairs a threaded run against a single-thread run with
//     contention simulation off.
//
// The process-global switch lives here so leaf modules (trace, metrics, tlb,
// sim_lock) can branch on it without depending on sim/. It is flipped only by
// World::RunOnThreads (via RealThreadsScope) around a parallel region; all
// setup/teardown stays single-threaded.
#ifndef EREBOR_SRC_COMMON_EXEC_H_
#define EREBOR_SRC_COMMON_EXEC_H_

#include <atomic>
#include <cstdint>

namespace erebor {

enum class ExecMode : uint8_t {
  kDeterministic,  // single host thread, SimLock cycle model (the oracle)
  kRealThreads,    // one OS thread per vCPU, real mutexes behind the lock plans
};

const char* ExecModeName(ExecMode mode);

class ExecutionEngine {
 public:
  // True while a real-thread parallel region is executing. The hot-path guard:
  // one relaxed atomic load.
  static bool real_threads() {
    return real_threads_.load(std::memory_order_relaxed);
  }

  // The vCPU index the calling thread drives, -1 for unbound threads (the main
  // driver outside RunOnThreads, test threads that never bound). Machine-level
  // broadcast helpers use it to tell "my own CPU" (apply directly) from a peer
  // (post to its invalidation queue).
  static int current_cpu() { return current_cpu_; }

  // RAII for the parallel region: flips real_threads() on for its lifetime.
  // Not nestable; constructed only from the single driver thread.
  class RealThreadsScope {
   public:
    RealThreadsScope() { real_threads_.store(true, std::memory_order_seq_cst); }
    ~RealThreadsScope() { real_threads_.store(false, std::memory_order_seq_cst); }
    RealThreadsScope(const RealThreadsScope&) = delete;
    RealThreadsScope& operator=(const RealThreadsScope&) = delete;
  };

  // RAII for a worker thread: binds the thread to the vCPU it drives.
  class CpuBinding {
   public:
    explicit CpuBinding(int cpu) : previous_(current_cpu_) { current_cpu_ = cpu; }
    ~CpuBinding() { current_cpu_ = previous_; }
    CpuBinding(const CpuBinding&) = delete;
    CpuBinding& operator=(const CpuBinding&) = delete;

   private:
    int previous_;
  };

 private:
  static inline std::atomic<bool> real_threads_{false};
  static inline thread_local int current_cpu_ = -1;
};

// Relaxed atomic bump of a plain uint64_t counter cell. Shared counters (metrics
// cells, MonitorCounters members, trace per-kind counts, TLB stats) keep their
// plain-uint64_t storage — so member pointers, external-counter registration and
// every existing reader keep working — and the *increment sites* go through here,
// which is atomic under real threads and compiles to the same add in practice.
inline void CounterAdd(uint64_t& cell, uint64_t delta = 1) {
  std::atomic_ref<uint64_t>(cell).fetch_add(delta, std::memory_order_relaxed);
}

// Matching relaxed read for counters that are read while worker threads may
// still be bumping them (cross-checks after a join may use plain reads).
inline uint64_t CounterLoad(const uint64_t& cell) {
  return std::atomic_ref<const uint64_t>(cell).load(std::memory_order_relaxed);
}

}  // namespace erebor

#endif  // EREBOR_SRC_COMMON_EXEC_H_
