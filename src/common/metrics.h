// Metrics registry: named monotonic counters plus log2-bucket cycle histograms.
//
// Counters come in two flavours:
//  - owned counters: the registry allocates the cell (Counter(name) hands back a
//    stable uint64_t* that callers may cache and bump directly on hot paths);
//  - external counters: an existing struct field (e.g. MonitorCounters::emc_total)
//    is registered by address, so legacy accessor APIs keep working while the
//    registry's Summary() sees the live value.
//
// Histograms bucket observations by floor(log2(value)) — 64 buckets cover the full
// uint64 range — which is the right resolution for cycle costs spanning decades
// (a cached CPUID at ~10^2 cycles vs. a tdcall at ~5*10^3).
#ifndef EREBOR_SRC_COMMON_METRICS_H_
#define EREBOR_SRC_COMMON_METRICS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace erebor {

// Fixed-size log2 histogram. Observe() is allocation-free and thread-safe
// (relaxed atomic bumps; min/max via CAS loops) so vCPU threads can observe
// concurrently. Readers are plain loads — aggregate views are taken at safe
// points after worker threads have joined.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  static int BucketIndex(uint64_t value);
  // Lower bound of bucket i (inclusive): 0 for bucket 0, else 2^i.
  static uint64_t BucketFloor(int index);

  void Observe(uint64_t value);

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  uint64_t bucket(int index) const {
    return (index < 0 || index >= kBuckets) ? 0 : buckets_[index];
  }

  void Reset();

  // Multi-line rendering: "  [2^10, 2^11)  count  ####" rows for non-empty buckets.
  std::string ToString() const;

 private:
  uint64_t buckets_[kBuckets] = {};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = ~0ULL;
  uint64_t max_ = 0;
};

// Fixed-width linear-bucket histogram with percentile export, for serving-tail
// latency SLOs (p50/p99/p999). The log2 Histogram above is the right shape for
// cycle costs spanning decades but its bucket floors are powers of two — far too
// coarse for "is p99 within 1.5x of baseline". Here every bucket is bucket_width
// units wide; values at or past num_buckets * bucket_width land in an overflow
// bucket whose percentile reports the observed max. Observe() is allocation-free
// and thread-safe (same relaxed-atomic discipline as Histogram); Percentile() is a
// plain-load reader meant for safe points after worker threads have joined.
class LatencyHistogram {
 public:
  LatencyHistogram(uint64_t bucket_width, uint32_t num_buckets);

  void Observe(uint64_t value);

  // Value at or below which a fraction p (in [0, 1]) of observations fall,
  // reported as the upper edge of the bucket holding that rank. 0 when empty.
  uint64_t Percentile(double p) const;

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  uint64_t bucket_width() const { return bucket_width_; }

  void Reset();

 private:
  uint64_t bucket_width_;
  std::vector<uint64_t> buckets_;  // last slot is the overflow bucket
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t max_ = 0;
};

class MetricsRegistry {
 public:
  // Process-wide registry for call sites with no natural owner (channel parsing,
  // kernel paths, tdx module). Per-instance registries (e.g. one per monitor) keep
  // multi-world tests isolated.
  static MetricsRegistry& Global();

  // Returns a stable pointer to the named owned counter, creating it at zero. The
  // pointer stays valid for the registry's lifetime (node-based map storage).
  // Map insertion is serialized by an internal mutex, so first-use creation from
  // concurrent vCPU threads is safe; the returned cell must be bumped with
  // CounterAdd (as Increment does) when real threads are running.
  uint64_t* Counter(const std::string& name);
  void Increment(const std::string& name, uint64_t delta = 1);

  // Registers an externally-owned cell under `name`. The registry reads it for
  // Summary() but never writes it; the caller guarantees the address outlives the
  // registration (or re-registers, which overwrites the previous address).
  void RegisterExternalCounter(const std::string& name, const uint64_t* cell);

  // Named histogram, created on first use; pointer is stable.
  Histogram* GetHistogram(const std::string& name);

  // Named fixed-bucket latency histogram, created on first use with the given
  // shape; pointer is stable. A later call with a different shape returns the
  // existing histogram unchanged (first creation wins).
  LatencyHistogram* GetLatencyHistogram(const std::string& name,
                                        uint64_t bucket_width,
                                        uint32_t num_buckets);

  // Current value of a counter (owned or external); 0 if unknown.
  uint64_t Value(const std::string& name) const;
  bool HasHistogram(const std::string& name) const {
    std::lock_guard<std::mutex> guard(mu_);
    return histograms_.count(name) != 0;
  }

  // Zeroes owned counters and histograms in place (cached pointers stay valid) and
  // drops external registrations (their owners manage their own lifetime/reset).
  void Reset();

  // Text dump: counters sorted by name, then non-empty histograms.
  std::string Summary() const;

 private:
  // Guards map *structure* only. Counter cells and histograms are bumped through
  // their stable addresses without the mutex (CounterAdd / Histogram::Observe).
  mutable std::mutex mu_;
  std::map<std::string, uint64_t> owned_;           // node-based: stable addresses
  std::map<std::string, const uint64_t*> external_;
  std::map<std::string, Histogram> histograms_;     // node-based: stable addresses
  std::map<std::string, LatencyHistogram> latency_histograms_;
};

}  // namespace erebor

#endif  // EREBOR_SRC_COMMON_METRICS_H_
