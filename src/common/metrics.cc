#include "src/common/metrics.h"

#include <algorithm>
#include <atomic>
#include <sstream>

#include "src/common/exec.h"

namespace erebor {

int Histogram::BucketIndex(uint64_t value) {
  if (value == 0) {
    return 0;
  }
  int index = 0;
  while (value >>= 1) {
    ++index;
  }
  return index;
}

uint64_t Histogram::BucketFloor(int index) {
  if (index <= 0) {
    return 0;
  }
  return 1ULL << index;
}

void Histogram::Observe(uint64_t value) {
  CounterAdd(buckets_[BucketIndex(value)]);
  CounterAdd(count_);
  CounterAdd(sum_, value);
  std::atomic_ref<uint64_t> min_ref(min_);
  uint64_t seen = min_ref.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_ref.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  std::atomic_ref<uint64_t> max_ref(max_);
  seen = max_ref.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_ref.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

void Histogram::Reset() {
  for (uint64_t& b : buckets_) {
    b = 0;
  }
  count_ = 0;
  sum_ = 0;
  min_ = ~0ULL;
  max_ = 0;
}

std::string Histogram::ToString() const {
  std::ostringstream out;
  out << "count=" << count_ << " mean=" << static_cast<uint64_t>(mean())
      << " min=" << min() << " max=" << max() << "\n";
  uint64_t largest = 0;
  for (uint64_t b : buckets_) {
    if (b > largest) {
      largest = b;
    }
  }
  for (int i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) {
      continue;
    }
    out << "    [" << BucketFloor(i) << ", "
        << (i + 1 < kBuckets ? std::to_string(BucketFloor(i + 1)) : "inf") << ")  "
        << buckets_[i] << "  ";
    const int bar = largest == 0 ? 0 : static_cast<int>(buckets_[i] * 40 / largest);
    for (int j = 0; j < bar; ++j) {
      out << '#';
    }
    out << "\n";
  }
  return out.str();
}

LatencyHistogram::LatencyHistogram(uint64_t bucket_width, uint32_t num_buckets)
    : bucket_width_(bucket_width == 0 ? 1 : bucket_width),
      buckets_(num_buckets == 0 ? 2 : num_buckets + 1, 0) {}

void LatencyHistogram::Observe(uint64_t value) {
  const size_t last = buckets_.size() - 1;  // overflow bucket
  const size_t index =
      std::min<size_t>(static_cast<size_t>(value / bucket_width_), last);
  CounterAdd(buckets_[index]);
  CounterAdd(count_);
  CounterAdd(sum_, value);
  std::atomic_ref<uint64_t> max_ref(max_);
  uint64_t seen = max_ref.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_ref.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

uint64_t LatencyHistogram::Percentile(double p) const {
  if (count_ == 0) {
    return 0;
  }
  p = std::min(std::max(p, 0.0), 1.0);
  // Rank of the target observation, 1-based, ceiling — p999 over 1000 samples is
  // the 999th, not the 1000th.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(p * static_cast<double>(count_) + 0.999999));
  uint64_t seen = 0;
  for (size_t i = 0; i + 1 < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      return (i + 1) * bucket_width_;  // upper edge of the holding bucket
    }
  }
  return max_;  // rank falls in the overflow bucket
}

void LatencyHistogram::Reset() {
  for (uint64_t& b : buckets_) {
    b = 0;
  }
  count_ = 0;
  sum_ = 0;
  max_ = 0;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

uint64_t* MetricsRegistry::Counter(const std::string& name) {
  std::lock_guard<std::mutex> guard(mu_);
  return &owned_[name];
}

void MetricsRegistry::Increment(const std::string& name, uint64_t delta) {
  CounterAdd(*Counter(name), delta);
}

void MetricsRegistry::RegisterExternalCounter(const std::string& name,
                                              const uint64_t* cell) {
  std::lock_guard<std::mutex> guard(mu_);
  external_[name] = cell;
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> guard(mu_);
  return &histograms_[name];
}

LatencyHistogram* MetricsRegistry::GetLatencyHistogram(const std::string& name,
                                                       uint64_t bucket_width,
                                                       uint32_t num_buckets) {
  std::lock_guard<std::mutex> guard(mu_);
  auto [it, inserted] = latency_histograms_.try_emplace(name, bucket_width,
                                                        num_buckets);
  (void)inserted;  // first creation wins; a different later shape is ignored
  return &it->second;
}

uint64_t MetricsRegistry::Value(const std::string& name) const {
  std::lock_guard<std::mutex> guard(mu_);
  auto owned = owned_.find(name);
  if (owned != owned_.end()) {
    return CounterLoad(owned->second);
  }
  auto ext = external_.find(name);
  if (ext != external_.end() && ext->second != nullptr) {
    return CounterLoad(*ext->second);
  }
  return 0;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> guard(mu_);
  for (auto& [name, value] : owned_) {
    value = 0;
  }
  for (auto& [name, histogram] : histograms_) {
    histogram.Reset();
  }
  for (auto& [name, histogram] : latency_histograms_) {
    histogram.Reset();
  }
  external_.clear();
}

std::string MetricsRegistry::Summary() const {
  std::lock_guard<std::mutex> guard(mu_);
  std::ostringstream out;
  out << "=== metrics ===\n";
  // Merge owned and external under one sorted view.
  std::map<std::string, uint64_t> merged;
  for (const auto& [name, value] : owned_) {
    merged[name] = value;
  }
  for (const auto& [name, cell] : external_) {
    if (cell != nullptr) {
      merged[name] = *cell;
    }
  }
  for (const auto& [name, value] : merged) {
    out << "  " << name;
    for (size_t i = name.size(); i < 32; ++i) {
      out << ' ';
    }
    out << value << "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    if (histogram.count() == 0) {
      continue;
    }
    out << "  " << name << ": " << histogram.ToString();
  }
  return out.str();
}

}  // namespace erebor
