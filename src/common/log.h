// Minimal leveled logger. The simulation is deterministic and single-threaded, so the
// logger is intentionally simple: a global level and an optional sink override.
#ifndef EREBOR_SRC_COMMON_LOG_H_
#define EREBOR_SRC_COMMON_LOG_H_

#include <sstream>
#include <string>

namespace erebor {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarning = 3,
  kError = 4,
  kNone = 5,
};

// Global minimum level; messages below it are discarded. Defaults to kWarning so tests
// and benches stay quiet unless a failure is being diagnosed.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace log_internal {

void Emit(LogLevel level, const char* file, int line, const std::string& message);

class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line) : level_(level), file_(file), line_(line) {}
  ~LogLine() { Emit(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace log_internal
}  // namespace erebor

#define EREBOR_LOG(level)                                             \
  if (::erebor::GetLogLevel() <= ::erebor::LogLevel::level)           \
  ::erebor::log_internal::LogLine(::erebor::LogLevel::level, __FILE__, __LINE__)

#define LOG_TRACE() EREBOR_LOG(kTrace)
#define LOG_DEBUG() EREBOR_LOG(kDebug)
#define LOG_INFO() EREBOR_LOG(kInfo)
#define LOG_WARN() EREBOR_LOG(kWarning)
#define LOG_ERROR() EREBOR_LOG(kError)

#endif  // EREBOR_SRC_COMMON_LOG_H_
