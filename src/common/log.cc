#include "src/common/log.h"

#include <cstdio>

namespace erebor {

namespace {
LogLevel g_level = LogLevel::kWarning;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "T";
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kNone:
      return "?";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

namespace log_internal {

void Emit(LogLevel level, const char* file, int line, const std::string& message) {
  // Strip directories from the file for readability.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelTag(level), base, line, message.c_str());
}

}  // namespace log_internal
}  // namespace erebor
