#include "src/common/trace.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "src/common/exec.h"

namespace erebor {

const char* TraceEventName(TraceEvent event) {
  switch (event) {
    case TraceEvent::kNone: return "none";
    case TraceEvent::kEmcEnter: return "emc_enter";
    case TraceEvent::kEmcExit: return "emc_exit";
    case TraceEvent::kIntGateSave: return "int_gate_save";
    case TraceEvent::kIntGateRestore: return "int_gate_restore";
    case TraceEvent::kEmcPte: return "emc_pte";
    case TraceEvent::kEmcPteBatch: return "emc_pte_batch";
    case TraceEvent::kEmcPtpRegister: return "emc_ptp_register";
    case TraceEvent::kEmcCr: return "emc_cr";
    case TraceEvent::kEmcMsr: return "emc_msr";
    case TraceEvent::kEmcIdt: return "emc_idt";
    case TraceEvent::kEmcUserCopy: return "emc_usercopy";
    case TraceEvent::kEmcTdcall: return "emc_tdcall";
    case TraceEvent::kEmcTextPoke: return "emc_text_poke";
    case TraceEvent::kEmcSandboxOp: return "emc_sandbox_op";
    case TraceEvent::kEmcChannelOp: return "emc_channel_op";
    case TraceEvent::kEmcRingDoorbell: return "emc_ring_doorbell";
    case TraceEvent::kPolicyDenial: return "policy_denial";
    case TraceEvent::kTdxVmcall: return "tdx_vmcall";
    case TraceEvent::kTdxReport: return "tdx_report";
    case TraceEvent::kTdxRtmrExtend: return "tdx_rtmr_extend";
    case TraceEvent::kTdxMapGpa: return "tdx_map_gpa";
    case TraceEvent::kSyscallEnter: return "syscall_enter";
    case TraceEvent::kSyscallExit: return "syscall_exit";
    case TraceEvent::kInterrupt: return "interrupt";
    case TraceEvent::kPageFault: return "page_fault";
    case TraceEvent::kVeExit: return "ve_exit";
    case TraceEvent::kContextSwitch: return "context_switch";
    case TraceEvent::kChannelEncrypt: return "channel_encrypt";
    case TraceEvent::kChannelDecrypt: return "channel_decrypt";
    case TraceEvent::kTlbFlush: return "tlb_flush";
    case TraceEvent::kTlbInvlpg: return "tlb_invlpg";
    case TraceEvent::kTlbShootdown: return "tlb_shootdown";
    case TraceEvent::kFaultInject: return "fault_inject";
    case TraceEvent::kChannelRetry: return "channel_retry";
    case TraceEvent::kSandboxQuarantine: return "sandbox_quarantine";
    case TraceEvent::kLockContend: return "lock_contend";
    case TraceEvent::kPhaseMark: return "phase_mark";
    case TraceEvent::kCount: break;
  }
  return "unknown";
}

TraceRing::TraceRing(size_t capacity) : slots_(capacity == 0 ? 1 : capacity) {}

void TraceRing::Append(const TraceRecord& record) {
  if (ExecutionEngine::real_threads()) {
    std::lock_guard<std::mutex> guard(mu_);
    AppendLocked(record);
    return;
  }
  AppendLocked(record);
}

void TraceRing::AppendLocked(const TraceRecord& record) {
  slots_[head_] = record;
  head_ = (head_ + 1) % slots_.size();
  ++total_;
}

size_t TraceRing::size() const {
  return total_ < slots_.size() ? static_cast<size_t>(total_) : slots_.size();
}

uint64_t TraceRing::dropped() const { return total_ - size(); }

void TraceRing::ForEach(const std::function<void(const TraceRecord&)>& fn) const {
  const size_t n = size();
  // Oldest record sits at head_ once the ring has wrapped, at 0 before.
  const size_t start = total_ > slots_.size() ? head_ : 0;
  for (size_t i = 0; i < n; ++i) {
    fn(slots_[(start + i) % slots_.size()]);
  }
}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::Enable(size_t capacity_per_cpu) {
  enabled_ = true;
  capacity_per_cpu_ = capacity_per_cpu == 0 ? 1 : capacity_per_cpu;
  Reset();
}

bool Tracer::EnableFromEnv() {
  const char* flag = std::getenv("EREBOR_TRACE");
  if (flag != nullptr && flag[0] != '\0' && flag[0] != '0') {
    Enable();
  }
  const char* path = std::getenv("EREBOR_TRACE_JSON");
  if (path != nullptr && path[0] != '\0') {
    json_path_ = path;
    if (!enabled_) {
      Enable();  // a JSON destination implies tracing
    }
  }
  return enabled_;
}

void Tracer::Disable() { enabled_ = false; }

void Tracer::Reset() {
  std::lock_guard<std::mutex> guard(rings_mu_);
  rings_.clear();
  rings_.reserve(kMaxRingCpus);  // backing store never reallocates after this
  num_rings_.store(0, std::memory_order_release);
  std::fill(counts_.begin(), counts_.end(), 0);
  phases_.clear();
}

TraceRing* Tracer::RingFor(int cpu) {
  const size_t index = static_cast<size_t>(
      std::min(std::max(cpu, 0), kMaxRingCpus - 1));
  // Fast path: the ring is already published. The acquire pairs with the
  // release store below, making the pointed-to TraceRing visible.
  if (index < num_rings_.load(std::memory_order_acquire)) {
    return rings_[index].get();
  }
  std::lock_guard<std::mutex> guard(rings_mu_);
  while (rings_.size() <= index) {
    rings_.push_back(std::make_unique<TraceRing>(capacity_per_cpu_));
  }
  num_rings_.store(rings_.size(), std::memory_order_release);
  return rings_[index].get();
}

void Tracer::RecordSlow(TraceEvent kind, int cpu, Cycles timestamp, int32_t sandbox_id,
                        uint64_t payload) {
  if (cpu < 0) {
    cpu = 0;
  }
  TraceRecord record;
  record.timestamp = timestamp;
  record.payload = payload;
  record.kind = kind;
  record.cpu = static_cast<uint16_t>(cpu);
  record.sandbox_id = sandbox_id;
  RingFor(cpu)->Append(record);
  CounterAdd(counts_[static_cast<size_t>(kind)]);
}

void Tracer::MarkPhase(const std::string& name, Cycles timestamp) {
  if (!enabled_) {
    return;
  }
  // Phase marks come from the single-threaded driver between parallel regions;
  // the snapshot still reads through CounterLoad in case stragglers are closing.
  RecordSlow(TraceEvent::kPhaseMark, 0, timestamp, -1, phases_.size());
  PhaseMark mark;
  mark.name = name;
  mark.counts_at_mark.resize(counts_.size());
  for (size_t i = 0; i < counts_.size(); ++i) {
    mark.counts_at_mark[i] = CounterLoad(counts_[i]);
  }
  phases_.push_back(std::move(mark));
}

uint64_t Tracer::CountKind(TraceEvent kind) const {
  return CounterLoad(counts_[static_cast<size_t>(kind)]);
}

uint64_t Tracer::TotalEvents() const {
  uint64_t total = 0;
  for (const uint64_t& c : counts_) {
    total += CounterLoad(c);
  }
  return total;
}

const TraceRing* Tracer::ring(int cpu) const {
  if (cpu < 0 ||
      static_cast<size_t>(cpu) >= num_rings_.load(std::memory_order_acquire)) {
    return nullptr;
  }
  return rings_[cpu].get();
}

namespace {

// Chrome trace_event phase for a record: paired begin/end for the spans the UI
// should nest (EMC gate sections, syscalls), instant for everything else.
char ChromePhase(TraceEvent kind) {
  switch (kind) {
    case TraceEvent::kEmcEnter:
    case TraceEvent::kSyscallEnter:
      return 'B';
    case TraceEvent::kEmcExit:
    case TraceEvent::kSyscallExit:
      return 'E';
    default:
      return 'i';
  }
}

const char* ChromeName(TraceEvent kind) {
  switch (kind) {
    case TraceEvent::kEmcEnter:
    case TraceEvent::kEmcExit:
      return "emc_gate";
    case TraceEvent::kSyscallEnter:
    case TraceEvent::kSyscallExit:
      return "syscall";
    default:
      return TraceEventName(kind);
  }
}

}  // namespace

std::vector<TraceRecord> Tracer::MergedRecords() const {
  std::vector<TraceRecord> merged;
  const size_t n = num_rings_.load(std::memory_order_acquire);
  for (size_t i = 0; i < n; ++i) {
    if (rings_[i] == nullptr) {
      continue;
    }
    rings_[i]->ForEach([&](const TraceRecord& r) { merged.push_back(r); });
  }
  // Stable sort by (timestamp, cpu): each ring is already per-CPU chronological,
  // so ties within one CPU keep their recording order, and the merged stream is
  // the same no matter how host threads interleaved.
  std::stable_sort(merged.begin(), merged.end(),
                   [](const TraceRecord& a, const TraceRecord& b) {
                     if (a.timestamp != b.timestamp) {
                       return a.timestamp < b.timestamp;
                     }
                     return a.cpu < b.cpu;
                   });
  return merged;
}

std::string Tracer::ChromeTraceJson() const {
  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  for (const TraceRecord& r : MergedRecords()) {
    if (!first) {
      out << ",";
    }
    first = false;
    const char phase = ChromePhase(r.kind);
    out << "{\"name\":\"" << ChromeName(r.kind) << "\",\"ph\":\"" << phase
        << "\",\"ts\":" << r.timestamp << ",\"pid\":" << r.sandbox_id
        << ",\"tid\":" << r.cpu;
    if (phase == 'i') {
      out << ",\"s\":\"t\"";
    }
    out << ",\"args\":{\"payload\":" << r.payload << "}}";
  }
  out << "]}";
  return out.str();
}

Status Tracer::WriteChromeTrace(const std::string& path) const {
  std::ofstream file(path, std::ios::out | std::ios::trunc);
  if (!file) {
    return InternalError("cannot open trace output: " + path);
  }
  file << ChromeTraceJson();
  if (!file) {
    return InternalError("short write to trace output: " + path);
  }
  return OkStatus();
}

std::string Tracer::SummaryTable() const {
  std::ostringstream out;
  out << "=== trace summary ===\n";
  uint64_t retained = 0;
  uint64_t dropped = 0;
  const size_t n = num_rings_.load(std::memory_order_acquire);
  for (size_t i = 0; i < n; ++i) {
    retained += rings_[i]->size();
    dropped += rings_[i]->dropped();
  }
  out << "cpus traced: " << n << "   events: " << TotalEvents()
      << "   retained: " << retained << "   dropped: " << dropped << "\n";

  // Header: one delta column per phase plus the total.
  out << "  event";
  const std::string pad(18 - 7, ' ');
  out << pad;
  for (const auto& phase : phases_) {
    out << "  " << phase.name;
    for (size_t i = phase.name.size(); i < 10; ++i) {
      out << ' ';
    }
  }
  out << "  total\n";

  for (size_t k = 1; k < static_cast<size_t>(TraceEvent::kCount); ++k) {
    const TraceEvent kind = static_cast<TraceEvent>(k);
    const uint64_t kind_total = CounterLoad(counts_[k]);
    if (kind_total == 0) {
      continue;
    }
    std::string name = TraceEventName(kind);
    out << "  " << name;
    for (size_t i = name.size(); i < 16; ++i) {
      out << ' ';
    }
    // A phase mark snapshots counts *at its start*; the column for phase i is the
    // delta between mark i+1 (or now) and mark i.
    for (size_t p = 0; p < phases_.size(); ++p) {
      const uint64_t at_start = phases_[p].counts_at_mark[k];
      const uint64_t at_end =
          p + 1 < phases_.size() ? phases_[p + 1].counts_at_mark[k] : kind_total;
      std::string cell = std::to_string(at_end - at_start);
      out << "  " << cell;
      for (size_t i = cell.size(); i < 10; ++i) {
        out << ' ';
      }
    }
    out << "  " << kind_total << "\n";
  }
  return out.str();
}

}  // namespace erebor
