#include "src/common/trace.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace erebor {

const char* TraceEventName(TraceEvent event) {
  switch (event) {
    case TraceEvent::kNone: return "none";
    case TraceEvent::kEmcEnter: return "emc_enter";
    case TraceEvent::kEmcExit: return "emc_exit";
    case TraceEvent::kIntGateSave: return "int_gate_save";
    case TraceEvent::kIntGateRestore: return "int_gate_restore";
    case TraceEvent::kEmcPte: return "emc_pte";
    case TraceEvent::kEmcPteBatch: return "emc_pte_batch";
    case TraceEvent::kEmcPtpRegister: return "emc_ptp_register";
    case TraceEvent::kEmcCr: return "emc_cr";
    case TraceEvent::kEmcMsr: return "emc_msr";
    case TraceEvent::kEmcIdt: return "emc_idt";
    case TraceEvent::kEmcUserCopy: return "emc_usercopy";
    case TraceEvent::kEmcTdcall: return "emc_tdcall";
    case TraceEvent::kEmcTextPoke: return "emc_text_poke";
    case TraceEvent::kEmcSandboxOp: return "emc_sandbox_op";
    case TraceEvent::kEmcChannelOp: return "emc_channel_op";
    case TraceEvent::kPolicyDenial: return "policy_denial";
    case TraceEvent::kTdxVmcall: return "tdx_vmcall";
    case TraceEvent::kTdxReport: return "tdx_report";
    case TraceEvent::kTdxRtmrExtend: return "tdx_rtmr_extend";
    case TraceEvent::kTdxMapGpa: return "tdx_map_gpa";
    case TraceEvent::kSyscallEnter: return "syscall_enter";
    case TraceEvent::kSyscallExit: return "syscall_exit";
    case TraceEvent::kInterrupt: return "interrupt";
    case TraceEvent::kPageFault: return "page_fault";
    case TraceEvent::kVeExit: return "ve_exit";
    case TraceEvent::kContextSwitch: return "context_switch";
    case TraceEvent::kChannelEncrypt: return "channel_encrypt";
    case TraceEvent::kChannelDecrypt: return "channel_decrypt";
    case TraceEvent::kTlbFlush: return "tlb_flush";
    case TraceEvent::kTlbInvlpg: return "tlb_invlpg";
    case TraceEvent::kTlbShootdown: return "tlb_shootdown";
    case TraceEvent::kFaultInject: return "fault_inject";
    case TraceEvent::kChannelRetry: return "channel_retry";
    case TraceEvent::kSandboxQuarantine: return "sandbox_quarantine";
    case TraceEvent::kLockContend: return "lock_contend";
    case TraceEvent::kPhaseMark: return "phase_mark";
    case TraceEvent::kCount: break;
  }
  return "unknown";
}

TraceRing::TraceRing(size_t capacity) : slots_(capacity == 0 ? 1 : capacity) {}

void TraceRing::Append(const TraceRecord& record) {
  slots_[head_] = record;
  head_ = (head_ + 1) % slots_.size();
  ++total_;
}

size_t TraceRing::size() const {
  return total_ < slots_.size() ? static_cast<size_t>(total_) : slots_.size();
}

uint64_t TraceRing::dropped() const { return total_ - size(); }

void TraceRing::ForEach(const std::function<void(const TraceRecord&)>& fn) const {
  const size_t n = size();
  // Oldest record sits at head_ once the ring has wrapped, at 0 before.
  const size_t start = total_ > slots_.size() ? head_ : 0;
  for (size_t i = 0; i < n; ++i) {
    fn(slots_[(start + i) % slots_.size()]);
  }
}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::Enable(size_t capacity_per_cpu) {
  enabled_ = true;
  capacity_per_cpu_ = capacity_per_cpu == 0 ? 1 : capacity_per_cpu;
  Reset();
}

bool Tracer::EnableFromEnv() {
  const char* flag = std::getenv("EREBOR_TRACE");
  if (flag != nullptr && flag[0] != '\0' && flag[0] != '0') {
    Enable();
  }
  const char* path = std::getenv("EREBOR_TRACE_JSON");
  if (path != nullptr && path[0] != '\0') {
    json_path_ = path;
    if (!enabled_) {
      Enable();  // a JSON destination implies tracing
    }
  }
  return enabled_;
}

void Tracer::Disable() { enabled_ = false; }

void Tracer::Reset() {
  rings_.clear();
  std::fill(counts_.begin(), counts_.end(), 0);
  phases_.clear();
}

void Tracer::RecordSlow(TraceEvent kind, int cpu, Cycles timestamp, int32_t sandbox_id,
                        uint64_t payload) {
  if (cpu < 0) {
    cpu = 0;
  }
  while (static_cast<size_t>(cpu) >= rings_.size()) {
    rings_.push_back(std::make_unique<TraceRing>(capacity_per_cpu_));
  }
  TraceRecord record;
  record.timestamp = timestamp;
  record.payload = payload;
  record.kind = kind;
  record.cpu = static_cast<uint16_t>(cpu);
  record.sandbox_id = sandbox_id;
  rings_[cpu]->Append(record);
  ++counts_[static_cast<size_t>(kind)];
}

void Tracer::MarkPhase(const std::string& name, Cycles timestamp) {
  if (!enabled_) {
    return;
  }
  RecordSlow(TraceEvent::kPhaseMark, 0, timestamp, -1, phases_.size());
  PhaseMark mark;
  mark.name = name;
  mark.counts_at_mark = counts_;
  phases_.push_back(std::move(mark));
}

uint64_t Tracer::CountKind(TraceEvent kind) const {
  return counts_[static_cast<size_t>(kind)];
}

uint64_t Tracer::TotalEvents() const {
  uint64_t total = 0;
  for (uint64_t c : counts_) {
    total += c;
  }
  return total;
}

const TraceRing* Tracer::ring(int cpu) const {
  if (cpu < 0 || static_cast<size_t>(cpu) >= rings_.size()) {
    return nullptr;
  }
  return rings_[cpu].get();
}

namespace {

// Chrome trace_event phase for a record: paired begin/end for the spans the UI
// should nest (EMC gate sections, syscalls), instant for everything else.
char ChromePhase(TraceEvent kind) {
  switch (kind) {
    case TraceEvent::kEmcEnter:
    case TraceEvent::kSyscallEnter:
      return 'B';
    case TraceEvent::kEmcExit:
    case TraceEvent::kSyscallExit:
      return 'E';
    default:
      return 'i';
  }
}

const char* ChromeName(TraceEvent kind) {
  switch (kind) {
    case TraceEvent::kEmcEnter:
    case TraceEvent::kEmcExit:
      return "emc_gate";
    case TraceEvent::kSyscallEnter:
    case TraceEvent::kSyscallExit:
      return "syscall";
    default:
      return TraceEventName(kind);
  }
}

}  // namespace

std::string Tracer::ChromeTraceJson() const {
  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  for (const auto& ring : rings_) {
    if (ring == nullptr) {
      continue;
    }
    ring->ForEach([&](const TraceRecord& r) {
      if (!first) {
        out << ",";
      }
      first = false;
      const char phase = ChromePhase(r.kind);
      out << "{\"name\":\"" << ChromeName(r.kind) << "\",\"ph\":\"" << phase
          << "\",\"ts\":" << r.timestamp << ",\"pid\":" << r.sandbox_id
          << ",\"tid\":" << r.cpu;
      if (phase == 'i') {
        out << ",\"s\":\"t\"";
      }
      out << ",\"args\":{\"payload\":" << r.payload << "}}";
    });
  }
  out << "]}";
  return out.str();
}

Status Tracer::WriteChromeTrace(const std::string& path) const {
  std::ofstream file(path, std::ios::out | std::ios::trunc);
  if (!file) {
    return InternalError("cannot open trace output: " + path);
  }
  file << ChromeTraceJson();
  if (!file) {
    return InternalError("short write to trace output: " + path);
  }
  return OkStatus();
}

std::string Tracer::SummaryTable() const {
  std::ostringstream out;
  out << "=== trace summary ===\n";
  uint64_t retained = 0;
  uint64_t dropped = 0;
  for (const auto& ring : rings_) {
    retained += ring->size();
    dropped += ring->dropped();
  }
  out << "cpus traced: " << rings_.size() << "   events: " << TotalEvents()
      << "   retained: " << retained << "   dropped: " << dropped << "\n";

  // Header: one delta column per phase plus the total.
  out << "  event";
  const std::string pad(18 - 7, ' ');
  out << pad;
  for (const auto& phase : phases_) {
    out << "  " << phase.name;
    for (size_t i = phase.name.size(); i < 10; ++i) {
      out << ' ';
    }
  }
  out << "  total\n";

  for (size_t k = 1; k < static_cast<size_t>(TraceEvent::kCount); ++k) {
    const TraceEvent kind = static_cast<TraceEvent>(k);
    if (counts_[k] == 0) {
      continue;
    }
    std::string name = TraceEventName(kind);
    out << "  " << name;
    for (size_t i = name.size(); i < 16; ++i) {
      out << ' ';
    }
    // A phase mark snapshots counts *at its start*; the column for phase i is the
    // delta between mark i+1 (or now) and mark i.
    for (size_t p = 0; p < phases_.size(); ++p) {
      const uint64_t at_start = phases_[p].counts_at_mark[k];
      const uint64_t at_end =
          p + 1 < phases_.size() ? phases_[p + 1].counts_at_mark[k] : counts_[k];
      std::string cell = std::to_string(at_end - at_start);
      out << "  " << cell;
      for (size_t i = cell.size(); i < 10; ++i) {
        out << ' ';
      }
    }
    out << "  " << counts_[k] << "\n";
  }
  return out.str();
}

}  // namespace erebor
