#include "src/common/faultpoint.h"

#include <algorithm>

#include "src/common/exec.h"
#include "src/common/metrics.h"
#include "src/common/rng.h"
#include "src/common/trace.h"

namespace erebor {

namespace {

uint64_t Fnv1a(const char* data, size_t len, uint64_t hash = 0xCBF29CE484222325ULL) {
  for (size_t i = 0; i < len; ++i) {
    hash ^= static_cast<uint8_t>(data[i]);
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

uint64_t Fnv1aWord(uint64_t word, uint64_t hash) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (word >> (8 * i)) & 0xFF;
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

bool SiteMatches(const std::string& pattern, const char* site, size_t site_len) {
  if (!pattern.empty() && pattern.back() == '*') {
    const size_t prefix = pattern.size() - 1;
    return site_len >= prefix && pattern.compare(0, prefix, site, prefix) == 0;
  }
  return pattern.compare(0, pattern.size(), site, site_len) == 0 &&
         pattern.size() == site_len;
}

}  // namespace

const char* FaultActionName(FaultAction action) {
  switch (action) {
    case FaultAction::kNone:
      return "none";
    case FaultAction::kFail:
      return "fail";
    case FaultAction::kDrop:
      return "drop";
    case FaultAction::kDuplicate:
      return "duplicate";
    case FaultAction::kReorder:
      return "reorder";
    case FaultAction::kCorrupt:
      return "corrupt";
    case FaultAction::kTruncate:
      return "truncate";
    case FaultAction::kPreempt:
      return "preempt";
    case FaultAction::kExhaust:
      return "exhaust";
  }
  return "?";
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::Arm(uint64_t seed, FaultSchedule schedule) {
  std::lock_guard<std::mutex> guard(mu_);
  seed_ = seed;
  schedule_ = std::move(schedule);
  hits_.clear();
  rule_fires_.assign(schedule_.rules.size(), 0);
  journal_.clear();
  total_fired_ = 0;
  injected_ = MetricsRegistry::Global().Counter("faults.injected");
  armed_.store(true, std::memory_order_seq_cst);
}

void FaultInjector::Disarm() {
  armed_.store(false, std::memory_order_seq_cst);
  std::lock_guard<std::mutex> guard(mu_);
  hits_.clear();
  rule_fires_.clear();
  journal_.clear();
  total_fired_ = 0;
  observer_ = nullptr;
}

FaultDecision FaultInjector::At(const char* site) {
  if (!Armed()) {
    return FaultDecision{};
  }
  std::lock_guard<std::mutex> guard(mu_);
  const size_t site_len = std::char_traits<char>::length(site);
  const uint64_t hit = hits_[std::string(site, site_len)]++;
  for (size_t i = 0; i < schedule_.rules.size(); ++i) {
    const FaultRule& rule = schedule_.rules[i];
    if (!SiteMatches(rule.site, site, site_len) || hit < rule.first_hit ||
        rule_fires_[i] >= rule.max_fires) {
      continue;
    }
    const uint64_t period = rule.period == 0 ? 1 : rule.period;
    if ((hit - rule.first_hit) % period != 0) {
      continue;
    }
    // The dice and entropy are a pure function of (seed, site, hit, rule index):
    // no injector-side stream is consumed, so an armed-but-never-firing engine and
    // a replayed run both see bit-identical decisions.
    SplitMix64 dice(seed_ ^ Fnv1a(site, site_len) ^
                    (0x9E3779B97F4A7C15ULL * (hit + 1)) ^ (i << 48));
    if (rule.per_mille < 1000 && dice.Next() % 1000 >= rule.per_mille) {
      continue;
    }
    ++rule_fires_[i];
    ++total_fired_;
    FiredFault fired{std::string(site, site_len), hit, rule.action};
    journal_.push_back(fired);
    if (injected_ != nullptr) {
      CounterAdd(*injected_);
    }
    // Fault firings are observability events, not simulated work: no cycle charge,
    // payload packs the action and a site fingerprint for Chrome-trace inspection.
    // The event lands on the probing thread's own vCPU ring (ring 0 from the
    // single-threaded driver, whose thread is unbound).
    Tracer::Global().Record(
        TraceEvent::kFaultInject, std::max(ExecutionEngine::current_cpu(), 0), 0,
        -1,
        (static_cast<uint64_t>(rule.action) << 56) | (Fnv1a(site, site_len) >> 16));
    if (observer_) {
      observer_(fired);
    }
    return FaultDecision{rule.action, dice.Next()};
  }
  return FaultDecision{};
}

uint64_t FaultInjector::JournalHash() const {
  std::lock_guard<std::mutex> guard(mu_);
  // Hash in sorted (site, hit, action) order: the journal is a *set* witness.
  // Threaded runs append entries in wall-clock order, which may legally differ
  // from the single-thread replay; the fired set may not.
  std::vector<const FiredFault*> sorted;
  sorted.reserve(journal_.size());
  for (const FiredFault& fired : journal_) {
    sorted.push_back(&fired);
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const FiredFault* a, const FiredFault* b) {
              if (a->site != b->site) return a->site < b->site;
              if (a->hit != b->hit) return a->hit < b->hit;
              return a->action < b->action;
            });
  uint64_t hash = 0xCBF29CE484222325ULL;
  for (const FiredFault* fired : sorted) {
    hash = Fnv1a(fired->site.data(), fired->site.size(), hash);
    hash = Fnv1aWord(fired->hit, hash);
    hash = Fnv1aWord(static_cast<uint64_t>(fired->action), hash);
  }
  return hash;
}

uint64_t FaultInjector::SiteHits(const std::string& site) const {
  std::lock_guard<std::mutex> guard(mu_);
  const auto it = hits_.find(site);
  return it == hits_.end() ? 0 : it->second;
}

FaultSchedule FaultSchedule::Randomized(uint64_t seed) {
  // The site/action pool covers every instrumented trust boundary. Periods are kept
  // sparse and channel-level corruption transient (max_fires-capped) so bounded
  // retries converge: the soak asserts recovery-or-quarantine, never a wedged run.
  struct PoolEntry {
    const char* site;
    FaultAction action;
    uint64_t min_period;
    uint64_t max_fires;
  };
  static const PoolEntry kPool[] = {
      {"net.to_guest", FaultAction::kDrop, 3, 6},
      {"net.to_guest", FaultAction::kDuplicate, 3, 6},
      {"net.to_guest", FaultAction::kReorder, 3, 6},
      {"net.to_guest", FaultAction::kCorrupt, 3, 4},
      {"net.to_guest", FaultAction::kTruncate, 3, 4},
      {"net.to_world", FaultAction::kDrop, 3, 6},
      {"net.to_world", FaultAction::kDuplicate, 3, 6},
      {"net.to_world", FaultAction::kCorrupt, 3, 4},
      {"net.to_world", FaultAction::kTruncate, 3, 4},
      {"channel.deliver", FaultAction::kDrop, 4, 4},
      {"gates.enter", FaultAction::kFail, 200, 8},
      {"gates.enter", FaultAction::kPreempt, 150, 8},
      {"gates.exit", FaultAction::kCorrupt, 150, 8},
      {"tdx.tdcall.entry", FaultAction::kFail, 40, 4},
      {"tdx.tdcall.exit", FaultAction::kCorrupt, 40, 4},
      {"frame_alloc.alloc", FaultAction::kExhaust, 50, 2},
      {"host.preempt", FaultAction::kPreempt, 30, 16},
      {"host.dma", FaultAction::kFail, 20, 32},
      {"sandbox.copy_in", FaultAction::kFail, 2, 2},
  };
  constexpr size_t kPoolSize = sizeof(kPool) / sizeof(kPool[0]);

  SplitMix64 mix(seed * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL);
  FaultSchedule schedule;
  const size_t num_rules = 2 + mix.Next() % 4;  // 2..5 rules
  for (size_t i = 0; i < num_rules; ++i) {
    const PoolEntry& entry = kPool[mix.Next() % kPoolSize];
    FaultRule rule;
    rule.site = entry.site;
    rule.action = entry.action;
    rule.per_mille = 1000;
    rule.first_hit = mix.Next() % 8;
    rule.period = entry.min_period + mix.Next() % (entry.min_period * 3);
    rule.max_fires = 1 + mix.Next() % entry.max_fires;
    schedule.rules.push_back(std::move(rule));
  }
  return schedule;
}

void NoteFaultRecovered() {
  static uint64_t* recovered = MetricsRegistry::Global().Counter("faults.recovered");
  CounterAdd(*recovered);
}

}  // namespace erebor
