#include "src/common/rng.h"

#include <cmath>

namespace erebor {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) {
    s = sm.Next();
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  // Multiply-shift rejection-free bounded draw (Lemire). Bias is negligible for
  // simulation purposes.
  return static_cast<uint64_t>((static_cast<__uint128_t>(Next()) * bound) >> 64);
}

double Rng::NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

uint64_t Rng::NextZipf(uint64_t n, double s) {
  // Inverse-CDF approximation for the Zipf distribution using the continuous
  // bounded-Pareto envelope; accurate enough for skewed access-pattern synthesis.
  if (n <= 1) {
    return 0;
  }
  const double u = NextDouble();
  if (s == 1.0) {
    const double h = std::log(static_cast<double>(n));
    return static_cast<uint64_t>(std::exp(u * h)) - 1;
  }
  const double exp = 1.0 - s;
  const double top = std::pow(static_cast<double>(n), exp);
  const double x = std::pow(u * (top - 1.0) + 1.0, 1.0 / exp);
  uint64_t rank = static_cast<uint64_t>(x) - 1;
  return rank >= n ? n - 1 : rank;
}

void Rng::Fill(uint8_t* data, size_t len) {
  size_t i = 0;
  while (i + 8 <= len) {
    const uint64_t v = Next();
    for (int b = 0; b < 8; ++b) {
      data[i + b] = static_cast<uint8_t>(v >> (8 * b));
    }
    i += 8;
  }
  if (i < len) {
    const uint64_t v = Next();
    for (int b = 0; i < len; ++i, ++b) {
      data[i] = static_cast<uint8_t>(v >> (8 * b));
    }
  }
}

EdgeList GeneratePowerLawGraph(uint32_t num_nodes, uint32_t num_edges, uint64_t seed) {
  EdgeList g;
  g.num_nodes = num_nodes;
  g.edges.reserve(num_edges);
  Rng rng(seed);
  for (uint32_t i = 0; i < num_edges; ++i) {
    // Source uniform, destination Zipf-skewed: a few hub nodes receive most edges,
    // like real social graphs (Twitch-gamers in the paper).
    const uint32_t src = static_cast<uint32_t>(rng.NextBelow(num_nodes));
    const uint32_t dst = static_cast<uint32_t>(rng.NextZipf(num_nodes, 0.9));
    g.edges.emplace_back(src, dst);
  }
  return g;
}

}  // namespace erebor
