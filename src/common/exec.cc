#include "src/common/exec.h"

namespace erebor {

const char* ExecModeName(ExecMode mode) {
  switch (mode) {
    case ExecMode::kDeterministic:
      return "deterministic";
    case ExecMode::kRealThreads:
      return "real-threads";
  }
  return "?";
}

}  // namespace erebor
