// Shared jittered-exponential-backoff policy: the one retry schedule used by every
// bounded-retry loop in the tree (LibOS EagainBackoff polls, remote-client
// retransmits, fleet-supervisor request retries).
//
// The wait ceiling doubles per attempt from base_wait up to max_wait. The realized
// wait is drawn uniformly from [ceiling - ceiling*jitter_pct/100, ceiling] with a
// deterministic per-(seed, attempt) hash: replays are bit-identical, while distinct
// seeds decorrelate — a fleet of clients that all time out together does not
// retransmit together, so synchronized retry storms cannot form. jitter_pct == 0
// reproduces the legacy fixed schedule exactly (min(base_wait << attempt, max_wait)),
// which keeps the workload cycle counts bit-identical for callers that do not opt in.
#ifndef EREBOR_SRC_COMMON_BACKOFF_H_
#define EREBOR_SRC_COMMON_BACKOFF_H_

#include <cstdint>

namespace erebor {

struct BackoffPolicy {
  uint64_t max_attempts = 10'000;
  uint64_t base_wait = 1'000;  // first wait ceiling, in the caller's time unit
  uint64_t max_wait = 64'000;  // exponential cap
  uint32_t jitter_pct = 0;     // 0 = legacy fixed schedule (bit-compatible)
};

// The wait for the given zero-based attempt. Pure: same (policy, seed, attempt)
// always yields the same wait.
uint64_t JitteredBackoffWait(const BackoffPolicy& policy, uint64_t seed,
                             uint64_t attempt);

// Value-type retry budget over a policy. Each NextWait() accounts one attempt and
// yields the wait to apply before the retry; false means the budget is exhausted
// and the caller must fail the operation instead of spinning forever.
class JitteredBackoff {
 public:
  JitteredBackoff() = default;
  JitteredBackoff(const BackoffPolicy& policy, uint64_t seed)
      : policy_(policy), seed_(seed) {}

  bool NextWait(uint64_t* wait_out);

  bool exhausted() const { return attempts_ >= policy_.max_attempts; }
  uint64_t attempts() const { return attempts_; }
  const BackoffPolicy& policy() const { return policy_; }
  void Reset() { attempts_ = 0; }

 private:
  BackoffPolicy policy_;
  uint64_t seed_ = 0;
  uint64_t attempts_ = 0;
};

}  // namespace erebor

#endif  // EREBOR_SRC_COMMON_BACKOFF_H_
