#include "src/common/backoff.h"

#include <algorithm>

#include "src/common/rng.h"

namespace erebor {

uint64_t JitteredBackoffWait(const BackoffPolicy& policy, uint64_t seed,
                             uint64_t attempt) {
  // Ceiling: base_wait << attempt, saturating at max_wait (also on shift overflow).
  uint64_t ceiling = policy.max_wait;
  if (attempt < 63) {
    const uint64_t shifted = policy.base_wait << attempt;
    const bool overflowed =
        policy.base_wait != 0 && (shifted >> attempt) != policy.base_wait;
    if (!overflowed) {
      ceiling = std::min(shifted, policy.max_wait);
    }
  }
  if (policy.jitter_pct == 0 || ceiling == 0) {
    return ceiling;
  }
  const uint64_t pct = std::min<uint32_t>(policy.jitter_pct, 100);
  const uint64_t spread = static_cast<uint64_t>(
      (static_cast<unsigned __int128>(ceiling) * pct) / 100);
  // One hash per (seed, attempt): stateless, so replay from any attempt index is
  // exact. The golden-ratio stride keeps adjacent attempts decorrelated.
  SplitMix64 hash(seed ^ ((attempt + 1) * 0x9E3779B97F4A7C15ULL));
  return ceiling - hash.Next() % (spread + 1);
}

bool JitteredBackoff::NextWait(uint64_t* wait_out) {
  if (attempts_ >= policy_.max_attempts) {
    return false;
  }
  *wait_out = JitteredBackoffWait(policy_, seed_, attempts_);
  ++attempts_;
  return true;
}

}  // namespace erebor
