// Cycle-accurate event tracing (observability subsystem).
//
// The paper's performance argument is rate x unit-cost arithmetic over discrete
// events — EMC gate crossings, tdcalls, interrupts, page faults. The tracer records
// those events as POD records in per-CPU fixed-capacity ring buffers so that bench
// tables can be cross-checked against *measured* event streams instead of modeled
// constants. Recording is observational only: it never charges simulated cycles, so
// enabling the tracer does not perturb any benchmark number. With tracing disabled
// the hot-path cost is a single branch.
//
// Enable programmatically (Tracer::Global().Enable()) or via the environment:
//   EREBOR_TRACE=1            enable tracing
//   EREBOR_TRACE_JSON=path    where exporters write the Chrome trace_event JSON
#ifndef EREBOR_SRC_COMMON_TRACE_H_
#define EREBOR_SRC_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace erebor {

using Cycles = uint64_t;  // mirrors src/hw/cycles.h (common/ cannot depend on hw/)

enum class TraceEvent : uint16_t {
  kNone = 0,
  // EMC gate crossings (src/monitor/gates.cc).
  kEmcEnter,
  kEmcExit,
  kIntGateSave,
  kIntGateRestore,
  // EMC dispatch (src/monitor/monitor.cc); payload = gated cycles for the op.
  kEmcPte,
  kEmcPteBatch,
  kEmcPtpRegister,
  kEmcCr,
  kEmcMsr,
  kEmcIdt,
  kEmcUserCopy,
  kEmcTdcall,
  kEmcTextPoke,
  kEmcSandboxOp,
  kEmcChannelOp,
  // MMU ring doorbell (src/monitor/emc_ring.cc): one per drained submission
  // window; payload = gated cycles for the doorbell itself (descriptors drained
  // from the ring trace their own per-family events as usual).
  kEmcRingDoorbell,
  kPolicyDenial,
  // TDX module (src/tdx/tdx_module.cc).
  kTdxVmcall,
  kTdxReport,
  kTdxRtmrExtend,
  kTdxMapGpa,
  // Kernel paths (src/kernel/kernel.cc).
  kSyscallEnter,
  kSyscallExit,
  kInterrupt,
  kPageFault,
  kVeExit,
  kContextSwitch,
  // Secure channel (src/monitor/channel.cc + monitor record paths).
  kChannelEncrypt,
  kChannelDecrypt,
  // Software-TLB maintenance (src/hw/tlb). Recorded at the invalidation *sites*
  // unconditionally — even with the TLB disabled — so per-phase trace summaries are
  // deterministic across EREBOR_TLB settings.
  kTlbFlush,
  kTlbInvlpg,
  kTlbShootdown,
  // Fault injection + graceful degradation (src/common/faultpoint.cc and the
  // monitor's quarantine/retry paths).
  kFaultInject,
  kChannelRetry,
  kSandboxQuarantine,
  // Simulated EMC locking (src/monitor/sim_lock.cc): recorded only when a lock
  // acquire actually waits (payload = cycles waited), so uncontended runs emit
  // nothing and stay bit-identical.
  kLockContend,
  kPhaseMark,
  kCount,  // sentinel
};

const char* TraceEventName(TraceEvent event);

// One trace record: POD, fixed size, no ownership.
struct TraceRecord {
  Cycles timestamp = 0;   // the recording vCPU's cycle counter
  uint64_t payload = 0;   // event-specific word (op cycles, syscall nr, fault VA, ...)
  TraceEvent kind = TraceEvent::kNone;
  uint16_t cpu = 0;
  int32_t sandbox_id = -1;  // -1: not sandbox-attributed
};

// Fixed-capacity ring: appends overwrite the oldest record once full. Storage is
// allocated once at construction; Append never allocates. Under the real-thread
// engine a ring is (almost always) appended only by the vCPU thread that owns it,
// but cross-CPU records exist (the fault injector logs on the probing thread), so
// Append serializes through a per-ring mutex when real threads are live — the
// deterministic engine takes the original lock-free path.
class TraceRing {
 public:
  explicit TraceRing(size_t capacity);

  void Append(const TraceRecord& record);
  size_t capacity() const { return slots_.size(); }
  size_t size() const;       // records currently retained
  uint64_t total() const { return total_; }  // records ever appended
  uint64_t dropped() const;  // records overwritten by wraparound

  // Visits retained records oldest-to-newest.
  void ForEach(const std::function<void(const TraceRecord&)>& fn) const;

 private:
  void AppendLocked(const TraceRecord& record);

  std::mutex mu_;  // taken only under ExecutionEngine::real_threads()
  std::vector<TraceRecord> slots_;
  size_t head_ = 0;  // next write position
  uint64_t total_ = 0;
};

// Process-global tracer with one ring per CPU. Recording from concurrent vCPU
// threads is safe: per-kind counts are relaxed-atomic bumps, ring growth is
// mutex-guarded with an atomically published ring count (the ring vector's
// backing store is pre-reserved, so peers index it without racing a realloc),
// and exports — taken at safe points after threads join — merge all rings into
// one deterministic stream ordered by (timestamp, cpu).
class Tracer {
 public:
  static constexpr size_t kDefaultCapacityPerCpu = 1 << 16;
  // Fixed upper bound on per-CPU rings, matching LockAudit::kMaxCpus; records
  // from higher CPU indices clamp onto the last ring.
  static constexpr int kMaxRingCpus = 64;

  static Tracer& Global();

  bool enabled() const { return enabled_; }
  void Enable(size_t capacity_per_cpu = kDefaultCapacityPerCpu);
  // Honors EREBOR_TRACE / EREBOR_TRACE_JSON; returns whether tracing is now enabled.
  bool EnableFromEnv();
  void Disable();
  // Drops all records, per-kind counts, and phase marks; keeps enablement.
  void Reset();

  const std::string& json_path() const { return json_path_; }
  void set_json_path(const std::string& path) { json_path_ = path; }

  // The hot-path entry: one branch when disabled, no cycle charging ever.
  void Record(TraceEvent kind, int cpu, Cycles timestamp, int32_t sandbox_id = -1,
              uint64_t payload = 0) {
    if (!enabled_) {
      return;
    }
    RecordSlow(kind, cpu, timestamp, sandbox_id, payload);
  }

  // Starts a named phase; the summary table breaks event counts down per phase.
  void MarkPhase(const std::string& name, Cycles timestamp = 0);

  // Running per-kind counts across all CPUs (monotonic while enabled; survive ring
  // wraparound, so they are exact even when old records were overwritten).
  uint64_t CountKind(TraceEvent kind) const;
  uint64_t TotalEvents() const;

  int num_rings() const {
    return static_cast<int>(num_rings_.load(std::memory_order_acquire));
  }
  const TraceRing* ring(int cpu) const;

  // ---- Exporters ----
  // All retained records across rings, merged deterministically: stable-sorted by
  // (timestamp, cpu), so two runs that recorded the same per-CPU streams export
  // the same sequence regardless of host-thread interleaving.
  std::vector<TraceRecord> MergedRecords() const;
  // Chrome trace_event JSON ("ts" is in simulated cycles, not microseconds; load via
  // chrome://tracing or Perfetto). EMC gates and syscalls export as B/E duration
  // pairs; everything else as instant events. Emits MergedRecords() order.
  std::string ChromeTraceJson() const;
  Status WriteChromeTrace(const std::string& path) const;
  // Plain-text per-phase count table.
  std::string SummaryTable() const;

 private:
  Tracer() = default;
  void RecordSlow(TraceEvent kind, int cpu, Cycles timestamp, int32_t sandbox_id,
                  uint64_t payload);

  struct PhaseMark {
    std::string name;
    std::vector<uint64_t> counts_at_mark;  // snapshot of counts_
  };

  TraceRing* RingFor(int cpu);

  bool enabled_ = false;
  size_t capacity_per_cpu_ = kDefaultCapacityPerCpu;
  std::string json_path_;
  // Ring growth: push_back under rings_mu_, then publish via num_rings_
  // (release); readers acquire-load the count before indexing. The vector is
  // reserved to kMaxRingCpus at Reset() so the backing store never reallocates
  // under a concurrent reader.
  std::mutex rings_mu_;
  std::vector<std::unique_ptr<TraceRing>> rings_;
  std::atomic<size_t> num_rings_{0};
  // Per-kind counts: fixed-size vector, relaxed-atomic bumps via CounterAdd.
  std::vector<uint64_t> counts_ = std::vector<uint64_t>(
      static_cast<size_t>(TraceEvent::kCount), 0);
  std::vector<PhaseMark> phases_;
};

}  // namespace erebor

#endif  // EREBOR_SRC_COMMON_TRACE_H_
