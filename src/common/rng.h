// Deterministic pseudo-random number generation for workload synthesis.
//
// The simulation must be reproducible run-to-run, so all randomness flows through
// explicitly-seeded SplitMix64/Xoshiro generators rather than std::random_device.
#ifndef EREBOR_SRC_COMMON_RNG_H_
#define EREBOR_SRC_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace erebor {

// SplitMix64: used for seeding and for simple streams.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

// xoshiro256** — the main workload generator.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  uint64_t Next();
  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound);
  // Uniform double in [0, 1).
  double NextDouble();
  // Zipf-distributed rank in [0, n) with exponent s (used for skewed DB queries).
  uint64_t NextZipf(uint64_t n, double s);
  // Fill a byte buffer.
  void Fill(uint8_t* data, size_t len);

 private:
  uint64_t s_[4];
};

// Generates a synthetic power-law graph (edge list) for the graph workload.
struct EdgeList {
  uint32_t num_nodes = 0;
  std::vector<std::pair<uint32_t, uint32_t>> edges;
};

EdgeList GeneratePowerLawGraph(uint32_t num_nodes, uint32_t num_edges, uint64_t seed);

}  // namespace erebor

#endif  // EREBOR_SRC_COMMON_RNG_H_
