// Small byte-buffer helpers shared across modules.
#ifndef EREBOR_SRC_COMMON_BYTES_H_
#define EREBOR_SRC_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace erebor {

using Bytes = std::vector<uint8_t>;

inline Bytes ToBytes(const std::string& s) { return Bytes(s.begin(), s.end()); }

inline std::string ToString(const Bytes& b) { return std::string(b.begin(), b.end()); }

std::string HexEncode(const uint8_t* data, size_t len);
inline std::string HexEncode(const Bytes& b) { return HexEncode(b.data(), b.size()); }

// Little-endian scalar store/load helpers.
inline void StoreLe64(uint8_t* p, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<uint8_t>(v >> (8 * i));
  }
}

inline uint64_t LoadLe64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

inline void StoreLe32(uint8_t* p, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    p[i] = static_cast<uint8_t>(v >> (8 * i));
  }
}

inline uint32_t LoadLe32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(p[i]) << (8 * i);
  }
  return v;
}

// Constant-time comparison (crypto paths must not early-exit on mismatch).
bool ConstantTimeEqual(const uint8_t* a, const uint8_t* b, size_t len);
inline bool ConstantTimeEqual(const Bytes& a, const Bytes& b) {
  return a.size() == b.size() && ConstantTimeEqual(a.data(), b.data(), a.size());
}

// Securely zero a buffer (not optimized away).
void SecureZero(uint8_t* data, size_t len);
inline void SecureZero(Bytes& b) { SecureZero(b.data(), b.size()); }

}  // namespace erebor

#endif  // EREBOR_SRC_COMMON_BYTES_H_
