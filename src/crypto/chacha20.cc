#include "src/crypto/chacha20.h"

#include <cstring>

#include "src/crypto/accel.h"

#if defined(__x86_64__) || defined(__i386__)
#define EREBOR_CHACHA_X86 1
#include <immintrin.h>
#endif

namespace erebor {

namespace {

inline uint32_t Rotl32(uint32_t x, int n) { return (x << n) | (x >> (32 - n)); }

inline void QuarterRound(uint32_t& a, uint32_t& b, uint32_t& c, uint32_t& d) {
  a += b;
  d = Rotl32(d ^ a, 16);
  c += d;
  b = Rotl32(b ^ c, 12);
  a += b;
  d = Rotl32(d ^ a, 8);
  c += d;
  b = Rotl32(b ^ c, 7);
}

void Block(const uint32_t state[16], uint8_t out[64]) {
  uint32_t x[16];
  for (int i = 0; i < 16; ++i) {
    x[i] = state[i];
  }
  for (int round = 0; round < 10; ++round) {
    QuarterRound(x[0], x[4], x[8], x[12]);
    QuarterRound(x[1], x[5], x[9], x[13]);
    QuarterRound(x[2], x[6], x[10], x[14]);
    QuarterRound(x[3], x[7], x[11], x[15]);
    QuarterRound(x[0], x[5], x[10], x[15]);
    QuarterRound(x[1], x[6], x[11], x[12]);
    QuarterRound(x[2], x[7], x[8], x[13]);
    QuarterRound(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) {
    const uint32_t v = x[i] + state[i];
    out[4 * i] = static_cast<uint8_t>(v);
    out[4 * i + 1] = static_cast<uint8_t>(v >> 8);
    out[4 * i + 2] = static_cast<uint8_t>(v >> 16);
    out[4 * i + 3] = static_cast<uint8_t>(v >> 24);
  }
}

void InitState(uint32_t state[16], const ChaChaKey& key, const ChaChaNonce& nonce,
               uint32_t counter) {
  state[0] = 0x61707865;
  state[1] = 0x3320646e;
  state[2] = 0x79622d32;
  state[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) {
    state[4 + i] = LoadLe32(key.data() + 4 * i);
  }
  state[12] = counter;
  for (int i = 0; i < 3; ++i) {
    state[13 + i] = LoadLe32(nonce.data() + 4 * i);
  }
}

// dst[i] = src[i] ^ mask[i] in 64-bit words; len must be a multiple of 8.
inline void XorWords(const uint8_t* src, const uint8_t* mask, uint8_t* dst, size_t len) {
  for (size_t i = 0; i < len; i += 8) {
    uint64_t v;
    uint64_t m;
    std::memcpy(&v, src + i, 8);
    std::memcpy(&m, mask + i, 8);
    v ^= m;
    std::memcpy(dst + i, &v, 8);
  }
}

// One round step applied across kLanes independent blocks; the lane loop is what
// the vectorizer turns into packed 32-bit ops (8 lanes -> one YMM op under AVX2).
#define EREBOR_CHACHA_QR(a, b, c, d)           \
  for (int l = 0; l < kLanes; ++l) {           \
    x[a][l] += x[b][l];                        \
    x[d][l] = Rotl32(x[d][l] ^ x[a][l], 16);   \
    x[c][l] += x[d][l];                        \
    x[b][l] = Rotl32(x[b][l] ^ x[c][l], 12);   \
    x[a][l] += x[b][l];                        \
    x[d][l] = Rotl32(x[d][l] ^ x[a][l], 8);    \
    x[c][l] += x[d][l];                        \
    x[b][l] = Rotl32(x[b][l] ^ x[c][l], 7);    \
  }

// Hashes kLanes consecutive blocks (counters state[12] .. state[12]+kLanes-1)
// into keystream[64 * kLanes]. always_inline so each wrapper below compiles it
// with its own target ISA.
template <int kLanes>
[[gnu::always_inline]] inline void HashLanes(const uint32_t state[16],
                                             uint8_t* keystream) {
  uint32_t x[16][kLanes];
  for (int i = 0; i < 16; ++i) {
    for (int l = 0; l < kLanes; ++l) {
      x[i][l] = state[i] + (i == 12 ? static_cast<uint32_t>(l) : 0);
    }
  }
  for (int round = 0; round < 10; ++round) {
    EREBOR_CHACHA_QR(0, 4, 8, 12)
    EREBOR_CHACHA_QR(1, 5, 9, 13)
    EREBOR_CHACHA_QR(2, 6, 10, 14)
    EREBOR_CHACHA_QR(3, 7, 11, 15)
    EREBOR_CHACHA_QR(0, 5, 10, 15)
    EREBOR_CHACHA_QR(1, 6, 11, 12)
    EREBOR_CHACHA_QR(2, 7, 8, 13)
    EREBOR_CHACHA_QR(3, 4, 9, 14)
  }
  for (int l = 0; l < kLanes; ++l) {
    for (int i = 0; i < 16; ++i) {
      const uint32_t v =
          x[i][l] + state[i] + (i == 12 ? static_cast<uint32_t>(l) : 0);
      StoreLe32(keystream + 64 * l + 4 * i, v);
    }
  }
}

#undef EREBOR_CHACHA_QR

// Consumes whole groups of kLanes blocks, advancing src/dst/remaining.
template <int kLanes>
[[gnu::always_inline]] inline void XorLanesRun(uint32_t state[16], const uint8_t*& src,
                                               uint8_t*& dst, size_t& remaining) {
  uint8_t keystream[64 * kLanes];
  while (remaining >= sizeof(keystream)) {
    HashLanes<kLanes>(state, keystream);
    state[12] += kLanes;
    XorWords(src, keystream, dst, sizeof(keystream));
    src += sizeof(keystream);
    dst += sizeof(keystream);
    remaining -= sizeof(keystream);
  }
}

#ifdef EREBOR_CHACHA_X86

// The 16- and 8-bit rotations are byte permutations, so they compile to a single
// vpshufb instead of two shifts and an or.
#define EREBOR_VQR(a, b, c, d)                                        \
  a = _mm256_add_epi32(a, b);                                         \
  d = _mm256_shuffle_epi8(_mm256_xor_si256(d, a), rot16);             \
  c = _mm256_add_epi32(c, d);                                         \
  b = _mm256_xor_si256(b, c);                                         \
  b = _mm256_or_si256(_mm256_slli_epi32(b, 12), _mm256_srli_epi32(b, 20)); \
  a = _mm256_add_epi32(a, b);                                         \
  d = _mm256_shuffle_epi8(_mm256_xor_si256(d, a), rot8);              \
  c = _mm256_add_epi32(c, d);                                         \
  b = _mm256_xor_si256(b, c);                                         \
  b = _mm256_or_si256(_mm256_slli_epi32(b, 7), _mm256_srli_epi32(b, 25));

// 8x8 transpose of 32-bit elements across rows r0..r7 (in place).
#define EREBOR_TRANSPOSE8(r0, r1, r2, r3, r4, r5, r6, r7)  \
  {                                                        \
    const __m256i t0 = _mm256_unpacklo_epi32(r0, r1);      \
    const __m256i t1 = _mm256_unpackhi_epi32(r0, r1);      \
    const __m256i t2 = _mm256_unpacklo_epi32(r2, r3);      \
    const __m256i t3 = _mm256_unpackhi_epi32(r2, r3);      \
    const __m256i t4 = _mm256_unpacklo_epi32(r4, r5);      \
    const __m256i t5 = _mm256_unpackhi_epi32(r4, r5);      \
    const __m256i t6 = _mm256_unpacklo_epi32(r6, r7);      \
    const __m256i t7 = _mm256_unpackhi_epi32(r6, r7);      \
    const __m256i u0 = _mm256_unpacklo_epi64(t0, t2);      \
    const __m256i u1 = _mm256_unpackhi_epi64(t0, t2);      \
    const __m256i u2 = _mm256_unpacklo_epi64(t1, t3);      \
    const __m256i u3 = _mm256_unpackhi_epi64(t1, t3);      \
    const __m256i u4 = _mm256_unpacklo_epi64(t4, t6);      \
    const __m256i u5 = _mm256_unpackhi_epi64(t4, t6);      \
    const __m256i u6 = _mm256_unpacklo_epi64(t5, t7);      \
    const __m256i u7 = _mm256_unpackhi_epi64(t5, t7);      \
    r0 = _mm256_permute2x128_si256(u0, u4, 0x20);          \
    r1 = _mm256_permute2x128_si256(u1, u5, 0x20);          \
    r2 = _mm256_permute2x128_si256(u2, u6, 0x20);          \
    r3 = _mm256_permute2x128_si256(u3, u7, 0x20);          \
    r4 = _mm256_permute2x128_si256(u0, u4, 0x31);          \
    r5 = _mm256_permute2x128_si256(u1, u5, 0x31);          \
    r6 = _mm256_permute2x128_si256(u2, u6, 0x31);          \
    r7 = _mm256_permute2x128_si256(u3, u7, 0x31);          \
  }

// Eight blocks per iteration: word i of vector v[i] lane l belongs to block l, so
// after the rounds two 8x8 transposes turn the registers back into contiguous
// 64-byte keystream blocks (words 0..7 from the first matrix, 8..15 from the
// second). x86 is little-endian, so the packed words already have wire order.
__attribute__((target("avx2")))
void XorRunAvx2(uint32_t state[16], const uint8_t*& src, uint8_t*& dst,
                size_t& remaining) {
  const __m256i rot16 =
      _mm256_set_epi8(13, 12, 15, 14, 9, 8, 11, 10, 5, 4, 7, 6, 1, 0, 3, 2, 13, 12,
                      15, 14, 9, 8, 11, 10, 5, 4, 7, 6, 1, 0, 3, 2);
  const __m256i rot8 =
      _mm256_set_epi8(14, 13, 12, 15, 10, 9, 8, 11, 6, 5, 4, 7, 2, 1, 0, 3, 14, 13,
                      12, 15, 10, 9, 8, 11, 6, 5, 4, 7, 2, 1, 0, 3);
  const __m256i lane_counters = _mm256_set_epi32(7, 6, 5, 4, 3, 2, 1, 0);
  while (remaining >= 512) {
    __m256i v[16];
    for (int i = 0; i < 16; ++i) {
      v[i] = _mm256_set1_epi32(static_cast<int>(state[i]));
    }
    v[12] = _mm256_add_epi32(v[12], lane_counters);
    const __m256i counters = v[12];
    for (int round = 0; round < 10; ++round) {
      EREBOR_VQR(v[0], v[4], v[8], v[12])
      EREBOR_VQR(v[1], v[5], v[9], v[13])
      EREBOR_VQR(v[2], v[6], v[10], v[14])
      EREBOR_VQR(v[3], v[7], v[11], v[15])
      EREBOR_VQR(v[0], v[5], v[10], v[15])
      EREBOR_VQR(v[1], v[6], v[11], v[12])
      EREBOR_VQR(v[2], v[7], v[8], v[13])
      EREBOR_VQR(v[3], v[4], v[9], v[14])
    }
    for (int i = 0; i < 16; ++i) {
      v[i] = _mm256_add_epi32(
          v[i], i == 12 ? counters : _mm256_set1_epi32(static_cast<int>(state[i])));
    }
    EREBOR_TRANSPOSE8(v[0], v[1], v[2], v[3], v[4], v[5], v[6], v[7])
    EREBOR_TRANSPOSE8(v[8], v[9], v[10], v[11], v[12], v[13], v[14], v[15])
    for (int l = 0; l < 8; ++l) {
      const __m256i lo = _mm256_xor_si256(
          v[l], _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + 64 * l)));
      const __m256i hi = _mm256_xor_si256(
          v[8 + l],
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + 64 * l + 32)));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + 64 * l), lo);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + 64 * l + 32), hi);
    }
    state[12] += 8;
    src += 512;
    dst += 512;
    remaining -= 512;
  }
}

#undef EREBOR_TRANSPOSE8
#undef EREBOR_VQR

#endif

void XorRunPortable(uint32_t state[16], const uint8_t*& src, uint8_t*& dst,
                    size_t& remaining) {
  XorLanesRun<4>(state, src, dst, remaining);
}

}  // namespace

void ChaCha20XorTo(const ChaChaKey& key, const ChaChaNonce& nonce, uint32_t counter,
                   const uint8_t* src, uint8_t* dst, size_t len) {
  uint32_t state[16];
  InitState(state, key, nonce, counter);
  size_t remaining = len;
#ifdef EREBOR_CHACHA_X86
  if (accel::Enabled() && accel::HasAvx2()) {
    XorRunAvx2(state, src, dst, remaining);
  }
#endif
  XorRunPortable(state, src, dst, remaining);

  uint8_t keystream[64];
  while (remaining >= 64) {
    HashLanes<1>(state, keystream);
    state[12]++;
    XorWords(src, keystream, dst, 64);
    src += 64;
    dst += 64;
    remaining -= 64;
  }
  if (remaining != 0) {
    HashLanes<1>(state, keystream);
    state[12]++;
    for (size_t i = 0; i < remaining; ++i) {
      dst[i] = static_cast<uint8_t>(src[i] ^ keystream[i]);
    }
  }
}

void ChaCha20Xor(const ChaChaKey& key, const ChaChaNonce& nonce, uint32_t counter,
                 uint8_t* data, size_t len) {
  ChaCha20XorTo(key, nonce, counter, data, data, len);
}

void ChaCha20XorScalar(const ChaChaKey& key, const ChaChaNonce& nonce, uint32_t counter,
                       uint8_t* data, size_t len) {
  uint32_t state[16];
  InitState(state, key, nonce, counter);

  uint8_t keystream[64];
  size_t offset = 0;
  while (offset < len) {
    Block(state, keystream);
    state[12]++;
    const size_t take = std::min<size_t>(64, len - offset);
    for (size_t i = 0; i < take; ++i) {
      data[offset + i] ^= keystream[i];
    }
    offset += take;
  }
}

}  // namespace erebor
