#include "src/crypto/chacha20.h"

namespace erebor {

namespace {

inline uint32_t Rotl32(uint32_t x, int n) { return (x << n) | (x >> (32 - n)); }

inline void QuarterRound(uint32_t& a, uint32_t& b, uint32_t& c, uint32_t& d) {
  a += b;
  d = Rotl32(d ^ a, 16);
  c += d;
  b = Rotl32(b ^ c, 12);
  a += b;
  d = Rotl32(d ^ a, 8);
  c += d;
  b = Rotl32(b ^ c, 7);
}

void Block(const uint32_t state[16], uint8_t out[64]) {
  uint32_t x[16];
  for (int i = 0; i < 16; ++i) {
    x[i] = state[i];
  }
  for (int round = 0; round < 10; ++round) {
    QuarterRound(x[0], x[4], x[8], x[12]);
    QuarterRound(x[1], x[5], x[9], x[13]);
    QuarterRound(x[2], x[6], x[10], x[14]);
    QuarterRound(x[3], x[7], x[11], x[15]);
    QuarterRound(x[0], x[5], x[10], x[15]);
    QuarterRound(x[1], x[6], x[11], x[12]);
    QuarterRound(x[2], x[7], x[8], x[13]);
    QuarterRound(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) {
    const uint32_t v = x[i] + state[i];
    out[4 * i] = static_cast<uint8_t>(v);
    out[4 * i + 1] = static_cast<uint8_t>(v >> 8);
    out[4 * i + 2] = static_cast<uint8_t>(v >> 16);
    out[4 * i + 3] = static_cast<uint8_t>(v >> 24);
  }
}

}  // namespace

void ChaCha20Xor(const ChaChaKey& key, const ChaChaNonce& nonce, uint32_t counter,
                 uint8_t* data, size_t len) {
  uint32_t state[16];
  state[0] = 0x61707865;
  state[1] = 0x3320646e;
  state[2] = 0x79622d32;
  state[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) {
    state[4 + i] = LoadLe32(key.data() + 4 * i);
  }
  state[12] = counter;
  for (int i = 0; i < 3; ++i) {
    state[13 + i] = LoadLe32(nonce.data() + 4 * i);
  }

  uint8_t keystream[64];
  size_t offset = 0;
  while (offset < len) {
    Block(state, keystream);
    state[12]++;
    const size_t take = std::min<size_t>(64, len - offset);
    for (size_t i = 0; i < take; ++i) {
      data[offset + i] ^= keystream[i];
    }
    offset += take;
  }
}

}  // namespace erebor
