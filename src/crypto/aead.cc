#include "src/crypto/aead.h"

#include <cstring>

namespace erebor {

namespace {

ChaChaNonce NonceFromSequence(uint64_t sequence) {
  ChaChaNonce nonce{};
  StoreLe64(nonce.data() + 4, sequence);
  return nonce;
}

AeadKeys KeysFromMaterial(const Bytes& material) {
  AeadKeys keys;
  std::memcpy(keys.cipher_key.data(), material.data(), 32);
  keys.mac_key.assign(material.begin() + 32, material.begin() + 64);
  return keys;
}

}  // namespace

Digest256 ComputeTag(const AeadKeys& keys, const RecordAad& aad, uint64_t sequence,
                     const uint8_t* ciphertext, size_t len) {
  HmacSha256 mac(keys.mac_key);
  // Header-as-AAD: the routing fields precede the sequence so the MAC covers the
  // exact bytes an attacker can rewrite on the wire.
  uint8_t header[1 + 4 + 8];
  header[0] = aad.type;
  StoreLe32(header + 1, static_cast<uint32_t>(aad.sandbox_id));
  StoreLe64(header + 5, sequence);
  mac.Update(header, sizeof(header));
  mac.Update(ciphertext, len);
  return mac.Finish();
}

SessionKeys DeriveSessionKeys(const Bytes& shared_secret, const Digest256& transcript_hash) {
  const Bytes salt(transcript_hash.begin(), transcript_hash.end());
  const Digest256 prk = HkdfExtract(salt, shared_secret);
  const Bytes c2s = HkdfExpand(prk, "erebor channel c2s", 64);
  const Bytes s2c = HkdfExpand(prk, "erebor channel s2c", 64);
  SessionKeys keys;
  keys.client_to_server = KeysFromMaterial(c2s);
  keys.server_to_client = KeysFromMaterial(s2c);
  return keys;
}

Digest256 AeadSealInto(const AeadKeys& keys, const RecordAad& aad, uint64_t sequence,
                       const uint8_t* plaintext, size_t len, uint8_t* out) {
  ChaCha20XorTo(keys.cipher_key, NonceFromSequence(sequence), 1, plaintext, out, len);
  return ComputeTag(keys, aad, sequence, out, len);
}

Status AeadOpenInto(const AeadKeys& keys, const RecordAad& aad, uint64_t sequence,
                    const uint8_t* ciphertext, size_t len, const Digest256& tag,
                    uint8_t* out) {
  const Digest256 expected_tag = ComputeTag(keys, aad, sequence, ciphertext, len);
  if (!ConstantTimeEqual(expected_tag.data(), tag.data(), expected_tag.size())) {
    return PermissionDeniedError("AEAD tag verification failed");
  }
  ChaCha20XorTo(keys.cipher_key, NonceFromSequence(sequence), 1, ciphertext, out, len);
  return OkStatus();
}

SealedRecord AeadSeal(const AeadKeys& keys, const RecordAad& aad, uint64_t sequence,
                      const Bytes& plaintext) {
  SealedRecord record;
  record.sequence = sequence;
  record.ciphertext.resize(plaintext.size());
  record.tag = AeadSealInto(keys, aad, sequence, plaintext.data(), plaintext.size(),
                            record.ciphertext.data());
  return record;
}

StatusOr<Bytes> AeadOpen(const AeadKeys& keys, const RecordAad& aad,
                         const SealedRecord& record, uint64_t expected_sequence) {
  if (record.sequence != expected_sequence) {
    return PermissionDeniedError("AEAD record sequence mismatch (replay or reorder)");
  }
  Bytes plaintext(record.ciphertext.size());
  EREBOR_RETURN_IF_ERROR(AeadOpenInto(keys, aad, record.sequence,
                                      record.ciphertext.data(), record.ciphertext.size(),
                                      record.tag, plaintext.data()));
  return plaintext;
}

}  // namespace erebor
