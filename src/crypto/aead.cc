#include "src/crypto/aead.h"

#include <cstring>

namespace erebor {

namespace {

ChaChaNonce NonceFromSequence(uint64_t sequence) {
  ChaChaNonce nonce{};
  StoreLe64(nonce.data() + 4, sequence);
  return nonce;
}

Digest256 ComputeTag(const AeadKeys& keys, uint64_t sequence, const Bytes& ciphertext) {
  HmacSha256 mac(keys.mac_key);
  uint8_t seq_bytes[8];
  StoreLe64(seq_bytes, sequence);
  mac.Update(seq_bytes, sizeof(seq_bytes));
  mac.Update(ciphertext);
  return mac.Finish();
}

AeadKeys KeysFromMaterial(const Bytes& material) {
  AeadKeys keys;
  std::memcpy(keys.cipher_key.data(), material.data(), 32);
  keys.mac_key.assign(material.begin() + 32, material.begin() + 64);
  return keys;
}

}  // namespace

SessionKeys DeriveSessionKeys(const Bytes& shared_secret, const Digest256& transcript_hash) {
  const Bytes salt(transcript_hash.begin(), transcript_hash.end());
  const Digest256 prk = HkdfExtract(salt, shared_secret);
  const Bytes c2s = HkdfExpand(prk, "erebor channel c2s", 64);
  const Bytes s2c = HkdfExpand(prk, "erebor channel s2c", 64);
  SessionKeys keys;
  keys.client_to_server = KeysFromMaterial(c2s);
  keys.server_to_client = KeysFromMaterial(s2c);
  return keys;
}

SealedRecord AeadSeal(const AeadKeys& keys, uint64_t sequence, const Bytes& plaintext) {
  SealedRecord record;
  record.sequence = sequence;
  record.ciphertext = plaintext;
  ChaCha20Xor(keys.cipher_key, NonceFromSequence(sequence), 1, record.ciphertext.data(),
              record.ciphertext.size());
  record.tag = ComputeTag(keys, sequence, record.ciphertext);
  return record;
}

StatusOr<Bytes> AeadOpen(const AeadKeys& keys, const SealedRecord& record,
                         uint64_t expected_sequence) {
  if (record.sequence != expected_sequence) {
    return PermissionDeniedError("AEAD record sequence mismatch (replay or reorder)");
  }
  const Digest256 expected_tag = ComputeTag(keys, record.sequence, record.ciphertext);
  if (!ConstantTimeEqual(expected_tag.data(), record.tag.data(), expected_tag.size())) {
    return PermissionDeniedError("AEAD tag verification failed");
  }
  Bytes plaintext = record.ciphertext;
  ChaCha20Xor(keys.cipher_key, NonceFromSequence(record.sequence), 1, plaintext.data(),
              plaintext.size());
  return plaintext;
}

}  // namespace erebor
