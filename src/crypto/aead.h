// Authenticated encryption: ChaCha20 + HMAC-SHA256 encrypt-then-MAC with a sequence
// number in the associated data (anti-replay). This is the record layer of the
// monitor<->client secure channel (paper section 6.3).
#ifndef EREBOR_SRC_CRYPTO_AEAD_H_
#define EREBOR_SRC_CRYPTO_AEAD_H_

#include "src/common/status.h"
#include "src/crypto/chacha20.h"
#include "src/crypto/hmac.h"

namespace erebor {

struct AeadKeys {
  ChaChaKey cipher_key{};
  Bytes mac_key;  // 32 bytes
};

// Derives directional AEAD keys from a DH shared secret and a transcript hash.
struct SessionKeys {
  AeadKeys client_to_server;
  AeadKeys server_to_client;
};

SessionKeys DeriveSessionKeys(const Bytes& shared_secret, const Digest256& transcript_hash);

// Sealed record: nonce (derived from seq), ciphertext, 32-byte tag.
struct SealedRecord {
  uint64_t sequence = 0;
  Bytes ciphertext;
  Digest256 tag{};
};

SealedRecord AeadSeal(const AeadKeys& keys, uint64_t sequence, const Bytes& plaintext);

// Fails (kPermissionDenied) on tag mismatch or sequence tampering.
StatusOr<Bytes> AeadOpen(const AeadKeys& keys, const SealedRecord& record,
                         uint64_t expected_sequence);

}  // namespace erebor

#endif  // EREBOR_SRC_CRYPTO_AEAD_H_
