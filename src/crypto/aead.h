// Authenticated encryption: ChaCha20 + HMAC-SHA256 encrypt-then-MAC with the
// record header (type, sandbox id) and sequence number as associated data. This
// is the record layer of the monitor<->client secure channel (paper section 6.3):
// the header bytes an attacker can rewrite on the wire are exactly the bytes the
// MAC covers, so relabeled or re-routed records fail authentication.
#ifndef EREBOR_SRC_CRYPTO_AEAD_H_
#define EREBOR_SRC_CRYPTO_AEAD_H_

#include "src/common/status.h"
#include "src/crypto/chacha20.h"
#include "src/crypto/hmac.h"

namespace erebor {

struct AeadKeys {
  ChaChaKey cipher_key{};
  Bytes mac_key;  // 32 bytes
};

// Derives directional AEAD keys from a DH shared secret and a transcript hash.
struct SessionKeys {
  AeadKeys client_to_server;
  AeadKeys server_to_client;
};

SessionKeys DeriveSessionKeys(const Bytes& shared_secret, const Digest256& transcript_hash);

// Associated data bound into every record tag: the wire header fields that
// routing decisions are made from. Mirrors the packet header byte-for-byte
// (type as one byte, sandbox_id little-endian 32-bit).
struct RecordAad {
  uint8_t type = 0;
  int32_t sandbox_id = -1;
};

// Sealed record: nonce (derived from seq), ciphertext, 32-byte tag.
struct SealedRecord {
  uint64_t sequence = 0;
  Bytes ciphertext;
  Digest256 tag{};
};

// MAC input is aad.type || aad.sandbox_id (LE32) || sequence (LE64) || ciphertext.
Digest256 ComputeTag(const AeadKeys& keys, const RecordAad& aad, uint64_t sequence,
                     const uint8_t* ciphertext, size_t len);

SealedRecord AeadSeal(const AeadKeys& keys, const RecordAad& aad, uint64_t sequence,
                      const Bytes& plaintext);

// Fails (kPermissionDenied) on tag mismatch or sequence/header tampering.
StatusOr<Bytes> AeadOpen(const AeadKeys& keys, const RecordAad& aad,
                         const SealedRecord& record, uint64_t expected_sequence);

// Zero-copy variants for the record pipeline. Both accept `out` aliasing the
// input exactly (in-place); partial overlap is not supported.
//
// Encrypts plaintext[0..len) into out and returns the tag over the ciphertext.
Digest256 AeadSealInto(const AeadKeys& keys, const RecordAad& aad, uint64_t sequence,
                       const uint8_t* plaintext, size_t len, uint8_t* out);

// Authenticates first, then decrypts into out. On failure `out` is untouched.
Status AeadOpenInto(const AeadKeys& keys, const RecordAad& aad, uint64_t sequence,
                    const uint8_t* ciphertext, size_t len, const Digest256& tag,
                    uint8_t* out);

}  // namespace erebor

#endif  // EREBOR_SRC_CRYPTO_AEAD_H_
