#include "src/crypto/sha256.h"

#include <cstring>

#include "src/crypto/accel.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define EREBOR_SHA256_X86 1
#endif

namespace erebor {

namespace {

constexpr uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4,
    0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe,
    0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f,
    0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
    0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
    0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116,
    0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7,
    0xc67178f2};

inline uint32_t Rotr(uint32_t x, int n) { return (x >> n) | (x << (32 - n)); }

// Portable FIPS 180-4 compression, one block at a time.
void ProcessBlocksScalar(uint32_t h[8], const uint8_t* data, size_t block_count) {
  for (size_t blk = 0; blk < block_count; ++blk, data += 64) {
    uint32_t w[64];
    for (int i = 0; i < 16; ++i) {
      w[i] = (static_cast<uint32_t>(data[4 * i]) << 24) |
             (static_cast<uint32_t>(data[4 * i + 1]) << 16) |
             (static_cast<uint32_t>(data[4 * i + 2]) << 8) |
             static_cast<uint32_t>(data[4 * i + 3]);
    }
    for (int i = 16; i < 64; ++i) {
      const uint32_t s0 = Rotr(w[i - 15], 7) ^ Rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
      const uint32_t s1 = Rotr(w[i - 2], 17) ^ Rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }

    uint32_t a = h[0], b = h[1], c = h[2], d = h[3];
    uint32_t e = h[4], f = h[5], g = h[6], hh = h[7];
    for (int i = 0; i < 64; ++i) {
      const uint32_t s1 = Rotr(e, 6) ^ Rotr(e, 11) ^ Rotr(e, 25);
      const uint32_t ch = (e & f) ^ (~e & g);
      const uint32_t temp1 = hh + s1 + ch + kK[i] + w[i];
      const uint32_t s0 = Rotr(a, 2) ^ Rotr(a, 13) ^ Rotr(a, 22);
      const uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      const uint32_t temp2 = s0 + maj;
      hh = g;
      g = f;
      f = e;
      e = d + temp1;
      d = c;
      c = b;
      b = a;
      a = temp1 + temp2;
    }
    h[0] += a;
    h[1] += b;
    h[2] += c;
    h[3] += d;
    h[4] += e;
    h[5] += f;
    h[6] += g;
    h[7] += hh;
  }
}

#ifdef EREBOR_SHA256_X86

// SHA-NI compression. The SHA256RNDS2 instruction consumes the state as two
// packed registers in ABEF/CDGH order, so the plain {a..h} words are permuted on
// entry and exit. Message-schedule registers msgs[0..3] each hold four schedule
// words; sha256msg1/msg2 plus one PALIGNR per group advance the schedule 16
// rounds behind the round computation, exactly as in Intel's reference flow.
__attribute__((target("sha,sse4.1,ssse3")))
void ProcessBlocksShaNi(uint32_t h[8], const uint8_t* data, size_t block_count) {
  const __m128i kByteSwap =
      _mm_set_epi64x(0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL);

  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&h[0]));
  __m128i state1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&h[4]));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);        // CDAB
  state1 = _mm_shuffle_epi32(state1, 0x1B);  // EFGH
  __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);     // ABEF
  state1 = _mm_blend_epi16(state1, tmp, 0xF0);          // CDGH

  for (size_t blk = 0; blk < block_count; ++blk, data += 64) {
    const __m128i abef_save = state0;
    const __m128i cdgh_save = state1;

    __m128i msgs[4];
    for (int i = 0; i < 4; ++i) {
      msgs[i] = _mm_shuffle_epi8(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 16 * i)),
          kByteSwap);
    }

    for (int j = 0; j < 16; ++j) {
      __m128i m = _mm_add_epi32(
          msgs[j & 3], _mm_loadu_si128(reinterpret_cast<const __m128i*>(&kK[4 * j])));
      state1 = _mm_sha256rnds2_epu32(state1, state0, m);
      if (j >= 3 && j < 15) {
        const __m128i carry = _mm_alignr_epi8(msgs[j & 3], msgs[(j + 3) & 3], 4);
        msgs[(j + 1) & 3] = _mm_add_epi32(msgs[(j + 1) & 3], carry);
        msgs[(j + 1) & 3] = _mm_sha256msg2_epu32(msgs[(j + 1) & 3], msgs[j & 3]);
      }
      m = _mm_shuffle_epi32(m, 0x0E);
      state0 = _mm_sha256rnds2_epu32(state0, state1, m);
      if (j >= 1 && j <= 12) {
        msgs[(j + 3) & 3] = _mm_sha256msg1_epu32(msgs[(j + 3) & 3], msgs[j & 3]);
      }
    }

    state0 = _mm_add_epi32(state0, abef_save);
    state1 = _mm_add_epi32(state1, cdgh_save);
  }

  tmp = _mm_shuffle_epi32(state0, 0x1B);     // FEBA
  state1 = _mm_shuffle_epi32(state1, 0xB1);  // DCHG
  state0 = _mm_blend_epi16(tmp, state1, 0xF0);        // DCBA
  state1 = _mm_alignr_epi8(state1, tmp, 8);           // HGFE
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&h[0]), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&h[4]), state1);
}

#endif  // EREBOR_SHA256_X86

}  // namespace

Sha256::Sha256() {
  h_[0] = 0x6a09e667;
  h_[1] = 0xbb67ae85;
  h_[2] = 0x3c6ef372;
  h_[3] = 0xa54ff53a;
  h_[4] = 0x510e527f;
  h_[5] = 0x9b05688c;
  h_[6] = 0x1f83d9ab;
  h_[7] = 0x5be0cd19;
}

void Sha256::ProcessBlocks(const uint8_t* data, size_t block_count) {
#ifdef EREBOR_SHA256_X86
  if (accel::Enabled() && accel::HasShaNi()) {
    ProcessBlocksShaNi(h_, data, block_count);
    return;
  }
#endif
  ProcessBlocksScalar(h_, data, block_count);
}

void Sha256::Update(const uint8_t* data, size_t len) {
  if (len == 0) {
    return;  // also keeps memcpy away from a null `data`
  }
  total_len_ += len;
  // Top up a partially filled block first.
  if (buffer_len_ != 0) {
    const size_t take = std::min(len, sizeof(buffer_) - buffer_len_);
    std::memcpy(buffer_ + buffer_len_, data, take);
    buffer_len_ += take;
    data += take;
    len -= take;
    if (buffer_len_ == sizeof(buffer_)) {
      ProcessBlocks(buffer_, 1);
      buffer_len_ = 0;
    }
  }
  // Bulk data is compressed straight from the caller's buffer, many blocks per
  // dispatch, without staging through buffer_.
  const size_t whole_blocks = len / 64;
  if (whole_blocks != 0) {
    ProcessBlocks(data, whole_blocks);
    data += whole_blocks * 64;
    len -= whole_blocks * 64;
  }
  if (len != 0) {
    std::memcpy(buffer_, data, len);
    buffer_len_ = len;
  }
}

Digest256 Sha256::Finish() {
  const uint64_t bit_len = total_len_ * 8;
  const uint8_t pad = 0x80;
  Update(&pad, 1);
  const uint8_t zero = 0;
  while (buffer_len_ != 56) {
    Update(&zero, 1);
  }
  uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<uint8_t>(bit_len >> (56 - 8 * i));
  }
  total_len_ -= 9;  // Padding bytes are not part of the message length.
  Update(len_bytes, 8);

  Digest256 out;
  for (int i = 0; i < 8; ++i) {
    out[4 * i] = static_cast<uint8_t>(h_[i] >> 24);
    out[4 * i + 1] = static_cast<uint8_t>(h_[i] >> 16);
    out[4 * i + 2] = static_cast<uint8_t>(h_[i] >> 8);
    out[4 * i + 3] = static_cast<uint8_t>(h_[i]);
  }
  return out;
}

Digest256 Sha256::Hash(const uint8_t* data, size_t len) {
  Sha256 hasher;
  hasher.Update(data, len);
  return hasher.Finish();
}

}  // namespace erebor
