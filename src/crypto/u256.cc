#include "src/crypto/u256.h"

#include <cstring>

namespace erebor {

namespace {

// 512-bit intermediate used for products and reduction.
struct U512 {
  uint64_t limb[8] = {0, 0, 0, 0, 0, 0, 0, 0};

  bool Bit(int i) const { return (limb[i / 64] >> (i % 64)) & 1; }

  int BitLength() const {
    for (int i = 7; i >= 0; --i) {
      if (limb[i] != 0) {
        return 64 * i + 64 - __builtin_clzll(limb[i]);
      }
    }
    return 0;
  }
};

U512 MulFull(const U256& a, const U256& b) {
  U512 out;
  for (int i = 0; i < 4; ++i) {
    uint64_t carry = 0;
    for (int j = 0; j < 4; ++j) {
      const __uint128_t cur = static_cast<__uint128_t>(a.limb(i)) * b.limb(j) +
                              out.limb[i + j] + carry;
      out.limb[i + j] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    out.limb[i + 4] = carry;
  }
  return out;
}

// Reduce a 512-bit value modulo a 256-bit modulus via binary long division.
U256 Reduce(const U512& value, const U256& mod) {
  // Remainder held in 320 bits (mod < 2^256, so remainder fits in 257 bits; use 5 limbs).
  uint64_t rem[5] = {0, 0, 0, 0, 0};
  const int nbits = value.BitLength();
  for (int i = nbits - 1; i >= 0; --i) {
    // rem = (rem << 1) | bit.
    uint64_t carry = value.Bit(i) ? 1u : 0u;
    for (int l = 0; l < 5; ++l) {
      const uint64_t next_carry = rem[l] >> 63;
      rem[l] = (rem[l] << 1) | carry;
      carry = next_carry;
    }
    // If rem >= mod, subtract.
    bool ge = rem[4] != 0;
    if (!ge) {
      int cmp = 0;
      for (int l = 3; l >= 0; --l) {
        if (rem[l] != mod.limb(l)) {
          cmp = rem[l] > mod.limb(l) ? 1 : -1;
          break;
        }
      }
      ge = cmp >= 0;
    }
    if (ge) {
      uint64_t borrow = 0;
      for (int l = 0; l < 5; ++l) {
        const uint64_t m = (l < 4) ? mod.limb(l) : 0;
        const __uint128_t rhs = static_cast<__uint128_t>(m) + borrow;
        if (static_cast<__uint128_t>(rem[l]) >= rhs) {
          rem[l] = static_cast<uint64_t>(rem[l] - rhs);
          borrow = 0;
        } else {
          rem[l] =
              static_cast<uint64_t>((static_cast<__uint128_t>(1) << 64) + rem[l] - rhs);
          borrow = 1;
        }
      }
    }
  }
  return U256(rem[0], rem[1], rem[2], rem[3]);
}

}  // namespace

U256 U256::FromBytesBe(const uint8_t* data, size_t len) {
  U256 out;
  if (len > 32) {
    len = 32;
  }
  for (size_t i = 0; i < len; ++i) {
    const size_t bit_index = (len - 1 - i) * 8;
    out.limb_[bit_index / 64] |= static_cast<uint64_t>(data[i]) << (bit_index % 64);
  }
  return out;
}

U256 U256::FromHex(const std::string& hex) {
  U256 out;
  for (char c : hex) {
    uint64_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      digit = static_cast<uint64_t>(c - 'A' + 10);
    } else {
      continue;
    }
    // out = out * 16 + digit.
    uint64_t carry = digit;
    for (int l = 0; l < 4; ++l) {
      const __uint128_t cur = (static_cast<__uint128_t>(out.limb_[l]) << 4) | carry;
      out.limb_[l] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
  }
  return out;
}

Bytes U256::ToBytesBe() const {
  Bytes out(32);
  for (int i = 0; i < 32; ++i) {
    const int bit_index = (31 - i) * 8;
    out[i] = static_cast<uint8_t>(limb_[bit_index / 64] >> (bit_index % 64));
  }
  return out;
}

std::string U256::ToHex() const { return HexEncode(ToBytesBe()); }

int U256::BitLength() const {
  for (int i = 3; i >= 0; --i) {
    if (limb_[i] != 0) {
      return 64 * i + 64 - __builtin_clzll(limb_[i]);
    }
  }
  return 0;
}

int U256::Compare(const U256& other) const {
  for (int i = 3; i >= 0; --i) {
    if (limb_[i] != other.limb_[i]) {
      return limb_[i] > other.limb_[i] ? 1 : -1;
    }
  }
  return 0;
}

U256 U256::Add(const U256& a, const U256& b, uint64_t* carry_out) {
  U256 out;
  uint64_t carry = 0;
  for (int i = 0; i < 4; ++i) {
    const __uint128_t cur = static_cast<__uint128_t>(a.limb_[i]) + b.limb_[i] + carry;
    out.limb_[i] = static_cast<uint64_t>(cur);
    carry = static_cast<uint64_t>(cur >> 64);
  }
  if (carry_out != nullptr) {
    *carry_out = carry;
  }
  return out;
}

U256 U256::Sub(const U256& a, const U256& b, uint64_t* borrow_out) {
  U256 out;
  uint64_t borrow = 0;
  for (int i = 0; i < 4; ++i) {
    const __uint128_t rhs = static_cast<__uint128_t>(b.limb_[i]) + borrow;
    if (static_cast<__uint128_t>(a.limb_[i]) >= rhs) {
      out.limb_[i] = static_cast<uint64_t>(a.limb_[i] - rhs);
      borrow = 0;
    } else {
      out.limb_[i] =
          static_cast<uint64_t>((static_cast<__uint128_t>(1) << 64) + a.limb_[i] - rhs);
      borrow = 1;
    }
  }
  if (borrow_out != nullptr) {
    *borrow_out = borrow;
  }
  return out;
}

U256 U256::AddMod(const U256& a, const U256& b, const U256& mod) {
  uint64_t carry = 0;
  U256 sum = Add(a, b, &carry);
  if (carry != 0 || sum.Compare(mod) >= 0) {
    sum = Sub(sum, mod);
  }
  return sum;
}

U256 U256::SubMod(const U256& a, const U256& b, const U256& mod) {
  if (a.Compare(b) >= 0) {
    return Sub(a, b);
  }
  return Sub(Add(a, mod), b);
}

U256 U256::MulMod(const U256& a, const U256& b, const U256& mod) {
  return Reduce(MulFull(a, b), mod);
}

U256 U256::Mod(const U256& a, const U256& mod) {
  U512 wide;
  for (int i = 0; i < 4; ++i) {
    wide.limb[i] = a.limb_[i];
  }
  return Reduce(wide, mod);
}

U256 U256::PowMod(const U256& base, const U256& exp, const U256& mod) {
  U256 result(1);
  U256 acc = Mod(base, mod);
  const int nbits = exp.BitLength();
  for (int i = 0; i < nbits; ++i) {
    if (exp.Bit(i)) {
      result = MulMod(result, acc, mod);
    }
    acc = MulMod(acc, acc, mod);
  }
  return result;
}

}  // namespace erebor
