#include "src/crypto/accel.h"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#define EREBOR_ACCEL_X86 1
#endif

namespace erebor {
namespace accel {

namespace {

struct Features {
  bool sha_ni = false;
  bool avx2 = false;
};

Features Detect() {
  Features f;
#ifdef EREBOR_ACCEL_X86
  unsigned int eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid_max(0, nullptr) < 7) {
    return f;
  }
  __cpuid_count(7, 0, eax, ebx, ecx, edx);
  const bool cpu_sha = (ebx & (1u << 29)) != 0;
  const bool cpu_avx2 = (ebx & (1u << 5)) != 0;

  // AVX2 additionally needs the OS to save YMM state (OSXSAVE + XCR0 bits 1|2).
  bool os_avx = false;
  __cpuid_count(1, 0, eax, ebx, ecx, edx);
  if ((ecx & (1u << 27)) != 0) {  // OSXSAVE
    // xgetbv(0): _xgetbv() would need -mxsave on this TU, so issue it directly.
    unsigned int xcr0_lo = 0, xcr0_hi = 0;
    __asm__ volatile(".byte 0x0f, 0x01, 0xd0"  // xgetbv
                     : "=a"(xcr0_lo), "=d"(xcr0_hi)
                     : "c"(0));
    os_avx = (xcr0_lo & 0x6) == 0x6;
  }
  const bool cpu_sse41 = (ecx & (1u << 19)) != 0;

  f.sha_ni = cpu_sha && cpu_sse41;
  f.avx2 = cpu_avx2 && os_avx;
#endif
  return f;
}

const Features& Cached() {
  static const Features features = Detect();
  return features;
}

bool g_enabled = true;

}  // namespace

bool HasShaNi() { return Cached().sha_ni; }
bool HasAvx2() { return Cached().avx2; }

bool SetEnabled(bool on) {
  const bool previous = g_enabled;
  g_enabled = on;
  return previous;
}

bool Enabled() { return g_enabled; }

}  // namespace accel
}  // namespace erebor
