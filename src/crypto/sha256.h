// SHA-256, implemented from scratch (FIPS 180-4). Used for boot measurements,
// HMAC/HKDF, transcript hashing and Schnorr challenges in the attestation protocol.
#ifndef EREBOR_SRC_CRYPTO_SHA256_H_
#define EREBOR_SRC_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>
#include <string_view>

#include "src/common/bytes.h"

namespace erebor {

using Digest256 = std::array<uint8_t, 32>;

class Sha256 {
 public:
  Sha256();

  void Update(const uint8_t* data, size_t len);
  void Update(const Bytes& data) { Update(data.data(), data.size()); }
  void Update(std::string_view s) {
    Update(reinterpret_cast<const uint8_t*>(s.data()), s.size());
  }

  Digest256 Finish();

  static Digest256 Hash(const uint8_t* data, size_t len);
  static Digest256 Hash(const Bytes& data) { return Hash(data.data(), data.size()); }
  static Digest256 Hash(std::string_view s) {
    return Hash(reinterpret_cast<const uint8_t*>(s.data()), s.size());
  }

 private:
  // Compresses `block_count` consecutive 64-byte blocks. Dispatches to the
  // SHA-NI path when available and accel::Enabled(), else the portable one.
  void ProcessBlocks(const uint8_t* data, size_t block_count);

  uint32_t h_[8];
  uint8_t buffer_[64];
  size_t buffer_len_ = 0;
  uint64_t total_len_ = 0;
};

}  // namespace erebor

#endif  // EREBOR_SRC_CRYPTO_SHA256_H_
