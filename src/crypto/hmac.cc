#include "src/crypto/hmac.h"

#include <cstring>

namespace erebor {

HmacSha256::HmacSha256(const uint8_t* key, size_t key_len) {
  uint8_t block_key[64];
  std::memset(block_key, 0, sizeof(block_key));
  if (key_len > 64) {
    const Digest256 digest = Sha256::Hash(key, key_len);
    std::memcpy(block_key, digest.data(), digest.size());
  } else {
    std::memcpy(block_key, key, key_len);
  }

  uint8_t ipad_key[64];
  for (int i = 0; i < 64; ++i) {
    ipad_key[i] = block_key[i] ^ 0x36;
    opad_key_[i] = block_key[i] ^ 0x5c;
  }
  inner_.Update(ipad_key, sizeof(ipad_key));
  SecureZero(block_key, sizeof(block_key));
  SecureZero(ipad_key, sizeof(ipad_key));
}

Digest256 HmacSha256::Finish() {
  const Digest256 inner_digest = inner_.Finish();
  Sha256 outer;
  outer.Update(opad_key_, sizeof(opad_key_));
  outer.Update(inner_digest.data(), inner_digest.size());
  SecureZero(opad_key_, sizeof(opad_key_));
  return outer.Finish();
}

Digest256 HmacSha256::Mac(const Bytes& key, const Bytes& message) {
  HmacSha256 mac(key);
  mac.Update(message);
  return mac.Finish();
}

Digest256 HkdfExtract(const Bytes& salt, const Bytes& ikm) {
  HmacSha256 mac(salt);
  mac.Update(ikm);
  return mac.Finish();
}

Bytes HkdfExpand(const Digest256& prk, std::string_view info, size_t out_len) {
  Bytes out;
  out.reserve(out_len);
  Bytes prk_bytes(prk.begin(), prk.end());
  Digest256 t{};
  size_t t_len = 0;
  uint8_t counter = 1;
  while (out.size() < out_len) {
    HmacSha256 mac(prk_bytes);
    mac.Update(t.data(), t_len);
    mac.Update(info);
    mac.Update(&counter, 1);
    t = mac.Finish();
    t_len = t.size();
    const size_t take = std::min(out_len - out.size(), t.size());
    out.insert(out.end(), t.begin(), t.begin() + take);
    ++counter;
  }
  return out;
}

}  // namespace erebor
