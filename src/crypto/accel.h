// Runtime CPU-feature dispatch for the crypto hot paths (SHA-NI, AVX2). The
// channel record pipeline is the only consumer: everything else in the tree uses
// the portable scalar code unconditionally. Detection is done once with CPUID;
// a process-wide switch lets benches and cross-check tests force the scalar
// paths so accelerated and reference implementations can be compared in-process.
#ifndef EREBOR_SRC_CRYPTO_ACCEL_H_
#define EREBOR_SRC_CRYPTO_ACCEL_H_

namespace erebor {
namespace accel {

// CPU capability bits, detected once and cached. These report what the hardware
// (and OS, for vector state) can do, independent of the Enabled() switch.
bool HasShaNi();
bool HasAvx2();

// Master switch consulted by every dispatch site. Defaults to on. Returns the
// previous value so callers can save/restore around a measurement.
bool SetEnabled(bool on);
bool Enabled();

// RAII save/restore for tests and benches that flip the switch.
class ScopedEnable {
 public:
  explicit ScopedEnable(bool on) : previous_(SetEnabled(on)) {}
  ~ScopedEnable() { SetEnabled(previous_); }
  ScopedEnable(const ScopedEnable&) = delete;
  ScopedEnable& operator=(const ScopedEnable&) = delete;

 private:
  bool previous_;
};

}  // namespace accel
}  // namespace erebor

#endif  // EREBOR_SRC_CRYPTO_ACCEL_H_
