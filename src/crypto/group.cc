#include "src/crypto/group.h"

namespace erebor {

namespace {

// Challenge e = H(R || public || message) interpreted mod q.
U256 Challenge(const GroupParams& params, const U256& commitment, const U256& public_key,
               const Bytes& message) {
  Sha256 hasher;
  const Bytes r_bytes = commitment.ToBytesBe();
  const Bytes pk_bytes = public_key.ToBytesBe();
  hasher.Update(r_bytes);
  hasher.Update(pk_bytes);
  hasher.Update(message);
  const Digest256 digest = hasher.Finish();
  return U256::Mod(U256::FromBytesBe(digest.data(), digest.size()), params.q);
}

U256 RandomScalar(const GroupParams& params, Rng& rng) {
  // Rejection-free: draw 256 bits and reduce mod q; add 1 to avoid zero.
  uint8_t buf[32];
  rng.Fill(buf, sizeof(buf));
  U256 v = U256::Mod(U256::FromBytesBe(buf, sizeof(buf)), params.q);
  if (v.IsZero()) {
    v = U256(1);
  }
  return v;
}

}  // namespace

const GroupParams& GroupParams::Default() {
  // Generated offline: p = 2*q + 1 with p, q prime (Miller-Rabin, 40 rounds); g = 4 is a
  // quadratic residue and therefore generates the order-q subgroup.
  static const GroupParams kParams = [] {
    GroupParams params;
    params.p = U256::FromHex(
        "b7e9f735f74bf461eb409d67747a627534f17ded4ba95a60790f978549c8c24f");
    params.q = U256::FromHex(
        "5bf4fb9afba5fa30f5a04eb3ba3d313a9a78bef6a5d4ad303c87cbc2a4e46127");
    params.g = U256(4);
    return params;
  }();
  return kParams;
}

KeyPair GenerateKeyPair(const GroupParams& params, Rng& rng) {
  KeyPair kp;
  kp.private_key = RandomScalar(params, rng);
  kp.public_key = U256::PowMod(params.g, kp.private_key, params.p);
  return kp;
}

Bytes DhSharedSecret(const GroupParams& params, const U256& private_key,
                     const U256& peer_public) {
  return U256::PowMod(peer_public, private_key, params.p).ToBytesBe();
}

Signature SchnorrSign(const GroupParams& params, const U256& private_key,
                      const Bytes& message, Rng& rng) {
  const U256 public_key = U256::PowMod(params.g, private_key, params.p);
  Signature sig;
  const U256 k = RandomScalar(params, rng);
  sig.commitment = U256::PowMod(params.g, k, params.p);
  const U256 e = Challenge(params, sig.commitment, public_key, message);
  // s = k + e * x mod q.
  sig.response = U256::AddMod(k, U256::MulMod(e, private_key, params.q), params.q);
  return sig;
}

bool SchnorrVerify(const GroupParams& params, const U256& public_key, const Bytes& message,
                   const Signature& sig) {
  const U256 e = Challenge(params, sig.commitment, public_key, message);
  // Check g^s == R * y^e mod p.
  const U256 lhs = U256::PowMod(params.g, sig.response, params.p);
  const U256 rhs =
      U256::MulMod(sig.commitment, U256::PowMod(public_key, e, params.p), params.p);
  return lhs == rhs;
}

}  // namespace erebor
