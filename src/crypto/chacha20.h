// ChaCha20 stream cipher (RFC 8439 block function), from scratch. Used as the bulk
// cipher of the monitor<->client secure channel. The hot path hashes several
// blocks per dispatch (8-lane AVX2 when available, 4-lane portable otherwise) and
// XORs the keystream word-at-a-time; ChaCha20XorScalar keeps the original
// byte-wise code as the cross-check reference and bench baseline.
#ifndef EREBOR_SRC_CRYPTO_CHACHA20_H_
#define EREBOR_SRC_CRYPTO_CHACHA20_H_

#include <array>
#include <cstdint>

#include "src/common/bytes.h"

namespace erebor {

using ChaChaKey = std::array<uint8_t, 32>;
using ChaChaNonce = std::array<uint8_t, 12>;

// XOR-encrypt/decrypt `data` in place with the keystream starting at block `counter`.
void ChaCha20Xor(const ChaChaKey& key, const ChaChaNonce& nonce, uint32_t counter,
                 uint8_t* data, size_t len);

// Fused variant: dst[i] = src[i] ^ keystream[i]. `dst` may alias `src` exactly
// (in-place); partial overlap is not supported. This is the zero-copy entry the
// AEAD layer uses to decrypt straight into a caller-provided buffer.
void ChaCha20XorTo(const ChaChaKey& key, const ChaChaNonce& nonce, uint32_t counter,
                   const uint8_t* src, uint8_t* dst, size_t len);

// Reference implementation: one block at a time, byte-wise XOR. Kept verbatim from
// the original scalar path so tests can assert the optimized paths are
// bit-identical and benches can measure the speedup against it.
void ChaCha20XorScalar(const ChaChaKey& key, const ChaChaNonce& nonce, uint32_t counter,
                       uint8_t* data, size_t len);

inline Bytes ChaCha20Encrypt(const ChaChaKey& key, const ChaChaNonce& nonce,
                             const Bytes& plaintext) {
  Bytes out = plaintext;
  ChaCha20Xor(key, nonce, 1, out.data(), out.size());
  return out;
}

}  // namespace erebor

#endif  // EREBOR_SRC_CRYPTO_CHACHA20_H_
