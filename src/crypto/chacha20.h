// ChaCha20 stream cipher (RFC 8439 block function), from scratch. Used as the bulk
// cipher of the monitor<->client secure channel.
#ifndef EREBOR_SRC_CRYPTO_CHACHA20_H_
#define EREBOR_SRC_CRYPTO_CHACHA20_H_

#include <array>
#include <cstdint>

#include "src/common/bytes.h"

namespace erebor {

using ChaChaKey = std::array<uint8_t, 32>;
using ChaChaNonce = std::array<uint8_t, 12>;

// XOR-encrypt/decrypt `data` in place with the keystream starting at block `counter`.
void ChaCha20Xor(const ChaChaKey& key, const ChaChaNonce& nonce, uint32_t counter,
                 uint8_t* data, size_t len);

inline Bytes ChaCha20Encrypt(const ChaChaKey& key, const ChaChaNonce& nonce,
                             const Bytes& plaintext) {
  Bytes out = plaintext;
  ChaCha20Xor(key, nonce, 1, out.data(), out.size());
  return out;
}

}  // namespace erebor

#endif  // EREBOR_SRC_CRYPTO_CHACHA20_H_
