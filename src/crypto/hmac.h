// HMAC-SHA256 and HKDF (RFC 2104 / RFC 5869), from scratch. Used for TDREPORT MAC
// integrity, channel key derivation, and AEAD tags.
#ifndef EREBOR_SRC_CRYPTO_HMAC_H_
#define EREBOR_SRC_CRYPTO_HMAC_H_

#include <string_view>

#include "src/common/bytes.h"
#include "src/crypto/sha256.h"

namespace erebor {

class HmacSha256 {
 public:
  HmacSha256(const uint8_t* key, size_t key_len);
  explicit HmacSha256(const Bytes& key) : HmacSha256(key.data(), key.size()) {}

  void Update(const uint8_t* data, size_t len) { inner_.Update(data, len); }
  void Update(const Bytes& data) { inner_.Update(data); }
  void Update(std::string_view s) { inner_.Update(s); }

  Digest256 Finish();

  static Digest256 Mac(const Bytes& key, const Bytes& message);

 private:
  Sha256 inner_;
  uint8_t opad_key_[64];
};

// HKDF-Extract + Expand, SHA-256 based.
Digest256 HkdfExtract(const Bytes& salt, const Bytes& ikm);
Bytes HkdfExpand(const Digest256& prk, std::string_view info, size_t out_len);

}  // namespace erebor

#endif  // EREBOR_SRC_CRYPTO_HMAC_H_
