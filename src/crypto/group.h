// A 256-bit prime-order multiplicative group with Diffie-Hellman key agreement and
// Schnorr signatures. This stands in for the ECDSA-signed TDX quote chain and the
// TLS-style authenticated key exchange of the paper (see DESIGN.md substitutions).
#ifndef EREBOR_SRC_CRYPTO_GROUP_H_
#define EREBOR_SRC_CRYPTO_GROUP_H_

#include "src/common/bytes.h"
#include "src/common/rng.h"
#include "src/crypto/sha256.h"
#include "src/crypto/u256.h"

namespace erebor {

// Group parameters: p a safe prime (p = 2q + 1), g a generator of the order-q subgroup.
struct GroupParams {
  U256 p;  // modulus
  U256 q;  // subgroup order
  U256 g;  // generator

  // The fixed simulation-wide group (a 256-bit safe prime).
  static const GroupParams& Default();
};

struct KeyPair {
  U256 private_key;  // scalar in [1, q)
  U256 public_key;   // g^private mod p
};

KeyPair GenerateKeyPair(const GroupParams& params, Rng& rng);

// Diffie-Hellman shared secret: peer_public^private mod p, serialized big-endian.
Bytes DhSharedSecret(const GroupParams& params, const U256& private_key,
                     const U256& peer_public);

// Schnorr signature (Fiat-Shamir with SHA-256 challenge).
struct Signature {
  U256 commitment;  // R = g^k mod p
  U256 response;    // s = k + e * x mod q
};

Signature SchnorrSign(const GroupParams& params, const U256& private_key,
                      const Bytes& message, Rng& rng);

bool SchnorrVerify(const GroupParams& params, const U256& public_key, const Bytes& message,
                   const Signature& sig);

}  // namespace erebor

#endif  // EREBOR_SRC_CRYPTO_GROUP_H_
