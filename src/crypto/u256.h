// Fixed-width 256-bit unsigned integer with modular arithmetic, from scratch.
// Backs the Diffie-Hellman key exchange and Schnorr quote signatures used by the
// simulated attestation stack. Not constant-time and not production-grade parameters;
// this is a protocol-faithful simulation substrate (see DESIGN.md).
#ifndef EREBOR_SRC_CRYPTO_U256_H_
#define EREBOR_SRC_CRYPTO_U256_H_

#include <array>
#include <cstdint>
#include <string>

#include "src/common/bytes.h"

namespace erebor {

class U256 {
 public:
  // Little-endian limbs: limb_[0] is least significant.
  constexpr U256() : limb_{0, 0, 0, 0} {}
  constexpr explicit U256(uint64_t v) : limb_{v, 0, 0, 0} {}
  constexpr U256(uint64_t l0, uint64_t l1, uint64_t l2, uint64_t l3) : limb_{l0, l1, l2, l3} {}

  static U256 FromBytesBe(const uint8_t* data, size_t len);  // len <= 32
  static U256 FromHex(const std::string& hex);

  Bytes ToBytesBe() const;  // 32 bytes, big-endian
  std::string ToHex() const;

  bool IsZero() const { return (limb_[0] | limb_[1] | limb_[2] | limb_[3]) == 0; }
  bool Bit(int i) const { return (limb_[i / 64] >> (i % 64)) & 1; }
  int BitLength() const;

  uint64_t limb(int i) const { return limb_[i]; }

  // Comparison.
  int Compare(const U256& other) const;
  bool operator==(const U256& o) const { return Compare(o) == 0; }
  bool operator!=(const U256& o) const { return Compare(o) != 0; }
  bool operator<(const U256& o) const { return Compare(o) < 0; }
  bool operator>=(const U256& o) const { return Compare(o) >= 0; }

  // Plain arithmetic (wrapping); carry/borrow returned where useful.
  static U256 Add(const U256& a, const U256& b, uint64_t* carry_out = nullptr);
  static U256 Sub(const U256& a, const U256& b, uint64_t* borrow_out = nullptr);

  // Modular arithmetic; all operands must already be < mod.
  static U256 AddMod(const U256& a, const U256& b, const U256& mod);
  static U256 SubMod(const U256& a, const U256& b, const U256& mod);
  static U256 MulMod(const U256& a, const U256& b, const U256& mod);
  static U256 PowMod(const U256& base, const U256& exp, const U256& mod);
  static U256 Mod(const U256& a, const U256& mod);

 private:
  std::array<uint64_t, 4> limb_;
};

}  // namespace erebor

#endif  // EREBOR_SRC_CRYPTO_U256_H_
