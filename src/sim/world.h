// World: assembles a complete simulated system under one of the paper's evaluation
// configurations (section 9 "Evaluation settings"):
//
//   kNative        - normal CVM, application directly on the kernel
//   kLibosOnly     - Erebor-LibOS-only: LibOS emulation, no monitor
//   kEreborMmuOnly - Erebor-LibOS-MMU: monitor + memory-view isolation, no exit protection
//   kEreborExitOnly- Erebor-LibOS-Exit: monitor + exit protection, native MMU ops
//   kEreborFull    - full Erebor
#ifndef EREBOR_SRC_SIM_WORLD_H_
#define EREBOR_SRC_SIM_WORLD_H_

#include <memory>

#include "src/client/client.h"
#include "src/host/attacks.h"
#include "src/libos/libos.h"

namespace erebor {

enum class SimMode : uint8_t {
  kNative,
  kLibosOnly,
  kEreborMmuOnly,
  kEreborExitOnly,
  kEreborFull,
};

std::string SimModeName(SimMode mode);

struct WorldConfig {
  SimMode mode = SimMode::kEreborFull;
  MachineConfig machine;
  KernelConfig kernel;
  KernelBuildOptions kernel_image;  // instrumented flag is forced by mode
};

class World {
 public:
  explicit World(const WorldConfig& config);
  ~World();

  Status Boot();

  Machine& machine() { return *machine_; }
  TdxModule& tdx() { return *tdx_; }
  HostVmm& host() { return *host_; }
  Kernel& kernel() { return *kernel_; }
  EreborMonitor* monitor() { return monitor_.get(); }  // null in native/libos-only modes
  HostAttacker& attacker() { return *attacker_; }
  PrivilegedOps& privops() { return *active_ops_; }
  SimMode mode() const { return config_.mode; }
  bool erebor_active() const { return monitor_ != nullptr; }
  bool exit_protection() const;
  LibosBackend libos_backend() const;
  bool libos_overheads() const { return config_.mode != SimMode::kNative; }

  const Bytes& firmware_image() const { return firmware_image_; }
  ClientTrustAnchors MakeTrustAnchors() const;

  // Spawns a process and (in Erebor modes) wraps it in a sandbox.
  StatusOr<Task*> LaunchProcess(const std::string& name, ProgramFn program);
  StatusOr<Sandbox*> LaunchSandboxProcess(const std::string& name, const SandboxSpec& spec,
                                          ProgramFn program, Task** task_out = nullptr);

  // Spawns the untrusted network proxy (Erebor modes); it pumps packets between the
  // monitor and the host network until StopProxy().
  Status StartProxy();
  void StopProxy() { proxy_stop_ = true; }

  // "Remote" side of the network (the client's vantage point).
  void ClientSend(const Bytes& wire) { host_->network().WorldTransmit(wire); }
  StatusOr<Bytes> ClientReceive() { return host_->network().WorldReceive(); }

  // Runs the scheduler until `done` returns true or no task is runnable.
  Status RunUntil(const std::function<bool()>& done, uint64_t max_slices = 2'000'000);

 private:
  WorldConfig config_;
  Bytes firmware_image_;
  std::unique_ptr<Machine> machine_;
  std::unique_ptr<TdxModule> tdx_;
  std::unique_ptr<HostVmm> host_;
  std::unique_ptr<EreborMonitor> monitor_;
  std::unique_ptr<NativePrivOps> native_ops_;
  std::unique_ptr<EmcPrivOps> emc_ops_;
  PrivilegedOps* active_ops_ = nullptr;
  std::unique_ptr<Kernel> kernel_;
  std::unique_ptr<HostAttacker> attacker_;
  bool proxy_stop_ = false;
};

}  // namespace erebor

#endif  // EREBOR_SRC_SIM_WORLD_H_
