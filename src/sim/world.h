// World: assembles a complete simulated system under one of the paper's evaluation
// configurations (section 9 "Evaluation settings"):
//
//   kNative        - normal CVM, application directly on the kernel
//   kLibosOnly     - Erebor-LibOS-only: LibOS emulation, no monitor
//   kEreborMmuOnly - Erebor-LibOS-MMU: monitor + memory-view isolation, no exit protection
//   kEreborExitOnly- Erebor-LibOS-Exit: monitor + exit protection, native MMU ops
//   kEreborFull    - full Erebor
#ifndef EREBOR_SRC_SIM_WORLD_H_
#define EREBOR_SRC_SIM_WORLD_H_

#include <atomic>
#include <memory>

#include "src/client/client.h"
#include "src/common/exec.h"
#include "src/common/faultpoint.h"
#include "src/common/rng.h"
#include "src/host/attacks.h"
#include "src/hw/isolation.h"
#include "src/libos/libos.h"
#include "src/monitor/invariants.h"

namespace erebor {

enum class SimMode : uint8_t {
  kNative,
  kLibosOnly,
  kEreborMmuOnly,
  kEreborExitOnly,
  kEreborFull,
};

std::string SimModeName(SimMode mode);

struct WorldConfig {
  SimMode mode = SimMode::kEreborFull;
  // Execution engine for RunOnThreads parallel regions: kDeterministic runs the
  // per-vCPU bodies sequentially on the calling thread (the bit-replayable
  // oracle); kRealThreads runs one OS thread per vCPU with real mutexes behind
  // the EMC lock plans. Boot, scheduling (RunUntil) and teardown are always
  // single-threaded regardless of this setting.
  ExecMode exec = ExecMode::kDeterministic;
  // Isolation backend for Erebor modes (src/monitor/isolation.h). kPks is the
  // paper's design (11 sandbox domains); kTmeMk trades the PKRS gate writes for
  // per-frame keyID bindings (~2K domains) and applies TmeMkCycleModel() to the
  // machine's cycle costs at construction.
  IsolationKind isolation = IsolationKind::kPks;
  MachineConfig machine;
  KernelConfig kernel;
  KernelBuildOptions kernel_image;  // instrumented flag is forced by mode
};

// Chaos-soak configuration: arms the global fault injector and drives host-side
// probes + invariant checks from the world's scheduler loop. Enable only *after*
// Boot() — injecting faults into the boot path tests nothing the paper claims.
struct ChaosOptions {
  uint64_t seed = 1;
  // Explicit schedule; leave empty to use FaultSchedule::Randomized(seed).
  FaultSchedule schedule;
  // Host-driven asynchronous probes, fired between scheduler slices through the
  // attack harness: "host.preempt" (device-interrupt preemption at an arbitrary
  // point) and "host.dma" (DMA read of a fault-chosen frame, which must fail for
  // anything but shared-IO memory).
  bool host_preempt = true;
  bool host_dma_probe = true;
  // Invariant-check cadence in scheduler slices; checks also run (deferred to the
  // next slice boundary — a safe point) after every injected fault. 0 disables the
  // cadence, leaving only fault-triggered checks.
  uint64_t check_every_slices = 64;
};

class World {
 public:
  explicit World(const WorldConfig& config);
  ~World();

  Status Boot();

  Machine& machine() { return *machine_; }
  TdxModule& tdx() { return *tdx_; }
  HostVmm& host() { return *host_; }
  Kernel& kernel() { return *kernel_; }
  EreborMonitor* monitor() { return monitor_.get(); }  // null in native/libos-only modes
  HostAttacker& attacker() { return *attacker_; }
  PrivilegedOps& privops() { return *active_ops_; }
  SimMode mode() const { return config_.mode; }
  bool erebor_active() const { return monitor_ != nullptr; }
  bool exit_protection() const;
  LibosBackend libos_backend() const;
  bool libos_overheads() const { return config_.mode != SimMode::kNative; }

  const Bytes& firmware_image() const { return firmware_image_; }
  ClientTrustAnchors MakeTrustAnchors() const;

  // Spawns a process and (in Erebor modes) wraps it in a sandbox.
  StatusOr<Task*> LaunchProcess(const std::string& name, ProgramFn program);
  StatusOr<Sandbox*> LaunchSandboxProcess(const std::string& name, const SandboxSpec& spec,
                                          ProgramFn program, Task** task_out = nullptr);
  // Warm-start fast path (ROADMAP item 2): spawns a process and wraps it in a
  // copy-on-write clone of `tmpl`, which must already be frozen with
  // monitor()->SnapshotTemplate(). The clone comes back domain-deferred; promote
  // it with monitor()->ActivateClone before sealing (first CoW break promotes
  // lazily too, but an explicit promotion keeps domain exhaustion a launch-time
  // error rather than a mid-request kill).
  StatusOr<Sandbox*> LaunchCloneProcess(const std::string& name, Sandbox& tmpl,
                                        const SandboxSpec& spec, ProgramFn program,
                                        Task** task_out = nullptr);

  // Spawns the untrusted network proxy (Erebor modes); it pumps packets between the
  // monitor and the host network until StopProxy().
  Status StartProxy();
  void StopProxy() { proxy_stop_ = true; }

  // "Remote" side of the network (the client's vantage point).
  void ClientSend(const Bytes& wire) { host_->network().WorldTransmit(wire); }
  StatusOr<Bytes> ClientReceive() { return host_->network().WorldReceive(); }

  // Runs the scheduler until `done` returns true or no task is runnable.
  Status RunUntil(const std::function<bool()>& done, uint64_t max_slices = 2'000'000);

  // ---- Parallel region (the execution-engine seam) ----
  // Runs `body(cpu)` once per vCPU. Under ExecMode::kRealThreads each body runs
  // on its own OS thread bound to its vCPU (SimLocks become real mutexes,
  // cross-CPU TLB maintenance queues, shared counters go relaxed-atomic); under
  // kDeterministic the bodies run sequentially on the calling thread in CPU
  // order — the oracle schedule. Both engines execute identical simulated work,
  // so EMC-family counters, fault-journal hashes, and per-CPU charged cycles
  // must be bit-identical across them. Returns the first non-OK body status
  // after every thread has joined and all invalidation queues are drained.
  Status RunOnThreads(const std::function<Status(int cpu)>& body);
  ExecMode exec_mode() const { return config_.exec; }

  // Per-vCPU chaos step for RunOnThreads bodies: fires the "host.preempt" probe
  // and, via this vCPU's private RNG stream (seeded from (chaos seed, cpu)),
  // occasionally models a host-side vCPU migration by flushing the vCPU's own
  // TLB (wall-clock-only; zero cycles). Safe from the owning vCPU thread in
  // both engines; a no-op when chaos is off. Deterministic per (seed, cpu,
  // call index), so a sequential replay makes identical decisions.
  void ThreadChaosTick(int cpu);

  // ---- Chaos soak ----
  // Arms the global FaultInjector with options.schedule (or a seed-randomized one)
  // and hooks host probes + invariant checks into RunUntil. Requires a booted
  // Erebor mode (the monitor owns the invariants being checked).
  Status EnableChaos(const ChaosOptions& options);
  // Disarms the injector and detaches the hooks (also called from the destructor so
  // a chaotic World never leaks an armed injector into the next test).
  void DisableChaos();
  bool chaos_enabled() const { return chaos_; }
  InvariantChecker* invariants() { return invariants_.get(); }
  uint64_t invariant_violations() const { return invariant_violations_; }
  const Status& first_violation() const { return first_violation_; }

 private:
  // One post-slice chaos step: host probes, then any due invariant check.
  void ChaosTick();
  WorldConfig config_;
  Bytes firmware_image_;
  std::unique_ptr<Machine> machine_;
  std::unique_ptr<TdxModule> tdx_;
  std::unique_ptr<HostVmm> host_;
  std::unique_ptr<EreborMonitor> monitor_;
  std::unique_ptr<NativePrivOps> native_ops_;
  std::unique_ptr<EmcPrivOps> emc_ops_;
  PrivilegedOps* active_ops_ = nullptr;
  std::unique_ptr<Kernel> kernel_;
  std::unique_ptr<HostAttacker> attacker_;
  bool proxy_stop_ = false;

  // Chaos-soak state.
  bool chaos_ = false;
  ChaosOptions chaos_options_;
  std::unique_ptr<InvariantChecker> invariants_;
  uint64_t chaos_slice_ = 0;
  // Set by the fault observer, possibly from a vCPU thread mid-parallel-region;
  // consumed at the next safe point (slice boundary or post-join).
  std::atomic<bool> pending_invariant_check_{false};
  uint64_t invariant_violations_ = 0;
  Status first_violation_;
  // Per-vCPU chaos RNG streams, seeded from (chaos seed, cpu id) at EnableChaos.
  // Each stream is consumed only by its own vCPU (ThreadChaosTick) or by the
  // single-threaded driver (ChaosTick), never shared across threads.
  std::vector<SplitMix64> chaos_rngs_;
  std::vector<uint64_t> chaos_thread_slices_;  // per-vCPU ThreadChaosTick count
};

}  // namespace erebor

#endif  // EREBOR_SRC_SIM_WORLD_H_
