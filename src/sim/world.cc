#include "src/sim/world.h"

#include <thread>

#include "src/common/log.h"
#include "src/hw/platform.h"

namespace erebor {

std::string SimModeName(SimMode mode) {
  switch (mode) {
    case SimMode::kNative:
      return "Native";
    case SimMode::kLibosOnly:
      return "Erebor-LibOS-only";
    case SimMode::kEreborMmuOnly:
      return "Erebor-LibOS-MMU";
    case SimMode::kEreborExitOnly:
      return "Erebor-LibOS-Exit";
    case SimMode::kEreborFull:
      return "Erebor";
  }
  return "?";
}

namespace {
Bytes MakeFirmwareImage() {
  // Deterministic OVMF stand-in: what matters is that it is measured and that clients
  // can reproduce the measurement.
  Bytes image;
  const std::string banner = "EREBOR-SIM-OVMF-1.0";
  image.assign(banner.begin(), banner.end());
  Rng rng(0xF1F2);
  const size_t old = image.size();
  image.resize(old + 480);
  rng.Fill(image.data() + old, 480);
  return image;
}
}  // namespace

World::World(const WorldConfig& config) : config_(config) {
  firmware_image_ = MakeFirmwareImage();
  if (config_.isolation == IsolationKind::kTmeMk) {
    // TME-MK cost profile: cheaper gates (no PKRS wrmsr pair), slightly dearer
    // PTE ops (keyID-field check). PKS worlds keep the paper's calibration.
    config_.machine.cycles = TmeMkCycleModel(config_.machine.cycles);
  }
  machine_ = std::make_unique<Machine>(config_.machine);
  tdx_ = std::make_unique<TdxModule>(machine_.get());
  host_ = std::make_unique<HostVmm>(machine_.get(), tdx_.get());
  tdx_->SetVmcallSink(host_.get());
  attacker_ = std::make_unique<HostAttacker>(machine_.get(), tdx_.get());
  for (int i = 0; i < machine_->num_cpus(); ++i) {
    machine_->cpu(i).SetTdcallSink(tdx_.get());
  }
}

World::~World() {
  if (chaos_) {
    DisableChaos();
  }
}

bool World::exit_protection() const {
  return config_.mode == SimMode::kEreborExitOnly || config_.mode == SimMode::kEreborFull;
}

LibosBackend World::libos_backend() const {
  return erebor_active() ? LibosBackend::kSandboxed : LibosBackend::kNativeDirect;
}

Status World::Boot() {
  const bool with_monitor = config_.mode == SimMode::kEreborMmuOnly ||
                            config_.mode == SimMode::kEreborExitOnly ||
                            config_.mode == SimMode::kEreborFull;
  const bool mmu_isolation = config_.mode == SimMode::kEreborMmuOnly ||
                             config_.mode == SimMode::kEreborFull;

  native_ops_ = std::make_unique<NativePrivOps>();
  active_ops_ = native_ops_.get();

  if (with_monitor) {
    monitor_ = std::make_unique<EreborMonitor>(machine_.get(), tdx_.get(), host_.get(),
                                               config_.isolation);
    // The exit-protection-only ablation leaves the fence open and privileged ops
    // native, isolating the interposition overhead (paper Figure 9 breakdown). It is
    // deliberately not security-complete.
    EREBOR_RETURN_IF_ERROR(
        monitor_->BootStage1(firmware_image_, /*arm_fence=*/mmu_isolation));

    // Stage 2: verified kernel load. The mode forces an instrumented image.
    KernelBuildOptions image_options = config_.kernel_image;
    image_options.instrumented = true;
    const KernelImage image = BuildKernelImage(image_options);
    EREBOR_RETURN_IF_ERROR(monitor_->LoadKernelImage(image.Serialize()).status());

    if (mmu_isolation) {
      emc_ops_ = std::make_unique<EmcPrivOps>(monitor_.get());
      active_ops_ = emc_ops_.get();
    }
  } else {
    // Normal CVM: the (native) kernel image still boots, just without verification.
    KernelBuildOptions image_options = config_.kernel_image;
    image_options.instrumented = false;
    (void)BuildKernelImage(image_options);
  }

  kernel_ = std::make_unique<Kernel>(machine_.get(), active_ops_, tdx_.get(), host_.get(),
                                     config_.kernel);
  EREBOR_RETURN_IF_ERROR(kernel_->Boot());

  if (monitor_ != nullptr) {
    EREBOR_RETURN_IF_ERROR(monitor_->AttachKernel(kernel_.get()));
    if (!exit_protection()) {
      // MMU-only ablation: remove the exit-interposition stubs the attach installed.
      kernel_->SetSyscallInterposer(nullptr);
      kernel_->SetInterruptInterposer(nullptr);
      kernel_->SetVeInterposer(nullptr);
    }
  }
  return OkStatus();
}

ClientTrustAnchors World::MakeTrustAnchors() const {
  ClientTrustAnchors anchors;
  anchors.platform_attestation_key = tdx_->attestation_public_key();
  const Bytes monitor_image =
      monitor_ != nullptr ? monitor_->monitor_image() : BuildMonitorImage();
  anchors.expected_mrtd = ComputeExpectedMrtd(firmware_image_, monitor_image);
  return anchors;
}

StatusOr<Task*> World::LaunchProcess(const std::string& name, ProgramFn program) {
  return kernel_->SpawnProcess(name, std::move(program));
}

StatusOr<Sandbox*> World::LaunchSandboxProcess(const std::string& name,
                                               const SandboxSpec& spec, ProgramFn program,
                                               Task** task_out) {
  EREBOR_ASSIGN_OR_RETURN(Task * task, kernel_->SpawnProcess(name, std::move(program)));
  if (task_out != nullptr) {
    *task_out = task;
  }
  if (monitor_ == nullptr) {
    return NotFoundError("sandboxes require an Erebor mode (got " +
                         SimModeName(config_.mode) + ")");
  }
  return monitor_->CreateSandbox(*task, spec);
}

StatusOr<Sandbox*> World::LaunchCloneProcess(const std::string& name, Sandbox& tmpl,
                                             const SandboxSpec& spec, ProgramFn program,
                                             Task** task_out) {
  EREBOR_ASSIGN_OR_RETURN(Task * task, kernel_->SpawnProcess(name, std::move(program)));
  if (task_out != nullptr) {
    *task_out = task;
  }
  if (monitor_ == nullptr) {
    return NotFoundError("sandbox clones require an Erebor mode (got " +
                         SimModeName(config_.mode) + ")");
  }
  return monitor_->CloneSandbox(machine_->cpu(0), *task, tmpl, spec);
}

Status World::StartProxy() {
  if (monitor_ == nullptr) {
    return FailedPreconditionError("proxy requires Erebor");
  }
  proxy_stop_ = false;
  auto program = [this](SyscallContext& ctx) -> StepOutcome {
    if (proxy_stop_) {
      return StepOutcome::kExited;
    }
    Task& task = ctx.task();
    // Lazy setup: open the device + map a bounce buffer on the first slice. The buffer
    // VA and fd live in callee-saved registers across slices.
    if (task.fds->open_count() == 0) {
      const std::string dev = "/dev/erebor";
      const auto staging = task.aspace->CreateVma(
          64 * kPageSize,
          pte::kPresent | pte::kUser | pte::kWritable | pte::kNoExecute, VmaKind::kAnon);
      if (!staging.ok()) {
        return StepOutcome::kExited;
      }
      ctx.cpu().gprs().reg[15] = *staging;
      if (!ctx.WriteUser(*staging, reinterpret_cast<const uint8_t*>(dev.data()),
                         dev.size())
               .ok()) {
        return StepOutcome::kExited;
      }
      const auto fd = ctx.Syscall(sys::kOpen, *staging, dev.size(), 0);
      if (!fd.ok()) {
        return StepOutcome::kExited;
      }
      ctx.cpu().gprs().reg[14] = *fd;
    }
    const Vaddr buffer = ctx.cpu().gprs().reg[15];
    const uint64_t fd = ctx.cpu().gprs().reg[14];
    const Vaddr req_va = buffer;             // 16-byte ioctl request
    const Vaddr data_va = buffer + kPageSize;  // packet staging
    bool moved = false;

    // Network -> monitor: drain every packet pending this slice into one
    // [LE32 len | packet]* burst and hand the whole thing to the monitor in a
    // single batch ioctl, so concurrent sessions cross the EMC boundary once
    // and are ingested per-sandbox under the sharded lock plan.
    uint64_t batched = 0;
    for (;;) {
      const uint64_t capacity = 62 * kPageSize - batched;
      if (capacity <= 4) {
        break;
      }
      auto received = ctx.Syscall(sys::kRecvfrom, data_va + batched + 4, capacity - 4);
      if (!received.ok() || *received == 0) {
        break;
      }
      uint8_t prefix[4];
      StoreLe32(prefix, static_cast<uint32_t>(*received));
      if (!ctx.WriteUser(data_va + batched, prefix, sizeof(prefix)).ok()) {
        break;
      }
      batched += 4 + *received;
    }
    if (batched > 0) {
      uint8_t req[16];
      StoreLe64(req, data_va);
      StoreLe64(req + 8, batched);
      if (ctx.WriteUser(req_va, req, sizeof(req)).ok()) {
        (void)ctx.Syscall(sys::kIoctl, fd, emc_ioctl::kProxyDeliverBatch, req_va);
        moved = true;
      }
    }
    // Monitor -> network.
    uint8_t req[16];
    StoreLe64(req, data_va);
    StoreLe64(req + 8, 62 * kPageSize);
    if (ctx.WriteUser(req_va, req, sizeof(req)).ok()) {
      const auto fetched = ctx.Syscall(sys::kIoctl, fd, emc_ioctl::kProxyFetch, req_va);
      if (fetched.ok() && *fetched > 0) {
        (void)ctx.Syscall(sys::kSendto, data_va, *fetched);
        moved = true;
      }
    }
    if (!moved) {
      ctx.Compute(500);  // idle poll
    }
    return StepOutcome::kYield;
  };
  return kernel_->SpawnProcess("erebor-proxy", std::move(program)).status();
}

Status World::RunOnThreads(const std::function<Status(int cpu)>& body) {
  const int num_cpus = machine_->num_cpus();
  std::vector<Status> results(static_cast<size_t>(num_cpus), OkStatus());
  if (config_.exec == ExecMode::kDeterministic) {
    // The oracle schedule: same bodies, same per-vCPU work, sequential in CPU
    // order on the calling thread. Bit-replayable by construction.
    for (int cpu = 0; cpu < num_cpus; ++cpu) {
      ExecutionEngine::CpuBinding binding(cpu);
      results[static_cast<size_t>(cpu)] = body(cpu);
    }
  } else {
    // One OS thread per vCPU. The RealThreadsScope flips every seam (SimLock
    // mutexes, TLB queueing, trace ring locking) for the region's lifetime;
    // everything before and after this block is single-threaded.
    ExecutionEngine::RealThreadsScope scope;
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(num_cpus));
    for (int cpu = 0; cpu < num_cpus; ++cpu) {
      threads.emplace_back([this, cpu, &body, &results]() {
        ExecutionEngine::CpuBinding binding(cpu);
        results[static_cast<size_t>(cpu)] = body(cpu);
        // Drain before parking so a peer's late shootdown cannot strand in the
        // queue of a vCPU that already finished its work...
        machine_->cpu(cpu).DrainTlbInvalidations();
      });
    }
    for (std::thread& thread : threads) {
      thread.join();
    }
  }
  // ...and drain once more after the join (or the sequential loop) for anything
  // posted after a vCPU's final own-thread drain. Single-threaded here, so this
  // also covers the deterministic engine's direct-apply invariants trivially.
  for (int cpu = 0; cpu < num_cpus; ++cpu) {
    machine_->cpu(cpu).DrainTlbInvalidations();
  }
  // Fault firings inside the region defer invariant checking to this safe point
  // (mirrors ChaosTick's slice-boundary deferral).
  if (pending_invariant_check_.exchange(false) && invariants_ != nullptr) {
    const Status st = invariants_->CheckAll();
    if (!st.ok()) {
      ++invariant_violations_;
      if (first_violation_.ok()) {
        first_violation_ = st;
      }
    }
  }
  for (const Status& result : results) {
    EREBOR_RETURN_IF_ERROR(result);
  }
  return OkStatus();
}

void World::ThreadChaosTick(int cpu) {
  FaultInjector& injector = FaultInjector::Global();
  if (!chaos_ || !injector.Armed() || cpu < 0 || cpu >= machine_->num_cpus()) {
    return;
  }
  ++chaos_thread_slices_[static_cast<size_t>(cpu)];
  Cpu& vcpu = machine_->cpu(cpu);
  if (chaos_options_.host_preempt &&
      injector.Fire("host.preempt", FaultAction::kPreempt)) {
    // Host preemption of *this* vCPU at a thread-chosen point: one interrupt
    // delivery charged to the preempted vCPU itself. (Cross-CPU interrupt
    // injection stays driver-only — the InterruptController is not a per-thread
    // structure.)
    vcpu.cycles().Charge(vcpu.costs().interrupt_delivery);
  }
  // This vCPU's private stream decides whether the host also migrated the vCPU
  // across physical cores, going through a cold TLB: wall-clock-only (the TLB
  // charges no cycles), own-thread-safe, and — because the stream is consumed
  // once per tick regardless — deterministic per (seed, cpu, tick index), so a
  // sequential oracle replay flushes at exactly the same ticks.
  if (chaos_rngs_[static_cast<size_t>(cpu)].Next() % 16 == 0) {
    vcpu.tlb().FlushAll();
  }
}

Status World::RunUntil(const std::function<bool()>& done, uint64_t max_slices) {
  for (uint64_t i = 0; i < max_slices; ++i) {
    if (done()) {
      return OkStatus();
    }
    const bool ran = kernel_->RunOnce();
    if (chaos_) {
      ChaosTick();
    }
    if (!ran) {
      return done() ? OkStatus() : FailedPreconditionError("all tasks idle before done()");
    }
  }
  return FailedPreconditionError("RunUntil slice budget exhausted");
}

Status World::EnableChaos(const ChaosOptions& options) {
  if (monitor_ == nullptr) {
    return FailedPreconditionError("chaos requires an Erebor mode (the monitor owns "
                                   "the invariants under test)");
  }
  chaos_options_ = options;
  invariants_ = std::make_unique<InvariantChecker>(monitor_.get());
  const FaultSchedule schedule = options.schedule.rules.empty()
                                     ? FaultSchedule::Randomized(options.seed)
                                     : options.schedule;
  FaultInjector::Global().Arm(options.seed, schedule);
  // Re-arm the lock-discipline audit alongside the injector so a prior world's
  // violations (or held stacks from an aborted run) don't bleed into this soak.
  LockAudit::Global().Reset();
  // One private chaos stream per vCPU, derived from (seed, cpu id): no shared
  // RNG is ever touched from a vCPU thread, and each stream's consumption is a
  // pure function of that vCPU's own tick count, so the 64-seed soak replays
  // bit-identically under both execution engines.
  chaos_rngs_.clear();
  chaos_thread_slices_.assign(static_cast<size_t>(machine_->num_cpus()), 0);
  for (int cpu = 0; cpu < machine_->num_cpus(); ++cpu) {
    chaos_rngs_.emplace_back(options.seed ^
                             (0x9E3779B97F4A7C15ULL * (static_cast<uint64_t>(cpu) + 1)));
  }
  // A fault can fire mid-gate or mid-delivery, where PKRS is legitimately in flux;
  // checking there would false-positive. Defer to the next slice boundary instead.
  FaultInjector::Global().SetObserver(
      [this](const FiredFault&) { pending_invariant_check_ = true; });
  chaos_ = true;
  chaos_slice_ = 0;
  invariant_violations_ = 0;
  first_violation_ = OkStatus();
  return OkStatus();
}

void World::DisableChaos() {
  chaos_ = false;
  FaultInjector::Global().SetObserver(nullptr);
  FaultInjector::Global().Disarm();
}

void World::ChaosTick() {
  ++chaos_slice_;
  FaultInjector& injector = FaultInjector::Global();
  if (chaos_options_.host_preempt && injector.Armed() &&
      injector.Fire("host.preempt", FaultAction::kPreempt)) {
    // Preemption target: drawn from the per-CPU stream of the vCPU whose slice
    // this is, so the choice stays deterministic without any shared RNG (the
    // streams double as the vCPU-thread streams under the real-thread engine).
    const int slot = static_cast<int>(chaos_slice_) % machine_->num_cpus();
    const int target = chaos_rngs_.empty()
                           ? slot
                           : static_cast<int>(chaos_rngs_[static_cast<size_t>(slot)].Next() %
                                              static_cast<uint64_t>(machine_->num_cpus()));
    attacker_->PreemptGuest(target);
  }
  if (chaos_options_.host_dma_probe && injector.Armed() && monitor_ != nullptr) {
    const FaultDecision decision = injector.At("host.dma");
    if (decision.action == FaultAction::kFail) {
      // DMA probe of a fault-chosen frame: the IOMMU must refuse anything private.
      // A successful read of a non-shared frame is itself an invariant violation.
      const uint64_t frames = monitor_->frame_table().size();
      const FrameNum frame = frames == 0 ? 0 : decision.entropy % frames;
      uint8_t probe[16] = {};
      const Status dma = attacker_->DmaReadGuestMemory(AddrOf(frame), probe, sizeof(probe));
      if (dma.ok() && !machine_->memory().IsShared(frame)) {
        ++invariant_violations_;
        if (first_violation_.ok()) {
          first_violation_ = InternalError("host DMA read private frame " +
                                           std::to_string(frame));
        }
      } else {
        NoteFaultRecovered();
      }
    }
  }
  const bool cadence_due = chaos_options_.check_every_slices != 0 &&
                           chaos_slice_ % chaos_options_.check_every_slices == 0;
  if ((pending_invariant_check_.exchange(false) || cadence_due) &&
      invariants_ != nullptr) {
    const Status st = invariants_->CheckAll();
    if (!st.ok()) {
      ++invariant_violations_;
      if (first_violation_.ok()) {
        first_violation_ = st;
      }
    }
  }
}

}  // namespace erebor
