#include "src/libos/manifest.h"

#include <cctype>

#include "src/common/rng.h"
#include "src/crypto/sha256.h"

namespace erebor {

namespace {

std::string Trim(const std::string& s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

// Strips surrounding quotes if present.
std::string Unquote(const std::string& s) {
  if (s.size() >= 2 && s.front() == '"' && s.back() == '"') {
    return s.substr(1, s.size() - 2);
  }
  return s;
}

}  // namespace

StatusOr<uint64_t> ParseSize(const std::string& token) {
  if (token.empty()) {
    return InvalidArgumentError("empty size");
  }
  uint64_t multiplier = 1;
  std::string digits = token;
  const char suffix = static_cast<char>(std::toupper(
      static_cast<unsigned char>(token.back())));
  if (suffix == 'K' || suffix == 'M' || suffix == 'G') {
    multiplier = suffix == 'K' ? 1024ull : suffix == 'M' ? 1024ull * 1024 : 1ull << 30;
    digits = token.substr(0, token.size() - 1);
  }
  if (digits.empty()) {
    return InvalidArgumentError("size has no digits: " + token);
  }
  uint64_t value = 0;
  for (const char c : digits) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      return InvalidArgumentError("bad size: " + token);
    }
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  return value * multiplier;
}

StatusOr<LibosManifest> ParseManifest(const std::string& text) {
  LibosManifest manifest;
  size_t pos = 0;
  int line_number = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) {
      eol = text.size();
    }
    std::string line = Trim(text.substr(pos, eol - pos));
    pos = eol + 1;
    ++line_number;
    if (line.empty() || line[0] == '#') {
      continue;
    }
    const size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return InvalidArgumentError("manifest line " + std::to_string(line_number) +
                                  ": expected key = value");
    }
    const std::string key = Trim(line.substr(0, eq));
    const std::string value = Unquote(Trim(line.substr(eq + 1)));

    if (key == "name") {
      if (value.empty()) {
        return InvalidArgumentError("empty name");
      }
      manifest.name = value;
    } else if (key == "heap") {
      EREBOR_ASSIGN_OR_RETURN(manifest.heap_bytes, ParseSize(value));
    } else if (key == "threads") {
      EREBOR_ASSIGN_OR_RETURN(const uint64_t threads, ParseSize(value));
      if (threads == 0 || threads > 64) {
        return InvalidArgumentError("threads out of range");
      }
      manifest.num_threads = static_cast<int>(threads);
    } else if (key == "output_pad") {
      EREBOR_ASSIGN_OR_RETURN(manifest.output_pad_bytes, ParseSize(value));
      if (manifest.output_pad_bytes <= 8) {
        return InvalidArgumentError("output_pad must exceed the length prefix");
      }
    } else if (key == "preload") {
      const size_t colon = value.rfind(':');
      if (colon == std::string::npos || colon == 0) {
        return InvalidArgumentError("preload must be \"path:size\"");
      }
      const std::string path = value.substr(0, colon);
      EREBOR_ASSIGN_OR_RETURN(const uint64_t size, ParseSize(value.substr(colon + 1)));
      if (size > (64ull << 20)) {
        return InvalidArgumentError("preload file too large: " + path);
      }
      // Synthesize deterministic contents from the path.
      Bytes contents(size);
      Rng rng(Sha256::Hash(path)[0] | (size << 8));
      rng.Fill(contents.data(), contents.size());
      manifest.preload_files.emplace_back(path, std::move(contents));
    } else {
      return InvalidArgumentError("unknown manifest key: " + key);
    }
  }
  if (manifest.name.empty()) {
    return InvalidArgumentError("manifest missing required key: name");
  }
  return manifest;
}

}  // namespace erebor
