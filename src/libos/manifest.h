// Text-manifest front end for the LibOS toolchain (paper section 7: the provider
// describes the application in a Gramine-style manifest). A minimal key = value
// format with quoted strings, size suffixes and repeatable preload entries:
//
//   # llama.cpp service manifest
//   name = "llama"
//   heap = "6M"
//   threads = 4
//   output_pad = 4096
//   preload = "tokenizer.bin:4096"
//   preload = "labels.txt:2K"
#ifndef EREBOR_SRC_LIBOS_MANIFEST_H_
#define EREBOR_SRC_LIBOS_MANIFEST_H_

#include <string>

#include "src/libos/libos.h"

namespace erebor {

// Parses `text` into a manifest. Preloaded files are filled deterministically from
// their name (the provider ships real contents; the simulation synthesizes them).
// Unknown keys, malformed sizes, or garbage lines return kInvalidArgument.
StatusOr<LibosManifest> ParseManifest(const std::string& text);

// Parses "4096", "16K", "6M", "1G" into bytes.
StatusOr<uint64_t> ParseSize(const std::string& token);

}  // namespace erebor

#endif  // EREBOR_SRC_LIBOS_MANIFEST_H_
