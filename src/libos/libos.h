// Erebor's Library OS (the Gramine-derived toolchain of paper section 6.2/7).
//
// The LibOS emulates the four runtime services a sandboxed application needs after the
// kernel becomes unreachable: (1) heap memory management over pre-declared confined
// memory, (2) an in-memory stateless filesystem, (3) multi-threading with userspace
// spinlock synchronization (futexes are unavailable in a sealed sandbox), and (4) the
// client data channel through the monitor's /dev/erebor ioctl interface.
//
// Two backends share the application-facing API:
//  - kSandboxed: confined memory via the erebor driver, I/O via monitor ioctls;
//  - kNativeDirect: plain mmap + ramfs files (the LibOS-only and Native baselines).
#ifndef EREBOR_SRC_LIBOS_LIBOS_H_
#define EREBOR_SRC_LIBOS_LIBOS_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/kernel/kernel.h"
#include "src/monitor/monitor.h"

namespace erebor {

enum class LibosBackend : uint8_t { kNativeDirect, kSandboxed };

struct LibosManifest {
  std::string name;
  uint64_t heap_bytes = 8ull << 20;
  int num_threads = 1;
  uint64_t output_pad_bytes = 4096;
  // Files preloaded into the in-memory FS before client data arrives.
  std::vector<std::pair<std::string, Bytes>> preload_files;
};

// Userspace spinlock (SGX-SDK style, paper section 6.2): no futex exits, busy waiting
// charged as cycles.
class SpinLock {
 public:
  void set_charge(bool charge) { charge_ = charge; }
  bool TryAcquire(SyscallContext& ctx, int tid);
  void Release();
  bool held() const { return holder_ != -1; }
  uint64_t contention_spins() const { return contention_spins_; }

 private:
  int holder_ = -1;
  bool charge_ = true;
  uint64_t contention_spins_ = 0;
};

// Shared state of one LibOS instance (one application, possibly many threads).
class LibosEnv {
 public:
  // charge_overheads=false models the "Native" baseline where the application links
  // directly against the kernel ABI with no LibOS emulation layer in between.
  LibosEnv(LibosManifest manifest, LibosBackend backend, bool charge_overheads = true);

  const LibosManifest& manifest() const { return manifest_; }
  LibosBackend backend() const { return backend_; }

  // Leader-thread initialization: allocates + declares all memory up front, preloads
  // files, opens the monitor device (sandbox backend).
  Status Initialize(SyscallContext& ctx);
  bool initialized() const { return initialized_; }

  // ---- Clone fast path (warm starts, ROADMAP item 2) ----
  // Adopts the host-side bookkeeping of a template's fully initialized env —
  // heap cursors, memfs layout, io-buffer VAs — whose backing pages the clone
  // already shares copy-on-write at the same VAs. Run before AttachClone.
  void AdoptTemplateState(const LibosEnv& tmpl);
  // Replaces Initialize for clones: the arena rides in on the template's
  // CoW-shared pages, so the whole bring-up shrinks to opening this process's
  // own /dev/erebor fd (fds are per-task and cannot be cloned).
  Status AttachClone(SyscallContext& ctx);

  // ---- Heap (bump + free-list over the confined arena) ----
  StatusOr<Vaddr> Alloc(uint64_t size);
  Status Free(Vaddr va);
  uint64_t heap_used() const { return heap_used_; }

  // ---- In-memory stateless filesystem ----
  Status FileCreate(SyscallContext& ctx, const std::string& name, const Bytes& contents);
  StatusOr<Bytes> FileRead(SyscallContext& ctx, const std::string& name);
  bool FileExists(const std::string& name) const { return memfs_.count(name) > 0; }
  std::vector<std::string> FileList() const;

  // ---- Client data channel ----
  // kUnavailable("EAGAIN") when no input is pending yet.
  StatusOr<Bytes> RecvInput(SyscallContext& ctx, uint64_t max_len = 1ull << 20);
  Status SendOutput(SyscallContext& ctx, const Bytes& data);

  // ---- Threads / synchronization ----
  // Pre-spawns the manifest's worker threads (must run before client data arrives).
  Status SpawnWorkers(SyscallContext& ctx, const std::vector<ProgramFn>& workers);
  SpinLock& lock(size_t index);

  // Charges the small userspace-emulation overhead the LibOS adds per emulated call.
  void ChargeEmulation(SyscallContext& ctx, uint64_t calls = 1);
  // Per-work-item runtime tax (allocator/TLS/libc bookkeeping under the LibOS); one
  // unit is ~18 cycles. No-op in the Native baseline.
  void ChargeRuntime(SyscallContext& ctx, uint64_t units);

  // Scratch VA arena for workloads (valid after Initialize).
  Vaddr heap_base() const { return heap_base_; }
  int erebor_fd() const { return erebor_fd_; }

  // Statistics for Table 6.
  uint64_t emulated_calls() const { return emulated_calls_; }
  uint64_t spin_contention() const;

 private:
  struct MemFile {
    Vaddr data_va = 0;
    uint64_t size = 0;
    uint64_t capacity = 0;
  };

  struct FreeBlock {
    Vaddr va;
    uint64_t size;
  };

  LibosManifest manifest_;
  LibosBackend backend_;
  bool charge_overheads_;
  bool initialized_ = false;

  Vaddr heap_base_ = 0;
  uint64_t heap_limit_ = 0;
  uint64_t heap_cursor_ = 0;
  uint64_t heap_used_ = 0;
  std::vector<FreeBlock> free_list_;

  std::map<std::string, MemFile> memfs_;
  Vaddr io_buf_va_ = 0;     // reusable channel buffer (polling must not leak heap)
  uint64_t io_buf_cap_ = 0;
  Vaddr io_req_va_ = 0;     // reusable 16-byte ioctl request
  std::vector<std::unique_ptr<SpinLock>> locks_;
  int erebor_fd_ = -1;
  int io_in_fd_ = -1;   // native backend: ramfs-based channel
  int io_out_fd_ = -1;
  uint64_t emulated_calls_ = 0;
};

// Fixed VA where the LibOS places the confined arena inside a sandbox.
inline constexpr Vaddr kLibosArenaBase = 0x0000200000000000ULL;
// Fixed VA where common regions are attached.
inline constexpr Vaddr kLibosCommonBase = 0x0000300000000000ULL;

}  // namespace erebor

#endif  // EREBOR_SRC_LIBOS_LIBOS_H_
