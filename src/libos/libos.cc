#include "src/libos/libos.h"

#include <cstring>

#include "src/common/log.h"

namespace erebor {

namespace {
// Cycle cost of one LibOS userspace-emulated call (no kernel transition; this is why
// the LibOS-only configuration is cheap, Figure 9).
constexpr Cycles kEmulationCost = 95;
constexpr Cycles kSpinTryCost = 40;
}  // namespace

bool SpinLock::TryAcquire(SyscallContext& ctx, int tid) {
  if (charge_) {
    ctx.Compute(kSpinTryCost);
  }
  if (holder_ == -1) {
    holder_ = tid;
    return true;
  }
  ++contention_spins_;
  return false;
}

void SpinLock::Release() { holder_ = -1; }

LibosEnv::LibosEnv(LibosManifest manifest, LibosBackend backend, bool charge_overheads)
    : manifest_(std::move(manifest)),
      backend_(backend),
      charge_overheads_(charge_overheads) {
  for (int i = 0; i < 64; ++i) {
    locks_.push_back(std::make_unique<SpinLock>());
    locks_.back()->set_charge(charge_overheads_);
  }
}

Status LibosEnv::Initialize(SyscallContext& ctx) {
  if (initialized_) {
    return OkStatus();
  }
  // Runtime bootstrap (loader, relocation, manifest parsing) — identical in every
  // mode; keeps initialization from being purely memory-bound.
  ctx.Compute(2'000'000);
  const uint64_t arena = PageAlignUp(manifest_.heap_bytes);
  heap_base_ = kLibosArenaBase;
  heap_limit_ = arena;
  heap_cursor_ = 0;

  if (backend_ == LibosBackend::kSandboxed) {
    // Open the monitor device and declare the whole arena as confined memory; the
    // monitor pre-populates and pins it (no page faults at runtime).
    const std::string dev = "/dev/erebor";
    // Bootstrap subtlety: arena VAs are not declared yet, so the open()/declare path
    // uses a kernel-visible staging page.
    EREBOR_ASSIGN_OR_RETURN(
        const Vaddr staging,
        ctx.task().aspace->CreateVma(kPageSize, pte::kPresent | pte::kUser |
                                                    pte::kWritable | pte::kNoExecute,
                                     VmaKind::kAnon));
    EREBOR_RETURN_IF_ERROR(ctx.WriteUser(
        staging, reinterpret_cast<const uint8_t*>(dev.data()), dev.size()));
    EREBOR_ASSIGN_OR_RETURN(const uint64_t fd,
                            ctx.Syscall(sys::kOpen, staging, dev.size(), 0));
    erebor_fd_ = static_cast<int>(fd);

    // ioctl(DECLARE_CONFINED, {va, len}) via the staging page.
    uint8_t req[16];
    StoreLe64(req, heap_base_);
    StoreLe64(req + 8, arena);
    EREBOR_RETURN_IF_ERROR(ctx.WriteUser(staging, req, sizeof(req)));
    EREBOR_RETURN_IF_ERROR(
        ctx.Syscall(sys::kIoctl, fd, emc_ioctl::kDeclareConfined, staging).status());
  } else {
    // Native/LibOS-only: a populated anonymous mmap at the same VA.
    EREBOR_RETURN_IF_ERROR(ctx.Syscall(sys::kMmap, heap_base_, arena,
                                       sys::kProtRead | sys::kProtWrite,
                                       sys::kMapPopulate)
                               .status());
  }

  // Preload files into the in-memory FS (mount points created before client data).
  for (const auto& [name, contents] : manifest_.preload_files) {
    EREBOR_RETURN_IF_ERROR(FileCreate(ctx, name, contents));
  }

  if (backend_ == LibosBackend::kNativeDirect) {
    // The native baseline exchanges "client" data through ramfs files.
    const std::string in_path = manifest_.name + ".client_input";
    const std::string out_path = manifest_.name + ".client_output";
    EREBOR_ASSIGN_OR_RETURN(
        const Vaddr staging,
        ctx.task().aspace->CreateVma(kPageSize, pte::kPresent | pte::kUser |
                                                    pte::kWritable | pte::kNoExecute,
                                     VmaKind::kAnon));
    EREBOR_RETURN_IF_ERROR(ctx.WriteUser(
        staging, reinterpret_cast<const uint8_t*>(in_path.data()), in_path.size()));
    EREBOR_ASSIGN_OR_RETURN(const uint64_t in_fd,
                            ctx.Syscall(sys::kOpen, staging, in_path.size(), 1));
    io_in_fd_ = static_cast<int>(in_fd);
    EREBOR_RETURN_IF_ERROR(ctx.WriteUser(
        staging, reinterpret_cast<const uint8_t*>(out_path.data()), out_path.size()));
    EREBOR_ASSIGN_OR_RETURN(const uint64_t out_fd,
                            ctx.Syscall(sys::kOpen, staging, out_path.size(), 1));
    io_out_fd_ = static_cast<int>(out_fd);
  }

  initialized_ = true;
  return OkStatus();
}

void LibosEnv::AdoptTemplateState(const LibosEnv& tmpl) {
  heap_base_ = tmpl.heap_base_;
  heap_limit_ = tmpl.heap_limit_;
  heap_cursor_ = tmpl.heap_cursor_;
  heap_used_ = tmpl.heap_used_;
  free_list_ = tmpl.free_list_;
  memfs_ = tmpl.memfs_;
  io_buf_va_ = tmpl.io_buf_va_;
  io_buf_cap_ = tmpl.io_buf_cap_;
  io_req_va_ = tmpl.io_req_va_;
}

Status LibosEnv::AttachClone(SyscallContext& ctx) {
  if (initialized_) {
    return OkStatus();
  }
  if (backend_ != LibosBackend::kSandboxed) {
    return FailedPreconditionError("clone attach only exists for the sandboxed backend");
  }
  if (heap_base_ == 0) {
    return FailedPreconditionError("AdoptTemplateState must run before AttachClone");
  }
  // No 2M-cycle bootstrap, no DECLARE_CONFINED, no preloads: all of that state
  // arrived with the template's pages. Only the per-process device fd remains.
  const std::string dev = "/dev/erebor";
  EREBOR_ASSIGN_OR_RETURN(
      const Vaddr staging,
      ctx.task().aspace->CreateVma(kPageSize, pte::kPresent | pte::kUser |
                                                  pte::kWritable | pte::kNoExecute,
                                   VmaKind::kAnon));
  EREBOR_RETURN_IF_ERROR(ctx.WriteUser(
      staging, reinterpret_cast<const uint8_t*>(dev.data()), dev.size()));
  EREBOR_ASSIGN_OR_RETURN(const uint64_t fd,
                          ctx.Syscall(sys::kOpen, staging, dev.size(), 0));
  erebor_fd_ = static_cast<int>(fd);
  initialized_ = true;
  return OkStatus();
}

StatusOr<Vaddr> LibosEnv::Alloc(uint64_t size) {
  size = (size + 15) & ~15ull;
  // First-fit over the free list.
  for (size_t i = 0; i < free_list_.size(); ++i) {
    if (free_list_[i].size >= size) {
      const Vaddr va = free_list_[i].va;
      free_list_[i].va += size;
      free_list_[i].size -= size;
      if (free_list_[i].size == 0) {
        free_list_.erase(free_list_.begin() + i);
      }
      heap_used_ += size;
      return va;
    }
  }
  if (heap_cursor_ + size > heap_limit_) {
    return ResourceExhaustedError("LibOS heap exhausted (" +
                                  std::to_string(heap_limit_) + " bytes)");
  }
  const Vaddr va = heap_base_ + heap_cursor_;
  heap_cursor_ += size;
  heap_used_ += size;
  return va;
}

Status LibosEnv::Free(Vaddr va) {
  // Coarse free: the mini-allocator does not track sizes per block; freeing returns
  // nothing to the pool (matches the stateless one-shot execution model where the
  // whole sandbox is zeroized after the session).
  return OkStatus();
}

Status LibosEnv::FileCreate(SyscallContext& ctx, const std::string& name,
                            const Bytes& contents) {
  ChargeEmulation(ctx);
  MemFile file;
  file.capacity = PageAlignUp(contents.size() + 1);
  EREBOR_ASSIGN_OR_RETURN(file.data_va, Alloc(file.capacity));
  file.size = contents.size();
  if (!contents.empty()) {
    EREBOR_RETURN_IF_ERROR(ctx.WriteUser(file.data_va, contents.data(), contents.size()));
  }
  memfs_[name] = file;
  return OkStatus();
}

StatusOr<Bytes> LibosEnv::FileRead(SyscallContext& ctx, const std::string& name) {
  ChargeEmulation(ctx);
  const auto it = memfs_.find(name);
  if (it == memfs_.end()) {
    return NotFoundError("libos memfs: no file " + name);
  }
  Bytes out(it->second.size);
  if (!out.empty()) {
    EREBOR_RETURN_IF_ERROR(ctx.ReadUser(it->second.data_va, out.data(), out.size()));
  }
  return out;
}

std::vector<std::string> LibosEnv::FileList() const {
  std::vector<std::string> names;
  for (const auto& [name, _] : memfs_) {
    names.push_back(name);
  }
  return names;
}

StatusOr<Bytes> LibosEnv::RecvInput(SyscallContext& ctx, uint64_t max_len) {
  ChargeEmulation(ctx);
  if (backend_ == LibosBackend::kSandboxed) {
    if (io_req_va_ == 0) {
      EREBOR_ASSIGN_OR_RETURN(io_req_va_, Alloc(16));
    }
    if (io_buf_cap_ < max_len) {
      EREBOR_ASSIGN_OR_RETURN(io_buf_va_, Alloc(max_len));
      io_buf_cap_ = max_len;
    }
    uint8_t req[16];
    StoreLe64(req, io_buf_va_);
    StoreLe64(req + 8, max_len);
    EREBOR_RETURN_IF_ERROR(ctx.WriteUser(io_req_va_, req, sizeof(req)));
    EREBOR_ASSIGN_OR_RETURN(const uint64_t n, ctx.Syscall(sys::kIoctl, erebor_fd_,
                                                          emc_ioctl::kInput, io_req_va_));
    Bytes data(n);
    EREBOR_RETURN_IF_ERROR(ctx.ReadUser(io_buf_va_, data.data(), n));
    return data;
  }
  // Native: read the whole input file.
  Bytes data;
  uint8_t chunk[4096];
  EREBOR_ASSIGN_OR_RETURN(
      const Vaddr staging,
      ctx.task().aspace->CreateVma(kPageSize, pte::kPresent | pte::kUser |
                                                  pte::kWritable | pte::kNoExecute,
                                   VmaKind::kAnon));
  while (true) {
    EREBOR_ASSIGN_OR_RETURN(const uint64_t n,
                            ctx.Syscall(sys::kRead, io_in_fd_, staging, sizeof(chunk)));
    if (n == 0) {
      break;
    }
    EREBOR_RETURN_IF_ERROR(ctx.ReadUser(staging, chunk, n));
    data.insert(data.end(), chunk, chunk + n);
  }
  if (data.empty()) {
    return UnavailableError("EAGAIN");
  }
  return data;
}

Status LibosEnv::SendOutput(SyscallContext& ctx, const Bytes& data) {
  ChargeEmulation(ctx);
  if (backend_ == LibosBackend::kSandboxed) {
    if (io_req_va_ == 0) {
      EREBOR_ASSIGN_OR_RETURN(io_req_va_, Alloc(16));
    }
    if (io_buf_cap_ < data.size()) {
      EREBOR_ASSIGN_OR_RETURN(io_buf_va_, Alloc(data.size()));
      io_buf_cap_ = data.size();
    }
    EREBOR_RETURN_IF_ERROR(ctx.WriteUser(io_buf_va_, data.data(), data.size()));
    uint8_t req[16];
    StoreLe64(req, io_buf_va_);
    StoreLe64(req + 8, data.size());
    EREBOR_RETURN_IF_ERROR(ctx.WriteUser(io_req_va_, req, sizeof(req)));
    return ctx.Syscall(sys::kIoctl, erebor_fd_, emc_ioctl::kOutput, io_req_va_).status();
  }
  EREBOR_ASSIGN_OR_RETURN(
      const Vaddr staging,
      ctx.task().aspace->CreateVma(PageAlignUp(std::max<uint64_t>(data.size(), 1)),
                                   pte::kPresent | pte::kUser | pte::kWritable |
                                       pte::kNoExecute,
                                   VmaKind::kAnon));
  EREBOR_RETURN_IF_ERROR(ctx.WriteUser(staging, data.data(), data.size()));
  return ctx.Syscall(sys::kWrite, io_out_fd_, staging, data.size()).status();
}

Status LibosEnv::SpawnWorkers(SyscallContext& ctx, const std::vector<ProgramFn>& workers) {
  for (const auto& worker : workers) {
    const uint64_t token = StashProgram(worker);
    EREBOR_RETURN_IF_ERROR(ctx.Syscall(sys::kClone, token).status());
  }
  return OkStatus();
}

SpinLock& LibosEnv::lock(size_t index) { return *locks_[index % locks_.size()]; }

void LibosEnv::ChargeEmulation(SyscallContext& ctx, uint64_t calls) {
  emulated_calls_ += calls;
  if (charge_overheads_) {
    ctx.Compute(kEmulationCost * calls);
  }
}

void LibosEnv::ChargeRuntime(SyscallContext& ctx, uint64_t units) {
  if (charge_overheads_) {
    ctx.Compute(18 * units);
  }
}

uint64_t LibosEnv::spin_contention() const {
  uint64_t total = 0;
  for (const auto& lock : locks_) {
    total += lock->contention_spins();
  }
  return total;
}

}  // namespace erebor
