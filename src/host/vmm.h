// The untrusted host hypervisor (KVM stand-in) plus its device models.
//
// The host services synchronous CVM exits (VMCALLs through the GHCI), injects external
// interrupts, and runs the virtual network that the in-guest proxy uses to talk to
// remote clients. It is *untrusted*: an attack harness (host/attacks.h) drives the same
// interfaces maliciously to validate the CVM protections.
#ifndef EREBOR_SRC_HOST_VMM_H_
#define EREBOR_SRC_HOST_VMM_H_

#include <deque>
#include <map>

#include "src/hw/machine.h"
#include "src/tdx/tdx_module.h"

namespace erebor {

// A host-side bidirectional packet pipe: the "physical network" between the CVM's
// virtio-net device and remote clients.
class HostNetwork {
 public:
  // Guest -> world. Fault point "net.to_world": the host may drop, duplicate,
  // reorder, corrupt, or truncate any packet it carries — confidentiality and
  // session progress must survive all of it.
  void GuestTransmit(Bytes packet);
  StatusOr<Bytes> WorldReceive();

  // World -> guest. Fault point "net.to_guest" (same adversarial actions).
  void WorldTransmit(Bytes packet);
  StatusOr<Bytes> GuestReceive();

  bool HasForGuest() const { return !to_guest_.empty(); }
  size_t world_pending() const { return to_world_.size(); }

  // The host can observe (sniff) every packet: confidentiality must come from the
  // monitor<->client channel encryption, not the transport.
  const std::deque<Bytes>& SniffToWorld() const { return to_world_; }
  const std::deque<Bytes>& SniffToGuest() const { return to_guest_; }

 private:
  std::deque<Bytes> to_world_;
  std::deque<Bytes> to_guest_;
};

class HostVmm : public VmcallSink {
 public:
  HostVmm(Machine* machine, TdxModule* tdx);

  HostNetwork& network() { return network_; }

  // ---- VmcallSink ----
  GhciResponse HandleVmcall(const GhciRequest& request) override;

  // Injects a device interrupt into a guest CPU (asynchronous exit + re-entry).
  void InjectDeviceInterrupt(int cpu_index);

  uint64_t cpuid_requests() const { return cpuid_requests_; }
  uint64_t net_tx_packets() const { return net_tx_packets_; }

 private:
  Machine* machine_;
  TdxModule* tdx_;
  HostNetwork network_;
  uint64_t cpuid_requests_ = 0;
  uint64_t net_tx_packets_ = 0;
};

}  // namespace erebor

#endif  // EREBOR_SRC_HOST_VMM_H_
