#include "src/host/vmm.h"

namespace erebor {

StatusOr<Bytes> HostNetwork::WorldReceive() {
  if (to_world_.empty()) {
    return NotFoundError("no packet pending for world");
  }
  Bytes packet = std::move(to_world_.front());
  to_world_.pop_front();
  return packet;
}

StatusOr<Bytes> HostNetwork::GuestReceive() {
  if (to_guest_.empty()) {
    return NotFoundError("no packet pending for guest");
  }
  Bytes packet = std::move(to_guest_.front());
  to_guest_.pop_front();
  return packet;
}

HostVmm::HostVmm(Machine* machine, TdxModule* tdx) : machine_(machine), tdx_(tdx) {}

GhciResponse HostVmm::HandleVmcall(const GhciRequest& request) {
  GhciResponse response;
  switch (request.reason) {
    case GhciReason::kCpuid: {
      ++cpuid_requests_;
      // A fixed, synthetic CPUID surface: family/model in ret0, feature bits in ret1.
      response.ret0 = 0x000806F8;  // Emerald Rapids-ish signature
      response.ret1 = 0xBFEBFBFF;
      break;
    }
    case GhciReason::kMmioRead:
      response.ret0 = 0;  // devices return zero for unmapped MMIO
      break;
    case GhciReason::kMmioWrite:
      break;
    case GhciReason::kNetTx: {
      // The guest placed a packet in *shared* memory at arg0 (length arg1); the host
      // device DMA-reads it. DMA enforcement rejects private frames.
      Bytes packet(request.arg1);
      const Status st = machine_->dma().DeviceRead(request.arg0, packet.data(), packet.size());
      if (st.ok()) {
        ++net_tx_packets_;
        network_.GuestTransmit(std::move(packet));
        response.ret0 = 1;
      } else {
        response.ret0 = 0;  // transmission failed (blocked by IOMMU)
      }
      break;
    }
    case GhciReason::kNetRx: {
      auto packet = network_.GuestReceive();
      if (packet.ok()) {
        response.payload = std::move(*packet);
        response.ret0 = response.payload.size();
      } else {
        response.ret0 = 0;
      }
      break;
    }
    case GhciReason::kHalt:
      break;
  }
  return response;
}

void HostVmm::InjectDeviceInterrupt(int cpu_index) {
  machine_->interrupts().Inject(cpu_index, Vector::kDevice);
}

}  // namespace erebor
