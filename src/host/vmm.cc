#include "src/host/vmm.h"

#include "src/common/faultpoint.h"

namespace erebor {

namespace {

// Applies an injected network fault to a packet bound for `queue`. Returns true if
// the packet was consumed (dropped); otherwise the caller enqueues normally (the
// corrupt/truncate actions mutate it in place, duplicate/reorder touch the queue).
bool ApplyNetFault(const char* site, Bytes& packet, std::deque<Bytes>& queue) {
  const FaultDecision decision = FaultInjector::Global().At(site);
  switch (decision.action) {
    case FaultAction::kDrop:
      return true;
    case FaultAction::kDuplicate:
      queue.push_back(packet);
      return false;
    case FaultAction::kReorder:
      // Jump the queue: this packet overtakes everything already in flight.
      queue.push_front(std::move(packet));
      return true;
    case FaultAction::kCorrupt:
      if (!packet.empty()) {
        packet[decision.entropy % packet.size()] ^=
            static_cast<uint8_t>(1 + (decision.entropy >> 8) % 255);
      }
      return false;
    case FaultAction::kTruncate:
      if (!packet.empty()) {
        packet.resize(decision.entropy % packet.size());
      }
      return false;
    default:
      return false;
  }
}

}  // namespace

void HostNetwork::GuestTransmit(Bytes packet) {
  if (FaultInjector::Armed() && ApplyNetFault("net.to_world", packet, to_world_)) {
    return;
  }
  to_world_.push_back(std::move(packet));
}

void HostNetwork::WorldTransmit(Bytes packet) {
  if (FaultInjector::Armed() && ApplyNetFault("net.to_guest", packet, to_guest_)) {
    return;
  }
  to_guest_.push_back(std::move(packet));
}

StatusOr<Bytes> HostNetwork::WorldReceive() {
  if (to_world_.empty()) {
    return NotFoundError("no packet pending for world");
  }
  Bytes packet = std::move(to_world_.front());
  to_world_.pop_front();
  return packet;
}

StatusOr<Bytes> HostNetwork::GuestReceive() {
  if (to_guest_.empty()) {
    return NotFoundError("no packet pending for guest");
  }
  Bytes packet = std::move(to_guest_.front());
  to_guest_.pop_front();
  return packet;
}

HostVmm::HostVmm(Machine* machine, TdxModule* tdx) : machine_(machine), tdx_(tdx) {}

GhciResponse HostVmm::HandleVmcall(const GhciRequest& request) {
  GhciResponse response;
  switch (request.reason) {
    case GhciReason::kCpuid: {
      ++cpuid_requests_;
      // A fixed, synthetic CPUID surface: family/model in ret0, feature bits in ret1.
      response.ret0 = 0x000806F8;  // Emerald Rapids-ish signature
      response.ret1 = 0xBFEBFBFF;
      break;
    }
    case GhciReason::kMmioRead:
      response.ret0 = 0;  // devices return zero for unmapped MMIO
      break;
    case GhciReason::kMmioWrite:
      break;
    case GhciReason::kNetTx: {
      // The guest placed a packet in *shared* memory at arg0 (length arg1); the host
      // device DMA-reads it. DMA enforcement rejects private frames.
      Bytes packet(request.arg1);
      const Status st = machine_->dma().DeviceRead(request.arg0, packet.data(), packet.size());
      if (st.ok()) {
        ++net_tx_packets_;
        network_.GuestTransmit(std::move(packet));
        response.ret0 = 1;
      } else {
        response.ret0 = 0;  // transmission failed (blocked by IOMMU)
      }
      break;
    }
    case GhciReason::kNetRx: {
      auto packet = network_.GuestReceive();
      if (packet.ok()) {
        response.payload = std::move(*packet);
        response.ret0 = response.payload.size();
      } else {
        response.ret0 = 0;
      }
      break;
    }
    case GhciReason::kHalt:
      break;
  }
  return response;
}

void HostVmm::InjectDeviceInterrupt(int cpu_index) {
  machine_->interrupts().Inject(cpu_index, Vector::kDevice);
}

}  // namespace erebor
