// Host-side attack harness: drives the untrusted-host interfaces maliciously so the
// security tests can check that each attempt is blocked by the simulated protections.
#ifndef EREBOR_SRC_HOST_ATTACKS_H_
#define EREBOR_SRC_HOST_ATTACKS_H_

#include "src/host/vmm.h"

namespace erebor {

class HostAttacker {
 public:
  HostAttacker(Machine* machine, TdxModule* tdx) : machine_(machine), tdx_(tdx) {}

  // AV (traditional CVM threat): host directs a device to DMA-read guest memory.
  // Succeeds only for shared frames.
  Status DmaReadGuestMemory(Paddr gpa, uint8_t* out, uint64_t len) {
    return machine_->dma().DeviceRead(gpa, out, len);
  }

  // Host snapshot of a guest vCPU's registers across an asynchronous exit. The TDX
  // module scrubs them, so the attacker sees zeros while the guest is saved.
  Gprs SnoopGuestRegisters(int cpu_index) {
    return tdx_->HostVisibleGuestState(machine_->cpu(cpu_index));
  }

  // Host injects a device interrupt to preempt the guest at an arbitrary point.
  void PreemptGuest(int cpu_index) {
    machine_->interrupts().Inject(cpu_index, Vector::kDevice);
  }

 private:
  Machine* machine_;
  TdxModule* tdx_;
};

}  // namespace erebor

#endif  // EREBOR_SRC_HOST_ATTACKS_H_
