// Simulated locking for the EMC dispatch layer, with a real-mutex backing for
// the kRealThreads execution engine.
//
// Under the deterministic engine the simulation is single-threaded, so these
// locks never block a host thread. What they model is the *serialization cost*
// of concurrent EMC service across vCPUs: every lock remembers the simulated
// cycle at which its last critical section ended (`free_at_`), and — when
// contention simulation is enabled — an acquiring vCPU whose own clock is
// behind that point is charged the wait. Two determinism rules make this safe
// to leave compiled in everywhere:
//
//   1. Uncontended acquire/release charge ZERO cycles. The real acquire cost is
//      already folded into the paper's 1224-cycle EMC round trip (Table 3), so
//      single-vCPU runs — and any run with contention simulation off, which is
//      the default — are bit-identical to the pre-lock monitor.
//   2. Every charge is a pure function of the per-vCPU cycle clocks at the
//      acquire site. No host time, no RNG: a replay with the same schedule
//      charges the same waits.
//
// Under ExecutionEngine::real_threads() every SimLock is backed by a real
// std::mutex: Acquire blocks the calling OS thread, Release unlocks it, and the
// same LockAudit rank discipline is enforced with the same lock-site names. Real
// contention is *observed* (real_contended_ / real_wait_ns_) but never charged
// as simulated cycles and never traced as kLockContend — wall-clock ordering may
// differ between runs, charged cycles may not, so a threaded run stays counter-
// and cycle-identical to a single-thread run with contention simulation off.
//
// Locks are chaos-preemptible: when the fault injector is armed, the sites
// "lock.acquire" / "lock.release" fire at every boundary crossing, and a
// kPreempt decision charges one interrupt delivery (the host yanked the vCPU at
// the lock edge). Firings land in the fault journal, so lock-boundary
// preemptions replay bit-identically from the seed.
//
// LockAudit (a process-global, like Tracer) tracks which locks each vCPU holds
// and enforces the discipline the invariant checker audits:
//   - acquisition order: sandbox locks < monitor-state lock < frame shards in
//     ascending shard index (the global lock, used in kGlobal mode, ranks below
//     everything and is the only lock taken in that mode);
//   - no EMC body mutates a sandbox or applies a PTE without holding that
//     sandbox's lock / that frame shard's lock (checked at the mutation sites);
//   - all locks are released by the time a dispatch returns (checked at safe
//     points between scheduler slices).
#ifndef EREBOR_SRC_MONITOR_SIM_LOCK_H_
#define EREBOR_SRC_MONITOR_SIM_LOCK_H_

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/hw/cycles.h"

namespace erebor {

class Cpu;

// Lock ranks, ascending acquisition order. Within kRankSandbox and
// kRankFrameShard, the sub-id (sandbox id / shard index) must also ascend.
enum LockRank : int {
  kRankGlobal = -1,       // kGlobal mode: the only lock, taken before anything
  kRankSandbox = 0,       // per-sandbox serialization
  kRankMonitorState = 1,  // CR/MSR/IDT/tdcall/text state
  kRankFrameShard = 2,    // frame-table shard i ranks kRankFrameShard + i
};

class SimLock {
 public:
  SimLock() : mu_(std::make_shared<std::mutex>()) {}
  SimLock(std::string name, int rank, int sub = 0)
      : name_(std::move(name)), rank_(rank), sub_(sub),
        mu_(std::make_shared<std::mutex>()) {}

  // Acquires on `cpu`. When `simulate_contention`, charges the cycles until the
  // lock's last release point if the acquiring vCPU's clock is behind it. Under
  // real_threads(), blocks on the backing mutex instead; simulated waits are
  // never charged there (the wait is real).
  void Acquire(Cpu& cpu, bool simulate_contention);
  void Release(Cpu& cpu, bool simulate_contention);

  const std::string& name() const { return name_; }
  int rank() const { return rank_; }
  int sub() const { return sub_; }
  bool held() const { return held_; }
  int holder() const { return holder_; }

  uint64_t acquisitions() const { return acquisitions_; }
  uint64_t contended() const { return contended_; }
  Cycles contention_cycles() const { return contention_cycles_; }
  // Real-thread contention observations (not part of the simulated cycle model;
  // the emc_scaling bench reports them alongside wall-clock throughput).
  uint64_t real_contended() const { return real_contended_; }
  uint64_t real_wait_ns() const { return real_wait_ns_; }

 private:
  std::string name_;
  int rank_ = kRankMonitorState;
  int sub_ = 0;
  Cycles free_at_ = 0;  // simulated end of the last critical section
  bool held_ = false;
  int holder_ = -1;
  uint64_t acquisitions_ = 0;
  uint64_t contended_ = 0;
  Cycles contention_cycles_ = 0;
  uint64_t real_contended_ = 0;
  uint64_t real_wait_ns_ = 0;
  // Backing mutex for kRealThreads. shared_ptr keeps SimLock copy-assignable
  // (EmcLockTable builds its shard array by assignment at construction time,
  // strictly before any thread exists); every named construction gets a fresh
  // mutex, so no two distinct locks ever share one.
  std::shared_ptr<std::mutex> mu_;
};

// RAII acquisition; movable so helpers can hand guards out. A default-built
// guard holds nothing (used when a lock is already covered, e.g. kGlobal mode).
class SimLockGuard {
 public:
  SimLockGuard() = default;
  SimLockGuard(SimLock* lock, Cpu* cpu, bool simulate_contention)
      : lock_(lock), cpu_(cpu), simulate_(simulate_contention) {
    if (lock_ != nullptr) {
      lock_->Acquire(*cpu_, simulate_);
    }
  }
  ~SimLockGuard() { reset(); }
  SimLockGuard(SimLockGuard&& other) noexcept { *this = std::move(other); }
  SimLockGuard& operator=(SimLockGuard&& other) noexcept {
    if (this != &other) {
      reset();
      lock_ = other.lock_;
      cpu_ = other.cpu_;
      simulate_ = other.simulate_;
      other.lock_ = nullptr;
    }
    return *this;
  }
  SimLockGuard(const SimLockGuard&) = delete;
  SimLockGuard& operator=(const SimLockGuard&) = delete;

  void reset() {
    if (lock_ != nullptr) {
      lock_->Release(*cpu_, simulate_);
      lock_ = nullptr;
    }
  }

 private:
  SimLock* lock_ = nullptr;
  Cpu* cpu_ = nullptr;
  bool simulate_ = false;
};

// Process-global lock-discipline bookkeeping. Tracks the per-vCPU held stack
// and counts violations; the invariant checker's lock family asserts the stacks
// are empty at safe points and that no violation was ever recorded.
class LockAudit {
 public:
  // Upper bound on simulated vCPUs; per-CPU held stacks are a fixed array so a
  // vCPU thread can reach its own stack without racing a resize triggered by a
  // peer (each thread only ever touches its own stack, violation counters are
  // relaxed-atomic bumps).
  static constexpr int kMaxCpus = 64;

  static LockAudit& Global();

  // Drops held stacks and violation counters (worlds arm this between runs so
  // one run's bug does not bleed into the next assertion).
  void Reset();

  // Called by SimLock. Checks rank/sub ordering against the holder's stack.
  void NoteAcquire(int cpu, const SimLock* lock);
  void NoteRelease(int cpu, const SimLock* lock);

  // Discipline probes at mutation sites. The check passes when this vCPU holds
  // the matching lock — or the global lock, which covers everything in kGlobal
  // mode. Both record a violation instead of failing, so the invariant checker
  // reports them at the next safe point.
  void ExpectSandboxHeld(int cpu, int sandbox_id);
  void ExpectFrameShardHeld(int cpu, int shard);

  // True when `cpu` holds no locks (a dispatch in flight holds some; a safe
  // point between slices must hold none).
  bool NothingHeld(int cpu) const;

  uint64_t ordering_violations() const;
  uint64_t unheld_violations() const;
  uint64_t violations() const { return ordering_violations() + unheld_violations(); }

 private:
  LockAudit() = default;
  struct Held {
    const SimLock* lock;
    int rank;
    int sub;
  };
  std::vector<Held>& StackFor(int cpu);
  bool Holds(int cpu, int rank, int sub) const;

  std::array<std::vector<Held>, kMaxCpus> held_;  // indexed by vCPU
  uint64_t ordering_violations_ = 0;  // bumped via CounterAdd (thread-safe)
  uint64_t unheld_violations_ = 0;
};

// The monitor's lock table: one global lock (kGlobal mode), the monitor-state
// lock, and the sharded frame-table locks (kSharded mode; per-sandbox locks
// live on the Sandbox itself). Frame shards are 2 MiB granules of the physical
// frame space modulo kFrameShards, so contiguous allocations (one sandbox's
// page tables and confined runs) mostly stay within one shard while distinct
// sandboxes land on distinct shards.
enum class EmcLocking : uint8_t { kGlobal, kSharded };

class EmcLockTable {
 public:
  static constexpr int kFrameShards = 16;

  EmcLockTable();

  EmcLocking mode() const { return mode_; }
  void set_mode(EmcLocking mode) { mode_ = mode; }
  // Contention simulation is opt-in (the emc_scaling bench turns it on); the
  // default keeps every existing single-vCPU figure bit-identical.
  bool simulate_contention() const { return simulate_contention_; }
  void set_simulate_contention(bool on) { simulate_contention_ = on; }

  static int ShardOf(uint64_t frame) {
    return static_cast<int>((frame >> 9) % kFrameShards);  // 512-frame granules
  }

  SimLock& global() { return global_; }
  SimLock& monitor_state() { return monitor_state_; }
  SimLock& shard(int i) { return shards_[static_cast<size_t>(i)]; }

  // Guard helpers for dispatch bodies that discover their target mid-flight
  // (channel packet handling). In kGlobal mode the dispatch-held global lock
  // already covers the sandbox, so these return an empty guard.
  SimLockGuard SandboxGuard(Cpu& cpu, SimLock& sandbox_lock) {
    if (mode_ == EmcLocking::kGlobal) {
      return SimLockGuard();
    }
    return SimLockGuard(&sandbox_lock, &cpu, simulate_contention_);
  }

 private:
  EmcLocking mode_ = EmcLocking::kSharded;
  bool simulate_contention_ = false;
  SimLock global_;
  SimLock monitor_state_;
  std::array<SimLock, kFrameShards> shards_;
};

}  // namespace erebor

#endif  // EREBOR_SRC_MONITOR_SIM_LOCK_H_
