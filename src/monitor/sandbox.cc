#include "src/monitor/sandbox.h"

#include <cstring>

#include "src/common/faultpoint.h"
#include "src/common/log.h"
#include "src/common/metrics.h"
#include "src/common/trace.h"

namespace erebor {

namespace {

// Lock-discipline probe at every sandbox mutation entry point: a gated (EMC)
// caller must hold this sandbox's lock (or the global lock in kGlobal mode).
// Non-gated monitor paths — the syscall interposer's kill/teardown, the kill
// observer's quarantine — run outside the gates and are exempt: they execute at
// a point where no EMC is in flight for the sandbox.
void NoteSandboxMutation(Cpu& cpu, const Sandbox& sandbox) {
  if (cpu.in_monitor()) {
    LockAudit::Global().ExpectSandboxHeld(cpu.index(), sandbox.id);
  }
}

}  // namespace

SandboxManager::SandboxManager(Machine* machine, FrameTable* frames, MmuPolicy* policy,
                               IsolationBackend* isolation)
    : machine_(machine), frames_(frames), policy_(policy), isolation_(isolation) {}

void SandboxManager::Attach(Kernel* kernel, FrameNum cma_first, uint64_t cma_frames) {
  kernel_ = kernel;
  cma_ = std::make_unique<FrameAllocator>(cma_first, cma_frames);
}

PteWriter SandboxManager::TrustedWriter(Cpu& cpu, AddressSpace& aspace) {
  // The monitor writes PTEs directly (it *is* the privileged mode) but keeps the
  // frame-table map counts accurate and charges the monitor-op cost.
  PteWriter writer;
  writer.write_pte = [this, &cpu](Paddr entry_pa, Pte value) -> Status {
    const Pte old = machine_->memory().Read64(entry_pa);
    machine_->memory().Write64(entry_pa, value);
    cpu.cycles().Charge(cpu.costs().monitor_pte_op);
    policy_->NoteTrustedLink(entry_pa, value);
    policy_->NoteLeafWrite(old, value, entry_pa);
    // Trusted mapping into a live address space can rewrite present entries (e.g.
    // U/S-widening an intermediate); cached walks through them must die.
    if (Tlb::hooks().pte_shootdown && pte::Present(old) && old != value) {
      machine_->ShootdownTlbLeaf(entry_pa, cpu.index());
    }
    return OkStatus();
  };
  writer.alloc_ptp = [this, &cpu, &aspace]() -> StatusOr<FrameNum> {
    EREBOR_ASSIGN_OR_RETURN(const FrameNum frame, kernel_->pool().Alloc());
    machine_->memory().ZeroFrame(frame);
    machine_->memory().FramePtr(frame);
    (void)frames_->SetType(frame, FrameType::kPtp);
    frames_->info(frame).ptp_root = aspace.root();
    frames_->info(frame).ptp_level = 0;  // linked when first referenced
    // Pool frames keep their default-tag direct-map leaf: re-tag it so the kernel
    // cannot forge entries in the sandbox's page tables through the direct map.
    EREBOR_RETURN_IF_ERROR(policy_->RetrofitTag(&cpu, machine_->memory(), frame,
                                                ProtClass::kPtp, false));
    return frame;
  };
  return writer;
}

StatusOr<Sandbox*> SandboxManager::Create(Task& leader, const SandboxSpec& spec) {
  if (kernel_ == nullptr) {
    return FailedPreconditionError("sandbox manager not attached to a kernel");
  }
  auto sandbox = std::make_unique<Sandbox>();
  sandbox->id = next_id_++;
  // Admission control: every live sandbox holds one isolation domain (a PKS key
  // or TME-MK keyID). When the backend's budget is exhausted the launch is
  // refused cleanly — domains are never shared between tenants.
  auto domain = isolation_->AllocateSandboxDomain(sandbox->id);
  if (!domain.ok()) {
    MetricsRegistry::Global().Increment("fleet.domain_exhausted");
    return UnavailableError("sandbox admission refused: " +
                            std::string(domain.status().message()));
  }
  sandbox->domain_tag = *domain;
  sandbox->lock = SimLock("sandbox." + std::to_string(sandbox->id), kRankSandbox,
                          sandbox->id);
  sandbox->spec = spec;
  sandbox->leader = &leader;
  sandbox->aspace = leader.aspace;
  leader.is_sandbox_member = true;
  leader.sandbox_id = sandbox->id;
  Sandbox* raw = sandbox.get();
  sandboxes_[sandbox->id] = std::move(sandbox);
  return raw;
}

Sandbox* SandboxManager::Find(int id) {
  const auto it = sandboxes_.find(id);
  return it == sandboxes_.end() ? nullptr : it->second.get();
}

Sandbox* SandboxManager::FindByTask(const Task& task) {
  if (!task.is_sandbox_member) {
    return nullptr;
  }
  return Find(task.sandbox_id);
}

Status SandboxManager::UnmapFromDirectMap(Cpu& cpu, FrameNum first, uint64_t count) {
  // Single-mapping enforcement: once a frame is confined, the kernel's direct-map view
  // disappears. (The walk may legitimately fail if the direct map never covered it.)
  AddressSpace& kas = kernel_->kernel_aspace();
  for (uint64_t i = 0; i < count; ++i) {
    const Vaddr dm_va = layout::DirectMap(AddrOf(first + i));
    const auto walk = kas.Lookup(dm_va);
    if (!walk.ok()) {
      continue;
    }
    const Pte old = machine_->memory().Read64(walk->leaf_entry_pa);
    machine_->memory().Write64(walk->leaf_entry_pa, 0);
    cpu.cycles().Charge(cpu.costs().monitor_pte_op);
    policy_->NoteLeafWrite(old, 0, walk->leaf_entry_pa);
    // Single-mapping is only real if no CPU can still hit the direct-map translation.
    if (Tlb::hooks().pte_shootdown && pte::Present(old)) {
      machine_->ShootdownTlbLeaf(walk->leaf_entry_pa, cpu.index());
    }
  }
  return OkStatus();
}

Status SandboxManager::DeclareConfined(Cpu& cpu, Sandbox& sandbox, Vaddr va, uint64_t len) {
  NoteSandboxMutation(cpu, sandbox);
  if (sandbox.state != SandboxState::kInitializing) {
    return FailedPreconditionError("confined memory must be declared before sealing");
  }
  len = PageAlignUp(len);
  if (sandbox.confined_bytes + len > sandbox.spec.confined_budget_bytes) {
    return ResourceExhaustedError("confined memory budget exceeded");
  }
  const uint64_t count = len >> kPageShift;
  EREBOR_ASSIGN_OR_RETURN(const FrameNum first, cma_->AllocContiguous(count));
  for (uint64_t i = 0; i < count; ++i) {
    FrameInfo& info = frames_->info(first + i);
    info.type = FrameType::kSandboxConfined;
    info.owner_sandbox = sandbox.id;
    info.pinned = true;
    machine_->memory().ZeroFrame(first + i);
    machine_->memory().FramePtr(first + i);
    // Bind the frame to the sandbox's private domain (TME-MK: keyID binding at
    // the controller, first use programs the key; PKS: no-op, the tag lives in
    // the PTE installed below).
    isolation_->BindFrame(&cpu, first + i, sandbox.domain_tag, false);
    // Pre-populating confined memory costs a demand-fault-with-EMC per page — the
    // paper's one-time initialization overhead (11.5%-52.7%, section 9.2).
    cpu.cycles().Charge(cpu.costs().page_zero + cpu.costs().page_fault_service_native +
                        cpu.costs().emc_round_trip);
  }
  EREBOR_RETURN_IF_ERROR(UnmapFromDirectMap(cpu, first, count));

  // Pre-populate + pin the sandbox mapping (user, writable, NX), tagged with the
  // sandbox's own domain so the mapping matches the frame binding (TME-MK) or
  // carries its key label (PKS; inert on user pages — PKS checks supervisor
  // accesses only — but it keeps the tag algebra uniform across backends).
  const Pte base_flags = pte::kPresent | pte::kUser | pte::kWritable | pte::kNoExecute;
  const Pte leaf_flags = isolation_->WithTag(base_flags, sandbox.domain_tag);
  EREBOR_RETURN_IF_ERROR(
      sandbox.aspace->CreateVma(len, base_flags, VmaKind::kConfined, va).status());
  PteWriter writer = TrustedWriter(cpu, *sandbox.aspace);
  for (uint64_t i = 0; i < count; ++i) {
    EREBOR_RETURN_IF_ERROR(MapPage(machine_->memory(), sandbox.aspace->root(),
                                   va + AddrOf(i), first + i, leaf_flags, writer));
  }
  sandbox.confined_ranges.emplace_back(first, count);
  sandbox.confined_bytes += len;
  return OkStatus();
}

Status SandboxManager::SnapshotTemplate(Cpu& cpu, Sandbox& sandbox) {
  NoteSandboxMutation(cpu, sandbox);
  if (sandbox.state != SandboxState::kInitializing) {
    return FailedPreconditionError("only a pre-seal sandbox can become a template");
  }
  if (sandbox.is_template || sandbox.clone_of != -1) {
    return FailedPreconditionError("sandbox already participates in a template");
  }
  // Freeze every confined mapping read-only and untagged, recording the layout
  // for clones. Confined VMAs are physically contiguous (DeclareConfined uses
  // AllocContiguous), so one (va, first, count) triple per VMA suffices.
  for (const auto& [start, vma] : sandbox.aspace->vmas()) {
    if (vma.kind != VmaKind::kConfined) {
      continue;
    }
    Sandbox::TemplateRange range;
    range.va = vma.start;
    range.count = (vma.end - vma.start) >> kPageShift;
    for (Vaddr va = vma.start; va < vma.end; va += kPageSize) {
      EREBOR_ASSIGN_OR_RETURN(const WalkResult walk, sandbox.aspace->Lookup(va));
      if (va == vma.start) {
        range.first = FrameOf(walk.pa);
      }
      const Pte updated = isolation_->WithTag(walk.leaf & ~pte::kWritable, 0);
      machine_->memory().Write64(walk.leaf_entry_pa, updated);
      cpu.cycles().Charge(cpu.costs().monitor_pte_op);
      // W revocation must reach cached translations before any clone shares
      // the frame, or the template itself could keep scribbling on it.
      if (Tlb::hooks().pte_shootdown && updated != walk.leaf) {
        machine_->ShootdownTlbLeaf(walk.leaf_entry_pa, cpu.index());
      }
    }
    Vma* mutable_vma = sandbox.aspace->FindVma(start);
    mutable_vma->flags &= ~pte::kWritable;
    sandbox.template_ranges.push_back(range);
  }
  // Retype + rebind: shared read-only through any clone's untagged view
  // (TME-MK: default keyID with the read-shared bit; PKS: user pages are never
  // key-checked — the cleared W bit is the enforcement on both backends).
  for (const auto& [first, count] : sandbox.confined_ranges) {
    for (uint64_t i = 0; i < count; ++i) {
      FrameInfo& info = frames_->info(first + i);
      info.type = FrameType::kSandboxTemplate;
      info.owner_sandbox = sandbox.id;
      isolation_->BindFrame(&cpu, first + i, 0, /*read_shared=*/true);
    }
  }
  // A parked template serves no tenant: return its isolation domain so the
  // pool never pins one of the backend's scarce keys.
  if (sandbox.domain_tag != 0) {
    isolation_->ReleaseSandboxDomain(sandbox.domain_tag);
    sandbox.domain_tag = 0;
  }
  sandbox.is_template = true;
  MetricsRegistry::Global().Increment("sandbox.templates");
  return OkStatus();
}

StatusOr<Sandbox*> SandboxManager::CloneFromTemplate(Cpu& cpu, Task& leader,
                                                     Sandbox& tmpl,
                                                     const SandboxSpec& spec) {
  if (kernel_ == nullptr) {
    return FailedPreconditionError("sandbox manager not attached to a kernel");
  }
  if (!tmpl.is_template) {
    return FailedPreconditionError("clone source is not a template");
  }
  auto sandbox = std::make_unique<Sandbox>();
  sandbox->id = next_id_++;
  // No AllocateSandboxDomain here: a warm standby must not pin one of the
  // backend's scarce domains (PKS has 11) before it serves a tenant.
  sandbox->domain_deferred = true;
  sandbox->clone_of = tmpl.id;
  sandbox->lock = SimLock("sandbox." + std::to_string(sandbox->id), kRankSandbox,
                          sandbox->id);
  sandbox->spec = spec;
  sandbox->leader = &leader;
  sandbox->aspace = leader.aspace;
  leader.is_sandbox_member = true;
  leader.sandbox_id = sandbox->id;
  // Rebuild the template's confined layout as read-only untagged mappings of
  // the shared frames. Cost is one monitor PTE op per page — the clone's whole
  // delta against the 126k-cycle cold boot — and the reverse map
  // (NoteLeafWrite) records every share for the invariant checker.
  const Pte ro_flags = pte::kPresent | pte::kUser | pte::kNoExecute;
  PteWriter writer = TrustedWriter(cpu, *sandbox->aspace);
  for (const auto& range : tmpl.template_ranges) {
    EREBOR_RETURN_IF_ERROR(sandbox->aspace
                               ->CreateVma(range.count << kPageShift, ro_flags,
                                           VmaKind::kConfined, range.va)
                               .status());
    for (uint64_t i = 0; i < range.count; ++i) {
      EREBOR_RETURN_IF_ERROR(MapPage(machine_->memory(), sandbox->aspace->root(),
                                     range.va + AddrOf(i), range.first + i, ro_flags,
                                     writer));
    }
  }
  ++tmpl.live_clones;
  Sandbox* raw = sandbox.get();
  sandboxes_[sandbox->id] = std::move(sandbox);
  MetricsRegistry::Global().Increment("sandbox.clones");
  return raw;
}

Status SandboxManager::ActivateClone(Cpu& cpu, Sandbox& sandbox) {
  NoteSandboxMutation(cpu, sandbox);
  if (!sandbox.domain_deferred) {
    return OkStatus();
  }
  if (sandbox.state != SandboxState::kInitializing) {
    return FailedPreconditionError("cannot activate a torn-down clone");
  }
  auto domain = isolation_->AllocateSandboxDomain(sandbox.id);
  if (!domain.ok()) {
    MetricsRegistry::Global().Increment("fleet.domain_exhausted");
    return UnavailableError("clone promotion refused: " +
                            std::string(domain.status().message()));
  }
  sandbox.domain_tag = *domain;
  sandbox.domain_deferred = false;
  return OkStatus();
}

Status SandboxManager::BreakCowShare(Cpu& cpu, Sandbox& sandbox, Vaddr page_va) {
  NoteSandboxMutation(cpu, sandbox);
  if (sandbox.clone_of == -1) {
    return FailedPreconditionError("copy-on-write break on a non-clone sandbox");
  }
  if (sandbox.state == SandboxState::kTornDown ||
      sandbox.state == SandboxState::kQuarantined) {
    return FailedPreconditionError("sandbox already torn down");
  }
  page_va = PageAlignDown(page_va);
  EREBOR_ASSIGN_OR_RETURN(const WalkResult walk, sandbox.aspace->Lookup(page_va));
  const FrameNum shared = FrameOf(walk.pa);
  const FrameInfo& shared_info = frames_->info(shared);
  if (shared_info.type != FrameType::kSandboxTemplate ||
      shared_info.owner_sandbox != sandbox.clone_of) {
    return FailedPreconditionError("page is not a shared template page");
  }
  if (sandbox.confined_bytes + kPageSize > sandbox.spec.confined_budget_bytes) {
    return ResourceExhaustedError("confined memory budget exceeded");
  }
  // First break promotes the clone: the private frame needs a domain to bind.
  EREBOR_RETURN_IF_ERROR(ActivateClone(cpu, sandbox));
  EREBOR_ASSIGN_OR_RETURN(const FrameNum priv, cma_->Alloc());
  std::memcpy(machine_->memory().FramePtr(priv), machine_->memory().FramePtr(shared),
              kPageSize);
  cpu.cycles().Charge(cpu.costs().page_copy);
  FrameInfo& info = frames_->info(priv);
  info.type = FrameType::kSandboxConfined;
  info.owner_sandbox = sandbox.id;
  info.pinned = true;
  // The per-frame key retrofit: the private copy is bound to the clone's own
  // domain (TME-MK keyID), never the template's — ROADMAP item 5's follow-on.
  isolation_->BindFrame(&cpu, priv, sandbox.domain_tag, false);
  EREBOR_RETURN_IF_ERROR(UnmapFromDirectMap(cpu, priv, 1));
  const Pte base_flags = pte::kPresent | pte::kUser | pte::kWritable | pte::kNoExecute;
  PteWriter writer = TrustedWriter(cpu, *sandbox.aspace);
  EREBOR_RETURN_IF_ERROR(MapPage(machine_->memory(), sandbox.aspace->root(), page_va,
                                 priv,
                                 isolation_->WithTag(base_flags, sandbox.domain_tag),
                                 writer));
  sandbox.confined_ranges.emplace_back(priv, 1);
  sandbox.confined_bytes += kPageSize;
  ++sandbox.cow_broken_pages;
  MetricsRegistry::Global().Increment("sandbox.cow_breaks");
  return OkStatus();
}

StatusOr<bool> SandboxManager::HandleCowWrite(Cpu& cpu, Sandbox& sandbox, Vaddr addr) {
  if (sandbox.clone_of == -1) {
    return false;
  }
  const Vaddr page_va = PageAlignDown(addr);
  const auto walk = sandbox.aspace->Lookup(page_va);
  if (!walk.ok()) {
    return false;  // not mapped: the kernel's demand-fault path owns this one
  }
  const FrameInfo& info = frames_->info(FrameOf(walk->pa));
  if (info.type != FrameType::kSandboxTemplate ||
      info.owner_sandbox != sandbox.clone_of) {
    return false;
  }
  // Monitor-mediated fault service: after the break the write retries against
  // the clone's private copy.
  cpu.cycles().Charge(cpu.costs().page_fault_service_native +
                      cpu.costs().emc_round_trip);
  EREBOR_RETURN_IF_ERROR(BreakCowShare(cpu, sandbox, page_va));
  return true;
}

StatusOr<CommonRegion*> SandboxManager::CreateCommonRegion(const std::string& name,
                                                           uint64_t len,
                                                           FrameAllocator& pool) {
  len = PageAlignUp(len);
  const uint64_t count = len >> kPageShift;
  EREBOR_ASSIGN_OR_RETURN(const FrameNum first, pool.AllocContiguous(count));
  for (uint64_t i = 0; i < count; ++i) {
    FrameInfo& info = frames_->info(first + i);
    info.type = FrameType::kSandboxCommon;
    info.owner_sandbox = -1;
  }
  CommonRegion region;
  region.id = static_cast<int>(common_regions_.size());
  region.name = name;
  region.first_frame = first;
  region.num_frames = count;
  common_regions_.push_back(region);
  return &common_regions_.back();
}

CommonRegion* SandboxManager::FindCommonRegion(const std::string& name) {
  for (auto& region : common_regions_) {
    if (region.name == name) {
      return &region;
    }
  }
  return nullptr;
}

Status SandboxManager::AttachCommon(Cpu& cpu, Sandbox& sandbox, int region_id, Vaddr va,
                                    bool writable_until_seal) {
  NoteSandboxMutation(cpu, sandbox);
  if (region_id < 0 || region_id >= static_cast<int>(common_regions_.size())) {
    return NotFoundError("no such common region");
  }
  CommonRegion& region = common_regions_[region_id];
  Pte flags = pte::kPresent | pte::kUser | pte::kNoExecute;
  if (writable_until_seal && sandbox.state == SandboxState::kInitializing) {
    flags |= pte::kWritable;
  }
  EREBOR_ASSIGN_OR_RETURN(
      const Vaddr start,
      sandbox.aspace->CreateVma(region.num_frames << kPageShift, flags, VmaKind::kCommon,
                                va));
  Vma* vma = sandbox.aspace->FindVma(start);
  vma->backing.resize(region.num_frames);
  for (uint64_t i = 0; i < region.num_frames; ++i) {
    vma->backing[i] = region.first_frame + i;
  }
  // Pages fault in on demand (this is the #PF source for large common regions, e.g.
  // the llama model in Table 6).
  ++region.attach_count;
  sandbox.attached_regions.push_back(region_id);
  return OkStatus();
}

Status SandboxManager::Seal(Cpu& cpu, Sandbox& sandbox) {
  NoteSandboxMutation(cpu, sandbox);
  if (sandbox.state == SandboxState::kSealed) {
    return OkStatus();
  }
  if (sandbox.state == SandboxState::kTornDown ||
      sandbox.state == SandboxState::kQuarantined) {
    return FailedPreconditionError("sandbox already torn down");
  }
  // A sealed sandbox must never run without isolation: sealing a clone that was
  // never explicitly promoted allocates its deferred domain now (and refuses the
  // seal if the backend is out of domains).
  if (sandbox.domain_deferred) {
    EREBOR_RETURN_IF_ERROR(ActivateClone(cpu, sandbox));
  }
  // Revoke write permission on any common pages already mapped.
  for (const auto& [start, vma] : sandbox.aspace->vmas()) {
    if (vma.kind != VmaKind::kCommon) {
      continue;
    }
    for (Vaddr va = vma.start; va < vma.end; va += kPageSize) {
      const auto walk = sandbox.aspace->Lookup(va);
      if (!walk.ok()) {
        continue;
      }
      const Pte updated = walk->leaf & ~pte::kWritable;
      machine_->memory().Write64(walk->leaf_entry_pa, updated);
      cpu.cycles().Charge(cpu.costs().monitor_pte_op);
      // Seal-time W revocation on common pages must reach cached translations too.
      if (Tlb::hooks().pte_shootdown && updated != walk->leaf) {
        machine_->ShootdownTlbLeaf(walk->leaf_entry_pa, cpu.index());
      }
    }
    // Future demand-mappings of this VMA must be read-only too.
    Vma* mutable_vma = sandbox.aspace->FindVma(start);
    mutable_vma->flags &= ~pte::kWritable;
  }
  // Disable user-interrupt sending (clear IA32_UINTR_TT.valid on every core).
  for (int i = 0; i < machine_->num_cpus(); ++i) {
    Cpu& c = machine_->cpu(i);
    const auto tt = c.ReadMsr(msr::kIa32UintrTt);
    if (tt.ok()) {
      c.TrustedWriteMsr(msr::kIa32UintrTt, *tt & ~msr::kUintrTtValid);
    }
  }
  sandbox.state = SandboxState::kSealed;
  return OkStatus();
}

Status SandboxManager::Teardown(Cpu& cpu, Sandbox& sandbox) {
  NoteSandboxMutation(cpu, sandbox);
  if (sandbox.state == SandboxState::kTornDown ||
      sandbox.state == SandboxState::kQuarantined) {
    return OkStatus();  // already scrubbed and released
  }
  // A template's frames are mapped into every live clone; scrubbing them now
  // would yank shared pages out from under running tenants.
  if (sandbox.is_template && sandbox.live_clones > 0) {
    return FailedPreconditionError("template still has " +
                                   std::to_string(sandbox.live_clones) +
                                   " live clones");
  }
  // Unmap confined regions from the sandbox's address space first: the frames return
  // to the CMA pool below and must not stay reachable through stale PTEs.
  if (sandbox.aspace) {
    std::vector<Vaddr> confined_starts;
    for (const auto& [start, vma] : sandbox.aspace->vmas()) {
      if (vma.kind == VmaKind::kConfined) {
        confined_starts.push_back(start);
      }
    }
    for (const Vaddr start : confined_starts) {
      const Vma* vma = sandbox.aspace->FindVma(start);
      for (Vaddr va = vma->start; va < vma->end; va += kPageSize) {
        const auto walk = sandbox.aspace->Lookup(va);
        if (!walk.ok()) {
          continue;
        }
        const Pte old = machine_->memory().Read64(walk->leaf_entry_pa);
        machine_->memory().Write64(walk->leaf_entry_pa, 0);
        cpu.cycles().Charge(cpu.costs().monitor_pte_op);
        policy_->NoteLeafWrite(old, 0, walk->leaf_entry_pa);
        if (Tlb::hooks().pte_shootdown && pte::Present(old)) {
          machine_->ShootdownTlbLeaf(walk->leaf_entry_pa, cpu.index());
        }
      }
    }
  }
  // Zeroize all confined memory and session state (paper section 6.3 cleanup).
  for (const auto& [first, count] : sandbox.confined_ranges) {
    for (uint64_t i = 0; i < count; ++i) {
      machine_->memory().ZeroFrame(first + i);
      cpu.cycles().Charge(cpu.costs().page_zero);
      FrameInfo& info = frames_->info(first + i);
      info.type = FrameType::kNormal;
      info.owner_sandbox = -1;
      info.pinned = false;
      info.map_count = 0;
      // Drop the domain binding: the frame returns to the pool as default-tagged.
      isolation_->BindFrame(&cpu, first + i, 0, false);
      (void)cma_->Free(first + i);
    }
  }
  sandbox.confined_ranges.clear();
  sandbox.input_plaintext.clear();
  sandbox.outbound_wire.clear();
  sandbox.session = ChannelSession{};
  // Return the isolation domain to the backend so a future tenant can claim it.
  if (sandbox.domain_tag != 0) {
    isolation_->ReleaseSandboxDomain(sandbox.domain_tag);
    sandbox.domain_tag = 0;
  }
  sandbox.domain_deferred = false;
  // A dying clone stops sharing the template's frames (the unmap loop above
  // already dropped its leaf references and their map counts).
  if (sandbox.clone_of != -1) {
    Sandbox* tmpl = Find(sandbox.clone_of);
    if (tmpl != nullptr && tmpl->live_clones > 0) {
      --tmpl->live_clones;
    }
  }
  sandbox.template_ranges.clear();
  sandbox.state = SandboxState::kTornDown;
  return OkStatus();
}

Status SandboxManager::Quarantine(Cpu& cpu, Sandbox& sandbox, const std::string& reason) {
  NoteSandboxMutation(cpu, sandbox);
  if (sandbox.state == SandboxState::kQuarantined) {
    return OkStatus();
  }
  // Fence state held outside the manager first (in-flight MMU-ring SQEs), so no
  // descriptor staged before the quarantine can be applied after the scrub below
  // releases the frames it targets.
  if (quarantine_hook_) {
    quarantine_hook_(cpu, sandbox);
  }
  // Scrub and release exactly like a normal teardown (confined frames zeroized and
  // returned to the CMA pool, session keys destroyed), then park in kQuarantined so
  // no future channel/ioctl traffic can revive the sandbox.
  EREBOR_RETURN_IF_ERROR(Teardown(cpu, sandbox));
  sandbox.state = SandboxState::kQuarantined;
  sandbox.quarantine_reason = reason;
  MetricsRegistry::Global().Increment("sandbox.quarantined");
  Tracer::Global().Record(TraceEvent::kSandboxQuarantine, cpu.index(), cpu.cycles().now(),
                          sandbox.id);
  LOG_WARN() << "sandbox " << sandbox.id << " quarantined: " << reason;
  return OkStatus();
}

bool SandboxManager::SyscallPermitted(const Sandbox& sandbox, const Task& task, int nr,
                                      const uint64_t* args) const {
  if (sandbox.state == SandboxState::kTornDown ||
      sandbox.state == SandboxState::kQuarantined) {
    return nr == sys::kExit;  // a fenced-off sandbox may only die
  }
  if (sandbox.state != SandboxState::kSealed) {
    return true;  // initialization phase: LibOS sets up via normal syscalls
  }
  switch (nr) {
    case sys::kExit:
      return true;  // termination is handled (and observed) by the monitor
    case sys::kIoctl: {
      // Only the monitor's own device is reachable.
      auto of = task.fds->Get(static_cast<int>(args[0]));
      return of.ok() && (*of)->is_device && (*of)->path == "/dev/erebor";
    }
    default:
      return false;
  }
}

Status SandboxManager::CopyIntoSandbox(Cpu& cpu, Sandbox& sandbox, Vaddr va,
                                       const uint8_t* data, uint64_t len) {
  NoteSandboxMutation(cpu, sandbox);
  if (FaultInjector::Armed() &&
      FaultInjector::Global().Fire("sandbox.copy_in", FaultAction::kFail)) {
    // Transient shepherd fault: the caller leaves the input queued and retries, so
    // the error code must read as EAGAIN to the LibOS retry contract.
    return UnavailableError("injected shepherd fault (sandbox.copy_in)");
  }
  // Every touched page must be confined memory owned by this sandbox: the shepherd
  // never writes client data anywhere an outsider could see.
  uint64_t done = 0;
  while (done < len) {
    const Vaddr page_va = va + done;
    EREBOR_ASSIGN_OR_RETURN(WalkResult walk, sandbox.aspace->Lookup(page_va));
    const FrameInfo* info = &frames_->info(FrameOf(walk.pa));
    // A clone's target may still be a shared template page: the shepherd write
    // is the first mutation, so break the share here (the guest's own writes
    // take the #PF path instead).
    if (info->type == FrameType::kSandboxTemplate &&
        info->owner_sandbox == sandbox.clone_of && sandbox.clone_of != -1) {
      EREBOR_RETURN_IF_ERROR(BreakCowShare(cpu, sandbox, page_va));
      EREBOR_ASSIGN_OR_RETURN(walk, sandbox.aspace->Lookup(page_va));
      info = &frames_->info(FrameOf(walk.pa));
    }
    if (info->type != FrameType::kSandboxConfined || info->owner_sandbox != sandbox.id) {
      return PermissionDeniedError("shepherd target is not this sandbox's confined memory");
    }
    const uint64_t take = std::min(len - done, kPageSize - (page_va & kPageMask));
    EREBOR_RETURN_IF_ERROR(machine_->memory().Write(walk.pa, data + done, take));
    done += take;
  }
  cpu.cycles().Charge(len * cpu.costs().crypto_per_byte_x100 / 100);
  return OkStatus();
}

Status SandboxManager::CopyFromSandbox(Cpu& cpu, Sandbox& sandbox, Vaddr va, uint8_t* out,
                                       uint64_t len) {
  NoteSandboxMutation(cpu, sandbox);
  uint64_t done = 0;
  while (done < len) {
    const Vaddr page_va = va + done;
    EREBOR_ASSIGN_OR_RETURN(const WalkResult walk, sandbox.aspace->Lookup(page_va));
    const FrameInfo& info = frames_->info(FrameOf(walk.pa));
    const bool confined =
        info.type == FrameType::kSandboxConfined && info.owner_sandbox == sandbox.id;
    const bool common = info.type == FrameType::kSandboxCommon;
    // Clones may read still-shared template pages: templates hold only the
    // pre-attestation LibOS image, never client secrets.
    const bool cow_shared = info.type == FrameType::kSandboxTemplate &&
                            sandbox.clone_of != -1 &&
                            info.owner_sandbox == sandbox.clone_of;
    if (!confined && !common && !cow_shared) {
      return PermissionDeniedError("shepherd source is not sandbox memory");
    }
    const uint64_t take = std::min(len - done, kPageSize - (page_va & kPageMask));
    EREBOR_RETURN_IF_ERROR(machine_->memory().Read(walk.pa, out + done, take));
    done += take;
  }
  cpu.cycles().Charge(len * cpu.costs().crypto_per_byte_x100 / 100);
  return OkStatus();
}

Status SandboxManager::ValidateCommonMapping(Paddr root, FrameNum frame,
                                             bool writable) const {
  // Find the sandbox owning this page-table root.
  const Sandbox* owner = nullptr;
  for (const auto& [id, sandbox] : sandboxes_) {
    if (sandbox->aspace && sandbox->aspace->root() == root) {
      owner = sandbox.get();
      break;
    }
  }
  if (owner == nullptr) {
    return PermissionDeniedError("common frames may only be mapped into sandboxes");
  }
  // The frame must belong to a region attached to that sandbox.
  bool attached = false;
  for (const int region_id : owner->attached_regions) {
    const CommonRegion& region = common_regions_[region_id];
    if (frame >= region.first_frame && frame < region.first_frame + region.num_frames) {
      attached = true;
      break;
    }
  }
  if (!attached) {
    return PermissionDeniedError("common region not attached to this sandbox");
  }
  if (writable && owner->state == SandboxState::kSealed) {
    return PermissionDeniedError("common memory is read-only after sealing");
  }
  return OkStatus();
}

}  // namespace erebor
