// Pluggable isolation backends (ROADMAP item 5): the seam between the
// monitor's policy/gate/sandbox machinery and the hardware mechanism that
// enforces intra-kernel domain separation.
//
// The paper builds Erebor on PKS — 16 supervisor protection keys carried in
// PTE bits 59..62 and checked against IA32_PKRS — which caps concurrent
// sandbox domains at 11 (keys 0..4 are reserved for the monitor's own
// protection classes). TME-Box shows the same confinement can ride on TME-MK
// memory-encryption keyIDs in the PTE high bits, enforced at the memory
// controller, with thousands of domains and no per-gate register writes.
//
// Everything mechanism-shaped goes through this interface:
//   - tag algebra: encode/decode the backend's tag field in PTEs, and the
//     policy rewrite applied to kernel leaf mappings of protected frames;
//   - domain budget: allocation/release of per-sandbox domains, with the
//     backend-reported maximum (the fleet refuses admission beyond it);
//   - frame binding: per-frame tag retrofit at the "memory controller"
//     (PCONFIG-style for TME-MK; a no-op for PKS, whose tags live in PTEs);
//   - gate discipline: per-CPU install, EMC entry/exit register grants, and
//     the #INT-gate save/revoke/restore protocol via opaque view tokens;
//   - register ownership: which CR4 bits are pinned and which MSRs the
//     kernel may never write;
//   - invariant audit: the backend-specific register and frame-tag checks
//     run by the invariant checker's gate and frame families.
#ifndef EREBOR_SRC_MONITOR_ISOLATION_H_
#define EREBOR_SRC_MONITOR_ISOLATION_H_

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "src/hw/isolation.h"
#include "src/hw/machine.h"
#include "src/kernel/layout.h"
#include "src/monitor/frame_table.h"

namespace erebor {

// Protection classes the monitor assigns to frames; each backend maps a class
// to its own tag value (PKS: keys 0..4; TME-MK: keyIDs 0..4).
enum class ProtClass : uint8_t {
  kDefault = 0,
  kMonitor,
  kPtp,
  kKernelText,
  kShadowStack,
};

class IsolationBackend {
 public:
  virtual ~IsolationBackend() = default;

  virtual IsolationKind kind() const = 0;
  const char* name() const { return IsolationKindName(kind()); }

  // ---- Tag algebra ----
  virtual uint32_t ClassTag(ProtClass cls) const = 0;
  // Does this class's frame stay readable through foreign tags? (PTPs must stay
  // walkable, kernel text fetchable; monitor state and confined memory do not.)
  virtual bool ClassReadShared(ProtClass cls) const = 0;
  virtual uint32_t TagOf(Pte pte) const = 0;
  virtual Pte WithTag(Pte pte, uint32_t tag) const = 0;
  // Policy rewrite of an allowed kernel leaf mapping of a class-`cls` frame.
  // PKS forces the class key into the mapping (the PTE *is* the enforcement
  // point); TME-MK leaves the mapping untagged — the frame's keyID binding at
  // the controller is what denies the access.
  virtual Pte RetagKernelLeaf(Pte pte, ProtClass cls) const = 0;

  // ---- Sandbox domains ----
  virtual uint32_t max_sandbox_domains() const = 0;
  uint32_t sandbox_domains_in_use() const { return domains_in_use_; }
  virtual StatusOr<uint32_t> AllocateSandboxDomain(int sandbox_id) = 0;
  virtual void ReleaseSandboxDomain(uint32_t tag) = 0;
  // TME-MK: the keyID a live sandbox owns (0 = unknown). PKS mirrors the
  // allocation for symmetry so audits can cross-check either backend.
  virtual uint32_t DomainTagOf(int sandbox_id) const = 0;

  // ---- Frame bindings (memory-controller state; PKS: no-op) ----
  // `cpu` may be null for boot-time binds (no cost accounting yet).
  virtual void BindFrame(Cpu* cpu, FrameNum frame, uint32_t tag,
                         bool read_shared) = 0;
  void BindClass(Cpu* cpu, FrameNum frame, ProtClass cls) {
    BindFrame(cpu, frame, ClassTag(cls), ClassReadShared(cls));
  }

  // ---- Gate register discipline ----
  // Per-CPU boot-time install (CR4 bits, CET MSRs, backend view wiring).
  virtual void InstallCpu(Cpu& cpu) const = 0;
  // Register grant/revoke at the EMC entry/exit gates (the monitor-context
  // flag itself is flipped by the gates, mechanism-independent).
  virtual void GateEnter(Cpu& cpu) const = 0;
  virtual void GateExit(Cpu& cpu) const = 0;
  // Fault-injection scramble racing the exit sequence: clobber the backend's
  // gate registers with `entropy`, then restore the CET enables (the exit
  // gate's unconditional rewrite must still win).
  virtual void ScrambleOnExit(Cpu& cpu, uint64_t entropy) const = 0;
  // #INT-gate protocol: save the current view as an opaque token, revoke down
  // to the kernel view, and later restore a popped token. PKS tokens are PKRS
  // values; TME-MK tokens are the monitor-context flag.
  virtual uint64_t InterruptViewToken(const Cpu& cpu) const = 0;
  virtual void InterruptRevoke(Cpu& cpu) const = 0;
  virtual void InterruptRestoreView(Cpu& cpu, uint64_t token) const = 0;
  virtual bool TokenGrantsMonitor(uint64_t token) const = 0;

  // ---- Register ownership ----
  virtual uint64_t PinnedCr4() const = 0;
  virtual Status CheckMsrWrite(uint32_t index) const = 0;

  // ---- Invariant audit ----
  // Family 2: per-CPU gate-register state at a safe point.
  virtual Status AuditCpu(const Cpu& cpu) const = 0;
  // Family 1: per-frame tag/binding state. `leaf` is the frame's recorded
  // supervisor (direct-map) leaf PTE, 0 if none.
  virtual Status AuditFrame(FrameNum frame, const FrameInfo& info,
                            Pte leaf) const = 0;

  // TME-MK: the binding table CPUs check on every translation (null for PKS).
  virtual const KeyIdMap* keyid_map() const { return nullptr; }

 protected:
  uint32_t domains_in_use_ = 0;
};

// PKS backend: the paper's design, bit-identical to the pre-seam monitor.
class PksBackend : public IsolationBackend {
 public:
  PksBackend();

  IsolationKind kind() const override { return IsolationKind::kPks; }

  uint32_t ClassTag(ProtClass cls) const override;
  bool ClassReadShared(ProtClass cls) const override;
  uint32_t TagOf(Pte pte) const override { return pte::Pkey(pte); }
  Pte WithTag(Pte pte, uint32_t tag) const override {
    return pte::WithPkey(pte, static_cast<uint8_t>(tag));
  }
  Pte RetagKernelLeaf(Pte pte, ProtClass cls) const override {
    return pte::WithPkey(pte, static_cast<uint8_t>(ClassTag(cls)));
  }

  uint32_t max_sandbox_domains() const override { return kNumSandboxKeys; }
  StatusOr<uint32_t> AllocateSandboxDomain(int sandbox_id) override;
  void ReleaseSandboxDomain(uint32_t tag) override;
  uint32_t DomainTagOf(int sandbox_id) const override;

  void BindFrame(Cpu*, FrameNum, uint32_t, bool) override {}  // tags live in PTEs

  void InstallCpu(Cpu& cpu) const override;
  void GateEnter(Cpu& cpu) const override;
  void GateExit(Cpu& cpu) const override;
  void ScrambleOnExit(Cpu& cpu, uint64_t entropy) const override;
  uint64_t InterruptViewToken(const Cpu& cpu) const override;
  void InterruptRevoke(Cpu& cpu) const override;
  void InterruptRestoreView(Cpu& cpu, uint64_t token) const override;
  bool TokenGrantsMonitor(uint64_t token) const override;

  uint64_t PinnedCr4() const override;
  Status CheckMsrWrite(uint32_t index) const override;

  Status AuditCpu(const Cpu& cpu) const override;
  Status AuditFrame(FrameNum frame, const FrameInfo& info, Pte leaf) const override;

  // 16 PKS keys, 5 reserved for the monitor's protection classes.
  static constexpr uint32_t kNumSandboxKeys = 16 - 5;

 private:
  std::vector<uint32_t> free_keys_;          // keys 5..15, smallest first
  std::map<int, uint32_t> sandbox_keys_;     // sandbox id -> key
};

// TME-MK backend: keyIDs in PTE bits 52..62, per-frame bindings at the
// simulated memory controller, no gate register writes.
class TmeMkBackend : public IsolationBackend {
 public:
  explicit TmeMkBackend(uint64_t num_frames);

  IsolationKind kind() const override { return IsolationKind::kTmeMk; }

  uint32_t ClassTag(ProtClass cls) const override;
  bool ClassReadShared(ProtClass cls) const override;
  uint32_t TagOf(Pte pte) const override { return pte::KeyId(pte); }
  Pte WithTag(Pte pte, uint32_t tag) const override {
    return pte::WithKeyId(pte, tag);
  }
  // The mapping stays untagged: the kernel's view carries the default keyID
  // and the frame's binding denies the access at the controller.
  Pte RetagKernelLeaf(Pte pte, ProtClass) const override { return pte; }

  uint32_t max_sandbox_domains() const override {
    return (1u << pte::kKeyIdBits) - kFirstSandboxKeyId;
  }
  StatusOr<uint32_t> AllocateSandboxDomain(int sandbox_id) override;
  void ReleaseSandboxDomain(uint32_t tag) override;
  uint32_t DomainTagOf(int sandbox_id) const override;

  void BindFrame(Cpu* cpu, FrameNum frame, uint32_t tag, bool read_shared) override;

  void InstallCpu(Cpu& cpu) const override;
  void GateEnter(Cpu&) const override {}  // view follows the gate context
  void GateExit(Cpu&) const override {}
  void ScrambleOnExit(Cpu& cpu, uint64_t entropy) const override;
  uint64_t InterruptViewToken(const Cpu& cpu) const override;
  void InterruptRevoke(Cpu&) const override {}
  void InterruptRestoreView(Cpu&, uint64_t) const override {}
  bool TokenGrantsMonitor(uint64_t token) const override { return token == 1; }

  uint64_t PinnedCr4() const override;
  Status CheckMsrWrite(uint32_t index) const override;

  Status AuditCpu(const Cpu& cpu) const override;
  Status AuditFrame(FrameNum frame, const FrameInfo& info, Pte leaf) const override;

  const KeyIdMap* keyid_map() const override { return &map_; }

  // keyIDs 0..4 mirror the ProtClass tags; sandboxes draw from 5..2047.
  static constexpr uint32_t kFirstSandboxKeyId = 5;

 private:
  KeyIdMap map_;
  uint32_t next_keyid_ = kFirstSandboxKeyId;  // next-fit allocation cursor
  std::set<uint32_t> in_use_;                 // allocated sandbox keyIDs
  std::set<uint32_t> programmed_;             // keyIDs whose PCONFIG cost was paid
  std::map<int, uint32_t> sandbox_keys_;      // sandbox id -> keyID
};

std::unique_ptr<IsolationBackend> MakeIsolationBackend(IsolationKind kind,
                                                       uint64_t num_frames);

}  // namespace erebor

#endif  // EREBOR_SRC_MONITOR_ISOLATION_H_
