#include "src/monitor/isolation.h"

#include <algorithm>
#include <string>

#include "src/monitor/gates.h"

namespace erebor {

namespace {

const char* ProtClassName(ProtClass cls) {
  switch (cls) {
    case ProtClass::kDefault:
      return "default";
    case ProtClass::kMonitor:
      return "monitor";
    case ProtClass::kPtp:
      return "PTP";
    case ProtClass::kKernelText:
      return "kernel-text";
    case ProtClass::kShadowStack:
      return "shadow-stack";
  }
  return "?";
}

}  // namespace

// ---------------------------------------------------------------------------
// PKS backend
// ---------------------------------------------------------------------------

PksBackend::PksBackend() {
  for (uint32_t key = 16 - kNumSandboxKeys; key < 16; ++key) {
    free_keys_.push_back(key);
  }
}

uint32_t PksBackend::ClassTag(ProtClass cls) const {
  switch (cls) {
    case ProtClass::kDefault:
      return layout::kDefaultKey;
    case ProtClass::kMonitor:
      return layout::kMonitorKey;
    case ProtClass::kPtp:
      return layout::kPtpKey;
    case ProtClass::kKernelText:
      return layout::kKernelTextKey;
    case ProtClass::kShadowStack:
      return layout::kShadowStackKey;
  }
  return layout::kDefaultKey;
}

bool PksBackend::ClassReadShared(ProtClass cls) const {
  // PKRS encodes this per key: the PTP and kernel-text keys are DenyWrite (the
  // walker must read PTPs, fetches need text), the monitor and shadow-stack
  // keys DenyAll. Mirrored here so BindClass is meaningful on both backends.
  return cls == ProtClass::kPtp || cls == ProtClass::kKernelText;
}

StatusOr<uint32_t> PksBackend::AllocateSandboxDomain(int sandbox_id) {
  if (free_keys_.empty()) {
    return ResourceExhaustedError(
        "all " + std::to_string(kNumSandboxKeys) + " PKS sandbox keys in use");
  }
  const uint32_t key = free_keys_.front();
  free_keys_.erase(free_keys_.begin());
  sandbox_keys_[sandbox_id] = key;
  ++domains_in_use_;
  return key;
}

void PksBackend::ReleaseSandboxDomain(uint32_t tag) {
  for (auto it = sandbox_keys_.begin(); it != sandbox_keys_.end(); ++it) {
    if (it->second == tag) {
      sandbox_keys_.erase(it);
      free_keys_.insert(
          std::lower_bound(free_keys_.begin(), free_keys_.end(), tag), tag);
      if (domains_in_use_ > 0) {
        --domains_in_use_;
      }
      return;
    }
  }
}

uint32_t PksBackend::DomainTagOf(int sandbox_id) const {
  const auto it = sandbox_keys_.find(sandbox_id);
  return it == sandbox_keys_.end() ? 0 : it->second;
}

void PksBackend::InstallCpu(Cpu& cpu) const {
  // CET on: IBT + shadow stacks; PKS on; kernel-mode PKRS view installed.
  cpu.TrustedWriteCr(4, cpu.cr4() | cr::kCr4Cet | cr::kCr4Pks);
  cpu.TrustedWriteMsr(msr::kIa32SCet, msr::kCetIbtEn | msr::kCetShstkEn);
  cpu.TrustedWriteMsr(msr::kIa32Pl0Ssp, 0xFFFFA00000000000ULL + 0x1000 * cpu.index());
  cpu.TrustedWriteMsr(msr::kIa32Pkrs, KernelModePkrs());
}

void PksBackend::GateEnter(Cpu& cpu) const {
  cpu.TrustedWriteMsr(msr::kIa32Pkrs, MonitorModePkrs());
}

void PksBackend::GateExit(Cpu& cpu) const {
  cpu.TrustedWriteMsr(msr::kIa32Pkrs, KernelModePkrs());
}

void PksBackend::ScrambleOnExit(Cpu& cpu, uint64_t entropy) const {
  cpu.TrustedWriteMsr(msr::kIa32Pkrs, entropy | 1);
  cpu.TrustedWriteMsr(msr::kIa32SCet, entropy >> 32);
  cpu.TrustedWriteMsr(msr::kIa32SCet, msr::kCetIbtEn | msr::kCetShstkEn);
}

uint64_t PksBackend::InterruptViewToken(const Cpu& cpu) const { return cpu.pkrs(); }

void PksBackend::InterruptRevoke(Cpu& cpu) const {
  cpu.TrustedWriteMsr(msr::kIa32Pkrs, KernelModePkrs());
}

void PksBackend::InterruptRestoreView(Cpu& cpu, uint64_t token) const {
  cpu.TrustedWriteMsr(msr::kIa32Pkrs, token);
}

bool PksBackend::TokenGrantsMonitor(uint64_t token) const {
  return token == MonitorModePkrs();
}

uint64_t PksBackend::PinnedCr4() const {
  return cr::kCr4Smep | cr::kCr4Smap | cr::kCr4Pks | cr::kCr4Cet;
}

Status PksBackend::CheckMsrWrite(uint32_t index) const {
  switch (index) {
    case msr::kIa32Pkrs:
      return PermissionDeniedError("IA32_PKRS is monitor-owned");
    case msr::kIa32SCet:
      return PermissionDeniedError("IA32_S_CET is monitor-owned");
    case msr::kIa32Pl0Ssp:
      return PermissionDeniedError("IA32_PL0_SSP is monitor-owned");
    case msr::kIa32UintrTt:
      return PermissionDeniedError("IA32_UINTR_TT is monitor-owned");
    default:
      return OkStatus();
  }
}

Status PksBackend::AuditCpu(const Cpu& cpu) const {
  const auto pkrs = cpu.ReadMsr(msr::kIa32Pkrs);
  if (pkrs.ok() && *pkrs != KernelModePkrs()) {
    return InternalError("cpu " + std::to_string(cpu.index()) +
                         " PKRS not restored to the kernel view (have 0x" +
                         std::to_string(*pkrs) + ")");
  }
  return OkStatus();
}

Status PksBackend::AuditFrame(FrameNum frame, const FrameInfo& info, Pte leaf) const {
  switch (info.type) {
    case FrameType::kMonitor:
      if (pte::Present(leaf) && pte::Pkey(leaf) != layout::kMonitorKey) {
        return InternalError("monitor frame " + std::to_string(frame) +
                             " mapped without the monitor key");
      }
      break;
    case FrameType::kPtp:
      if (pte::Present(leaf) && pte::Pkey(leaf) != layout::kPtpKey) {
        return InternalError("PTP frame " + std::to_string(frame) +
                             " mapped without the PTP key");
      }
      break;
    default:
      break;
  }
  return OkStatus();
}

// ---------------------------------------------------------------------------
// TME-MK backend
// ---------------------------------------------------------------------------

TmeMkBackend::TmeMkBackend(uint64_t num_frames) : map_(num_frames) {}

uint32_t TmeMkBackend::ClassTag(ProtClass cls) const {
  // Class keyIDs mirror the PKS key numbering so audits read the same either way.
  switch (cls) {
    case ProtClass::kDefault:
      return 0;
    case ProtClass::kMonitor:
      return 1;
    case ProtClass::kPtp:
      return 2;
    case ProtClass::kKernelText:
      return 3;
    case ProtClass::kShadowStack:
      return 4;
  }
  return 0;
}

bool TmeMkBackend::ClassReadShared(ProtClass cls) const {
  return cls == ProtClass::kPtp || cls == ProtClass::kKernelText;
}

StatusOr<uint32_t> TmeMkBackend::AllocateSandboxDomain(int sandbox_id) {
  const uint32_t total = 1u << pte::kKeyIdBits;
  if (in_use_.size() >= max_sandbox_domains()) {
    return ResourceExhaustedError("all " + std::to_string(max_sandbox_domains()) +
                                  " TME-MK sandbox keyIDs in use");
  }
  // Next-fit over the sandbox keyID space so freshly freed keyIDs are not
  // immediately reused (a stale binding then misses instead of aliasing).
  uint32_t keyid = next_keyid_;
  while (in_use_.count(keyid) != 0) {
    ++keyid;
    if (keyid >= total) {
      keyid = kFirstSandboxKeyId;
    }
  }
  next_keyid_ = keyid + 1 >= total ? kFirstSandboxKeyId : keyid + 1;
  in_use_.insert(keyid);
  sandbox_keys_[sandbox_id] = keyid;
  ++domains_in_use_;
  return keyid;
}

void TmeMkBackend::ReleaseSandboxDomain(uint32_t tag) {
  if (in_use_.erase(tag) == 0) {
    return;
  }
  programmed_.erase(tag);
  for (auto it = sandbox_keys_.begin(); it != sandbox_keys_.end(); ++it) {
    if (it->second == tag) {
      sandbox_keys_.erase(it);
      break;
    }
  }
  if (domains_in_use_ > 0) {
    --domains_in_use_;
  }
}

uint32_t TmeMkBackend::DomainTagOf(int sandbox_id) const {
  const auto it = sandbox_keys_.find(sandbox_id);
  return it == sandbox_keys_.end() ? 0 : it->second;
}

void TmeMkBackend::BindFrame(Cpu* cpu, FrameNum frame, uint32_t tag,
                             bool read_shared) {
  if (cpu != nullptr) {
    // First use of a sandbox keyID programs its encryption key (PCONFIG);
    // every rebind pays the controller update.
    if (tag >= kFirstSandboxKeyId && programmed_.insert(tag).second) {
      cpu->cycles().Charge(cpu->costs().pconfig_key_program);
    }
    cpu->cycles().Charge(cpu->costs().frame_bind_op);
  }
  map_.Bind(frame, tag, read_shared);
}

void TmeMkBackend::InstallCpu(Cpu& cpu) const {
  // CET on: IBT + shadow stacks. No CR4.PKS, no PKRS view — the keyID bindings
  // at the controller are the protection; the CPU checks them against this map
  // whenever it is outside monitor context.
  cpu.TrustedWriteCr(4, cpu.cr4() | cr::kCr4Cet);
  cpu.TrustedWriteMsr(msr::kIa32SCet, msr::kCetIbtEn | msr::kCetShstkEn);
  cpu.TrustedWriteMsr(msr::kIa32Pl0Ssp, 0xFFFFA00000000000ULL + 0x1000 * cpu.index());
  cpu.SetKeyIdMap(&map_);
}

void TmeMkBackend::ScrambleOnExit(Cpu& cpu, uint64_t entropy) const {
  // No PKRS to scramble; the injected fault races the CET half of the exit
  // sequence, whose unconditional rewrite must still win.
  cpu.TrustedWriteMsr(msr::kIa32SCet, entropy >> 32);
  cpu.TrustedWriteMsr(msr::kIa32SCet, msr::kCetIbtEn | msr::kCetShstkEn);
}

uint64_t TmeMkBackend::InterruptViewToken(const Cpu& cpu) const {
  // The "view" is just the monitor-context flag: keyID checks are suspended in
  // monitor context and active outside it, with no register to save or revoke.
  return cpu.in_monitor() ? 1 : 0;
}

uint64_t TmeMkBackend::PinnedCr4() const {
  return cr::kCr4Smep | cr::kCr4Smap | cr::kCr4Cet;
}

Status TmeMkBackend::CheckMsrWrite(uint32_t index) const {
  switch (index) {
    // IA32_PKRS is architecturally writable but inert here: CR4.PKS is never
    // set, so a legacy kernel poking PKRS harms only itself. Refusing it would
    // needlessly break kernels that carry PKS code on non-PKS deployments.
    case msr::kIa32SCet:
      return PermissionDeniedError("IA32_S_CET is monitor-owned");
    case msr::kIa32Pl0Ssp:
      return PermissionDeniedError("IA32_PL0_SSP is monitor-owned");
    case msr::kIa32UintrTt:
      return PermissionDeniedError("IA32_UINTR_TT is monitor-owned");
    default:
      return OkStatus();
  }
}

Status TmeMkBackend::AuditCpu(const Cpu& cpu) const {
  // At a safe point no CPU is mid-gate, so none may still hold the monitor's
  // keyID-exempt context (the TME-MK analogue of a leaked monitor PKRS view).
  if (cpu.in_monitor()) {
    return InternalError("cpu " + std::to_string(cpu.index()) +
                         " still in monitor keyID context at a safe point");
  }
  return OkStatus();
}

Status TmeMkBackend::AuditFrame(FrameNum frame, const FrameInfo& info,
                                Pte leaf) const {
  const std::string who = "frame " + std::to_string(frame);
  auto expect_binding = [&](ProtClass cls) -> Status {
    if (map_.KeyOf(frame) != ClassTag(cls)) {
      return InternalError(who + " (" + ProtClassName(cls) +
                           ") not bound to its class keyID");
    }
    if (map_.ReadShared(frame) != ClassReadShared(cls)) {
      return InternalError(who + " (" + ProtClassName(cls) +
                           ") has the wrong read-shared binding");
    }
    // The kernel's own mapping must stay on the default keyID: a tagged direct
    // -map leaf would satisfy the controller check and re-open the frame.
    if (pte::Present(leaf) && pte::KeyId(leaf) != 0) {
      return InternalError(who + " (" + ProtClassName(cls) +
                           ") has a keyID-tagged kernel mapping");
    }
    return OkStatus();
  };
  switch (info.type) {
    case FrameType::kMonitor:
      return expect_binding(ProtClass::kMonitor);
    case FrameType::kPtp:
      return expect_binding(ProtClass::kPtp);
    case FrameType::kKernelText:
      return expect_binding(ProtClass::kKernelText);
    case FrameType::kSandboxConfined: {
      const uint32_t owner_tag = DomainTagOf(info.owner_sandbox);
      if (owner_tag == 0) {
        return InternalError(who + " confined but its owner has no keyID");
      }
      if (map_.KeyOf(frame) != owner_tag) {
        return InternalError(who + " confined but not bound to its owner's keyID");
      }
      if (map_.ReadShared(frame)) {
        return InternalError(who + " confined but bound read-shared");
      }
      break;
    }
    case FrameType::kSandboxTemplate:
      // Template frames are shared read-only into every clone: bound to the
      // default keyID with the read-shared bit so any clone's untagged mapping
      // may read them, while writes (which would need an exact keyID match)
      // are impossible through any view.
      if (map_.KeyOf(frame) != 0) {
        return InternalError(who + " template frame bound to a non-default keyID");
      }
      if (!map_.ReadShared(frame)) {
        return InternalError(who + " template frame not bound read-shared");
      }
      break;
    default:
      break;
  }
  return OkStatus();
}

std::unique_ptr<IsolationBackend> MakeIsolationBackend(IsolationKind kind,
                                                       uint64_t num_frames) {
  switch (kind) {
    case IsolationKind::kPks:
      return std::make_unique<PksBackend>();
    case IsolationKind::kTmeMk:
      return std::make_unique<TmeMkBackend>(num_frames);
  }
  return std::make_unique<PksBackend>();
}

}  // namespace erebor
