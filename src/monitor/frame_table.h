// Monitor-side physical frame ownership table.
//
// Every policy decision the monitor makes (W^X, PTP write protection, single-mapping
// of confined pages, shared-conversion restrictions) is a function of what a frame
// *is*; this table is the authoritative record, writable only by the monitor.
#ifndef EREBOR_SRC_MONITOR_FRAME_TABLE_H_
#define EREBOR_SRC_MONITOR_FRAME_TABLE_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/hw/types.h"

namespace erebor {

enum class FrameType : uint8_t {
  kNormal = 0,        // ordinary kernel/user memory
  kFirmware,          // boot firmware
  kMonitor,           // monitor code/data/stacks (PKS key 1)
  kPtp,               // page-table page (PKS key 2, read-only to the kernel)
  kKernelText,        // kernel code (W^X: never writable)
  kShadowStack,       // CET shadow stacks
  kSandboxConfined,   // confined sandbox memory (single mapping, pinned)
  kSandboxCommon,     // common (shared read-only) sandbox memory
  kSharedIo,          // device-visible window (only region convertible to shared)
  kSandboxTemplate,   // frozen template-sandbox pages shared read-only into
                      // copy-on-write clones (many mappings, all read-only)
};

std::string FrameTypeName(FrameType type);

struct FrameInfo {
  FrameType type = FrameType::kNormal;
  int owner_sandbox = -1;   // kSandboxConfined / kSandboxCommon owner (-1 = none)
  uint32_t map_count = 0;   // number of live leaf mappings (single-mapping policy)
  Paddr ptp_root = 0;       // kPtp: the address-space root this PTP belongs to
  uint8_t ptp_level = 0;    // kPtp: paging level (4 = PML4 root, 1 = leaf table);
                            // 0 = not yet linked into a table hierarchy
  bool pinned = false;      // confined pages are pinned (no swap)
  // Reverse map: physical address of the last supervisor leaf PTE mapping this frame
  // (normally its direct-map entry). Lets the monitor retrofit protection keys when a
  // frame is re-typed *after* the mapping was created (e.g. a PTP allocated from the
  // general pool at runtime).
  Paddr supervisor_leaf_pa = 0;
};

class FrameTable {
 public:
  explicit FrameTable(uint64_t num_frames) : frames_(num_frames) {}

  FrameInfo& info(FrameNum frame) { return frames_[frame]; }
  const FrameInfo& info(FrameNum frame) const { return frames_[frame]; }
  uint64_t size() const { return frames_.size(); }

  Status SetType(FrameNum frame, FrameType type);
  Status SetRange(FrameNum first, uint64_t count, FrameType type);

  uint64_t CountType(FrameType type) const;

 private:
  std::vector<FrameInfo> frames_;
};

}  // namespace erebor

#endif  // EREBOR_SRC_MONITOR_FRAME_TABLE_H_
