// EREBOR-MONITOR: the privileged CVM security monitor (paper sections 5-6).
//
// Stage-1 boot: only the firmware and the monitor are loaded and measured (so a remote
// client's quote verification pins the monitor binary). The monitor claims its memory,
// installs PKS keys/CET/gates on every vCPU and arms the sensitive-instruction fence.
// Stage-2 boot: the monitor receives the service provider's kernel image, byte-scans
// all executable sections for sensitive instructions, and loads it only if clean.
//
// At runtime the monitor exposes the gated EMC surface (the kernel's only route to
// privileged operations), enforces the MMU policy, runs the sandbox manager, and
// terminates the attestation-rooted secure channel.
#ifndef EREBOR_SRC_MONITOR_MONITOR_H_
#define EREBOR_SRC_MONITOR_MONITOR_H_

#include <memory>

#include "src/common/metrics.h"
#include "src/common/trace.h"
#include "src/host/vmm.h"
#include "src/kernel/image.h"
#include "src/kernel/kernel.h"
#include "src/monitor/channel.h"
#include "src/monitor/emc_dispatch.h"
#include "src/monitor/emc_ring.h"
#include "src/monitor/gates.h"
#include "src/monitor/isolation.h"
#include "src/monitor/mmu_policy.h"
#include "src/monitor/sandbox.h"
#include "src/monitor/sim_lock.h"

namespace erebor {

// /dev/erebor ioctl commands (the LibOS toolchain and the untrusted proxy use these).
namespace emc_ioctl {
inline constexpr uint64_t kDeclareConfined = 1;  // arg: {va, len}
inline constexpr uint64_t kInput = 2;            // arg: {buf_va, size_inout}
inline constexpr uint64_t kOutput = 3;           // arg: {buf_va, size}
inline constexpr uint64_t kProxyDeliver = 4;     // arg: {buf_va, len}
inline constexpr uint64_t kProxyFetch = 5;       // arg: {buf_va, cap} -> returns len
// arg: {buf_va, len}; buf holds concatenated [LE32 packet_len | packet] frames.
// One EMC crossing ingests the whole burst (batched per-session under the
// per-sandbox lock plan) instead of one crossing per packet.
inline constexpr uint64_t kProxyDeliverBatch = 6;
}  // namespace emc_ioctl

// Software side-channel mitigations (paper section 12 "Digital side/covert channel
// mitigations"): optional, off by default, each trading throughput for channel
// bandwidth reduction.
struct MitigationConfig {
  // Rate limiting for sandbox exits: once a sandbox exceeds the budget within a
  // one-second (2.1e9-cycle) window, every further exit pays a stall.
  bool rate_limit_exits = false;
  uint64_t max_exits_per_window = 10'000;
  Cycles exit_stall_cycles = 50'000;

  // Cache/TLB eviction-enforced exiting: flush on every sandbox exit so the kernel
  // cannot probe the sandbox's cache footprint.
  bool flush_on_exit = false;
  Cycles flush_cycles = 30'000;

  // Leakage-free quantized communication intervals: results are released only on
  // fixed interval boundaries, hiding processing time.
  bool quantize_output = false;
  Cycles output_interval = 10'000'000;
};

// MonitorCounters lives in emc_dispatch.h so descriptor rows can name their
// family counter by member pointer.

class EreborMonitor {
 public:
  // `isolation` selects the backend enforcing intra-kernel domain separation
  // (src/monitor/isolation.h): kPks is the paper's design and the default;
  // kTmeMk trades the PKRS gate writes for per-frame keyID bindings and lifts
  // the 11-sandbox domain ceiling to ~2K.
  EreborMonitor(Machine* machine, TdxModule* tdx, HostVmm* host,
                IsolationKind isolation = IsolationKind::kPks);

  // ---- Boot ----
  // arm_fence=false supports the exit-protection-only evaluation ablation, which keeps
  // the kernel's direct privileged execution (not security-complete).
  Status BootStage1(const Bytes& firmware_image, bool arm_fence = true);
  StatusOr<KernelImage> LoadKernelImage(const Bytes& kelf_bytes);  // stage 2
  Status AttachKernel(Kernel* kernel);

  const Bytes& monitor_image() const { return monitor_image_; }
  bool stage1_done() const { return stage1_done_; }

  // Enables batched MMU updates (one EMC amortized over a whole PTE batch) — the
  // optimization the paper points to for lowering fork/pagefault costs (section 9.1).
  void EnableBatchedMmu(bool enabled) { batched_mmu_ = enabled; }
  bool batched_mmu() const { return batched_mmu_; }

  // Enables the per-vCPU MMU submission/completion rings (the general form of
  // batched MMU updates: one EMC doorbell drains a whole descriptor window).
  // Off by default so every figure stays bit-identical without rings; see
  // src/monitor/emc_ring.h and DESIGN.md.
  void EnableMmuRings(bool enabled) {
    if (enabled) {
      rings_.Enable(machine_->num_cpus());
    } else {
      rings_.Disable();
    }
  }
  bool mmu_rings() const { return rings_.enabled(); }
  EmcRingTable& rings() { return rings_; }
  EmcRing* mmu_ring(int cpu_index) { return rings_.ring(cpu_index); }

  // Side-channel mitigation configuration (section 12); applies to sealed sandboxes.
  void SetMitigations(const MitigationConfig& config) { mitigations_ = config; }
  const MitigationConfig& mitigations() const { return mitigations_; }

  // EMC locking layer. kSharded (default) serializes per sandbox + per frame
  // shard; kGlobal is the one-big-lock baseline the emc_scaling bench compares
  // against. Contention simulation is opt-in and off by default so every
  // single-vCPU figure stays bit-identical (see sim_lock.h).
  EmcLockTable& locks() { return locks_; }
  void SetEmcLocking(EmcLocking mode) { locks_.set_mode(mode); }
  void SetLockContention(bool on) { locks_.set_simulate_contention(on); }

  // ---- EMC surface (PrivilegedOps routes here) ----
  Status EmcWritePte(Cpu& cpu, Paddr entry_pa, Pte value);
  Status EmcWritePteBatch(Cpu& cpu, const PrivilegedOps::PteUpdate* updates, size_t count);
  Status EmcRegisterPtp(Cpu& cpu, FrameNum frame, Paddr root_pa);
  Status EmcWriteCr(Cpu& cpu, int reg, uint64_t value);
  Status EmcWriteMsr(Cpu& cpu, uint32_t index, uint64_t value);
  Status EmcLoadIdt(Cpu& cpu, const IdtTable* table);
  Status EmcCopyToUser(Cpu& cpu, Vaddr dst, const uint8_t* src, uint64_t len);
  Status EmcCopyFromUser(Cpu& cpu, Vaddr src, uint8_t* dst, uint64_t len);
  Status EmcTdcall(Cpu& cpu, uint64_t leaf, uint64_t* args, size_t nargs);
  Status EmcTextPoke(Cpu& cpu, Paddr code_pa, const uint8_t* bytes, uint64_t len);
  // MMU-ring doorbell: one gate crossing that drains the calling vCPU's
  // submission ring through the dispatch core (emc_ring.cc). Per-descriptor
  // refusals are reported via CQE results; the call itself fails only on
  // structural ring abuse (overflowed window, poisoned ring) or gate refusal.
  Status EmcRingDoorbell(Cpu& cpu);
  // Dynamic kernel code (loadable module / JITed eBPF): the monitor byte-scans the
  // blob, installs it into fresh kernel-text frames (W^X from then on) and returns
  // the load address (paper section 5.2: dynamic code is validated before loading).
  StatusOr<Paddr> EmcLoadKernelModule(Cpu& cpu, const Bytes& code);

  // ---- Sandbox surface ----
  SandboxManager& sandboxes() { return *sandbox_mgr_; }
  StatusOr<Sandbox*> CreateSandbox(Task& leader, const SandboxSpec& spec);
  Status DeclareConfined(Cpu& cpu, Sandbox& sandbox, Vaddr va, uint64_t len);
  StatusOr<CommonRegion*> CreateCommonRegion(const std::string& name, uint64_t len);
  Status AttachCommon(Cpu& cpu, Sandbox& sandbox, int region_id, Vaddr va,
                      bool writable_until_seal);
  Status TeardownSandbox(Cpu& cpu, Sandbox& sandbox);
  // Template snapshots + copy-on-write clones (ROADMAP item 2; sandbox.h).
  Status SnapshotTemplate(Cpu& cpu, Sandbox& sandbox);
  StatusOr<Sandbox*> CloneSandbox(Cpu& cpu, Task& leader, Sandbox& tmpl,
                                  const SandboxSpec& spec);
  Status ActivateClone(Cpu& cpu, Sandbox& sandbox);

  // ---- Attestation + channel (driven by the untrusted proxy) ----
  // Feeds one wire packet from the network; responses (if any) are queued for fetch.
  Status ProxyDeliver(Cpu& cpu, const Bytes& wire);
  // Batched ingest: one gated EMC round trip for a burst of packets. Control
  // packets (hello/fin) are handled first in arrival order, then data records are
  // grouped per target sandbox and each group is ingested under a single
  // acquisition of that sandbox's lock — concurrent sessions on different vCPUs
  // contend only under the kGlobal plan, not kSharded. Every packet is processed;
  // the first failure (if any) is returned at the end.
  Status ProxyDeliverBatch(Cpu& cpu, const std::vector<Bytes>& wires);
  // Pops the next outbound wire packet across all sandboxes (empty = none).
  // source_sandbox_out (optional) receives the owning sandbox id so a failed copy-out
  // can requeue the packet instead of dropping it.
  StatusOr<Bytes> ProxyFetch(Cpu& cpu, int* source_sandbox_out = nullptr);

  // Direct injection used when no network path is configured (DebugFS-style testing
  // channel, mirroring the paper's artifact setup).
  Status DebugInstallClientData(Cpu& cpu, Sandbox& sandbox, const Bytes& data);
  StatusOr<Bytes> DebugFetchOutput(Sandbox& sandbox);

  // Walks the frame table and live mappings and verifies the global protection
  // invariants (single-mapped confined frames, keyed monitor/PTP/text mappings,
  // kernel W^X). Used as a test oracle and a debugging aid; returns the first
  // violation found.
  Status AuditInvariants();

  const MonitorCounters& counters() const { return counters_; }
  // Registry view of the same counters (every MonitorCounters field is registered as
  // an external cell under "monitor.<field>") plus monitor-owned histograms. The
  // struct accessor above stays the hot-path API; the registry is the export surface.
  MetricsRegistry& metrics() { return metrics_; }
  FrameTable& frame_table() { return *frame_table_; }
  MmuPolicy& policy() { return *policy_; }
  IsolationBackend& isolation() { return *isolation_; }
  const IsolationBackend& isolation() const { return *isolation_; }
  EmcGates& gates() { return *gates_; }
  Machine& machine() { return *machine_; }
  TdxModule& tdx() { return *tdx_; }
  Kernel* attached_kernel() { return kernel_; }

 private:
  friend class EmcPrivOps;

  // The single gated-dispatch path (emc_dispatch.cc): family counter, fault
  // point, gate entry with bounded transient retry, lock acquisition, cycle
  // charge, emc_total bump, trace emission, and argument validation — exactly
  // once per EMC, driven by the descriptor table row for `call.op`.
  Status EmcDispatch(Cpu& cpu, const EmcCall& call,
                     const std::function<Status()>& body);

  // Counts a policy denial and emits its trace event.
  void NoteDenial(Cpu& cpu);

  // Software-TLB shootdown after a monitor PTE store: any rewrite of a previously
  // present entry invalidates cached translations on every CPU. This is the monitor's
  // own TLB obligation — it must hold even for a malicious kernel that skips invlpg.
  void ShootdownAfterPteWrite(Cpu& cpu, Paddr entry_pa, Pte old_value, Pte new_value);

  // Shared EMC bodies (locks held by the dispatcher): the synchronous EMCs and
  // the ring drain run the identical policy/apply sequence through these.
  // `deferred` non-null defers TLB shootdowns into the batch for coalescing
  // (ring drains); null keeps the immediate per-write shootdown.
  Status WritePteBodyLocked(Cpu& cpu, Paddr entry_pa, Pte value,
                            TlbShootdownBatch* deferred);
  Status RegisterPtpBodyLocked(Cpu& cpu, FrameNum frame, Paddr root_pa);

  // Ring drain internals (emc_ring.cc).
  Status DrainRingLocked(Cpu& cpu, RingState& rs, const std::vector<RingSqe>& window,
                         uint32_t cq_head_snapshot, uint32_t* strikes_out);
  void RingPostStrikes(Cpu& cpu, RingState& rs, uint32_t strikes);
  // Quarantine fence (emc_ring.cc): flushes every ring bound to the sandbox —
  // in-flight SQEs complete with error CQEs (where the CQ has room) and the ring
  // is poisoned — so no descriptor staged before the quarantine can be applied
  // against frames the teardown scrub is about to release. Installed as the
  // SandboxManager quarantine hook.
  void FenceRingsOnQuarantine(Cpu& cpu, Sandbox& sandbox);

  // ioctl dispatch for /dev/erebor.
  StatusOr<uint64_t> DeviceIoctl(SyscallContext& ctx, Task& task, uint64_t cmd,
                                 Vaddr arg_va);

  // Guest-memory access for monitor use (privileged; no SMAP constraints).
  Status ReadGuest(AddressSpace& aspace, Vaddr va, uint8_t* out, uint64_t len);
  Status WriteGuest(AddressSpace& aspace, Vaddr va, const uint8_t* data, uint64_t len);

  StatusOr<uint64_t> CachedCpuid(Cpu& cpu, uint32_t leaf, bool allow_hypercall);
  StatusOr<TdQuote> GenerateQuote(Cpu& cpu, const std::array<uint8_t, 64>& report_data);

  Status HandleHello(Cpu& cpu, const Packet& packet);
  Status HandleDataRecord(Cpu& cpu, const RecordView& view);
  Status HandleFin(Cpu& cpu, const Packet& packet);
  // Record admission + authenticate-then-decrypt for one data record; the caller
  // holds the target sandbox's lock (so a batch can amortize one acquisition
  // across a whole per-sandbox group).
  Status IngestDataRecordLocked(Cpu& cpu, Sandbox& sandbox, const RecordView& view);

  Machine* machine_;
  TdxModule* tdx_;
  HostVmm* host_;
  Kernel* kernel_ = nullptr;

  Bytes monitor_image_;
  std::unique_ptr<FrameTable> frame_table_;
  std::unique_ptr<IsolationBackend> isolation_;
  std::unique_ptr<MmuPolicy> policy_;
  std::unique_ptr<EmcGates> gates_;
  std::unique_ptr<SandboxManager> sandbox_mgr_;
  MonitorCounters counters_;
  MetricsRegistry metrics_;
  EmcLockTable locks_;
  EmcRingTable rings_;
  Rng rng_;

  const IdtTable* approved_idt_ = nullptr;
  CodeLabelId kernel_syscall_entry_ = kInvalidCodeLabel;
  CodeLabelId monitor_syscall_stub_ = kInvalidCodeLabel;
  std::map<uint32_t, uint64_t> cpuid_cache_;
  Paddr scratch_pa_ = 0;  // monitor-region scratch page for tdcall buffers

  // Applies the configured exit mitigations for one sealed-sandbox exit.
  void ApplyExitMitigations(Cpu& cpu, Sandbox& sandbox);
  // Forced huge-page splitting (gate must be held; see EmcWritePte).
  Status SplitHugePageLocked(Cpu& cpu, Paddr entry_pa, Pte huge_value);

  bool stage1_done_ = false;
  bool kernel_loaded_ = false;
  bool batched_mmu_ = false;
  MitigationConfig mitigations_;
};

// PrivilegedOps backend that routes every sensitive operation through the monitor's
// EMC gates (the instrumented kernel build).
class EmcPrivOps : public PrivilegedOps {
 public:
  explicit EmcPrivOps(EreborMonitor* monitor) : monitor_(monitor) {}

  Status WritePte(Cpu& cpu, Paddr entry_pa, Pte value) override {
    return monitor_->EmcWritePte(cpu, entry_pa, value);
  }
  Status WritePteBatch(Cpu& cpu, const PteUpdate* updates, size_t count) override {
    if (!monitor_->batched_mmu()) {
      return PrivilegedOps::WritePteBatch(cpu, updates, count);  // one EMC per entry
    }
    return monitor_->EmcWritePteBatch(cpu, updates, count);
  }
  Status RegisterPtp(Cpu& cpu, FrameNum frame, Paddr root_pa) override {
    return monitor_->EmcRegisterPtp(cpu, frame, root_pa);
  }
  Status WriteCr(Cpu& cpu, int reg, uint64_t value) override {
    return monitor_->EmcWriteCr(cpu, reg, value);
  }
  Status WriteMsr(Cpu& cpu, uint32_t index, uint64_t value) override {
    return monitor_->EmcWriteMsr(cpu, index, value);
  }
  Status LoadIdt(Cpu& cpu, const IdtTable* table) override {
    return monitor_->EmcLoadIdt(cpu, table);
  }
  Status CopyToUser(Cpu& cpu, Vaddr dst, const uint8_t* src, uint64_t len) override {
    return monitor_->EmcCopyToUser(cpu, dst, src, len);
  }
  Status CopyFromUser(Cpu& cpu, Vaddr src, uint8_t* dst, uint64_t len) override {
    return monitor_->EmcCopyFromUser(cpu, src, dst, len);
  }
  Status Tdcall(Cpu& cpu, uint64_t leaf, uint64_t* args, size_t nargs) override {
    return monitor_->EmcTdcall(cpu, leaf, args, nargs);
  }
  Status TextPoke(Cpu& cpu, Paddr code_pa, const uint8_t* bytes, uint64_t len) override {
    return monitor_->EmcTextPoke(cpu, code_pa, bytes, len);
  }
  Status RingDoorbell(Cpu& cpu) override { return monitor_->EmcRingDoorbell(cpu); }
  EmcRing* mmu_ring(int cpu_index) override {
    return monitor_->mmu_ring(cpu_index);
  }
  uint64_t emc_count() const override { return monitor_->counters().emc_total; }

 private:
  EreborMonitor* monitor_;
};

// Builds the monitor's own binary image (measured in stage 1; contains the gate code
// with its legitimate sensitive instructions).
Bytes BuildMonitorImage();

}  // namespace erebor

#endif  // EREBOR_SRC_MONITOR_MONITOR_H_
