#include "src/monitor/frame_table.h"

namespace erebor {

std::string FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kNormal:
      return "normal";
    case FrameType::kFirmware:
      return "firmware";
    case FrameType::kMonitor:
      return "monitor";
    case FrameType::kPtp:
      return "ptp";
    case FrameType::kKernelText:
      return "kernel-text";
    case FrameType::kShadowStack:
      return "shadow-stack";
    case FrameType::kSandboxConfined:
      return "sandbox-confined";
    case FrameType::kSandboxCommon:
      return "sandbox-common";
    case FrameType::kSharedIo:
      return "shared-io";
    case FrameType::kSandboxTemplate:
      return "sandbox-template";
  }
  return "?";
}

Status FrameTable::SetType(FrameNum frame, FrameType type) {
  if (frame >= frames_.size()) {
    return OutOfRangeError("frame beyond table");
  }
  frames_[frame].type = type;
  return OkStatus();
}

Status FrameTable::SetRange(FrameNum first, uint64_t count, FrameType type) {
  if (first + count > frames_.size()) {
    return OutOfRangeError("frame range beyond table");
  }
  for (uint64_t i = 0; i < count; ++i) {
    frames_[first + i].type = type;
  }
  return OkStatus();
}

uint64_t FrameTable::CountType(FrameType type) const {
  uint64_t n = 0;
  for (const auto& f : frames_) {
    if (f.type == type) {
      ++n;
    }
  }
  return n;
}

}  // namespace erebor
