#include "src/monitor/channel.h"

#include <cassert>
#include <cstring>

#include "src/common/metrics.h"

namespace erebor {

namespace {

void Put32(Bytes& out, uint32_t v) {
  uint8_t tmp[4];
  StoreLe32(tmp, v);
  out.insert(out.end(), tmp, tmp + 4);
}

void Put64(Bytes& out, uint64_t v) {
  uint8_t tmp[8];
  StoreLe64(tmp, v);
  out.insert(out.end(), tmp, tmp + 8);
}

void PutBytes(Bytes& out, const Bytes& b) {
  Put32(out, static_cast<uint32_t>(b.size()));
  out.insert(out.end(), b.begin(), b.end());
}

void PutU256(Bytes& out, const U256& v) {
  const Bytes b = v.ToBytesBe();
  out.insert(out.end(), b.begin(), b.end());
}

class Reader {
 public:
  explicit Reader(const Bytes& wire) : wire_(wire) {}

  bool ok() const { return ok_; }

  uint8_t Get8() {
    if (!Need(1)) {
      return 0;
    }
    return wire_[pos_++];
  }
  uint32_t Get32() {
    if (!Need(4)) {
      return 0;
    }
    const uint32_t v = LoadLe32(wire_.data() + pos_);
    pos_ += 4;
    return v;
  }
  uint64_t Get64() {
    if (!Need(8)) {
      return 0;
    }
    const uint64_t v = LoadLe64(wire_.data() + pos_);
    pos_ += 8;
    return v;
  }
  Bytes GetBytes() {
    const uint32_t len = Get32();
    // The length prefix is attacker-controlled: it must be covered by bytes actually
    // present on the wire before any buffer is sized from it.
    if (len > wire_.size() || !Need(len)) {
      ok_ = false;
      return {};
    }
    Bytes b(wire_.begin() + pos_, wire_.begin() + pos_ + len);
    pos_ += len;
    return b;
  }
  U256 GetU256() {
    if (!Need(32)) {
      return U256();
    }
    const U256 v = U256::FromBytesBe(wire_.data() + pos_, 32);
    pos_ += 32;
    return v;
  }
  template <size_t N>
  void GetArray(std::array<uint8_t, N>& out) {
    if (!Need(N)) {
      return;
    }
    std::memcpy(out.data(), wire_.data() + pos_, N);
    pos_ += N;
  }

 private:
  bool Need(size_t n) {
    // Written as a subtraction so a near-SIZE_MAX `n` cannot wrap the comparison
    // (pos_ <= wire_.size() always holds).
    if (n > wire_.size() - pos_) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const Bytes& wire_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace

Bytes Packet::Serialize() const {
  Bytes out;
  out.push_back(static_cast<uint8_t>(type));
  Put32(out, static_cast<uint32_t>(sandbox_id));
  switch (type) {
    case PacketType::kClientHello:
      PutU256(out, client_public);
      out.insert(out.end(), nonce.begin(), nonce.end());
      break;
    case PacketType::kServerHello: {
      PutU256(out, monitor_public);
      // Quote: measurements, report data, mac, signature.
      const Bytes meas = quote.report.measurements.Serialize();
      PutBytes(out, meas);
      out.insert(out.end(), quote.report.report_data.begin(), quote.report.report_data.end());
      out.insert(out.end(), quote.report.mac.begin(), quote.report.mac.end());
      PutU256(out, quote.signature.commitment);
      PutU256(out, quote.signature.response);
      break;
    }
    case PacketType::kDataRecord:
    case PacketType::kResultRecord:
      Put64(out, record.sequence);
      PutBytes(out, record.ciphertext);
      out.insert(out.end(), record.tag.begin(), record.tag.end());
      break;
    case PacketType::kFin:
      break;
  }
  return out;
}

namespace {

StatusOr<Packet> DeserializeImpl(const Bytes& wire) {
  if (wire.size() > wire::kMaxWireBytes) {
    return InvalidArgumentError("packet exceeds the wire limit");
  }
  Reader reader(wire);
  Packet packet;
  packet.type = static_cast<PacketType>(reader.Get8());
  packet.sandbox_id = static_cast<int32_t>(reader.Get32());
  switch (packet.type) {
    case PacketType::kClientHello:
      packet.client_public = reader.GetU256();
      reader.GetArray(packet.nonce);
      break;
    case PacketType::kServerHello: {
      packet.monitor_public = reader.GetU256();
      const Bytes meas = reader.GetBytes();
      if (meas.size() != 32 * 5) {
        return InvalidArgumentError("bad measurement blob");
      }
      std::memcpy(packet.quote.report.measurements.mrtd.data(), meas.data(), 32);
      for (int i = 0; i < 4; ++i) {
        std::memcpy(packet.quote.report.measurements.rtmr[i].data(),
                    meas.data() + 32 * (i + 1), 32);
      }
      reader.GetArray(packet.quote.report.report_data);
      reader.GetArray(packet.quote.report.mac);
      packet.quote.signature.commitment = reader.GetU256();
      packet.quote.signature.response = reader.GetU256();
      break;
    }
    case PacketType::kDataRecord:
    case PacketType::kResultRecord: {
      packet.record.sequence = reader.Get64();
      packet.record.ciphertext = reader.GetBytes();
      reader.GetArray(packet.record.tag);
      break;
    }
    case PacketType::kFin:
      break;
    default:
      return InvalidArgumentError("unknown packet type");
  }
  if (!reader.ok()) {
    return InvalidArgumentError("truncated packet");
  }
  return packet;
}

}  // namespace

StatusOr<Packet> Packet::Deserialize(const Bytes& wire) {
  StatusOr<Packet> packet = DeserializeImpl(wire);
  MetricsRegistry::Global().Increment(packet.ok() ? "channel.packets_parsed"
                                                  : "channel.parse_rejects");
  return packet;
}

Bytes SealRecordWire(const AeadKeys& keys, PacketType type, int32_t sandbox_id,
                     uint64_t sequence, const uint8_t* plaintext, size_t len) {
  // Same bytes as Packet::Serialize for a data/result record, but the ciphertext
  // is produced in place in the wire buffer: one encryption pass, no staging copy.
  Bytes out(wire::kRecordHeaderBytes + len + wire::kRecordTagBytes);
  out[0] = static_cast<uint8_t>(type);
  StoreLe32(out.data() + 1, static_cast<uint32_t>(sandbox_id));
  StoreLe64(out.data() + 5, sequence);
  StoreLe32(out.data() + 13, static_cast<uint32_t>(len));
  const RecordAad aad{static_cast<uint8_t>(type), sandbox_id};
  const Digest256 tag =
      AeadSealInto(keys, aad, sequence, plaintext, len, out.data() + wire::kRecordHeaderBytes);
  std::memcpy(out.data() + wire::kRecordHeaderBytes + len, tag.data(), tag.size());
  return out;
}

namespace {

StatusOr<RecordView> ParseRecordWireImpl(const Bytes& wire) {
  if (wire.size() > wire::kMaxWireBytes) {
    return InvalidArgumentError("packet exceeds the wire limit");
  }
  if (wire.size() < wire::kRecordHeaderBytes + wire::kRecordTagBytes) {
    return InvalidArgumentError("truncated packet");
  }
  RecordView view;
  view.type = static_cast<PacketType>(wire[0]);
  if (view.type != PacketType::kDataRecord && view.type != PacketType::kResultRecord) {
    return InvalidArgumentError("not a record packet");
  }
  view.sandbox_id = static_cast<int32_t>(LoadLe32(wire.data() + 1));
  view.sequence = LoadLe64(wire.data() + 5);
  const uint32_t ct_len = LoadLe32(wire.data() + 13);
  // The length prefix is attacker-controlled; a record carries exactly one
  // ciphertext and one tag, so it must match the remaining bytes exactly.
  if (ct_len != wire.size() - wire::kRecordHeaderBytes - wire::kRecordTagBytes) {
    return InvalidArgumentError("record length prefix mismatch");
  }
  view.ciphertext = wire.data() + wire::kRecordHeaderBytes;
  view.ciphertext_len = ct_len;
  std::memcpy(view.tag.data(), wire.data() + wire::kRecordHeaderBytes + ct_len,
              view.tag.size());
  return view;
}

}  // namespace

StatusOr<RecordView> ParseRecordWire(const Bytes& wire) {
  StatusOr<RecordView> view = ParseRecordWireImpl(wire);
  MetricsRegistry::Global().Increment(view.ok() ? "channel.packets_parsed"
                                                : "channel.parse_rejects");
  return view;
}

StatusOr<Bytes> OpenRecordWire(const AeadKeys& keys, const RecordView& view,
                               uint64_t expected_sequence) {
  if (view.sequence != expected_sequence) {
    return PermissionDeniedError("AEAD record sequence mismatch (replay or reorder)");
  }
  Bytes plaintext(view.ciphertext_len);
  EREBOR_RETURN_IF_ERROR(AeadOpenInto(keys, view.Aad(), view.sequence, view.ciphertext,
                                      view.ciphertext_len, view.tag, plaintext.data()));
  return plaintext;
}

void NoteChannelAuthReject() {
  MetricsRegistry::Global().Increment("channel.corrupt_rejects");
}

namespace {

// Shared admission logic; `stash` is invoked only for kStashed so the zero-copy
// caller materializes a SealedRecord copy only when one is actually parked.
template <typename StashFn>
ChannelSession::RecordAdmit AdmitRecordImpl(ChannelSession& session, uint64_t seq,
                                            StashFn&& stash) {
  using RecordAdmit = ChannelSession::RecordAdmit;
  if (seq < session.next_recv_seq) {
    // Replay window: a duplicate of an already-accepted record. It is absorbed,
    // never re-decrypted or re-delivered (replay cannot double-install client data).
    ++session.duplicates;
    MetricsRegistry::Global().Increment("channel.duplicates");
    return RecordAdmit::kDuplicate;
  }
  if (seq > session.next_recv_seq) {
    if (seq - session.next_recv_seq > ChannelSession::kReorderWindow) {
      ++session.rejects;
      MetricsRegistry::Global().Increment("channel.rejects");
      return RecordAdmit::kRejected;
    }
    // Reordered ahead of a gap: stash the sealed record until the gap fills.
    // Nothing is decrypted out of order — AEAD still runs at exactly the
    // expected sequence.
    ++session.reorders;
    MetricsRegistry::Global().Increment("channel.reorders");
    stash();
    // Every key is in (next_recv_seq, next_recv_seq + kReorderWindow], so the
    // buffer can never hold more than kReorderWindow entries.
    assert(session.reorder.size() <= ChannelSession::kReorderWindow);
    return RecordAdmit::kStashed;
  }
  return RecordAdmit::kInSequence;
}

}  // namespace

ChannelSession::RecordAdmit ChannelSession::AdmitRecord(uint64_t seq,
                                                        const SealedRecord& record) {
  return AdmitRecordImpl(*this, seq, [&] { reorder[seq] = record; });
}

ChannelSession::RecordAdmit ChannelSession::AdmitRecord(const RecordView& view) {
  return AdmitRecordImpl(*this, view.sequence, [&] {
    SealedRecord& slot = reorder[view.sequence];
    slot.sequence = view.sequence;
    slot.ciphertext.assign(view.ciphertext, view.ciphertext + view.ciphertext_len);
    slot.tag = view.tag;
  });
}

bool ChannelSession::TakeDrainable(SealedRecord* out) {
  const auto it = reorder.find(next_recv_seq);
  if (it == reorder.end()) {
    return false;
  }
  *out = it->second;
  reorder.erase(it);
  return true;
}

void ChannelSession::AdvanceRecv() {
  ++next_recv_seq;
  // Prune every stash entry the window has passed. A record can be stashed AND
  // later accepted via direct in-sequence arrival; without this, that stale
  // stash entry (seq < next_recv_seq) would never be erased (TakeDrainable only
  // looks at exactly next_recv_seq) and the buffer would leak.
  reorder.erase(reorder.begin(), reorder.lower_bound(next_recv_seq));
  assert(reorder.size() <= kReorderWindow);
}

bool ChannelSession::IsHelloReplay(const U256& client_public,
                                   const std::array<uint8_t, 32>& nonce) const {
  return established && client_public == hello_client_public && nonce == hello_nonce;
}

void ChannelSession::CountRetransmit() {
  ++retransmits;
  MetricsRegistry::Global().Increment("channel.retries");
}

Digest256 HandshakeTranscript(const U256& client_public, const U256& monitor_public,
                              const std::array<uint8_t, 32>& nonce) {
  Sha256 hasher;
  const Bytes c = client_public.ToBytesBe();
  const Bytes m = monitor_public.ToBytesBe();
  hasher.Update(c);
  hasher.Update(m);
  hasher.Update(nonce.data(), nonce.size());
  return hasher.Finish();
}

StatusOr<Bytes> PadOutput(const Bytes& plaintext, uint64_t pad_quantum) {
  if (pad_quantum <= 8) {
    // 0 would divide by zero below; 1..8 cannot even hold the length prefix.
    return InvalidArgumentError("pad quantum must be > 8");
  }
  if (pad_quantum > wire::kMaxWireBytes) {
    return InvalidArgumentError("pad quantum exceeds the wire limit");
  }
  Bytes out(8);
  StoreLe64(out.data(), plaintext.size());
  out.insert(out.end(), plaintext.begin(), plaintext.end());
  const uint64_t target = ((out.size() + pad_quantum - 1) / pad_quantum) * pad_quantum;
  out.resize(target, 0);
  return out;
}

StatusOr<Bytes> UnpadOutput(const Bytes& padded) {
  if (padded.size() < 8) {
    return InvalidArgumentError("short padded buffer");
  }
  const uint64_t len = LoadLe64(padded.data());
  // Subtraction form: `len + 8` could wrap for an attacker-chosen length near 2^64
  // and slip past the check.
  if (len > padded.size() - 8) {
    return InvalidArgumentError("bad pad length");
  }
  return Bytes(padded.begin() + 8, padded.begin() + 8 + len);
}

}  // namespace erebor
