// Monitor invariant checker: the oracle run after injected faults (and on a cadence
// during chaos soaks) to prove that no fault — wherever it landed — degraded the
// security posture. Three families of invariants, each checkable at any *safe point*
// (between scheduler slices, with no CPU mid-gate):
//
//  1. Frames: monitor/PTP/text frames carry their PKS keys, confined frames are
//     single-mapped and unreachable through the kernel direct map, no protected frame
//     is host-shared (delegates to EreborMonitor::AuditInvariants).
//  2. Gates: every CPU is back in kernel mode — PKRS == KernelModePkrs(), S_CET still
//     has IBT+shadow-stack enabled, and the #INT-gate save stack is empty (an entry
//     left on it means some exit path skipped its restore).
//  3. Secrets: no registered plaintext client secret appears in any materialized
//     frame outside confined memory — a corrupted shepherd path that leaked plaintext
//     into kernel or shared memory is caught here.
//  4. Locks: the EMC locking discipline held — no lock-ordering or unheld-mutation
//     violation was recorded by LockAudit, and at a safe point no vCPU still holds
//     a lock (a held lock here means a dispatch path leaked a guard).
//  5. Rings: every enabled MMU ring's monitor-owned state is self-consistent —
//     published sq_head/cq_tail equal the shadows, the completion backlog fits
//     the ring, drain accounting balances (applied + rejected bounded by what
//     was consumed), and a ring at or past the strike limit is poisoned.
//  6. Quarantine: a quarantined sandbox is fully fenced — no live MMU-ring slots
//     (every ring still bound to it is poisoned with its pending window flushed),
//     no undelivered reorder-buffer stash, and no residual plaintext or outbound
//     queues (the teardown scrub left nothing deliverable behind).
//  7. Domains: isolation-domain accounting balances — every live sandbox holds
//     exactly one backend domain (unique, non-zero, matching the backend's own
//     record), torn-down sandboxes hold none, and the live count never exceeds
//     the backend's budget.
#ifndef EREBOR_SRC_MONITOR_INVARIANTS_H_
#define EREBOR_SRC_MONITOR_INVARIANTS_H_

#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/hw/types.h"

namespace erebor {

class EreborMonitor;

class InvariantChecker {
 public:
  explicit InvariantChecker(EreborMonitor* monitor) : monitor_(monitor) {}

  // Registers a plaintext pattern that must never appear outside confined frames.
  // Use >= 16 high-entropy bytes; short patterns risk false positives against
  // unrelated memory.
  void AddSecret(const Bytes& pattern);

  // Runs every family; returns the first violation (InternalError) or OkStatus.
  Status CheckAll();

  Status CheckFrames();   // family 1 (AuditInvariants)
  Status CheckGates();    // family 2
  Status CheckSecrets();  // family 3
  Status CheckLocks();       // family 4 (LockAudit discipline)
  Status CheckRings();       // family 5 (MMU-ring shadow-state consistency)
  Status CheckQuarantine();  // family 6 (quarantined sandboxes hold nothing live)
  Status CheckDomains();     // family 7 (isolation-domain accounting)

  uint64_t checks_run() const { return checks_run_; }
  uint64_t violations() const { return violations_; }

 private:
  EreborMonitor* monitor_;
  std::vector<Bytes> secrets_;
  uint64_t checks_run_ = 0;
  uint64_t violations_ = 0;
};

}  // namespace erebor

#endif  // EREBOR_SRC_MONITOR_INVARIANTS_H_
