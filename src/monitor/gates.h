// EMC entry/exit gates and the #INT gate (paper section 5.3, Figure 5).
//
// The entry gate is the only endbr64-marked label in the monitor: CET-IBT makes it the
// sole legal indirect-branch target, so the kernel can only ever enter monitor code at
// the top of the gate, which (1) grants this core's view of monitor memory (a PKRS
// write under PKS; implicit in the gate context under TME-MK), (2) switches to the
// protected per-core monitor stack, and (3) flips the vCPU's monitor-context flag. The
// exit gate reverses all three. The #INT gate protects EMC execution against
// preemption: interrupts arriving while in monitor context have their view token saved
// and revoked before the untrusted OS handler runs. The register discipline at every
// one of these points is the isolation backend's (src/monitor/isolation.h); the PKS
// backend reproduces the paper's PKRS wrmsr sequence bit for bit.
#ifndef EREBOR_SRC_MONITOR_GATES_H_
#define EREBOR_SRC_MONITOR_GATES_H_

#include <memory>
#include <vector>

#include "src/hw/machine.h"
#include "src/kernel/layout.h"

namespace erebor {

class IsolationBackend;

// PKRS views: what each protection key permits in normal (kernel) mode vs monitor mode.
inline constexpr uint64_t KernelModePkrs() {
  return pkrs::DenyAll(layout::kMonitorKey) | pkrs::DenyWrite(layout::kPtpKey) |
         pkrs::DenyWrite(layout::kKernelTextKey) | pkrs::DenyAll(layout::kShadowStackKey);
}
inline constexpr uint64_t MonitorModePkrs() { return 0; }  // grant all

class EmcGates {
 public:
  EmcGates(Machine* machine, IsolationBackend* isolation);

  // Registers the gate labels and per-core monitor stacks; enables CET on each CPU
  // (called from monitor stage-1 boot, running trusted).
  void Install();

  CodeLabelId entry_label() const { return entry_label_; }
  CodeLabelId internal_label() const { return internal_label_; }

  // The EMC path proper. Enter() performs the IBT-checked indirect branch to the entry
  // gate; on success the CPU is in monitor context with the monitor view granted.
  // Exit() returns to normal mode. Both charge their half of the round trip.
  Status Enter(Cpu& cpu);
  void Exit(Cpu& cpu);

  // #INT gate wrapping for an interrupt that arrives during EMC execution: saves and
  // revokes the view token around the untrusted handler. Interrupts nest (an NMI can
  // land inside a timer handler that itself preempted the monitor), so the save slot
  // is a per-CPU stack. InterruptRestore refuses an unbalanced call — a restore with
  // no prior save would otherwise hand the untrusted OS the monitor's view.
  void InterruptSave(Cpu& cpu);
  void InterruptRestore(Cpu& cpu);

  uint64_t entries() const { return entries_; }
  size_t interrupt_depth(int cpu) const { return saved_views_[cpu].size(); }

 private:
  Machine* machine_;
  IsolationBackend* isolation_;
  CodeLabelId entry_label_ = kInvalidCodeLabel;
  CodeLabelId exit_return_label_ = kInvalidCodeLabel;
  CodeLabelId internal_label_ = kInvalidCodeLabel;  // non-endbr body (attack target)
  std::vector<std::unique_ptr<ShadowStack>> shadow_stacks_;
  std::vector<std::vector<uint64_t>> saved_views_;  // per-CPU #INT-gate token stacks
  std::vector<Cycles> entry_ts_;  // per-CPU gate-entry timestamp (round-trip histogram)
  uint64_t entries_ = 0;
};

}  // namespace erebor

#endif  // EREBOR_SRC_MONITOR_GATES_H_
