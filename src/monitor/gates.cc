#include "src/monitor/gates.h"

#include "src/common/exec.h"
#include "src/common/faultpoint.h"
#include "src/common/metrics.h"
#include "src/common/trace.h"
#include "src/monitor/isolation.h"

namespace erebor {

EmcGates::EmcGates(Machine* machine, IsolationBackend* isolation)
    : machine_(machine), isolation_(isolation) {
  saved_views_.resize(machine->num_cpus());
  entry_ts_.resize(machine->num_cpus(), 0);
}

void EmcGates::Install() {
  CodeRegistry& registry = machine_->registry();
  entry_label_ = registry.Register("emc_entry_gate", CodeDomain::kMonitor, /*endbr=*/true);
  exit_return_label_ =
      registry.Register("emc_exit_return", CodeDomain::kMonitor, /*endbr=*/false);
  internal_label_ =
      registry.Register("monitor_internal_fn", CodeDomain::kMonitor, /*endbr=*/false);

  for (int i = 0; i < machine_->num_cpus(); ++i) {
    Cpu& cpu = machine_->cpu(i);
    // Per-core shadow stack, activated by this core's token.
    shadow_stacks_.push_back(
        std::make_unique<ShadowStack>("monitor_ss_cpu" + std::to_string(i)));
    (void)shadow_stacks_.back()->Activate(i);
    cpu.SetShadowStack(shadow_stacks_.back().get());
    // Backend register discipline: CET enables plus the backend's own view
    // install (PKS: CR4.PKS + kernel-mode PKRS; TME-MK: keyID map wiring).
    isolation_->InstallCpu(cpu);
  }
}

Status EmcGates::Enter(Cpu& cpu) {
  // Gate boundaries are the drain points for cross-CPU TLB maintenance under the
  // real-thread engine (the software analogue of taking the shootdown IPI at the
  // next interruptible point). Free when nothing is pending: one relaxed load.
  cpu.DrainTlbInvalidations();
  if (FaultInjector::Armed() &&
      FaultInjector::Global().Fire("gates.enter", FaultAction::kFail)) {
    // Injected transient entry refusal (e.g. the host preempted the vCPU on the
    // very instruction of the indirect branch). No gate state was touched, so the
    // caller can simply retry the crossing.
    return UnavailableError("EAGAIN: injected gate-entry fault");
  }
  // The kernel's instrumented call site branches indirectly to the entry gate; IBT
  // verifies the endbr64 marker.
  EREBOR_RETURN_IF_ERROR(cpu.IndirectBranch(entry_label_));
  // Shadow stack records the return into kernel code for the eventual exit gate ret.
  EREBOR_RETURN_IF_ERROR(cpu.ShadowCall(exit_return_label_));
  // Entry gate body: grant the monitor view, switch stacks, mark monitor context.
  cpu.cycles().Charge(cpu.costs().emc_round_trip / 2);
  isolation_->GateEnter(cpu);
  cpu.SetMonitorContext(true);
  CounterAdd(entries_);
  entry_ts_[cpu.index()] = cpu.cycles().now();
  Tracer::Global().Record(TraceEvent::kEmcEnter, cpu.index(), cpu.cycles().now());
  if (FaultInjector::Armed() &&
      FaultInjector::Global().Fire("gates.enter", FaultAction::kPreempt)) {
    // Adversarial interrupt timing: a host-injected interrupt lands the instant EMC
    // execution begins. The #INT gate must save and revoke the monitor view around
    // the untrusted handler and restore it afterwards — the classic PKU-gate
    // interleaving that invariant checks then verify survived.
    InterruptSave(cpu);
    cpu.cycles().Charge(cpu.costs().int_gate_overhead);  // the handler's work
    InterruptRestore(cpu);
    NoteFaultRecovered();
  }
  return OkStatus();
}

void EmcGates::Exit(Cpu& cpu) {
  cpu.DrainTlbInvalidations();
  cpu.cycles().Charge(cpu.costs().emc_round_trip - cpu.costs().emc_round_trip / 2);
  if (FaultInjector::Armed()) {
    const FaultDecision decision = FaultInjector::Global().At("gates.exit");
    if (decision.action == FaultAction::kCorrupt) {
      // Simulated gate-register scramble racing the exit sequence (PKRS + S_CET
      // under PKS, S_CET alone under TME-MK — a no-op write in the unfaulted
      // baseline, so it is only modeled on the fault path). The exit gate's
      // unconditional rewrite below must leave the CPU in the exact kernel-mode
      // view regardless; the invariant checker verifies the registers after
      // every injected fault.
      isolation_->ScrambleOnExit(cpu, decision.entropy);
      NoteFaultRecovered();
    }
  }
  isolation_->GateExit(cpu);
  cpu.SetMonitorContext(false);
  // Balanced shadow-stack return; a mismatch would raise #CP.
  (void)cpu.ShadowReturn(exit_return_label_);
  Tracer& tracer = Tracer::Global();
  if (tracer.enabled()) {
    const Cycles now = cpu.cycles().now();
    // Gated time plus both gate halves: comparable to the paper's EMC round trip.
    const Cycles in_monitor = now - entry_ts_[cpu.index()];
    tracer.Record(TraceEvent::kEmcExit, cpu.index(), now, -1, in_monitor);
    MetricsRegistry::Global()
        .GetHistogram("trace.emc_round_trip_cycles")
        ->Observe(in_monitor + cpu.costs().emc_round_trip);
  }
}

void EmcGates::InterruptSave(Cpu& cpu) {
  cpu.cycles().Charge(cpu.costs().int_gate_overhead);
  saved_views_[cpu.index()].push_back(isolation_->InterruptViewToken(cpu));
  isolation_->InterruptRevoke(cpu);
  cpu.SetMonitorContext(false);
  Tracer::Global().Record(TraceEvent::kIntGateSave, cpu.index(), cpu.cycles().now(), -1,
                          saved_views_[cpu.index()].size());
}

void EmcGates::InterruptRestore(Cpu& cpu) {
  std::vector<uint64_t>& stack = saved_views_[cpu.index()];
  if (stack.empty()) {
    // Unbalanced restore: nothing was saved on this CPU, so there is no monitor
    // context to return to. Granting the saved-slot view here would let the untrusted
    // OS manufacture a monitor view grant; stay in the kernel view instead.
    MetricsRegistry::Global().Increment("gates.unbalanced_int_restore");
    return;
  }
  const uint64_t restored = stack.back();
  stack.pop_back();
  isolation_->InterruptRestoreView(cpu, restored);
  // A nested restore returns to the *outer interrupt handler's* kernel view, not to
  // the monitor; only the outermost restore re-grants monitor context.
  cpu.SetMonitorContext(isolation_->TokenGrantsMonitor(restored));
  Tracer::Global().Record(TraceEvent::kIntGateRestore, cpu.index(), cpu.cycles().now(),
                          -1, stack.size());
}

}  // namespace erebor
