// MMU-ring doorbell + drain: one EMC gate crossing amortized over a whole
// submission window of MMU descriptors (see src/kernel/mmu_ring.h for the ABI
// and src/monitor/emc_ring.h for the trust model).
//
// The doorbell runs through the table-driven dispatch core like every other
// EMC: EmcOp::kRingDoorbell has a descriptor row, a fault site, a Table-4 unit
// cost, a validator, and a lock plan. The lock plan is computed from a snapshot
// of the SQ window taken *before* dispatch — the shard locks cover exactly the
// frames the drain will touch, and a slot the kernel mutates after the snapshot
// simply is not the slot being validated (mid-drain mutation is harmless by
// construction). Inside the dispatch body each descriptor is validated, charged
// its own Table-4 cost, traced with its own family event, and applied through
// the same Locked bodies as the synchronous EMCs; TLB shootdowns are deferred
// into a TlbShootdownBatch and flushed once per drain, deduplicated.
//
// Hostile shapes — unknown opcodes, orphan span payloads, span overruns,
// out-of-range or misaligned targets, overlapping PTE writes, forged sandbox
// ids, wrapped head/tail indexes — are refused *without* charging any Table-4
// cost and strike-counted; at EmcRingTable::kStrikeLimit the ring is poisoned
// and its bound sandbox (if any) quarantined. Policy refusals (MmuPolicy saying
// no) are ordinary denials: error CQE, NoteDenial, no strike.
#include <set>

#include "src/common/exec.h"
#include "src/monitor/monitor.h"

namespace erebor {

namespace {

// Structural screen for a PTE-write target: the monitor must not dereference
// attacker-chosen addresses, and two writes to the same slot inside one window
// (an "overlapping range") would make the drain outcome order-dependent.
Status ScreenPteTarget(Paddr entry_pa, uint64_t frames, std::set<Paddr>* targets) {
  if ((entry_pa & 7) != 0) {
    return InvalidArgumentError("misaligned PTE target");
  }
  if (FrameOf(entry_pa) >= frames) {
    return OutOfRangeError("PTE target outside physical memory");
  }
  if (!targets->insert(entry_pa).second) {
    return InvalidArgumentError("overlapping PTE targets in one submission window");
  }
  return OkStatus();
}

}  // namespace

Status EreborMonitor::EmcRingDoorbell(Cpu& cpu) {
  RingState* rs = rings_.state(cpu.index());
  if (rs == nullptr) {
    return FailedPreconditionError("MMU rings are not enabled");
  }
  if (rs->poisoned) {
    return PermissionDeniedError("MMU ring poisoned after repeated hostile submissions");
  }

  // One snapshot of the untrusted indexes; every decision below uses it.
  const uint32_t sq_tail = rs->ring.sq_tail.load(std::memory_order_relaxed);
  const uint32_t cq_head = rs->ring.cq_head.load(std::memory_order_relaxed);
  const uint32_t pending = sq_tail - rs->shadow_sq_head;
  const uint32_t cq_backlog = rs->shadow_cq_tail - cq_head;

  EmcCall call{};
  call.op = EmcOp::kRingDoorbell;
  call.args.count = pending;
  call.args.len = cq_backlog;
  call.sandbox_id = rs->bound_sandbox;

  // Snapshot the SQ window before dispatch and derive the frame-shard plan from
  // the copy, so the locks taken match the descriptors actually processed.
  std::vector<RingSqe> window;
  if (pending > 0 && pending <= EmcRing::kSlots) {
    window.reserve(pending);
    for (uint32_t i = 0; i < pending; ++i) {
      window.push_back(rs->ring.sq[(rs->shadow_sq_head + i) & EmcRing::kMask]);
    }
    for (const RingSqe& sqe : window) {
      switch (sqe.op) {
        case RingOp::kWritePte:
        case RingOp::kTlbShootdown:
          call.shard_mask |= 1ull << EmcLockTable::ShardOf(FrameOf(sqe.arg0));
          break;
        case RingOp::kRegisterPtp:
        case RingOp::kFrameReclaim:
          call.shard_mask |= 1ull << EmcLockTable::ShardOf(sqe.arg0);
          break;
        default:
          break;
      }
    }
  }

  uint32_t strikes = 0;
  const Status st = EmcDispatch(cpu, call, [&]() -> Status {
    return DrainRingLocked(cpu, *rs, window, cq_head, &strikes);
  });
  // A wrapped/forged index refused by the validator is itself a hostile
  // submission: the window never reached the drain, so strike it here.
  if (!st.ok() && st.code() == ErrorCode::kOutOfRange) {
    CounterAdd(counters_.ring_strikes);
    ++strikes;
  }
  RingPostStrikes(cpu, *rs, strikes);
  return st;
}

Status EreborMonitor::DrainRingLocked(Cpu& cpu, RingState& rs,
                                      const std::vector<RingSqe>& window,
                                      uint32_t cq_head_snapshot,
                                      uint32_t* strikes_out) {
  ++rs.doorbells;
  TlbShootdownBatch shootdowns;
  std::set<Paddr> targets;  // PTE slots written in this window
  uint32_t strikes = 0;
  const uint64_t frames = frame_table_->size();

  const auto cq_free = [&]() {
    return EmcRing::kSlots - (rs.shadow_cq_tail - cq_head_snapshot);
  };
  const auto post = [&](uint64_t user_data, const Status& st) {
    RingCqe cqe;
    cqe.user_data = user_data;
    cqe.result = st.ok() ? 0 : -static_cast<int32_t>(st.code());
    rs.ring.cq[rs.shadow_cq_tail & EmcRing::kMask] = cqe;
    ++rs.shadow_cq_tail;
  };
  // Structural (hostile-shaped) refusal: no Table-4 charge was or will be made
  // for this descriptor — a forged submission must not bill anyone.
  const auto reject_shape = [&](const RingSqe& sqe, const Status& st) {
    CounterAdd(counters_.ring_rejects);
    CounterAdd(counters_.ring_strikes);
    ++rs.rejected;
    ++strikes;
    NoteDenial(cpu);
    post(sqe.user_data, st);
  };
  // Policy refusal after the descriptor was charged: the body already counted
  // its denial; record the reject and complete with the error.
  const auto reject_policy = [&](const RingSqe& sqe, const Status& st) {
    CounterAdd(counters_.ring_rejects);
    ++rs.rejected;
    post(sqe.user_data, st);
  };
  const auto applied = [&](const RingSqe& sqe) {
    CounterAdd(counters_.ring_descriptors);
    ++rs.applied;
    post(sqe.user_data, OkStatus());
  };
  // Per-descriptor Table-4 charge + family trace, mirroring what EmcDispatch
  // does for the equivalent synchronous call (emc_total is bumped once for the
  // doorbell, not per descriptor — that is the entire point of the ring).
  const auto charge = [&](TraceEvent event, Cycles op_cycles) {
    cpu.cycles().Charge(op_cycles);
    Tracer::Global().Record(event, cpu.index(), cpu.cycles().now(), rs.bound_sandbox,
                            op_cycles);
  };

  size_t i = 0;
  uint32_t consumed = 0;
  while (i < window.size()) {
    if (cq_free() == 0) {
      // CQ backpressure: the kernel has not reaped. Stop consuming; the rest of
      // the window stays submitted and the next doorbell resumes it.
      break;
    }
    const RingSqe& sqe = window[i];
    size_t span = 1;

    if (static_cast<uint8_t>(sqe.op) >= static_cast<uint8_t>(RingOp::kCount)) {
      reject_shape(sqe, InvalidArgumentError("unknown ring opcode"));
      ++i;
      ++consumed;
      continue;
    }
    if ((sqe.flags & ring_flags::kSpanPayload) != 0) {
      // A payload slot reached the descriptor position: the owning span header
      // was missing or under-counted.
      reject_shape(sqe, InvalidArgumentError("orphan span payload slot"));
      ++i;
      ++consumed;
      continue;
    }
    if (sqe.sandbox_id != -1 && sqe.sandbox_id != rs.bound_sandbox) {
      // Forged sandbox id: the lock plan covers only the ring's binding, so a
      // descriptor naming anyone else must never execute (or bill the victim).
      reject_shape(sqe, PermissionDeniedError(
                            "descriptor names a sandbox the ring is not bound to"));
      ++i;
      ++consumed;
      continue;
    }

    switch (sqe.op) {
      case RingOp::kNop:
        post(sqe.user_data, OkStatus());
        break;

      case RingOp::kWritePte: {
        Status shape = ScreenPteTarget(sqe.arg0, frames, &targets);
        if (!shape.ok()) {
          reject_shape(sqe, shape);
          break;
        }
        CounterAdd(counters_.emc_pte);
        charge(TraceEvent::kEmcPte, cpu.costs().monitor_pte_op);
        const Status st = WritePteBodyLocked(cpu, sqe.arg0, sqe.arg1, &shootdowns);
        if (!st.ok()) {
          reject_policy(sqe, st);
        } else {
          applied(sqe);
        }
        break;
      }

      case RingOp::kPteSpan: {
        const size_t count = sqe.count;
        if (count == 0 || i + 1 + count > window.size()) {
          // Overrun spans consume only the header; the stranded payload slots
          // behind it are rejected as orphans on the following iterations.
          reject_shape(sqe, OutOfRangeError("span overruns the submission window"));
          break;
        }
        span = 1 + count;
        Status shape = OkStatus();
        for (size_t j = 0; j < count && shape.ok(); ++j) {
          const RingSqe& p = window[i + 1 + j];
          if (p.op != RingOp::kWritePte ||
              (p.flags & ring_flags::kSpanPayload) == 0) {
            shape = InvalidArgumentError("span payload slot is not a flagged PTE write");
          } else {
            shape = ScreenPteTarget(p.arg0, frames, &targets);
          }
        }
        if (!shape.ok()) {
          reject_shape(sqe, shape);
          break;
        }
        // Charged like EmcWritePteBatch: one family bump, unit cost x count,
        // one kEmcPteBatch trace; then validate-all-before-apply so a denial
        // mid-span leaves the page tables untouched.
        CounterAdd(counters_.emc_pte);
        charge(TraceEvent::kEmcPteBatch,
               cpu.costs().monitor_pte_op * static_cast<Cycles>(count));
        std::vector<PolicyDecision> decisions(count);
        Status st = OkStatus();
        for (size_t j = 0; j < count && st.ok(); ++j) {
          const RingSqe& p = window[i + 1 + j];
          decisions[j] = policy_->CheckPteWrite(p.arg0, p.arg1);
          if (decisions[j].needs_split) {
            st = PermissionDeniedError("huge-page splits are not supported in batches");
          } else if (!decisions[j].allowed) {
            st = PermissionDeniedError("ring PTE span refused at entry " +
                                       std::to_string(j) + ": " +
                                       decisions[j].denial_reason);
          }
        }
        if (!st.ok()) {
          NoteDenial(cpu);
          reject_policy(sqe, st);
          break;
        }
        for (size_t j = 0; j < count; ++j) {
          const RingSqe& p = window[i + 1 + j];
          LockAudit::Global().ExpectFrameShardHeld(
              cpu.index(), EmcLockTable::ShardOf(FrameOf(p.arg0)));
          const Pte old = machine_->memory().Read64(p.arg0);
          machine_->memory().Write64(p.arg0, decisions[j].adjusted_value);
          policy_->NoteLeafWrite(old, decisions[j].adjusted_value, p.arg0);
          if (pte::Present(old) && old != decisions[j].adjusted_value) {
            shootdowns.Add(p.arg0);
          }
        }
        applied(sqe);
        break;
      }

      case RingOp::kTlbShootdown: {
        if ((sqe.arg0 & 7) != 0 || FrameOf(sqe.arg0) >= frames) {
          reject_shape(sqe, OutOfRangeError("shootdown target outside physical memory"));
          break;
        }
        charge(TraceEvent::kEmcPte, cpu.costs().monitor_pte_op);
        shootdowns.Add(sqe.arg0);
        applied(sqe);
        break;
      }

      case RingOp::kRegisterPtp: {
        if (sqe.arg0 >= frames) {
          reject_shape(sqe, OutOfRangeError("PTP frame beyond physical memory"));
          break;
        }
        CounterAdd(counters_.emc_ptp_register);
        charge(TraceEvent::kEmcPtpRegister, cpu.costs().monitor_pte_op);
        const Status st = RegisterPtpBodyLocked(cpu, sqe.arg0, sqe.arg1);
        if (!st.ok()) {
          reject_policy(sqe, st);
        } else {
          applied(sqe);
        }
        break;
      }

      case RingOp::kFrameReclaim: {
        if (sqe.arg0 >= frames) {
          reject_shape(sqe, OutOfRangeError("reclaim frame beyond physical memory"));
          break;
        }
        FrameInfo& info = frame_table_->info(sqe.arg0);
        if (info.type != FrameType::kNormal) {
          NoteDenial(cpu);
          reject_policy(sqe, PermissionDeniedError(
                                 "reclaim of " + FrameTypeName(info.type) +
                                 " frame refused"));
          break;
        }
        charge(TraceEvent::kEmcPte, cpu.costs().page_zero);
        machine_->memory().ZeroFrame(sqe.arg0);
        applied(sqe);
        break;
      }

      case RingOp::kCount:
        break;  // unreachable: screened above
    }

    i += span;
    consumed += static_cast<uint32_t>(span);
  }

  // Publish monitor progress from the shadows (never read back from shared
  // memory) and flush the coalesced shootdown set once for the whole window.
  rs.shadow_sq_head += consumed;
  rs.ring.sq_head.store(rs.shadow_sq_head, std::memory_order_relaxed);
  rs.ring.cq_tail.store(rs.shadow_cq_tail, std::memory_order_relaxed);

  for (const Paddr entry_pa : shootdowns.entries()) {
    CounterAdd(counters_.tlb_shootdowns);
    if (Tlb::hooks().pte_shootdown) {
      machine_->ShootdownTlbLeaf(entry_pa, cpu.index());
    }
  }
  if (shootdowns.coalesced() > 0) {
    CounterAdd(counters_.ring_shootdowns_coalesced, shootdowns.coalesced());
  }

  *strikes_out = strikes;
  return OkStatus();
}

void EreborMonitor::FenceRingsOnQuarantine(Cpu& cpu, Sandbox& sandbox) {
  (void)cpu;  // the fence is free: quarantine cleanup is never billed to anyone
  if (!rings_.enabled()) {
    return;
  }
  for (int i = 0; i < rings_.size(); ++i) {
    RingState* rs = rings_.state(i);
    if (rs == nullptr || rs->bound_sandbox != sandbox.id) {
      continue;
    }
    // Snapshot the untrusted indexes once and clamp: a forged sq_tail cannot make
    // the fence walk more slots than the ring holds.
    const uint32_t sq_tail = rs->ring.sq_tail.load(std::memory_order_relaxed);
    const uint32_t cq_head = rs->ring.cq_head.load(std::memory_order_relaxed);
    uint32_t pending = sq_tail - rs->shadow_sq_head;
    if (pending > EmcRing::kSlots) {
      pending = EmcRing::kSlots;
    }
    for (uint32_t j = 0; j < pending; ++j) {
      const RingSqe sqe = rs->ring.sq[rs->shadow_sq_head & EmcRing::kMask];
      ++rs->shadow_sq_head;
      ++rs->rejected;  // consumed but never applied: drain accounting stays balanced
      if (rs->shadow_cq_tail - cq_head < EmcRing::kSlots) {
        RingCqe cqe;
        cqe.user_data = sqe.user_data;
        cqe.result = -static_cast<int32_t>(ErrorCode::kUnavailable);
        rs->ring.cq[rs->shadow_cq_tail & EmcRing::kMask] = cqe;
        ++rs->shadow_cq_tail;
      }
    }
    rs->ring.sq_head.store(rs->shadow_sq_head, std::memory_order_relaxed);
    rs->ring.cq_tail.store(rs->shadow_cq_tail, std::memory_order_relaxed);
    // The binding is dead: refuse every further doorbell. Anything the kernel
    // stages after this point is inert by construction.
    rs->poisoned = true;
    MetricsRegistry::Global().Increment("ring.quarantine_fenced");
    if (pending > 0) {
      MetricsRegistry::Global().Increment("ring.quarantine_flushed_sqes", pending);
    }
  }
}

void EreborMonitor::RingPostStrikes(Cpu& cpu, RingState& rs, uint32_t strikes) {
  if (strikes == 0) {
    return;
  }
  rs.strikes += strikes;
  if (rs.strikes < EmcRingTable::kStrikeLimit || rs.poisoned) {
    return;
  }
  // Enough hostile-shaped submissions: poison the ring (every further doorbell
  // refused) and quarantine the bound sandbox so the abuse cannot continue
  // through a fresh binding. A kernel ring (-1) has no sandbox to kill; the
  // poisoned ring itself is the containment.
  rs.poisoned = true;
  if (rs.bound_sandbox >= 0) {
    Sandbox* sandbox = sandbox_mgr_->Find(rs.bound_sandbox);
    if (sandbox != nullptr) {
      sandbox_mgr_->Quarantine(cpu, *sandbox, "hostile MMU-ring submissions");
    }
  }
}

}  // namespace erebor
