// Erebor-Sandbox lifecycle and data-protection enforcement (paper section 6).
//
// A sandbox wraps one guest process (all its tasks). Its memory is split into
// *confined* regions (exclusively owned, pinned, single-mapped, unmapped from the
// kernel direct map) and *common* regions (monitor-managed frames shared read-only
// across sandboxes). Once client data is installed the sandbox is *sealed*: system
// calls and synchronous exits become fatal, user-interrupt sending is disabled, common
// memory becomes read-only, and external interrupts have the register file scrubbed
// before the untrusted OS sees it.
#ifndef EREBOR_SRC_MONITOR_SANDBOX_H_
#define EREBOR_SRC_MONITOR_SANDBOX_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>

#include "src/kernel/kernel.h"
#include "src/monitor/channel.h"
#include "src/monitor/frame_table.h"
#include "src/monitor/mmu_policy.h"
#include "src/monitor/sim_lock.h"

namespace erebor {

struct SandboxSpec {
  std::string name;
  uint64_t confined_budget_bytes = 32ull << 20;
  int max_threads = 8;
  uint64_t output_pad_bytes = 4096;
  // Consecutive shepherd/channel faults tolerated before the sandbox is quarantined.
  uint64_t max_fault_strikes = 8;
};

// kQuarantined is a terminal state like kTornDown (memory already scrubbed and
// released) but records that the monitor gave up on the sandbox because of repeated
// faults or an invariant violation, rather than a normal end-of-session teardown.
enum class SandboxState : uint8_t { kInitializing, kSealed, kTornDown, kQuarantined };

struct CommonRegion {
  int id = -1;
  std::string name;
  FrameNum first_frame = 0;
  uint64_t num_frames = 0;
  int attach_count = 0;
};

struct SandboxExitStats {
  uint64_t page_faults = 0;
  uint64_t timer_interrupts = 0;
  uint64_t ve_exits = 0;
  uint64_t device_interrupts = 0;
  uint64_t kills = 0;
  uint64_t ioctl_io = 0;
  uint64_t total() const {
    return page_faults + timer_interrupts + ve_exits + device_interrupts;
  }
};

struct Sandbox {
  int id = -1;
  SandboxSpec spec;
  SandboxState state = SandboxState::kInitializing;
  Task* leader = nullptr;
  std::shared_ptr<AddressSpace> aspace;

  // Per-sandbox EMC serialization (kSharded locking): every gated operation
  // that mutates this sandbox holds it; LockAudit checks the discipline at the
  // manager's mutation entry points. Bound to the id in SandboxManager::Create.
  SimLock lock;

  std::vector<std::pair<FrameNum, uint64_t>> confined_ranges;  // (first, count)
  uint64_t confined_bytes = 0;
  std::vector<int> attached_regions;

  ChannelSession session;
  std::deque<Bytes> input_plaintext;  // decrypted client payloads awaiting INPUT ioctl
  std::deque<Bytes> outbound_wire;    // serialized result packets awaiting the proxy

  SandboxExitStats exits;
  // Register save area used by exit interposition (monitor memory in the real system).
  Gprs interposition_save;
  bool interposition_active = false;
  // Side-channel mitigation bookkeeping (exit-rate window).
  Cycles exit_window_start = 0;
  uint64_t exits_in_window = 0;

  // Graceful-degradation accounting: consecutive faults observed on this sandbox's
  // trusted paths (reset to zero on any success). Reaching spec.max_fault_strikes
  // quarantines the sandbox.
  uint64_t fault_strikes = 0;
  std::string quarantine_reason;

  // Isolation domain held from Create until Teardown/Quarantine: a PKS key
  // (5..15) or a TME-MK keyID (5..2047), allocated through the backend.
  uint32_t domain_tag = 0;

  // ---- Template/clone machinery (ROADMAP item 2) ----
  // A template sandbox is frozen after attestation/LibOS init: its confined
  // frames are retyped kSandboxTemplate, rebound to the default domain
  // read-shared, and its own mappings go read-only. Clones map those frames
  // copy-on-write and re-confine each page privately on first write.
  bool is_template = false;
  // Clones only: the template sandbox id whose pages this clone shares.
  int clone_of = -1;
  // Warm standbys hold no isolation domain until promotion (the PKS budget is
  // 11 keys; a parked pool must not starve live tenants). Set at clone time,
  // cleared by ActivateClone.
  bool domain_deferred = false;
  // Template only: the frozen confined layout recorded at snapshot time, used
  // by CloneFromTemplate to rebuild each clone's page tables.
  struct TemplateRange {
    Vaddr va = 0;
    FrameNum first = 0;
    uint64_t count = 0;
  };
  std::vector<TemplateRange> template_ranges;
  // Template only: clones currently sharing our frames (blocks teardown).
  uint32_t live_clones = 0;
  // Clones only: pages privately re-confined by copy-on-write breaks.
  uint64_t cow_broken_pages = 0;
};

// Manages all sandboxes. The monitor owns exactly one of these.
class SandboxManager {
 public:
  SandboxManager(Machine* machine, FrameTable* frames, MmuPolicy* policy,
                 IsolationBackend* isolation);

  // Binds the kernel (for task lookups) and takes ownership of the confined-memory
  // CMA range.
  void Attach(Kernel* kernel, FrameNum cma_first, uint64_t cma_frames);

  // ---- Lifecycle ----
  StatusOr<Sandbox*> Create(Task& leader, const SandboxSpec& spec);
  Sandbox* Find(int id);
  Sandbox* FindByTask(const Task& task);

  // Declares a confined region of `len` bytes at sandbox VA `va` (pre-seal only).
  Status DeclareConfined(Cpu& cpu, Sandbox& sandbox, Vaddr va, uint64_t len);

  // ---- Template snapshots and copy-on-write clones (ROADMAP item 2) ----
  // Freezes a fully initialized (pre-seal) sandbox as a clone template: its
  // confined frames are retyped kSandboxTemplate, rebound to the default
  // domain read-shared, its own leaf mappings go read-only, and its isolation
  // domain returns to the backend (a parked template serves no tenant).
  Status SnapshotTemplate(Cpu& cpu, Sandbox& sandbox);

  // Creates a new sandbox whose confined layout is the template's, mapped
  // copy-on-write: every page references the shared template frame, read-only
  // and untagged. No isolation domain is allocated (domain_deferred) — clones
  // are warm standbys until ActivateClone. Cost is one monitor PTE op per
  // page, not the 126k-cycle attestation + LibOS bring-up of a cold boot.
  StatusOr<Sandbox*> CloneFromTemplate(Cpu& cpu, Task& leader, Sandbox& tmpl,
                                       const SandboxSpec& spec);

  // Promotion half of the warm pool: allocates the clone's isolation domain.
  // Idempotent; failure (backend budget exhausted) is counted in
  // fleet.domain_exhausted exactly like a refused cold-boot admission.
  Status ActivateClone(Cpu& cpu, Sandbox& sandbox);

  // Re-confines one shared template page privately: allocate a CMA frame, copy
  // the template contents, bind the clone's own domain tag (the TME-MK keyID
  // retrofit), and remap the leaf writable+tagged. Lazily activates a deferred
  // clone on its first break.
  Status BreakCowShare(Cpu& cpu, Sandbox& sandbox, Vaddr page_va);

  // #PF-driven CoW entry point (called by the monitor's interrupt interposer
  // before the kernel's demand-fault path). Returns true if `addr` hit a
  // shared template page and the share was broken (the faulting access should
  // be retried), false if this fault is not ours to handle.
  StatusOr<bool> HandleCowWrite(Cpu& cpu, Sandbox& sandbox, Vaddr addr);

  // Common regions.
  StatusOr<CommonRegion*> CreateCommonRegion(const std::string& name, uint64_t len,
                                             FrameAllocator& pool);
  CommonRegion* FindCommonRegion(const std::string& name);
  Status AttachCommon(Cpu& cpu, Sandbox& sandbox, int region_id, Vaddr va,
                      bool writable_until_seal);

  // Seals the sandbox (first client data installed): common memory goes read-only,
  // user interrupts are disabled, exits become fatal.
  Status Seal(Cpu& cpu, Sandbox& sandbox);

  // Zeroizes and releases everything (paper: cleanup after the client session ends).
  Status Teardown(Cpu& cpu, Sandbox& sandbox);

  // Quarantines a misbehaving sandbox: scrubs and releases its memory exactly like
  // Teardown, then parks it in kQuarantined so the rest of the system keeps running
  // while this one is permanently fenced off. Idempotent.
  Status Quarantine(Cpu& cpu, Sandbox& sandbox, const std::string& reason);

  // Invoked once per (non-idempotent) Quarantine, before the teardown scrub, so
  // subsystems holding per-sandbox state the manager cannot see — the MMU-ring
  // table with its in-flight SQEs — can drain and fence it. Without the fence a
  // quarantined sandbox's still-bound ring keeps accepting doorbells and its
  // pending descriptors would be applied against released frames.
  using QuarantineHook = std::function<void(Cpu&, Sandbox&)>;
  void SetQuarantineHook(QuarantineHook hook) { quarantine_hook_ = std::move(hook); }

  // ---- Exit-policy queries used by the monitor's interposition stubs ----
  // Returns true if `nr` is permitted for a task of this sandbox in its current state.
  bool SyscallPermitted(const Sandbox& sandbox, const Task& task, int nr,
                        const uint64_t* args) const;

  // ---- Trusted data movement (the data shepherd) ----
  // Writes `data` into sandbox memory at `va` (must be confined) / reads from it.
  Status CopyIntoSandbox(Cpu& cpu, Sandbox& sandbox, Vaddr va, const uint8_t* data,
                         uint64_t len);
  Status CopyFromSandbox(Cpu& cpu, Sandbox& sandbox, Vaddr va, uint8_t* out, uint64_t len);

  // Validates that a user mapping request (root, frame, writable) is a legitimate
  // common-region mapping — the MmuPolicy hook.
  Status ValidateCommonMapping(Paddr root, FrameNum frame, bool writable) const;

  const std::map<int, std::unique_ptr<Sandbox>>& sandboxes() const { return sandboxes_; }
  std::map<int, std::unique_ptr<Sandbox>>& mutable_sandboxes() { return sandboxes_; }
  uint64_t cma_frames_used() const { return cma_ ? cma_->used() : 0; }

 private:
  Status UnmapFromDirectMap(Cpu& cpu, FrameNum first, uint64_t count);
  PteWriter TrustedWriter(Cpu& cpu, AddressSpace& aspace);

  Machine* machine_;
  FrameTable* frames_;
  MmuPolicy* policy_;
  IsolationBackend* isolation_;
  Kernel* kernel_ = nullptr;
  std::unique_ptr<FrameAllocator> cma_;
  std::map<int, std::unique_ptr<Sandbox>> sandboxes_;
  // Deque, not vector: CreateCommonRegion hands out pointers into this container and
  // a vector would invalidate them on reallocation.
  std::deque<CommonRegion> common_regions_;
  QuarantineHook quarantine_hook_;
  int next_id_ = 1;
};

}  // namespace erebor

#endif  // EREBOR_SRC_MONITOR_SANDBOX_H_
