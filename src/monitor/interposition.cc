// Exit interposition and the /dev/erebor driver (paper sections 5.4 and 6.2):
// the syscall/interrupt/#VE interposers installed on kernel attach, the sealed
// exit mitigations, the cpuid cache, and the ioctl surface the LibOS and the
// untrusted proxy drive. EMC dispatch itself lives in emc_dispatch.cc.
#include <cstring>

#include "src/common/faultpoint.h"
#include "src/common/log.h"
#include "src/monitor/monitor.h"

namespace erebor {

Status EreborMonitor::AttachKernel(Kernel* kernel) {
  kernel_ = kernel;
  const FrameNum cma_first = kernel->cma().first();
  const uint64_t cma_frames = kernel->cma().count();
  sandbox_mgr_->Attach(kernel, cma_first, cma_frames);

  // Interposition stubs: syscalls, interrupts/exceptions, #VE.
  kernel->SetSyscallInterposer(
      [this](SyscallContext& ctx, Task& task, int nr, const uint64_t* args,
             const SyscallEntryFn& kernel_entry) -> StatusOr<uint64_t> {
        Cpu& cpu = ctx.cpu();
        cpu.cycles().Charge(cpu.costs().syscall_stub_overhead);
        Sandbox* sandbox = sandbox_mgr_->FindByTask(task);
        if (sandbox != nullptr &&
            !sandbox_mgr_->SyscallPermitted(*sandbox, task, nr, args)) {
          ++counters_.sandbox_kills;
          ++sandbox->exits.kills;
          kernel_->KillTask(task, "sealed sandbox attempted syscall " + std::to_string(nr));
          // The kill observer below has already quarantined (scrubbed) the sandbox;
          // only this sandbox dies — every other session keeps running.
          (void)sandbox_mgr_->Teardown(cpu, *sandbox);
          return AbortedError("sandbox killed: illegal exit via syscall");
        }
        return kernel_entry(ctx, task, nr, args);
      });

  // Any kill of a sandbox member — by the monitor's own policy above or by the kernel
  // (segfault, injected allocator exhaustion that exhausted its retry) — fences the
  // whole sandbox off: scrub confined memory, drop the session, park in kQuarantined.
  // A dead-but-sealed sandbox must never linger half-alive holding client plaintext.
  kernel->SetKillObserver([this](Task& task, const std::string& reason) {
    Sandbox* sandbox = sandbox_mgr_->FindByTask(task);
    if (sandbox == nullptr || sandbox->state == SandboxState::kTornDown ||
        sandbox->state == SandboxState::kQuarantined) {
      return;
    }
    (void)sandbox_mgr_->Quarantine(machine_->cpu(0), *sandbox,
                                   "member task killed: " + reason);
  });

  kernel->SetInterruptInterposer(
      [this](Cpu& cpu, const Fault& fault, const std::function<void()>& kernel_handler) {
        // #INT gate: an interrupt that lands during EMC execution must not leave the
        // OS running with monitor permissions.
        const bool was_in_monitor = cpu.in_monitor();
        if (was_in_monitor) {
          gates_->InterruptSave(cpu);
        }
        Task* task = kernel_ != nullptr ? kernel_->current(cpu.index()) : nullptr;
        Sandbox* sandbox = task != nullptr ? sandbox_mgr_->FindByTask(*task) : nullptr;
        // Copy-on-write service: a write #PF from a clone against a shared
        // template page is the monitor's to handle, never the kernel's — the
        // kernel's demand-fault path would map a fresh zeroed frame over the
        // live page. Break the share here and let the access retry; the
        // untrusted handler never runs, so no register scrub is needed.
        bool cow_handled = false;
        if (sandbox != nullptr && sandbox->clone_of != -1 &&
            fault.vector == Vector::kPageFault &&
            (fault.error_code & pf_err::kWrite) != 0) {
          SimLockGuard held = locks_.SandboxGuard(cpu, sandbox->lock);
          const auto broke = sandbox_mgr_->HandleCowWrite(cpu, *sandbox, fault.address);
          if (!broke.ok()) {
            // Hard break failure (CMA exhausted, promotion refused): contain it
            // like any other fatal sandbox fault — kill the task, which
            // quarantines the sandbox via the kill observer.
            ++counters_.sandbox_kills;
            ++sandbox->exits.kills;
            cow_handled = true;
          } else if (*broke) {
            if (sandbox->state == SandboxState::kSealed) {
              ++sandbox->exits.page_faults;  // still counts as a sandbox exit
            }
            cow_handled = true;
          }
          if (cow_handled && !broke.ok() && task != nullptr) {
            kernel_->KillTask(*task, "copy-on-write break failed: " +
                                         std::string(broke.status().message()));
          }
        }
        if (cow_handled) {
          // fall through to the #INT-gate restore below
        } else if (sandbox != nullptr && sandbox->state == SandboxState::kSealed) {
          // Exit interposition: save and scrub the register file before the untrusted
          // OS handler can observe it.
          cpu.cycles().Charge(cpu.costs().interposition_save_restore);
          sandbox->interposition_save = cpu.gprs();
          sandbox->interposition_active = true;
          cpu.gprs().Clear();
          ++counters_.scrubbed_interrupts;
          switch (fault.vector) {
            case Vector::kPageFault:
              ++sandbox->exits.page_faults;
              break;
            case Vector::kTimer:
              ++sandbox->exits.timer_interrupts;
              break;
            case Vector::kDevice:
              ++sandbox->exits.device_interrupts;
              break;
            default:
              break;
          }
          kernel_handler();
          cpu.gprs() = sandbox->interposition_save;
          sandbox->interposition_active = false;
          ApplyExitMitigations(cpu, *sandbox);
        } else {
          kernel_handler();
        }
        if (was_in_monitor) {
          gates_->InterruptRestore(cpu);
        }
      });

  kernel->SetVeInterposer(
      [this](SyscallContext& ctx, Task& task, uint32_t leaf,
             const std::function<StatusOr<uint64_t>()>& hypercall) -> StatusOr<uint64_t> {
        (void)hypercall;
        Sandbox* sandbox = sandbox_mgr_->FindByTask(task);
        if (sandbox != nullptr && sandbox->state == SandboxState::kSealed) {
          ++sandbox->exits.ve_exits;
          return CachedCpuid(ctx.cpu(), leaf, /*allow_hypercall=*/false);
        }
        return CachedCpuid(ctx.cpu(), leaf, /*allow_hypercall=*/true);
      });

  // The /dev/erebor driver (LibOS + proxy interface).
  kernel->RegisterDevice("/dev/erebor",
                         [this](SyscallContext& ctx, Task& task, uint64_t cmd,
                                Vaddr arg) { return DeviceIoctl(ctx, task, cmd, arg); });
  return OkStatus();
}

void EreborMonitor::ApplyExitMitigations(Cpu& cpu, Sandbox& sandbox) {
  if (mitigations_.flush_on_exit) {
    // Evict caches/TLB so the untrusted kernel cannot probe the sandbox's footprint.
    // The simulated TLB really flushes now (previously this was only a cycle charge);
    // the charge is unchanged so the mitigation stays cycle-neutral w.r.t. EREBOR_TLB.
    cpu.cycles().Charge(mitigations_.flush_cycles);
    ++counters_.cache_flushes;
    Tracer::Global().Record(TraceEvent::kTlbFlush, cpu.index(), cpu.cycles().now());
    if (Tlb::Enabled() && Tlb::hooks().flush_on_exit) {
      cpu.tlb().FlushAll();
    }
  }
  if (mitigations_.rate_limit_exits) {
    constexpr Cycles kWindow = 2'100'000'000;  // one second at 2.1 GHz
    const Cycles now = cpu.cycles().now();
    if (now - sandbox.exit_window_start >= kWindow) {
      sandbox.exit_window_start = now;
      sandbox.exits_in_window = 0;
    }
    if (++sandbox.exits_in_window > mitigations_.max_exits_per_window) {
      cpu.cycles().Charge(mitigations_.exit_stall_cycles);
      ++counters_.exit_stalls;
    }
  }
}

// ---- Guest memory helpers ----

Status EreborMonitor::ReadGuest(AddressSpace& aspace, Vaddr va, uint8_t* out,
                                uint64_t len) {
  uint64_t done = 0;
  while (done < len) {
    EREBOR_ASSIGN_OR_RETURN(const WalkResult walk, aspace.Lookup(va + done));
    const uint64_t take = std::min(len - done, kPageSize - ((va + done) & kPageMask));
    EREBOR_RETURN_IF_ERROR(machine_->memory().Read(walk.pa, out + done, take));
    done += take;
  }
  return OkStatus();
}

Status EreborMonitor::WriteGuest(AddressSpace& aspace, Vaddr va, const uint8_t* data,
                                 uint64_t len) {
  uint64_t done = 0;
  while (done < len) {
    EREBOR_ASSIGN_OR_RETURN(const WalkResult walk, aspace.Lookup(va + done));
    const uint64_t take = std::min(len - done, kPageSize - ((va + done) & kPageMask));
    EREBOR_RETURN_IF_ERROR(machine_->memory().Write(walk.pa, data + done, take));
    done += take;
  }
  return OkStatus();
}

// ---- cpuid cache ----

StatusOr<uint64_t> EreborMonitor::CachedCpuid(Cpu& cpu, uint32_t leaf,
                                              bool allow_hypercall) {
  const auto it = cpuid_cache_.find(leaf);
  if (it != cpuid_cache_.end()) {
    ++counters_.cached_cpuid_hits;
    cpu.cycles().Charge(cpu.costs().cached_cpuid_service);
    return it->second;
  }
  if (!allow_hypercall) {
    // Sealed sandbox asking for an uncached leaf: serve zero rather than exit.
    ++counters_.cached_cpuid_hits;
    cpu.cycles().Charge(cpu.costs().cached_cpuid_service);
    return 0;
  }
  // One hypercall, then cache (executed in monitor context: trusted tdcall).
  const bool was_in_monitor = cpu.in_monitor();
  cpu.SetMonitorContext(true);
  uint64_t args[3] = {static_cast<uint64_t>(GhciReason::kCpuid), leaf, 0};
  const Status st = cpu.Tdcall(tdcall_leaf::kVmcall, args, 3);
  cpu.SetMonitorContext(was_in_monitor);
  EREBOR_RETURN_IF_ERROR(st);
  cpuid_cache_[leaf] = args[1];
  return args[1];
}

// ---- /dev/erebor ioctl ----

StatusOr<uint64_t> EreborMonitor::DeviceIoctl(SyscallContext& ctx, Task& task,
                                              uint64_t cmd, Vaddr arg_va) {
  Cpu& cpu = ctx.cpu();
  Sandbox* sandbox = sandbox_mgr_->FindByTask(task);
  ++counters_.emc_sandbox;
  switch (cmd) {
    case emc_ioctl::kDeclareConfined: {
      if (sandbox == nullptr) {
        return FailedPreconditionError("declare-confined from non-sandbox task");
      }
      uint8_t buf[16];
      EREBOR_RETURN_IF_ERROR(ReadGuest(*task.aspace, arg_va, buf, sizeof(buf)));
      const Vaddr va = LoadLe64(buf);
      const uint64_t len = LoadLe64(buf + 8);
      EREBOR_RETURN_IF_ERROR(DeclareConfined(cpu, *sandbox, va, len));
      return 0;
    }
    case emc_ioctl::kInput: {
      if (sandbox == nullptr) {
        return FailedPreconditionError("input ioctl from non-sandbox task");
      }
      ++sandbox->exits.ioctl_io;
      uint8_t buf[16];
      EREBOR_RETURN_IF_ERROR(ReadGuest(*task.aspace, arg_va, buf, sizeof(buf)));
      const Vaddr dst = LoadLe64(buf);
      const uint64_t cap = LoadLe64(buf + 8);
      if (sandbox->input_plaintext.empty()) {
        return UnavailableError("EAGAIN");
      }
      const Bytes& data = sandbox->input_plaintext.front();
      if (data.size() > cap) {
        return OutOfRangeError("input larger than provided buffer");
      }
      EmcCall copy_call{};
      copy_call.op = EmcOp::kChannelOp;
      copy_call.sandbox_id = sandbox->id;
      const Status copy_st = EmcDispatch(cpu, copy_call, [&]() -> Status {
        return sandbox_mgr_->CopyIntoSandbox(cpu, *sandbox, dst, data.data(),
                                             data.size());
      });
      if (!copy_st.ok()) {
        // The input stays queued so a transient shepherd fault is retryable, but a
        // sandbox that keeps faulting gets quarantined — torn down and scrubbed —
        // rather than wedging the session forever.
        ++sandbox->fault_strikes;
        if (sandbox->fault_strikes >= sandbox->spec.max_fault_strikes) {
          EREBOR_RETURN_IF_ERROR(sandbox_mgr_->Quarantine(
              cpu, *sandbox, "repeated shepherd copy faults: " + copy_st.ToString()));
        }
        return copy_st;
      }
      if (sandbox->fault_strikes > 0) {
        // A queued input finally copied in after transient shepherd faults.
        sandbox->fault_strikes = 0;
        NoteFaultRecovered();
      }
      const uint64_t n = data.size();
      StoreLe64(buf + 8, n);
      EREBOR_RETURN_IF_ERROR(WriteGuest(*task.aspace, arg_va, buf, sizeof(buf)));
      sandbox->input_plaintext.pop_front();
      return n;
    }
    case emc_ioctl::kOutput: {
      if (sandbox == nullptr) {
        return FailedPreconditionError("output ioctl from non-sandbox task");
      }
      ++sandbox->exits.ioctl_io;
      uint8_t buf[16];
      EREBOR_RETURN_IF_ERROR(ReadGuest(*task.aspace, arg_va, buf, sizeof(buf)));
      const Vaddr src = LoadLe64(buf);
      const uint64_t len = LoadLe64(buf + 8);
      if (len > wire::kMaxWireBytes) {
        // The length is sandbox-controlled: bound it before sizing any buffer.
        return InvalidArgumentError("output length exceeds the wire limit");
      }
      Bytes payload(len);
      EmcCall out_call{};
      out_call.op = EmcOp::kChannelOp;
      out_call.sandbox_id = sandbox->id;
      const Status out_st = EmcDispatch(cpu, out_call, [&]() -> Status {
        EREBOR_RETURN_IF_ERROR(
            sandbox_mgr_->CopyFromSandbox(cpu, *sandbox, src, payload.data(), len));
        // Pad to the fixed output quantum, then seal (or emit plaintext-padded when no
        // session exists, the DebugFS-style channel).
        EREBOR_ASSIGN_OR_RETURN(const Bytes padded,
                                PadOutput(payload, sandbox->spec.output_pad_bytes));
        cpu.cycles().Charge(padded.size() * cpu.costs().crypto_per_byte_x100 / 100);
        Tracer::Global().Record(TraceEvent::kChannelEncrypt, cpu.index(),
                                cpu.cycles().now(), sandbox->id, padded.size());
        if (mitigations_.quantize_output) {
          // Release only at fixed interval boundaries: a result's timing no longer
          // reflects the (secret-dependent) processing time.
          const Cycles now = cpu.cycles().now();
          const Cycles boundary = ((now / mitigations_.output_interval) + 1) *
                                  mitigations_.output_interval;
          cpu.cycles().Charge(boundary - now);
          ++counters_.quantized_outputs;
        }
        if (sandbox->session.established) {
          // Seal straight into the wire buffer (no Packet round trip). Cache the
          // result for retransmission: if it is lost on the wire, the client's
          // duplicate data record triggers a re-send.
          sandbox->session.last_result_wire = SealRecordWire(
              sandbox->session.keys.server_to_client, PacketType::kResultRecord,
              sandbox->id, sandbox->session.next_send_seq++, padded);
          sandbox->outbound_wire.push_back(sandbox->session.last_result_wire);
        } else {
          sandbox->outbound_wire.push_back(padded);
        }
        return OkStatus();
      });
      EREBOR_RETURN_IF_ERROR(out_st);
      return len;
    }
    case emc_ioctl::kProxyDeliver: {
      if (sandbox != nullptr) {
        return PermissionDeniedError("proxy ioctls are not for sandbox tasks");
      }
      uint8_t buf[16];
      EREBOR_RETURN_IF_ERROR(ReadGuest(*task.aspace, arg_va, buf, sizeof(buf)));
      const Vaddr src = LoadLe64(buf);
      const uint64_t len = LoadLe64(buf + 8);
      if (len > wire::kMaxWireBytes) {
        // Proxy-supplied length: refuse before allocating (a hostile proxy could
        // otherwise demand a near-2^64-byte buffer).
        return InvalidArgumentError("proxy packet exceeds the wire limit");
      }
      Bytes wire(len);
      EREBOR_RETURN_IF_ERROR(ReadGuest(*task.aspace, src, wire.data(), len));
      EREBOR_RETURN_IF_ERROR(ProxyDeliver(cpu, wire));
      return 0;
    }
    case emc_ioctl::kProxyDeliverBatch: {
      if (sandbox != nullptr) {
        return PermissionDeniedError("proxy ioctls are not for sandbox tasks");
      }
      uint8_t buf[16];
      EREBOR_RETURN_IF_ERROR(ReadGuest(*task.aspace, arg_va, buf, sizeof(buf)));
      const Vaddr src = LoadLe64(buf);
      const uint64_t len = LoadLe64(buf + 8);
      if (len > wire::kMaxWireBytes) {
        return InvalidArgumentError("proxy batch exceeds the wire limit");
      }
      Bytes blob(len);
      EREBOR_RETURN_IF_ERROR(ReadGuest(*task.aspace, src, blob.data(), len));
      // Proxy-framed burst: [LE32 packet_len | packet]*. The framing is
      // proxy-controlled, so every prefix is bounded against the bytes present.
      std::vector<Bytes> wires;
      size_t off = 0;
      while (off < blob.size()) {
        if (blob.size() - off < 4) {
          return InvalidArgumentError("truncated batch frame header");
        }
        const uint32_t n = LoadLe32(blob.data() + off);
        off += 4;
        if (n > blob.size() - off) {
          return InvalidArgumentError("batch frame overruns the buffer");
        }
        wires.emplace_back(blob.begin() + off, blob.begin() + off + n);
        off += n;
      }
      EREBOR_RETURN_IF_ERROR(ProxyDeliverBatch(cpu, wires));
      return static_cast<uint64_t>(wires.size());
    }
    case emc_ioctl::kProxyFetch: {
      if (sandbox != nullptr) {
        return PermissionDeniedError("proxy ioctls are not for sandbox tasks");
      }
      uint8_t buf[16];
      EREBOR_RETURN_IF_ERROR(ReadGuest(*task.aspace, arg_va, buf, sizeof(buf)));
      const Vaddr dst = LoadLe64(buf);
      const uint64_t cap = LoadLe64(buf + 8);
      int source_sandbox = -1;
      auto wire = ProxyFetch(cpu, &source_sandbox);
      if (!wire.ok()) {
        return UnavailableError("EAGAIN");
      }
      // The proxy's buffer is ordinary pageable memory: fault it in before copying,
      // and requeue the packet (to its owning sandbox) if the copy cannot complete.
      Status st = wire->size() > cap ? OutOfRangeError("proxy buffer too small")
                                     : kernel_->FaultInUserRange(ctx, task, dst,
                                                                 wire->size());
      if (st.ok()) {
        st = WriteGuest(*task.aspace, dst, wire->data(), wire->size());
      }
      if (!st.ok()) {
        Sandbox* origin = sandbox_mgr_->Find(source_sandbox);
        // Only requeue into a live sandbox: a teardown or quarantine may have
        // raced the fetch, and its scrubbed queues must stay empty.
        if (origin != nullptr && origin->state != SandboxState::kTornDown &&
            origin->state != SandboxState::kQuarantined) {
          origin->outbound_wire.push_front(std::move(*wire));
        }
        return st;
      }
      return wire->size();
    }
    default:
      return InvalidArgumentError("unknown erebor ioctl " + std::to_string(cmd));
  }
}

}  // namespace erebor
