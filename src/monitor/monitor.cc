#include "src/monitor/monitor.h"

#include <cstring>

#include "src/common/faultpoint.h"
#include "src/common/log.h"

namespace erebor {

Bytes BuildMonitorImage() {
  // The monitor binary: entry gate (endbr64 + PKRS wrmsr + stack switch), exit gate,
  // #INT gate and the EMC dispatch body. It legitimately contains sensitive
  // instructions — it is measured (stage 1), not scanned.
  Bytes image;
  auto append = [&image](const Bytes& b) { image.insert(image.end(), b.begin(), b.end()); };
  append(EncodeEndbr64());                             // entry gate (sole endbr)
  append(EncodeSensitiveOp(SensitiveOp::kWrmsr));      // grant PKRS
  append({0x48, 0x89, 0xE0});                          // mov %rsp scratch
  append(EncodeSensitiveOp(SensitiveOp::kWrmsr));      // revoke PKRS (exit gate)
  append({0xC3});                                      // ret
  append(EncodeSensitiveOp(SensitiveOp::kMovToCr4));   // CR management
  append(EncodeSensitiveOp(SensitiveOp::kLidt));       // IDT control
  append(EncodeSensitiveOp(SensitiveOp::kTdcall));     // GHCI control
  append(EncodeSensitiveOp(SensitiveOp::kStac));
  append(EncodeSensitiveOp(SensitiveOp::kClac));
  append({'E', 'R', 'E', 'B', 'O', 'R', '-', 'M', 'O', 'N', 'I', 'T', 'O', 'R', '-', '1'});
  return image;
}

EreborMonitor::EreborMonitor(Machine* machine, TdxModule* tdx, HostVmm* host)
    : machine_(machine), tdx_(tdx), host_(host), rng_(0xE2EB02) {
  frame_table_ = std::make_unique<FrameTable>(machine->memory().num_frames());
  policy_ = std::make_unique<MmuPolicy>(frame_table_.get());
  gates_ = std::make_unique<EmcGates>(machine);
  sandbox_mgr_ = std::make_unique<SandboxManager>(machine, frame_table_.get(),
                                                  policy_.get());
  // Registry-backed counters: every MonitorCounters field is visible through the
  // metrics registry while ++counters_.<field> stays a plain increment.
  metrics_.RegisterExternalCounter("monitor.emc_total", &counters_.emc_total);
  metrics_.RegisterExternalCounter("monitor.emc_pte", &counters_.emc_pte);
  metrics_.RegisterExternalCounter("monitor.emc_ptp_register", &counters_.emc_ptp_register);
  metrics_.RegisterExternalCounter("monitor.emc_cr", &counters_.emc_cr);
  metrics_.RegisterExternalCounter("monitor.emc_msr", &counters_.emc_msr);
  metrics_.RegisterExternalCounter("monitor.emc_idt", &counters_.emc_idt);
  metrics_.RegisterExternalCounter("monitor.emc_usercopy", &counters_.emc_usercopy);
  metrics_.RegisterExternalCounter("monitor.emc_tdcall", &counters_.emc_tdcall);
  metrics_.RegisterExternalCounter("monitor.emc_text_poke", &counters_.emc_text_poke);
  metrics_.RegisterExternalCounter("monitor.emc_sandbox", &counters_.emc_sandbox);
  metrics_.RegisterExternalCounter("monitor.policy_denials", &counters_.policy_denials);
  metrics_.RegisterExternalCounter("monitor.sandbox_kills", &counters_.sandbox_kills);
  metrics_.RegisterExternalCounter("monitor.scrubbed_interrupts",
                                   &counters_.scrubbed_interrupts);
  metrics_.RegisterExternalCounter("monitor.cached_cpuid_hits",
                                   &counters_.cached_cpuid_hits);
  metrics_.RegisterExternalCounter("monitor.exit_stalls", &counters_.exit_stalls);
  metrics_.RegisterExternalCounter("monitor.cache_flushes", &counters_.cache_flushes);
  metrics_.RegisterExternalCounter("monitor.quantized_outputs",
                                   &counters_.quantized_outputs);
  metrics_.RegisterExternalCounter("monitor.huge_splits", &counters_.huge_splits);
  metrics_.RegisterExternalCounter("monitor.tlb_shootdowns", &counters_.tlb_shootdowns);
}

Status EreborMonitor::BootStage1(const Bytes& firmware_image, bool arm_fence) {
  if (stage1_done_) {
    return FailedPreconditionError("stage 1 already completed");
  }
  monitor_image_ = BuildMonitorImage();
  // Measured boot: firmware then monitor extend MRTD, in load order.
  tdx_->MeasureBootComponent(firmware_image);
  tdx_->MeasureBootComponent(monitor_image_);

  // Claim physical regions.
  EREBOR_RETURN_IF_ERROR(frame_table_->SetRange(layout::kFirmwareFirstFrame,
                                                layout::kFirmwareFrames,
                                                FrameType::kFirmware));
  EREBOR_RETURN_IF_ERROR(frame_table_->SetRange(layout::kMonitorFirstFrame,
                                                layout::kMonitorFrames,
                                                FrameType::kMonitor));
  EREBOR_RETURN_IF_ERROR(frame_table_->SetRange(layout::kKernelTextFirstFrame,
                                                layout::kKernelTextFrames,
                                                FrameType::kKernelText));
  EREBOR_RETURN_IF_ERROR(frame_table_->SetRange(layout::kSharedIoFirstFrame,
                                                layout::kSharedIoFrames,
                                                FrameType::kSharedIo));
  scratch_pa_ = AddrOf(layout::kMonitorFirstFrame + 1);

  // Install gates, CET, PKS views; then arm the fence so only monitor context can
  // execute sensitive instructions from here on.
  gates_->Install();
  monitor_syscall_stub_ = machine_->registry().Register("monitor_syscall_stub",
                                                        CodeDomain::kMonitor, true);
  for (int i = 0; i < machine_->num_cpus(); ++i) {
    machine_->cpu(i).SetTdcallSink(tdx_);
    if (arm_fence) {
      machine_->cpu(i).EnableSensitiveFence();
    }
  }
  policy_->SetCommonValidator([this](Paddr root, FrameNum frame, bool writable) {
    return sandbox_mgr_->ValidateCommonMapping(root, frame, writable);
  });
  // RetrofitKey rewrites live supervisor leaves behind the kernel's back, so the
  // policy calls back here for the machine-wide shootdown.
  policy_->SetTlbShootdown([this](Paddr entry_pa) {
    ++counters_.tlb_shootdowns;
    if (Tlb::hooks().retrofit_shootdown) {
      machine_->ShootdownTlbLeaf(entry_pa);
    }
  });
  stage1_done_ = true;
  return OkStatus();
}

StatusOr<KernelImage> EreborMonitor::LoadKernelImage(const Bytes& kelf_bytes) {
  if (!stage1_done_) {
    return FailedPreconditionError("stage 1 must complete before loading a kernel");
  }
  EREBOR_ASSIGN_OR_RETURN(KernelImage image, KernelImage::Deserialize(kelf_bytes));

  // Byte-level scan of every executable section (paper section 5.1): any sensitive
  // encoding at any offset refuses the boot.
  for (const auto& section : image.sections) {
    if (!section.executable) {
      continue;
    }
    const ScanHit hit = ScanForSensitiveBytes(section.data);
    if (hit.found) {
      return PermissionDeniedError(
          "kernel image rejected: sensitive instruction '" + SensitiveOpName(hit.op) +
          "' at offset " + std::to_string(hit.offset) + " of section " + section.name);
    }
    if (section.writable) {
      return PermissionDeniedError("kernel image rejected: W^X violation in section " +
                                   section.name);
    }
  }

  // Load executable sections into the kernel-text frames (W^X: those frames can never
  // be mapped writable again).
  Paddr cursor = AddrOf(layout::kKernelTextFirstFrame);
  const Paddr text_end = AddrOf(layout::kKernelTextFirstFrame + layout::kKernelTextFrames);
  for (const auto& section : image.sections) {
    if (!section.executable) {
      continue;
    }
    if (cursor + section.data.size() > text_end) {
      return ResourceExhaustedError("kernel text exceeds reserved frames");
    }
    EREBOR_RETURN_IF_ERROR(
        machine_->memory().Write(cursor, section.data.data(), section.data.size()));
    cursor += PageAlignUp(section.data.size());
  }
  // Measure the loaded kernel into RTMR[0] so clients can audit which kernel runs
  // (it is untrusted but identifiable).
  EREBOR_RETURN_IF_ERROR(
      machine_->memory().Write(scratch_pa_, Sha256::Hash(kelf_bytes).data(), 32));
  Cpu& cpu = machine_->cpu(0);
  cpu.SetMonitorContext(true);
  uint64_t args[2] = {0, scratch_pa_};
  const Status rtmr_status = cpu.Tdcall(tdcall_leaf::kRtmrExtend, args, 2);
  cpu.SetMonitorContext(false);
  EREBOR_RETURN_IF_ERROR(rtmr_status);

  kernel_loaded_ = true;
  return image;
}

Status EreborMonitor::AttachKernel(Kernel* kernel) {
  kernel_ = kernel;
  const FrameNum cma_first = kernel->cma().first();
  const uint64_t cma_frames = kernel->cma().count();
  sandbox_mgr_->Attach(kernel, cma_first, cma_frames);

  // Interposition stubs: syscalls, interrupts/exceptions, #VE.
  kernel->SetSyscallInterposer(
      [this](SyscallContext& ctx, Task& task, int nr, const uint64_t* args,
             const SyscallEntryFn& kernel_entry) -> StatusOr<uint64_t> {
        Cpu& cpu = ctx.cpu();
        cpu.cycles().Charge(cpu.costs().syscall_stub_overhead);
        Sandbox* sandbox = sandbox_mgr_->FindByTask(task);
        if (sandbox != nullptr &&
            !sandbox_mgr_->SyscallPermitted(*sandbox, task, nr, args)) {
          ++counters_.sandbox_kills;
          ++sandbox->exits.kills;
          kernel_->KillTask(task, "sealed sandbox attempted syscall " + std::to_string(nr));
          // The kill observer below has already quarantined (scrubbed) the sandbox;
          // only this sandbox dies — every other session keeps running.
          (void)sandbox_mgr_->Teardown(cpu, *sandbox);
          return AbortedError("sandbox killed: illegal exit via syscall");
        }
        return kernel_entry(ctx, task, nr, args);
      });

  // Any kill of a sandbox member — by the monitor's own policy above or by the kernel
  // (segfault, injected allocator exhaustion that exhausted its retry) — fences the
  // whole sandbox off: scrub confined memory, drop the session, park in kQuarantined.
  // A dead-but-sealed sandbox must never linger half-alive holding client plaintext.
  kernel->SetKillObserver([this](Task& task, const std::string& reason) {
    Sandbox* sandbox = sandbox_mgr_->FindByTask(task);
    if (sandbox == nullptr || sandbox->state == SandboxState::kTornDown ||
        sandbox->state == SandboxState::kQuarantined) {
      return;
    }
    (void)sandbox_mgr_->Quarantine(machine_->cpu(0), *sandbox,
                                   "member task killed: " + reason);
  });

  kernel->SetInterruptInterposer(
      [this](Cpu& cpu, const Fault& fault, const std::function<void()>& kernel_handler) {
        // #INT gate: an interrupt that lands during EMC execution must not leave the
        // OS running with monitor permissions.
        const bool was_in_monitor = cpu.in_monitor();
        if (was_in_monitor) {
          gates_->InterruptSave(cpu);
        }
        Task* task = kernel_ != nullptr ? kernel_->current(cpu.index()) : nullptr;
        Sandbox* sandbox = task != nullptr ? sandbox_mgr_->FindByTask(*task) : nullptr;
        if (sandbox != nullptr && sandbox->state == SandboxState::kSealed) {
          // Exit interposition: save and scrub the register file before the untrusted
          // OS handler can observe it.
          cpu.cycles().Charge(cpu.costs().interposition_save_restore);
          sandbox->interposition_save = cpu.gprs();
          sandbox->interposition_active = true;
          cpu.gprs().Clear();
          ++counters_.scrubbed_interrupts;
          switch (fault.vector) {
            case Vector::kPageFault:
              ++sandbox->exits.page_faults;
              break;
            case Vector::kTimer:
              ++sandbox->exits.timer_interrupts;
              break;
            case Vector::kDevice:
              ++sandbox->exits.device_interrupts;
              break;
            default:
              break;
          }
          kernel_handler();
          cpu.gprs() = sandbox->interposition_save;
          sandbox->interposition_active = false;
          ApplyExitMitigations(cpu, *sandbox);
        } else {
          kernel_handler();
        }
        if (was_in_monitor) {
          gates_->InterruptRestore(cpu);
        }
      });

  kernel->SetVeInterposer(
      [this](SyscallContext& ctx, Task& task, uint32_t leaf,
             const std::function<StatusOr<uint64_t>()>& hypercall) -> StatusOr<uint64_t> {
        Sandbox* sandbox = sandbox_mgr_->FindByTask(task);
        if (sandbox != nullptr && sandbox->state == SandboxState::kSealed) {
          ++sandbox->exits.ve_exits;
          return CachedCpuid(ctx.cpu(), leaf, /*allow_hypercall=*/false);
        }
        return CachedCpuid(ctx.cpu(), leaf, /*allow_hypercall=*/true);
      });

  // The /dev/erebor driver (LibOS + proxy interface).
  kernel->RegisterDevice("/dev/erebor",
                         [this](SyscallContext& ctx, Task& task, uint64_t cmd,
                                Vaddr arg) { return DeviceIoctl(ctx, task, cmd, arg); });
  return OkStatus();
}

void EreborMonitor::ApplyExitMitigations(Cpu& cpu, Sandbox& sandbox) {
  if (mitigations_.flush_on_exit) {
    // Evict caches/TLB so the untrusted kernel cannot probe the sandbox's footprint.
    // The simulated TLB really flushes now (previously this was only a cycle charge);
    // the charge is unchanged so the mitigation stays cycle-neutral w.r.t. EREBOR_TLB.
    cpu.cycles().Charge(mitigations_.flush_cycles);
    ++counters_.cache_flushes;
    Tracer::Global().Record(TraceEvent::kTlbFlush, cpu.index(), cpu.cycles().now());
    if (Tlb::Enabled() && Tlb::hooks().flush_on_exit) {
      cpu.tlb().FlushAll();
    }
  }
  if (mitigations_.rate_limit_exits) {
    constexpr Cycles kWindow = 2'100'000'000;  // one second at 2.1 GHz
    const Cycles now = cpu.cycles().now();
    if (now - sandbox.exit_window_start >= kWindow) {
      sandbox.exit_window_start = now;
      sandbox.exits_in_window = 0;
    }
    if (++sandbox.exits_in_window > mitigations_.max_exits_per_window) {
      cpu.cycles().Charge(mitigations_.exit_stall_cycles);
      ++counters_.exit_stalls;
    }
  }
}

Status EreborMonitor::AuditInvariants() {
  PhysMemory& memory = machine_->memory();
  for (FrameNum frame = 0; frame < frame_table_->size(); ++frame) {
    const FrameInfo& info = frame_table_->info(frame);
    // Check the recorded supervisor mapping (the direct-map view) of special frames.
    Pte leaf = 0;
    if (info.supervisor_leaf_pa != 0) {
      leaf = memory.Read64(info.supervisor_leaf_pa);
      if (pte::Present(leaf) && pte::Frame(leaf) != frame) {
        leaf = 0;  // stale reverse-map record; not a violation by itself
      }
    }
    switch (info.type) {
      case FrameType::kSandboxConfined:
        if (info.map_count > 1) {
          return InternalError("confined frame " + std::to_string(frame) +
                               " mapped " + std::to_string(info.map_count) + " times");
        }
        if (kernel_ != nullptr &&
            kernel_->kernel_aspace().Lookup(layout::DirectMap(AddrOf(frame))).ok()) {
          return InternalError("confined frame " + std::to_string(frame) +
                               " still reachable via the kernel direct map");
        }
        break;
      case FrameType::kMonitor:
        if (pte::Present(leaf) && pte::Pkey(leaf) != layout::kMonitorKey) {
          return InternalError("monitor frame " + std::to_string(frame) +
                               " mapped without the monitor key");
        }
        break;
      case FrameType::kPtp:
        if (pte::Present(leaf) && pte::Pkey(leaf) != layout::kPtpKey) {
          return InternalError("PTP frame " + std::to_string(frame) +
                               " mapped without the PTP key");
        }
        if (pte::Present(leaf) && pte::User(leaf)) {
          return InternalError("PTP frame " + std::to_string(frame) +
                               " user-accessible");
        }
        break;
      case FrameType::kKernelText:
        if (pte::Present(leaf) && pte::Writable(leaf)) {
          return InternalError("kernel-text frame " + std::to_string(frame) +
                               " writable");
        }
        break;
      case FrameType::kShadowStack:
      case FrameType::kFirmware:
      case FrameType::kSharedIo:
      case FrameType::kNormal:
        break;
    }
    // No private frame of a protected type may be shared with the host.
    if (memory.IsShared(frame) && info.type != FrameType::kSharedIo) {
      return InternalError("non-IO frame " + std::to_string(frame) +
                           " is host-shared (" + FrameTypeName(info.type) + ")");
    }
  }
  return OkStatus();
}

// ---- Gated execution ----

Status EreborMonitor::WithGate(Cpu& cpu, Cycles op_cycles,
                               const std::function<Status()>& body, TraceEvent kind) {
  Status enter = gates_->Enter(cpu);
  // A transient (kUnavailable) entry refusal — e.g. an injected host preemption on
  // the crossing instruction — is absorbed here with a bounded re-entry: the gate is
  // stateless until entry completes, so re-executing the crossing is always safe.
  // Real security failures (IBT/#CP) propagate unchanged.
  for (int attempt = 0;
       !enter.ok() && enter.code() == ErrorCode::kUnavailable && attempt < 3;
       ++attempt) {
    enter = gates_->Enter(cpu);
    if (enter.ok()) {
      NoteFaultRecovered();
    }
  }
  EREBOR_RETURN_IF_ERROR(enter);
  cpu.cycles().Charge(op_cycles);
  ++counters_.emc_total;
  Tracer::Global().Record(kind, cpu.index(), cpu.cycles().now(), -1, op_cycles);
  const Status status = body();
  gates_->Exit(cpu);
  return status;
}

void EreborMonitor::NoteDenial(Cpu& cpu) {
  ++counters_.policy_denials;
  Tracer::Global().Record(TraceEvent::kPolicyDenial, cpu.index(), cpu.cycles().now());
}

void EreborMonitor::ShootdownAfterPteWrite(Cpu& cpu, Paddr entry_pa, Pte old_value,
                                           Pte new_value) {
  // Conservative predicate: any change to a previously present entry. The security-
  // critical subset is PteRevokesPermissions(), but grant-only rewrites are also
  // invalidated so cached WalkResults never diverge from the tables.
  if (!pte::Present(old_value) || old_value == new_value) {
    return;
  }
  ++counters_.tlb_shootdowns;
  if (Tlb::hooks().pte_shootdown) {
    machine_->ShootdownTlbLeaf(entry_pa, cpu.index());
  }
}

// ---- EMC surface ----

Status EreborMonitor::EmcWritePte(Cpu& cpu, Paddr entry_pa, Pte value) {
  ++counters_.emc_pte;
  return WithGate(cpu, cpu.costs().monitor_pte_op, TraceEvent::kEmcPte,
                  [&]() -> Status {
    const PolicyDecision decision = policy_->CheckPteWrite(entry_pa, value);
    if (decision.needs_split) {
      return SplitHugePageLocked(cpu, entry_pa, value);
    }
    if (!decision.allowed) {
      NoteDenial(cpu);
      return PermissionDeniedError("EMC WritePte refused: " + decision.denial_reason);
    }
    const Pte old = machine_->memory().Read64(entry_pa);
    machine_->memory().Write64(entry_pa, decision.adjusted_value);
    policy_->NoteLeafWrite(old, decision.adjusted_value, entry_pa);
    ShootdownAfterPteWrite(cpu, entry_pa, old, decision.adjusted_value);
    return OkStatus();
  });
}

Status EreborMonitor::SplitHugePageLocked(Cpu& cpu, Paddr entry_pa, Pte huge_value) {
  // Forced huge-page splitting (paper section 7 future work): materialize a level-1
  // table of 512 4 KiB mappings in place of the requested 2 MiB leaf, so per-page
  // protection keys (monitor/PTP/text) remain enforceable inside the range.
  if (kernel_ == nullptr) {
    return FailedPreconditionError("split requires an attached kernel (frame pool)");
  }
  const FrameNum base = pte::Frame(huge_value) & ~0x1FFULL;  // 2 MiB aligned
  const Pte small_flags = (huge_value & ~(pte::kPageSize | pte::kFrameMask));

  EREBOR_ASSIGN_OR_RETURN(const FrameNum ptp, kernel_->pool().Alloc());
  machine_->memory().ZeroFrame(ptp);
  machine_->memory().FramePtr(ptp);
  FrameInfo& ptp_info = frame_table_->info(ptp);
  ptp_info.type = FrameType::kPtp;
  ptp_info.ptp_level = 1;
  ptp_info.ptp_root = frame_table_->info(FrameOf(entry_pa)).ptp_root;
  // The pool frame usually still has a default-key direct-map leaf: re-key it now or
  // the kernel could forge entries in the new table through that old mapping.
  EREBOR_RETURN_IF_ERROR(
      policy_->RetrofitKey(machine_->memory(), ptp, layout::kPtpKey, false));

  // Validate + install every 4 KiB entry through the normal policy (this is the whole
  // point: per-page rules apply inside the former huge page).
  for (uint64_t i = 0; i < kPteEntries; ++i) {
    const Pte small = pte::Make(base + i, small_flags);
    const Paddr slot = AddrOf(ptp) + i * sizeof(Pte);
    const PolicyDecision decision = policy_->CheckPteWrite(slot, small);
    if (!decision.allowed) {
      NoteDenial(cpu);
      // Roll back the subpage entries already installed: their NoteLeafWrite map
      // counts must be undone before the PTP frame is freed, or the frame table
      // permanently over-counts mappings of frames in this range.
      for (uint64_t j = 0; j < i; ++j) {
        const Paddr done_slot = AddrOf(ptp) + j * sizeof(Pte);
        const Pte installed = machine_->memory().Read64(done_slot);
        machine_->memory().Write64(done_slot, 0);
        policy_->NoteLeafWrite(installed, 0, done_slot);
      }
      (void)kernel_->pool().Free(ptp);
      // Restore normal typing and the default-key direct-map leaf, but keep the
      // reverse-map fields: the direct map still references this frame.
      ptp_info.type = FrameType::kNormal;
      ptp_info.ptp_level = 0;
      ptp_info.ptp_root = 0;
      (void)policy_->RetrofitKey(machine_->memory(), ptp, layout::kDefaultKey, false);
      return PermissionDeniedError("huge-page split refused at subpage " +
                                   std::to_string(i) + ": " + decision.denial_reason);
    }
    machine_->memory().Write64(slot, decision.adjusted_value);
    policy_->NoteLeafWrite(0, decision.adjusted_value, slot);
  }
  cpu.cycles().Charge(kPteEntries * cpu.costs().monitor_pte_op);

  // Link the new table where the huge leaf would have gone.
  Pte inter = pte::Make(ptp, pte::kPresent | pte::kWritable);
  if (pte::User(huge_value)) {
    inter |= pte::kUser;
  }
  const Pte old = machine_->memory().Read64(entry_pa);
  machine_->memory().Write64(entry_pa, inter);
  policy_->NoteLeafWrite(old, inter);
  // The former huge leaf may be cached; the relinked intermediate changes every
  // translation under it.
  ShootdownAfterPteWrite(cpu, entry_pa, old, inter);
  ++counters_.huge_splits;
  return OkStatus();
}

Status EreborMonitor::EmcWritePteBatch(Cpu& cpu, const PrivilegedOps::PteUpdate* updates,
                                       size_t count) {
  if (count == 0) {
    return OkStatus();
  }
  ++counters_.emc_pte;
  // One gate round trip for the whole batch; each entry is still policy-validated and
  // charged the monitor-side op cost. The batch is all-or-nothing: every entry is
  // validated before any PTE memory is written, so a denial mid-batch leaves the page
  // tables untouched instead of half-applied.
  return WithGate(
      cpu, cpu.costs().monitor_pte_op * count,
      [&]() -> Status {
        std::vector<PolicyDecision> decisions(count);
        for (size_t i = 0; i < count; ++i) {
          decisions[i] = policy_->CheckPteWrite(updates[i].entry_pa, updates[i].value);
          if (decisions[i].needs_split) {
            NoteDenial(cpu);
            return PermissionDeniedError("huge-page splits are not supported in batches");
          }
          if (!decisions[i].allowed) {
            NoteDenial(cpu);
            return PermissionDeniedError("EMC WritePteBatch refused at entry " +
                                         std::to_string(i) + ": " +
                                         decisions[i].denial_reason);
          }
        }
        for (size_t i = 0; i < count; ++i) {
          const Pte old = machine_->memory().Read64(updates[i].entry_pa);
          machine_->memory().Write64(updates[i].entry_pa, decisions[i].adjusted_value);
          policy_->NoteLeafWrite(old, decisions[i].adjusted_value, updates[i].entry_pa);
          ShootdownAfterPteWrite(cpu, updates[i].entry_pa, old,
                                 decisions[i].adjusted_value);
        }
        return OkStatus();
      },
      TraceEvent::kEmcPteBatch);
}

Status EreborMonitor::EmcRegisterPtp(Cpu& cpu, FrameNum frame, Paddr root_pa) {
  ++counters_.emc_ptp_register;
  return WithGate(cpu, cpu.costs().monitor_pte_op, TraceEvent::kEmcPtpRegister,
                  [&]() -> Status {
    if (frame >= frame_table_->size()) {
      return OutOfRangeError("PTP frame beyond physical memory");
    }
    FrameInfo& info = frame_table_->info(frame);
    if (info.type != FrameType::kNormal) {
      NoteDenial(cpu);
      return PermissionDeniedError("cannot re-type " + FrameTypeName(info.type) +
                                   " frame as PTP");
    }
    // A PTP must start zeroed so no stale attacker-chosen entries become live.
    machine_->memory().ZeroFrame(frame);
    info.type = FrameType::kPtp;
    info.ptp_root = root_pa;
    // A frame registered as its own root is a PML4; others are linked (and get their
    // level) when an intermediate entry first points at them.
    info.ptp_level = AddrOf(frame) == root_pa ? 4 : 0;
    // The frame may already be mapped (direct map, default key): retrofit the PTP key
    // so the kernel cannot write the new page table through the old mapping.
    EREBOR_RETURN_IF_ERROR(policy_->RetrofitKey(machine_->memory(), frame,
                                                layout::kPtpKey, /*strip_write=*/false));
    return OkStatus();
  });
}

Status EreborMonitor::EmcWriteCr(Cpu& cpu, int reg, uint64_t value) {
  ++counters_.emc_cr;
  return WithGate(cpu, cpu.costs().monitor_cr_op, TraceEvent::kEmcCr,
                  [&]() -> Status {
    if (reg != 0 && reg != 3 && reg != 4) {
      NoteDenial(cpu);
      return InvalidArgumentError("EMC WriteCr: no such control register cr" +
                                  std::to_string(reg));
    }
    const uint64_t current = reg == 0 ? cpu.cr0() : reg == 3 ? cpu.cr3() : cpu.cr4();
    EREBOR_RETURN_IF_ERROR(policy_->CheckCrWrite(reg, value, current));
    if (reg == 4) {
      // The protection bits are sticky: merge them into whatever the kernel asked for.
      value |= cr::kCr4Smep | cr::kCr4Smap | cr::kCr4Pks | cr::kCr4Cet;
    }
    cpu.TrustedWriteCr(reg, value);
    return OkStatus();
  });
}

Status EreborMonitor::EmcWriteMsr(Cpu& cpu, uint32_t index, uint64_t value) {
  ++counters_.emc_msr;
  return WithGate(cpu, cpu.costs().monitor_msr_op, TraceEvent::kEmcMsr,
                  [&]() -> Status {
    EREBOR_RETURN_IF_ERROR(policy_->CheckMsrWrite(index));
    if (index == msr::kIa32Lstar) {
      // Record the kernel's syscall entry but keep the monitor stub in front: the
      // effective LSTAR is the monitor's interposition label.
      kernel_syscall_entry_ = static_cast<CodeLabelId>(value);
      cpu.TrustedWriteMsr(index, monitor_syscall_stub_);
      return OkStatus();
    }
    cpu.TrustedWriteMsr(index, value);
    return OkStatus();
  });
}

Status EreborMonitor::EmcLoadIdt(Cpu& cpu, const IdtTable* table) {
  ++counters_.emc_idt;
  return WithGate(cpu, cpu.costs().monitor_idt_op, TraceEvent::kEmcIdt,
                  [&]() -> Status {
    if (approved_idt_ == nullptr) {
      approved_idt_ = table;  // first load: the kernel's boot-time table is recorded
    } else if (approved_idt_ != table) {
      NoteDenial(cpu);
      return PermissionDeniedError("IDT replacement refused: interposition table pinned");
    }
    cpu.TrustedLidt(table);  // the op cost is part of monitor_idt_op
    return OkStatus();
  });
}

Status EreborMonitor::EmcCopyToUser(Cpu& cpu, Vaddr dst, const uint8_t* src, uint64_t len) {
  ++counters_.emc_usercopy;
  return WithGate(cpu, cpu.costs().monitor_stac_op, TraceEvent::kEmcUserCopy,
                  [&]() -> Status {
    // The monitor emulates the user copy on behalf of the kernel. It refuses targets
    // inside sealed-sandbox confined memory (the kernel must never move sandbox data).
    for (Vaddr va = PageAlignDown(dst); va < dst + len; va += kPageSize) {
      const auto walk = cpu.WalkCached(cpu.cr3(), va, CpuMode::kSupervisor);
      if (walk.ok()) {
        const FrameInfo& info = frame_table_->info(FrameOf(walk->pa));
        if (info.type == FrameType::kSandboxConfined) {
          Sandbox* sandbox = sandbox_mgr_->Find(info.owner_sandbox);
          if (sandbox != nullptr && sandbox->state == SandboxState::kSealed) {
            NoteDenial(cpu);
            return PermissionDeniedError("usercopy into sealed confined memory refused");
          }
        }
      }
    }
    cpu.cycles().Charge(len * cpu.costs().usercopy_per_byte_x100 / 100);
    cpu.TrustedSetAc(true);  // stac cost is part of monitor_stac_op
    const Status st = cpu.WriteVirt(dst, src, len);
    cpu.TrustedSetAc(false);
    return st;
  });
}

Status EreborMonitor::EmcCopyFromUser(Cpu& cpu, Vaddr src, uint8_t* dst, uint64_t len) {
  ++counters_.emc_usercopy;
  return WithGate(cpu, cpu.costs().monitor_stac_op, TraceEvent::kEmcUserCopy,
                  [&]() -> Status {
    for (Vaddr va = PageAlignDown(src); va < src + len; va += kPageSize) {
      const auto walk = cpu.WalkCached(cpu.cr3(), va, CpuMode::kSupervisor);
      if (walk.ok()) {
        const FrameInfo& info = frame_table_->info(FrameOf(walk->pa));
        if (info.type == FrameType::kSandboxConfined) {
          Sandbox* sandbox = sandbox_mgr_->Find(info.owner_sandbox);
          if (sandbox != nullptr && sandbox->state == SandboxState::kSealed) {
            NoteDenial(cpu);
            return PermissionDeniedError("usercopy from sealed confined memory refused");
          }
        }
      }
    }
    cpu.cycles().Charge(len * cpu.costs().usercopy_per_byte_x100 / 100);
    cpu.TrustedSetAc(true);
    const Status st = cpu.ReadVirt(src, dst, len);
    cpu.TrustedSetAc(false);
    return st;
  });
}

Status EreborMonitor::EmcTdcall(Cpu& cpu, uint64_t leaf, uint64_t* args, size_t nargs) {
  ++counters_.emc_tdcall;
  const Cycles op_cost =
      leaf == tdcall_leaf::kTdReport ? cpu.costs().monitor_tdreport_op : 64;
  return WithGate(cpu, op_cost, TraceEvent::kEmcTdcall, [&]() -> Status {
    switch (leaf) {
      case tdcall_leaf::kTdReport:
      case tdcall_leaf::kRtmrExtend:
        // Attestation interfaces are exclusively the monitor's (claim C5): the kernel
        // cannot obtain digests to impersonate the monitor.
        NoteDenial(cpu);
        return PermissionDeniedError("attestation tdcall reserved for the monitor");
      case tdcall_leaf::kMapGpa: {
        if (nargs < 3) {
          return InvalidArgumentError("map-gpa needs 3 args");
        }
        EREBOR_RETURN_IF_ERROR(policy_->CheckSharedConversion(
            FrameOf(args[0]), args[1], args[2] != 0));
        return cpu.Tdcall(leaf, args, nargs);
      }
      default:
        return cpu.Tdcall(leaf, args, nargs);
    }
  });
}

Status EreborMonitor::EmcTextPoke(Cpu& cpu, Paddr code_pa, const uint8_t* bytes,
                                  uint64_t len) {
  ++counters_.emc_text_poke;
  return WithGate(cpu, cpu.costs().monitor_pte_op + cpu.costs().page_copy,
                  TraceEvent::kEmcTextPoke, [&]() -> Status {
    const FrameNum frame = FrameOf(code_pa);
    if (frame_table_->info(frame).type != FrameType::kKernelText) {
      return PermissionDeniedError("text_poke target is not kernel text");
    }
    // The patch itself must be clean of sensitive encodings — including sequences that
    // straddle the patch boundary, so scan with surrounding context.
    const uint64_t kContext = 8;
    const Paddr scan_start = code_pa >= kContext ? code_pa - kContext : 0;
    const uint64_t scan_len = len + 2 * kContext;
    Bytes window(scan_len);
    EREBOR_RETURN_IF_ERROR(machine_->memory().Read(scan_start, window.data(), scan_len));
    std::memcpy(window.data() + (code_pa - scan_start), bytes, len);
    const ScanHit hit = ScanForSensitiveBytes(window);
    if (hit.found) {
      NoteDenial(cpu);
      return PermissionDeniedError("text_poke rejected: would introduce " +
                                   SensitiveOpName(hit.op));
    }
    return machine_->memory().Write(code_pa, bytes, len);
  });
}

StatusOr<Paddr> EreborMonitor::EmcLoadKernelModule(Cpu& cpu, const Bytes& code) {
  ++counters_.emc_text_poke;
  if (kernel_ == nullptr) {
    return FailedPreconditionError("module load requires an attached kernel");
  }
  Paddr load_pa = 0;
  const Status st = WithGate(
      cpu, cpu.costs().page_copy * (1 + code.size() / kPageSize),
      TraceEvent::kEmcTextPoke, [&]() -> Status {
        if (code.empty()) {
          return InvalidArgumentError("empty module");
        }
        const ScanHit hit = ScanForSensitiveBytes(code);
        if (hit.found) {
          NoteDenial(cpu);
          return PermissionDeniedError("module rejected: contains " +
                                       SensitiveOpName(hit.op) + " at offset " +
                                       std::to_string(hit.offset));
        }
        const uint64_t frames = PageAlignUp(code.size()) >> kPageShift;
        EREBOR_ASSIGN_OR_RETURN(const FrameNum first,
                                kernel_->pool().AllocContiguous(frames));
        for (uint64_t i = 0; i < frames; ++i) {
          machine_->memory().ZeroFrame(first + i);
          machine_->memory().FramePtr(first + i);
          (void)frame_table_->SetType(first + i, FrameType::kKernelText);
          // W^X through *all* mappings: the direct-map view loses W and gets the
          // kernel-text key.
          EREBOR_RETURN_IF_ERROR(policy_->RetrofitKey(machine_->memory(), first + i,
                                                      layout::kKernelTextKey,
                                                      /*strip_write=*/true));
        }
        EREBOR_RETURN_IF_ERROR(
            machine_->memory().Write(AddrOf(first), code.data(), code.size()));
        load_pa = AddrOf(first);
        return OkStatus();
      });
  if (!st.ok()) {
    return st;
  }
  return load_pa;
}

// ---- Sandbox surface ----

StatusOr<Sandbox*> EreborMonitor::CreateSandbox(Task& leader, const SandboxSpec& spec) {
  ++counters_.emc_sandbox;
  return sandbox_mgr_->Create(leader, spec);
}

Status EreborMonitor::DeclareConfined(Cpu& cpu, Sandbox& sandbox, Vaddr va, uint64_t len) {
  ++counters_.emc_sandbox;
  return WithGate(cpu, cpu.costs().monitor_pte_op,
                  [&] { return sandbox_mgr_->DeclareConfined(cpu, sandbox, va, len); });
}

StatusOr<CommonRegion*> EreborMonitor::CreateCommonRegion(const std::string& name,
                                                          uint64_t len) {
  if (kernel_ == nullptr) {
    return FailedPreconditionError("no kernel attached");
  }
  return sandbox_mgr_->CreateCommonRegion(name, len, kernel_->pool());
}

Status EreborMonitor::AttachCommon(Cpu& cpu, Sandbox& sandbox, int region_id, Vaddr va,
                                   bool writable_until_seal) {
  ++counters_.emc_sandbox;
  return WithGate(cpu, cpu.costs().monitor_pte_op, [&] {
    return sandbox_mgr_->AttachCommon(cpu, sandbox, region_id, va, writable_until_seal);
  });
}

Status EreborMonitor::TeardownSandbox(Cpu& cpu, Sandbox& sandbox) {
  ++counters_.emc_sandbox;
  return WithGate(cpu, cpu.costs().monitor_pte_op,
                  [&] { return sandbox_mgr_->Teardown(cpu, sandbox); });
}

// ---- Guest memory helpers ----

Status EreborMonitor::ReadGuest(AddressSpace& aspace, Vaddr va, uint8_t* out,
                                uint64_t len) {
  uint64_t done = 0;
  while (done < len) {
    EREBOR_ASSIGN_OR_RETURN(const WalkResult walk, aspace.Lookup(va + done));
    const uint64_t take = std::min(len - done, kPageSize - ((va + done) & kPageMask));
    EREBOR_RETURN_IF_ERROR(machine_->memory().Read(walk.pa, out + done, take));
    done += take;
  }
  return OkStatus();
}

Status EreborMonitor::WriteGuest(AddressSpace& aspace, Vaddr va, const uint8_t* data,
                                 uint64_t len) {
  uint64_t done = 0;
  while (done < len) {
    EREBOR_ASSIGN_OR_RETURN(const WalkResult walk, aspace.Lookup(va + done));
    const uint64_t take = std::min(len - done, kPageSize - ((va + done) & kPageMask));
    EREBOR_RETURN_IF_ERROR(machine_->memory().Write(walk.pa, data + done, take));
    done += take;
  }
  return OkStatus();
}

// ---- cpuid cache ----

StatusOr<uint64_t> EreborMonitor::CachedCpuid(Cpu& cpu, uint32_t leaf,
                                              bool allow_hypercall) {
  const auto it = cpuid_cache_.find(leaf);
  if (it != cpuid_cache_.end()) {
    ++counters_.cached_cpuid_hits;
    cpu.cycles().Charge(cpu.costs().cached_cpuid_service);
    return it->second;
  }
  if (!allow_hypercall) {
    // Sealed sandbox asking for an uncached leaf: serve zero rather than exit.
    ++counters_.cached_cpuid_hits;
    cpu.cycles().Charge(cpu.costs().cached_cpuid_service);
    return 0;
  }
  // One hypercall, then cache (executed in monitor context: trusted tdcall).
  const bool was_in_monitor = cpu.in_monitor();
  cpu.SetMonitorContext(true);
  uint64_t args[3] = {static_cast<uint64_t>(GhciReason::kCpuid), leaf, 0};
  const Status st = cpu.Tdcall(tdcall_leaf::kVmcall, args, 3);
  cpu.SetMonitorContext(was_in_monitor);
  EREBOR_RETURN_IF_ERROR(st);
  cpuid_cache_[leaf] = args[1];
  return args[1];
}

// ---- Attestation + channel ----

StatusOr<TdQuote> EreborMonitor::GenerateQuote(Cpu& cpu,
                                               const std::array<uint8_t, 64>& report_data) {
  EREBOR_RETURN_IF_ERROR(
      machine_->memory().Write(scratch_pa_, report_data.data(), report_data.size()));
  const bool was_in_monitor = cpu.in_monitor();
  cpu.SetMonitorContext(true);
  uint64_t args[2] = {scratch_pa_, scratch_pa_ + 512};
  const Status st = cpu.Tdcall(tdcall_leaf::kTdReport, args, 2);
  cpu.SetMonitorContext(was_in_monitor);
  EREBOR_RETURN_IF_ERROR(st);
  EREBOR_ASSIGN_OR_RETURN(const TdReport report, tdx_->TakeLastReport());
  return tdx_->SignQuote(report);
}

Status EreborMonitor::HandleHello(Cpu& cpu, const Packet& packet) {
  Sandbox* sandbox = sandbox_mgr_->Find(packet.sandbox_id);
  if (sandbox == nullptr) {
    return NotFoundError("hello for unknown sandbox");
  }
  ChannelSession& session = sandbox->session;
  if (session.established && packet.client_public == session.hello_client_public &&
      packet.nonce == session.hello_nonce) {
    // Retransmitted ClientHello: the ServerHello was likely lost in flight, so answer
    // with the identical cached response. Re-running the handshake here would let a
    // replayed hello re-key (and thus reset the sequence space of) a live session.
    ++session.retransmits;
    MetricsRegistry::Global().Increment("channel.retries");
    Tracer::Global().Record(TraceEvent::kChannelRetry, cpu.index(), cpu.cycles().now(),
                            sandbox->id);
    sandbox->outbound_wire.push_back(session.cached_server_hello);
    NoteFaultRecovered();
    return OkStatus();
  }
  const GroupParams& group = GroupParams::Default();
  const KeyPair ephemeral = GenerateKeyPair(group, rng_);
  const Digest256 transcript =
      HandshakeTranscript(packet.client_public, ephemeral.public_key, packet.nonce);

  std::array<uint8_t, 64> report_data{};
  std::memcpy(report_data.data(), transcript.data(), transcript.size());
  EREBOR_ASSIGN_OR_RETURN(const TdQuote quote, GenerateQuote(cpu, report_data));

  const Bytes shared = DhSharedSecret(group, ephemeral.private_key, packet.client_public);
  // A fresh hello (new nonce/share) is a renegotiation: the whole session state —
  // reorder buffer, cached results, counters — dies with the old keys.
  sandbox->session = ChannelSession{};
  sandbox->session.keys = DeriveSessionKeys(shared, transcript);
  sandbox->session.established = true;
  sandbox->session.hello_client_public = packet.client_public;
  sandbox->session.hello_nonce = packet.nonce;

  Packet response;
  response.type = PacketType::kServerHello;
  response.sandbox_id = sandbox->id;
  response.monitor_public = ephemeral.public_key;
  response.quote = quote;
  sandbox->session.cached_server_hello = response.Serialize();
  sandbox->outbound_wire.push_back(sandbox->session.cached_server_hello);
  return OkStatus();
}

Status EreborMonitor::HandleDataRecord(Cpu& cpu, const Packet& packet) {
  Sandbox* sandbox = sandbox_mgr_->Find(packet.sandbox_id);
  if (sandbox == nullptr || !sandbox->session.established) {
    return FailedPreconditionError("data record without established session");
  }
  ChannelSession& session = sandbox->session;
  const uint64_t seq = packet.record.sequence;

  if (seq < session.next_recv_seq) {
    // Replay window: a duplicate of an already-accepted record. It is absorbed, never
    // re-decrypted or re-delivered (replay cannot double-install client data). An
    // honest client only re-sends when our result never arrived, so retransmit the
    // cached last result to heal that loss.
    ++session.duplicates;
    MetricsRegistry::Global().Increment("channel.duplicates");
    Tracer::Global().Record(TraceEvent::kChannelRetry, cpu.index(), cpu.cycles().now(),
                            sandbox->id, seq);
    if (!session.last_result_wire.empty()) {
      sandbox->outbound_wire.push_back(session.last_result_wire);
      ++session.retransmits;
      MetricsRegistry::Global().Increment("channel.retries");
      NoteFaultRecovered();
    }
    return OkStatus();
  }
  if (seq > session.next_recv_seq) {
    if (seq - session.next_recv_seq > ChannelSession::kReorderWindow) {
      ++session.rejects;
      MetricsRegistry::Global().Increment("channel.rejects");
      return InvalidArgumentError("data record beyond the reorder window");
    }
    // Reordered ahead of a gap: stash the sealed record until the gap fills. Nothing
    // is decrypted out of order — AEAD still runs at exactly the expected sequence.
    ++session.reorders;
    MetricsRegistry::Global().Increment("channel.reorders");
    session.reorder[seq] = packet.record;
    return OkStatus();
  }

  auto accept = [&](const SealedRecord& record) -> Status {
    EREBOR_ASSIGN_OR_RETURN(
        Bytes plaintext,
        AeadOpen(session.keys.client_to_server, record, session.next_recv_seq));
    ++session.next_recv_seq;
    cpu.cycles().Charge(plaintext.size() * cpu.costs().crypto_per_byte_x100 / 100);
    Tracer::Global().Record(TraceEvent::kChannelDecrypt, cpu.index(), cpu.cycles().now(),
                            sandbox->id, plaintext.size());
    sandbox->input_plaintext.push_back(std::move(plaintext));
    // First client data seals the sandbox (paper section 6.2).
    return sandbox_mgr_->Seal(cpu, *sandbox);
  };

  const Status st = accept(packet.record);
  if (!st.ok()) {
    // Tampered/corrupted in transit: reject without advancing the sequence, so the
    // client's retransmission of the same record is accepted cleanly.
    ++session.rejects;
    MetricsRegistry::Global().Increment("channel.corrupt_rejects");
    return st;
  }
  // Drain any stashed reordered records that are now in sequence. A stashed record
  // that fails to open was corrupt on the wire: drop it (the client retransmits).
  while (true) {
    const auto it = session.reorder.find(session.next_recv_seq);
    if (it == session.reorder.end()) {
      break;
    }
    const SealedRecord stashed = it->second;
    session.reorder.erase(it);
    if (!accept(stashed).ok()) {
      ++session.rejects;
      MetricsRegistry::Global().Increment("channel.corrupt_rejects");
      break;
    }
    NoteFaultRecovered();
  }
  return OkStatus();
}

Status EreborMonitor::HandleFin(Cpu& cpu, const Packet& packet) {
  Sandbox* sandbox = sandbox_mgr_->Find(packet.sandbox_id);
  if (sandbox == nullptr) {
    return NotFoundError("fin for unknown sandbox");
  }
  return sandbox_mgr_->Teardown(cpu, *sandbox);
}

Status EreborMonitor::ProxyDeliver(Cpu& cpu, const Bytes& wire) {
  if (FaultInjector::Armed() &&
      FaultInjector::Global().Fire("channel.deliver", FaultAction::kDrop)) {
    // The untrusted proxy "lost" the packet at the monitor's doorstep. From the
    // client's perspective this is ordinary network loss: its bounded retry covers it.
    return OkStatus();
  }
  return WithGate(cpu, 64, TraceEvent::kEmcChannelOp, [&]() -> Status {
    EREBOR_ASSIGN_OR_RETURN(const Packet packet, Packet::Deserialize(wire));
    switch (packet.type) {
      case PacketType::kClientHello:
        return HandleHello(cpu, packet);
      case PacketType::kDataRecord:
        return HandleDataRecord(cpu, packet);
      case PacketType::kFin:
        return HandleFin(cpu, packet);
      default:
        return InvalidArgumentError("unexpected packet type from network");
    }
  });
}

StatusOr<Bytes> EreborMonitor::ProxyFetch(Cpu& cpu, int* source_sandbox_out) {
  Bytes out;
  const Status st = WithGate(cpu, 64, TraceEvent::kEmcChannelOp, [&]() -> Status {
    for (auto& [id, sandbox] : sandbox_mgr_->mutable_sandboxes()) {
      if (!sandbox->outbound_wire.empty()) {
        out = std::move(sandbox->outbound_wire.front());
        sandbox->outbound_wire.pop_front();
        if (source_sandbox_out != nullptr) {
          *source_sandbox_out = id;
        }
        return OkStatus();
      }
    }
    return NotFoundError("no outbound packets");
  });
  if (!st.ok()) {
    return st;
  }
  return out;
}

Status EreborMonitor::DebugInstallClientData(Cpu& cpu, Sandbox& sandbox, const Bytes& data) {
  return WithGate(cpu, 64, TraceEvent::kEmcChannelOp, [&]() -> Status {
    // Same decrypt/copy cost as the real channel path.
    cpu.cycles().Charge(data.size() * cpu.costs().crypto_per_byte_x100 / 100);
    sandbox.input_plaintext.push_back(data);
    return sandbox_mgr_->Seal(cpu, sandbox);
  });
}

StatusOr<Bytes> EreborMonitor::DebugFetchOutput(Sandbox& sandbox) {
  if (sandbox.outbound_wire.empty()) {
    return NotFoundError("no output pending");
  }
  Bytes out = std::move(sandbox.outbound_wire.front());
  sandbox.outbound_wire.pop_front();
  return out;
}

// ---- /dev/erebor ioctl ----

StatusOr<uint64_t> EreborMonitor::DeviceIoctl(SyscallContext& ctx, Task& task,
                                              uint64_t cmd, Vaddr arg_va) {
  Cpu& cpu = ctx.cpu();
  Sandbox* sandbox = sandbox_mgr_->FindByTask(task);
  ++counters_.emc_sandbox;
  switch (cmd) {
    case emc_ioctl::kDeclareConfined: {
      if (sandbox == nullptr) {
        return FailedPreconditionError("declare-confined from non-sandbox task");
      }
      uint8_t buf[16];
      EREBOR_RETURN_IF_ERROR(ReadGuest(*task.aspace, arg_va, buf, sizeof(buf)));
      const Vaddr va = LoadLe64(buf);
      const uint64_t len = LoadLe64(buf + 8);
      EREBOR_RETURN_IF_ERROR(DeclareConfined(cpu, *sandbox, va, len));
      return 0;
    }
    case emc_ioctl::kInput: {
      if (sandbox == nullptr) {
        return FailedPreconditionError("input ioctl from non-sandbox task");
      }
      ++sandbox->exits.ioctl_io;
      uint8_t buf[16];
      EREBOR_RETURN_IF_ERROR(ReadGuest(*task.aspace, arg_va, buf, sizeof(buf)));
      const Vaddr dst = LoadLe64(buf);
      const uint64_t cap = LoadLe64(buf + 8);
      if (sandbox->input_plaintext.empty()) {
        return UnavailableError("EAGAIN");
      }
      const Bytes& data = sandbox->input_plaintext.front();
      if (data.size() > cap) {
        return OutOfRangeError("input larger than provided buffer");
      }
      const Status copy_st = WithGate(cpu, 64, TraceEvent::kEmcChannelOp,
                                      [&]() -> Status {
        return sandbox_mgr_->CopyIntoSandbox(cpu, *sandbox, dst, data.data(),
                                             data.size());
      });
      if (!copy_st.ok()) {
        // The input stays queued so a transient shepherd fault is retryable, but a
        // sandbox that keeps faulting gets quarantined — torn down and scrubbed —
        // rather than wedging the session forever.
        ++sandbox->fault_strikes;
        if (sandbox->fault_strikes >= sandbox->spec.max_fault_strikes) {
          EREBOR_RETURN_IF_ERROR(sandbox_mgr_->Quarantine(
              cpu, *sandbox, "repeated shepherd copy faults: " + copy_st.ToString()));
        }
        return copy_st;
      }
      if (sandbox->fault_strikes > 0) {
        // A queued input finally copied in after transient shepherd faults.
        sandbox->fault_strikes = 0;
        NoteFaultRecovered();
      }
      const uint64_t n = data.size();
      StoreLe64(buf + 8, n);
      EREBOR_RETURN_IF_ERROR(WriteGuest(*task.aspace, arg_va, buf, sizeof(buf)));
      sandbox->input_plaintext.pop_front();
      return n;
    }
    case emc_ioctl::kOutput: {
      if (sandbox == nullptr) {
        return FailedPreconditionError("output ioctl from non-sandbox task");
      }
      ++sandbox->exits.ioctl_io;
      uint8_t buf[16];
      EREBOR_RETURN_IF_ERROR(ReadGuest(*task.aspace, arg_va, buf, sizeof(buf)));
      const Vaddr src = LoadLe64(buf);
      const uint64_t len = LoadLe64(buf + 8);
      if (len > wire::kMaxWireBytes) {
        // The length is sandbox-controlled: bound it before sizing any buffer.
        return InvalidArgumentError("output length exceeds the wire limit");
      }
      Bytes payload(len);
      EREBOR_RETURN_IF_ERROR(WithGate(cpu, 64, TraceEvent::kEmcChannelOp,
                                      [&]() -> Status {
        EREBOR_RETURN_IF_ERROR(
            sandbox_mgr_->CopyFromSandbox(cpu, *sandbox, src, payload.data(), len));
        // Pad to the fixed output quantum, then seal (or emit plaintext-padded when no
        // session exists, the DebugFS-style channel).
        EREBOR_ASSIGN_OR_RETURN(const Bytes padded,
                                PadOutput(payload, sandbox->spec.output_pad_bytes));
        cpu.cycles().Charge(padded.size() * cpu.costs().crypto_per_byte_x100 / 100);
        Tracer::Global().Record(TraceEvent::kChannelEncrypt, cpu.index(),
                                cpu.cycles().now(), sandbox->id, padded.size());
        if (mitigations_.quantize_output) {
          // Release only at fixed interval boundaries: a result's timing no longer
          // reflects the (secret-dependent) processing time.
          const Cycles now = cpu.cycles().now();
          const Cycles boundary = ((now / mitigations_.output_interval) + 1) *
                                  mitigations_.output_interval;
          cpu.cycles().Charge(boundary - now);
          ++counters_.quantized_outputs;
        }
        if (sandbox->session.established) {
          Packet packet;
          packet.type = PacketType::kResultRecord;
          packet.sandbox_id = sandbox->id;
          packet.record = AeadSeal(sandbox->session.keys.server_to_client,
                                   sandbox->session.next_send_seq++, padded);
          // Cache the serialized result for retransmission: if it is lost on the
          // wire, the client's duplicate data record triggers a re-send.
          sandbox->session.last_result_wire = packet.Serialize();
          sandbox->outbound_wire.push_back(sandbox->session.last_result_wire);
        } else {
          sandbox->outbound_wire.push_back(padded);
        }
        return OkStatus();
      }));
      return len;
    }
    case emc_ioctl::kProxyDeliver: {
      if (sandbox != nullptr) {
        return PermissionDeniedError("proxy ioctls are not for sandbox tasks");
      }
      uint8_t buf[16];
      EREBOR_RETURN_IF_ERROR(ReadGuest(*task.aspace, arg_va, buf, sizeof(buf)));
      const Vaddr src = LoadLe64(buf);
      const uint64_t len = LoadLe64(buf + 8);
      if (len > wire::kMaxWireBytes) {
        // Proxy-supplied length: refuse before allocating (a hostile proxy could
        // otherwise demand a near-2^64-byte buffer).
        return InvalidArgumentError("proxy packet exceeds the wire limit");
      }
      Bytes wire(len);
      EREBOR_RETURN_IF_ERROR(ReadGuest(*task.aspace, src, wire.data(), len));
      EREBOR_RETURN_IF_ERROR(ProxyDeliver(cpu, wire));
      return 0;
    }
    case emc_ioctl::kProxyFetch: {
      if (sandbox != nullptr) {
        return PermissionDeniedError("proxy ioctls are not for sandbox tasks");
      }
      uint8_t buf[16];
      EREBOR_RETURN_IF_ERROR(ReadGuest(*task.aspace, arg_va, buf, sizeof(buf)));
      const Vaddr dst = LoadLe64(buf);
      const uint64_t cap = LoadLe64(buf + 8);
      int source_sandbox = -1;
      auto wire = ProxyFetch(cpu, &source_sandbox);
      if (!wire.ok()) {
        return UnavailableError("EAGAIN");
      }
      // The proxy's buffer is ordinary pageable memory: fault it in before copying,
      // and requeue the packet (to its owning sandbox) if the copy cannot complete.
      Status st = wire->size() > cap ? OutOfRangeError("proxy buffer too small")
                                     : kernel_->FaultInUserRange(ctx, task, dst,
                                                                 wire->size());
      if (st.ok()) {
        st = WriteGuest(*task.aspace, dst, wire->data(), wire->size());
      }
      if (!st.ok()) {
        Sandbox* origin = sandbox_mgr_->Find(source_sandbox);
        if (origin != nullptr) {
          origin->outbound_wire.push_front(std::move(*wire));
        }
        return st;
      }
      return wire->size();
    }
    default:
      return InvalidArgumentError("unknown erebor ioctl " + std::to_string(cmd));
  }
}

}  // namespace erebor
