// Monitor lifecycle: image construction, measured stage-1/stage-2 boot, and the
// global invariant audit. The gated EMC surface is in emc_dispatch.cc, the
// attestation/channel handlers in attestation.cc, and exit interposition plus
// the /dev/erebor driver in interposition.cc.
#include "src/monitor/monitor.h"

#include <cstring>

#include "src/common/exec.h"
#include "src/common/faultpoint.h"
#include "src/common/log.h"

namespace erebor {

Bytes BuildMonitorImage() {
  // The monitor binary: entry gate (endbr64 + PKRS wrmsr + stack switch), exit gate,
  // #INT gate and the EMC dispatch body. It legitimately contains sensitive
  // instructions — it is measured (stage 1), not scanned.
  Bytes image;
  auto append = [&image](const Bytes& b) { image.insert(image.end(), b.begin(), b.end()); };
  append(EncodeEndbr64());                             // entry gate (sole endbr)
  append(EncodeSensitiveOp(SensitiveOp::kWrmsr));      // grant PKRS
  append({0x48, 0x89, 0xE0});                          // mov %rsp scratch
  append(EncodeSensitiveOp(SensitiveOp::kWrmsr));      // revoke PKRS (exit gate)
  append({0xC3});                                      // ret
  append(EncodeSensitiveOp(SensitiveOp::kMovToCr4));   // CR management
  append(EncodeSensitiveOp(SensitiveOp::kLidt));       // IDT control
  append(EncodeSensitiveOp(SensitiveOp::kTdcall));     // GHCI control
  append(EncodeSensitiveOp(SensitiveOp::kStac));
  append(EncodeSensitiveOp(SensitiveOp::kClac));
  append({'E', 'R', 'E', 'B', 'O', 'R', '-', 'M', 'O', 'N', 'I', 'T', 'O', 'R', '-', '1'});
  return image;
}

EreborMonitor::EreborMonitor(Machine* machine, TdxModule* tdx, HostVmm* host,
                             IsolationKind isolation)
    : machine_(machine), tdx_(tdx), host_(host), rng_(0xE2EB02) {
  frame_table_ = std::make_unique<FrameTable>(machine->memory().num_frames());
  isolation_ = MakeIsolationBackend(isolation, machine->memory().num_frames());
  policy_ = std::make_unique<MmuPolicy>(frame_table_.get(), isolation_.get());
  gates_ = std::make_unique<EmcGates>(machine, isolation_.get());
  sandbox_mgr_ = std::make_unique<SandboxManager>(machine, frame_table_.get(),
                                                  policy_.get(), isolation_.get());
  sandbox_mgr_->SetQuarantineHook([this](Cpu& cpu, Sandbox& sandbox) {
    FenceRingsOnQuarantine(cpu, sandbox);
  });
  // Registry-backed counters: every MonitorCounters field is visible through the
  // metrics registry while ++counters_.<field> stays a plain increment.
  metrics_.RegisterExternalCounter("monitor.emc_total", &counters_.emc_total);
  metrics_.RegisterExternalCounter("monitor.emc_pte", &counters_.emc_pte);
  metrics_.RegisterExternalCounter("monitor.emc_ptp_register", &counters_.emc_ptp_register);
  metrics_.RegisterExternalCounter("monitor.emc_cr", &counters_.emc_cr);
  metrics_.RegisterExternalCounter("monitor.emc_msr", &counters_.emc_msr);
  metrics_.RegisterExternalCounter("monitor.emc_idt", &counters_.emc_idt);
  metrics_.RegisterExternalCounter("monitor.emc_usercopy", &counters_.emc_usercopy);
  metrics_.RegisterExternalCounter("monitor.emc_tdcall", &counters_.emc_tdcall);
  metrics_.RegisterExternalCounter("monitor.emc_text_poke", &counters_.emc_text_poke);
  metrics_.RegisterExternalCounter("monitor.emc_sandbox", &counters_.emc_sandbox);
  metrics_.RegisterExternalCounter("monitor.policy_denials", &counters_.policy_denials);
  metrics_.RegisterExternalCounter("monitor.sandbox_kills", &counters_.sandbox_kills);
  metrics_.RegisterExternalCounter("monitor.scrubbed_interrupts",
                                   &counters_.scrubbed_interrupts);
  metrics_.RegisterExternalCounter("monitor.cached_cpuid_hits",
                                   &counters_.cached_cpuid_hits);
  metrics_.RegisterExternalCounter("monitor.exit_stalls", &counters_.exit_stalls);
  metrics_.RegisterExternalCounter("monitor.cache_flushes", &counters_.cache_flushes);
  metrics_.RegisterExternalCounter("monitor.quantized_outputs",
                                   &counters_.quantized_outputs);
  metrics_.RegisterExternalCounter("monitor.huge_splits", &counters_.huge_splits);
  metrics_.RegisterExternalCounter("monitor.tlb_shootdowns", &counters_.tlb_shootdowns);
  metrics_.RegisterExternalCounter("monitor.emc_ring", &counters_.emc_ring);
  metrics_.RegisterExternalCounter("monitor.ring_descriptors",
                                   &counters_.ring_descriptors);
  metrics_.RegisterExternalCounter("monitor.ring_rejects", &counters_.ring_rejects);
  metrics_.RegisterExternalCounter("monitor.ring_strikes", &counters_.ring_strikes);
  metrics_.RegisterExternalCounter("monitor.ring_shootdowns_coalesced",
                                   &counters_.ring_shootdowns_coalesced);
}

Status EreborMonitor::BootStage1(const Bytes& firmware_image, bool arm_fence) {
  if (stage1_done_) {
    return FailedPreconditionError("stage 1 already completed");
  }
  monitor_image_ = BuildMonitorImage();
  // Measured boot: firmware then monitor extend MRTD, in load order.
  tdx_->MeasureBootComponent(firmware_image);
  tdx_->MeasureBootComponent(monitor_image_);

  // Claim physical regions.
  EREBOR_RETURN_IF_ERROR(frame_table_->SetRange(layout::kFirmwareFirstFrame,
                                                layout::kFirmwareFrames,
                                                FrameType::kFirmware));
  EREBOR_RETURN_IF_ERROR(frame_table_->SetRange(layout::kMonitorFirstFrame,
                                                layout::kMonitorFrames,
                                                FrameType::kMonitor));
  EREBOR_RETURN_IF_ERROR(frame_table_->SetRange(layout::kKernelTextFirstFrame,
                                                layout::kKernelTextFrames,
                                                FrameType::kKernelText));
  EREBOR_RETURN_IF_ERROR(frame_table_->SetRange(layout::kSharedIoFirstFrame,
                                                layout::kSharedIoFrames,
                                                FrameType::kSharedIo));
  scratch_pa_ = AddrOf(layout::kMonitorFirstFrame + 1);

  // Bind the boot-claimed regions at the backend's controller (no-op under PKS,
  // whose tags ride in the PTEs): monitor frames become private to the monitor
  // domain; kernel text stays fetchable/readable but unwritable through any
  // foreign view.
  for (uint64_t i = 0; i < layout::kMonitorFrames; ++i) {
    isolation_->BindClass(nullptr, layout::kMonitorFirstFrame + i, ProtClass::kMonitor);
  }
  for (uint64_t i = 0; i < layout::kKernelTextFrames; ++i) {
    isolation_->BindClass(nullptr, layout::kKernelTextFirstFrame + i,
                          ProtClass::kKernelText);
  }

  // Install gates, CET, and the backend's per-CPU view (PKS: PKRS); then arm the
  // fence so only monitor context can execute sensitive instructions from here on.
  gates_->Install();
  monitor_syscall_stub_ = machine_->registry().Register("monitor_syscall_stub",
                                                        CodeDomain::kMonitor, true);
  for (int i = 0; i < machine_->num_cpus(); ++i) {
    machine_->cpu(i).SetTdcallSink(tdx_);
    if (arm_fence) {
      machine_->cpu(i).EnableSensitiveFence();
    }
  }
  policy_->SetCommonValidator([this](Paddr root, FrameNum frame, bool writable) {
    return sandbox_mgr_->ValidateCommonMapping(root, frame, writable);
  });
  // RetrofitKey rewrites live supervisor leaves behind the kernel's back, so the
  // policy calls back here for the machine-wide shootdown.
  policy_->SetTlbShootdown([this](Paddr entry_pa) {
    CounterAdd(counters_.tlb_shootdowns);
    if (Tlb::hooks().retrofit_shootdown) {
      machine_->ShootdownTlbLeaf(entry_pa);
    }
  });
  stage1_done_ = true;
  return OkStatus();
}

StatusOr<KernelImage> EreborMonitor::LoadKernelImage(const Bytes& kelf_bytes) {
  if (!stage1_done_) {
    return FailedPreconditionError("stage 1 must complete before loading a kernel");
  }
  EREBOR_ASSIGN_OR_RETURN(KernelImage image, KernelImage::Deserialize(kelf_bytes));

  // Byte-level scan of every executable section (paper section 5.1): any sensitive
  // encoding at any offset refuses the boot.
  for (const auto& section : image.sections) {
    if (!section.executable) {
      continue;
    }
    const ScanHit hit = ScanForSensitiveBytes(section.data);
    if (hit.found) {
      return PermissionDeniedError(
          "kernel image rejected: sensitive instruction '" + SensitiveOpName(hit.op) +
          "' at offset " + std::to_string(hit.offset) + " of section " + section.name);
    }
    if (section.writable) {
      return PermissionDeniedError("kernel image rejected: W^X violation in section " +
                                   section.name);
    }
  }

  // Load executable sections into the kernel-text frames (W^X: those frames can never
  // be mapped writable again).
  Paddr cursor = AddrOf(layout::kKernelTextFirstFrame);
  const Paddr text_end = AddrOf(layout::kKernelTextFirstFrame + layout::kKernelTextFrames);
  for (const auto& section : image.sections) {
    if (!section.executable) {
      continue;
    }
    if (cursor + section.data.size() > text_end) {
      return ResourceExhaustedError("kernel text exceeds reserved frames");
    }
    EREBOR_RETURN_IF_ERROR(
        machine_->memory().Write(cursor, section.data.data(), section.data.size()));
    cursor += PageAlignUp(section.data.size());
  }
  // Measure the loaded kernel into RTMR[0] so clients can audit which kernel runs
  // (it is untrusted but identifiable).
  EREBOR_RETURN_IF_ERROR(
      machine_->memory().Write(scratch_pa_, Sha256::Hash(kelf_bytes).data(), 32));
  Cpu& cpu = machine_->cpu(0);
  cpu.SetMonitorContext(true);
  uint64_t args[2] = {0, scratch_pa_};
  const Status rtmr_status = cpu.Tdcall(tdcall_leaf::kRtmrExtend, args, 2);
  cpu.SetMonitorContext(false);
  EREBOR_RETURN_IF_ERROR(rtmr_status);

  kernel_loaded_ = true;
  return image;
}

Status EreborMonitor::AuditInvariants() {
  PhysMemory& memory = machine_->memory();
  for (FrameNum frame = 0; frame < frame_table_->size(); ++frame) {
    const FrameInfo& info = frame_table_->info(frame);
    // Check the recorded supervisor mapping (the direct-map view) of special frames.
    Pte leaf = 0;
    if (info.supervisor_leaf_pa != 0) {
      leaf = memory.Read64(info.supervisor_leaf_pa);
      if (pte::Present(leaf) && pte::Frame(leaf) != frame) {
        leaf = 0;  // stale reverse-map record; not a violation by itself
      }
    }
    switch (info.type) {
      case FrameType::kSandboxConfined:
        if (info.map_count > 1) {
          return InternalError("confined frame " + std::to_string(frame) +
                               " mapped " + std::to_string(info.map_count) + " times");
        }
        if (kernel_ != nullptr &&
            kernel_->kernel_aspace().Lookup(layout::DirectMap(AddrOf(frame))).ok()) {
          return InternalError("confined frame " + std::to_string(frame) +
                               " still reachable via the kernel direct map");
        }
        // Backend audit: TME-MK verifies the frame is bound to its owner's keyID.
        EREBOR_RETURN_IF_ERROR(isolation_->AuditFrame(frame, info, leaf));
        break;
      case FrameType::kMonitor:
        // Backend audit: PKS checks the monitor key on the mapping, TME-MK the
        // monitor binding at the controller.
        EREBOR_RETURN_IF_ERROR(isolation_->AuditFrame(frame, info, leaf));
        break;
      case FrameType::kPtp:
        EREBOR_RETURN_IF_ERROR(isolation_->AuditFrame(frame, info, leaf));
        if (pte::Present(leaf) && pte::User(leaf)) {
          return InternalError("PTP frame " + std::to_string(frame) +
                               " user-accessible");
        }
        break;
      case FrameType::kKernelText:
        if (pte::Present(leaf) && pte::Writable(leaf)) {
          return InternalError("kernel-text frame " + std::to_string(frame) +
                               " writable");
        }
        EREBOR_RETURN_IF_ERROR(isolation_->AuditFrame(frame, info, leaf));
        break;
      case FrameType::kSandboxTemplate:
        // Shared read-only into every clone: unlike confined frames there is
        // no map-count cap, but the direct map must not reach the frame and no
        // recorded supervisor mapping may be writable. The backend audit pins
        // the TME-MK binding to keyID 0 + read-shared.
        if (kernel_ != nullptr &&
            kernel_->kernel_aspace().Lookup(layout::DirectMap(AddrOf(frame))).ok()) {
          return InternalError("template frame " + std::to_string(frame) +
                               " still reachable via the kernel direct map");
        }
        if (pte::Present(leaf) && pte::Writable(leaf)) {
          return InternalError("template frame " + std::to_string(frame) +
                               " has a writable supervisor mapping");
        }
        EREBOR_RETURN_IF_ERROR(isolation_->AuditFrame(frame, info, leaf));
        break;
      case FrameType::kShadowStack:
      case FrameType::kFirmware:
      case FrameType::kSharedIo:
      case FrameType::kSandboxCommon:
      case FrameType::kNormal:
        break;
    }
    // No private frame of a protected type may be shared with the host.
    if (memory.IsShared(frame) && info.type != FrameType::kSharedIo) {
      return InternalError("non-IO frame " + std::to_string(frame) +
                           " is host-shared (" + FrameTypeName(info.type) + ")");
    }
  }
  return OkStatus();
}

}  // namespace erebor
