// The table-driven EMC dispatch core plus every MMU/sandbox-surface EMC body.
// Attestation-side EMCs live in attestation.cc; exit interposition and the
// /dev/erebor driver live in interposition.cc. monitor.cc keeps boot/lifecycle.
#include <cstring>

#include "src/common/exec.h"
#include "src/common/faultpoint.h"
#include "src/common/log.h"
#include "src/monitor/monitor.h"

namespace erebor {

namespace {

// ---- Argument validators (pure functions of EmcArgs; stateful policy checks
// stay in the handler bodies). Every descriptor names one, even when it is
// trivially Ok — the completeness test asserts validate != nullptr.

EmcValidation ValidateOk(const EmcArgs&) { return EmcValidation{OkStatus(), false}; }

EmcValidation ValidateWriteCr(const EmcArgs& args) {
  if (args.reg != 0 && args.reg != 3 && args.reg != 4) {
    return EmcValidation{InvalidArgumentError("EMC WriteCr: no such control register cr" +
                                              std::to_string(args.reg)),
                         /*count_denial=*/true};
  }
  return EmcValidation{OkStatus(), false};
}

EmcValidation ValidateLoadIdt(const EmcArgs& args) {
  if (args.ptr == nullptr) {
    return EmcValidation{InvalidArgumentError("EMC LoadIdt: null IDT"), false};
  }
  return EmcValidation{OkStatus(), false};
}

EmcValidation ValidateTdcall(const EmcArgs& args) {
  switch (args.leaf) {
    case tdcall_leaf::kTdReport:
    case tdcall_leaf::kRtmrExtend:
      // Attestation interfaces are exclusively the monitor's (claim C5): the
      // kernel cannot obtain digests to impersonate the monitor.
      return EmcValidation{
          PermissionDeniedError("attestation tdcall reserved for the monitor"),
          /*count_denial=*/true};
    case tdcall_leaf::kMapGpa:
      if (args.nargs < 3) {
        return EmcValidation{InvalidArgumentError("map-gpa needs 3 args"), false};
      }
      return EmcValidation{OkStatus(), false};
    default:
      return EmcValidation{OkStatus(), false};
  }
}

EmcValidation ValidateLoadModule(const EmcArgs& args) {
  if (args.len == 0) {
    return EmcValidation{InvalidArgumentError("empty module"), false};
  }
  return EmcValidation{OkStatus(), false};
}

// Ring-doorbell structural screen: args.count is the submission-window size
// (sq_tail - shadow_sq_head), args.len the completion backlog (shadow_cq_tail -
// cq_head), both computed from a single snapshot of the untrusted indexes. A
// window or backlog larger than the ring means the kernel wrapped or forged an
// index — Garmr-class gate-entry abuse, counted as a denial (the caller adds a
// strike).
EmcValidation ValidateRingDoorbell(const EmcArgs& args) {
  if (args.count == 0) {
    return EmcValidation{InvalidArgumentError("ring doorbell with empty submission window"),
                         false};
  }
  if (args.count > EmcRing::kSlots) {
    return EmcValidation{
        OutOfRangeError("SQ window exceeds ring capacity (wrapped or forged tail)"),
        /*count_denial=*/true};
  }
  if (args.len > EmcRing::kSlots) {
    return EmcValidation{
        OutOfRangeError("CQ head ahead of tail (forged consumer index)"),
        /*count_denial=*/true};
  }
  return EmcValidation{OkStatus(), false};
}

using Table = std::array<EmcDescriptor, static_cast<size_t>(EmcOp::kCount)>;

Table BuildTable() {
  Table table{};
  auto row = [&table](EmcDescriptor d) {
    table[static_cast<size_t>(d.op)] = d;
  };
  row({EmcOp::kWritePte, "write_pte", "emc.write_pte", TraceEvent::kEmcPte,
       &CycleModel::monitor_pte_op, &MonitorCounters::emc_pte,
       /*requires_attached_kernel=*/false, /*locks_monitor_state=*/false,
       /*locks_target_sandbox=*/false, /*locks_frame_shards=*/true, ValidateOk});
  row({EmcOp::kWritePteBatch, "write_pte_batch", "emc.write_pte_batch",
       TraceEvent::kEmcPteBatch, &CycleModel::monitor_pte_op,
       &MonitorCounters::emc_pte, false, false, false, true, ValidateOk});
  row({EmcOp::kRegisterPtp, "register_ptp", "emc.register_ptp",
       TraceEvent::kEmcPtpRegister, &CycleModel::monitor_pte_op,
       &MonitorCounters::emc_ptp_register, false, false, false, true, ValidateOk});
  row({EmcOp::kWriteCr, "write_cr", "emc.write_cr", TraceEvent::kEmcCr,
       &CycleModel::monitor_cr_op, &MonitorCounters::emc_cr, false, true, false,
       false, ValidateWriteCr});
  row({EmcOp::kWriteMsr, "write_msr", "emc.write_msr", TraceEvent::kEmcMsr,
       &CycleModel::monitor_msr_op, &MonitorCounters::emc_msr, false, true, false,
       false, ValidateOk});
  row({EmcOp::kLoadIdt, "load_idt", "emc.load_idt", TraceEvent::kEmcIdt,
       &CycleModel::monitor_idt_op, &MonitorCounters::emc_idt, false, true, false,
       false, ValidateLoadIdt});
  row({EmcOp::kCopyToUser, "copy_to_user", "emc.copy_to_user",
       TraceEvent::kEmcUserCopy, &CycleModel::monitor_stac_op,
       &MonitorCounters::emc_usercopy, false, false, false, false, ValidateOk});
  row({EmcOp::kCopyFromUser, "copy_from_user", "emc.copy_from_user",
       TraceEvent::kEmcUserCopy, &CycleModel::monitor_stac_op,
       &MonitorCounters::emc_usercopy, false, false, false, false, ValidateOk});
  row({EmcOp::kTdcall, "tdcall", "emc.tdcall", TraceEvent::kEmcTdcall,
       &CycleModel::monitor_tdreport_op, &MonitorCounters::emc_tdcall, false, true,
       false, false, ValidateTdcall});
  row({EmcOp::kTextPoke, "text_poke", "emc.text_poke", TraceEvent::kEmcTextPoke,
       &CycleModel::monitor_pte_op, &MonitorCounters::emc_text_poke, false, true,
       false, false, ValidateOk});
  row({EmcOp::kRingDoorbell, "ring_doorbell", "emc.ring_doorbell",
       TraceEvent::kEmcRingDoorbell, &CycleModel::monitor_ring_op,
       &MonitorCounters::emc_ring, /*requires_attached_kernel=*/false,
       /*locks_monitor_state=*/false, /*locks_target_sandbox=*/true,
       /*locks_frame_shards=*/true, ValidateRingDoorbell});
  row({EmcOp::kLoadKernelModule, "load_kernel_module", "emc.load_kernel_module",
       TraceEvent::kEmcTextPoke, &CycleModel::page_copy,
       &MonitorCounters::emc_text_poke, /*requires_attached_kernel=*/true, true,
       false, false, ValidateLoadModule});
  row({EmcOp::kSandboxOp, "sandbox_op", "emc.sandbox_op", TraceEvent::kEmcSandboxOp,
       &CycleModel::monitor_pte_op, &MonitorCounters::emc_sandbox, false, false,
       /*locks_target_sandbox=*/true, false, ValidateOk});
  row({EmcOp::kChannelOp, "channel_op", "emc.channel_op", TraceEvent::kEmcChannelOp,
       &CycleModel::monitor_channel_op, nullptr, false, false,
       /*locks_target_sandbox=*/true, false, ValidateOk});
  return table;
}

}  // namespace

const Table& EmcDescriptorTable() {
  static const Table* table = new Table(BuildTable());
  return *table;
}

const EmcDescriptor& EmcDescriptorFor(EmcOp op) {
  return EmcDescriptorTable()[static_cast<size_t>(op)];
}

// ---- The single gated-dispatch path ----

Status EreborMonitor::EmcDispatch(Cpu& cpu, const EmcCall& call,
                                  const std::function<Status()>& body) {
  const EmcDescriptor& d = EmcDescriptorFor(call.op);
  // Family counters count *requests*, successful or not, and always did so
  // before the gate (a refused entry still shows up in the family's rate).
  if (d.family_counter != nullptr) {
    CounterAdd(counters_.*(d.family_counter));
  }
  if (d.requires_attached_kernel && kernel_ == nullptr) {
    return FailedPreconditionError(std::string(d.name) +
                                   " requires an attached kernel");
  }
  if (FaultInjector::Armed() &&
      FaultInjector::Global().Fire(d.fault_site, FaultAction::kFail)) {
    // Injected transient refusal at the EMC doorstep (e.g. the host yanked the
    // vCPU on the crossing). kUnavailable: callers with retry loops absorb it.
    return UnavailableError(std::string("injected EMC fault at ") + d.fault_site);
  }

  Status enter = gates_->Enter(cpu);
  // A transient (kUnavailable) entry refusal — e.g. an injected host preemption on
  // the crossing instruction — is absorbed here with a bounded re-entry: the gate is
  // stateless until entry completes, so re-executing the crossing is always safe.
  // Real security failures (IBT/#CP) propagate unchanged.
  for (int attempt = 0;
       !enter.ok() && enter.code() == ErrorCode::kUnavailable && attempt < 3;
       ++attempt) {
    enter = gates_->Enter(cpu);
    if (enter.ok()) {
      NoteFaultRecovered();
    }
  }
  EREBOR_RETURN_IF_ERROR(enter);

  // Lock plan: kGlobal takes the one big lock; kSharded takes sandbox ->
  // monitor-state -> frame shards in ascending rank (LockAudit enforces it).
  const bool simulate = locks_.simulate_contention();
  std::vector<SimLockGuard> guards;
  if (locks_.mode() == EmcLocking::kGlobal) {
    guards.emplace_back(&locks_.global(), &cpu, simulate);
  } else {
    if (d.locks_target_sandbox && call.sandbox_id >= 0) {
      Sandbox* target = sandbox_mgr_->Find(call.sandbox_id);
      if (target != nullptr) {
        guards.emplace_back(&target->lock, &cpu, simulate);
      }
    }
    if (d.locks_monitor_state) {
      guards.emplace_back(&locks_.monitor_state(), &cpu, simulate);
    }
    if (d.locks_frame_shards) {
      for (int i = 0; i < EmcLockTable::kFrameShards; ++i) {
        if ((call.shard_mask >> i) & 1u) {
          guards.emplace_back(&locks_.shard(i), &cpu, simulate);
        }
      }
    }
  }
  auto release_locks = [&guards]() {
    for (auto it = guards.rbegin(); it != guards.rend(); ++it) {
      it->reset();
    }
  };

  const Cycles unit =
      call.has_unit_override ? call.unit_override : cpu.costs().*(d.unit_cost);
  const Cycles op_cycles = unit * call.cost_units + call.extra_cycles;
  cpu.cycles().Charge(op_cycles);
  CounterAdd(counters_.emc_total);
  Tracer::Global().Record(d.trace_event, cpu.index(), cpu.cycles().now(),
                          call.sandbox_id, op_cycles);

  const EmcValidation validation = d.validate(call.args);
  if (!validation.status.ok()) {
    if (validation.count_denial) {
      NoteDenial(cpu);
    }
    release_locks();
    gates_->Exit(cpu);
    return validation.status;
  }

  const Status status = body();
  release_locks();
  gates_->Exit(cpu);
  return status;
}

void EreborMonitor::NoteDenial(Cpu& cpu) {
  CounterAdd(counters_.policy_denials);
  Tracer::Global().Record(TraceEvent::kPolicyDenial, cpu.index(), cpu.cycles().now());
}

void EreborMonitor::ShootdownAfterPteWrite(Cpu& cpu, Paddr entry_pa, Pte old_value,
                                           Pte new_value) {
  // Conservative predicate: any change to a previously present entry. The security-
  // critical subset is PteRevokesPermissions(), but grant-only rewrites are also
  // invalidated so cached WalkResults never diverge from the tables.
  if (!pte::Present(old_value) || old_value == new_value) {
    return;
  }
  CounterAdd(counters_.tlb_shootdowns);
  if (Tlb::hooks().pte_shootdown) {
    machine_->ShootdownTlbLeaf(entry_pa, cpu.index());
  }
}

// ---- MMU / monitor-state EMC bodies ----

// The policy/apply sequence shared by the synchronous EmcWritePte and the ring
// drain (emc_ring.cc). `deferred` non-null defers the post-write shootdown into
// the batch for coalescing; null keeps the immediate per-write broadcast. The
// ring path cannot take the huge-page split (it allocates and relinks under a
// different lock footprint than the drain planned for), so it is refused there
// and routed to the synchronous path.
Status EreborMonitor::WritePteBodyLocked(Cpu& cpu, Paddr entry_pa, Pte value,
                                         TlbShootdownBatch* deferred) {
  const PolicyDecision decision = policy_->CheckPteWrite(entry_pa, value);
  if (decision.needs_split) {
    if (deferred != nullptr) {
      NoteDenial(cpu);
      return PermissionDeniedError(
          "huge-page splits require the synchronous write_pte path");
    }
    return SplitHugePageLocked(cpu, entry_pa, value);
  }
  if (!decision.allowed) {
    NoteDenial(cpu);
    return PermissionDeniedError("EMC WritePte refused: " + decision.denial_reason);
  }
  LockAudit::Global().ExpectFrameShardHeld(cpu.index(),
                                           EmcLockTable::ShardOf(FrameOf(entry_pa)));
  const Pte old = machine_->memory().Read64(entry_pa);
  machine_->memory().Write64(entry_pa, decision.adjusted_value);
  policy_->NoteLeafWrite(old, decision.adjusted_value, entry_pa);
  if (deferred == nullptr) {
    ShootdownAfterPteWrite(cpu, entry_pa, old, decision.adjusted_value);
  } else if (pte::Present(old) && old != decision.adjusted_value) {
    deferred->Add(entry_pa);
  }
  return OkStatus();
}

Status EreborMonitor::EmcWritePte(Cpu& cpu, Paddr entry_pa, Pte value) {
  EmcCall call{};
  call.op = EmcOp::kWritePte;
  call.args.entry_pa = entry_pa;
  call.args.value = value;
  call.shard_mask = 1ull << EmcLockTable::ShardOf(FrameOf(entry_pa));
  return EmcDispatch(cpu, call, [&]() -> Status {
    return WritePteBodyLocked(cpu, entry_pa, value, /*deferred=*/nullptr);
  });
}

Status EreborMonitor::SplitHugePageLocked(Cpu& cpu, Paddr entry_pa, Pte huge_value) {
  // Forced huge-page splitting (paper section 7 future work): materialize a level-1
  // table of 512 4 KiB mappings in place of the requested 2 MiB leaf, so per-page
  // protection keys (monitor/PTP/text) remain enforceable inside the range.
  if (kernel_ == nullptr) {
    return FailedPreconditionError("split requires an attached kernel (frame pool)");
  }
  const FrameNum base = pte::Frame(huge_value) & ~0x1FFULL;  // 2 MiB aligned
  const Pte small_flags = (huge_value & ~(pte::kPageSize | pte::kFrameMask));

  EREBOR_ASSIGN_OR_RETURN(const FrameNum ptp, kernel_->pool().Alloc());
  machine_->memory().ZeroFrame(ptp);
  machine_->memory().FramePtr(ptp);
  FrameInfo& ptp_info = frame_table_->info(ptp);
  ptp_info.type = FrameType::kPtp;
  ptp_info.ptp_level = 1;
  ptp_info.ptp_root = frame_table_->info(FrameOf(entry_pa)).ptp_root;
  // The pool frame usually still has a default-key direct-map leaf: re-key it now or
  // the kernel could forge entries in the new table through that old mapping.
  EREBOR_RETURN_IF_ERROR(
      policy_->RetrofitTag(&cpu, machine_->memory(), ptp, ProtClass::kPtp, false));

  // Validate + install every 4 KiB entry through the normal policy (this is the whole
  // point: per-page rules apply inside the former huge page).
  for (uint64_t i = 0; i < kPteEntries; ++i) {
    const Pte small = pte::Make(base + i, small_flags);
    const Paddr slot = AddrOf(ptp) + i * sizeof(Pte);
    const PolicyDecision decision = policy_->CheckPteWrite(slot, small);
    if (!decision.allowed) {
      NoteDenial(cpu);
      // Roll back the subpage entries already installed: their NoteLeafWrite map
      // counts must be undone before the PTP frame is freed, or the frame table
      // permanently over-counts mappings of frames in this range.
      for (uint64_t j = 0; j < i; ++j) {
        const Paddr done_slot = AddrOf(ptp) + j * sizeof(Pte);
        const Pte installed = machine_->memory().Read64(done_slot);
        machine_->memory().Write64(done_slot, 0);
        policy_->NoteLeafWrite(installed, 0, done_slot);
      }
      (void)kernel_->pool().Free(ptp);
      // Restore normal typing and the default-key direct-map leaf, but keep the
      // reverse-map fields: the direct map still references this frame.
      ptp_info.type = FrameType::kNormal;
      ptp_info.ptp_level = 0;
      ptp_info.ptp_root = 0;
      (void)policy_->RetrofitTag(&cpu, machine_->memory(), ptp, ProtClass::kDefault,
                                 false);
      return PermissionDeniedError("huge-page split refused at subpage " +
                                   std::to_string(i) + ": " + decision.denial_reason);
    }
    machine_->memory().Write64(slot, decision.adjusted_value);
    policy_->NoteLeafWrite(0, decision.adjusted_value, slot);
  }
  cpu.cycles().Charge(kPteEntries * cpu.costs().monitor_pte_op);

  // Link the new table where the huge leaf would have gone.
  Pte inter = pte::Make(ptp, pte::kPresent | pte::kWritable);
  if (pte::User(huge_value)) {
    inter |= pte::kUser;
  }
  const Pte old = machine_->memory().Read64(entry_pa);
  machine_->memory().Write64(entry_pa, inter);
  policy_->NoteLeafWrite(old, inter);
  // The former huge leaf may be cached; the relinked intermediate changes every
  // translation under it.
  ShootdownAfterPteWrite(cpu, entry_pa, old, inter);
  CounterAdd(counters_.huge_splits);
  return OkStatus();
}

Status EreborMonitor::EmcWritePteBatch(Cpu& cpu, const PrivilegedOps::PteUpdate* updates,
                                       size_t count) {
  if (count == 0) {
    return OkStatus();
  }
  EmcCall call{};
  call.op = EmcOp::kWritePteBatch;
  call.args.count = count;
  call.cost_units = count;
  for (size_t i = 0; i < count; ++i) {
    call.shard_mask |= 1ull << EmcLockTable::ShardOf(FrameOf(updates[i].entry_pa));
  }
  // One gate round trip for the whole batch; each entry is still policy-validated and
  // charged the monitor-side op cost. The batch is all-or-nothing: every entry is
  // validated before any PTE memory is written, so a denial mid-batch leaves the page
  // tables untouched instead of half-applied.
  return EmcDispatch(cpu, call, [&]() -> Status {
    std::vector<PolicyDecision> decisions(count);
    for (size_t i = 0; i < count; ++i) {
      decisions[i] = policy_->CheckPteWrite(updates[i].entry_pa, updates[i].value);
      if (decisions[i].needs_split) {
        NoteDenial(cpu);
        return PermissionDeniedError("huge-page splits are not supported in batches");
      }
      if (!decisions[i].allowed) {
        NoteDenial(cpu);
        return PermissionDeniedError("EMC WritePteBatch refused at entry " +
                                     std::to_string(i) + ": " +
                                     decisions[i].denial_reason);
      }
    }
    for (size_t i = 0; i < count; ++i) {
      LockAudit::Global().ExpectFrameShardHeld(
          cpu.index(), EmcLockTable::ShardOf(FrameOf(updates[i].entry_pa)));
      const Pte old = machine_->memory().Read64(updates[i].entry_pa);
      machine_->memory().Write64(updates[i].entry_pa, decisions[i].adjusted_value);
      policy_->NoteLeafWrite(old, decisions[i].adjusted_value, updates[i].entry_pa);
      ShootdownAfterPteWrite(cpu, updates[i].entry_pa, old,
                             decisions[i].adjusted_value);
    }
    return OkStatus();
  });
}

// Shared by the synchronous EmcRegisterPtp and the ring drain.
Status EreborMonitor::RegisterPtpBodyLocked(Cpu& cpu, FrameNum frame, Paddr root_pa) {
  if (frame >= frame_table_->size()) {
    return OutOfRangeError("PTP frame beyond physical memory");
  }
  FrameInfo& info = frame_table_->info(frame);
  if (info.type != FrameType::kNormal) {
    NoteDenial(cpu);
    return PermissionDeniedError("cannot re-type " + FrameTypeName(info.type) +
                                 " frame as PTP");
  }
  LockAudit::Global().ExpectFrameShardHeld(cpu.index(), EmcLockTable::ShardOf(frame));
  // A PTP must start zeroed so no stale attacker-chosen entries become live.
  machine_->memory().ZeroFrame(frame);
  info.type = FrameType::kPtp;
  info.ptp_root = root_pa;
  // A frame registered as its own root is a PML4; others are linked (and get their
  // level) when an intermediate entry first points at them.
  info.ptp_level = AddrOf(frame) == root_pa ? 4 : 0;
  // The frame may already be mapped (direct map, default key): retrofit the PTP key
  // so the kernel cannot write the new page table through the old mapping.
  EREBOR_RETURN_IF_ERROR(policy_->RetrofitTag(&cpu, machine_->memory(), frame,
                                              ProtClass::kPtp, /*strip_write=*/false));
  return OkStatus();
}

Status EreborMonitor::EmcRegisterPtp(Cpu& cpu, FrameNum frame, Paddr root_pa) {
  EmcCall call{};
  call.op = EmcOp::kRegisterPtp;
  call.args.frame = frame;
  call.args.root_pa = root_pa;
  call.shard_mask = 1ull << EmcLockTable::ShardOf(frame);
  return EmcDispatch(cpu, call, [&]() -> Status {
    return RegisterPtpBodyLocked(cpu, frame, root_pa);
  });
}

Status EreborMonitor::EmcWriteCr(Cpu& cpu, int reg, uint64_t value) {
  EmcCall call{};
  call.op = EmcOp::kWriteCr;
  call.args.reg = reg;
  call.args.value = value;
  return EmcDispatch(cpu, call, [&]() -> Status {
    const uint64_t current = reg == 0 ? cpu.cr0() : reg == 3 ? cpu.cr3() : cpu.cr4();
    EREBOR_RETURN_IF_ERROR(policy_->CheckCrWrite(reg, value, current));
    uint64_t effective = value;
    if (reg == 4) {
      // The protection bits are sticky: merge them into whatever the kernel asked for.
      effective |= isolation_->PinnedCr4();
    }
    cpu.TrustedWriteCr(reg, effective);
    return OkStatus();
  });
}

Status EreborMonitor::EmcWriteMsr(Cpu& cpu, uint32_t index, uint64_t value) {
  EmcCall call{};
  call.op = EmcOp::kWriteMsr;
  call.args.msr_index = index;
  call.args.value = value;
  return EmcDispatch(cpu, call, [&]() -> Status {
    EREBOR_RETURN_IF_ERROR(policy_->CheckMsrWrite(index));
    if (index == msr::kIa32Lstar) {
      // Record the kernel's syscall entry but keep the monitor stub in front: the
      // effective LSTAR is the monitor's interposition label.
      kernel_syscall_entry_ = static_cast<CodeLabelId>(value);
      cpu.TrustedWriteMsr(index, monitor_syscall_stub_);
      return OkStatus();
    }
    cpu.TrustedWriteMsr(index, value);
    return OkStatus();
  });
}

Status EreborMonitor::EmcLoadIdt(Cpu& cpu, const IdtTable* table) {
  EmcCall call{};
  call.op = EmcOp::kLoadIdt;
  call.args.ptr = table;
  return EmcDispatch(cpu, call, [&]() -> Status {
    if (approved_idt_ == nullptr) {
      approved_idt_ = table;  // first load: the kernel's boot-time table is recorded
    } else if (approved_idt_ != table) {
      NoteDenial(cpu);
      return PermissionDeniedError("IDT replacement refused: interposition table pinned");
    }
    cpu.TrustedLidt(table);  // the op cost is part of monitor_idt_op
    return OkStatus();
  });
}

Status EreborMonitor::EmcCopyToUser(Cpu& cpu, Vaddr dst, const uint8_t* src, uint64_t len) {
  EmcCall call{};
  call.op = EmcOp::kCopyToUser;
  call.args.ptr = src;
  call.args.value = dst;
  call.args.len = len;
  return EmcDispatch(cpu, call, [&]() -> Status {
    // The monitor emulates the user copy on behalf of the kernel. It refuses targets
    // inside sealed-sandbox confined memory (the kernel must never move sandbox data).
    for (Vaddr va = PageAlignDown(dst); va < dst + len; va += kPageSize) {
      const auto walk = cpu.WalkCached(cpu.cr3(), va, CpuMode::kSupervisor);
      if (walk.ok()) {
        const FrameInfo& info = frame_table_->info(FrameOf(walk->pa));
        if (info.type == FrameType::kSandboxConfined) {
          Sandbox* sandbox = sandbox_mgr_->Find(info.owner_sandbox);
          if (sandbox != nullptr && sandbox->state == SandboxState::kSealed) {
            NoteDenial(cpu);
            return PermissionDeniedError("usercopy into sealed confined memory refused");
          }
        }
      }
    }
    cpu.cycles().Charge(len * cpu.costs().usercopy_per_byte_x100 / 100);
    cpu.TrustedSetAc(true);  // stac cost is part of monitor_stac_op
    const Status st = cpu.WriteVirt(dst, src, len);
    cpu.TrustedSetAc(false);
    return st;
  });
}

Status EreborMonitor::EmcCopyFromUser(Cpu& cpu, Vaddr src, uint8_t* dst, uint64_t len) {
  EmcCall call{};
  call.op = EmcOp::kCopyFromUser;
  call.args.value = src;
  call.args.len = len;
  return EmcDispatch(cpu, call, [&]() -> Status {
    for (Vaddr va = PageAlignDown(src); va < src + len; va += kPageSize) {
      const auto walk = cpu.WalkCached(cpu.cr3(), va, CpuMode::kSupervisor);
      if (walk.ok()) {
        const FrameInfo& info = frame_table_->info(FrameOf(walk->pa));
        if (info.type == FrameType::kSandboxConfined) {
          Sandbox* sandbox = sandbox_mgr_->Find(info.owner_sandbox);
          if (sandbox != nullptr && sandbox->state == SandboxState::kSealed) {
            NoteDenial(cpu);
            return PermissionDeniedError("usercopy from sealed confined memory refused");
          }
        }
      }
    }
    cpu.cycles().Charge(len * cpu.costs().usercopy_per_byte_x100 / 100);
    cpu.TrustedSetAc(true);
    const Status st = cpu.ReadVirt(src, dst, len);
    cpu.TrustedSetAc(false);
    return st;
  });
}

Status EreborMonitor::EmcTextPoke(Cpu& cpu, Paddr code_pa, const uint8_t* bytes,
                                  uint64_t len) {
  EmcCall call{};
  call.op = EmcOp::kTextPoke;
  call.args.entry_pa = code_pa;
  call.args.ptr = bytes;
  call.args.len = len;
  call.extra_cycles = cpu.costs().page_copy;
  return EmcDispatch(cpu, call, [&]() -> Status {
    const FrameNum frame = FrameOf(code_pa);
    if (frame_table_->info(frame).type != FrameType::kKernelText) {
      return PermissionDeniedError("text_poke target is not kernel text");
    }
    // The patch itself must be clean of sensitive encodings — including sequences that
    // straddle the patch boundary, so scan with surrounding context.
    const uint64_t kContext = 8;
    const Paddr scan_start = code_pa >= kContext ? code_pa - kContext : 0;
    const uint64_t scan_len = len + 2 * kContext;
    Bytes window(scan_len);
    EREBOR_RETURN_IF_ERROR(machine_->memory().Read(scan_start, window.data(), scan_len));
    std::memcpy(window.data() + (code_pa - scan_start), bytes, len);
    const ScanHit hit = ScanForSensitiveBytes(window);
    if (hit.found) {
      NoteDenial(cpu);
      return PermissionDeniedError("text_poke rejected: would introduce " +
                                   SensitiveOpName(hit.op));
    }
    return machine_->memory().Write(code_pa, bytes, len);
  });
}

StatusOr<Paddr> EreborMonitor::EmcLoadKernelModule(Cpu& cpu, const Bytes& code) {
  EmcCall call{};
  call.op = EmcOp::kLoadKernelModule;
  call.args.ptr = code.data();
  call.args.len = code.size();
  call.cost_units = 1 + code.size() / kPageSize;
  Paddr load_pa = 0;
  const Status st = EmcDispatch(cpu, call, [&]() -> Status {
    const ScanHit hit = ScanForSensitiveBytes(code);
    if (hit.found) {
      NoteDenial(cpu);
      return PermissionDeniedError("module rejected: contains " +
                                   SensitiveOpName(hit.op) + " at offset " +
                                   std::to_string(hit.offset));
    }
    const uint64_t frames = PageAlignUp(code.size()) >> kPageShift;
    EREBOR_ASSIGN_OR_RETURN(const FrameNum first,
                            kernel_->pool().AllocContiguous(frames));
    for (uint64_t i = 0; i < frames; ++i) {
      machine_->memory().ZeroFrame(first + i);
      machine_->memory().FramePtr(first + i);
      (void)frame_table_->SetType(first + i, FrameType::kKernelText);
      // W^X through *all* mappings: the direct-map view loses W and gets the
      // kernel-text key.
      EREBOR_RETURN_IF_ERROR(policy_->RetrofitTag(&cpu, machine_->memory(), first + i,
                                                  ProtClass::kKernelText,
                                                  /*strip_write=*/true));
    }
    EREBOR_RETURN_IF_ERROR(
        machine_->memory().Write(AddrOf(first), code.data(), code.size()));
    load_pa = AddrOf(first);
    return OkStatus();
  });
  if (!st.ok()) {
    return st;
  }
  return load_pa;
}

// ---- Sandbox surface ----

StatusOr<Sandbox*> EreborMonitor::CreateSandbox(Task& leader, const SandboxSpec& spec) {
  CounterAdd(counters_.emc_sandbox);
  return sandbox_mgr_->Create(leader, spec);
}

Status EreborMonitor::DeclareConfined(Cpu& cpu, Sandbox& sandbox, Vaddr va, uint64_t len) {
  EmcCall call{};
  call.op = EmcOp::kSandboxOp;
  call.args.value = va;
  call.args.len = len;
  call.sandbox_id = sandbox.id;
  return EmcDispatch(cpu, call, [&] {
    return sandbox_mgr_->DeclareConfined(cpu, sandbox, va, len);
  });
}

StatusOr<CommonRegion*> EreborMonitor::CreateCommonRegion(const std::string& name,
                                                          uint64_t len) {
  if (kernel_ == nullptr) {
    return FailedPreconditionError("no kernel attached");
  }
  return sandbox_mgr_->CreateCommonRegion(name, len, kernel_->pool());
}

Status EreborMonitor::AttachCommon(Cpu& cpu, Sandbox& sandbox, int region_id, Vaddr va,
                                   bool writable_until_seal) {
  EmcCall call{};
  call.op = EmcOp::kSandboxOp;
  call.args.value = va;
  call.sandbox_id = sandbox.id;
  return EmcDispatch(cpu, call, [&] {
    return sandbox_mgr_->AttachCommon(cpu, sandbox, region_id, va, writable_until_seal);
  });
}

Status EreborMonitor::TeardownSandbox(Cpu& cpu, Sandbox& sandbox) {
  EmcCall call{};
  call.op = EmcOp::kSandboxOp;
  call.sandbox_id = sandbox.id;
  return EmcDispatch(cpu, call,
                     [&] { return sandbox_mgr_->Teardown(cpu, sandbox); });
}

Status EreborMonitor::SnapshotTemplate(Cpu& cpu, Sandbox& sandbox) {
  EmcCall call{};
  call.op = EmcOp::kSandboxOp;
  call.sandbox_id = sandbox.id;
  return EmcDispatch(cpu, call,
                     [&] { return sandbox_mgr_->SnapshotTemplate(cpu, sandbox); });
}

StatusOr<Sandbox*> EreborMonitor::CloneSandbox(Cpu& cpu, Task& leader, Sandbox& tmpl,
                                               const SandboxSpec& spec) {
  CounterAdd(counters_.emc_sandbox);
  // The clone's id does not exist until the body runs; serialize on the
  // template, whose frames and live_clones count the body mutates.
  Sandbox* clone = nullptr;
  EmcCall call{};
  call.op = EmcOp::kSandboxOp;
  call.sandbox_id = tmpl.id;
  EREBOR_RETURN_IF_ERROR(EmcDispatch(cpu, call, [&]() -> Status {
    EREBOR_ASSIGN_OR_RETURN(clone,
                            sandbox_mgr_->CloneFromTemplate(cpu, leader, tmpl, spec));
    return OkStatus();
  }));
  return clone;
}

Status EreborMonitor::ActivateClone(Cpu& cpu, Sandbox& sandbox) {
  EmcCall call{};
  call.op = EmcOp::kSandboxOp;
  call.sandbox_id = sandbox.id;
  return EmcDispatch(cpu, call,
                     [&] { return sandbox_mgr_->ActivateClone(cpu, sandbox); });
}

// ---- Proxy packet plumbing (crypto handling lives in attestation.cc) ----

Status EreborMonitor::ProxyDeliver(Cpu& cpu, const Bytes& wire) {
  if (FaultInjector::Armed() &&
      FaultInjector::Global().Fire("channel.deliver", FaultAction::kDrop)) {
    // The untrusted proxy "lost" the packet at the monitor's doorstep. From the
    // client's perspective this is ordinary network loss: its bounded retry covers it.
    return OkStatus();
  }
  EmcCall call{};
  call.op = EmcOp::kChannelOp;
  // The target sandbox is only known after deserialization, so the handlers take
  // the sandbox lock themselves (EmcLockTable::SandboxGuard).
  return EmcDispatch(cpu, call, [&]() -> Status {
    if (!wire.empty() && static_cast<PacketType>(wire[0]) == PacketType::kDataRecord) {
      // Hot path: data records are parsed as a borrowed view and decrypted
      // straight from the wire buffer (no Packet materialization).
      EREBOR_ASSIGN_OR_RETURN(const RecordView view, ParseRecordWire(wire));
      return HandleDataRecord(cpu, view);
    }
    EREBOR_ASSIGN_OR_RETURN(const Packet packet, Packet::Deserialize(wire));
    switch (packet.type) {
      case PacketType::kClientHello:
        return HandleHello(cpu, packet);
      case PacketType::kFin:
        return HandleFin(cpu, packet);
      default:
        return InvalidArgumentError("unexpected packet type from network");
    }
  });
}

Status EreborMonitor::ProxyDeliverBatch(Cpu& cpu, const std::vector<Bytes>& wires) {
  if (wires.empty()) {
    return OkStatus();
  }
  EmcCall call{};
  call.op = EmcOp::kChannelOp;
  call.cost_units = wires.size();  // one gate crossing, per-packet channel-op cost
  return EmcDispatch(cpu, call, [&]() -> Status {
    Status first_error = OkStatus();
    auto note = [&first_error](const Status& st) {
      if (first_error.ok() && !st.ok()) {
        first_error = st;
      }
    };

    // Partition the burst: control packets stay in arrival order, data records
    // are grouped per target sandbox with their relative order preserved.
    std::vector<const Bytes*> control;
    std::map<int32_t, std::vector<RecordView>> data_by_sandbox;
    for (const Bytes& wire : wires) {
      if (FaultInjector::Armed() &&
          FaultInjector::Global().Fire("channel.deliver", FaultAction::kDrop)) {
        continue;  // ordinary network loss; the client's bounded retry covers it
      }
      if (!wire.empty() && static_cast<PacketType>(wire[0]) == PacketType::kDataRecord) {
        StatusOr<RecordView> view = ParseRecordWire(wire);
        if (!view.ok()) {
          note(view.status());
          continue;
        }
        data_by_sandbox[view->sandbox_id].push_back(*view);
        continue;
      }
      control.push_back(&wire);
    }

    for (const Bytes* wire : control) {
      StatusOr<Packet> packet = Packet::Deserialize(*wire);
      if (!packet.ok()) {
        note(packet.status());
        continue;
      }
      switch (packet->type) {
        case PacketType::kClientHello:
          note(HandleHello(cpu, *packet));
          break;
        case PacketType::kFin:
          note(HandleFin(cpu, *packet));
          break;
        default:
          note(InvalidArgumentError("unexpected packet type from network"));
          break;
      }
    }

    // One lock acquisition per sandbox group: under the kSharded plan concurrent
    // batches for different sessions never touch the same lock.
    for (const auto& [sandbox_id, views] : data_by_sandbox) {
      Sandbox* sandbox = sandbox_mgr_->Find(sandbox_id);
      if (sandbox == nullptr || !sandbox->session.established) {
        note(FailedPreconditionError("data record without established session"));
        continue;
      }
      SimLockGuard held = locks_.SandboxGuard(cpu, sandbox->lock);
      for (const RecordView& view : views) {
        note(IngestDataRecordLocked(cpu, *sandbox, view));
      }
    }
    return first_error;
  });
}

StatusOr<Bytes> EreborMonitor::ProxyFetch(Cpu& cpu, int* source_sandbox_out) {
  Bytes out;
  EmcCall call{};
  call.op = EmcOp::kChannelOp;
  const Status st = EmcDispatch(cpu, call, [&]() -> Status {
    for (auto& [id, sandbox] : sandbox_mgr_->mutable_sandboxes()) {
      if (!sandbox->outbound_wire.empty()) {
        SimLockGuard guard = locks_.SandboxGuard(cpu, sandbox->lock);
        out = std::move(sandbox->outbound_wire.front());
        sandbox->outbound_wire.pop_front();
        if (source_sandbox_out != nullptr) {
          *source_sandbox_out = id;
        }
        return OkStatus();
      }
    }
    return NotFoundError("no outbound packets");
  });
  if (!st.ok()) {
    return st;
  }
  return out;
}

Status EreborMonitor::DebugInstallClientData(Cpu& cpu, Sandbox& sandbox, const Bytes& data) {
  EmcCall call{};
  call.op = EmcOp::kChannelOp;
  call.sandbox_id = sandbox.id;
  return EmcDispatch(cpu, call, [&]() -> Status {
    // Same decrypt/copy cost as the real channel path.
    cpu.cycles().Charge(data.size() * cpu.costs().crypto_per_byte_x100 / 100);
    sandbox.input_plaintext.push_back(data);
    return sandbox_mgr_->Seal(cpu, sandbox);
  });
}

StatusOr<Bytes> EreborMonitor::DebugFetchOutput(Sandbox& sandbox) {
  if (sandbox.outbound_wire.empty()) {
    return NotFoundError("no output pending");
  }
  Bytes out = std::move(sandbox.outbound_wire.front());
  sandbox.outbound_wire.pop_front();
  return out;
}

}  // namespace erebor
