// Client<->monitor secure channel: wire format and session state (paper section 6.3).
//
// Handshake: ClientHello{client_pub, nonce, sandbox} -> ServerHello{monitor_pub, quote}
// where the quote's report_data binds the handshake transcript, so a verified quote
// proves the DH peer *is* the measured monitor inside the CVM. Data flows as AEAD
// records with strictly increasing sequence numbers; output records are padded to a
// fixed length to close the size side channel.
#ifndef EREBOR_SRC_MONITOR_CHANNEL_H_
#define EREBOR_SRC_MONITOR_CHANNEL_H_

#include <deque>

#include "src/crypto/aead.h"
#include "src/crypto/group.h"
#include "src/tdx/report.h"

namespace erebor {

namespace wire {
// Upper bound on any single wire packet / channel payload. Lengths on the wire (and
// in proxy/sandbox ioctl arguments) are attacker-controlled; every consumer must
// bound them against this before sizing a buffer.
inline constexpr uint64_t kMaxWireBytes = 16ull << 20;  // 16 MiB
}  // namespace wire

enum class PacketType : uint8_t {
  kClientHello = 1,
  kServerHello = 2,
  kDataRecord = 3,    // client -> sandbox input
  kResultRecord = 4,  // sandbox -> client output (padded)
  kFin = 5,
};

struct Packet {
  PacketType type = PacketType::kFin;
  int32_t sandbox_id = -1;

  // kClientHello
  U256 client_public;
  std::array<uint8_t, 32> nonce{};

  // kServerHello
  U256 monitor_public;
  TdQuote quote;

  // kDataRecord / kResultRecord
  SealedRecord record;

  Bytes Serialize() const;
  static StatusOr<Packet> Deserialize(const Bytes& wire);
};

// Computes the transcript hash binding both DH shares and the client nonce; the first
// 32 bytes of the quote's report_data must equal it.
Digest256 HandshakeTranscript(const U256& client_public, const U256& monitor_public,
                              const std::array<uint8_t, 32>& nonce);

// Channel session state (one per connected client/sandbox).
struct ChannelSession {
  bool established = false;
  SessionKeys keys;
  uint64_t next_recv_seq = 0;
  uint64_t next_send_seq = 0;
};

// Pads `plaintext` to the next multiple of pad_quantum (length prefix included so the
// receiver can strip it). pad_quantum must be > 8 and at most wire::kMaxWireBytes;
// anything else is an InvalidArgumentError (a zero quantum would divide by zero).
StatusOr<Bytes> PadOutput(const Bytes& plaintext, uint64_t pad_quantum);
StatusOr<Bytes> UnpadOutput(const Bytes& padded);

}  // namespace erebor

#endif  // EREBOR_SRC_MONITOR_CHANNEL_H_
