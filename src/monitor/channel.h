// Client<->monitor secure channel: wire format and session state (paper section 6.3).
//
// Handshake: ClientHello{client_pub, nonce, sandbox} -> ServerHello{monitor_pub, quote}
// where the quote's report_data binds the handshake transcript, so a verified quote
// proves the DH peer *is* the measured monitor inside the CVM. Data flows as AEAD
// records with strictly increasing sequence numbers; output records are padded to a
// fixed length to close the size side channel.
#ifndef EREBOR_SRC_MONITOR_CHANNEL_H_
#define EREBOR_SRC_MONITOR_CHANNEL_H_

#include <deque>
#include <map>

#include "src/crypto/aead.h"
#include "src/crypto/group.h"
#include "src/tdx/report.h"

namespace erebor {

namespace wire {
// Upper bound on any single wire packet / channel payload. Lengths on the wire (and
// in proxy/sandbox ioctl arguments) are attacker-controlled; every consumer must
// bound them against this before sizing a buffer.
inline constexpr uint64_t kMaxWireBytes = 16ull << 20;  // 16 MiB

// Fixed layout of a data/result record on the wire:
//   type(1) | sandbox_id LE32(4) | sequence LE64(8) | ct_len LE32(4) | ct | tag(32)
inline constexpr size_t kRecordHeaderBytes = 1 + 4 + 8 + 4;
inline constexpr size_t kRecordTagBytes = 32;
}  // namespace wire

enum class PacketType : uint8_t {
  kClientHello = 1,
  kServerHello = 2,
  kDataRecord = 3,    // client -> sandbox input
  kResultRecord = 4,  // sandbox -> client output (padded)
  kFin = 5,
};

struct Packet {
  PacketType type = PacketType::kFin;
  int32_t sandbox_id = -1;

  // kClientHello
  U256 client_public;
  std::array<uint8_t, 32> nonce{};

  // kServerHello
  U256 monitor_public;
  TdQuote quote;

  // kDataRecord / kResultRecord
  SealedRecord record;

  Bytes Serialize() const;
  static StatusOr<Packet> Deserialize(const Bytes& wire);
};

// Computes the transcript hash binding both DH shares and the client nonce; the first
// 32 bytes of the quote's report_data must equal it.
Digest256 HandshakeTranscript(const U256& client_public, const U256& monitor_public,
                              const std::array<uint8_t, 32>& nonce);

// Zero-copy record path. Data/result records are by far the hottest packets, so
// they get a dedicated pipeline that never round-trips the ciphertext through a
// Packet: SealRecordWire encrypts straight into the wire buffer, ParseRecordWire
// yields a borrowed view into the received buffer, and the AEAD open decrypts
// from that view into its destination. The bytes produced/consumed are identical
// to Packet::Serialize/Deserialize for the same record.

// Borrowed, non-owning view of a data/result record inside a wire buffer. Valid
// only while the underlying buffer is alive and unmodified.
struct RecordView {
  PacketType type = PacketType::kDataRecord;
  int32_t sandbox_id = -1;
  uint64_t sequence = 0;
  const uint8_t* ciphertext = nullptr;
  size_t ciphertext_len = 0;
  Digest256 tag{};

  // The AAD the record's tag must cover: exactly the rewritable header fields.
  RecordAad Aad() const { return RecordAad{static_cast<uint8_t>(type), sandbox_id}; }
};

// Builds a complete wire packet, sealing `len` plaintext bytes directly into it.
Bytes SealRecordWire(const AeadKeys& keys, PacketType type, int32_t sandbox_id,
                     uint64_t sequence, const uint8_t* plaintext, size_t len);
inline Bytes SealRecordWire(const AeadKeys& keys, PacketType type, int32_t sandbox_id,
                            uint64_t sequence, const Bytes& plaintext) {
  return SealRecordWire(keys, type, sandbox_id, sequence, plaintext.data(),
                        plaintext.size());
}

// Parses a kDataRecord/kResultRecord wire packet without copying the ciphertext.
// Bumps the same parse metrics as Packet::Deserialize. InvalidArgument on anything
// that is not a well-formed record packet.
StatusOr<RecordView> ParseRecordWire(const Bytes& wire);

// Authenticate-then-decrypt a viewed record into a fresh buffer, enforcing the
// expected sequence (kPermissionDenied on mismatch or bad tag).
StatusOr<Bytes> OpenRecordWire(const AeadKeys& keys, const RecordView& view,
                               uint64_t expected_sequence);

// A record that failed authentication. Deliberately NOT a ChannelSession method:
// an unauthenticated record proves nothing about who sent it (a forged header can
// name any sandbox), so the reject is accounted globally and never charged to the
// session the header points at — otherwise re-addressed garbage could strike out
// an innocent session.
void NoteChannelAuthReject();

// Channel session state (one per connected client/sandbox).
//
// Robustness against a lossy/adversarial transport (the untrusted host carries every
// packet) is built into the session, not bolted onto callers:
//  - The replay window: a record whose wire sequence is below next_recv_seq is a
//    duplicate — it is counted and absorbed (optionally triggering a retransmit of
//    the cached last result so a dropped response heals) but NEVER re-decrypted or
//    re-delivered, so replay cannot double-install client data.
//  - The reorder window: a record up to kReorderWindow ahead of next_recv_seq is
//    stashed and drained once the gap fills; anything further out is rejected.
//  - The handshake replay cache: an identical retransmitted ClientHello gets the
//    identical cached ServerHello back instead of re-keying a live session.
struct ChannelSession {
  static constexpr uint64_t kReorderWindow = 8;

  // Where an inbound data record lands relative to the receive window.
  enum class RecordAdmit : uint8_t {
    kInSequence,  // exactly next_recv_seq: decrypt now
    kDuplicate,   // below the window: absorbed, never re-decrypted
    kStashed,     // ahead within kReorderWindow: parked until the gap fills
    kRejected,    // beyond the reorder window
  };

  // Classifies (and accounts for) one inbound record: duplicate/reorder/reject
  // counters and their global metrics are bumped here, and a kStashed record is
  // parked in the reorder buffer. The caller only decrypts on kInSequence.
  RecordAdmit AdmitRecord(uint64_t seq, const SealedRecord& record);
  // Same, for the zero-copy path: the view's ciphertext is copied into the stash
  // only when the record is actually parked (kStashed).
  RecordAdmit AdmitRecord(const RecordView& view);

  // Pops the stashed record at next_recv_seq, if any (the drain loop after an
  // in-sequence accept).
  bool TakeDrainable(SealedRecord* out);

  // Advances the receive window past an accepted record and prunes every stashed
  // entry the window has passed. Without the prune, a record that was stashed and
  // then also arrived in sequence leaks its stale stash entry forever.
  void AdvanceRecv();

  // True when a ClientHello is a byte-identical retransmit of the hello that
  // established this session (answered from the cached ServerHello).
  bool IsHelloReplay(const U256& client_public,
                     const std::array<uint8_t, 32>& nonce) const;

  // Renegotiation policy: a fresh hello may re-key this session only while no
  // client data has been installed, or after the client said kFin. Otherwise a
  // replayed stale hello (valid format, old nonce) could tear down a live
  // session's keys, reorder state and cached results.
  bool RenegotiationAllowed() const {
    return !established || !data_installed || fin_seen;
  }

  // A cached response re-sent to heal client-observed loss ("channel.retries").
  void CountRetransmit();

  bool established = false;
  // Set once the first data record decrypts and installs; gates renegotiation.
  bool data_installed = false;
  // Set when the client's kFin arrives; re-opens renegotiation for this slot.
  bool fin_seen = false;
  SessionKeys keys;
  uint64_t next_recv_seq = 0;
  uint64_t next_send_seq = 0;

  // Reorder buffer: wire sequence -> sealed record awaiting the gap fill (bounded by
  // kReorderWindow entries).
  std::map<uint64_t, SealedRecord> reorder;

  // Handshake replay cache.
  U256 hello_client_public;
  std::array<uint8_t, 32> hello_nonce{};
  Bytes cached_server_hello;

  // Last result wire packet, retransmitted when the client signals loss by
  // re-sending an already-accepted data record.
  Bytes last_result_wire;

  // Degradation accounting (also mirrored into the global metrics registry).
  uint64_t duplicates = 0;
  uint64_t reorders = 0;
  uint64_t retransmits = 0;
  uint64_t rejects = 0;
};

// Pads `plaintext` to the next multiple of pad_quantum (length prefix included so the
// receiver can strip it). pad_quantum must be > 8 and at most wire::kMaxWireBytes;
// anything else is an InvalidArgumentError (a zero quantum would divide by zero).
StatusOr<Bytes> PadOutput(const Bytes& plaintext, uint64_t pad_quantum);
StatusOr<Bytes> UnpadOutput(const Bytes& padded);

}  // namespace erebor

#endif  // EREBOR_SRC_MONITOR_CHANNEL_H_
