#include "src/monitor/invariants.h"

#include <algorithm>

#include "src/common/metrics.h"
#include "src/monitor/gates.h"
#include "src/monitor/monitor.h"

namespace erebor {

void InvariantChecker::AddSecret(const Bytes& pattern) {
  if (!pattern.empty()) {
    secrets_.push_back(pattern);
  }
}

Status InvariantChecker::CheckAll() {
  ++checks_run_;
  MetricsRegistry::Global().Increment("invariants.checks");
  for (Status st : {CheckFrames(), CheckGates(), CheckSecrets(), CheckLocks()}) {
    if (!st.ok()) {
      ++violations_;
      MetricsRegistry::Global().Increment("invariants.violations");
      return st;
    }
  }
  return OkStatus();
}

Status InvariantChecker::CheckFrames() { return monitor_->AuditInvariants(); }

Status InvariantChecker::CheckGates() {
  if (!monitor_->stage1_done()) {
    return OkStatus();  // gates not installed yet: nothing to hold
  }
  Machine& machine = monitor_->machine();
  const EmcGates& gates = monitor_->gates();
  for (int i = 0; i < machine.num_cpus(); ++i) {
    const Cpu& cpu = machine.cpu(i);
    // At a safe point no CPU is mid-gate, so every #INT-gate save must be balanced by
    // its restore; a leftover entry means an exit path skipped PKRS restoration.
    if (gates.interrupt_depth(i) != 0) {
      return InternalError("cpu " + std::to_string(i) + " has " +
                           std::to_string(gates.interrupt_depth(i)) +
                           " unbalanced #INT-gate PKRS saves");
    }
    const auto pkrs = cpu.ReadMsr(msr::kIa32Pkrs);
    if (pkrs.ok() && *pkrs != KernelModePkrs()) {
      return InternalError("cpu " + std::to_string(i) +
                           " PKRS not restored to the kernel view (have 0x" +
                           std::to_string(*pkrs) + ")");
    }
    const auto scet = cpu.ReadMsr(msr::kIa32SCet);
    const uint64_t cet_required = msr::kCetIbtEn | msr::kCetShstkEn;
    if (scet.ok() && (*scet & cet_required) != cet_required) {
      return InternalError("cpu " + std::to_string(i) +
                           " S_CET lost IBT/shadow-stack enables");
    }
  }
  return OkStatus();
}

Status InvariantChecker::CheckLocks() {
  const LockAudit& audit = LockAudit::Global();
  if (audit.ordering_violations() != 0) {
    return InternalError(std::to_string(audit.ordering_violations()) +
                         " lock-ordering violations recorded");
  }
  if (audit.unheld_violations() != 0) {
    return InternalError(std::to_string(audit.unheld_violations()) +
                         " sandbox/frame mutations without the covering lock");
  }
  Machine& machine = monitor_->machine();
  for (int i = 0; i < machine.num_cpus(); ++i) {
    if (!audit.NothingHeld(i)) {
      return InternalError("cpu " + std::to_string(i) +
                           " still holds an EMC lock at a safe point");
    }
  }
  return OkStatus();
}

Status InvariantChecker::CheckSecrets() {
  if (secrets_.empty()) {
    return OkStatus();
  }
  PhysMemory& memory = monitor_->machine().memory();
  FrameTable& frames = monitor_->frame_table();
  for (FrameNum frame = 0; frame < frames.size(); ++frame) {
    if (frames.info(frame).type == FrameType::kSandboxConfined) {
      continue;  // the one place plaintext is allowed to live
    }
    const uint8_t* data = memory.FramePtrIfPresent(frame);
    if (data == nullptr) {
      continue;  // never materialized: trivially clean
    }
    for (const Bytes& secret : secrets_) {
      if (secret.size() > kPageSize) {
        continue;
      }
      const uint8_t* end = data + kPageSize;
      if (std::search(data, end, secret.begin(), secret.end()) != end) {
        return InternalError("plaintext client secret found in " +
                             FrameTypeName(frames.info(frame).type) + " frame " +
                             std::to_string(frame));
      }
    }
  }
  return OkStatus();
}

}  // namespace erebor
