#include "src/monitor/invariants.h"

#include <algorithm>
#include <set>

#include "src/common/metrics.h"
#include "src/monitor/gates.h"
#include "src/monitor/monitor.h"

namespace erebor {

void InvariantChecker::AddSecret(const Bytes& pattern) {
  if (!pattern.empty()) {
    secrets_.push_back(pattern);
  }
}

Status InvariantChecker::CheckAll() {
  ++checks_run_;
  MetricsRegistry::Global().Increment("invariants.checks");
  for (Status st :
       {CheckFrames(), CheckGates(), CheckSecrets(), CheckLocks(), CheckRings(),
        CheckQuarantine(), CheckDomains()}) {
    if (!st.ok()) {
      ++violations_;
      MetricsRegistry::Global().Increment("invariants.violations");
      return st;
    }
  }
  return OkStatus();
}

Status InvariantChecker::CheckFrames() { return monitor_->AuditInvariants(); }

Status InvariantChecker::CheckGates() {
  if (!monitor_->stage1_done()) {
    return OkStatus();  // gates not installed yet: nothing to hold
  }
  Machine& machine = monitor_->machine();
  const EmcGates& gates = monitor_->gates();
  for (int i = 0; i < machine.num_cpus(); ++i) {
    const Cpu& cpu = machine.cpu(i);
    // At a safe point no CPU is mid-gate, so every #INT-gate save must be balanced by
    // its restore; a leftover entry means an exit path skipped PKRS restoration.
    if (gates.interrupt_depth(i) != 0) {
      return InternalError("cpu " + std::to_string(i) + " has " +
                           std::to_string(gates.interrupt_depth(i)) +
                           " unbalanced #INT-gate PKRS saves");
    }
    // Backend register audit (PKS: PKRS == KernelModePkrs(); TME-MK: no CPU may
    // still hold the keyID-exempt monitor context).
    EREBOR_RETURN_IF_ERROR(monitor_->isolation().AuditCpu(cpu));
    const auto scet = cpu.ReadMsr(msr::kIa32SCet);
    const uint64_t cet_required = msr::kCetIbtEn | msr::kCetShstkEn;
    if (scet.ok() && (*scet & cet_required) != cet_required) {
      return InternalError("cpu " + std::to_string(i) +
                           " S_CET lost IBT/shadow-stack enables");
    }
  }
  return OkStatus();
}

Status InvariantChecker::CheckLocks() {
  const LockAudit& audit = LockAudit::Global();
  if (audit.ordering_violations() != 0) {
    return InternalError(std::to_string(audit.ordering_violations()) +
                         " lock-ordering violations recorded");
  }
  if (audit.unheld_violations() != 0) {
    return InternalError(std::to_string(audit.unheld_violations()) +
                         " sandbox/frame mutations without the covering lock");
  }
  Machine& machine = monitor_->machine();
  for (int i = 0; i < machine.num_cpus(); ++i) {
    if (!audit.NothingHeld(i)) {
      return InternalError("cpu " + std::to_string(i) +
                           " still holds an EMC lock at a safe point");
    }
  }
  return OkStatus();
}

Status InvariantChecker::CheckRings() {
  EmcRingTable& rings = monitor_->rings();
  for (int i = 0; i < rings.size(); ++i) {
    const RingState* rs = rings.state(i);
    if (rs == nullptr) {
      continue;
    }
    const std::string who = "ring " + std::to_string(i);
    // The published indexes are copies of the shadows; the monitor never reads
    // them back, so any divergence means a drain path skipped its publish (or
    // monitor state itself was corrupted — either way a violation).
    if (rs->ring.sq_head.load(std::memory_order_relaxed) != rs->shadow_sq_head) {
      return InternalError(who + ": published sq_head diverged from the shadow");
    }
    if (rs->ring.cq_tail.load(std::memory_order_relaxed) != rs->shadow_cq_tail) {
      return InternalError(who + ": published cq_tail diverged from the shadow");
    }
    // The monitor must never post more completions than the ring holds beyond
    // what it has seen consumed (cq_head is untrusted, so clamp-check only the
    // monitor-owned half: completions never exceed consumed submissions).
    const uint64_t completions = rs->shadow_cq_tail;
    const uint64_t consumed = rs->shadow_sq_head;
    if (completions > consumed) {
      return InternalError(who + ": more completions posted than SQEs consumed");
    }
    // Drain accounting balances: every applied or rejected descriptor consumed
    // at least one SQE (spans consume more).
    if (rs->applied + rs->rejected > consumed) {
      return InternalError(who + ": applied+rejected exceeds consumed SQEs");
    }
    // A ring at the strike limit must be poisoned — an unpoisoned ring past the
    // limit means a strike path forgot containment.
    if (rs->strikes >= EmcRingTable::kStrikeLimit && !rs->poisoned) {
      return InternalError(who + ": strike limit reached but ring not poisoned");
    }
  }
  return OkStatus();
}

Status InvariantChecker::CheckQuarantine() {
  EmcRingTable& rings = monitor_->rings();
  for (const auto& [id, sandbox] : monitor_->sandboxes().sandboxes()) {
    if (sandbox->state != SandboxState::kQuarantined) {
      continue;
    }
    const std::string who = "quarantined sandbox " + std::to_string(id);
    // The teardown scrub must have left nothing deliverable: a stashed reorder
    // record or a queued outbound wire here would be ciphertext under destroyed
    // keys at best, and a use-after-scrub at worst.
    if (!sandbox->session.reorder.empty()) {
      return InternalError(who + ": undelivered reorder-buffer records survive");
    }
    if (!sandbox->input_plaintext.empty()) {
      return InternalError(who + ": undelivered input plaintext survives");
    }
    if (!sandbox->outbound_wire.empty()) {
      return InternalError(who + ": undelivered outbound records survive");
    }
    if (!sandbox->confined_ranges.empty()) {
      return InternalError(who + ": confined frames were not released");
    }
    // No live ring slots: any ring still bound to the sandbox must be poisoned
    // (nothing staged there can ever be applied) and its pre-quarantine window
    // fully consumed — an unpoisoned binding would keep accepting doorbells
    // against released frames.
    for (int i = 0; i < rings.size(); ++i) {
      const RingState* rs = rings.state(i);
      if (rs == nullptr || rs->bound_sandbox != id) {
        continue;
      }
      if (!rs->poisoned) {
        return InternalError(who + ": ring " + std::to_string(i) +
                             " is still bound and not poisoned");
      }
    }
  }
  return OkStatus();
}

Status InvariantChecker::CheckDomains() {
  const IsolationBackend& iso = monitor_->isolation();
  uint64_t live = 0;
  std::set<uint32_t> tags;
  for (const auto& [id, sandbox] : monitor_->sandboxes().sandboxes()) {
    const std::string who = "sandbox " + std::to_string(id);
    if (sandbox->state == SandboxState::kInitializing ||
        sandbox->state == SandboxState::kSealed) {
      // Templates and unpromoted (domain-deferred) warm clones legitimately
      // hold no domain: a parked pool must not consume the backend's budget.
      if (sandbox->is_template || sandbox->domain_deferred) {
        if (sandbox->domain_tag != 0) {
          return InternalError(who + (sandbox->is_template
                                          ? " is a template but holds domain tag "
                                          : " is domain-deferred but holds tag ") +
                               std::to_string(sandbox->domain_tag));
        }
        continue;
      }
      ++live;
      if (sandbox->domain_tag == 0) {
        return InternalError(who + " is live without an isolation domain");
      }
      if (!tags.insert(sandbox->domain_tag).second) {
        return InternalError(who + " shares isolation domain tag " +
                             std::to_string(sandbox->domain_tag) +
                             " with another live sandbox");
      }
      if (iso.DomainTagOf(id) != sandbox->domain_tag) {
        return InternalError(who + " domain tag diverged from the backend's record");
      }
    } else if (sandbox->domain_tag != 0) {
      return InternalError(who + " was torn down but still holds domain tag " +
                           std::to_string(sandbox->domain_tag));
    }
  }
  if (live != iso.sandbox_domains_in_use()) {
    return InternalError("isolation-domain leak: " + std::to_string(live) +
                         " live sandboxes but " +
                         std::to_string(iso.sandbox_domains_in_use()) +
                         " domains in use at the backend");
  }
  if (live > iso.max_sandbox_domains()) {
    return InternalError("more live sandboxes than the backend's domain budget");
  }
  return OkStatus();
}

Status InvariantChecker::CheckSecrets() {
  if (secrets_.empty()) {
    return OkStatus();
  }
  PhysMemory& memory = monitor_->machine().memory();
  FrameTable& frames = monitor_->frame_table();
  for (FrameNum frame = 0; frame < frames.size(); ++frame) {
    if (frames.info(frame).type == FrameType::kSandboxConfined) {
      continue;  // the one place plaintext is allowed to live
    }
    const uint8_t* data = memory.FramePtrIfPresent(frame);
    if (data == nullptr) {
      continue;  // never materialized: trivially clean
    }
    for (const Bytes& secret : secrets_) {
      if (secret.size() > kPageSize) {
        continue;
      }
      const uint8_t* end = data + kPageSize;
      if (std::search(data, end, secret.begin(), secret.end()) != end) {
        return InternalError("plaintext client secret found in " +
                             FrameTypeName(frames.info(frame).type) + " frame " +
                             std::to_string(frame));
      }
    }
  }
  return OkStatus();
}

}  // namespace erebor
