// Attestation and secure-channel termination (paper sections 6.3 and 9):
// the gated tdcall EMC, quote generation, and the ClientHello/DataRecord/Fin
// packet handlers. Packet plumbing (ProxyDeliver/ProxyFetch) is in
// emc_dispatch.cc; record-window accounting lives on ChannelSession.
#include <cstring>

#include "src/common/faultpoint.h"
#include "src/common/log.h"
#include "src/monitor/monitor.h"

namespace erebor {

Status EreborMonitor::EmcTdcall(Cpu& cpu, uint64_t leaf, uint64_t* args, size_t nargs) {
  EmcCall call{};
  call.op = EmcOp::kTdcall;
  call.args.leaf = leaf;
  call.args.nargs = nargs;
  if (leaf != tdcall_leaf::kTdReport) {
    // Only the (refused) report path pays the Table-4 tdreport cost; ordinary
    // GHCI leaves are a plain gated round trip.
    call.has_unit_override = true;
    call.unit_override = 64;
  }
  // The descriptor's validator refuses kTdReport/kRtmrExtend (attestation is
  // exclusively the monitor's, claim C5) and malformed map-gpa argument counts.
  return EmcDispatch(cpu, call, [&]() -> Status {
    if (leaf == tdcall_leaf::kMapGpa) {
      EREBOR_RETURN_IF_ERROR(policy_->CheckSharedConversion(
          FrameOf(args[0]), args[1], args[2] != 0));
    }
    return cpu.Tdcall(leaf, args, nargs);
  });
}

StatusOr<TdQuote> EreborMonitor::GenerateQuote(Cpu& cpu,
                                               const std::array<uint8_t, 64>& report_data) {
  EREBOR_RETURN_IF_ERROR(
      machine_->memory().Write(scratch_pa_, report_data.data(), report_data.size()));
  const bool was_in_monitor = cpu.in_monitor();
  cpu.SetMonitorContext(true);
  uint64_t args[2] = {scratch_pa_, scratch_pa_ + 512};
  const Status st = cpu.Tdcall(tdcall_leaf::kTdReport, args, 2);
  cpu.SetMonitorContext(was_in_monitor);
  EREBOR_RETURN_IF_ERROR(st);
  EREBOR_ASSIGN_OR_RETURN(const TdReport report, tdx_->TakeLastReport());
  return tdx_->SignQuote(report);
}

Status EreborMonitor::HandleHello(Cpu& cpu, const Packet& packet) {
  Sandbox* sandbox = sandbox_mgr_->Find(packet.sandbox_id);
  if (sandbox == nullptr) {
    return NotFoundError("hello for unknown sandbox");
  }
  // The dispatch entered with no target (the sandbox id is inside the packet),
  // so the handler serializes on the sandbox itself.
  SimLockGuard held = locks_.SandboxGuard(cpu, sandbox->lock);
  ChannelSession& session = sandbox->session;
  if (session.IsHelloReplay(packet.client_public, packet.nonce)) {
    // Retransmitted ClientHello: the ServerHello was likely lost in flight, so answer
    // with the identical cached response. Re-running the handshake here would let a
    // replayed hello re-key (and thus reset the sequence space of) a live session.
    session.CountRetransmit();
    Tracer::Global().Record(TraceEvent::kChannelRetry, cpu.index(), cpu.cycles().now(),
                            sandbox->id);
    sandbox->outbound_wire.push_back(session.cached_server_hello);
    NoteFaultRecovered();
    return OkStatus();
  }
  if (!session.RenegotiationAllowed()) {
    // A non-replay hello against a live session that already installed client
    // data is a stale-hello replay (or an active attack): re-keying here would
    // destroy the session's keys, reorder state and cached results, so a
    // recorded old hello could DoS the victim at will. The client signals
    // intentional renegotiation by sending kFin first.
    MetricsRegistry::Global().Increment("channel.hostile_hellos");
    return PermissionDeniedError("hello renegotiation refused on a live session");
  }
  const GroupParams& group = GroupParams::Default();
  const KeyPair ephemeral = GenerateKeyPair(group, rng_);
  const Digest256 transcript =
      HandshakeTranscript(packet.client_public, ephemeral.public_key, packet.nonce);

  std::array<uint8_t, 64> report_data{};
  std::memcpy(report_data.data(), transcript.data(), transcript.size());
  EREBOR_ASSIGN_OR_RETURN(const TdQuote quote, GenerateQuote(cpu, report_data));

  const Bytes shared = DhSharedSecret(group, ephemeral.private_key, packet.client_public);
  // A fresh hello (new nonce/share) is a renegotiation: the whole session state —
  // reorder buffer, cached results, counters — dies with the old keys.
  sandbox->session = ChannelSession{};
  sandbox->session.keys = DeriveSessionKeys(shared, transcript);
  sandbox->session.established = true;
  sandbox->session.hello_client_public = packet.client_public;
  sandbox->session.hello_nonce = packet.nonce;

  Packet response;
  response.type = PacketType::kServerHello;
  response.sandbox_id = sandbox->id;
  response.monitor_public = ephemeral.public_key;
  response.quote = quote;
  sandbox->session.cached_server_hello = response.Serialize();
  sandbox->outbound_wire.push_back(sandbox->session.cached_server_hello);
  return OkStatus();
}

Status EreborMonitor::HandleDataRecord(Cpu& cpu, const RecordView& view) {
  Sandbox* sandbox = sandbox_mgr_->Find(view.sandbox_id);
  if (sandbox == nullptr || !sandbox->session.established) {
    return FailedPreconditionError("data record without established session");
  }
  SimLockGuard held = locks_.SandboxGuard(cpu, sandbox->lock);
  return IngestDataRecordLocked(cpu, *sandbox, view);
}

Status EreborMonitor::IngestDataRecordLocked(Cpu& cpu, Sandbox& sandbox,
                                             const RecordView& view) {
  ChannelSession& session = sandbox.session;
  switch (session.AdmitRecord(view)) {
    case ChannelSession::RecordAdmit::kDuplicate:
      // An honest client only re-sends when our result never arrived, so
      // retransmit the cached last result to heal that loss.
      Tracer::Global().Record(TraceEvent::kChannelRetry, cpu.index(), cpu.cycles().now(),
                              sandbox.id, view.sequence);
      if (!session.last_result_wire.empty()) {
        sandbox.outbound_wire.push_back(session.last_result_wire);
        session.CountRetransmit();
        NoteFaultRecovered();
      }
      return OkStatus();
    case ChannelSession::RecordAdmit::kRejected:
      return InvalidArgumentError("data record beyond the reorder window");
    case ChannelSession::RecordAdmit::kStashed:
      return OkStatus();
    case ChannelSession::RecordAdmit::kInSequence:
      break;
  }

  // Authenticate-then-decrypt straight from the wire buffer into the plaintext
  // destination (no intermediate SealedRecord/Packet copies).
  auto accept = [&](const uint8_t* ciphertext, size_t len, const Digest256& tag) -> Status {
    const RecordAad aad{static_cast<uint8_t>(PacketType::kDataRecord), sandbox.id};
    Bytes plaintext(len);
    EREBOR_RETURN_IF_ERROR(AeadOpenInto(session.keys.client_to_server, aad,
                                        session.next_recv_seq, ciphertext, len, tag,
                                        plaintext.data()));
    session.AdvanceRecv();
    session.data_installed = true;
    cpu.cycles().Charge(plaintext.size() * cpu.costs().crypto_per_byte_x100 / 100);
    Tracer::Global().Record(TraceEvent::kChannelDecrypt, cpu.index(), cpu.cycles().now(),
                            sandbox.id, plaintext.size());
    sandbox.input_plaintext.push_back(std::move(plaintext));
    // First client data seals the sandbox (paper section 6.2).
    return sandbox_mgr_->Seal(cpu, sandbox);
  };

  const Status st = accept(view.ciphertext, view.ciphertext_len, view.tag);
  if (!st.ok()) {
    // Authentication failure proves nothing about the sender — a forged header
    // can name any sandbox — so the reject is counted globally, never against
    // this session's strike counters, and the sequence does not advance (an
    // honest client's retransmission of the same record is accepted cleanly).
    NoteChannelAuthReject();
    return st;
  }
  // Drain any stashed reordered records that are now in sequence. A stashed record
  // that fails to open was corrupt on the wire: drop it (the client retransmits).
  SealedRecord stashed;
  while (session.TakeDrainable(&stashed)) {
    if (!accept(stashed.ciphertext.data(), stashed.ciphertext.size(), stashed.tag).ok()) {
      NoteChannelAuthReject();
      break;
    }
    NoteFaultRecovered();
  }
  return OkStatus();
}

Status EreborMonitor::HandleFin(Cpu& cpu, const Packet& packet) {
  Sandbox* sandbox = sandbox_mgr_->Find(packet.sandbox_id);
  if (sandbox == nullptr) {
    return NotFoundError("fin for unknown sandbox");
  }
  SimLockGuard held = locks_.SandboxGuard(cpu, sandbox->lock);
  // An authenticated teardown intent: renegotiation on this slot is legitimate
  // again (the stale-hello guard in HandleHello keys off this).
  sandbox->session.fin_seen = true;
  return sandbox_mgr_->Teardown(cpu, *sandbox);
}

}  // namespace erebor
