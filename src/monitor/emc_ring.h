// Monitor-side MMU-ring state (the trusted half of src/kernel/mmu_ring.h).
//
// The monitor owns one RingState per vCPU: the shared EmcRing pair itself plus
// private shadow copies of the indexes it controls. The kernel-visible sq_head
// and cq_tail are *published copies* of the shadows — the monitor never reads
// its own progress back out of shared memory, so a kernel that scribbles over
// the published fields only corrupts its own view. Hostile-shaped submissions
// (overflowed windows, forged sandbox ids, span overruns, overlapping targets)
// are strike-counted; at kStrikeLimit the ring is poisoned (every further
// doorbell refused) and the bound sandbox, if any, is quarantined.
//
// The drain itself — EreborMonitor::EmcRingDoorbell — lives in emc_ring.cc and
// runs entirely inside the table-driven dispatch core (one EmcOp::kRingDoorbell
// gate crossing; per-descriptor Table-4 charging, tracing, and validation).
#ifndef EREBOR_SRC_MONITOR_EMC_RING_H_
#define EREBOR_SRC_MONITOR_EMC_RING_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/status.h"
#include "src/kernel/mmu_ring.h"

namespace erebor {

// Monitor-private per-vCPU ring state. Everything outside `ring` is
// monitor-owned and never exposed to the kernel.
struct RingState {
  EmcRing ring;

  // Monitor-owned progress; published to ring.sq_head / ring.cq_tail after
  // each drain.
  uint32_t shadow_sq_head = 0;
  uint32_t shadow_cq_tail = 0;

  // Lock-plan binding: descriptors on this ring may only name this sandbox
  // (-1 = the kernel's own ring, no sandbox lock). Under the kSharded plan a
  // drain takes this sandbox's lock, so concurrent per-sandbox rings on
  // different vCPUs never serialize against each other.
  int32_t bound_sandbox = -1;

  // Hostile-submission accounting.
  uint32_t strikes = 0;
  bool poisoned = false;

  // Drain statistics (audited by the ring invariant family).
  uint64_t doorbells = 0;
  uint64_t applied = 0;
  uint64_t rejected = 0;
};

// The per-vCPU ring table. Disabled (empty) by default; EnableMmuRings sizes
// it to the machine. Rings are identified by vCPU index.
class EmcRingTable {
 public:
  // Strikes before a ring is poisoned; matches SandboxSpec::max_fault_strikes.
  static constexpr uint32_t kStrikeLimit = 8;

  void Enable(int num_cpus) {
    states_.clear();
    for (int i = 0; i < num_cpus; ++i) {
      states_.push_back(std::make_unique<RingState>());
    }
  }
  void Disable() { states_.clear(); }
  bool enabled() const { return !states_.empty(); }
  int size() const { return static_cast<int>(states_.size()); }

  RingState* state(int cpu) {
    if (cpu < 0 || cpu >= size()) {
      return nullptr;
    }
    return states_[static_cast<size_t>(cpu)].get();
  }
  const RingState* state(int cpu) const {
    if (cpu < 0 || cpu >= size()) {
      return nullptr;
    }
    return states_[static_cast<size_t>(cpu)].get();
  }
  EmcRing* ring(int cpu) {
    RingState* rs = state(cpu);
    return rs == nullptr ? nullptr : &rs->ring;
  }

  // Binds a vCPU's ring to a sandbox id for lock planning and forged-id
  // rejection. -1 restores the kernel binding.
  Status BindSandbox(int cpu, int32_t sandbox_id) {
    RingState* rs = state(cpu);
    if (rs == nullptr) {
      return FailedPreconditionError("MMU rings are not enabled");
    }
    rs->bound_sandbox = sandbox_id;
    return OkStatus();
  }

 private:
  std::vector<std::unique_ptr<RingState>> states_;
};

}  // namespace erebor

#endif  // EREBOR_SRC_MONITOR_EMC_RING_H_
