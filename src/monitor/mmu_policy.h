// MMU virtualization policy engine (paper section 5.2 and 6.1).
//
// Every PTE the deprivileged kernel asks the monitor to write is validated — and where
// the paper's design *rewrites* rather than refuses (forcing protection tags onto
// monitor/PTP/kernel-text frames, stripping W from kernel text), the policy returns the
// adjusted value. Confined sandbox frames are simply unmappable by the kernel (the
// monitor maps them itself through a trusted path that updates map counts). The tag
// mechanics — which PTE bits carry a tag, whether the rewrite tags the mapping or binds
// the frame at the controller — belong to the isolation backend.
#ifndef EREBOR_SRC_MONITOR_MMU_POLICY_H_
#define EREBOR_SRC_MONITOR_MMU_POLICY_H_

#include "src/hw/paging.h"
#include "src/kernel/layout.h"
#include "src/monitor/frame_table.h"
#include "src/monitor/isolation.h"

namespace erebor {

struct PolicyDecision {
  bool allowed = false;
  Pte adjusted_value = 0;  // value to actually write when allowed
  // Huge-page request that must be force-split into 4 KiB mappings (paper section 7
  // future work): the monitor materializes a page table covering the same range.
  bool needs_split = false;
  std::string denial_reason;
};

class MmuPolicy {
 public:
  MmuPolicy(FrameTable* frames, IsolationBackend* isolation)
      : frames_(frames), isolation_(isolation) {}

  // Installed by the sandbox manager: approves user mappings of common-region frames
  // (root of the requesting address space, target frame, writability).
  using CommonMappingValidator = std::function<Status(Paddr, FrameNum, bool)>;
  void SetCommonValidator(CommonMappingValidator validator) {
    common_validator_ = std::move(validator);
  }

  // Installed by the monitor: machine-wide software-TLB shootdown for a rewritten
  // leaf entry (RetrofitTag changes a live supervisor mapping's tag/W in place, so
  // cached walks of the direct map must be dropped).
  using TlbShootdownFn = std::function<void(Paddr)>;
  void SetTlbShootdown(TlbShootdownFn shootdown) { tlb_shootdown_ = std::move(shootdown); }

  // Validates a kernel-requested PTE store at `entry_pa` with `value`. Non-const:
  // allowed intermediate writes link the child PTP's paging level.
  PolicyDecision CheckPteWrite(Paddr entry_pa, Pte value);

  // Mirrors the PTP-level linking for monitor-trusted PTE writes (which bypass the
  // policy checks but must keep the hierarchy metadata coherent).
  void NoteTrustedLink(Paddr entry_pa, Pte value);

  // Validates a kernel-requested CR write. CR0.WP and the CR4 protection bits are
  // load-bearing and may never be cleared; CR3 must name a registered root PTP.
  Status CheckCrWrite(int reg, uint64_t value, uint64_t current_value) const;

  // Validates a kernel-requested MSR write. Monitor-owned MSRs (per backend: PKRS,
  // CET, shadow stack pointer, user-interrupt table) are refused.
  Status CheckMsrWrite(uint32_t index) const;

  // Validates a MapGPA shared conversion: only the shared-IO window may be shared.
  Status CheckSharedConversion(FrameNum first, uint64_t count, bool to_shared) const;

  // Accounting hook: called after an allowed leaf write so single-mapping counts and
  // the supervisor reverse map stay accurate. old_value is the previous entry
  // contents; entry_pa is where the PTE lives.
  void NoteLeafWrite(Pte old_value, Pte new_value, Paddr entry_pa = 0);

  // Retrofits a protection class (and optionally strips W) onto a frame — binds the
  // frame at the backend and rewrites any pre-existing supervisor mapping, closing
  // the window where a frame is re-typed after its direct-map entry was created
  // with the default tag. `cpu` may be null (no per-op cost accounting).
  Status RetrofitTag(Cpu* cpu, PhysMemory& memory, FrameNum frame, ProtClass cls,
                     bool strip_write);

  IsolationBackend& isolation() const { return *isolation_; }

 private:
  FrameTable* frames_;
  IsolationBackend* isolation_;
  CommonMappingValidator common_validator_;
  TlbShootdownFn tlb_shootdown_;
};

}  // namespace erebor

#endif  // EREBOR_SRC_MONITOR_MMU_POLICY_H_
