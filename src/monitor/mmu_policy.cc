#include "src/monitor/mmu_policy.h"

#include "src/hw/cpu.h"

namespace erebor {

void MmuPolicy::NoteTrustedLink(Paddr entry_pa, Pte value) {
  if (!pte::Present(value)) {
    return;
  }
  const FrameNum ptp_frame = FrameOf(entry_pa);
  if (ptp_frame >= frames_->size() ||
      frames_->info(ptp_frame).type != FrameType::kPtp) {
    return;
  }
  const uint8_t level = frames_->info(ptp_frame).ptp_level;
  if (level < 2) {
    return;  // leaf write: nothing to link
  }
  FrameInfo& child = frames_->info(pte::Frame(value));
  if (child.type == FrameType::kPtp && child.ptp_level == 0) {
    child.ptp_level = level - 1;
    child.ptp_root = frames_->info(ptp_frame).ptp_root;
  }
}

PolicyDecision MmuPolicy::CheckPteWrite(Paddr entry_pa, Pte value) {
  PolicyDecision decision;
  const FrameNum ptp_frame = FrameOf(entry_pa);
  if (ptp_frame >= frames_->size()) {
    decision.denial_reason = "PTE store outside physical memory";
    return decision;
  }
  // The store must target a registered page-table page: the kernel cannot conjure page
  // tables in arbitrary memory.
  if (frames_->info(ptp_frame).type != FrameType::kPtp) {
    decision.denial_reason = "PTE store into non-PTP frame (" +
                             FrameTypeName(frames_->info(ptp_frame).type) + ")";
    return decision;
  }

  if (!pte::Present(value)) {
    decision.allowed = true;
    decision.adjusted_value = value;
    return decision;
  }

  // Kernel-supplied entries may not carry protection tags (PKS keys or TME-MK
  // keyIDs): tag assignment is the monitor's prerogative.
  if (isolation_->TagOf(value) != 0) {
    decision.denial_reason = "kernel attempted to set a protection key";
    return decision;
  }
  // Huge pages are force-split (paper section 7 future work): a PS-bit leaf in a
  // level-2 table becomes 512 monitor-installed 4 KiB mappings so per-page protection
  // keys stay expressible. Other levels (1 GiB pages) stay refused.
  if ((value & pte::kPageSize) != 0) {
    if (frames_->info(ptp_frame).ptp_level == 2) {
      decision.needs_split = true;
      decision.adjusted_value = value;
      return decision;
    }
    decision.denial_reason = "only 2 MiB huge pages can be force-split";
    return decision;
  }

  const FrameNum target = pte::Frame(value);
  if (target >= frames_->size()) {
    decision.denial_reason = "mapping beyond physical memory";
    return decision;
  }
  FrameInfo& target_info = frames_->info(target);
  const uint8_t table_level = frames_->info(ptp_frame).ptp_level;

  // An entry in a level>=2 table that points at a registered PTP is an *intermediate*
  // entry (it links the hierarchy); an entry in a level-1 table is a leaf. A leaf in a
  // high-level table would be a huge page, already refused above.
  if (table_level != 1) {
    if (target_info.type != FrameType::kPtp) {
      decision.denial_reason = "intermediate entry must point at a registered PTP";
      return decision;
    }
    if (target_info.ptp_level == 0) {
      target_info.ptp_level = table_level - 1;  // link: fix the child's level
      target_info.ptp_root = frames_->info(ptp_frame).ptp_root;
    } else if (target_info.ptp_level != table_level - 1) {
      decision.denial_reason = "PTP linked at inconsistent paging level";
      return decision;
    }
    decision.allowed = true;
    decision.adjusted_value = value;
    return decision;
  }

  // Leaf entry checks.
  const FrameInfo& info = target_info;
  Pte adjusted = value;
  const bool is_user = pte::User(value);

  switch (info.type) {
    case FrameType::kSandboxConfined:
      // Single-mapping policy: the kernel may never map confined frames; only the
      // monitor's trusted path does, exactly once.
      decision.denial_reason = "confined sandbox frame is unmappable by the kernel";
      return decision;
    case FrameType::kSandboxTemplate:
      // Template frames are shared into clones only by the monitor's trusted
      // clone path; a kernel-forged mapping could hand one out writable.
      decision.denial_reason = "template sandbox frame is unmappable by the kernel";
      return decision;
    case FrameType::kShadowStack:
      decision.denial_reason = "shadow-stack frames are monitor-managed";
      return decision;
    case FrameType::kMonitor:
      // The monitor's own mapping in the direct map is permitted but always denies
      // kernel access (PKS: the monitor key vs the kernel's PKRS; TME-MK: the
      // frame's keyID binding vs the untagged mapping).
      adjusted = isolation_->RetagKernelLeaf(adjusted, ProtClass::kMonitor);
      if (is_user) {
        decision.denial_reason = "monitor frames may not be mapped user-accessible";
        return decision;
      }
      break;
    case FrameType::kPtp:
      // Page tables stay readable (the walker needs them) but never writable by the
      // kernel: the PTP class is write-disabled through foreign views.
      adjusted = isolation_->RetagKernelLeaf(adjusted, ProtClass::kPtp);
      if (is_user) {
        decision.denial_reason = "PTP frames may not be mapped user-accessible";
        return decision;
      }
      break;
    case FrameType::kKernelText:
      // W^X: kernel code is never writable, through any mapping.
      adjusted &= ~pte::kWritable;
      adjusted = isolation_->RetagKernelLeaf(adjusted, ProtClass::kKernelText);
      break;
    case FrameType::kSandboxCommon:
      // User mappings of common frames are legitimate only as demand-faults of a
      // region the sandbox manager attached to that address space; writability is
      // refused once the sandbox is sealed.
      if (is_user) {
        if (!common_validator_) {
          decision.denial_reason = "no common-region validator installed";
          return decision;
        }
        const Status st = common_validator_(frames_->info(ptp_frame).ptp_root, target,
                                            pte::Writable(value));
        if (!st.ok()) {
          decision.denial_reason = std::string(st.message());
          return decision;
        }
      }
      break;
    case FrameType::kFirmware:
    case FrameType::kSharedIo:
    case FrameType::kNormal:
      break;
  }

  // Kernel W^X: a supervisor mapping may not be simultaneously writable and
  // executable.
  if (!is_user && pte::Writable(adjusted) && !pte::NoExecute(adjusted)) {
    decision.denial_reason = "W^X violation: writable+executable supervisor mapping";
    return decision;
  }

  decision.allowed = true;
  decision.adjusted_value = adjusted;
  return decision;
}

Status MmuPolicy::CheckCrWrite(int reg, uint64_t value, uint64_t current_value) const {
  switch (reg) {
    case 0:
      if ((value & cr::kCr0Wp) == 0) {
        return PermissionDeniedError("CR0.WP may not be cleared");
      }
      return OkStatus();
    case 3: {
      const FrameNum root = FrameOf(value);
      if (root >= frames_->size() || frames_->info(root).type != FrameType::kPtp) {
        return PermissionDeniedError("CR3 must point at a registered page-table root");
      }
      return OkStatus();
    }
    case 4: {
      const uint64_t required = isolation_->PinnedCr4();
      if ((current_value & required) != 0 && (value & required) != required) {
        return PermissionDeniedError("CR4 protection bits (SMEP/SMAP/PKS/CET) are pinned");
      }
      return OkStatus();
    }
    default:
      return InvalidArgumentError("bad control register");
  }
}

Status MmuPolicy::CheckMsrWrite(uint32_t index) const {
  return isolation_->CheckMsrWrite(index);
}

Status MmuPolicy::CheckSharedConversion(FrameNum first, uint64_t count,
                                        bool to_shared) const {
  if (!to_shared) {
    return OkStatus();  // converting back to private is always safe
  }
  for (uint64_t i = 0; i < count; ++i) {
    if (first + i >= frames_->size() ||
        frames_->info(first + i).type != FrameType::kSharedIo) {
      return PermissionDeniedError(
          "only the shared-IO window may be converted to shared memory");
    }
  }
  return OkStatus();
}

void MmuPolicy::NoteLeafWrite(Pte old_value, Pte new_value, Paddr entry_pa) {
  if (pte::Present(old_value)) {
    FrameInfo& info = frames_->info(pte::Frame(old_value));
    if (info.map_count > 0) {
      --info.map_count;
    }
    if (info.supervisor_leaf_pa == entry_pa) {
      info.supervisor_leaf_pa = 0;
    }
  }
  if (pte::Present(new_value)) {
    FrameInfo& info = frames_->info(pte::Frame(new_value));
    ++info.map_count;
    // Record the reverse map only for true leaf entries (stores into a level-1
    // table): intermediate links carry no protection-key semantics.
    const FrameNum table = FrameOf(entry_pa);
    const bool is_leaf = entry_pa != 0 && table < frames_->size() &&
                         frames_->info(table).type == FrameType::kPtp &&
                         frames_->info(table).ptp_level == 1;
    if (is_leaf && !pte::User(new_value)) {
      info.supervisor_leaf_pa = entry_pa;
    }
  }
}

Status MmuPolicy::RetrofitTag(Cpu* cpu, PhysMemory& memory, FrameNum frame,
                              ProtClass cls, bool strip_write) {
  // Bind the frame at the backend's controller first (no-op under PKS): from here
  // on, accesses through any untagged view are refused by the binding even before
  // the PTE rewrite below lands.
  isolation_->BindClass(cpu, frame, cls);
  FrameInfo& info = frames_->info(frame);
  if (info.supervisor_leaf_pa == 0) {
    return OkStatus();  // no pre-existing supervisor mapping
  }
  const Pte current = memory.Read64(info.supervisor_leaf_pa);
  if (!pte::Present(current) || pte::Frame(current) != frame) {
    info.supervisor_leaf_pa = 0;  // stale record
    return OkStatus();
  }
  Pte updated = isolation_->RetagKernelLeaf(current, cls);
  if (strip_write) {
    updated &= ~pte::kWritable;
  }
  memory.Write64(info.supervisor_leaf_pa, updated);
  // The direct-map leaf just changed tag/W under live translations: without this
  // shootdown the kernel could keep writing the re-typed frame through a cached walk.
  if (updated != current && tlb_shootdown_) {
    tlb_shootdown_(info.supervisor_leaf_pa);
  }
  return OkStatus();
}

}  // namespace erebor
