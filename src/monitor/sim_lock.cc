#include "src/monitor/sim_lock.h"

#include <algorithm>

#include "src/common/faultpoint.h"
#include "src/common/trace.h"
#include "src/hw/cpu.h"

namespace erebor {

void SimLock::Acquire(Cpu& cpu, bool simulate_contention) {
  if (FaultInjector::Armed() &&
      FaultInjector::Global().Fire("lock.acquire", FaultAction::kPreempt)) {
    // Host preemption on the lock-boundary crossing: the vCPU eats one external
    // interrupt delivery before it gets the lock. Pure cycle cost — the lock
    // state itself is monitor memory the host cannot touch.
    cpu.cycles().Charge(cpu.costs().interrupt_delivery);
  }
  LockAudit::Global().NoteAcquire(cpu.index(), this);
  if (simulate_contention && cpu.cycles().now() < free_at_) {
    const Cycles wait = free_at_ - cpu.cycles().now();
    cpu.cycles().Charge(wait);
    ++contended_;
    contention_cycles_ += wait;
    Tracer::Global().Record(TraceEvent::kLockContend, cpu.index(),
                            cpu.cycles().now(), -1, wait);
  }
  ++acquisitions_;
  held_ = true;
  holder_ = cpu.index();
}

void SimLock::Release(Cpu& cpu, bool simulate_contention) {
  if (simulate_contention) {
    free_at_ = std::max(free_at_, cpu.cycles().now());
  }
  held_ = false;
  holder_ = -1;
  LockAudit::Global().NoteRelease(cpu.index(), this);
  if (FaultInjector::Armed() &&
      FaultInjector::Global().Fire("lock.release", FaultAction::kPreempt)) {
    cpu.cycles().Charge(cpu.costs().interrupt_delivery);
  }
}

LockAudit& LockAudit::Global() {
  static LockAudit* audit = new LockAudit();
  return *audit;
}

void LockAudit::Reset() {
  held_.clear();
  ordering_violations_ = 0;
  unheld_violations_ = 0;
}

std::vector<LockAudit::Held>& LockAudit::StackFor(int cpu) {
  if (static_cast<size_t>(cpu) >= held_.size()) {
    held_.resize(static_cast<size_t>(cpu) + 1);
  }
  return held_[static_cast<size_t>(cpu)];
}

void LockAudit::NoteAcquire(int cpu, const SimLock* lock) {
  std::vector<Held>& stack = StackFor(cpu);
  if (!stack.empty()) {
    const Held& top = stack.back();
    // Ascending ranks; within a rank, ascending sub-ids. Re-acquiring a held
    // lock (same rank+sub) is also an ordering violation: SimLock is not
    // recursive, so a nested acquire means a body bypassed its guard helper.
    if (top.rank > lock->rank() ||
        (top.rank == lock->rank() && top.sub >= lock->sub())) {
      ++ordering_violations_;
    }
  }
  if (lock->held()) {
    ++ordering_violations_;  // double acquire without an intervening release
  }
  stack.push_back(Held{lock, lock->rank(), lock->sub()});
}

void LockAudit::NoteRelease(int cpu, const SimLock* lock) {
  std::vector<Held>& stack = StackFor(cpu);
  // Releases come in reverse acquisition order; tolerate (but count) a release
  // of something this vCPU never acquired.
  const auto it = std::find_if(stack.rbegin(), stack.rend(),
                               [lock](const Held& h) { return h.lock == lock; });
  if (it == stack.rend()) {
    ++ordering_violations_;
    return;
  }
  if (it != stack.rbegin()) {
    ++ordering_violations_;  // out-of-order (non-LIFO) release
  }
  stack.erase(std::next(it).base());
}

bool LockAudit::Holds(int cpu, int rank, int sub) const {
  if (static_cast<size_t>(cpu) >= held_.size()) {
    return false;
  }
  for (const Held& h : held_[static_cast<size_t>(cpu)]) {
    if (h.rank == kRankGlobal || (h.rank == rank && h.sub == sub)) {
      return true;
    }
  }
  return false;
}

void LockAudit::ExpectSandboxHeld(int cpu, int sandbox_id) {
  if (!Holds(cpu, kRankSandbox, sandbox_id)) {
    ++unheld_violations_;
  }
}

void LockAudit::ExpectFrameShardHeld(int cpu, int shard) {
  if (!Holds(cpu, kRankFrameShard + shard, shard)) {
    ++unheld_violations_;
  }
}

bool LockAudit::NothingHeld(int cpu) const {
  return static_cast<size_t>(cpu) >= held_.size() ||
         held_[static_cast<size_t>(cpu)].empty();
}

EmcLockTable::EmcLockTable()
    : global_("emc.global", kRankGlobal),
      monitor_state_("monitor.state", kRankMonitorState) {
  for (int i = 0; i < kFrameShards; ++i) {
    shards_[static_cast<size_t>(i)] =
        SimLock("frames.shard" + std::to_string(i), kRankFrameShard + i, i);
  }
}

}  // namespace erebor
