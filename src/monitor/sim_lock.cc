#include "src/monitor/sim_lock.h"

#include <algorithm>
#include <chrono>

#include "src/common/exec.h"
#include "src/common/faultpoint.h"
#include "src/common/trace.h"
#include "src/hw/cpu.h"

namespace erebor {

void SimLock::Acquire(Cpu& cpu, bool simulate_contention) {
  if (FaultInjector::Armed() &&
      FaultInjector::Global().Fire("lock.acquire", FaultAction::kPreempt)) {
    // Host preemption on the lock-boundary crossing: the vCPU eats one external
    // interrupt delivery before it gets the lock. Pure cycle cost — the lock
    // state itself is monitor memory the host cannot touch.
    cpu.cycles().Charge(cpu.costs().interrupt_delivery);
  }
  if (ExecutionEngine::real_threads()) {
    // Real engine: block the OS thread. The wait is real, so nothing is charged
    // to the simulated clock and no kLockContend event is traced — that keeps
    // counters and cycles identical to the single-thread oracle (which runs
    // with contention simulation off when being compared against this mode).
    if (!mu_->try_lock()) {
      const auto t0 = std::chrono::steady_clock::now();
      mu_->lock();
      const auto waited = std::chrono::steady_clock::now() - t0;
      CounterAdd(real_contended_);
      CounterAdd(real_wait_ns_,
                 static_cast<uint64_t>(
                     std::chrono::duration_cast<std::chrono::nanoseconds>(waited)
                         .count()));
    }
    // Everything below runs under the backing mutex, so held_/holder_ and the
    // acquisition count are mutated race-free; the audit's per-CPU stack is
    // this thread's own.
    LockAudit::Global().NoteAcquire(cpu.index(), this);
    ++acquisitions_;
    held_ = true;
    holder_ = cpu.index();
    return;
  }
  LockAudit::Global().NoteAcquire(cpu.index(), this);
  if (simulate_contention && cpu.cycles().now() < free_at_) {
    const Cycles wait = free_at_ - cpu.cycles().now();
    cpu.cycles().Charge(wait);
    ++contended_;
    contention_cycles_ += wait;
    Tracer::Global().Record(TraceEvent::kLockContend, cpu.index(),
                            cpu.cycles().now(), -1, wait);
  }
  ++acquisitions_;
  held_ = true;
  holder_ = cpu.index();
}

void SimLock::Release(Cpu& cpu, bool simulate_contention) {
  if (ExecutionEngine::real_threads()) {
    held_ = false;
    holder_ = -1;
    LockAudit::Global().NoteRelease(cpu.index(), this);
    mu_->unlock();
    if (FaultInjector::Armed() &&
        FaultInjector::Global().Fire("lock.release", FaultAction::kPreempt)) {
      cpu.cycles().Charge(cpu.costs().interrupt_delivery);
    }
    return;
  }
  if (simulate_contention) {
    free_at_ = std::max(free_at_, cpu.cycles().now());
  }
  held_ = false;
  holder_ = -1;
  LockAudit::Global().NoteRelease(cpu.index(), this);
  if (FaultInjector::Armed() &&
      FaultInjector::Global().Fire("lock.release", FaultAction::kPreempt)) {
    cpu.cycles().Charge(cpu.costs().interrupt_delivery);
  }
}

LockAudit& LockAudit::Global() {
  static LockAudit* audit = new LockAudit();
  return *audit;
}

void LockAudit::Reset() {
  for (std::vector<Held>& stack : held_) {
    stack.clear();
  }
  ordering_violations_ = 0;
  unheld_violations_ = 0;
}

uint64_t LockAudit::ordering_violations() const {
  return CounterLoad(ordering_violations_);
}

uint64_t LockAudit::unheld_violations() const {
  return CounterLoad(unheld_violations_);
}

std::vector<LockAudit::Held>& LockAudit::StackFor(int cpu) {
  // Clamp rather than grow: the array is fixed so vCPU threads can index their
  // own stacks without synchronizing against a resize.
  const size_t index =
      std::min<size_t>(static_cast<size_t>(std::max(cpu, 0)), kMaxCpus - 1);
  return held_[index];
}

void LockAudit::NoteAcquire(int cpu, const SimLock* lock) {
  std::vector<Held>& stack = StackFor(cpu);
  if (!stack.empty()) {
    const Held& top = stack.back();
    // Ascending ranks; within a rank, ascending sub-ids. Re-acquiring a held
    // lock (same rank+sub) is also an ordering violation: SimLock is not
    // recursive, so a nested acquire means a body bypassed its guard helper.
    if (top.rank > lock->rank() ||
        (top.rank == lock->rank() && top.sub >= lock->sub())) {
      CounterAdd(ordering_violations_);
    }
  }
  if (!ExecutionEngine::real_threads() && lock->held()) {
    // Double-acquire probe. Skipped under real threads: a peer legitimately
    // holding the lock is not a discipline violation there (we are about to
    // block on the mutex), and the same-thread case deadlocks the mutex before
    // this could even record — the ordering check above already flags it.
    CounterAdd(ordering_violations_);
  }
  stack.push_back(Held{lock, lock->rank(), lock->sub()});
}

void LockAudit::NoteRelease(int cpu, const SimLock* lock) {
  std::vector<Held>& stack = StackFor(cpu);
  // Releases come in reverse acquisition order; tolerate (but count) a release
  // of something this vCPU never acquired.
  const auto it = std::find_if(stack.rbegin(), stack.rend(),
                               [lock](const Held& h) { return h.lock == lock; });
  if (it == stack.rend()) {
    CounterAdd(ordering_violations_);
    return;
  }
  if (it != stack.rbegin()) {
    CounterAdd(ordering_violations_);  // out-of-order (non-LIFO) release
  }
  stack.erase(std::next(it).base());
}

bool LockAudit::Holds(int cpu, int rank, int sub) const {
  if (cpu < 0 || cpu >= kMaxCpus) {
    return false;
  }
  for (const Held& h : held_[static_cast<size_t>(cpu)]) {
    if (h.rank == kRankGlobal || (h.rank == rank && h.sub == sub)) {
      return true;
    }
  }
  return false;
}

void LockAudit::ExpectSandboxHeld(int cpu, int sandbox_id) {
  if (!Holds(cpu, kRankSandbox, sandbox_id)) {
    CounterAdd(unheld_violations_);
  }
}

void LockAudit::ExpectFrameShardHeld(int cpu, int shard) {
  if (!Holds(cpu, kRankFrameShard + shard, shard)) {
    CounterAdd(unheld_violations_);
  }
}

bool LockAudit::NothingHeld(int cpu) const {
  return cpu < 0 || cpu >= kMaxCpus ||
         held_[static_cast<size_t>(cpu)].empty();
}

EmcLockTable::EmcLockTable()
    : global_("emc.global", kRankGlobal),
      monitor_state_("monitor.state", kRankMonitorState) {
  for (int i = 0; i < kFrameShards; ++i) {
    shards_[static_cast<size_t>(i)] =
        SimLock("frames.shard" + std::to_string(i), kRankFrameShard + i, i);
  }
}

}  // namespace erebor
