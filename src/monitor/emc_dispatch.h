// Table-driven EMC dispatch core (paper sections 5.3 and 9, Tables 3/4).
//
// Every EMC — the kernel's only route into privileged operations — is described
// by one row of a static descriptor table: its name (which doubles as the
// fault-point site), Table-4 unit cycle cost, trace event, family counter,
// gate/lock requirements, and argument validator. EreborMonitor::EmcDispatch()
// is the single path that consumes a row: entry-gate accounting (with the
// bounded transient-refusal retry), lock acquisition, cycle charging, the
// emc_total bump, trace emission, fault-point arming, and argument validation
// happen exactly once there — no handler body duplicates any of it.
//
// The table is the auditable inventory of the monitor's attack surface: a new
// EMC cannot ship without a cost, a trace event, a fault site, and a validator
// (tests/emc_dispatch_test.cc enforces completeness against PrivilegedOps).
#ifndef EREBOR_SRC_MONITOR_EMC_DISPATCH_H_
#define EREBOR_SRC_MONITOR_EMC_DISPATCH_H_

#include <array>
#include <cstdint>

#include "src/common/status.h"
#include "src/common/trace.h"
#include "src/hw/cycles.h"
#include "src/hw/types.h"

namespace erebor {

struct MonitorCounters {
  uint64_t emc_total = 0;
  uint64_t emc_pte = 0;
  uint64_t emc_ptp_register = 0;
  uint64_t emc_cr = 0;
  uint64_t emc_msr = 0;
  uint64_t emc_idt = 0;
  uint64_t emc_usercopy = 0;
  uint64_t emc_tdcall = 0;
  uint64_t emc_text_poke = 0;
  uint64_t emc_sandbox = 0;
  uint64_t policy_denials = 0;
  uint64_t sandbox_kills = 0;
  uint64_t scrubbed_interrupts = 0;
  uint64_t cached_cpuid_hits = 0;
  // Mitigation activity.
  uint64_t exit_stalls = 0;
  uint64_t cache_flushes = 0;
  uint64_t quantized_outputs = 0;
  uint64_t huge_splits = 0;  // forced huge-page splits (section 7 future work)
  uint64_t tlb_shootdowns = 0;  // monitor-initiated software-TLB shootdowns
  // MMU submission/completion rings (src/monitor/emc_ring.cc).
  uint64_t emc_ring = 0;                   // doorbell crossings (family counter)
  uint64_t ring_descriptors = 0;           // descriptors drained and applied
  uint64_t ring_rejects = 0;               // descriptors refused (structural or policy)
  uint64_t ring_strikes = 0;               // hostile-shaped submissions (strike-counted)
  uint64_t ring_shootdowns_coalesced = 0;  // duplicate shootdowns merged per drain
};

// One value per EMC entry point. The first eleven mirror the PrivilegedOps
// virtuals (InvlPg is deliberately absent: it is a non-EMC hint the kernel may
// issue directly); the last three are the monitor's own gated surfaces.
enum class EmcOp : uint8_t {
  kWritePte,
  kWritePteBatch,
  kRegisterPtp,
  kWriteCr,
  kWriteMsr,
  kLoadIdt,
  kCopyToUser,
  kCopyFromUser,
  kTdcall,
  kTextPoke,
  kRingDoorbell,
  kLoadKernelModule,
  kSandboxOp,   // declare-confined / attach-common / teardown
  kChannelOp,   // packet delivery/fetch + shepherd data movement
  kCount,
};

// Flat argument view shared by every validator (a union would hide misuse; the
// fields are cheap). Validators are pure functions of these values — stateful
// policy checks stay in the handler bodies.
struct EmcArgs {
  Paddr entry_pa = 0;
  uint64_t value = 0;
  int reg = -1;
  uint32_t msr_index = 0;
  uint64_t leaf = 0;
  size_t nargs = 0;
  const void* ptr = nullptr;
  uint64_t len = 0;
  size_t count = 0;
  uint64_t frame = 0;
  Paddr root_pa = 0;
};

struct EmcValidation {
  Status status;
  // True when a failed validation is a *policy denial* (counted and traced as
  // kPolicyDenial, matching the historical per-handler accounting) rather than
  // a plain malformed-argument error.
  bool count_denial = false;
};
using EmcValidator = EmcValidation (*)(const EmcArgs&);

struct EmcDescriptor {
  EmcOp op = EmcOp::kCount;
  const char* name = nullptr;        // "write_pte" — stable identifier
  const char* fault_site = nullptr;  // fault-point site, "emc.<name>"
  TraceEvent trace_event = TraceEvent::kNone;
  // Table-4 unit cost (member pointer so tests can assert identity against
  // src/hw/cycles.h, not just value equality).
  Cycles CycleModel::*unit_cost = nullptr;
  // Per-family counter bumped once per dispatch *call* (before the gate, as the
  // handlers always did); null for ops with no family counter of their own.
  uint64_t MonitorCounters::*family_counter = nullptr;
  // Gate/seal requirements enforced by the dispatcher.
  bool requires_attached_kernel = false;
  // Lock plan (kSharded mode; kGlobal mode takes the single global lock).
  bool locks_monitor_state = false;
  bool locks_target_sandbox = false;
  bool locks_frame_shards = false;
  EmcValidator validate = nullptr;
};

// Descriptor lookup; the table is indexed by EmcOp and complete by
// construction (a static_assert pins its size to EmcOp::kCount).
const EmcDescriptor& EmcDescriptorFor(EmcOp op);
const std::array<EmcDescriptor, static_cast<size_t>(EmcOp::kCount)>&
EmcDescriptorTable();

// One dispatch request: the op plus its per-call cost shape and lock targets.
struct EmcCall {
  EmcOp op = EmcOp::kCount;
  EmcArgs args;
  // op_cycles = unit * cost_units + extra_cycles, where unit is the descriptor's
  // Table-4 constant unless overridden (EmcTdcall charges 64 for non-report
  // leaves, per the historical accounting).
  uint64_t cost_units = 1;
  Cycles extra_cycles = 0;
  bool has_unit_override = false;
  Cycles unit_override = 0;
  // Lock targets (used when the descriptor's lock plan asks for them).
  int sandbox_id = -1;      // also trace attribution; -1 = not sandbox-bound
  uint64_t shard_mask = 0;  // EmcLockTable frame shards, bit i = shard i
};

}  // namespace erebor

#endif  // EREBOR_SRC_MONITOR_EMC_DISPATCH_H_
