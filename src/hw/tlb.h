// Per-CPU software TLB over the simulated page-table walker.
//
// The TLB is a *host wall-clock* optimization with paper-faithful invalidation
// semantics: it caches successful WalkResults keyed by (CR3 root, page-aligned VA,
// CPU mode) plus a small paging-structure cache (the PDE-cache analogue) that maps
// (root, 2 MiB region) to the level-1 table and the permission aggregates of the
// intermediate levels. It never charges simulated cycles and never changes the
// outcome of a translation — permission checks (PKS/SMEP/SMAP/CR0.WP/NX/shadow
// stack) always re-run on the cached WalkResult, so IA32_PKRS updates on the EMC
// gate hot path need no flush.
//
// Invalidation mirrors what the paper's threat model requires the hardware+monitor
// pair to provide (and which was previously modeled only as a cycle charge):
//   - CR3 writes flush the writing CPU's TLB (Cpu::WriteCr3 / TrustedWriteCr).
//   - The kernel's invlpg-equivalent broadcasts a single-page invalidation on
//     unmap/protect (PrivilegedOps::InvlPg via AddressSpace).
//   - The monitor shoots down by leaf-PTE physical address on every
//     permission-revoking EmcWritePte/EmcWritePteBatch, on RetrofitKey, and on the
//     trusted sandbox-manager PTE writes (confinement unmaps, seal-time W strips).
//   - flush_on_exit really flushes the exiting CPU's TLB (same cycle charge).
// Each hook has a test-only disable toggle so the stale-TLB security test can show
// every hook is load-bearing.
#ifndef EREBOR_SRC_HW_TLB_H_
#define EREBOR_SRC_HW_TLB_H_

#include <set>
#include <vector>

#include "src/common/status.h"
#include "src/hw/paging.h"
#include "src/hw/phys_mem.h"
#include "src/hw/types.h"

namespace erebor {

class Tlb {
 public:
  // Power-of-two sizes; direct-mapped.
  static constexpr size_t kLeafEntries = 2048;
  static constexpr size_t kStructureEntries = 128;

  // Process-wide aggregate counters (also registered in MetricsRegistry::Global()
  // under "tlb.*" and "paging.walk_read64s").
  struct Stats {
    uint64_t hits = 0;        // full leaf-TLB hits (zero page-table reads)
    uint64_t psc_hits = 0;    // structure-cache hits (one leaf read instead of four)
    uint64_t misses = 0;      // full walks
    uint64_t flushes = 0;     // whole-TLB flushes (CR3 writes, flush_on_exit, ...)
    uint64_t invlpg = 0;      // single-page invalidations
    uint64_t shootdowns = 0;  // by-leaf-entry-pa shootdowns
  };

  // Test-only toggles: each shipped invalidation hook consults its flag so the
  // stale-TLB security test can demonstrate the hook is load-bearing. All true in
  // production; never disable outside tests.
  struct Hooks {
    bool cr3_flush = true;           // Cpu::WriteCr3 / TrustedWriteCr(3)
    bool invlpg = true;              // kernel-side unmap/protect invalidation
    bool pte_shootdown = true;       // monitor EmcWritePte/Batch + trusted writes
    bool retrofit_shootdown = true;  // MmuPolicy::RetrofitKey
    bool flush_on_exit = true;       // sandbox-exit mitigation flush
  };

  Tlb();

  // Global enable: EREBOR_TLB=0 disables (default enabled); SetEnabled overrides the
  // environment (benches toggle it to prove cycle-neutrality within one process).
  static bool Enabled();
  static void SetEnabled(bool enabled);
  static Hooks& hooks();
  static Stats& GlobalStats();
  static void ResetGlobalStats();

  // The cached walk: leaf probe, then structure-cache-assisted leaf read, then a
  // full walk (which fills both caches). Bit-identical results and error messages
  // to WalkPageTables under the shipped invalidation hooks. With the TLB globally
  // disabled this is exactly WalkPageTables.
  StatusOr<WalkResult> WalkCached(const PhysMemory& memory, Paddr root, Vaddr va,
                                  CpuMode mode);

  // ---- Invalidation primitives (called via Cpu/Machine broadcast helpers) ----
  void FlushAll();
  // Drops every entry keyed by `root` (address-space teardown: the root frame may be
  // recycled as a new PML4, so its keys must die with it).
  void FlushRoot(Paddr root);
  // invlpg: drops the leaf entry for (root, page of va). Structure-cache entries
  // survive — a leaf-level change never alters the intermediate levels.
  void InvalidatePage(Paddr root, Vaddr va);
  // Monitor shootdown: drops every leaf entry whose cached PTE lives at `entry_pa`
  // and every structure-cache entry whose walk path traversed `entry_pa` (covers
  // intermediate-entry rewrites such as huge-page split relinks and U/S widening).
  void ShootdownEntry(Paddr entry_pa);

 private:
  // Slots carry a generation stamp so FlushAll is O(1): it bumps `generation_` and
  // every stamped entry goes stale without being touched (unmap-heavy workloads flush
  // and shoot down tens of thousands of times — maintenance must stay off the host's
  // critical path or the TLB loses the wall-clock time it saves).
  struct LeafEntry {
    bool valid = false;      // slot occupied (tag bookkeeping); may still be stale
    CpuMode mode = CpuMode::kSupervisor;
    uint64_t gen = 0;        // logically valid only when gen == generation_
    Paddr root = 0;
    Vaddr va_page = 0;      // 4 KiB-aligned
    Paddr pa_page = 0;      // walk pa with the low 12 bits of va removed
    WalkResult result{};    // pa field unused; rebuilt from pa_page + offset
  };
  struct StructureEntry {
    bool valid = false;      // slot occupied; logical validity also needs gen
    uint64_t gen = 0;
    Paddr root = 0;
    Vaddr region = 0;       // va >> 21 (2 MiB region covered by one level-1 table)
    Paddr l1_table = 0;     // base of the level-1 table
    Paddr path_pa[kPagingLevels - 1] = {0, 0, 0};  // entry pas at levels 3, 2, 1
    bool inter_user = true;      // AND of U across levels 3..1
    bool inter_writable = true;  // AND of W across levels 3..1
    bool inter_nx = false;       // OR of NX across levels 3..1
  };
  // Exact reverse index leaf_entry_pa -> leaf slots, so ShootdownEntry is O(ways)
  // instead of a full-array scan. A bucket that ever exceeds kTagWays residents
  // falls back to the scan for its hash class (overflow is ~Poisson(1) tail, so
  // practically never with 8 ways).
  static constexpr int kTagWays = 8;
  struct TagBucket {
    uint8_t count = 0;
    bool overflow = false;
    uint16_t slot[kTagWays] = {};
  };
  // Counting filter over the structure-cache path pas: most shootdowns target leaf
  // PTEs that appear on no cached intermediate path, so the 128-entry scan is skipped
  // unless the filter says a path might contain the address.
  static constexpr size_t kStructureFilterBuckets = 4096;

  static size_t LeafIndex(Paddr root, Vaddr va, CpuMode mode);
  static size_t StructureIndex(Paddr root, Vaddr va);

  void Insert(Paddr root, Vaddr va, CpuMode mode, const WalkResult& result);
  void InsertStructure(Paddr root, Vaddr va, const WalkPath& path);
  void TagInsert(Paddr pa, size_t slot);
  void TagRemove(Paddr pa, size_t slot);
  void ClearLeafSlot(size_t slot);
  void FilterAdd(const StructureEntry& se);
  void FilterRemove(const StructureEntry& se);

  uint64_t generation_ = 1;
  std::vector<LeafEntry> leaf_;
  // Parallel tag array: leaf_entry_pa per occupied slot (0 = empty). The overflow
  // fallback and FlushRoot scan this 16 KiB array instead of the full entry structs.
  std::vector<Paddr> leaf_tags_;
  std::vector<TagBucket> tag_buckets_;
  std::vector<StructureEntry> structure_;
  std::vector<uint16_t> structure_filter_;
};

// True when the old->new transition of a present PTE narrows what the translation
// allows (frame change, P cleared, W cleared, U changed, NX set, pkey change,
// shadow-stack encoding change). Grant-only changes still invalidate conservatively
// at the mutation sites; this predicate identifies the security-critical subset the
// monitor must shoot down even for a kernel that skips its own invlpg.
bool PteRevokesPermissions(Pte old_value, Pte new_value);

// Deferred shootdown coalescing for batched MMU updates: the monitor's ring
// drain collects the leaf-entry addresses that need invalidation across a whole
// submission window and flushes each distinct address once at the end, instead
// of broadcasting per PTE write. Iteration order is deterministic (ordered set)
// so coalesced drains stay bit-identical across runs and engines.
class TlbShootdownBatch {
 public:
  // Queues entry_pa; returns false (and counts a coalesce) when it was already
  // pending in this batch.
  bool Add(Paddr entry_pa) {
    if (!pending_.insert(entry_pa).second) {
      ++coalesced_;
      return false;
    }
    return true;
  }
  size_t size() const { return pending_.size(); }
  uint64_t coalesced() const { return coalesced_; }
  const std::set<Paddr>& entries() const { return pending_; }
  void Clear() {
    pending_.clear();
    coalesced_ = 0;
  }

 private:
  std::set<Paddr> pending_;
  uint64_t coalesced_ = 0;
};

}  // namespace erebor

#endif  // EREBOR_SRC_HW_TLB_H_
