#include "src/hw/types.h"

namespace erebor {

std::string AccessTypeName(AccessType type) {
  switch (type) {
    case AccessType::kRead:
      return "read";
    case AccessType::kWrite:
      return "write";
    case AccessType::kExecute:
      return "execute";
  }
  return "?";
}

std::string VectorName(Vector v) {
  switch (v) {
    case Vector::kDivideError:
      return "#DE";
    case Vector::kInvalidOpcode:
      return "#UD";
    case Vector::kGeneralProtection:
      return "#GP";
    case Vector::kPageFault:
      return "#PF";
    case Vector::kVirtualizationException:
      return "#VE";
    case Vector::kControlProtection:
      return "#CP";
    case Vector::kTimer:
      return "TIMER";
    case Vector::kDevice:
      return "DEVICE";
    case Vector::kIpi:
      return "IPI";
  }
  return "INT" + std::to_string(static_cast<int>(v));
}

}  // namespace erebor
