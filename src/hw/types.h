// Core hardware types shared by the simulated platform.
#ifndef EREBOR_SRC_HW_TYPES_H_
#define EREBOR_SRC_HW_TYPES_H_

#include <cstdint>
#include <string>

namespace erebor {

// Physical address within the guest ("guest physical address"; the simulation does not
// model a separate host physical space — the sEPT validates GPA ownership instead).
using Paddr = uint64_t;
// Guest virtual address.
using Vaddr = uint64_t;
// Frame / page numbers.
using FrameNum = uint64_t;

inline constexpr uint64_t kPageShift = 12;
inline constexpr uint64_t kPageSize = 1ULL << kPageShift;  // 4 KiB
inline constexpr uint64_t kPageMask = kPageSize - 1;
inline constexpr uint64_t kHugePageSize = 2ULL << 20;  // 2 MiB

inline constexpr FrameNum FrameOf(Paddr pa) { return pa >> kPageShift; }
inline constexpr Paddr AddrOf(FrameNum frame) { return frame << kPageShift; }
inline constexpr Vaddr PageAlignDown(Vaddr va) { return va & ~kPageMask; }
inline constexpr Vaddr PageAlignUp(Vaddr va) { return (va + kPageMask) & ~kPageMask; }

// CPU privilege mode (ring 3 vs ring 0). The monitor's "virtual privileged mode" is a
// software construct on top of kSupervisor (see monitor/gates).
enum class CpuMode : uint8_t { kUser, kSupervisor };

enum class AccessType : uint8_t { kRead, kWrite, kExecute };

std::string AccessTypeName(AccessType type);

// Exception / interrupt vectors (x86 numbering where one exists).
enum class Vector : uint8_t {
  kDivideError = 0,
  kInvalidOpcode = 6,
  kGeneralProtection = 13,
  kPageFault = 14,
  kVirtualizationException = 20,  // #VE, injected by the TDX module
  kControlProtection = 21,        // #CP, raised by CET
  kTimer = 32,                    // APIC timer (external interrupt)
  kDevice = 33,                   // generic external device interrupt
  kIpi = 0xF0,                    // inter-processor interrupt
};

std::string VectorName(Vector v);

// A delivered fault/interrupt. `error_code` carries the x86-style page-fault error bits
// for kPageFault (P=1<<0, W=1<<1, U=1<<2, I=1<<4, PK=1<<5, SS=1<<6).
struct Fault {
  Vector vector = Vector::kGeneralProtection;
  uint64_t error_code = 0;
  Vaddr address = 0;     // faulting VA for #PF
  std::string reason;    // human-readable diagnostic (simulation aid)
};

namespace pf_err {
inline constexpr uint64_t kPresent = 1u << 0;
inline constexpr uint64_t kWrite = 1u << 1;
inline constexpr uint64_t kUser = 1u << 2;
inline constexpr uint64_t kInstruction = 1u << 4;
inline constexpr uint64_t kProtectionKey = 1u << 5;
inline constexpr uint64_t kShadowStack = 1u << 6;
inline constexpr uint64_t kSgx = 1u << 15;
}  // namespace pf_err

}  // namespace erebor

#endif  // EREBOR_SRC_HW_TYPES_H_
