#include "src/hw/phys_mem.h"

#include <cstring>

#include "src/common/bytes.h"

namespace erebor {

PhysMemory::PhysMemory(uint64_t num_frames)
    : num_frames_(num_frames), frames_(num_frames), shared_(num_frames, 0) {}

uint8_t* PhysMemory::EnsureFrame(FrameNum frame) const {
  auto& slot = frames_[frame];
  if (!slot) {
    slot = std::make_unique<uint8_t[]>(kPageSize);
    std::memset(slot.get(), 0, kPageSize);
    ++committed_frames_;
  }
  return slot.get();
}

Status PhysMemory::Read(Paddr pa, uint8_t* out, uint64_t len) const {
  if (!Contains(pa, len)) {
    return OutOfRangeError("physical read out of range");
  }
  while (len > 0) {
    const FrameNum frame = FrameOf(pa);
    const uint64_t offset = pa & kPageMask;
    const uint64_t take = std::min(len, kPageSize - offset);
    const uint8_t* src = frames_[frame] ? frames_[frame].get() : nullptr;
    if (src != nullptr) {
      std::memcpy(out, src + offset, take);
    } else {
      std::memset(out, 0, take);  // untouched frames read as zero
    }
    out += take;
    pa += take;
    len -= take;
  }
  return OkStatus();
}

Status PhysMemory::Write(Paddr pa, const uint8_t* data, uint64_t len) {
  if (!Contains(pa, len)) {
    return OutOfRangeError("physical write out of range");
  }
  while (len > 0) {
    const FrameNum frame = FrameOf(pa);
    const uint64_t offset = pa & kPageMask;
    const uint64_t take = std::min(len, kPageSize - offset);
    std::memcpy(EnsureFrame(frame) + offset, data, take);
    data += take;
    pa += take;
    len -= take;
  }
  return OkStatus();
}

uint64_t PhysMemory::Read64(Paddr pa) const {
  uint8_t buf[8] = {0};
  (void)Read(pa, buf, sizeof(buf));
  return LoadLe64(buf);
}

void PhysMemory::Write64(Paddr pa, uint64_t value) {
  uint8_t buf[8];
  StoreLe64(buf, value);
  (void)Write(pa, buf, sizeof(buf));
}

void PhysMemory::ZeroFrame(FrameNum frame) {
  if (frame < num_frames_ && frames_[frame]) {
    std::memset(frames_[frame].get(), 0, kPageSize);
  }
}

uint8_t* PhysMemory::FramePtr(FrameNum frame) { return EnsureFrame(frame); }

const uint8_t* PhysMemory::FramePtrIfPresent(FrameNum frame) const {
  return frame < num_frames_ && frames_[frame] ? frames_[frame].get() : nullptr;
}

bool PhysMemory::IsShared(FrameNum frame) const {
  return frame < num_frames_ && shared_[frame] != 0;
}

void PhysMemory::SetShared(FrameNum frame, bool shared) {
  if (frame < num_frames_) {
    shared_[frame] = shared ? 1 : 0;
  }
}

}  // namespace erebor
