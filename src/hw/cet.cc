#include "src/hw/cet.h"

namespace erebor {

CodeLabelId CodeRegistry::Register(std::string name, CodeDomain domain, bool endbr) {
  if (labels_.empty()) {
    labels_.push_back(CodeLabel{"<invalid>", CodeDomain::kKernel, false});
  }
  labels_.push_back(CodeLabel{std::move(name), domain, endbr});
  return static_cast<CodeLabelId>(labels_.size() - 1);
}

const CodeLabel* CodeRegistry::Lookup(CodeLabelId id) const {
  if (id == kInvalidCodeLabel || id >= labels_.size()) {
    return nullptr;
  }
  return &labels_[id];
}

Status ShadowStack::Activate(int cpu_index) {
  if (active_cpu_ >= 0 && active_cpu_ != cpu_index) {
    return FailedPreconditionError("shadow stack '" + name_ +
                                   "' token already held by another core");
  }
  active_cpu_ = cpu_index;
  return OkStatus();
}

void ShadowStack::Deactivate() { active_cpu_ = -1; }

StatusOr<CodeLabelId> ShadowStack::PopReturn(CodeLabelId actual_return_site) {
  if (frames_.empty()) {
    return PermissionDeniedError("#CP: shadow stack underflow on '" + name_ + "'");
  }
  const CodeLabelId expected = frames_.back();
  frames_.pop_back();
  if (expected != actual_return_site) {
    return PermissionDeniedError("#CP: return address mismatch on '" + name_ + "'");
  }
  return expected;
}

}  // namespace erebor
