#include "src/hw/paging.h"

namespace erebor {

StatusOr<WalkResult> WalkPageTables(const PhysMemory& memory, Paddr root, Vaddr va) {
  WalkResult result;
  result.user_accessible = true;
  result.writable = true;

  Paddr table = root;
  for (int level = kPagingLevels - 1; level >= 0; --level) {
    const Paddr entry_pa = table + PteIndex(va, level) * sizeof(Pte);
    if (!memory.Contains(entry_pa, sizeof(Pte))) {
      return OutOfRangeError("page-table page outside physical memory");
    }
    const Pte entry = memory.Read64(entry_pa);
    if (!pte::Present(entry)) {
      return NotFoundError("non-present PTE at level " + std::to_string(level));
    }
    result.user_accessible = result.user_accessible && pte::User(entry);
    result.writable = result.writable && pte::Writable(entry);
    result.no_execute = result.no_execute || pte::NoExecute(entry);

    const bool is_leaf = level == 0 || (level <= 2 && (entry & pte::kPageSize) != 0);
    if (is_leaf) {
      result.leaf = entry;
      result.level = level;
      result.leaf_entry_pa = entry_pa;
      result.pkey = pte::Pkey(entry);
      result.shadow_stack = pte::IsShadowStack(entry);
      const uint64_t page_bits = kPageShift + 9 * level;
      const uint64_t offset = va & ((1ULL << page_bits) - 1);
      result.pa = (pte::Frame(entry) << kPageShift) + offset;
      // For huge pages the frame field is aligned to the huge-page boundary already.
      if (level > 0) {
        result.pa = ((entry & pte::kFrameMask) & ~((1ULL << page_bits) - 1)) + offset;
      }
      return result;
    }
    table = pte::Frame(entry) << kPageShift;
  }
  return InternalError("page walk fell through");
}

namespace {

// Descends to the leaf level, creating intermediate PTPs, and returns the physical
// address of the leaf PTE slot.
StatusOr<Paddr> LeafSlot(PhysMemory& memory, Paddr root, Vaddr va, bool user,
                         const PteWriter& writer, bool create) {
  Paddr table = root;
  for (int level = kPagingLevels - 1; level >= 1; --level) {
    const Paddr entry_pa = table + PteIndex(va, level) * sizeof(Pte);
    Pte entry = memory.Read64(entry_pa);
    if (!pte::Present(entry)) {
      if (!create) {
        return NotFoundError("mapping does not exist");
      }
      EREBOR_ASSIGN_OR_RETURN(const FrameNum ptp, writer.alloc_ptp());
      Pte inter = pte::Make(ptp, pte::kPresent | pte::kWritable);
      if (user) {
        inter |= pte::kUser;
      }
      EREBOR_RETURN_IF_ERROR(writer.write_pte(entry_pa, inter));
      entry = inter;
    } else if (user && !pte::User(entry) && create) {
      // Widen intermediate U/S when mapping user pages under an existing subtree.
      EREBOR_RETURN_IF_ERROR(writer.write_pte(entry_pa, entry | pte::kUser));
    }
    table = pte::Frame(entry) << kPageShift;
  }
  return table + PteIndex(va, 0) * sizeof(Pte);
}

}  // namespace

Status MapPage(PhysMemory& memory, Paddr root, Vaddr va, FrameNum frame, Pte leaf_flags,
               const PteWriter& writer) {
  const bool user = (leaf_flags & pte::kUser) != 0;
  EREBOR_ASSIGN_OR_RETURN(const Paddr slot, LeafSlot(memory, root, va, user, writer, true));
  return writer.write_pte(slot, pte::Make(frame, leaf_flags | pte::kPresent));
}

Status UnmapPage(PhysMemory& memory, Paddr root, Vaddr va, const PteWriter& writer) {
  EREBOR_ASSIGN_OR_RETURN(const Paddr slot, LeafSlot(memory, root, va, false, writer, false));
  return writer.write_pte(slot, 0);
}

Status ProtectPage(PhysMemory& memory, Paddr root, Vaddr va, Pte new_flags,
                   const PteWriter& writer) {
  EREBOR_ASSIGN_OR_RETURN(const Paddr slot, LeafSlot(memory, root, va, false, writer, false));
  const Pte old = memory.Read64(slot);
  if (!pte::Present(old)) {
    return NotFoundError("protect on non-present mapping");
  }
  return writer.write_pte(slot, pte::Make(pte::Frame(old), new_flags | pte::kPresent));
}

}  // namespace erebor
