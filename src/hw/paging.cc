#include "src/hw/paging.h"

#include "src/common/exec.h"

namespace erebor {

uint64_t& PageTableWalkReads() {
  static uint64_t reads = 0;
  return reads;
}

namespace {
// Static failure messages: demand paging takes the non-present path constantly, so the
// reason must not be assembled with std::to_string/concatenation per fault. Text is
// identical to the historical "non-present PTE at level N" output.
const char* NonPresentMessage(int level) {
  switch (level) {
    case 0:
      return "non-present PTE at level 0";
    case 1:
      return "non-present PTE at level 1";
    case 2:
      return "non-present PTE at level 2";
    default:
      return "non-present PTE at level 3";
  }
}
}  // namespace

StatusOr<WalkResult> WalkPageTables(const PhysMemory& memory, Paddr root, Vaddr va) {
  return WalkPageTables(memory, root, va, nullptr);
}

StatusOr<WalkResult> WalkPageTables(const PhysMemory& memory, Paddr root, Vaddr va,
                                    WalkPath* path) {
  WalkResult result;
  result.user_accessible = true;
  result.writable = true;

  Paddr table = root;
  for (int level = kPagingLevels - 1; level >= 0; --level) {
    const Paddr entry_pa = table + PteIndex(va, level) * sizeof(Pte);
    if (!memory.Contains(entry_pa, sizeof(Pte))) {
      return OutOfRangeError("page-table page outside physical memory");
    }
    const Pte entry = memory.Read64(entry_pa);
    CounterAdd(PageTableWalkReads());
    if (path != nullptr) {
      path->entry_pa[level] = entry_pa;
      path->deepest = level;
      if (level == 0) {
        path->leaf_table = table;
      }
    }
    if (!pte::Present(entry)) {
      return NotFoundError(NonPresentMessage(level));
    }
    result.user_accessible = result.user_accessible && pte::User(entry);
    result.writable = result.writable && pte::Writable(entry);
    result.no_execute = result.no_execute || pte::NoExecute(entry);

    const bool is_leaf = level == 0 || (level <= 2 && (entry & pte::kPageSize) != 0);
    if (path != nullptr && !is_leaf) {
      path->inter_user = path->inter_user && pte::User(entry);
      path->inter_writable = path->inter_writable && pte::Writable(entry);
      path->inter_nx = path->inter_nx || pte::NoExecute(entry);
    }
    if (is_leaf) {
      result.leaf = entry;
      result.level = level;
      result.leaf_entry_pa = entry_pa;
      result.pkey = pte::Pkey(entry);
      result.shadow_stack = pte::IsShadowStack(entry);
      const uint64_t page_bits = kPageShift + 9 * level;
      const uint64_t offset = va & ((1ULL << page_bits) - 1);
      result.pa = (pte::Frame(entry) << kPageShift) + offset;
      // For huge pages the frame field is aligned to the huge-page boundary already.
      if (level > 0) {
        result.pa = ((entry & pte::kFrameMask) & ~((1ULL << page_bits) - 1)) + offset;
      }
      return result;
    }
    table = pte::Frame(entry) << kPageShift;
  }
  return InternalError("page walk fell through");
}

namespace {

// Descends to the leaf level, creating intermediate PTPs, and returns the physical
// address of the leaf PTE slot.
StatusOr<Paddr> LeafSlot(PhysMemory& memory, Paddr root, Vaddr va, bool user,
                         const PteWriter& writer, bool create) {
  Paddr table = root;
  for (int level = kPagingLevels - 1; level >= 1; --level) {
    const Paddr entry_pa = table + PteIndex(va, level) * sizeof(Pte);
    Pte entry = memory.Read64(entry_pa);
    if (!pte::Present(entry)) {
      if (!create) {
        return NotFoundError("mapping does not exist");
      }
      EREBOR_ASSIGN_OR_RETURN(const FrameNum ptp, writer.alloc_ptp());
      Pte inter = pte::Make(ptp, pte::kPresent | pte::kWritable);
      if (user) {
        inter |= pte::kUser;
      }
      EREBOR_RETURN_IF_ERROR(writer.write_pte(entry_pa, inter));
      entry = inter;
    } else if (user && !pte::User(entry) && create) {
      // Widen intermediate U/S when mapping user pages under an existing subtree.
      EREBOR_RETURN_IF_ERROR(writer.write_pte(entry_pa, entry | pte::kUser));
    }
    table = pte::Frame(entry) << kPageShift;
  }
  return table + PteIndex(va, 0) * sizeof(Pte);
}

}  // namespace

Status MapPage(PhysMemory& memory, Paddr root, Vaddr va, FrameNum frame, Pte leaf_flags,
               const PteWriter& writer) {
  const bool user = (leaf_flags & pte::kUser) != 0;
  EREBOR_ASSIGN_OR_RETURN(const Paddr slot, LeafSlot(memory, root, va, user, writer, true));
  return writer.write_pte(slot, pte::Make(frame, leaf_flags | pte::kPresent));
}

Status UnmapPage(PhysMemory& memory, Paddr root, Vaddr va, const PteWriter& writer) {
  EREBOR_ASSIGN_OR_RETURN(const Paddr slot, LeafSlot(memory, root, va, false, writer, false));
  return writer.write_pte(slot, 0);
}

Status ProtectPage(PhysMemory& memory, Paddr root, Vaddr va, Pte new_flags,
                   const PteWriter& writer) {
  EREBOR_ASSIGN_OR_RETURN(const Paddr slot, LeafSlot(memory, root, va, false, writer, false));
  const Pte old = memory.Read64(slot);
  if (!pte::Present(old)) {
    return NotFoundError("protect on non-present mapping");
  }
  return writer.write_pte(slot, pte::Make(pte::Frame(old), new_flags | pte::kPresent));
}

}  // namespace erebor
