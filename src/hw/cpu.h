// Simulated virtual CPU.
//
// The Cpu enforces, on every checked access, the architectural protections the paper's
// monitor relies on: page-table permissions (P/W/U, NX), CR0.WP, SMEP/SMAP (with the
// RFLAGS.AC stac/clac window), supervisor protection keys (PKS via IA32_PKRS), CET IBT
// on indirect branches, and #GP on privileged instructions from user mode. Sensitive
// privileged instructions (Table 2 of the paper: mov-CR, wrmsr, stac, lidt, tdcall) are
// additionally gated by the "sensitive-instruction fence", which models the combined
// effect of the monitor's boot-time byte scan + W^X + SMEP: once Erebor is active, only
// monitor-context code can execute them.
#ifndef EREBOR_SRC_HW_CPU_H_
#define EREBOR_SRC_HW_CPU_H_

#include <array>
#include <atomic>
#include <functional>
#include <map>
#include <mutex>
#include <vector>

#include "src/common/status.h"
#include "src/hw/cet.h"
#include "src/hw/cycles.h"
#include "src/hw/isolation.h"
#include "src/hw/paging.h"
#include "src/hw/phys_mem.h"
#include "src/hw/tlb.h"
#include "src/hw/types.h"

namespace erebor {

// General-purpose register file. Workloads park secrets here so tests can verify the
// monitor's register scrubbing at interrupts (paper section 6.2).
struct Gprs {
  std::array<uint64_t, 16> reg{};

  void Clear() { reg.fill(0); }
  bool IsClear() const {
    for (uint64_t r : reg) {
      if (r != 0) {
        return false;
      }
    }
    return true;
  }
};

// Model-specific registers used by the simulation (real x86 indices).
namespace msr {
inline constexpr uint32_t kIa32Pkrs = 0x6E1;
inline constexpr uint32_t kIa32SCet = 0x6A2;
inline constexpr uint32_t kIa32Pl0Ssp = 0x6A4;
inline constexpr uint32_t kIa32Lstar = 0xC0000082;
inline constexpr uint32_t kIa32UintrTt = 0x985;
inline constexpr uint32_t kIa32ApicTimer = 0x832;  // simulated timer period control

// IA32_S_CET bits.
inline constexpr uint64_t kCetShstkEn = 1ULL << 0;
inline constexpr uint64_t kCetIbtEn = 1ULL << 2;
// IA32_UINTR_TT valid bit.
inline constexpr uint64_t kUintrTtValid = 1ULL << 0;
}  // namespace msr

// Control-register bits.
namespace cr {
inline constexpr uint64_t kCr0Wp = 1ULL << 16;
inline constexpr uint64_t kCr4Smep = 1ULL << 20;
inline constexpr uint64_t kCr4Smap = 1ULL << 21;
inline constexpr uint64_t kCr4Pks = 1ULL << 24;
inline constexpr uint64_t kCr4Cet = 1ULL << 23;
}  // namespace cr

// PKRS permission helpers: 2 bits per key, AD (access-disable) then WD (write-disable).
namespace pkrs {
inline constexpr uint64_t Ad(uint8_t key) { return 1ULL << (2 * key); }
inline constexpr uint64_t Wd(uint8_t key) { return 1ULL << (2 * key + 1); }
inline constexpr uint64_t DenyAll(uint8_t key) { return Ad(key) | Wd(key); }
inline constexpr uint64_t DenyWrite(uint8_t key) { return Wd(key); }
}  // namespace pkrs

// Interrupt descriptor table: 256 gates, each a code label (the label's callback is
// looked up in the machine-wide handler map at delivery).
struct IdtTable {
  std::array<CodeLabelId, 256> gate{};
};

class Cpu;
using FaultHandler = std::function<void(Cpu&, const Fault&)>;

// One queued cross-CPU TLB maintenance operation. Under the real-thread engine a
// CPU never writes a peer's Tlb directly (that is a data race against the peer's
// own lookups); it posts one of these to the peer's pending queue instead, and
// the peer drains at its next EMC gate boundary — the software analogue of an
// IPI-based shootdown where the handler runs at the next interruptible point.
struct TlbInvalidation {
  enum class Kind : uint8_t {
    kPage,   // invlpg: (root, va)
    kRoot,   // address-space teardown: all entries under root
    kAll,    // full flush
    kEntry,  // monitor shootdown by leaf-PTE physical address
  };
  Kind kind = Kind::kPage;
  Paddr root = 0;
  Vaddr va = 0;
  Paddr entry_pa = 0;
};

// tdcall sink: implemented by the TDX module, installed by the machine.
class TdcallSink {
 public:
  virtual ~TdcallSink() = default;
  // Returns the tdcall result (leaf-specific payload handled by the tdx module).
  virtual Status Tdcall(Cpu& cpu, uint64_t leaf, uint64_t* args, size_t nargs) = 0;
};

class Cpu {
 public:
  Cpu(int index, PhysMemory* memory, CodeRegistry* registry, const CycleModel* costs);

  int index() const { return index_; }
  PhysMemory& memory() { return *memory_; }
  CodeRegistry& registry() { return *registry_; }
  const CycleModel& costs() const { return *costs_; }
  CycleCounter& cycles() { return cycles_; }
  const CycleCounter& cycles() const { return cycles_; }
  Gprs& gprs() { return gprs_; }

  CpuMode mode() const { return mode_; }
  void SetMode(CpuMode mode) { mode_ = mode; }

  // ---- Control registers ----
  uint64_t cr0() const { return cr0_; }
  uint64_t cr3() const { return cr3_; }
  uint64_t cr4() const { return cr4_; }
  Status WriteCr0(uint64_t value);
  Status WriteCr3(uint64_t value);
  Status WriteCr4(uint64_t value);

  // ---- MSRs ----
  StatusOr<uint64_t> ReadMsr(uint32_t index) const;
  Status WriteMsr(uint32_t index, uint64_t value);
  // IA32_PKRS and the IA32_S_CET enable bits are read on every translation /
  // indirect branch, so they are mirrored in plain members instead of the MSR map.
  uint64_t pkrs() const { return pkrs_cache_; }
  uint64_t s_cet() const { return scet_cache_; }

  // ---- SMAP window ----
  Status Stac();
  Status Clac();
  bool ac_flag() const { return ac_flag_; }

  // ---- IDT ----
  Status Lidt(const IdtTable* table);
  const IdtTable* idt() const { return idt_; }

  // ---- tdcall ----
  Status Tdcall(uint64_t leaf, uint64_t* args, size_t nargs);
  void SetTdcallSink(TdcallSink* sink) { tdcall_sink_ = sink; }

  // ---- Sensitive-instruction fence (see file comment) ----
  void EnableSensitiveFence() { fence_enabled_ = true; }
  bool fence_enabled() const { return fence_enabled_; }
  void SetMonitorContext(bool in_monitor) { in_monitor_ = in_monitor; }
  bool in_monitor() const { return in_monitor_; }

  // ---- TME-MK keyID enforcement ----
  // When a KeyIdMap is attached (TME-MK worlds only), every checked access
  // compares the mapping's keyID against the accessed frame's binding; the
  // monitor context is exempt (its accesses carry the monitor's keyID by
  // construction). PKS worlds leave this null and pay nothing.
  void SetKeyIdMap(const KeyIdMap* map) { keyid_map_ = map; }
  const KeyIdMap* keyid_map() const { return keyid_map_; }

  // Trusted variants used only by monitor gate code (the gate is part of the scanned,
  // attested monitor binary, so its embedded sensitive instructions are legitimate).
  void TrustedWriteMsr(uint32_t index, uint64_t value);
  void TrustedWriteCr(int reg, uint64_t value);
  void TrustedLidt(const IdtTable* table) { idt_ = table; }
  void TrustedSetAc(bool ac) { ac_flag_ = ac; }

  // ---- Checked memory access ----
  // Translates `va` for `access` under mode `as_mode` (defaults to the current mode),
  // applying all architectural checks. On denial returns kPermissionDenied/kNotFound
  // and fills `fault_out` (if non-null) with the would-be exception.
  StatusOr<WalkResult> Translate(Vaddr va, AccessType access, Fault* fault_out = nullptr);
  StatusOr<WalkResult> TranslateAs(CpuMode as_mode, Vaddr va, AccessType access,
                                   Fault* fault_out = nullptr);

  Status ReadVirt(Vaddr va, uint8_t* out, uint64_t len, Fault* fault_out = nullptr);
  Status WriteVirt(Vaddr va, const uint8_t* data, uint64_t len, Fault* fault_out = nullptr);

  // ---- Software TLB ----
  Tlb& tlb() { return tlb_; }
  // Walk with this CPU's TLB (no permission checks; what TranslateAs and the
  // kernel/monitor lookup helpers use instead of a raw WalkPageTables).
  StatusOr<WalkResult> WalkCached(Paddr root, Vaddr va, CpuMode mode);
  // Machine wires every CPU (including this one) so invlpg-style invalidations can
  // broadcast without a Machine back-pointer. Empty peers = invalidate locally only.
  void SetTlbPeers(std::vector<Cpu*> peers) { tlb_peers_ = std::move(peers); }
  // Kernel-initiated single-page invalidation (PrivilegedOps::InvlPg): invlpg is
  // ring-0 but not in the paper's sensitive set, so the deprivileged kernel runs it
  // directly in both worlds. Records a trace event; charges no cycles (the cost is
  // already folded into the page-op cycle constants). Under real threads, peer
  // invalidations are posted to each peer's pending queue instead of applied.
  void InvlpgBroadcast(Paddr root, Vaddr va);

  // ---- Cross-CPU TLB invalidation queue (real-thread engine) ----
  // Applies `inv` to this CPU's TLB right now, or queues it when a *peer* thread
  // is the caller under the real-thread engine. The deterministic engine always
  // applies directly (same behaviour as before this queue existed).
  void RequestTlbInvalidation(const TlbInvalidation& inv);
  // Drains the pending queue into this CPU's TLB; called by this CPU's own
  // thread at EMC gate boundaries and by the World after a parallel region.
  void DrainTlbInvalidations();
  bool tlb_invalidations_pending() const {
    return tlb_queue_pending_.load(std::memory_order_acquire);
  }
  uint64_t tlb_invalidations_drained() const { return tlb_drained_; }

  // ---- Control flow (CET) ----
  // Indirect call/jmp to `target`: #CP unless the label is an endbr64 target (when IBT
  // is enabled for supervisor mode via IA32_S_CET).
  Status IndirectBranch(CodeLabelId target);

  // Shadow-stack assisted call/return (used on monitor entry/exit paths).
  void SetShadowStack(ShadowStack* stack) { shadow_stack_ = stack; }
  ShadowStack* shadow_stack() { return shadow_stack_; }
  Status ShadowCall(CodeLabelId return_site);
  Status ShadowReturn(CodeLabelId return_site);

  // ---- Exception / interrupt delivery ----
  void BindHandler(CodeLabelId label, FaultHandler handler);
  // Dispatches through the loaded IDT. Returns non-OK if no gate is installed.
  Status Deliver(const Fault& fault);

  // Statistics.
  uint64_t delivered_faults() const { return delivered_faults_; }

 private:
  uint64_t Msr(uint32_t index) const;
  Status CheckSensitive(const char* what);
  void SyncMsrCache(uint32_t index, uint64_t value);
  void FlushTlb();
  void ApplyTlbInvalidation(const TlbInvalidation& inv);

  int index_;
  PhysMemory* memory_;
  CodeRegistry* registry_;
  const CycleModel* costs_;
  CycleCounter cycles_;

  CpuMode mode_ = CpuMode::kSupervisor;
  Gprs gprs_;
  uint64_t cr0_ = cr::kCr0Wp;
  uint64_t cr3_ = 0;
  uint64_t cr4_ = 0;
  bool ac_flag_ = false;
  bool fence_enabled_ = false;
  bool in_monitor_ = false;
  const KeyIdMap* keyid_map_ = nullptr;

  std::map<uint32_t, uint64_t> msrs_;
  uint64_t pkrs_cache_ = 0;  // mirror of msrs_[IA32_PKRS]
  uint64_t scet_cache_ = 0;  // mirror of msrs_[IA32_S_CET]
  Tlb tlb_;
  std::vector<Cpu*> tlb_peers_;
  // Pending cross-CPU invalidations (posted by peers under the real-thread
  // engine; drained by this CPU's own thread at gate boundaries).
  std::mutex tlb_queue_mu_;
  std::vector<TlbInvalidation> tlb_queue_;
  std::atomic<bool> tlb_queue_pending_{false};
  uint64_t tlb_drained_ = 0;  // ops ever drained (own-thread counter)
  const IdtTable* idt_ = nullptr;
  TdcallSink* tdcall_sink_ = nullptr;
  ShadowStack* shadow_stack_ = nullptr;
  std::map<CodeLabelId, FaultHandler> handlers_;
  uint64_t delivered_faults_ = 0;
};

}  // namespace erebor

#endif  // EREBOR_SRC_HW_CPU_H_
