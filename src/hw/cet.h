// Control-flow Enforcement Technology (CET) simulation: indirect branch tracking (IBT)
// and hardware shadow stacks (SST), per paper section 2.2.
//
// The simulation does not execute machine code, so control-flow transfers are modelled
// through a code-label registry: every entry point that software can branch to
// indirectly is registered as a CodeLabel, optionally marked as starting with endbr64.
// Cpu::IndirectBranch() performs the IBT check (#CP if the target lacks endbr64), and
// ShadowStack models the write-protected return-address stack with activation tokens.
#ifndef EREBOR_SRC_HW_CET_H_
#define EREBOR_SRC_HW_CET_H_

#include <functional>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/hw/types.h"

namespace erebor {

using CodeLabelId = uint32_t;
inline constexpr CodeLabelId kInvalidCodeLabel = 0;

// Which software component owns a label (diagnostics + W^X modelling).
enum class CodeDomain : uint8_t { kKernel, kMonitor, kUser };

struct CodeLabel {
  std::string name;
  CodeDomain domain = CodeDomain::kKernel;
  bool endbr = false;  // first instruction is endbr64 (valid indirect-branch target)
};

// Registry of all branch targets in the simulated system.
class CodeRegistry {
 public:
  CodeLabelId Register(std::string name, CodeDomain domain, bool endbr);

  const CodeLabel* Lookup(CodeLabelId id) const;

  size_t size() const { return labels_.size(); }

 private:
  std::vector<CodeLabel> labels_;  // index 0 reserved (invalid)
};

// Hardware shadow stack: per-logical-core, write-protected, with a busy token so only
// one core can activate a given stack at a time.
class ShadowStack {
 public:
  explicit ShadowStack(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  // Token handling: activation fails if the stack is already active on another core.
  Status Activate(int cpu_index);
  void Deactivate();
  bool active() const { return active_cpu_ >= 0; }

  void PushReturn(CodeLabelId return_site) { frames_.push_back(return_site); }

  // Pops and verifies against the actual return site; mismatch -> #CP.
  StatusOr<CodeLabelId> PopReturn(CodeLabelId actual_return_site);

  size_t depth() const { return frames_.size(); }

 private:
  std::string name_;
  std::vector<CodeLabelId> frames_;
  int active_cpu_ = -1;
};

}  // namespace erebor

#endif  // EREBOR_SRC_HW_CET_H_
