// External interrupt controller: a cycle-driven APIC timer per CPU, device interrupts
// and IPIs. The untrusted host can also inject interrupts (asynchronous CVM exits).
#ifndef EREBOR_SRC_HW_INTERRUPTS_H_
#define EREBOR_SRC_HW_INTERRUPTS_H_

#include <deque>
#include <vector>

#include "src/hw/cpu.h"
#include "src/hw/types.h"

namespace erebor {

class InterruptController {
 public:
  explicit InterruptController(int num_cpus);

  // Timer period in cycles (0 disables). Applies to all CPUs.
  void SetTimerPeriod(Cycles period) { timer_period_ = period; }
  Cycles timer_period() const { return timer_period_; }

  // Queues an interrupt for a CPU (device or IPI).
  void Inject(int cpu_index, Vector vector);

  // Returns the next pending vector for the CPU, if any, considering both the queue and
  // the timer deadline against the CPU's cycle counter.
  bool HasPending(const Cpu& cpu) const;
  StatusOr<Vector> TakePending(Cpu& cpu);

  uint64_t timer_fires() const { return timer_fires_; }

 private:
  Cycles timer_period_ = 0;
  std::vector<std::deque<Vector>> queues_;
  std::vector<Cycles> next_timer_;
  uint64_t timer_fires_ = 0;
};

}  // namespace erebor

#endif  // EREBOR_SRC_HW_INTERRUPTS_H_
