#include "src/hw/interrupts.h"

namespace erebor {

InterruptController::InterruptController(int num_cpus)
    : queues_(num_cpus), next_timer_(num_cpus, 0) {}

void InterruptController::Inject(int cpu_index, Vector vector) {
  if (cpu_index >= 0 && static_cast<size_t>(cpu_index) < queues_.size()) {
    queues_[cpu_index].push_back(vector);
  }
}

bool InterruptController::HasPending(const Cpu& cpu) const {
  const int i = cpu.index();
  if (!queues_[i].empty()) {
    return true;
  }
  return timer_period_ != 0 && cpu.cycles().now() >= next_timer_[i];
}

StatusOr<Vector> InterruptController::TakePending(Cpu& cpu) {
  const int i = cpu.index();
  if (!queues_[i].empty()) {
    const Vector v = queues_[i].front();
    queues_[i].pop_front();
    return v;
  }
  if (timer_period_ != 0 && cpu.cycles().now() >= next_timer_[i]) {
    next_timer_[i] = cpu.cycles().now() + timer_period_;
    ++timer_fires_;
    return Vector::kTimer;
  }
  return NotFoundError("no pending interrupt");
}

}  // namespace erebor
