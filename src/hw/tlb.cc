#include "src/hw/tlb.h"

#include <algorithm>
#include <cstdlib>

#include "src/common/exec.h"
#include "src/common/metrics.h"

namespace erebor {

namespace {

bool EnvEnabled() {
  // EREBOR_TLB=0 disables; anything else (including unset) enables.
  const char* env = std::getenv("EREBOR_TLB");
  return env == nullptr || env[0] != '0';
}

// -1 unset, 0 forced off, 1 forced on.
int& Override() {
  static int value = -1;
  return value;
}

// Mixes the key bits so distinct (root, page, mode) triples spread across the
// direct-mapped arrays; roots and pages are both 4 KiB-aligned.
uint64_t Mix(uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

Tlb::Tlb()
    : leaf_(kLeafEntries),
      leaf_tags_(kLeafEntries, 0),
      tag_buckets_(kLeafEntries),
      structure_(kStructureEntries),
      structure_filter_(kStructureFilterBuckets, 0) {
  // Opportunistically (re-)register the aggregate counters; MetricsRegistry::Reset()
  // drops external registrations, and worlds construct Machines often, so the latest
  // construction re-binds them.
  MetricsRegistry& registry = MetricsRegistry::Global();
  Stats& stats = GlobalStats();
  registry.RegisterExternalCounter("tlb.hits", &stats.hits);
  registry.RegisterExternalCounter("tlb.psc_hits", &stats.psc_hits);
  registry.RegisterExternalCounter("tlb.misses", &stats.misses);
  registry.RegisterExternalCounter("tlb.flushes", &stats.flushes);
  registry.RegisterExternalCounter("tlb.invlpg", &stats.invlpg);
  registry.RegisterExternalCounter("tlb.shootdowns", &stats.shootdowns);
  registry.RegisterExternalCounter("paging.walk_read64s", &PageTableWalkReads());
}

bool Tlb::Enabled() {
  if (Override() >= 0) {
    return Override() != 0;
  }
  static const bool env_enabled = EnvEnabled();
  return env_enabled;
}

void Tlb::SetEnabled(bool enabled) { Override() = enabled ? 1 : 0; }

Tlb::Hooks& Tlb::hooks() {
  static Hooks hooks;
  return hooks;
}

Tlb::Stats& Tlb::GlobalStats() {
  static Stats stats;
  return stats;
}

void Tlb::ResetGlobalStats() { GlobalStats() = Stats{}; }

size_t Tlb::LeafIndex(Paddr root, Vaddr va, CpuMode mode) {
  const uint64_t mode_salt = mode == CpuMode::kUser ? 0x9E3779B97F4A7C15ULL : 0;
  return Mix((va >> kPageShift) ^ (root << 17) ^ mode_salt) & (kLeafEntries - 1);
}

size_t Tlb::StructureIndex(Paddr root, Vaddr va) {
  return Mix((va >> 21) ^ (root << 13)) & (kStructureEntries - 1);
}

StatusOr<WalkResult> Tlb::WalkCached(const PhysMemory& memory, Paddr root, Vaddr va,
                                     CpuMode mode) {
  if (!Enabled()) {
    return WalkPageTables(memory, root, va);
  }
  const Vaddr va_page = va & ~kPageMask;

  LeafEntry& le = leaf_[LeafIndex(root, va, mode)];
  if (le.valid && le.gen == generation_ && le.root == root && le.va_page == va_page &&
      le.mode == mode) {
    CounterAdd(GlobalStats().hits);
    WalkResult result = le.result;
    result.pa = le.pa_page + (va & kPageMask);
    return result;
  }

  StructureEntry& se = structure_[StructureIndex(root, va)];
  if (se.valid && se.gen == generation_ && se.root == root && se.region == (va >> 21)) {
    // One leaf read instead of a four-level descent. The structure entry is only
    // created from a walk that reached a level-0 table, so a non-present leaf here
    // fails exactly like the full walk: at level 0.
    CounterAdd(GlobalStats().psc_hits);
    const Paddr slot = se.l1_table + PteIndex(va, 0) * sizeof(Pte);
    const Pte entry = memory.Read64(slot);
    CounterAdd(PageTableWalkReads());
    if (!pte::Present(entry)) {
      return NotFoundError("non-present PTE at level 0");
    }
    WalkResult result;
    result.leaf = entry;
    result.level = 0;
    result.leaf_entry_pa = slot;
    result.user_accessible = se.inter_user && pte::User(entry);
    result.writable = se.inter_writable && pte::Writable(entry);
    result.no_execute = se.inter_nx || pte::NoExecute(entry);
    result.pkey = pte::Pkey(entry);
    result.shadow_stack = pte::IsShadowStack(entry);
    result.pa = (pte::Frame(entry) << kPageShift) + (va & kPageMask);
    Insert(root, va, mode, result);
    return result;
  }

  CounterAdd(GlobalStats().misses);
  WalkPath path;
  auto walk = WalkPageTables(memory, root, va, &path);
  // Cache the intermediate path whenever the walk reached the level-0 table, even if
  // the leaf itself was non-present (demand-fault streams probe fresh pages in already
  // -built regions). Failed *results* are never cached, so a subsequent MapPage needs
  // no invalidation to become visible.
  if (path.leaf_table != 0) {
    InsertStructure(root, va, path);
  }
  if (walk.ok()) {
    Insert(root, va, mode, *walk);
  }
  return walk;
}

void Tlb::TagInsert(Paddr pa, size_t slot) {
  TagBucket& bucket = tag_buckets_[Mix(pa) & (kLeafEntries - 1)];
  if (bucket.count < kTagWays) {
    bucket.slot[bucket.count++] = static_cast<uint16_t>(slot);
  } else {
    bucket.overflow = true;  // fall back to the tag-array scan for this hash class
  }
}

void Tlb::TagRemove(Paddr pa, size_t slot) {
  TagBucket& bucket = tag_buckets_[Mix(pa) & (kLeafEntries - 1)];
  for (int i = 0; i < bucket.count; ++i) {
    if (bucket.slot[i] == slot) {
      bucket.slot[i] = bucket.slot[--bucket.count];
      return;
    }
  }
  // Not present: the insert overflowed; the overflow scan still covers the slot.
}

void Tlb::ClearLeafSlot(size_t slot) {
  leaf_[slot].valid = false;
  if (leaf_tags_[slot] != 0) {
    TagRemove(leaf_tags_[slot], slot);
    leaf_tags_[slot] = 0;
  }
}

void Tlb::FilterAdd(const StructureEntry& se) {
  for (Paddr pa : se.path_pa) {
    if (pa != 0) {
      ++structure_filter_[Mix(pa) & (kStructureFilterBuckets - 1)];
    }
  }
}

void Tlb::FilterRemove(const StructureEntry& se) {
  for (Paddr pa : se.path_pa) {
    if (pa != 0) {
      uint16_t& count = structure_filter_[Mix(pa) & (kStructureFilterBuckets - 1)];
      if (count > 0) {
        --count;
      }
    }
  }
}

void Tlb::Insert(Paddr root, Vaddr va, CpuMode mode, const WalkResult& result) {
  const size_t index = LeafIndex(root, va, mode);
  LeafEntry& le = leaf_[index];
  if (leaf_tags_[index] != result.leaf_entry_pa) {
    if (leaf_tags_[index] != 0) {
      TagRemove(leaf_tags_[index], index);
    }
    if (result.leaf_entry_pa != 0) {
      TagInsert(result.leaf_entry_pa, index);
    }
    leaf_tags_[index] = result.leaf_entry_pa;
  }
  le.valid = true;
  le.gen = generation_;
  le.mode = mode;
  le.root = root;
  le.va_page = va & ~kPageMask;
  le.pa_page = result.pa - (va & kPageMask);
  le.result = result;
}

void Tlb::InsertStructure(Paddr root, Vaddr va, const WalkPath& path) {
  StructureEntry& se = structure_[StructureIndex(root, va)];
  if (se.valid) {
    FilterRemove(se);
  }
  se.valid = true;
  se.gen = generation_;
  se.root = root;
  se.region = va >> 21;
  se.l1_table = path.leaf_table;
  for (int i = 0; i < kPagingLevels - 1; ++i) {
    se.path_pa[i] = path.entry_pa[i + 1];  // levels 1..3
  }
  se.inter_user = path.inter_user;
  se.inter_writable = path.inter_writable;
  se.inter_nx = path.inter_nx;
  FilterAdd(se);
}

void Tlb::FlushAll() {
  // O(1): stamped entries go stale without being touched. Occupancy bookkeeping
  // (tags, buckets, filter) survives and is reclaimed slot-by-slot on reuse.
  CounterAdd(GlobalStats().flushes);
  ++generation_;
}

void Tlb::FlushRoot(Paddr root) {
  for (size_t i = 0; i < leaf_.size(); ++i) {
    if (leaf_[i].valid && leaf_[i].root == root) {
      ClearLeafSlot(i);
    }
  }
  for (StructureEntry& se : structure_) {
    if (se.valid && se.root == root) {
      se.valid = false;
      FilterRemove(se);
    }
  }
}

void Tlb::InvalidatePage(Paddr root, Vaddr va) {
  const Vaddr va_page = va & ~kPageMask;
  for (CpuMode mode : {CpuMode::kSupervisor, CpuMode::kUser}) {
    const size_t index = LeafIndex(root, va, mode);
    LeafEntry& le = leaf_[index];
    if (le.valid && le.root == root && le.va_page == va_page && le.mode == mode) {
      ClearLeafSlot(index);
    }
  }
}

void Tlb::ShootdownEntry(Paddr entry_pa) {
  if (entry_pa == 0) {
    return;  // 0 doubles as the "empty" tag
  }
  TagBucket& bucket = tag_buckets_[Mix(entry_pa) & (kLeafEntries - 1)];
  if (bucket.overflow) {
    for (size_t i = 0; i < leaf_tags_.size(); ++i) {
      if (leaf_tags_[i] == entry_pa) {
        ClearLeafSlot(i);
      }
    }
  } else {
    // Distinct pas share buckets, so re-check the tag before dropping a slot.
    // ClearLeafSlot swap-removes from this bucket, hence the backwards walk.
    for (int i = bucket.count - 1; i >= 0; --i) {
      const size_t slot = bucket.slot[i];
      if (leaf_tags_[slot] == entry_pa) {
        ClearLeafSlot(slot);
      }
    }
  }
  if (structure_filter_[Mix(entry_pa) & (kStructureFilterBuckets - 1)] == 0) {
    return;  // no cached intermediate path traverses this entry
  }
  for (StructureEntry& se : structure_) {
    if (!se.valid) {
      continue;
    }
    for (Paddr pa : se.path_pa) {
      if (pa == entry_pa) {
        se.valid = false;
        FilterRemove(se);
        break;
      }
    }
  }
}

bool PteRevokesPermissions(Pte old_value, Pte new_value) {
  if (!pte::Present(old_value)) {
    return false;
  }
  if (!pte::Present(new_value)) {
    return true;
  }
  if ((old_value & pte::kFrameMask) != (new_value & pte::kFrameMask)) {
    return true;
  }
  if (pte::Writable(old_value) && !pte::Writable(new_value)) {
    return true;
  }
  if (pte::User(old_value) != pte::User(new_value)) {
    return true;
  }
  if (!pte::NoExecute(old_value) && pte::NoExecute(new_value)) {
    return true;
  }
  if (pte::Pkey(old_value) != pte::Pkey(new_value)) {
    return true;
  }
  // A keyID change (TME-MK, bits 52..62; superset of the pkey field) changes
  // what an access through a cached translation does — treat as a revocation.
  if (pte::KeyId(old_value) != pte::KeyId(new_value)) {
    return true;
  }
  if (pte::IsShadowStack(old_value) != pte::IsShadowStack(new_value)) {
    return true;
  }
  return false;
}

}  // namespace erebor
