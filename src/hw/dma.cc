#include "src/hw/dma.h"

namespace erebor {

Status DmaEngine::CheckShared(Paddr pa, uint64_t len) {
  if (!memory_->Contains(pa, len)) {
    return OutOfRangeError("DMA outside physical memory");
  }
  for (FrameNum f = FrameOf(pa); f <= FrameOf(pa + len - 1); ++f) {
    if (!memory_->IsShared(f)) {
      ++blocked_;
      return PermissionDeniedError("IOMMU: DMA to private CVM frame " + std::to_string(f));
    }
  }
  return OkStatus();
}

Status DmaEngine::DeviceRead(Paddr pa, uint8_t* out, uint64_t len) {
  EREBOR_RETURN_IF_ERROR(CheckShared(pa, len));
  return memory_->Read(pa, out, len);
}

Status DmaEngine::DeviceWrite(Paddr pa, const uint8_t* data, uint64_t len) {
  EREBOR_RETURN_IF_ERROR(CheckShared(pa, len));
  return memory_->Write(pa, data, len);
}

}  // namespace erebor
