// Cross-CVM architectural feature mapping (paper section 10, Table 7).
//
// Erebor's monitor needs, per platform: controllable registers, a context-switch
// table, a guest-host interface, kernel/user separation, a kernel memory-protection
// key mechanism, and forward+backward HW-CFI. TDX/SEV/CCA all provide them — except
// SEV's missing PKS, for which the Nested-Kernel fallback (private page tables +
// write protection) gives the same policy at a higher per-PTE cost; the SevCycleModel
// captures that.
#ifndef EREBOR_SRC_HW_PLATFORM_H_
#define EREBOR_SRC_HW_PLATFORM_H_

#include <array>
#include <string>

#include "src/hw/cycles.h"

namespace erebor {

enum class CvmPlatform : uint8_t { kIntelTdx, kAmdSev, kArmCca };

struct PlatformFeatures {
  CvmPlatform platform;
  std::string name;
  std::string registers;        // privileged register file
  std::string context_switch;   // exception/interrupt vector control
  std::string ghci;             // guest-host interface instruction
  std::string ku_separation;    // kernel-user separation
  std::string protection_key;   // supervisor memory keying
  std::string cfi_forward;
  std::string cfi_backward;
  bool has_native_pks;          // false -> Nested-Kernel private-mapping fallback
};

inline const std::array<PlatformFeatures, 3>& CvmPlatformTable() {
  static const std::array<PlatformFeatures, 3> kTable = {{
      {CvmPlatform::kIntelTdx, "TDX", "CR/MSR", "IDT", "tdcall", "SMEP/SMAP", "PKS",
       "IBT", "SST", true},
      {CvmPlatform::kAmdSev, "SEV", "CR/MSR", "IDT", "vmgexit", "SMEP/SMAP",
       "page table (fallback)", "IBT", "SST", false},
      {CvmPlatform::kArmCca, "CCA", "EL1 Regs", "VBAR", "smc", "PXN/PAN", "PIE", "BTI",
       "GCS", true},
  }};
  return kTable;
}

// Cycle model for an SEV deployment: without PKS, monitor/PTP protection falls back to
// Nested-Kernel private page-table mappings with CR0.WP switching — "similar memory
// protection ... at a slightly higher cost" (section 10). The gate no longer flips
// PKRS but must switch the active translation view, and every monitor-validated PTE
// write pays the write-protect toggle.
inline CycleModel SevCycleModel() {
  CycleModel model;
  // Entry/exit switch the private mapping (CR3-class write each way) instead of two
  // PKRS wrmsr; slightly more expensive round trip.
  model.emc_round_trip = 1224 + 2 * (model.native_cr_write - model.native_wrmsr) + 300;
  // Each PTE write toggles CR0.WP around the store.
  model.monitor_pte_op = 121 + 2 * model.native_cr_write;
  return model;
}

// Cycle model for the TME-MK isolation backend (TME-Box-style keyID
// confinement). The EMC gate no longer flips PKRS — the monitor's keyID view
// follows the gate context — so the round trip drops the two wrmsr and keeps
// only the stack switch + CET discipline. PTE writes gain a keyID-field check
// on top of the PKS-era policy work, and the #INT gate saves/restores a view
// token instead of PKRS (no wrmsr pair). Domain setup pays PCONFIG + per-frame
// binding costs instead (CycleModel::pconfig_key_program / frame_bind_op).
inline CycleModel TmeMkCycleModel(CycleModel base = CycleModel{}) {
  CycleModel model = base;
  model.emc_round_trip =
      base.emc_round_trip - 2 * base.native_wrmsr + 2 * 24;  // 1224 -> 544
  model.monitor_pte_op = base.monitor_pte_op + 12;           // keyID-field check
  model.int_gate_overhead = base.int_gate_overhead - 114;    // no PKRS wrmsr pair
  return model;
}

inline CycleModel PlatformCycleModel(CvmPlatform platform) {
  switch (platform) {
    case CvmPlatform::kAmdSev:
      return SevCycleModel();
    case CvmPlatform::kIntelTdx:
    case CvmPlatform::kArmCca:
      return CycleModel{};
  }
  return CycleModel{};
}

}  // namespace erebor

#endif  // EREBOR_SRC_HW_PLATFORM_H_
