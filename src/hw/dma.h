// Device DMA engine. In a TDX CVM, devices (directed by the untrusted host) can only
// touch *shared* guest memory; the host IOMMU + TDX module deny DMA to private frames
// (paper section 2.1). Attack tests drive this path directly.
#ifndef EREBOR_SRC_HW_DMA_H_
#define EREBOR_SRC_HW_DMA_H_

#include "src/common/status.h"
#include "src/hw/phys_mem.h"

namespace erebor {

class DmaEngine {
 public:
  explicit DmaEngine(PhysMemory* memory) : memory_(memory) {}

  // Device-initiated read/write of guest physical memory. Every touched frame must be
  // shared; otherwise the transaction is rejected (kPermissionDenied).
  Status DeviceRead(Paddr pa, uint8_t* out, uint64_t len);
  Status DeviceWrite(Paddr pa, const uint8_t* data, uint64_t len);

  uint64_t blocked_transactions() const { return blocked_; }

 private:
  Status CheckShared(Paddr pa, uint64_t len);

  PhysMemory* memory_;
  uint64_t blocked_ = 0;
};

}  // namespace erebor

#endif  // EREBOR_SRC_HW_DMA_H_
