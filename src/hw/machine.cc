#include "src/hw/machine.h"

#include "src/common/exec.h"
#include "src/common/trace.h"

namespace erebor {

Machine::Machine(const MachineConfig& config)
    : config_(config),
      memory_(config.memory_frames),
      interrupts_(config.num_cpus),
      dma_(&memory_) {
  for (int i = 0; i < config.num_cpus; ++i) {
    cpus_.push_back(std::make_unique<Cpu>(i, &memory_, &registry_, &config_.cycles));
  }
  // Every CPU sees every TLB (its own included) so kernel invlpg broadcasts reach
  // all cores without a Machine back-pointer in Cpu.
  std::vector<Cpu*> peers;
  for (auto& cpu : cpus_) {
    peers.push_back(cpu.get());
  }
  for (auto& cpu : cpus_) {
    cpu->SetTlbPeers(peers);
  }
}

void Machine::FlushAllTlbs() {
  if (!Tlb::Enabled()) {
    return;  // the caches are empty; skip the per-CPU scans
  }
  const TlbInvalidation inv{TlbInvalidation::Kind::kAll, 0, 0, 0};
  for (auto& cpu : cpus_) {
    cpu->RequestTlbInvalidation(inv);
  }
}

void Machine::FlushTlbRoot(Paddr root) {
  if (!Tlb::Enabled()) {
    return;
  }
  const TlbInvalidation inv{TlbInvalidation::Kind::kRoot, root, 0, 0};
  for (auto& cpu : cpus_) {
    cpu->RequestTlbInvalidation(inv);
  }
}

void Machine::ShootdownTlbLeaf(Paddr entry_pa, int initiating_cpu) {
  // Trace + count unconditionally so event streams are identical across EREBOR_TLB
  // settings; only the (pointless, scan-heavy) cache maintenance is skipped when the
  // TLB is globally off.
  Tracer::Global().Record(TraceEvent::kTlbShootdown, initiating_cpu,
                          cpus_[initiating_cpu]->cycles().now(), -1, entry_pa);
  CounterAdd(Tlb::GlobalStats().shootdowns);
  if (!Tlb::Enabled()) {
    return;
  }
  const TlbInvalidation inv{TlbInvalidation::Kind::kEntry, 0, 0, entry_pa};
  for (auto& cpu : cpus_) {
    cpu->RequestTlbInvalidation(inv);
  }
}

Cycles Machine::TotalCycles() const {
  Cycles total = 0;
  for (const auto& cpu : cpus_) {
    total += cpu->cycles().now();
  }
  return total;
}

}  // namespace erebor
