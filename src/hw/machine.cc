#include "src/hw/machine.h"

namespace erebor {

Machine::Machine(const MachineConfig& config)
    : config_(config),
      memory_(config.memory_frames),
      interrupts_(config.num_cpus),
      dma_(&memory_) {
  for (int i = 0; i < config.num_cpus; ++i) {
    cpus_.push_back(std::make_unique<Cpu>(i, &memory_, &registry_, &config_.cycles));
  }
}

Cycles Machine::TotalCycles() const {
  Cycles total = 0;
  for (const auto& cpu : cpus_) {
    total += cpu->cycles().now();
  }
  return total;
}

}  // namespace erebor
