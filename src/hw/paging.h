// x86-64-style 4-level paging structures and walker over simulated physical memory.
//
// Page tables are real in-simulation data: page-table pages (PTPs) are 4 KiB frames of
// 512 64-bit entries living in PhysMemory, written by the guest kernel (natively) or by
// the Erebor monitor (when MMU interfaces are virtualized). The walker is used by the
// CPU for every checked access, so PTE-level protections (U/S, W, NX, protection keys,
// shadow-stack encoding) are enforced exactly where the paper relies on them.
#ifndef EREBOR_SRC_HW_PAGING_H_
#define EREBOR_SRC_HW_PAGING_H_

#include <functional>
#include <optional>

#include "src/common/status.h"
#include "src/hw/phys_mem.h"
#include "src/hw/types.h"

namespace erebor {

using Pte = uint64_t;

namespace pte {
inline constexpr Pte kPresent = 1ULL << 0;
inline constexpr Pte kWritable = 1ULL << 1;
inline constexpr Pte kUser = 1ULL << 2;
inline constexpr Pte kAccessed = 1ULL << 5;
inline constexpr Pte kDirty = 1ULL << 6;
inline constexpr Pte kPageSize = 1ULL << 7;  // huge-page leaf at L2/L3
inline constexpr Pte kNoExecute = 1ULL << 63;

inline constexpr int kPkeyShift = 59;
inline constexpr Pte kPkeyMask = 0xFULL << kPkeyShift;

// TME-MK encryption keyID field: the high PTE bits between the frame number
// (ends at bit 51) and NX (bit 63), i.e. bits 52..62 — 11 bits, 2048 keyIDs.
// It deliberately overlaps the 4-bit PKS pkey field (bits 59..62): a world runs
// exactly one isolation backend, so the bits are interpreted by at most one
// mechanism at a time.
inline constexpr int kKeyIdShift = 52;
inline constexpr int kKeyIdBits = 11;
inline constexpr Pte kKeyIdMask = ((Pte{1} << kKeyIdBits) - 1) << kKeyIdShift;

inline constexpr Pte kFrameMask = 0x000FFFFFFFFFF000ULL;

inline constexpr Pte Make(FrameNum frame, Pte flags) {
  return ((frame << kPageShift) & kFrameMask) | flags;
}
inline constexpr FrameNum Frame(Pte e) { return (e & kFrameMask) >> kPageShift; }
inline constexpr bool Present(Pte e) { return (e & kPresent) != 0; }
inline constexpr bool Writable(Pte e) { return (e & kWritable) != 0; }
inline constexpr bool User(Pte e) { return (e & kUser) != 0; }
inline constexpr bool NoExecute(Pte e) { return (e & kNoExecute) != 0; }
inline constexpr uint8_t Pkey(Pte e) { return static_cast<uint8_t>((e & kPkeyMask) >> kPkeyShift); }
inline constexpr Pte WithPkey(Pte e, uint8_t key) {
  return (e & ~kPkeyMask) | (static_cast<Pte>(key & 0xF) << kPkeyShift);
}
inline constexpr uint32_t KeyId(Pte e) {
  return static_cast<uint32_t>((e & kKeyIdMask) >> kKeyIdShift);
}
inline constexpr Pte WithKeyId(Pte e, uint32_t keyid) {
  return (e & ~kKeyIdMask) | ((static_cast<Pte>(keyid) << kKeyIdShift) & kKeyIdMask);
}
// CET shadow-stack leaf encoding: not-writable but dirty (see paper section 2.2).
inline constexpr bool IsShadowStack(Pte e) {
  return Present(e) && !Writable(e) && (e & kDirty) != 0 && !User(e);
}
}  // namespace pte

// Virtual-address decomposition: 4 levels x 9 bits + 12-bit offset (48-bit canonical).
inline constexpr int kPagingLevels = 4;
inline constexpr uint64_t kPteEntries = 512;

inline constexpr uint64_t PteIndex(Vaddr va, int level) {
  // level 3 = top (PML4), level 0 = leaf (PT).
  return (va >> (kPageShift + 9 * level)) & (kPteEntries - 1);
}

// Result of a successful translation.
struct WalkResult {
  Paddr pa = 0;             // final physical address (leaf frame + offset)
  Pte leaf = 0;             // leaf entry
  bool user_accessible = false;   // AND of U/S across levels
  bool writable = false;          // AND of W across levels
  bool no_execute = false;        // OR of NX across levels
  uint8_t pkey = 0;               // leaf protection key
  bool shadow_stack = false;      // leaf uses the shadow-stack encoding
  int level = 0;                  // leaf level (0 = 4 KiB page, 1 = 2 MiB page)
  Paddr leaf_entry_pa = 0;        // physical address of the leaf PTE itself
};

// Optional walk-path record, filled (even on a failed walk) when the caller passes
// one to WalkPageTables. The software TLB uses it to build paging-structure-cache
// entries and to know which intermediate entries a cached translation depends on.
struct WalkPath {
  // Physical address of the entry read at each level actually visited (index = level).
  Paddr entry_pa[kPagingLevels] = {0, 0, 0, 0};
  int deepest = kPagingLevels;  // lowest level whose entry was read; 4 = none
  Paddr leaf_table = 0;         // base of the level-0 table, set only if reached
  // Permission aggregates over the intermediate levels traversed (3..1), i.e. the
  // walk state just before the leaf entry is applied.
  bool inter_user = true;
  bool inter_writable = true;
  bool inter_nx = false;
};

// Walks the tables rooted at `root` (physical address of the PML4 frame). Returns
// kNotFound if a level is non-present, with the failing level in the message.
StatusOr<WalkResult> WalkPageTables(const PhysMemory& memory, Paddr root, Vaddr va);
StatusOr<WalkResult> WalkPageTables(const PhysMemory& memory, Paddr root, Vaddr va,
                                    WalkPath* path);

// Process-wide count of page-table PTE reads performed by walks (full walks and the
// TLB's structure-cache-assisted leaf reads). Plain counter: the benches sample it
// around hot loops to measure how many physical reads the TLB avoids.
uint64_t& PageTableWalkReads();

// Builds page-table entries on behalf of software. `AllocFrameFn` supplies zeroed
// frames for intermediate PTPs. All PTE stores go through `write_pte` so the caller can
// route them through EMC when Erebor virtualizes the MMU.
struct PteWriter {
  // write_pte(entry_pa, value): store a PTE. Returns non-OK if refused.
  std::function<Status(Paddr, Pte)> write_pte;
  // alloc_ptp(): allocate + zero a frame for an intermediate page-table page.
  std::function<StatusOr<FrameNum>()> alloc_ptp;
};

// Maps `va` -> frame with leaf flags. Creates intermediate levels as needed, with
// intermediate flags Present|Writable|(User if leaf has User).
Status MapPage(PhysMemory& memory, Paddr root, Vaddr va, FrameNum frame, Pte leaf_flags,
               const PteWriter& writer);

// Clears the leaf PTE for `va` (no PTP reclamation; matches minimal-kernel behaviour).
Status UnmapPage(PhysMemory& memory, Paddr root, Vaddr va, const PteWriter& writer);

// Rewrites the leaf PTE flags for an existing mapping (e.g. dropping kWritable).
Status ProtectPage(PhysMemory& memory, Paddr root, Vaddr va, Pte new_flags,
                   const PteWriter& writer);

}  // namespace erebor

#endif  // EREBOR_SRC_HW_PAGING_H_
