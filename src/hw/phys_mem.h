// Simulated guest physical memory.
//
// Frames are 4 KiB and allocated lazily so that a "24 GB" guest can be modelled without
// committing host RAM. Each frame carries TDX attributes (private vs shared) that are
// settable only through the TDX module (tdcall MapGPA); device DMA is checked against
// them, reproducing the CVM memory-protection rules of paper section 2.1.
#ifndef EREBOR_SRC_HW_PHYS_MEM_H_
#define EREBOR_SRC_HW_PHYS_MEM_H_

#include <memory>
#include <vector>

#include "src/common/status.h"
#include "src/hw/types.h"

namespace erebor {

class TdxModule;  // friend: the only component allowed to flip private/shared

class PhysMemory {
 public:
  explicit PhysMemory(uint64_t num_frames);

  uint64_t num_frames() const { return num_frames_; }
  uint64_t size_bytes() const { return num_frames_ * kPageSize; }

  bool Contains(Paddr pa, uint64_t len = 1) const {
    return pa + len <= size_bytes() && pa + len >= pa;
  }

  // Raw access, used by the CPU *after* translation checks and by trusted components
  // (TDX module). May cross frame boundaries.
  Status Read(Paddr pa, uint8_t* out, uint64_t len) const;
  Status Write(Paddr pa, const uint8_t* data, uint64_t len);

  uint64_t Read64(Paddr pa) const;
  void Write64(Paddr pa, uint64_t value);

  // Zero an entire frame (used for scrubbing).
  void ZeroFrame(FrameNum frame);

  // Direct pointer to a frame's backing storage (allocating it if needed). Callers must
  // have performed their own permission checks; this is the simulation's "DRAM bus".
  uint8_t* FramePtr(FrameNum frame);
  const uint8_t* FramePtrIfPresent(FrameNum frame) const;

  // TDX attribute: shared frames are visible to the host and devices; private frames
  // are CVM-only. Boot state: everything private.
  bool IsShared(FrameNum frame) const;

  // Count of frames whose backing store has been touched (memory-footprint metric).
  uint64_t CommittedFrames() const { return committed_frames_; }

 private:
  friend class TdxModule;
  void SetShared(FrameNum frame, bool shared);  // TDX module only

  uint64_t num_frames_;
  mutable std::vector<std::unique_ptr<uint8_t[]>> frames_;
  std::vector<uint8_t> shared_;  // 0 = private, 1 = shared
  mutable uint64_t committed_frames_ = 0;

  uint8_t* EnsureFrame(FrameNum frame) const;
};

}  // namespace erebor

#endif  // EREBOR_SRC_HW_PHYS_MEM_H_
