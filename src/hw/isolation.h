// Hardware-level isolation-mechanism types shared by the CPU and the monitor's
// pluggable IsolationBackend seam (src/monitor/isolation.h).
//
// Two mechanisms are modelled:
//  - PKS: supervisor protection keys in PTE bits 59..62, checked against
//    IA32_PKRS on supervisor data accesses (see Cpu::TranslateAs). All PKS
//    state lives on the Cpu; nothing here is needed beyond the enum.
//  - TME-MK: memory-encryption keyIDs in PTE bits 52..62, enforced at the
//    memory controller. The KeyIdMap below is that controller state: one
//    binding per physical frame, programmed by the monitor (PCONFIG-style).
//    An access whose mapping keyID differs from the frame's binding reads
//    ciphertext on real hardware; the simulation surfaces it as a #PF with
//    the protection-key error bit, the same observable the PKS backend uses.
#ifndef EREBOR_SRC_HW_ISOLATION_H_
#define EREBOR_SRC_HW_ISOLATION_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/hw/types.h"

namespace erebor {

enum class IsolationKind : uint8_t {
  kPks,    // 16 supervisor protection keys (PTE bits 59..62 + IA32_PKRS)
  kTmeMk,  // TME-MK encryption keyIDs (PTE bits 52..62, per-frame bindings)
};

inline const char* IsolationKindName(IsolationKind kind) {
  switch (kind) {
    case IsolationKind::kPks:
      return "pks";
    case IsolationKind::kTmeMk:
      return "tme-mk";
  }
  return "unknown";
}

// Per-frame keyID binding table — the simulated memory-controller state for
// TME-MK. A binding is a keyID plus a read-shared bit: read-shared frames
// (kernel text, page-table pages) may be read/fetched through any keyID but
// written only through the bound one; private frames (monitor state, sandbox
// confined memory) require an exact keyID match for every access.
//
// Slots are relaxed atomics so vCPU threads under the real-thread engine can
// check translations while the monitor (serialized by the EMC lock) rebinds:
// each slot is an independent word, and the monitor's shootdown protocol
// already orders rebinds against stale cached translations.
class KeyIdMap {
 public:
  static constexpr uint32_t kKeyMask = 0x7FFu;         // 11-bit keyID
  static constexpr uint32_t kReadSharedBit = 1u << 31;

  explicit KeyIdMap(uint64_t num_frames) : slots_(num_frames) {}

  uint64_t num_frames() const { return slots_.size(); }

  void Bind(FrameNum frame, uint32_t keyid, bool read_shared) {
    if (frame >= slots_.size()) {
      return;
    }
    slots_[frame].store((keyid & kKeyMask) | (read_shared ? kReadSharedBit : 0),
                        std::memory_order_relaxed);
  }

  uint32_t KeyOf(FrameNum frame) const {
    if (frame >= slots_.size()) {
      return 0;
    }
    return slots_[frame].load(std::memory_order_relaxed) & kKeyMask;
  }

  bool ReadShared(FrameNum frame) const {
    if (frame >= slots_.size()) {
      return false;
    }
    return (slots_[frame].load(std::memory_order_relaxed) & kReadSharedBit) != 0;
  }

 private:
  std::vector<std::atomic<uint32_t>> slots_;
};

}  // namespace erebor

#endif  // EREBOR_SRC_HW_ISOLATION_H_
