// The simulated machine: physical memory, vCPUs, interrupt controller, DMA engine and
// the code-label registry, bundled with the cycle model.
#ifndef EREBOR_SRC_HW_MACHINE_H_
#define EREBOR_SRC_HW_MACHINE_H_

#include <memory>
#include <vector>

#include "src/hw/cpu.h"
#include "src/hw/dma.h"
#include "src/hw/interrupts.h"
#include "src/hw/phys_mem.h"

namespace erebor {

struct MachineConfig {
  uint64_t memory_frames = 64 * 1024;  // 256 MiB default guest RAM
  int num_cpus = 1;
  CycleModel cycles;
};

class Machine {
 public:
  explicit Machine(const MachineConfig& config);

  PhysMemory& memory() { return memory_; }
  CodeRegistry& registry() { return registry_; }
  InterruptController& interrupts() { return interrupts_; }
  DmaEngine& dma() { return dma_; }
  const CycleModel& costs() const { return config_.cycles; }
  const MachineConfig& config() const { return config_; }

  int num_cpus() const { return static_cast<int>(cpus_.size()); }
  Cpu& cpu(int index) { return *cpus_[index]; }

  // Aggregate cycle count across CPUs (the simulation's notion of elapsed work).
  Cycles TotalCycles() const;

 private:
  MachineConfig config_;
  PhysMemory memory_;
  CodeRegistry registry_;
  InterruptController interrupts_;
  DmaEngine dma_;
  std::vector<std::unique_ptr<Cpu>> cpus_;
};

}  // namespace erebor

#endif  // EREBOR_SRC_HW_MACHINE_H_
