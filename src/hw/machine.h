// The simulated machine: physical memory, vCPUs, interrupt controller, DMA engine and
// the code-label registry, bundled with the cycle model.
#ifndef EREBOR_SRC_HW_MACHINE_H_
#define EREBOR_SRC_HW_MACHINE_H_

#include <memory>
#include <vector>

#include "src/hw/cpu.h"
#include "src/hw/dma.h"
#include "src/hw/interrupts.h"
#include "src/hw/phys_mem.h"

namespace erebor {

struct MachineConfig {
  uint64_t memory_frames = 64 * 1024;  // 256 MiB default guest RAM
  int num_cpus = 1;
  CycleModel cycles;
};

class Machine {
 public:
  explicit Machine(const MachineConfig& config);

  PhysMemory& memory() { return memory_; }
  CodeRegistry& registry() { return registry_; }
  InterruptController& interrupts() { return interrupts_; }
  DmaEngine& dma() { return dma_; }
  const CycleModel& costs() const { return config_.cycles; }
  const MachineConfig& config() const { return config_; }

  int num_cpus() const { return static_cast<int>(cpus_.size()); }
  Cpu& cpu(int index) { return *cpus_[index]; }

  // Aggregate cycle count across CPUs (the simulation's notion of elapsed work).
  Cycles TotalCycles() const;

  // ---- Software-TLB broadcast helpers (no cycle charge; see src/hw/tlb.h) ----
  // Flush every CPU's TLB.
  void FlushAllTlbs();
  // Drop all entries keyed by `root` on every CPU (address-space teardown, where the
  // root frame may be recycled). Always on — not a test-toggleable hook.
  void FlushTlbRoot(Paddr root);
  // Monitor/kernel shootdown by leaf-PTE physical address across every CPU.
  // `initiating_cpu` only attributes the trace event.
  void ShootdownTlbLeaf(Paddr entry_pa, int initiating_cpu = 0);

 private:
  MachineConfig config_;
  PhysMemory memory_;
  CodeRegistry registry_;
  InterruptController interrupts_;
  DmaEngine dma_;
  std::vector<std::unique_ptr<Cpu>> cpus_;
};

}  // namespace erebor

#endif  // EREBOR_SRC_HW_MACHINE_H_
