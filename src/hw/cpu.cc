#include "src/hw/cpu.h"

#include <cstdio>
#include <string_view>

#include "src/common/exec.h"
#include "src/common/log.h"
#include "src/common/trace.h"

namespace erebor {

Cpu::Cpu(int index, PhysMemory* memory, CodeRegistry* registry, const CycleModel* costs)
    : index_(index), memory_(memory), registry_(registry), costs_(costs) {}

uint64_t Cpu::Msr(uint32_t index) const {
  const auto it = msrs_.find(index);
  return it == msrs_.end() ? 0 : it->second;
}

void Cpu::SyncMsrCache(uint32_t index, uint64_t value) {
  if (index == msr::kIa32Pkrs) {
    pkrs_cache_ = value;
  } else if (index == msr::kIa32SCet) {
    scet_cache_ = value;
  }
}

void Cpu::FlushTlb() {
  // Trace unconditionally (even TLB-off / hook-off) so per-phase summaries are
  // bit-identical across EREBOR_TLB settings; the flush itself charges no cycles.
  Tracer::Global().Record(TraceEvent::kTlbFlush, index_, cycles_.now());
  if (Tlb::Enabled() && Tlb::hooks().cr3_flush) {
    tlb_.FlushAll();
  }
}

StatusOr<WalkResult> Cpu::WalkCached(Paddr root, Vaddr va, CpuMode mode) {
  return tlb_.WalkCached(*memory_, root, va, mode);
}

void Cpu::InvlpgBroadcast(Paddr root, Vaddr va) {
  Tracer::Global().Record(TraceEvent::kTlbInvlpg, index_, cycles_.now(), -1, va);
  CounterAdd(Tlb::GlobalStats().invlpg);
  if (!Tlb::Enabled() || !Tlb::hooks().invlpg) {
    return;
  }
  const TlbInvalidation inv{TlbInvalidation::Kind::kPage, root, va, 0};
  if (tlb_peers_.empty()) {
    ApplyTlbInvalidation(inv);
    return;
  }
  for (Cpu* peer : tlb_peers_) {
    peer->RequestTlbInvalidation(inv);
  }
}

void Cpu::RequestTlbInvalidation(const TlbInvalidation& inv) {
  // Direct application is safe when no parallel region is live, or when the
  // calling thread *is* this CPU's thread (its own TLB, its own lookups).
  if (!ExecutionEngine::real_threads() ||
      ExecutionEngine::current_cpu() == index_) {
    ApplyTlbInvalidation(inv);
    return;
  }
  {
    std::lock_guard<std::mutex> guard(tlb_queue_mu_);
    tlb_queue_.push_back(inv);
  }
  tlb_queue_pending_.store(true, std::memory_order_release);
}

void Cpu::DrainTlbInvalidations() {
  if (!tlb_queue_pending_.load(std::memory_order_acquire)) {
    return;
  }
  std::vector<TlbInvalidation> pending;
  {
    std::lock_guard<std::mutex> guard(tlb_queue_mu_);
    pending.swap(tlb_queue_);
    tlb_queue_pending_.store(false, std::memory_order_release);
  }
  for (const TlbInvalidation& inv : pending) {
    ApplyTlbInvalidation(inv);
  }
  tlb_drained_ += pending.size();
}

void Cpu::ApplyTlbInvalidation(const TlbInvalidation& inv) {
  switch (inv.kind) {
    case TlbInvalidation::Kind::kPage:
      tlb_.InvalidatePage(inv.root, inv.va);
      break;
    case TlbInvalidation::Kind::kRoot:
      tlb_.FlushRoot(inv.root);
      break;
    case TlbInvalidation::Kind::kAll:
      tlb_.FlushAll();
      break;
    case TlbInvalidation::Kind::kEntry:
      tlb_.ShootdownEntry(inv.entry_pa);
      break;
  }
}

Status Cpu::CheckSensitive(const char* what) {
  if (mode_ == CpuMode::kUser) {
    // Privileged instruction in ring 3 -> #GP (paper section 2.1: tdcall from
    // userspace triggers a general protection fault).
    return PermissionDeniedError(std::string("#GP: ") + what + " executed in user mode");
  }
  if (fence_enabled_ && !in_monitor_) {
    // Models the verified absence of this instruction from the deprivileged kernel:
    // the monitor scanned the kernel image (C1), W^X prevents injecting new bytes
    // (C2), and SMEP prevents executing user pages (C2). Any attempt therefore means
    // the attack was already stopped by one of those mechanisms.
    return PermissionDeniedError(std::string("sensitive instruction '") + what +
                                 "' unavailable to deprivileged kernel (Erebor fence)");
  }
  return OkStatus();
}

Status Cpu::WriteCr0(uint64_t value) {
  EREBOR_RETURN_IF_ERROR(CheckSensitive("mov %cr0"));
  cycles_.Charge(costs_->native_cr_write);
  cr0_ = value;
  return OkStatus();
}

Status Cpu::WriteCr3(uint64_t value) {
  EREBOR_RETURN_IF_ERROR(CheckSensitive("mov %cr3"));
  cycles_.Charge(costs_->native_cr_write);
  cr3_ = value;
  FlushTlb();
  return OkStatus();
}

Status Cpu::WriteCr4(uint64_t value) {
  EREBOR_RETURN_IF_ERROR(CheckSensitive("mov %cr4"));
  cycles_.Charge(costs_->native_cr_write);
  cr4_ = value;
  return OkStatus();
}

StatusOr<uint64_t> Cpu::ReadMsr(uint32_t index) const {
  if (mode_ == CpuMode::kUser) {
    return PermissionDeniedError("#GP: rdmsr in user mode");
  }
  return Msr(index);
}

Status Cpu::WriteMsr(uint32_t index, uint64_t value) {
  EREBOR_RETURN_IF_ERROR(CheckSensitive("wrmsr"));
  cycles_.Charge(costs_->native_wrmsr);
  msrs_[index] = value;
  SyncMsrCache(index, value);
  if (index == msr::kIa32Pkrs || index == msr::kIa32SCet) {
    // An untrusted PKRS/CET rewrite flushes the writing CPU's TLB (serializing
    // permission change). The *trusted* gate writes on the EMC hot path deliberately
    // do not: the TLB caches walks, and PKS/CET checks re-run on every access.
    Tracer::Global().Record(TraceEvent::kTlbFlush, index_, cycles_.now());
    if (Tlb::Enabled()) {
      tlb_.FlushAll();
    }
  }
  return OkStatus();
}

void Cpu::TrustedWriteMsr(uint32_t index, uint64_t value) {
  msrs_[index] = value;
  SyncMsrCache(index, value);
}

void Cpu::TrustedWriteCr(int reg, uint64_t value) {
  switch (reg) {
    case 0:
      cr0_ = value;
      break;
    case 3:
      cr3_ = value;
      FlushTlb();
      break;
    case 4:
      cr4_ = value;
      break;
    default:
      break;
  }
}

Status Cpu::Stac() {
  EREBOR_RETURN_IF_ERROR(CheckSensitive("stac"));
  cycles_.Charge(costs_->native_stac);
  ac_flag_ = true;
  return OkStatus();
}

Status Cpu::Clac() {
  // clac is also removed from the instrumented kernel; pair it with stac's policy.
  EREBOR_RETURN_IF_ERROR(CheckSensitive("clac"));
  ac_flag_ = false;
  return OkStatus();
}

Status Cpu::Lidt(const IdtTable* table) {
  EREBOR_RETURN_IF_ERROR(CheckSensitive("lidt"));
  cycles_.Charge(costs_->native_lidt);
  idt_ = table;
  return OkStatus();
}

Status Cpu::Tdcall(uint64_t leaf, uint64_t* args, size_t nargs) {
  EREBOR_RETURN_IF_ERROR(CheckSensitive("tdcall"));
  if (tdcall_sink_ == nullptr) {
    return UnavailableError("no TDX module attached");
  }
  return tdcall_sink_->Tdcall(*this, leaf, args, nargs);
}

StatusOr<WalkResult> Cpu::Translate(Vaddr va, AccessType access, Fault* fault_out) {
  return TranslateAs(mode_, va, access, fault_out);
}

StatusOr<WalkResult> Cpu::TranslateAs(CpuMode as_mode, Vaddr va, AccessType access,
                                      Fault* fault_out) {
  // Denial reasons are string_views over static storage (or a stack buffer for the
  // keyed PKS messages): nothing is heap-allocated until an actual fault happens.
  auto fail = [&](uint64_t err_bits, std::string_view reason) -> Status {
    if (fault_out != nullptr) {
      fault_out->vector = Vector::kPageFault;
      fault_out->error_code =
          err_bits |
          (access == AccessType::kWrite ? pf_err::kWrite : 0) |
          (access == AccessType::kExecute ? pf_err::kInstruction : 0) |
          (as_mode == CpuMode::kUser ? pf_err::kUser : 0);
      fault_out->address = va;
      fault_out->reason.assign(reason);
    }
    std::string message("#PF: ");
    message.append(reason);
    return PermissionDeniedError(std::move(message));
  };

  auto walk = tlb_.WalkCached(*memory_, cr3_, va, as_mode);
  if (!walk.ok()) {
    if (fault_out != nullptr) {
      fault_out->vector = Vector::kPageFault;
      fault_out->error_code = (access == AccessType::kWrite ? pf_err::kWrite : 0) |
                              (access == AccessType::kExecute ? pf_err::kInstruction : 0) |
                              (as_mode == CpuMode::kUser ? pf_err::kUser : 0);
      fault_out->address = va;
      fault_out->reason = walk.status().message();
    }
    return walk.status();
  }
  const WalkResult& r = *walk;

  // TME-MK keyID check (memory-controller enforcement; both CPU modes, data and
  // fetch). The monitor context is exempt: its accesses run under the monitor's
  // own keyID. Read-shared bindings (kernel text, PTPs) admit reads and fetches
  // through any keyID but only same-key writes.
  auto keyid_check = [&]() -> Status {
    if (keyid_map_ == nullptr || in_monitor_) {
      return OkStatus();
    }
    const FrameNum frame = r.pa >> kPageShift;
    const uint32_t mapped = pte::KeyId(r.leaf);
    const uint32_t bound = keyid_map_->KeyOf(frame);
    if (mapped == bound) {
      return OkStatus();
    }
    if (access != AccessType::kWrite && keyid_map_->ReadShared(frame)) {
      return OkStatus();
    }
    char reason[64];
    std::snprintf(reason, sizeof(reason),
                  "TME-MK: keyID mismatch (mapping %u, frame bound %u)", mapped,
                  bound);
    return fail(pf_err::kPresent | pf_err::kProtectionKey, reason);
  };

  if (as_mode == CpuMode::kUser) {
    if (!r.user_accessible) {
      return fail(pf_err::kPresent, "user access to supervisor page");
    }
    if (access == AccessType::kWrite && !r.writable) {
      return fail(pf_err::kPresent, "user write to read-only page");
    }
    if (access == AccessType::kWrite && r.shadow_stack) {
      return fail(pf_err::kPresent | pf_err::kShadowStack, "write to shadow-stack page");
    }
    if (access == AccessType::kExecute && r.no_execute) {
      return fail(pf_err::kPresent, "execute of NX page");
    }
    EREBOR_RETURN_IF_ERROR(keyid_check());
    return r;
  }

  // Supervisor-mode checks.
  if (r.user_accessible) {
    if (access == AccessType::kExecute && (cr4_ & cr::kCr4Smep) != 0) {
      return fail(pf_err::kPresent, "SMEP: supervisor execute of user page");
    }
    if (access != AccessType::kExecute && (cr4_ & cr::kCr4Smap) != 0 && !ac_flag_) {
      return fail(pf_err::kPresent, "SMAP: supervisor access to user page");
    }
  } else if ((cr4_ & cr::kCr4Pks) != 0 && access != AccessType::kExecute) {
    // Supervisor protection keys (PKS): data accesses only. pkrs_cache_ mirrors the
    // MSR so the hottest check in the simulator costs no map lookup.
    if ((pkrs_cache_ & pkrs::Ad(r.pkey)) != 0) {
      char reason[40];
      std::snprintf(reason, sizeof(reason), "PKS: access-disabled key %u", r.pkey);
      return fail(pf_err::kPresent | pf_err::kProtectionKey, reason);
    }
    if (access == AccessType::kWrite && (pkrs_cache_ & pkrs::Wd(r.pkey)) != 0) {
      char reason[40];
      std::snprintf(reason, sizeof(reason), "PKS: write-disabled key %u", r.pkey);
      return fail(pf_err::kPresent | pf_err::kProtectionKey, reason);
    }
  }
  if (access == AccessType::kWrite && r.shadow_stack) {
    return fail(pf_err::kPresent | pf_err::kShadowStack, "write to shadow-stack page");
  }
  if (access == AccessType::kWrite && !r.writable && (cr0_ & cr::kCr0Wp) != 0) {
    return fail(pf_err::kPresent, "CR0.WP: supervisor write to read-only page");
  }
  if (access == AccessType::kExecute && r.no_execute) {
    return fail(pf_err::kPresent, "execute of NX page");
  }
  EREBOR_RETURN_IF_ERROR(keyid_check());
  return r;
}

namespace {
// Bytes left until the end of the leaf's mapped span: a 2 MiB (or 1 GiB) leaf is
// physically contiguous, so one translation covers the whole span instead of
// re-walking every 4 KiB.
uint64_t SpanRemaining(const WalkResult& r, Vaddr va) {
  const uint64_t span = 1ULL << (kPageShift + 9 * static_cast<uint64_t>(r.level));
  return span - (va & (span - 1));
}
}  // namespace

Status Cpu::ReadVirt(Vaddr va, uint8_t* out, uint64_t len, Fault* fault_out) {
  while (len > 0) {
    EREBOR_ASSIGN_OR_RETURN(const WalkResult r,
                            Translate(va, AccessType::kRead, fault_out));
    const uint64_t take = std::min(len, SpanRemaining(r, va));
    EREBOR_RETURN_IF_ERROR(memory_->Read(r.pa, out, take));
    va += take;
    out += take;
    len -= take;
  }
  return OkStatus();
}

Status Cpu::WriteVirt(Vaddr va, const uint8_t* data, uint64_t len, Fault* fault_out) {
  while (len > 0) {
    EREBOR_ASSIGN_OR_RETURN(const WalkResult r,
                            Translate(va, AccessType::kWrite, fault_out));
    const uint64_t take = std::min(len, SpanRemaining(r, va));
    EREBOR_RETURN_IF_ERROR(memory_->Write(r.pa, data, take));
    va += take;
    data += take;
    len -= take;
  }
  return OkStatus();
}

Status Cpu::IndirectBranch(CodeLabelId target) {
  const CodeLabel* label = registry_->Lookup(target);
  if (label == nullptr) {
    return InvalidArgumentError("indirect branch to unknown label");
  }
  const bool ibt_enabled = (cr4_ & cr::kCr4Cet) != 0 &&
                           (scet_cache_ & msr::kCetIbtEn) != 0;
  if (ibt_enabled && !label->endbr) {
    return PermissionDeniedError("#CP: indirect branch to non-endbr64 target '" +
                                 label->name + "'");
  }
  return OkStatus();
}

Status Cpu::ShadowCall(CodeLabelId return_site) {
  const bool sst_enabled = (cr4_ & cr::kCr4Cet) != 0 &&
                           (scet_cache_ & msr::kCetShstkEn) != 0;
  if (!sst_enabled || shadow_stack_ == nullptr) {
    return OkStatus();
  }
  shadow_stack_->PushReturn(return_site);
  return OkStatus();
}

Status Cpu::ShadowReturn(CodeLabelId return_site) {
  const bool sst_enabled = (cr4_ & cr::kCr4Cet) != 0 &&
                           (scet_cache_ & msr::kCetShstkEn) != 0;
  if (!sst_enabled || shadow_stack_ == nullptr) {
    return OkStatus();
  }
  return shadow_stack_->PopReturn(return_site).status();
}

void Cpu::BindHandler(CodeLabelId label, FaultHandler handler) {
  handlers_[label] = std::move(handler);
}

Status Cpu::Deliver(const Fault& fault) {
  if (idt_ == nullptr) {
    return FailedPreconditionError("fault with no IDT loaded: " + fault.reason);
  }
  const CodeLabelId gate = idt_->gate[static_cast<uint8_t>(fault.vector)];
  if (gate == kInvalidCodeLabel) {
    return FailedPreconditionError("no gate for " + VectorName(fault.vector) + ": " +
                                   fault.reason);
  }
  const auto it = handlers_.find(gate);
  if (it == handlers_.end()) {
    return InternalError("IDT gate label has no bound handler");
  }
  const bool external = fault.vector == Vector::kTimer || fault.vector == Vector::kDevice ||
                        fault.vector == Vector::kIpi;
  cycles_.Charge(external ? costs_->interrupt_delivery : costs_->exception_delivery);
  ++delivered_faults_;
  // Exception delivery pushes the return site onto the shadow stack; the simulation
  // models the balanced push/pop inside the handler invocation.
  it->second(*this, fault);
  return OkStatus();
}

}  // namespace erebor
