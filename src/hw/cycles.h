// Cycle-cost model for the simulated platform.
//
// The simulation does not execute native instructions, so time is accounted as
// abstract CPU cycles charged per operation. The default constants are calibrated to
// the paper's Intel Xeon Platinum 8570 measurements (Tables 3 and 4), so that the
// microbenchmarks reproduce the published unit costs exactly and the macrobenchmarks
// reproduce the published overhead *shapes* (events/second x cycles/event).
#ifndef EREBOR_SRC_HW_CYCLES_H_
#define EREBOR_SRC_HW_CYCLES_H_

#include <cstdint>

namespace erebor {

using Cycles = uint64_t;

struct CycleModel {
  // ---- Privilege transitions (Table 3, round-trip costs) ----
  Cycles syscall_round_trip = 684;   // syscall/sysret pair + kernel entry bookkeeping
  Cycles emc_round_trip = 1224;      // EMC entry gate + exit gate (2x PKRS wrmsr, stack switch)
  Cycles tdcall_round_trip = 5276;   // tdcall(vmcall): TDX module context protection included
  Cycles vmcall_round_trip = 4031;   // non-TD guest hypercall (for the comparison row)

  // ---- Native privileged-operation costs (Table 4, "Native" column) ----
  Cycles native_pte_write = 23;         // native_set_pte: a cached memory store
  Cycles native_cr_write = 294;         // mov %r, %cr0 serializing cost
  Cycles native_stac = 62;              // stac/clac pair
  Cycles native_lidt = 260;             // lidt
  Cycles native_wrmsr = 364;            // wrmsr (e.g. IA32_LSTAR)
  Cycles native_tdreport = 126806;      // tdcall(TDREPORT): report generation + HMAC

  // ---- Monitor-side costs added on top of emc_round_trip (Table 4, "Erebor") ----
  // erebor_total(op) = emc_round_trip + monitor_op(op); constants chosen so the totals
  // match the paper: MMU 1345, CR 1593, SMAP 1291, IDT 1369, MSR 1613, GHCI 128081.
  Cycles monitor_pte_op = 121;      // frame-table lookup + policy check + write
  Cycles monitor_cr_op = 369;       // target-value validation + serializing write
  Cycles monitor_stac_op = 67;      // usercopy window bookkeeping
  Cycles monitor_idt_op = 145;      // interposition-table validation
  Cycles monitor_msr_op = 389;      // MSR allow-list check + write
  Cycles monitor_tdreport_op = 126857;  // report generation + exclusive-interface check
  Cycles monitor_channel_op = 64;   // gated channel/proxy bookkeeping (non-crypto part)
  Cycles monitor_ring_op = 72;      // MMU-ring doorbell: window snapshot + index checks

  // ---- Event delivery ----
  Cycles exception_delivery = 520;      // IDT dispatch + stack push/pop (#PF, #GP, ...)
  Cycles interrupt_delivery = 810;      // external interrupt + EOI
  Cycles ve_delivery = 690;             // #VE injection by the TDX module
  Cycles context_switch = 1450;         // kernel task switch (incl. CR3 reload natively)
  Cycles interposition_save_restore = 380;  // monitor exit-interposition reg save/mask/restore
  Cycles int_gate_overhead = 210;           // #INT gate PKRS save/revoke/restore during EMC
  Cycles syscall_stub_overhead = 120;       // monitor syscall-entry stub on every syscall
  Cycles cached_cpuid_service = 150;        // monitor-served cpuid from its cache

  // ---- TME-MK backend costs (only charged by the TME-MK isolation backend;
  // PKS worlds never touch them, keeping the Table-3/4 goldens untouched) ----
  Cycles pconfig_key_program = 1790;  // PCONFIG: program an encryption key (per domain)
  Cycles frame_bind_op = 38;          // rebind one frame's keyID at the controller

  // ---- Memory-ish costs used by workload accounting ----
  Cycles page_fault_service_native = 1350;  // kernel #PF handler work excluding PTE writes
  Cycles dma_page_copy = 900;               // device copy of one 4KiB page
  Cycles page_zero = 600;                   // clearing a 4KiB frame
  Cycles page_copy = 700;                   // copying a 4KiB frame
  Cycles crypto_per_byte_x100 = 150;        // channel crypto: 1.5 cycles/byte (x100 fixed point)
  Cycles usercopy_per_byte_x100 = 150;      // copy_from/to_user: 1.5 cycles/byte

  // Derived helpers.
  Cycles EreborPteTotal() const { return emc_round_trip + monitor_pte_op; }
  Cycles EreborCrTotal() const { return emc_round_trip + monitor_cr_op; }
  Cycles EreborStacTotal() const { return emc_round_trip + monitor_stac_op; }
  Cycles EreborIdtTotal() const { return emc_round_trip + monitor_idt_op; }
  Cycles EreborMsrTotal() const { return emc_round_trip + monitor_msr_op; }
  Cycles EreborTdreportTotal() const { return emc_round_trip + monitor_tdreport_op; }
};

// A monotonically increasing cycle counter with charge hooks (per vCPU).
class CycleCounter {
 public:
  Cycles now() const { return now_; }
  void Charge(Cycles n) { now_ += n; }
  void Reset() { now_ = 0; }

 private:
  Cycles now_ = 0;
};

}  // namespace erebor

#endif  // EREBOR_SRC_HW_CYCLES_H_
