// Fleet supervisor: multi-tenant serving with hostile-traffic containment
// (ROADMAP items 2 and 4).
//
// Composes the pieces the paper evaluates in isolation into the serving scenario
// that matters at fleet scale: N remote clients, each bound to its own
// Erebor-Sandbox, exchanging AEAD records through the untrusted host proxy's
// batched-ingest path, while a configurable fraction of the tenants runs hostile
// traffic drawn from the attack classes the monitor already models:
//
//   kForgedRecord    - data records sealed under junk keys naming the tenant's own
//                      sandbox: absorbed as global auth rejects, never charged to
//                      any session.
//   kRelabeledRecord - records sealed under the attacker's keys but naming a benign
//                      victim's sandbox id: the AAD-bound header fails auth under
//                      the victim's keys, and the victim must not be penalized.
//   kStaleHello      - fresh-nonce ClientHellos against a live session with data
//                      installed: renegotiation is refused and counted hostile.
//   kGateProbe       - Garmr-class gate-entry probing from inside the sealed
//                      sandbox (a forbidden syscall): the kernel kill path
//                      quarantines the sandbox.
//   kRingDescriptors - hostile MMU-ring submissions (PR 7 taxonomy) on the ring
//                      bound to the tenant's sandbox: strike-counted, ring
//                      poisoned, sandbox quarantined.
//
// Failure handling is the first-class layer under test:
//  - per-session request timeouts with bounded, jittered exponential retry
//    (RemoteClient's shared backoff budget — no synchronized retry storms);
//  - health scoring per tenant from the monitor's existing strike signals
//    (fault strikes, session rejects, ring strikes) plus supervisor-observed
//    no-progress rounds;
//  - quarantine-and-replace from a warm standby pool with replacement-latency
//    accounting ("fleet.replacements", replacement histogram);
//  - per-tenant admission control (AdmissionController): a draining tenant's
//    requests are deferred then shed — never the fleet's.
//
// The containment property the bench and soak assert: every attacked session is
// quarantined and replaced (or shed once its replacement budget is spent), while
// never-attacked tenants are never quarantined and their p99 stays within a fixed
// budget of the attack-free baseline.
#ifndef EREBOR_SRC_FLEET_SUPERVISOR_H_
#define EREBOR_SRC_FLEET_SUPERVISOR_H_

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/fleet/admission.h"
#include "src/sim/world.h"

namespace erebor {

enum class AttackClass : uint8_t {
  kNone,
  kForgedRecord,
  kRelabeledRecord,
  kStaleHello,
  kGateProbe,
  kRingDescriptors,
};

const char* AttackClassName(AttackClass attack);

struct FleetConfig {
  int num_vcpus = 4;
  int num_tenants = 8;
  int standby_pool = 2;
  int requests_per_tenant = 10;
  uint64_t seed = 1;
  uint64_t payload_bytes = 96;
  // Execution engine for the RunBurstIngest parallel region; the serving loop
  // itself is scheduler-driven and single-threaded on both engines.
  ExecMode exec = ExecMode::kDeterministic;
  // Isolation backend for the fleet's world. PKS caps the fleet at 11 live
  // sandbox domains (standbys included); TME-MK lifts the ceiling to ~2K.
  IsolationKind isolation = IsolationKind::kPks;
  // Per-tenant attack classes; resized to num_tenants with kNone. Hostile tenants
  // serve round 0 benignly (their sessions must exist to be attacked), then fire
  // their attack every round from round 1 on.
  std::vector<AttackClass> attacks;
  // Scheduler slices a request may pump before the client retransmits; the
  // retransmit count itself is bounded by the client's jittered retry budget.
  uint64_t request_timeout_slices = 800;
  // Health floor: a tenant whose score decays to or below this is quarantined by
  // the supervisor (monitor-driven quarantines are detected independently).
  double health_floor = 70.0;
  // Replacements a tenant may consume before it is shed instead of replaced.
  int max_replacements_per_tenant = 1;
  AdmissionPolicy admission;
  // Arms the world's chaos engine (fault injection + host probes) on top of the
  // hostile-traffic mix.
  bool chaos = false;
  uint64_t chaos_seed = 1;
  // Warm-clone pool (ROADMAP item 2): Start() boots one benign service sandbox
  // to completion, freezes it as a copy-on-write template, and fills the standby
  // pool with template clones instead of cold boots. Standbys park without an
  // isolation domain (PKS has 11); PromoteStandby allocates the domain, then
  // runs the real attested handshake. Default off — the serving path, goldens
  // and fingerprints are bit-identical to the pre-pool supervisor.
  bool warm_clone_pool = false;
};

// Deterministic hostile mix: cycles through the five attack classes, spreading
// ceil(num_tenants * hostile_fraction) hostile tenants evenly across the fleet.
std::vector<AttackClass> MixedAttacks(int num_tenants, double hostile_fraction,
                                      uint64_t seed);

struct TenantReport {
  int tenant = 0;
  int sandbox_id = -1;
  AttackClass attack = AttackClass::kNone;
  TenantAdmitState admit_state = TenantAdmitState::kServing;
  uint64_t served = 0;
  uint64_t failed = 0;
  uint64_t deferred = 0;
  uint64_t shed = 0;
  uint64_t quarantines = 0;
  uint64_t replacements = 0;
  double health = 100.0;
  uint64_t p50_ns = 0;
  uint64_t p99_ns = 0;
  uint64_t p999_ns = 0;
};

struct FleetReport {
  bool ok = false;
  std::string error;
  int num_tenants = 0;
  std::vector<TenantReport> tenants;

  uint64_t total_served = 0;
  uint64_t total_failed = 0;
  uint64_t total_deferred = 0;
  uint64_t total_shed = 0;
  uint64_t quarantines = 0;
  uint64_t replacements = 0;

  // Aggregate request latency over never-attacked tenants (the containment SLO)
  // and over the whole fleet.
  uint64_t benign_p50_ns = 0;
  uint64_t benign_p99_ns = 0;
  uint64_t benign_p999_ns = 0;
  uint64_t fleet_p50_ns = 0;
  uint64_t fleet_p99_ns = 0;
  uint64_t fleet_p999_ns = 0;

  // Recovery: quarantine detection -> replacement session serving again.
  uint64_t replacement_max_ns = 0;
  uint64_t replacement_mean_ns = 0;

  double ops_per_sec = 0;      // served requests per simulated second (2.1 GHz)
  double span_seconds = 0;     // simulated serving span
  uint64_t invariant_violations = 0;

  // Order-sensitive digest of per-tenant outcomes: equal fingerprints mean the
  // whole serving run replayed identically.
  uint64_t fingerprint = 0;

  // True when every attacked tenant was quarantined+replaced (or shed after its
  // replacement budget) and no never-attacked tenant was ever quarantined.
  bool containment = false;
};

class FleetSupervisor {
 public:
  explicit FleetSupervisor(const FleetConfig& config);
  ~FleetSupervisor();

  // Boots the world (kEreborFull), starts the proxy, launches one serving
  // sandbox per tenant plus the warm standby pool, and completes every tenant's
  // attested handshake over the network.
  Status Start();

  // Runs the serving loop: requests_per_tenant rounds, round-robin across
  // tenants, hostile tenants firing their attack class from round 1.
  Status RunServing();

  // Post-serving parallel burst: pre-seals `rounds` records for every tenant
  // with a live session and ingests them through ProxyDeliverBatch from a
  // RunOnThreads region (tenant t pinned to vCPU t % num_vcpus). Returns
  // per-tenant ingested-record counts — the execution-engine equivalence
  // oracle. Identical configs must produce identical counts on both engines.
  StatusOr<std::vector<uint64_t>> RunBurstIngest(int rounds);

  FleetReport Report();

  World& world() { return *world_; }
  AdmissionController& admission() { return admission_; }
  const FleetConfig& config() const { return config_; }
  Sandbox* template_sandbox() { return template_sandbox_; }
  size_t standby_count() const { return standbys_.size(); }

 private:
  struct TenantState {
    int tenant = 0;
    AttackClass attack = AttackClass::kNone;
    Sandbox* sandbox = nullptr;
    std::unique_ptr<RemoteClient> client;
    std::unique_ptr<RemoteClient> hello_attacker;  // kStaleHello rogue hellos
    std::deque<Bytes> results;                     // demuxed opened results
    uint64_t served = 0;
    uint64_t failed = 0;
    uint64_t deferred_rounds = 0;
    uint64_t no_progress = 0;  // consecutive rounds without a served result
    uint64_t quarantines = 0;
    int replacements = 0;
    bool pending_replace = false;
    uint64_t replace_detect_cycles = 0;
    bool ring_bound = false;
    double health = 100.0;
    LatencyHistogram* latency = nullptr;  // registry-owned, per tenant
  };

  // clone_of: when non-null, the program's first active slice adopts this
  // (template) env's state and attaches as a clone instead of running full
  // LibOS init. promoted: when non-null, the program parks (touching nothing —
  // no fd, no confined memory, so no CoW break and no lazily-allocated
  // isolation domain) until the flag flips at promotion.
  ProgramFn MakeServiceProgram(const std::string& name, Cycles service_cycles,
                               bool gate_probe,
                               std::shared_ptr<LibosEnv> clone_of = nullptr,
                               std::shared_ptr<std::atomic<bool>> promoted = nullptr);
  StatusOr<Sandbox*> LaunchServiceSandbox(const std::string& name,
                                          Cycles service_cycles, bool gate_probe);
  Status LaunchStandby();
  // Warm-clone pool: boots + freezes the template sandbox (pool mode only).
  Status BootTemplate();

  uint64_t NowCycles() const;
  uint64_t NowNs() const { return CyclesToNs(NowCycles()); }
  static uint64_t CyclesToNs(uint64_t cycles) { return cycles * 10 / 21; }

  // Routes every queued world-side packet to its owning tenant (results are
  // opened into TenantState::results; ServerHellos complete handshakes).
  void DrainClientNetwork();
  void HandleClientWire(const Bytes& wire);
  TenantState* TenantBySandbox(int sandbox_id);

  Status Pump(uint64_t slices);
  bool SandboxDead(const TenantState& t) const;

  Status HandshakeTenant(TenantState& t);
  void ServeOne(TenantState& t, int round);
  void FireAttack(TenantState& t, int round);
  // Samples the monitor's strike signals into the tenant's health score and
  // applies the quarantine-and-replace / shed ladder.
  void SuperviseTenant(TenantState& t);
  void QuarantineTenant(TenantState& t, const std::string& reason);
  Status PromoteStandby(TenantState& t);

  FleetConfig config_;
  std::unique_ptr<World> world_;
  AdmissionController admission_;
  std::vector<TenantState> tenants_;
  std::deque<Sandbox*> standbys_;
  int standby_serial_ = 0;
  // Warm-clone pool state (null / false unless config_.warm_clone_pool).
  Sandbox* template_sandbox_ = nullptr;
  std::shared_ptr<LibosEnv> template_env_;
  // Per-standby promotion latches (by sandbox id); erased at promotion.
  std::map<int, std::shared_ptr<std::atomic<bool>>> standby_promoted_;
  // Flipped before SnapshotTemplate: the template task parks on it and never
  // touches its (now read-only) confined pages again.
  std::shared_ptr<std::atomic<bool>> template_frozen_ =
      std::make_shared<std::atomic<bool>>(false);
  // LibOS-initialization rendezvous: each service program bumps the counter once
  // its env is up; launches pump the scheduler until the count catches up.
  // shared_ptr because the program lambdas may outlive the supervisor's frames.
  std::shared_ptr<std::atomic<int>> ready_count_ =
      std::make_shared<std::atomic<int>>(0);
  int launched_ = 0;
  SplitMix64 rng_;
  SessionKeys junk_keys_;  // forged-record sealing keys (never the monitor's)

  LatencyHistogram* benign_latency_ = nullptr;
  LatencyHistogram* fleet_latency_ = nullptr;
  LatencyHistogram* replacement_latency_ = nullptr;

  uint64_t serving_start_cycles_ = 0;
  uint64_t serving_end_cycles_ = 0;
  bool started_ = false;
};

}  // namespace erebor

#endif  // EREBOR_SRC_FLEET_SUPERVISOR_H_
