#include "src/fleet/admission.h"

#include "src/common/metrics.h"

namespace erebor {

const char* TenantAdmitStateName(TenantAdmitState state) {
  switch (state) {
    case TenantAdmitState::kServing:
      return "serving";
    case TenantAdmitState::kDraining:
      return "draining";
    case TenantAdmitState::kShedding:
      return "shedding";
  }
  return "?";
}

const char* AdmitDecisionName(AdmitDecision decision) {
  switch (decision) {
    case AdmitDecision::kAdmit:
      return "admit";
    case AdmitDecision::kDefer:
      return "defer";
    case AdmitDecision::kShed:
      return "shed";
  }
  return "?";
}

void AdmissionController::RegisterTenant(int tenant) { tenants_[tenant]; }

void AdmissionController::SetState(int tenant, TenantAdmitState state) {
  TenantAdmission& t = tenants_[tenant];
  if (t.state == TenantAdmitState::kShedding) {
    return;  // terminal: a shed tenant never serves again
  }
  if (state == TenantAdmitState::kDraining && t.state != TenantAdmitState::kDraining) {
    t.draining_deferred = 0;  // fresh drain: re-arm the deferral budget
  }
  t.state = state;
}

TenantAdmitState AdmissionController::state(int tenant) const {
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? TenantAdmitState::kServing : it->second.state;
}

AdmitDecision AdmissionController::Admit(int tenant) {
  TenantAdmission& t = tenants_[tenant];
  switch (t.state) {
    case TenantAdmitState::kServing:
      ++t.admitted;
      return AdmitDecision::kAdmit;
    case TenantAdmitState::kDraining:
      if (t.draining_deferred < policy_.max_deferred_per_tenant) {
        ++t.draining_deferred;
        ++t.deferred;
        MetricsRegistry::Global().Increment("fleet.admission_deferred");
        return AdmitDecision::kDefer;
      }
      ++t.shed;
      MetricsRegistry::Global().Increment("fleet.admission_shed");
      return AdmitDecision::kShed;
    case TenantAdmitState::kShedding:
      ++t.shed;
      MetricsRegistry::Global().Increment("fleet.admission_shed");
      return AdmitDecision::kShed;
  }
  return AdmitDecision::kShed;
}

uint64_t AdmissionController::admitted(int tenant) const {
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.admitted;
}

uint64_t AdmissionController::deferred(int tenant) const {
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.deferred;
}

uint64_t AdmissionController::shed(int tenant) const {
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.shed;
}

}  // namespace erebor
