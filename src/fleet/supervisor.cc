#include "src/fleet/supervisor.h"

#include <algorithm>

#include "src/common/metrics.h"
#include "src/kernel/mmu_ring.h"
#include "src/monitor/monitor.h"

namespace erebor {
namespace {

// How many benign requests a hostile tenant serves before turning (its session
// must exist — and have data installed — for every attack class to be "stale").
constexpr int kHostileStartRound = 1;
// Scheduler slices pumped after firing an attack wire so the proxy delivers it.
constexpr uint64_t kAttackPumpSlices = 160;
// Handshake retransmission rounds before a tenant is declared wedged.
constexpr int kMaxHelloAttempts = 30;
// Data retransmission rounds per request on top of the client's jitter budget.
constexpr int kMaxResendRounds = 8;
// Hostile ring descriptors published per attack round (each is one strike).
constexpr int kRingStrikesPerRound = 2;
constexpr uint8_t kBogusRingOpcode = 0xC7;

// Per-tenant service cost tiers, fig9-flavoured: light / medium / heavy
// request-handling compute.
Cycles ServiceCostForTenant(int tenant) {
  switch (tenant % 3) {
    case 0:
      return 30'000;
    case 1:
      return 70'000;
    default:
      return 110'000;
  }
}

// Health-score weights. Inputs are the monitor's existing degradation signals;
// no_progress is the supervisor's own observation (consecutive rounds without a
// served result). The score is recomputed from scratch every round — it is a
// snapshot, not an accumulator.
constexpr double kNoProgressPenalty = 15.0;
constexpr double kFaultStrikePenalty = 6.0;
constexpr double kSessionRejectPenalty = 2.0;
constexpr double kRingStrikePenalty = 4.0;

uint64_t MixFingerprint(uint64_t h, uint64_t v) {
  return SplitMix64(h ^ (v + 0x9E3779B97F4A7C15ULL)).Next();
}

}  // namespace

const char* AttackClassName(AttackClass attack) {
  switch (attack) {
    case AttackClass::kNone:
      return "none";
    case AttackClass::kForgedRecord:
      return "forged_record";
    case AttackClass::kRelabeledRecord:
      return "relabeled_record";
    case AttackClass::kStaleHello:
      return "stale_hello";
    case AttackClass::kGateProbe:
      return "gate_probe";
    case AttackClass::kRingDescriptors:
      return "ring_descriptors";
  }
  return "?";
}

std::vector<AttackClass> MixedAttacks(int num_tenants, double hostile_fraction,
                                      uint64_t seed) {
  std::vector<AttackClass> attacks(static_cast<size_t>(std::max(num_tenants, 0)),
                                   AttackClass::kNone);
  if (num_tenants <= 0 || hostile_fraction <= 0.0) {
    return attacks;
  }
  const int hostile = std::min(
      num_tenants,
      static_cast<int>(hostile_fraction * num_tenants + 0.999999));
  static constexpr AttackClass kCycle[] = {
      AttackClass::kForgedRecord, AttackClass::kRelabeledRecord,
      AttackClass::kStaleHello, AttackClass::kGateProbe,
      AttackClass::kRingDescriptors,
  };
  SplitMix64 rng(seed);
  const int start = static_cast<int>(rng.Next() % 5);
  // Spread hostile tenants evenly so attacks interleave with benign traffic
  // instead of clustering at one end of the round-robin.
  const double stride = static_cast<double>(num_tenants) / hostile;
  for (int i = 0; i < hostile; ++i) {
    int slot = static_cast<int>(i * stride);
    while (attacks[slot] != AttackClass::kNone) {
      slot = (slot + 1) % num_tenants;
    }
    attacks[slot] = kCycle[(start + i) % 5];
  }
  return attacks;
}

FleetSupervisor::FleetSupervisor(const FleetConfig& config)
    : config_(config),
      admission_(config.admission),
      rng_(config.seed ^ 0xF1EE7u),
      junk_keys_(DeriveSessionKeys(Bytes(32, 0xA5), Digest256{})) {
  config_.num_vcpus = std::max(config_.num_vcpus, 1);
  config_.num_tenants = std::max(config_.num_tenants, 1);
  config_.standby_pool = std::max(config_.standby_pool, 0);
  config_.requests_per_tenant = std::max(config_.requests_per_tenant, 1);
  config_.attacks.resize(static_cast<size_t>(config_.num_tenants),
                         AttackClass::kNone);
}

FleetSupervisor::~FleetSupervisor() = default;

ProgramFn FleetSupervisor::MakeServiceProgram(const std::string& name,
                                              Cycles service_cycles, bool gate_probe,
                                              std::shared_ptr<LibosEnv> clone_of,
                                              std::shared_ptr<std::atomic<bool>> promoted) {
  auto env = std::make_shared<LibosEnv>(
      LibosManifest{.name = name, .heap_bytes = 1 << 20}, LibosBackend::kSandboxed);
  auto ready = ready_count_;
  return [env, ready, service_cycles, gate_probe, clone_of,
          promoted](SyscallContext& ctx) -> StepOutcome {
    if (promoted != nullptr && !promoted->load(std::memory_order_relaxed)) {
      // Parked standby: touch nothing — no fd, no confined memory — so the
      // clone triggers no CoW break and never lazily allocates a domain.
      return StepOutcome::kYield;
    }
    if (!env->initialized()) {
      if (clone_of != nullptr) {
        // Warm clone: the arena rides in on the template's CoW-shared pages;
        // bring-up is just this process's own /dev/erebor fd.
        env->AdoptTemplateState(*clone_of);
        if (!env->AttachClone(ctx).ok()) {
          return StepOutcome::kExited;
        }
      } else if (!env->Initialize(ctx).ok()) {
        return StepOutcome::kExited;
      }
      ready->fetch_add(1, std::memory_order_relaxed);
      return StepOutcome::kYield;
    }
    auto input = env->RecvInput(ctx, 64 * 1024);
    if (!input.ok()) {
      return StepOutcome::kYield;  // EAGAIN or transient fault: poll again
    }
    if (gate_probe) {
      // Compromised workload: probe the gate entry with a forbidden syscall the
      // moment it is poked with input. The sandbox is sealed by then, so the
      // monitor's interposition stub kills the task and quarantines the sandbox.
      (void)ctx.Syscall(sys::kGetpid);
      return StepOutcome::kYield;
    }
    Bytes out = *input;
    for (uint8_t& b : out) {
      b ^= 0x5A;
    }
    ctx.Compute(service_cycles);
    (void)env->SendOutput(ctx, out);
    return StepOutcome::kYield;
  };
}

StatusOr<Sandbox*> FleetSupervisor::LaunchServiceSandbox(const std::string& name,
                                                         Cycles service_cycles,
                                                         bool gate_probe) {
  SandboxSpec spec;
  spec.name = name;
  auto sandbox = world_->LaunchSandboxProcess(
      name, spec, MakeServiceProgram(name, service_cycles, gate_probe));
  if (sandbox.ok()) {
    ++launched_;
  }
  return sandbox;
}

Status FleetSupervisor::BootTemplate() {
  template_env_ = std::make_shared<LibosEnv>(
      LibosManifest{.name = "fleet-template", .heap_bytes = 1 << 20},
      LibosBackend::kSandboxed);
  auto env = template_env_;
  auto ready = ready_count_;
  auto frozen = template_frozen_;
  // The template serves nobody: it initializes its LibOS once, then parks. After
  // the freeze its confined pages are read-only template frames, so the parked
  // loop must never touch user memory again.
  auto program = [env, ready, frozen](SyscallContext& ctx) -> StepOutcome {
    if (frozen->load(std::memory_order_relaxed)) {
      return StepOutcome::kYield;
    }
    if (!env->initialized()) {
      if (!env->Initialize(ctx).ok()) {
        return StepOutcome::kExited;
      }
      ready->fetch_add(1, std::memory_order_relaxed);
    }
    return StepOutcome::kYield;
  };
  SandboxSpec spec;
  spec.name = "fleet-template";
  auto sandbox = world_->LaunchSandboxProcess(spec.name, spec, std::move(program));
  EREBOR_RETURN_IF_ERROR(sandbox.status());
  ++launched_;
  EREBOR_RETURN_IF_ERROR(world_->RunUntil(
      [&] { return ready_count_->load(std::memory_order_relaxed) >= launched_; },
      400'000));
  template_frozen_->store(true, std::memory_order_relaxed);
  EREBOR_RETURN_IF_ERROR(
      world_->monitor()->SnapshotTemplate(world_->machine().cpu(0), **sandbox));
  template_sandbox_ = *sandbox;
  return OkStatus();
}

Status FleetSupervisor::LaunchStandby() {
  const std::string name = "standby-" + std::to_string(standby_serial_++);
  if (config_.warm_clone_pool && template_sandbox_ != nullptr) {
    SandboxSpec spec;
    spec.name = name;
    auto promoted = std::make_shared<std::atomic<bool>>(false);
    auto sandbox = world_->LaunchCloneProcess(
        name, *template_sandbox_, spec,
        MakeServiceProgram(name, ServiceCostForTenant(standby_serial_),
                           /*gate_probe=*/false, template_env_, promoted));
    EREBOR_RETURN_IF_ERROR(sandbox.status());
    // No LibOS rendezvous: a parked clone runs nothing until promotion flips
    // its latch, so the pool refill is just the CloneFromTemplate delta.
    standby_promoted_[(*sandbox)->id] = std::move(promoted);
    standbys_.push_back(*sandbox);
    return OkStatus();
  }
  auto sandbox = LaunchServiceSandbox(name, ServiceCostForTenant(standby_serial_),
                                      /*gate_probe=*/false);
  EREBOR_RETURN_IF_ERROR(sandbox.status());
  EREBOR_RETURN_IF_ERROR(world_->RunUntil(
      [&] { return ready_count_->load(std::memory_order_relaxed) >= launched_; },
      400'000));
  standbys_.push_back(*sandbox);
  return OkStatus();
}

uint64_t FleetSupervisor::NowCycles() const {
  uint64_t now = 0;
  Machine& machine = world_->machine();
  for (int c = 0; c < machine.num_cpus(); ++c) {
    now = std::max(now, static_cast<uint64_t>(machine.cpu(c).cycles().now()));
  }
  return now;
}

FleetSupervisor::TenantState* FleetSupervisor::TenantBySandbox(int sandbox_id) {
  for (TenantState& t : tenants_) {
    if (t.sandbox != nullptr && t.sandbox->id == sandbox_id) {
      return &t;
    }
  }
  return nullptr;
}

void FleetSupervisor::HandleClientWire(const Bytes& wire) {
  // Record wires (the hot path) first; anything else goes through Packet.
  auto view = ParseRecordWire(wire);
  if (view.ok()) {
    TenantState* t = TenantBySandbox(view->sandbox_id);
    if (t == nullptr || t->client == nullptr ||
        view->type != PacketType::kResultRecord) {
      return;  // stale sandbox id (pre-replacement) or not a result: drop
    }
    auto result = t->client->OpenResult(wire);
    if (!result.ok()) {
      // Duplicate / stashed-ahead / corrupted: the client window accounted it.
      while (t->client->HasStashedResult()) {
        auto stashed = t->client->PopStashedResult();
        if (!stashed.ok()) {
          break;
        }
        t->results.push_back(std::move(*stashed));
      }
      return;
    }
    t->results.push_back(std::move(*result));
    while (t->client->HasStashedResult()) {
      auto stashed = t->client->PopStashedResult();
      if (!stashed.ok()) {
        break;
      }
      t->results.push_back(std::move(*stashed));
    }
    return;
  }
  auto packet = Packet::Deserialize(wire);
  if (!packet.ok() || packet->type != PacketType::kServerHello) {
    return;
  }
  TenantState* t = TenantBySandbox(packet->sandbox_id);
  if (t != nullptr && t->client != nullptr && !t->client->established()) {
    (void)t->client->ProcessServerHello(wire);
  }
}

void FleetSupervisor::DrainClientNetwork() {
  while (true) {
    auto wire = world_->ClientReceive();
    if (!wire.ok()) {
      return;
    }
    HandleClientWire(*wire);
  }
}

Status FleetSupervisor::Pump(uint64_t slices) {
  return world_->RunUntil(
      [&] {
        DrainClientNetwork();
        return false;
      },
      std::max<uint64_t>(slices, 1));
}

bool FleetSupervisor::SandboxDead(const TenantState& t) const {
  return t.sandbox == nullptr || t.sandbox->state == SandboxState::kQuarantined ||
         t.sandbox->state == SandboxState::kTornDown;
}

Status FleetSupervisor::HandshakeTenant(TenantState& t) {
  t.client = std::make_unique<RemoteClient>(
      world_->MakeTrustAnchors(),
      config_.seed ^ (static_cast<uint64_t>(t.tenant) << 8) ^
          (static_cast<uint64_t>(t.replacements) << 20) ^ 0x5EEDu);
  t.results.clear();
  world_->ClientSend(t.client->MakeHello(t.sandbox->id));
  for (int attempt = 0; attempt < kMaxHelloAttempts; ++attempt) {
    (void)world_->RunUntil(
        [&] {
          DrainClientNetwork();
          return t.client->established() || SandboxDead(t);
        },
        500);
    if (t.client->established()) {
      t.client->ResetRetryBudget();
      return OkStatus();
    }
    if (SandboxDead(t)) {
      return UnavailableError("tenant " + std::to_string(t.tenant) +
                              ": sandbox died during handshake");
    }
    if (t.client->retry_budget_exhausted()) {
      break;
    }
    world_->ClientSend(t.client->ResendHello());
    (void)Pump(t.client->retry_wait());
  }
  return UnavailableError("tenant " + std::to_string(t.tenant) +
                          ": handshake wedged");
}

Status FleetSupervisor::Start() {
  WorldConfig wc;
  wc.mode = SimMode::kEreborFull;
  wc.exec = config_.exec;
  wc.isolation = config_.isolation;
  wc.machine.num_cpus = config_.num_vcpus;
  world_ = std::make_unique<World>(wc);
  EREBOR_RETURN_IF_ERROR(world_->Boot());
  EREBOR_RETURN_IF_ERROR(world_->StartProxy());

  bool any_ring_attack = false;
  for (AttackClass attack : config_.attacks) {
    any_ring_attack |= attack == AttackClass::kRingDescriptors;
  }
  if (any_ring_attack) {
    world_->monitor()->EnableMmuRings(true);
  }

  tenants_.resize(static_cast<size_t>(config_.num_tenants));
  for (int i = 0; i < config_.num_tenants; ++i) {
    TenantState& t = tenants_[static_cast<size_t>(i)];
    t.tenant = i;
    t.attack = config_.attacks[static_cast<size_t>(i)];
    admission_.RegisterTenant(i);
    const std::string name = "tenant-" + std::to_string(i);
    auto sandbox = LaunchServiceSandbox(name, ServiceCostForTenant(i),
                                        t.attack == AttackClass::kGateProbe);
    EREBOR_RETURN_IF_ERROR(sandbox.status());
    t.sandbox = *sandbox;
    t.latency = MetricsRegistry::Global().GetLatencyHistogram(
        "serving.latency.tenant" + std::to_string(i), /*bucket_width=*/2'000,
        /*num_buckets=*/4096);
    t.latency->Reset();  // registry survives across worlds in one process
  }
  benign_latency_ = MetricsRegistry::Global().GetLatencyHistogram(
      "serving.latency.benign", 2'000, 4096);
  fleet_latency_ = MetricsRegistry::Global().GetLatencyHistogram(
      "serving.latency.fleet", 2'000, 4096);
  replacement_latency_ = MetricsRegistry::Global().GetLatencyHistogram(
      "fleet.replacement_latency_ns", /*bucket_width=*/50'000, /*num_buckets=*/4096);
  benign_latency_->Reset();
  fleet_latency_->Reset();
  replacement_latency_->Reset();

  // Pool mode: freeze a template first so the standby pool is CoW clones.
  if (config_.warm_clone_pool) {
    EREBOR_RETURN_IF_ERROR(BootTemplate());
  }

  // Warm standby pool, pre-initialized so promotion only pays the handshake.
  for (int i = 0; i < config_.standby_pool; ++i) {
    EREBOR_RETURN_IF_ERROR(LaunchStandby());
  }
  EREBOR_RETURN_IF_ERROR(world_->RunUntil(
      [&] { return ready_count_->load(std::memory_order_relaxed) >= launched_; },
      400'000));

  if (config_.chaos) {
    ChaosOptions options;
    options.seed = config_.chaos_seed;
    EREBOR_RETURN_IF_ERROR(world_->EnableChaos(options));
  }

  for (TenantState& t : tenants_) {
    EREBOR_RETURN_IF_ERROR(HandshakeTenant(t));
  }
  started_ = true;
  return OkStatus();
}

void FleetSupervisor::ServeOne(TenantState& t, int round) {
  Bytes payload(config_.payload_bytes);
  SplitMix64 fill(config_.seed ^ (static_cast<uint64_t>(t.tenant) << 32) ^
                  static_cast<uint64_t>(round));
  for (uint8_t& b : payload) {
    b = static_cast<uint8_t>(fill.Next());
  }
  Bytes expected = payload;
  for (uint8_t& b : expected) {
    b ^= 0x5A;
  }
  // Results of earlier, timed-out requests that straggled in are stale now.
  t.results.clear();
  const uint64_t submit_cycles = NowCycles();
  world_->ClientSend(t.client->SealData(payload));
  bool ok = false;
  bool dead = false;
  for (int resend = 0; resend <= kMaxResendRounds && !ok && !dead; ++resend) {
    if (resend > 0) {
      if (t.client->retry_budget_exhausted()) {
        break;
      }
      world_->ClientSend(t.client->ResendData());
      (void)Pump(t.client->retry_wait());
    }
    (void)world_->RunUntil(
        [&] {
          DrainClientNetwork();
          if (SandboxDead(t)) {
            dead = true;
            return true;
          }
          while (!t.results.empty()) {
            const bool match = t.results.front() == expected;
            t.results.pop_front();
            if (match) {
              ok = true;
              return true;
            }
          }
          return false;
        },
        config_.request_timeout_slices);
  }
  if (ok) {
    const uint64_t latency_ns = CyclesToNs(NowCycles() - submit_cycles);
    t.latency->Observe(latency_ns);
    fleet_latency_->Observe(latency_ns);
    if (t.attack == AttackClass::kNone) {
      benign_latency_->Observe(latency_ns);
    }
    ++t.served;
    t.no_progress = 0;
    t.client->ResetRetryBudget();
  } else {
    ++t.failed;
    ++t.no_progress;
  }
}

void FleetSupervisor::FireAttack(TenantState& t, int round) {
  switch (t.attack) {
    case AttackClass::kNone:
      return;
    case AttackClass::kForgedRecord: {
      // Junk keys, own sandbox id, in-window sequence: must die as a global
      // auth reject, charged to no session.
      Bytes junk(config_.payload_bytes, 0xEE);
      world_->ClientSend(SealRecordWire(junk_keys_.client_to_server,
                                        PacketType::kDataRecord, t.sandbox->id,
                                        t.sandbox->session.next_recv_seq, junk));
      break;
    }
    case AttackClass::kRelabeledRecord: {
      // Keys the monitor never negotiated, relabeled to a benign victim's
      // sandbox id: the victim's session must not be penalized for it.
      TenantState* victim = nullptr;
      for (TenantState& other : tenants_) {
        if (other.attack == AttackClass::kNone && !SandboxDead(other)) {
          victim = &other;
          break;
        }
      }
      Sandbox* target = victim != nullptr ? victim->sandbox : t.sandbox;
      Bytes junk(config_.payload_bytes, 0xDD);
      world_->ClientSend(SealRecordWire(junk_keys_.client_to_server,
                                        PacketType::kDataRecord, target->id,
                                        target->session.next_recv_seq, junk));
      break;
    }
    case AttackClass::kStaleHello: {
      // Fresh-nonce hello against a live session with data installed:
      // renegotiation refused, counted in "channel.hostile_hellos".
      if (t.hello_attacker == nullptr) {
        t.hello_attacker = std::make_unique<RemoteClient>(
            world_->MakeTrustAnchors(),
            config_.seed ^ 0xBADull ^ static_cast<uint64_t>(t.tenant));
      }
      world_->ClientSend(t.hello_attacker->MakeHello(t.sandbox->id));
      break;
    }
    case AttackClass::kGateProbe: {
      // Poke the compromised workload: the input it receives triggers its
      // forbidden syscall inside the sealed sandbox (kill + quarantine).
      Bytes poke(config_.payload_bytes, static_cast<uint8_t>(round));
      world_->ClientSend(t.client->SealData(poke));
      break;
    }
    case AttackClass::kRingDescriptors: {
      const int pin = t.tenant % config_.num_vcpus;
      EmcRingTable& rings = world_->monitor()->rings();
      if (!t.ring_bound) {
        (void)rings.BindSandbox(pin, t.sandbox->id);
        t.ring_bound = true;
      }
      EmcRing* ring = rings.ring(pin);
      if (ring == nullptr) {
        break;
      }
      uint32_t tail = ring->sq_tail.load(std::memory_order_relaxed);
      for (int i = 0; i < kRingStrikesPerRound; ++i) {
        RingSqe sqe;
        sqe.op = static_cast<RingOp>(kBogusRingOpcode);
        ring->sq[tail & EmcRing::kMask] = sqe;
        ++tail;
      }
      ring->sq_tail.store(tail, std::memory_order_relaxed);
      (void)world_->privops().RingDoorbell(world_->machine().cpu(pin));
      break;
    }
  }
  ++t.no_progress;
  (void)Pump(kAttackPumpSlices);
}

void FleetSupervisor::QuarantineTenant(TenantState& t, const std::string& reason) {
  if (t.sandbox == nullptr || SandboxDead(t)) {
    return;
  }
  (void)world_->monitor()->sandboxes().Quarantine(world_->machine().cpu(0),
                                                  *t.sandbox, reason);
}

void FleetSupervisor::SuperviseTenant(TenantState& t) {
  if (t.pending_replace ||
      admission_.state(t.tenant) == TenantAdmitState::kShedding) {
    return;
  }
  uint64_t ring_strikes = 0;
  if (t.sandbox != nullptr) {
    EmcRingTable& rings = world_->monitor()->rings();
    for (int i = 0; i < rings.size(); ++i) {
      const RingState* rs = rings.state(i);
      if (rs != nullptr && rs->bound_sandbox == t.sandbox->id) {
        ring_strikes += rs->strikes;
      }
    }
  }
  const uint64_t fault_strikes = t.sandbox != nullptr ? t.sandbox->fault_strikes : 0;
  const uint64_t rejects =
      t.sandbox != nullptr ? std::min<uint64_t>(t.sandbox->session.rejects, 10) : 0;
  t.health = 100.0 - kNoProgressPenalty * static_cast<double>(t.no_progress) -
             kFaultStrikePenalty * static_cast<double>(fault_strikes) -
             kSessionRejectPenalty * static_cast<double>(rejects) -
             kRingStrikePenalty * static_cast<double>(ring_strikes);
  const bool dead = SandboxDead(t);
  if (!dead && t.health > config_.health_floor) {
    return;
  }
  if (!dead) {
    QuarantineTenant(t, "fleet supervisor: health " + std::to_string(t.health) +
                            " at or below floor");
  }
  ++t.quarantines;
  if (t.replacements >= config_.max_replacements_per_tenant) {
    // Replacement budget spent: this tenant's traffic is shed from here on.
    // The fleet keeps serving everyone else.
    admission_.SetState(t.tenant, TenantAdmitState::kShedding);
    return;
  }
  admission_.SetState(t.tenant, TenantAdmitState::kDraining);
  t.pending_replace = true;
  t.replace_detect_cycles = NowCycles();
}

Status FleetSupervisor::PromoteStandby(TenantState& t) {
  if (standbys_.empty()) {
    // Cold path: the warm pool ran dry; pay for a cold launch.
    EREBOR_RETURN_IF_ERROR(LaunchStandby());
  }
  Sandbox* standby = standbys_.front();
  standbys_.pop_front();
  // A parked clone holds no isolation domain; promotion allocates it now so
  // exhaustion surfaces here as a launch-time refusal, not a mid-request kill.
  if (standby->domain_deferred) {
    const Status promoted =
        world_->monitor()->ActivateClone(world_->machine().cpu(0), *standby);
    if (!promoted.ok()) {
      admission_.SetState(t.tenant, TenantAdmitState::kShedding);
      t.pending_replace = false;
      return promoted;
    }
    MetricsRegistry::Global().Increment("fleet.pool.promotions");
  }
  const auto latch = standby_promoted_.find(standby->id);
  if (latch != standby_promoted_.end()) {
    latch->second->store(true, std::memory_order_relaxed);
    standby_promoted_.erase(latch);
  }
  t.sandbox = standby;
  t.ring_bound = false;
  t.results.clear();
  const Status handshake = HandshakeTenant(t);
  if (!handshake.ok()) {
    admission_.SetState(t.tenant, TenantAdmitState::kShedding);
    t.pending_replace = false;
    return handshake;
  }
  ++t.replacements;
  t.no_progress = 0;
  t.health = 100.0;
  replacement_latency_->Observe(CyclesToNs(NowCycles() - t.replace_detect_cycles));
  MetricsRegistry::Global().Increment("fleet.replacements");
  admission_.SetState(t.tenant, TenantAdmitState::kServing);
  t.pending_replace = false;
  // Refill the warm pool outside the recovery-latency window.
  return LaunchStandby();
}

Status FleetSupervisor::RunServing() {
  if (!started_) {
    return FailedPreconditionError("fleet: Start() first");
  }
  serving_start_cycles_ = NowCycles();
  for (int round = 0; round < config_.requests_per_tenant; ++round) {
    for (TenantState& t : tenants_) {
      const AdmitDecision decision = admission_.Admit(t.tenant);
      if (decision == AdmitDecision::kShed) {
        continue;
      }
      if (decision == AdmitDecision::kDefer) {
        ++t.deferred_rounds;
        if (t.pending_replace) {
          // The deferred round is the drain window: promote now so the next
          // round admits against the replacement sandbox.
          (void)PromoteStandby(t);
        }
        continue;
      }
      // A replaced gate-probe / ring tenant runs a clean standby image: its
      // sandbox-side attack is gone and it serves benignly. Channel-side
      // attackers keep attacking and spend their replacement budget.
      const bool sandbox_attack_disarmed =
          t.replacements > 0 && (t.attack == AttackClass::kGateProbe ||
                                 t.attack == AttackClass::kRingDescriptors);
      if (t.attack != AttackClass::kNone && round >= kHostileStartRound &&
          !sandbox_attack_disarmed) {
        FireAttack(t, round);
      } else {
        ServeOne(t, round);
      }
      SuperviseTenant(t);
    }
  }
  serving_end_cycles_ = NowCycles();
  return OkStatus();
}

StatusOr<std::vector<uint64_t>> FleetSupervisor::RunBurstIngest(int rounds) {
  if (!started_) {
    return FailedPreconditionError("fleet: Start() first");
  }
  std::vector<uint64_t> counts(static_cast<size_t>(config_.num_tenants), 0);
  if (rounds <= 0) {
    return counts;
  }
  // Pre-seal with each live session's real keys, continuing its sequence space.
  std::vector<int> live;
  std::vector<std::vector<Bytes>> records(tenants_.size());
  Bytes payload(config_.payload_bytes, 0x42);
  for (TenantState& t : tenants_) {
    if (SandboxDead(t) || t.client == nullptr || !t.client->established()) {
      continue;
    }
    live.push_back(t.tenant);
    for (int r = 0; r < rounds; ++r) {
      records[static_cast<size_t>(t.tenant)].push_back(t.client->SealData(payload));
    }
  }
  if (live.empty()) {
    return counts;
  }

  EreborMonitor* monitor = world_->monitor();
  monitor->SetEmcLocking(EmcLocking::kSharded);
  monitor->SetLockContention(config_.exec == ExecMode::kDeterministic);
  LockAudit::Global().Reset();

  Machine& machine = world_->machine();
  Cycles align = 0;
  for (int c = 0; c < config_.num_vcpus; ++c) {
    align = std::max(align, machine.cpu(c).cycles().now());
  }
  for (int c = 0; c < config_.num_vcpus; ++c) {
    machine.cpu(c).cycles().Charge(align - machine.cpu(c).cycles().now());
  }

  std::vector<uint64_t> base(tenants_.size(), 0);
  for (int tenant : live) {
    base[static_cast<size_t>(tenant)] =
        tenants_[static_cast<size_t>(tenant)].sandbox->session.next_recv_seq;
  }

  // Tenant t is pinned to vCPU t % num_vcpus (records must stay in sequence per
  // session); each round every vCPU ingests one batch holding one record per
  // pinned tenant, so contended acquisitions overlap like a real burst.
  const auto ingest_for_cpu = [&](int c) -> Status {
    for (int round = 0; round < rounds; ++round) {
      std::vector<Bytes> batch;
      for (int tenant : live) {
        if (tenant % config_.num_vcpus == c) {
          batch.push_back(records[static_cast<size_t>(tenant)][
              static_cast<size_t>(round)]);
        }
      }
      if (batch.empty()) {
        continue;
      }
      EREBOR_RETURN_IF_ERROR(monitor->ProxyDeliverBatch(machine.cpu(c), batch));
    }
    return OkStatus();
  };
  if (config_.exec == ExecMode::kDeterministic) {
    for (int c = 0; c < config_.num_vcpus; ++c) {
      EREBOR_RETURN_IF_ERROR(ingest_for_cpu(c));
    }
  } else {
    EREBOR_RETURN_IF_ERROR(world_->RunOnThreads(ingest_for_cpu));
  }

  for (int tenant : live) {
    TenantState& t = tenants_[static_cast<size_t>(tenant)];
    counts[static_cast<size_t>(tenant)] =
        t.sandbox->session.next_recv_seq - base[static_cast<size_t>(tenant)];
  }
  return counts;
}

FleetReport FleetSupervisor::Report() {
  FleetReport report;
  if (!started_) {
    report.error = "fleet: Start() failed or was never called";
    return report;
  }
  report.ok = true;
  report.num_tenants = config_.num_tenants;
  report.containment = true;
  uint64_t fp = config_.seed;
  for (TenantState& t : tenants_) {
    TenantReport tr;
    tr.tenant = t.tenant;
    tr.sandbox_id = t.sandbox != nullptr ? t.sandbox->id : -1;
    tr.attack = t.attack;
    tr.admit_state = admission_.state(t.tenant);
    tr.served = t.served;
    tr.failed = t.failed;
    tr.deferred = admission_.deferred(t.tenant);
    tr.shed = admission_.shed(t.tenant);
    tr.quarantines = t.quarantines;
    tr.replacements = static_cast<uint64_t>(t.replacements);
    tr.health = t.health;
    tr.p50_ns = t.latency->Percentile(0.50);
    tr.p99_ns = t.latency->Percentile(0.99);
    tr.p999_ns = t.latency->Percentile(0.999);
    MetricsRegistry::Global().Increment(
        "serving.p99_ns.tenant" + std::to_string(t.tenant), tr.p99_ns);
    report.total_served += tr.served;
    report.total_failed += tr.failed;
    report.total_deferred += tr.deferred;
    report.total_shed += tr.shed;
    report.quarantines += tr.quarantines;
    report.replacements += tr.replacements;
    if (t.attack == AttackClass::kNone) {
      // A benign tenant touched by containment failure: any quarantine at all.
      report.containment &= t.quarantines == 0;
    } else {
      report.containment &= t.quarantines >= 1 && t.replacements >= 1;
    }
    for (uint64_t v :
         {static_cast<uint64_t>(t.tenant), static_cast<uint64_t>(t.attack),
          tr.served, tr.failed, tr.deferred, tr.shed, tr.quarantines,
          tr.replacements, static_cast<uint64_t>(tr.admit_state)}) {
      fp = MixFingerprint(fp, v);
    }
    report.tenants.push_back(tr);
  }
  report.fingerprint = fp;
  report.benign_p50_ns = benign_latency_->Percentile(0.50);
  report.benign_p99_ns = benign_latency_->Percentile(0.99);
  report.benign_p999_ns = benign_latency_->Percentile(0.999);
  report.fleet_p50_ns = fleet_latency_->Percentile(0.50);
  report.fleet_p99_ns = fleet_latency_->Percentile(0.99);
  report.fleet_p999_ns = fleet_latency_->Percentile(0.999);
  report.replacement_max_ns = replacement_latency_->max();
  report.replacement_mean_ns = static_cast<uint64_t>(replacement_latency_->mean());
  const uint64_t span_cycles = serving_end_cycles_ > serving_start_cycles_
                                   ? serving_end_cycles_ - serving_start_cycles_
                                   : 0;
  report.span_seconds = static_cast<double>(span_cycles) / 2.1e9;
  report.ops_per_sec = report.span_seconds > 0.0
                           ? static_cast<double>(report.total_served) /
                                 report.span_seconds
                           : 0.0;
  // Invariant audit at a safe point: the hostile mix must not have degraded the
  // monitor's posture (includes the family-6 quarantine-fencing checks).
  InvariantChecker checker(world_->monitor());
  const Status invariants = checker.CheckAll();
  report.invariant_violations =
      world_->invariant_violations() + (invariants.ok() ? 0 : 1);
  if (!invariants.ok()) {
    report.error = invariants.ToString();
  }
  return report;
}

}  // namespace erebor
