// Per-tenant admission control for the fleet supervisor.
//
// When a tenant's sandbox is being drained and replaced, the supervisor must not
// stall the whole fleet — only that tenant's traffic is affected. Each tenant sits
// in one of three states:
//
//   kServing  - requests are admitted normally.
//   kDraining - the tenant's sandbox is quarantined/tearing down and a standby is
//               being promoted: requests are *deferred* (counted, retried next
//               round) up to a per-tenant bound, then shed.
//   kShedding - the tenant exhausted its replacement budget (repeatedly hostile or
//               repeatedly failing): requests are refused outright. Terminal.
//
// Every decision is accounted both per-tenant and in the global metrics registry
// ("fleet.admission_deferred", "fleet.admission_shed"), so the bench and the soak
// test can assert that load shedding stayed tenant-scoped.
#ifndef EREBOR_SRC_FLEET_ADMISSION_H_
#define EREBOR_SRC_FLEET_ADMISSION_H_

#include <cstdint>
#include <map>

namespace erebor {

enum class TenantAdmitState : uint8_t { kServing, kDraining, kShedding };
enum class AdmitDecision : uint8_t { kAdmit, kDefer, kShed };

const char* TenantAdmitStateName(TenantAdmitState state);
const char* AdmitDecisionName(AdmitDecision decision);

struct AdmissionPolicy {
  // Requests a draining tenant may defer before further ones are shed: bounds the
  // backlog a slow replacement can accumulate.
  uint64_t max_deferred_per_tenant = 8;
};

class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionPolicy& policy) : policy_(policy) {}

  void RegisterTenant(int tenant);

  // State transitions. Entering kDraining re-arms the deferral budget; kShedding
  // is terminal (SetState back out of it is refused).
  void SetState(int tenant, TenantAdmitState state);
  TenantAdmitState state(int tenant) const;

  // Classifies one incoming request and accounts the decision.
  AdmitDecision Admit(int tenant);

  uint64_t admitted(int tenant) const;
  uint64_t deferred(int tenant) const;
  uint64_t shed(int tenant) const;

 private:
  struct TenantAdmission {
    TenantAdmitState state = TenantAdmitState::kServing;
    uint64_t draining_deferred = 0;  // deferrals since entering kDraining
    uint64_t admitted = 0;
    uint64_t deferred = 0;
    uint64_t shed = 0;
  };

  AdmissionPolicy policy_;
  std::map<int, TenantAdmission> tenants_;
};

}  // namespace erebor

#endif  // EREBOR_SRC_FLEET_ADMISSION_H_
