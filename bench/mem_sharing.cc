// Section 9.2 memory claim: common-memory sharing cuts per-sandbox memory consumption
// by up to 89.1% (paper: a 4GB llama model replicated across 8 containers would need
// ~36GB; sharing reduces it to ~8GB). This bench launches N sandboxes against one
// shared model region and reports footprint with and without sharing. With
// EREBOR_BENCH_JSON set, the table lands in BENCH_mem_sharing.json.
#include <cstdio>
#include <string>

#include "bench/bench_json.h"
#include "src/libos/libos.h"
#include "src/sim/world.h"

using namespace erebor;

int main() {
  std::printf("=== Memory sharing ablation (section 9.2) ===\n");
  const uint64_t model_bytes = 24ull << 20;  // scaled llama model
  const uint64_t confined_bytes = 3ull << 20;  // per-sandbox K-V cache + heap
  std::printf("model (common candidate): %llu MB; per-sandbox confined: %llu MB\n\n",
              static_cast<unsigned long long>(model_bytes >> 20),
              static_cast<unsigned long long>(confined_bytes >> 20));
  std::printf("%-10s %16s %18s %10s\n", "sandboxes", "shared (MB)", "replicated (MB)",
              "savings");

  bool ok = true;
  double savings_at_8 = 0.0;
  Json rows = Json::Array();
  for (const int n : {1, 2, 4, 8}) {
    WorldConfig config;
    config.mode = SimMode::kEreborFull;
    config.machine.memory_frames = 96 * 1024;
    World world(config);
    if (!world.Boot().ok()) {
      std::printf("boot failed\n");
      return 1;
    }
    auto region = world.monitor()->CreateCommonRegion("model", model_bytes);
    if (!region.ok()) {
      std::printf("region failed\n");
      return 1;
    }
    Cpu& cpu = world.machine().cpu(0);
    int initialized = 0;
    for (int i = 0; i < n; ++i) {
      SandboxSpec spec;
      spec.name = "sb" + std::to_string(i);
      spec.confined_budget_bytes = confined_bytes + (1 << 20);
      auto env = std::make_shared<LibosEnv>(
          LibosManifest{.name = spec.name, .heap_bytes = confined_bytes},
          LibosBackend::kSandboxed);
      auto sandbox = world.LaunchSandboxProcess(
          spec.name, spec,
          [env, &initialized](SyscallContext& ctx) -> StepOutcome {
            if (!env->initialized()) {
              if (!env->Initialize(ctx).ok()) {
                return StepOutcome::kExited;
              }
              ++initialized;
            }
            return StepOutcome::kExited;
          });
      if (!sandbox.ok()) {
        std::printf("launch failed: %s\n", sandbox.status().ToString().c_str());
        return 1;
      }
      (void)world.monitor()->AttachCommon(cpu, **sandbox, (*region)->id,
                                          kLibosCommonBase, false);
    }
    (void)world.RunUntil([&] { return initialized == n; });

    // Footprint with sharing: one model copy + n confined arenas.
    const uint64_t shared_frames =
        world.monitor()->frame_table().CountType(FrameType::kSandboxCommon) +
        world.monitor()->frame_table().CountType(FrameType::kSandboxConfined);
    // Without sharing every sandbox holds a private replica of the model.
    const uint64_t replicated_frames =
        shared_frames + static_cast<uint64_t>(n - 1) * (model_bytes >> kPageShift);
    const double savings =
        100.0 * (1.0 - static_cast<double>(shared_frames) / replicated_frames);
    std::printf("%-10d %16.1f %18.1f %9.1f%%\n", n, shared_frames * 4096.0 / 1048576,
                replicated_frames * 4096.0 / 1048576, savings);
    ok &= initialized == n;
    if (n == 8) {
      savings_at_8 = savings;
    }
    rows.Push(Json::Object()
                  .Set("sandboxes", n)
                  .Set("shared_frames", shared_frames)
                  .Set("replicated_frames", replicated_frames)
                  .Set("shared_mb", shared_frames * 4096.0 / 1048576)
                  .Set("replicated_mb", replicated_frames * 4096.0 / 1048576)
                  .Set("savings_pct", savings));
  }
  std::printf("\npaper: 0.15-9.2x memory reduction, up to 89.1%% for a single sandbox's "
              "share (llama: ~36GB -> ~8GB across 8 containers)\n");

  // The 8-sandbox row carries the headline claim: one shared model copy versus
  // eight replicas must save the bulk of the footprint.
  ok &= savings_at_8 >= 60.0;
  Json root = Json::Object();
  root.Set("bench", "mem_sharing")
      .Set("model_mb", model_bytes >> 20)
      .Set("confined_mb_per_sandbox", confined_bytes >> 20)
      .Set("savings_at_8_pct", savings_at_8)
      .Set("rows", std::move(rows))
      .Set("pass", ok);
  std::string path;
  if (WriteBenchJson("mem_sharing", root, &path)) {
    std::printf("mem_sharing: JSON written to %s\n", path.c_str());
  }
  if (!ok) {
    std::printf("mem_sharing: FAIL (init wedged or sharing lost its savings)\n");
  }
  return ok ? 0 : 1;
}
