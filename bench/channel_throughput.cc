// Channel throughput bench, two parts:
//
// Part A (wall clock): single-session seal+open record pipeline, new zero-copy
// accelerated path (SealRecordWire/ParseRecordWire/OpenRecordWire with the
// SHA-NI + AVX2 dispatch) versus a faithful replica of the pre-PR scalar path
// (byte-at-a-time ChaCha20 block XOR, scalar SHA-256, and the full
// plaintext -> SealedRecord -> Packet::Serialize -> Deserialize -> AeadOpen
// copy chain). Both paths must produce byte-identical wires and plaintexts;
// the new path must be >= 4x at 64 KiB records.
//
// Part B (simulated cycles): multi-session ingest aggregate through
// ProxyDeliverBatch on an 8-vCPU machine, 1/4/16 concurrent sessions, global
// versus sharded EMC locking with deterministic lock-contention simulation.
// Throughput is bytes * 2.1e9 / max-per-vCPU-cycle-delta. Sharded locking at
// 16 sessions must be >= 2x the 1-session aggregate.
//
// Part B also re-runs the sharded ingest cells on the real-thread execution
// engine (one OS thread per vCPU, real mutexes instead of simulated
// contention); every threaded cell must ingest exactly the same per-session
// record counts as a fresh deterministic oracle run. Set
// EREBOR_EXEC=deterministic to skip the threaded half.
//
// Emits BENCH_channel.json (scripts/bench.sh collects and validates it).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "src/common/rng.h"
#include "src/crypto/accel.h"
#include "src/crypto/aead.h"
#include "src/crypto/chacha20.h"
#include "src/libos/libos.h"
#include "src/monitor/channel.h"
#include "src/sim/world.h"

using namespace erebor;

namespace {

// ---- Part A: the pre-PR scalar copy-chain, replicated byte-for-byte ----

ChaChaNonce NonceFromSequence(uint64_t sequence) {
  ChaChaNonce nonce{};
  StoreLe64(nonce.data() + 4, sequence);
  return nonce;
}

// Pre-PR seal: copy the plaintext into a SealedRecord, encrypt it in place with
// the byte-wise scalar ChaCha20, MAC with scalar SHA-256, then serialize the
// whole Packet into yet another buffer.
Bytes BaselineSealToWire(const AeadKeys& keys, int32_t sandbox_id, uint64_t seq,
                         const Bytes& plaintext) {
  accel::ScopedEnable scalar_only(false);
  Packet packet;
  packet.type = PacketType::kDataRecord;
  packet.sandbox_id = sandbox_id;
  packet.record.sequence = seq;
  packet.record.ciphertext = plaintext;  // copy 1
  ChaCha20XorScalar(keys.cipher_key, NonceFromSequence(seq), 1,
                    packet.record.ciphertext.data(), packet.record.ciphertext.size());
  packet.record.tag =
      ComputeTag(keys, RecordAad{static_cast<uint8_t>(packet.type), sandbox_id}, seq,
                 packet.record.ciphertext.data(), packet.record.ciphertext.size());
  return packet.Serialize();  // copy 2
}

// Pre-PR open: deserialize into a Packet (ciphertext copy), verify, then
// decrypt into a fresh plaintext buffer.
StatusOr<Bytes> BaselineOpenFromWire(const AeadKeys& keys, const Bytes& wire,
                                     uint64_t expected_seq) {
  accel::ScopedEnable scalar_only(false);
  EREBOR_ASSIGN_OR_RETURN(const Packet packet, Packet::Deserialize(wire));  // copy 3
  if (packet.record.sequence != expected_seq) {
    return PermissionDeniedError("sequence mismatch");
  }
  const Digest256 tag =
      ComputeTag(keys, RecordAad{static_cast<uint8_t>(packet.type), packet.sandbox_id},
                 expected_seq, packet.record.ciphertext.data(),
                 packet.record.ciphertext.size());
  if (!ConstantTimeEqual(tag.data(), packet.record.tag.data(), tag.size())) {
    return PermissionDeniedError("tag mismatch");
  }
  Bytes plaintext = packet.record.ciphertext;  // copy 4
  ChaCha20XorScalar(keys.cipher_key, NonceFromSequence(expected_seq), 1,
                    plaintext.data(), plaintext.size());
  return plaintext;
}

struct PipelineCell {
  size_t record_bytes = 0;
  double baseline_mbps = 0;
  double zero_copy_mbps = 0;
  double speedup() const {
    return baseline_mbps == 0 ? 0 : zero_copy_mbps / baseline_mbps;
  }
};

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

bool RunPipelineCell(size_t record_bytes, PipelineCell* out) {
  const SessionKeys session = DeriveSessionKeys(Bytes(32, 0x42), Digest256{});
  const AeadKeys& keys = session.client_to_server;
  Rng rng(record_bytes);
  Bytes plaintext(record_bytes);
  rng.Fill(plaintext.data(), plaintext.size());

  // Cross-check first: the two paths must agree on every byte of both the wire
  // and the decrypted plaintext, or the speedup would be comparing different
  // protocols.
  const Bytes baseline_wire = BaselineSealToWire(keys, 1, 0, plaintext);
  const Bytes new_wire = SealRecordWire(keys, PacketType::kDataRecord, 1, 0, plaintext);
  if (baseline_wire != new_wire) {
    std::printf("channel_throughput: wire mismatch at %zu bytes\n", record_bytes);
    return false;
  }
  const auto baseline_plain = BaselineOpenFromWire(keys, baseline_wire, 0);
  auto view = ParseRecordWire(new_wire);
  if (!view.ok()) {
    return false;
  }
  const auto new_plain = OpenRecordWire(keys, *view, 0);
  if (!baseline_plain.ok() || !new_plain.ok() || *baseline_plain != plaintext ||
      *new_plain != plaintext) {
    std::printf("channel_throughput: plaintext mismatch at %zu bytes\n", record_bytes);
    return false;
  }

  // ~32 MiB of record payload per measured cell (floor of 64 iterations).
  const int iters =
      std::max<int>(64, static_cast<int>((32u << 20) / std::max<size_t>(record_bytes, 1)));

  {
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) {
      const Bytes wire = BaselineSealToWire(keys, 1, i, plaintext);
      const auto opened = BaselineOpenFromWire(keys, wire, i);
      if (!opened.ok()) {
        return false;
      }
    }
    out->baseline_mbps =
        static_cast<double>(record_bytes) * iters / SecondsSince(start) / 1e6;
  }
  {
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) {
      const Bytes wire =
          SealRecordWire(keys, PacketType::kDataRecord, 1, i, plaintext);
      auto parsed = ParseRecordWire(wire);
      if (!parsed.ok()) {
        return false;
      }
      const auto opened = OpenRecordWire(keys, *parsed, i);
      if (!opened.ok()) {
        return false;
      }
    }
    out->zero_copy_mbps =
        static_cast<double>(record_bytes) * iters / SecondsSince(start) / 1e6;
  }
  out->record_bytes = record_bytes;
  return true;
}

// ---- Part B: multi-session batched ingest under the EMC lock plans ----

constexpr int kVcpus = 8;
constexpr int kRounds = 120;
constexpr uint64_t kIngestPayload = 4096;

struct IngestCell {
  int sessions = 0;
  EmcLocking locking = EmcLocking::kGlobal;
  uint64_t bytes = 0;
  Cycles wall_cycles = 0;
  uint64_t wall_ns = 0;  // host wall clock (meaningful on the threaded engine)
  // Per-session ingested record counts (session.next_recv_seq), the oracle
  // observable for the engine comparison.
  std::vector<uint64_t> recv_seqs;
  // Aggregate simulated throughput in MB/s at 2.1 GHz.
  double mbps() const {
    return wall_cycles == 0 ? 0 : static_cast<double>(bytes) * 2.1e9 / wall_cycles / 1e6;
  }
  double wall_mbps() const {
    return wall_ns == 0 ? 0 : static_cast<double>(bytes) * 1e9 / wall_ns / 1e6;
  }
};

bool RunIngestCell(int sessions, EmcLocking locking, IngestCell* out,
                   ExecMode exec = ExecMode::kDeterministic) {
  WorldConfig config;
  config.mode = SimMode::kEreborFull;
  config.exec = exec;
  // Up to 16 concurrent ingest sessions — past PKS's 11 sandbox domains.
  config.isolation = IsolationKind::kTmeMk;
  config.machine.num_cpus = kVcpus;
  config.machine.memory_frames = 64 * 1024;
  World world(config);
  if (!world.Boot().ok()) {
    std::printf("channel_throughput: boot failed (%d sessions)\n", sessions);
    return false;
  }

  int initialized = 0;
  std::vector<Sandbox*> fleet;
  for (int i = 0; i < sessions; ++i) {
    SandboxSpec spec;
    spec.name = "chan" + std::to_string(i);
    spec.confined_budget_bytes = 2 << 20;
    auto env = std::make_shared<LibosEnv>(
        LibosManifest{.name = spec.name, .heap_bytes = 1 << 20},
        LibosBackend::kSandboxed);
    auto sandbox = world.LaunchSandboxProcess(
        spec.name, spec, [env, &initialized](SyscallContext& ctx) -> StepOutcome {
          if (!env->initialized()) {
            if (!env->Initialize(ctx).ok()) {
              return StepOutcome::kExited;
            }
            ++initialized;
          }
          ctx.Compute(10'000);  // stay resident; the bench drives ingest directly
          return StepOutcome::kYield;
        });
    if (!sandbox.ok()) {
      std::printf("channel_throughput: launch failed: %s\n",
                  sandbox.status().ToString().c_str());
      return false;
    }
    fleet.push_back(*sandbox);
  }
  if (!world.RunUntil([&] { return initialized == sessions; }, 400'000).ok()) {
    std::printf("channel_throughput: sandboxes failed to initialize\n");
    return false;
  }

  // Install session keys directly (the handshake itself is not under test) and
  // pre-seal every record so only the ingest path is measured.
  std::vector<std::vector<Bytes>> records(sessions);
  Rng rng(7);
  Bytes payload(kIngestPayload);
  rng.Fill(payload.data(), payload.size());
  for (int s = 0; s < sessions; ++s) {
    Sandbox* sandbox = fleet[s];
    sandbox->session.keys = DeriveSessionKeys(Bytes(32, static_cast<uint8_t>(s + 1)),
                                              Digest256{});
    sandbox->session.established = true;
    for (int r = 0; r < kRounds; ++r) {
      records[s].push_back(SealRecordWire(sandbox->session.keys.client_to_server,
                                          PacketType::kDataRecord, sandbox->id, r,
                                          payload));
    }
  }

  EreborMonitor* monitor = world.monitor();
  monitor->SetEmcLocking(locking);
  // Deterministic cells charge simulated contention; under real threads the
  // lock plans are backed by real mutexes and wall time is the signal.
  monitor->SetLockContention(exec == ExecMode::kDeterministic);
  LockAudit::Global().Reset();

  Machine& machine = world.machine();
  Cycles align = 0;
  for (int c = 0; c < kVcpus; ++c) {
    align = std::max(align, machine.cpu(c).cycles().now());
  }
  for (int c = 0; c < kVcpus; ++c) {
    machine.cpu(c).cycles().Charge(align - machine.cpu(c).cycles().now());
  }
  std::vector<Cycles> start(kVcpus);
  for (int c = 0; c < kVcpus; ++c) {
    start[c] = machine.cpu(c).cycles().now();
  }

  // Session s is pinned to vCPU s % kVcpus (records must stay in sequence per
  // session); each round every vCPU ingests one batch holding one record for
  // each of its sessions, interleaved round-robin so contended acquisitions
  // overlap the way a real concurrent burst would. On the threaded engine the
  // same per-vCPU schedule runs on real OS threads.
  const auto wall_start = std::chrono::steady_clock::now();
  if (exec == ExecMode::kDeterministic) {
    for (int round = 0; round < kRounds; ++round) {
      for (int c = 0; c < kVcpus; ++c) {
        std::vector<Bytes> batch;
        for (int s = c; s < sessions; s += kVcpus) {
          batch.push_back(records[s][round]);
        }
        if (batch.empty()) {
          continue;
        }
        const Status st = monitor->ProxyDeliverBatch(machine.cpu(c), batch);
        if (!st.ok()) {
          std::printf("channel_throughput: ingest failed: %s\n", st.ToString().c_str());
          return false;
        }
      }
    }
  } else {
    const Status st = world.RunOnThreads([&](int c) -> Status {
      for (int round = 0; round < kRounds; ++round) {
        std::vector<Bytes> batch;
        for (int s = c; s < sessions; s += kVcpus) {
          batch.push_back(records[s][round]);
        }
        if (batch.empty()) {
          continue;
        }
        EREBOR_RETURN_IF_ERROR(monitor->ProxyDeliverBatch(machine.cpu(c), batch));
      }
      return OkStatus();
    });
    if (!st.ok()) {
      std::printf("channel_throughput: threaded ingest failed: %s\n",
                  st.ToString().c_str());
      return false;
    }
  }
  const auto wall_end = std::chrono::steady_clock::now();

  Cycles wall = 0;
  for (int c = 0; c < kVcpus; ++c) {
    wall = std::max(wall, machine.cpu(c).cycles().now() - start[c]);
  }

  // Every record must actually have been installed, in order, per session.
  for (int s = 0; s < sessions; ++s) {
    if (fleet[s]->session.next_recv_seq != static_cast<uint64_t>(kRounds)) {
      std::printf("channel_throughput: session %d ingested %llu/%d records\n", s,
                  static_cast<unsigned long long>(fleet[s]->session.next_recv_seq),
                  kRounds);
      return false;
    }
  }
  if (LockAudit::Global().violations() != 0) {
    std::printf("channel_throughput: lock-discipline violations recorded\n");
    return false;
  }
  if (!monitor->AuditInvariants().ok()) {
    std::printf("channel_throughput: invariant audit failed\n");
    return false;
  }

  out->sessions = sessions;
  out->locking = locking;
  out->bytes = static_cast<uint64_t>(sessions) * kRounds * kIngestPayload;
  out->wall_cycles = wall;
  out->wall_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(wall_end - wall_start)
          .count());
  out->recv_seqs.clear();
  for (int s = 0; s < sessions; ++s) {
    out->recv_seqs.push_back(fleet[s]->session.next_recv_seq);
  }
  return true;
}

}  // namespace

int main() {
  const bool accelerated = accel::HasShaNi() && accel::HasAvx2();
  std::printf("=== channel throughput ===\n");
  std::printf("cpu features: sha_ni=%d avx2=%d\n", accel::HasShaNi(), accel::HasAvx2());

  // Part A.
  std::printf("\n-- single-session seal+open pipeline (wall clock) --\n");
  std::printf("%-12s %14s %14s %9s\n", "record", "scalar MB/s", "zero-copy MB/s",
              "speedup");
  Json pipeline = Json::Array();
  double speedup_64k = 0;
  bool ok = true;
  for (const size_t bytes :
       {size_t{64}, size_t{1024}, size_t{4096}, size_t{65536}, size_t{262144}}) {
    PipelineCell cell;
    if (!RunPipelineCell(bytes, &cell)) {
      return 1;
    }
    if (bytes == 65536) {
      speedup_64k = cell.speedup();
    }
    std::printf("%-12zu %14.1f %14.1f %8.2fx\n", bytes, cell.baseline_mbps,
                cell.zero_copy_mbps, cell.speedup());
    pipeline.Push(Json::Object()
                      .Set("record_bytes", static_cast<uint64_t>(cell.record_bytes))
                      .Set("baseline_mbps", cell.baseline_mbps)
                      .Set("zero_copy_mbps", cell.zero_copy_mbps)
                      .Set("speedup", cell.speedup()));
  }
  std::printf("\nspeedup at 64 KiB records: %.2fx (target >= 4x)\n", speedup_64k);
  if (speedup_64k < 4.0) {
    if (accelerated) {
      std::printf("channel_throughput: FAIL below 4x at 64 KiB\n");
      ok = false;
    } else {
      std::printf("channel_throughput: WARN no SHA-NI/AVX2 on this host; "
                  "4x gate skipped\n");
    }
  }

  // Part B.
  std::printf("\n-- multi-session batched ingest (simulated cycles, %d vCPUs) --\n",
              kVcpus);
  std::printf("%-9s %14s %14s %9s\n", "sessions", "global MB/s", "sharded MB/s",
              "speedup");
  Json ingest = Json::Array();
  double sharded_1 = 0, sharded_16 = 0;
  for (const int sessions : {1, 4, 16}) {
    IngestCell global_cell, sharded_cell;
    if (!RunIngestCell(sessions, EmcLocking::kGlobal, &global_cell) ||
        !RunIngestCell(sessions, EmcLocking::kSharded, &sharded_cell)) {
      return 1;
    }
    if (sessions == 1) {
      sharded_1 = sharded_cell.mbps();
    }
    if (sessions == 16) {
      sharded_16 = sharded_cell.mbps();
    }
    const double speedup =
        global_cell.mbps() == 0 ? 0 : sharded_cell.mbps() / global_cell.mbps();
    std::printf("%-9d %14.1f %14.1f %8.2fx\n", sessions, global_cell.mbps(),
                sharded_cell.mbps(), speedup);
    for (const IngestCell& cell : {global_cell, sharded_cell}) {
      ingest.Push(Json::Object()
                      .Set("sessions", cell.sessions)
                      .Set("locking", cell.locking == EmcLocking::kGlobal
                                          ? "global"
                                          : "sharded")
                      .Set("bytes", cell.bytes)
                      .Set("wall_cycles", static_cast<uint64_t>(cell.wall_cycles))
                      .Set("aggregate_mbps", cell.mbps()));
    }
  }
  const double scale_16 = sharded_1 == 0 ? 0 : sharded_16 / sharded_1;
  std::printf("\nsharded aggregate, 16 sessions vs 1: %.2fx (target >= 2x)\n",
              scale_16);
  if (scale_16 < 2.0) {
    std::printf("channel_throughput: FAIL 16-session aggregate below 2x\n");
    ok = false;
  }

  // -- real-thread engine: same ingest cells, record-count oracle --
  Json ingest_engine = Json::Array();
  bool engine_oracle = true;
  const char* exec_env = std::getenv("EREBOR_EXEC");
  if (exec_env == nullptr || std::string(exec_env) != "deterministic") {
    std::printf("\n-- real-thread engine ingest (host wall clock, %d vCPUs) --\n",
                kVcpus);
    std::printf("%-9s %14s %9s\n", "sessions", "wall MB/s", "oracle");
    for (const int sessions : {4, 16}) {
      IngestCell threaded, oracle;
      if (!RunIngestCell(sessions, EmcLocking::kSharded, &threaded,
                         ExecMode::kRealThreads) ||
          !RunIngestCell(sessions, EmcLocking::kSharded, &oracle,
                         ExecMode::kDeterministic)) {
        return 1;
      }
      const bool match = threaded.recv_seqs == oracle.recv_seqs;
      if (!match) {
        std::printf("channel_throughput: ORACLE MISMATCH per-session record "
                    "counts (%d sessions)\n",
                    sessions);
        engine_oracle = false;
      }
      std::printf("%-9d %14.1f %9s\n", sessions, threaded.wall_mbps(),
                  match ? "match" : "MISMATCH");
      ingest_engine.Push(Json::Object()
                             .Set("sessions", sessions)
                             .Set("locking", "sharded")
                             .Set("bytes", threaded.bytes)
                             .Set("wall_ns", threaded.wall_ns)
                             .Set("wall_mbps", threaded.wall_mbps())
                             .Set("oracle_match", match));
    }
    if (!engine_oracle) {
      ok = false;
    }
  } else {
    std::printf("\nEREBOR_EXEC=deterministic: skipping real-thread ingest\n");
  }

  Json root = Json::Object();
  root.Set("bench", "channel")
      .Set("sha_ni", accel::HasShaNi())
      .Set("avx2", accel::HasAvx2())
      .Set("pipeline", std::move(pipeline))
      .Set("ingest", std::move(ingest))
      .Set("ingest_engine", std::move(ingest_engine))
      .Set("engine_oracle_match", engine_oracle)
      .Set("speedup_64k", speedup_64k)
      .Set("sharded_scale_16_sessions", scale_16)
      .Set("pass", ok);
  std::string path;
  if (WriteBenchJson("channel", root, &path)) {
    std::printf("channel_throughput: JSON written to %s\n", path.c_str());
  }
  return ok ? 0 : 1;
}
