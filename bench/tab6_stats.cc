// Table 6: program execution statistics under full Erebor — sandbox exit rates
// (#PF / #Timer / #VE per second), EMC/s, processing time, confined/common memory,
// and one-time initialization overhead vs Native.
//
// With the event tracer on (always, here — tracing never charges simulated cycles)
// each Erebor row also carries a cross-check: the trace-measured count of EMC gate
// entries over the processing phase must equal the monitor's emc_total counter
// exactly, or the instrumentation missed (or double-counted) a crossing.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "src/common/trace.h"
#include "src/workloads/runner.h"

using namespace erebor;

int main() {
  Tracer& tracer = Tracer::Global();
  tracer.EnableFromEnv();  // honor EREBOR_TRACE_JSON
  tracer.Enable();         // the cross-check column needs the tracer regardless

  std::printf("=== Table 6: program execution statistics (full Erebor) ===\n");
  std::printf("%-12s %8s %8s %8s %8s %9s %9s %9s %9s %9s %10s\n", "program", "#PF/s",
              "#Timer/s", "#VE/s", "Total/s", "EMC/s", "Time(s)", "Conf(MB)", "Com(MB)",
              "InitOvh", "traceEMC");
  bool all_match = true;
  std::string last_summary;
  Json rows = Json::Array();
  for (auto& workload : MakePaperWorkloads()) {
    RunReport native = RunWorkload(*workload, SimMode::kNative);
    // Re-enable (== reset) so this workload's trace summary stands alone and the
    // native run's events don't bleed into the Erebor phase columns.
    tracer.Enable();
    RunReport erebor = RunWorkload(*workload, SimMode::kEreborFull);
    if (!erebor.ok || !native.ok) {
      std::printf("%-12s FAILED: %s\n", workload->name().c_str(),
                  (erebor.ok ? native.error : erebor.error).c_str());
      continue;
    }
    const double init_overhead =
        native.init_cycles > 0
            ? 100.0 * (static_cast<double>(erebor.init_cycles) / native.init_cycles - 1)
            : 0;
    const bool match = erebor.trace_emc_enter == erebor.emc_total;
    all_match = all_match && match;
    char trace_col[24];
    std::snprintf(trace_col, sizeof(trace_col), "%llu%s",
                  static_cast<unsigned long long>(erebor.trace_emc_enter),
                  match ? "=ok" : "=MISMATCH");
    std::printf("%-12s %7.1fk %7.1fk %7.1fk %7.1fk %8.1fk %9.3f %9.1f %9.1f %8.1f%% %10s\n",
                workload->name().c_str(), erebor.pf_per_sec / 1000,
                erebor.timer_per_sec / 1000, erebor.ve_per_sec / 1000,
                erebor.total_exits_per_sec / 1000, erebor.emc_per_sec / 1000,
                erebor.run_seconds, erebor.confined_bytes / 1048576.0,
                erebor.common_bytes / 1048576.0, init_overhead, trace_col);
    last_summary = erebor.trace_summary;
    rows.Push(Json::Object()
                  .Set("name", workload->name())
                  .Set("pf_per_sec", erebor.pf_per_sec)
                  .Set("timer_per_sec", erebor.timer_per_sec)
                  .Set("ve_per_sec", erebor.ve_per_sec)
                  .Set("total_exits_per_sec", erebor.total_exits_per_sec)
                  .Set("emc_per_sec", erebor.emc_per_sec)
                  .Set("run_seconds", erebor.run_seconds)
                  .Set("confined_bytes", erebor.confined_bytes)
                  .Set("common_bytes", erebor.common_bytes)
                  .Set("init_overhead_pct", init_overhead)
                  .Set("trace_emc_match", match));
  }
  std::printf("\ntrace cross-check: EMC gate entries seen by the tracer vs the "
              "monitor's emc_total counter over the processing phase: %s\n",
              all_match ? "ALL MATCH" : "MISMATCH (instrumentation bug)");
  if (!last_summary.empty()) {
    std::printf("\n--- per-phase event summary (last workload) ---\n%s",
                last_summary.c_str());
  }
  if (!tracer.json_path().empty()) {
    (void)tracer.WriteChromeTrace(tracer.json_path());
    std::printf("Chrome trace written to %s\n", tracer.json_path().c_str());
  }
  std::printf("\npaper (workloads at ~100x our scaled data sizes): #PF 0.5-1.8k/s, "
              "#Timer 0.5-2.7k/s, #VE 0.7-1.7k/s, EMC 39.5-87.6k/s, init overhead "
              "11.5-52.7%%, confined 501-1340MB, common up to 4GB\n");
  std::printf("note: PF/s runs above paper for llama/drugbank because the scaled-down "
              "runs amortize one-time cold faults over a ~100x shorter execution.\n");
  Json root = Json::Object();
  root.Set("bench", "tab6").Set("workloads", std::move(rows)).Set("trace_cross_check",
                                                                  all_match);
  std::string json_path;
  if (WriteBenchJson("tab6", root, &json_path)) {
    std::printf("bench JSON written to %s\n", json_path.c_str());
  }
  return !all_match;
}
