// Table 6: program execution statistics under full Erebor — sandbox exit rates
// (#PF / #Timer / #VE per second), EMC/s, processing time, confined/common memory,
// and one-time initialization overhead vs Native.
#include <cstdio>

#include "src/workloads/runner.h"

using namespace erebor;

int main() {
  std::printf("=== Table 6: program execution statistics (full Erebor) ===\n");
  std::printf("%-12s %8s %8s %8s %8s %9s %9s %9s %9s %9s\n", "program", "#PF/s",
              "#Timer/s", "#VE/s", "Total/s", "EMC/s", "Time(s)", "Conf(MB)", "Com(MB)",
              "InitOvh");
  for (auto& workload : MakePaperWorkloads()) {
    RunReport native = RunWorkload(*workload, SimMode::kNative);
    RunReport erebor = RunWorkload(*workload, SimMode::kEreborFull);
    if (!erebor.ok || !native.ok) {
      std::printf("%-12s FAILED: %s\n", workload->name().c_str(),
                  (erebor.ok ? native.error : erebor.error).c_str());
      continue;
    }
    const double init_overhead =
        native.init_cycles > 0
            ? 100.0 * (static_cast<double>(erebor.init_cycles) / native.init_cycles - 1)
            : 0;
    std::printf("%-12s %7.1fk %7.1fk %7.1fk %7.1fk %8.1fk %9.3f %9.1f %9.1f %8.1f%%\n",
                workload->name().c_str(), erebor.pf_per_sec / 1000,
                erebor.timer_per_sec / 1000, erebor.ve_per_sec / 1000,
                erebor.total_exits_per_sec / 1000, erebor.emc_per_sec / 1000,
                erebor.run_seconds, erebor.confined_bytes / 1048576.0,
                erebor.common_bytes / 1048576.0, init_overhead);
  }
  std::printf("\npaper (workloads at ~100x our scaled data sizes): #PF 0.5-1.8k/s, "
              "#Timer 0.5-2.7k/s, #VE 0.7-1.7k/s, EMC 39.5-87.6k/s, init overhead "
              "11.5-52.7%%, confined 501-1340MB, common up to 4GB\n");
  std::printf("note: PF/s runs above paper for llama/drugbank because the scaled-down "
              "runs amortize one-time cold faults over a ~100x shorter execution.\n");
  return 0;
}
