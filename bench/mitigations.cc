// Section 12 ablation: cost of the optional software side-channel mitigations
// (exit rate limiting, cache/TLB eviction-enforced exits, quantized output intervals)
// on a representative workload, relative to plain full-Erebor.
#include <cstdio>

#include "src/workloads/retrieval.h"
#include "src/workloads/runner.h"

using namespace erebor;

namespace {

// Run the retrieval workload under full Erebor with a given mitigation config.
// RunWorkload has no mitigation hook, so replicate its core loop via RunnerOptions by
// toggling the monitor right after boot — easiest via a thin wrapper around the
// runner's World. We approximate by running the standard runner and, separately,
// measuring each mitigation's unit costs; the end-to-end row uses the lmbench-style
// spinner harness below.
struct MitigationRow {
  const char* name;
  MitigationConfig config;
};

}  // namespace

int main() {
  std::printf("=== Side-channel mitigation ablation (section 12) ===\n");

  RetrievalParams params;
  params.num_queries = 40'000;

  const MitigationRow rows[] = {
      {"none", {}},
      {"flush-on-exit",
       {.flush_on_exit = true, .flush_cycles = 30'000}},
      {"rate-limit-100/s",
       {.rate_limit_exits = true, .max_exits_per_window = 100,
        .exit_stall_cycles = 50'000}},
      {"quantized-output",
       {.quantize_output = true, .output_interval = 50'000'000}},
  };

  std::printf("%-18s %14s %10s %12s %12s %12s\n", "mitigation", "run cycles",
              "overhead", "stalls", "flushes", "quantized");
  double baseline = 0;
  for (const MitigationRow& row : rows) {
    // A custom ablation run: boot a world, apply mitigations, run the workload
    // manually through the standard runner path.
    RetrievalWorkload workload(params);
    RunnerOptions options;
    options.mitigations = row.config;
    const RunReport report = RunWorkload(workload, SimMode::kEreborFull, options);
    if (!report.ok) {
      std::printf("%-18s FAILED: %s\n", row.name, report.error.c_str());
      continue;
    }
    if (baseline == 0) {
      baseline = static_cast<double>(report.run_cycles);
    }
    std::printf("%-18s %14.1fM %9.1f%% %12llu %12llu %12llu\n", row.name,
                report.run_cycles / 1e6, 100.0 * (report.run_cycles / baseline - 1),
                static_cast<unsigned long long>(report.mitigation_stalls),
                static_cast<unsigned long long>(report.mitigation_flushes),
                static_cast<unsigned long long>(report.mitigation_quantized));
  }
  std::printf("\nThese are the heuristic defenses the paper discusses (core isolation,\n"
              "rate limiting, eviction-enforced exits, quantized intervals); provable\n"
              "side-channel freedom needs hardware support (section 12).\n");
  return 0;
}
