// Section 11's comparison against the Unikernel-per-client alternative (e.g.
// Gramine-TDX): Erebor serves N clients with N sandboxes inside ONE CVM and one shared
// copy of the provider's common data, while the Unikernel design dedicates a whole CVM
// (with a replicated model and per-CVM OS footprint) to each client.
#include <cstdio>

#include "src/libos/libos.h"
#include "src/sim/world.h"

using namespace erebor;

int main() {
  std::printf("=== Erebor vs Unikernel-per-client (section 11) ===\n\n");

  // TCB comparison (paper: Erebor monitor <5k LoC vs 57k LoC Gramine-TDX kernel).
  std::printf("TCB: Erebor monitor delegates the OS to the untrusted kernel and only\n"
              "validates; a Unikernel must *be* the OS inside the TCB.\n");
  std::printf("  paper figures: Erebor monitor <5k LoC vs Gramine-TDX kernel 57k LoC\n\n");

  // Memory/tenancy comparison, measured on the simulation.
  const uint64_t model_bytes = 24ull << 20;
  const uint64_t confined_bytes = 3ull << 20;
  const uint64_t unikernel_base = 12ull << 20;  // per-CVM kernel+firmware footprint

  WorldConfig config;
  config.mode = SimMode::kEreborFull;
  // The tenancy sweep launches more sandboxes than PKS's 11-domain budget.
  config.isolation = IsolationKind::kTmeMk;
  config.machine.memory_frames = 96 * 1024;
  World world(config);
  if (!world.Boot().ok()) {
    std::printf("boot failed\n");
    return 1;
  }
  auto region = world.monitor()->CreateCommonRegion("model", model_bytes);
  if (!region.ok()) {
    std::printf("region failed\n");
    return 1;
  }

  std::printf("%-8s %22s %24s %8s\n", "clients", "Erebor total (MB)",
              "Unikernel total (MB)", "ratio");
  for (const int n : {1, 4, 8, 16}) {
    // Erebor: launch n sandboxes sharing the model.
    uint64_t erebor_bytes = model_bytes;
    int launched = 0;
    for (int i = launched; i < n; ++i) {
      SandboxSpec spec;
      spec.name = "client" + std::to_string(n) + "_" + std::to_string(i);
      spec.confined_budget_bytes = confined_bytes + (1 << 20);
      auto env = std::make_shared<LibosEnv>(
          LibosManifest{.name = spec.name, .heap_bytes = confined_bytes},
          LibosBackend::kSandboxed);
      bool up = false;
      auto sandbox = world.LaunchSandboxProcess(
          spec.name, spec, [env, &up](SyscallContext& ctx) -> StepOutcome {
            if (!env->initialized()) {
              (void)env->Initialize(ctx);
              up = true;
            }
            return StepOutcome::kExited;
          });
      if (!sandbox.ok()) {
        std::printf("launch failed at %d: %s\n", i,
                    sandbox.status().ToString().c_str());
        return 1;
      }
      (void)world.monitor()->AttachCommon(world.machine().cpu(0), **sandbox,
                                          (*region)->id, kLibosCommonBase, false);
      (void)world.RunUntil([&] { return up; });
      erebor_bytes += (*sandbox)->confined_bytes;
    }
    // Unikernel: n CVMs, each with its own OS image + a full model replica + the
    // client working set.
    const uint64_t unikernel_bytes =
        static_cast<uint64_t>(n) * (unikernel_base + model_bytes + confined_bytes);
    std::printf("%-8d %22.1f %24.1f %7.1fx\n", n, erebor_bytes / 1048576.0,
                unikernel_bytes / 1048576.0,
                static_cast<double>(unikernel_bytes) / erebor_bytes);
  }
  std::printf("\npaper: a single host supports only ~64 concurrent CVMs; Erebor "
              "multiplexes many sandboxes per CVM with one shared instance\n");
  return 0;
}
