// Ablation for the MMU-update submission machinery on the MMU-heavy LMBench
// benchmarks (fork/mmap/pagefault — Fig8's worst bars):
//
//   per-op   one EMC gate crossing per PTE store (the paper's measured config)
//   batched  monitor-validated PTE-write batches (section 9.1's remark)
//   ring     submission/completion rings: descriptors staged in shared memory,
//            one doorbell crossing per drained window, demand faults served
//            with a fault-around window
//
// Also runs a ring-vs-oracle burst: the same multi-vCPU ring workload on the
// real-thread engine and the deterministic engine must agree bit-for-bit on
// monitor counters and per-vCPU charged cycles (set EREBOR_EXEC=deterministic
// to skip the threaded half).
//
// Iterations come from EREBOR_BENCH_ITERS (default 500). With
// EREBOR_BENCH_JSON set, per-bench cycles/op for all four configurations land
// in BENCH_batched_mmu.json.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "src/kernel/mmu_ring.h"
#include "src/sim/world.h"
#include "src/workloads/lmbench.h"

using namespace erebor;

namespace {

uint64_t IterationsFromEnv() {
  const char* env = std::getenv("EREBOR_BENCH_ITERS");
  if (env == nullptr) {
    return 500;
  }
  const long parsed = std::strtol(env, nullptr, 10);
  return parsed > 0 ? static_cast<uint64_t>(parsed) : 500;
}

// ---- Ring oracle burst ----------------------------------------------------
//
// Drives the rings directly (frame-reclaim descriptors against disjoint
// per-vCPU frame ranges) from every vCPU at once. Under kRealThreads the
// doorbells contend on real locks; under kDeterministic the same burst is the
// oracle. Both must agree on every simulated observable.
struct RingOracleCell {
  MonitorCounters counters{};
  std::vector<uint64_t> cpu_cycles;
};

constexpr int kOracleVcpus = 4;
constexpr int kOracleRounds = 32;
constexpr int kOracleReclaimsPerRound = 24;

bool RunRingOracleCell(ExecMode exec, RingOracleCell* out) {
  WorldConfig config;
  config.mode = SimMode::kEreborFull;
  config.exec = exec;
  config.machine.num_cpus = kOracleVcpus;
  config.machine.memory_frames = 32 * 1024;
  World world(config);
  if (!world.Boot().ok()) {
    std::printf("batched_mmu: oracle boot failed (%s)\n", ExecModeName(exec));
    return false;
  }
  EreborMonitor* monitor = world.monitor();
  monitor->EnableMmuRings(true);
  monitor->SetEmcLocking(EmcLocking::kSharded);
  monitor->SetLockContention(false);
  LockAudit::Global().Reset();

  Machine& machine = world.machine();
  // Reclaim targets: untouched normal frames at the top of memory, disjoint
  // per vCPU so the sharded frame locks actually run in parallel.
  const uint64_t frames = machine.memory().num_frames();
  const uint64_t base = frames - kOracleVcpus * kOracleReclaimsPerRound - 16;

  std::vector<Cycles> start(kOracleVcpus);
  for (int c = 0; c < kOracleVcpus; ++c) {
    start[c] = machine.cpu(c).cycles().now();
  }
  const Status st = world.RunOnThreads([&](int cpu) -> Status {
    EmcRing* ring = world.privops().mmu_ring(cpu);
    if (ring == nullptr) {
      return InternalError("ring not enabled for vCPU");
    }
    for (int round = 0; round < kOracleRounds; ++round) {
      MmuRingBatch batch(ring);
      for (int i = 0; i < kOracleReclaimsPerRound; ++i) {
        if (!batch.StageFrameReclaim(base + cpu * kOracleReclaimsPerRound + i)) {
          return InternalError("oracle burst overflowed the SQ");
        }
      }
      batch.Publish();
      EREBOR_RETURN_IF_ERROR(world.privops().RingDoorbell(machine.cpu(cpu)));
      int32_t first_error = 0;
      batch.Reap(&first_error);
      if (first_error != 0) {
        return InternalError("oracle burst descriptor refused");
      }
    }
    return OkStatus();
  });
  if (!st.ok()) {
    std::printf("batched_mmu: oracle burst failed (%s): %s\n", ExecModeName(exec),
                st.ToString().c_str());
    return false;
  }
  if (LockAudit::Global().violations() != 0 || !monitor->AuditInvariants().ok()) {
    std::printf("batched_mmu: lock/invariant audit failed (%s)\n",
                ExecModeName(exec));
    return false;
  }
  out->counters = monitor->counters();
  out->cpu_cycles.clear();
  for (int c = 0; c < kOracleVcpus; ++c) {
    out->cpu_cycles.push_back(
        static_cast<uint64_t>(machine.cpu(c).cycles().now() - start[c]));
  }
  return true;
}

}  // namespace

int main() {
  const uint64_t iterations = IterationsFromEnv();
  std::printf("=== Batched/ring MMU updates ablation (%llu iterations) ===\n",
              static_cast<unsigned long long>(iterations));
  std::printf("%-10s %13s %13s %13s %13s %9s %9s\n", "bench", "native c/op",
              "per-op c/op", "batched c/op", "ring c/op", "rec.batch", "rec.ring");

  Json benches = Json::Array();
  bool ok = true;
  bool ring_majority = true;
  for (const std::string name : {"fork", "mmap", "pagefault"}) {
    const auto native = RunLmbench(name, SimMode::kNative, iterations);
    const auto plain =
        RunLmbench(name, SimMode::kEreborFull, iterations, MmuUpdateMode::kPerOp);
    const auto batched =
        RunLmbench(name, SimMode::kEreborFull, iterations, MmuUpdateMode::kBatched);
    const auto ring =
        RunLmbench(name, SimMode::kEreborFull, iterations, MmuUpdateMode::kRing);
    if (!native.ok() || !plain.ok() || !batched.ok() || !ring.ok()) {
      std::printf("%-10s FAILED\n", name.c_str());
      ok = false;
      continue;
    }
    // Fraction of the Erebor-added cost recovered by each submission scheme.
    const double added = plain->cycles_per_op() - native->cycles_per_op();
    const double rec_batched =
        added > 0 ? (plain->cycles_per_op() - batched->cycles_per_op()) / added : 0;
    const double rec_ring =
        added > 0 ? (plain->cycles_per_op() - ring->cycles_per_op()) / added : 0;
    std::printf("%-10s %13.0f %13.0f %13.0f %13.0f %8.0f%% %8.0f%%\n", name.c_str(),
                native->cycles_per_op(), plain->cycles_per_op(),
                batched->cycles_per_op(), ring->cycles_per_op(), 100 * rec_batched,
                100 * rec_ring);
    if (rec_ring < 0.5) {
      std::printf("%-10s FAIL: ring recovers %.0f%% of the added cost (target > 50%%)\n",
                  name.c_str(), 100 * rec_ring);
      ring_majority = false;
    }
    benches.Push(Json::Object()
                     .Set("name", name)
                     .Set("native_cyc_per_op", native->cycles_per_op())
                     .Set("per_op_cyc_per_op", plain->cycles_per_op())
                     .Set("batched_cyc_per_op", batched->cycles_per_op())
                     .Set("ring_cyc_per_op", ring->cycles_per_op())
                     .Set("per_op_emc", plain->emc_count)
                     .Set("batched_emc", batched->emc_count)
                     .Set("ring_emc", ring->emc_count)
                     .Set("recovered_batched", rec_batched)
                     .Set("recovered_ring", rec_ring));
  }
  ok = ok && ring_majority;

  // ---- Ring oracle: threaded vs deterministic ----
  bool oracle_match = true;
  bool oracle_ran = false;
  const char* exec_env = std::getenv("EREBOR_EXEC");
  if (exec_env == nullptr || std::string(exec_env) != "deterministic") {
    RingOracleCell threaded, oracle;
    if (!RunRingOracleCell(ExecMode::kRealThreads, &threaded) ||
        !RunRingOracleCell(ExecMode::kDeterministic, &oracle)) {
      ok = false;
    } else {
      oracle_ran = true;
      oracle_match =
          threaded.cpu_cycles == oracle.cpu_cycles &&
          std::memcmp(&threaded.counters, &oracle.counters,
                      sizeof(MonitorCounters)) == 0;
      std::printf("\nring oracle (%d vCPUs, %d doorbells/vCPU): %s\n", kOracleVcpus,
                  kOracleRounds, oracle_match ? "threaded == deterministic"
                                              : "MISMATCH");
      if (!oracle_match) {
        std::printf("  emc_total threaded=%llu oracle=%llu\n",
                    static_cast<unsigned long long>(threaded.counters.emc_total),
                    static_cast<unsigned long long>(oracle.counters.emc_total));
        ok = false;
      }
    }
  } else {
    std::printf("\nEREBOR_EXEC=deterministic: skipping threaded ring oracle\n");
  }

  std::printf("\nNote: fork clones a 32-page image; the ring path stages the whole "
              "clone as one submission window and crosses the EMC gate once per "
              "doorbell, while fault-around serves neighbouring demand faults "
              "without further #PFs.\n");

  Json root = Json::Object();
  root.Set("bench", "batched_mmu")
      .Set("iterations", iterations)
      .Set("benches", std::move(benches))
      .Set("ring_majority_recovery", ring_majority)
      .Set("ring_oracle_ran", oracle_ran)
      .Set("ring_oracle_match", oracle_match)
      .Set("pass", ok);
  std::string path;
  if (WriteBenchJson("batched_mmu", root, &path)) {
    std::printf("batched_mmu: JSON written to %s\n", path.c_str());
  }
  return ok ? 0 : 1;
}
