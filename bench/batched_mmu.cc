// Ablation for the batched-MMU-update optimization the paper points to in section 9.1
// ("overhead could be lowered if batched MMU update is enabled [Nested Kernel]"):
// re-runs the MMU-heavy LMBench benchmarks with per-entry EMCs vs one gated batch.
#include <cstdio>

#include "src/workloads/lmbench.h"

using namespace erebor;

int main() {
  std::printf("=== Batched MMU updates ablation (section 9.1) ===\n");
  std::printf("%-10s %14s %16s %16s %10s\n", "bench", "native cyc/op", "erebor cyc/op",
              "batched cyc/op", "recovered");
  for (const std::string name : {"fork", "mmap", "pagefault"}) {
    const auto native = RunLmbench(name, SimMode::kNative, 500);
    const auto plain = RunLmbench(name, SimMode::kEreborFull, 500, /*batched=*/false);
    const auto batched = RunLmbench(name, SimMode::kEreborFull, 500, /*batched=*/true);
    if (!native.ok() || !plain.ok() || !batched.ok()) {
      std::printf("%-10s FAILED\n", name.c_str());
      continue;
    }
    // Fraction of the Erebor-added cost recovered by batching.
    const double added = plain->cycles_per_op() - native->cycles_per_op();
    const double recovered =
        added > 0 ? (plain->cycles_per_op() - batched->cycles_per_op()) / added : 0;
    std::printf("%-10s %14.0f %16.0f %16.0f %9.0f%%\n", name.c_str(),
                native->cycles_per_op(), plain->cycles_per_op(),
                batched->cycles_per_op(), 100 * recovered);
  }
  std::printf("\nNote: fork clones a 32-page image; batching amortizes the per-PTE EMC "
              "gate crossings into one validated batch per range.\n");
  return 0;
}
