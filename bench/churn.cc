// Fleet-churn bench (ROADMAP item 2 follow-on): warm starts at fleet scale.
//
// One template sandbox is booted, frozen (SnapshotTemplate) and cloned 1k+
// times copy-on-write. The bench reports:
//
//   - launches/sec: simulated clone-launch rate (SpawnProcess + CloneFromTemplate,
//     whose cost is one monitor PTE op per shared page + one EMC dispatch) against
//     the 10k/sec target, plus the cold-boot baseline for the speedup;
//   - bounded residency: dormant clones pin zero confined frames — the only
//     per-clone frames are page-table pages — so 1k+ live sandboxes share one
//     template arena;
//   - real promotions: a handful of clones are promoted (ActivateClone allocates
//     the deferred isolation domain), handshaken over the attested channel through
//     the untrusted proxy, and served; their CoW breaks are counted;
//   - quarantine churn: promoted clones are quarantined and replaced from the
//     dormant pool, template accounting intact;
//   - invariants: every family audited clean at each phase boundary;
//   - a small FleetSupervisor run with warm_clone_pool on: a hostile tenant forces
//     quarantine-and-replace, the replacement promoting a pooled clone.
//
// With EREBOR_BENCH_JSON set, everything lands in BENCH_churn.json.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_json.h"
#include "src/client/client.h"
#include "src/common/metrics.h"
#include "src/fleet/supervisor.h"
#include "src/libos/libos.h"
#include "src/sim/world.h"

namespace erebor {
namespace {

constexpr int kCloneStorm = 1100;       // dormant clones (live sandboxes >= 1k)
constexpr int kPromotions = 4;          // real promote+handshake+serve cycles
constexpr int kQuarantines = 2;         // quarantine-and-replace churn
constexpr uint64_t kSeed = 1234;
constexpr uint64_t kHeapBytes = 1 << 20;
constexpr double kGhz = 2.1e9;
constexpr double kLaunchTarget = 10'000.0;  // simulated launches/sec

struct CloneSlot {
  Sandbox* sandbox = nullptr;
  std::shared_ptr<std::atomic<bool>> promoted;
  std::shared_ptr<LibosEnv> env;
};

// Parked-until-promoted echo clone, mirroring the fleet's standby program.
ProgramFn CloneProgram(CloneSlot& slot, std::shared_ptr<LibosEnv> tmpl_env) {
  auto env = slot.env;
  auto promoted = slot.promoted;
  return [env, promoted, tmpl_env](SyscallContext& ctx) -> StepOutcome {
    if (!promoted->load(std::memory_order_relaxed)) {
      return StepOutcome::kYield;  // dormant: no fd, no memory, no domain
    }
    if (!env->initialized()) {
      env->AdoptTemplateState(*tmpl_env);
      if (!env->AttachClone(ctx).ok()) {
        return StepOutcome::kExited;
      }
      return StepOutcome::kYield;
    }
    auto input = env->RecvInput(ctx, 64 * 1024);
    if (!input.ok()) {
      return StepOutcome::kYield;
    }
    Bytes out = *input;
    for (uint8_t& b : out) {
      b ^= 0x5A;
    }
    (void)env->SendOutput(ctx, out);
    return StepOutcome::kYield;
  };
}

// Attested handshake + sealed record + verified echo over the proxy.
bool PromoteAndServe(World& world, CloneSlot& slot, uint64_t seed) {
  if (!world.monitor()->ActivateClone(world.machine().cpu(0), *slot.sandbox).ok()) {
    return false;
  }
  slot.promoted->store(true, std::memory_order_relaxed);
  RemoteClient client(world.MakeTrustAnchors(), seed);
  world.ClientSend(client.MakeHello(slot.sandbox->id));
  Bytes payload(4096, 0x33);
  Bytes expected = payload;
  for (uint8_t& b : expected) {
    b ^= 0x5A;
  }
  bool got = false;
  const auto drain = [&] {
    while (true) {
      auto wire = world.ClientReceive();
      if (!wire.ok()) {
        return;
      }
      if (!client.established()) {
        auto packet = Packet::Deserialize(*wire);
        if (packet.ok() && packet->type == PacketType::kServerHello) {
          (void)client.ProcessServerHello(*wire);
        }
        continue;
      }
      auto opened = client.OpenResult(*wire);
      if (opened.ok() && *opened == expected) {
        got = true;
      }
    }
  };
  (void)world.RunUntil([&] {
    drain();
    return client.established();
  });
  if (!client.established()) {
    return false;
  }
  world.ClientSend(client.SealData(payload));
  (void)world.RunUntil([&] {
    drain();
    return got;
  });
  return got;
}

bool CheckInvariants(World& world, uint64_t* checks, uint64_t* violations,
                     std::string* first_error) {
  InvariantChecker checker(world.monitor());
  const Status st = checker.CheckAll();
  ++*checks;
  if (!st.ok()) {
    ++*violations;
    if (first_error->empty()) {
      *first_error = st.ToString();
    }
    return false;
  }
  return true;
}

}  // namespace
}  // namespace erebor

int main() {
  using namespace erebor;
  bool ok = true;
  uint64_t invariant_checks = 0;
  uint64_t invariant_violations = 0;
  std::string first_error;

  WorldConfig config;
  config.mode = SimMode::kEreborFull;
  // PKS's 11 domains cannot hold a 1k-clone fleet's promotions; model TME-MK.
  config.isolation = IsolationKind::kTmeMk;
  config.machine.memory_frames = 128 * 1024;
  World world(config);
  if (!world.Boot().ok() || !world.StartProxy().ok()) {
    std::printf("churn: boot failed\n");
    return 1;
  }
  Machine& machine = world.machine();
  FrameTable& frames = world.monitor()->frame_table();

  // -- template boot + freeze --
  auto tmpl_env = std::make_shared<LibosEnv>(
      LibosManifest{.name = "tmpl", .heap_bytes = kHeapBytes},
      LibosBackend::kSandboxed);
  bool tmpl_up = false;
  SandboxSpec tmpl_spec;
  tmpl_spec.name = "tmpl";
  tmpl_spec.confined_budget_bytes = kHeapBytes + (2 << 20);
  auto tmpl = world.LaunchSandboxProcess(
      "tmpl", tmpl_spec, [tmpl_env, &tmpl_up](SyscallContext& ctx) -> StepOutcome {
        if (tmpl_up) {
          return StepOutcome::kYield;  // parked: pages are frozen read-only
        }
        if (!tmpl_env->initialized() && !tmpl_env->Initialize(ctx).ok()) {
          return StepOutcome::kExited;
        }
        tmpl_up = true;
        return StepOutcome::kYield;
      });
  if (!tmpl.ok() || !world.RunUntil([&] { return tmpl_up; }).ok() || !tmpl_up ||
      !world.monitor()->SnapshotTemplate(machine.cpu(0), **tmpl).ok()) {
    std::printf("churn: template freeze failed\n");
    return 1;
  }
  const uint64_t template_frames = frames.CountType(FrameType::kSandboxTemplate);

  // -- cold-boot baseline (one full bring-up for the speedup denominator) --
  auto cold_env = std::make_shared<LibosEnv>(
      LibosManifest{.name = "cold", .heap_bytes = kHeapBytes},
      LibosBackend::kSandboxed);
  bool cold_up = false;
  SandboxSpec cold_spec = tmpl_spec;
  cold_spec.name = "cold";
  const Cycles cold_start = machine.TotalCycles();
  auto cold = world.LaunchSandboxProcess(
      "cold", cold_spec, [cold_env, &cold_up](SyscallContext& ctx) -> StepOutcome {
        if (!cold_env->initialized()) {
          if (!cold_env->Initialize(ctx).ok()) {
            return StepOutcome::kExited;
          }
          cold_up = true;
        }
        return StepOutcome::kYield;
      });
  if (!cold.ok() || !world.RunUntil([&] { return cold_up; }).ok() || !cold_up) {
    std::printf("churn: cold baseline failed\n");
    return 1;
  }
  const Cycles cold_cycles = machine.TotalCycles() - cold_start;

  // -- clone storm: 1k+ dormant warm clones --
  std::vector<CloneSlot> slots(kCloneStorm);
  const uint64_t confined_before = frames.CountType(FrameType::kSandboxConfined);
  const uint64_t ptp_before = frames.CountType(FrameType::kPtp);
  const Cycles storm_start = machine.TotalCycles();
  for (int i = 0; i < kCloneStorm; ++i) {
    CloneSlot& slot = slots[static_cast<size_t>(i)];
    slot.promoted = std::make_shared<std::atomic<bool>>(false);
    slot.env = std::make_shared<LibosEnv>(
        LibosManifest{.name = "clone", .heap_bytes = kHeapBytes},
        LibosBackend::kSandboxed);
    SandboxSpec spec = tmpl_spec;
    spec.name = "clone-" + std::to_string(i);
    auto sandbox = world.LaunchCloneProcess(spec.name, **tmpl, spec,
                                            CloneProgram(slot, tmpl_env));
    if (!sandbox.ok()) {
      std::printf("churn: clone %d failed: %s\n", i,
                  sandbox.status().ToString().c_str());
      return 1;
    }
    slot.sandbox = *sandbox;
  }
  const Cycles storm_cycles = machine.TotalCycles() - storm_start;
  const double cycles_per_clone =
      static_cast<double>(storm_cycles) / kCloneStorm;
  const double launches_per_sec = kGhz / cycles_per_clone;
  const double clone_speedup = static_cast<double>(cold_cycles) / cycles_per_clone;
  const uint64_t dormant_confined =
      frames.CountType(FrameType::kSandboxConfined) - confined_before;
  const uint64_t ptp_per_clone =
      (frames.CountType(FrameType::kPtp) - ptp_before) / kCloneStorm;
  ok &= CheckInvariants(world, &invariant_checks, &invariant_violations,
                        &first_error);

  std::printf("=== Fleet churn (warm clones at scale) ===\n");
  std::printf("template frames:     %llu (%.1f MB shared by every clone)\n",
              static_cast<unsigned long long>(template_frames),
              template_frames * 4096.0 / 1048576);
  std::printf("clones launched:     %d\n", kCloneStorm);
  std::printf("cycles/clone:        %.0f (cold boot: %llu -> %.0fx speedup)\n",
              cycles_per_clone, static_cast<unsigned long long>(cold_cycles),
              clone_speedup);
  std::printf("launches/sec:        %.0f (target %.0f)\n", launches_per_sec,
              kLaunchTarget);
  std::printf("dormant residency:   %llu confined frames, %llu page-table frames "
              "per clone\n",
              static_cast<unsigned long long>(dormant_confined),
              static_cast<unsigned long long>(ptp_per_clone));
  ok &= launches_per_sec >= kLaunchTarget;
  // Bounded residency: a dormant clone pins no confined frames at all.
  ok &= dormant_confined == 0;

  // -- real promotions: domain allocation + attested handshake + serve --
  uint64_t cow_broken = 0;
  int promoted_ok = 0;
  for (int i = 0; i < kPromotions; ++i) {
    CloneSlot& slot = slots[static_cast<size_t>(i)];
    if (PromoteAndServe(world, slot, kSeed + static_cast<uint64_t>(i))) {
      ++promoted_ok;
      cow_broken += slot.sandbox->cow_broken_pages;
    }
  }
  ok &= promoted_ok == kPromotions;
  ok &= CheckInvariants(world, &invariant_checks, &invariant_violations,
                        &first_error);
  std::printf("promotions:          %d/%d served+verified, %llu CoW pages broken "
              "(%.1f/page budget of %llu template pages)\n",
              promoted_ok, kPromotions,
              static_cast<unsigned long long>(cow_broken),
              static_cast<double>(cow_broken) / std::max(promoted_ok, 1),
              static_cast<unsigned long long>(template_frames));
  // CoW stays sparse: serving breaks the io pages, not the whole arena.
  ok &= promoted_ok == 0 ||
        cow_broken < static_cast<uint64_t>(promoted_ok) * template_frames / 4;

  // -- quarantine-and-replace churn --
  int replaced_ok = 0;
  for (int i = 0; i < kQuarantines; ++i) {
    CloneSlot& victim = slots[static_cast<size_t>(i)];
    if (!world.monitor()
             ->sandboxes()
             .Quarantine(machine.cpu(0), *victim.sandbox, "churn bench")
             .ok()) {
      continue;
    }
    // Refill: promote a fresh clone from the dormant pool in its place.
    CloneSlot& refill = slots[static_cast<size_t>(kPromotions + i)];
    if (PromoteAndServe(world, refill, kSeed ^ (0xD00Du + static_cast<uint64_t>(i)))) {
      ++replaced_ok;
    }
  }
  ok &= replaced_ok == kQuarantines;
  ok &= CheckInvariants(world, &invariant_checks, &invariant_violations,
                        &first_error);
  std::printf("quarantine churn:    %d/%d quarantined and replaced from the pool\n",
              replaced_ok, kQuarantines);
  std::printf("live clones on tmpl: %u\n", (*tmpl)->live_clones);

  // -- fleet supervisor with the warm pool on: hostile tenant forces a
  //    quarantine-and-replace that promotes a pooled clone --
  const uint64_t pool_promotions_before =
      MetricsRegistry::Global().Value("fleet.pool.promotions");
  FleetConfig fleet_config;
  fleet_config.num_vcpus = 2;
  fleet_config.num_tenants = 4;
  fleet_config.standby_pool = 2;
  fleet_config.requests_per_tenant = 6;
  fleet_config.seed = kSeed;
  fleet_config.isolation = IsolationKind::kTmeMk;
  fleet_config.warm_clone_pool = true;
  fleet_config.attacks.assign(4, AttackClass::kNone);
  fleet_config.attacks[1] = AttackClass::kGateProbe;
  FleetSupervisor fleet(fleet_config);
  bool fleet_ok = fleet.Start().ok() && fleet.RunServing().ok();
  FleetReport fleet_report;
  if (fleet_ok) {
    fleet_report = fleet.Report();
    fleet_ok = fleet_report.ok && fleet_report.containment &&
               fleet_report.invariant_violations == 0 &&
               fleet_report.replacements >= 1;
  }
  const uint64_t pool_promotions =
      MetricsRegistry::Global().Value("fleet.pool.promotions") -
      pool_promotions_before;
  fleet_ok &= pool_promotions >= 1;
  ok &= fleet_ok;
  std::printf("fleet pool mode:     %s (replacements %llu, pool promotions %llu, "
              "containment %s)\n",
              fleet_ok ? "ok" : "FAIL",
              static_cast<unsigned long long>(fleet_report.replacements),
              static_cast<unsigned long long>(pool_promotions),
              fleet_report.containment ? "yes" : "no");

  if (invariant_violations != 0) {
    std::printf("churn: FAIL invariants: %s\n", first_error.c_str());
  }
  ok &= invariant_violations == 0;

  Json root = Json::Object();
  root.Set("bench", "churn")
      .Set("clones_launched", kCloneStorm)
      .Set("live_sandboxes", kCloneStorm)
      .Set("template_frames", template_frames)
      .Set("cold_boot_cycles", static_cast<uint64_t>(cold_cycles))
      .Set("cycles_per_clone", cycles_per_clone)
      .Set("launches_per_sec", launches_per_sec)
      .Set("launch_target", kLaunchTarget)
      .Set("clone_speedup", clone_speedup)
      .Set("dormant_confined_frames", dormant_confined)
      .Set("ptp_frames_per_clone", ptp_per_clone)
      .Set("promotions", promoted_ok)
      .Set("cow_broken_pages", cow_broken)
      .Set("quarantine_replacements", replaced_ok)
      .Set("fleet_pool_promotions", pool_promotions)
      .Set("fleet_replacements", fleet_report.replacements)
      .Set("fleet_containment", fleet_report.containment)
      .Set("invariant_checks", invariant_checks)
      .Set("invariant_violations", invariant_violations)
      .Set("pass", ok);
  std::string path;
  if (WriteBenchJson("churn", root, &path)) {
    std::printf("churn: JSON written to %s\n", path.c_str());
  }
  return ok ? 0 : 1;
}
