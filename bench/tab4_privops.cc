// Table 4: OS privileged-instruction overheads (CPU cycles), Native vs Erebor.
// MMU = PTE update; CR = CR0/3 write; SMAP = stac window; IDT = lidt; MSR = wrmsr;
// GHCI = tdcall.tdreport (attestation report generation).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "src/libos/libos.h"
#include "src/sim/world.h"

namespace erebor {
namespace {

std::map<std::string, double> g_native;
std::map<std::string, double> g_erebor;

std::unique_ptr<World> MakeWorld(SimMode mode) {
  WorldConfig config;
  config.mode = mode;
  auto world = std::make_unique<World>(config);
  if (!world->Boot().ok()) {
    std::abort();
  }
  return world;
}

// Measures one privileged operation executed `ops` times through PrivilegedOps.
template <typename Fn>
double MeasureOp(World& world, Fn&& op, uint64_t ops) {
  Cpu& cpu = world.machine().cpu(0);
  const Cycles before = cpu.cycles().now();
  for (uint64_t i = 0; i < ops; ++i) {
    op(world, cpu);
  }
  return static_cast<double>(cpu.cycles().now() - before) / ops;
}

void RunOne(benchmark::State& state, const std::string& name, SimMode mode,
            const std::function<void(World&, Cpu&)>& op) {
  auto world = MakeWorld(mode);
  // Prepare a PTP target for MMU ops.
  if (name == "MMU") {
    Cpu& cpu = world->machine().cpu(0);
    const auto ptp = world->kernel().pool().Alloc();
    (void)world->privops().RegisterPtp(cpu, *ptp, AddrOf(*ptp));
    world->machine().cpu(0).gprs().reg[0] = AddrOf(*ptp);  // stash for the op
  }
  uint64_t ops = 0;
  for (auto _ : state) {
    ++ops;
  }
  const double cycles = MeasureOp(*world, op, std::max<uint64_t>(ops, 1));
  state.counters["sim_cycles"] = cycles;
  (mode == SimMode::kNative ? g_native : g_erebor)[name] = cycles;
}

std::function<void(World&, Cpu&)> OpFor(const std::string& name) {
  if (name == "MMU") {
    return [](World& world, Cpu& cpu) {
      (void)world.privops().WritePte(cpu, cpu.gprs().reg[0], 0);
    };
  }
  if (name == "CR") {
    return [](World& world, Cpu& cpu) {
      (void)world.privops().WriteCr(cpu, 0, cpu.cr0());
    };
  }
  if (name == "SMAP") {
    return [](World& world, Cpu& cpu) {
      // The usercopy window (stac/clac pair; Erebor: monitor-emulated user copy).
      uint8_t byte = 0;
      (void)world.privops().CopyFromUser(cpu, layout::kUserBase, &byte, 0);
    };
  }
  if (name == "IDT") {
    return [](World& world, Cpu& cpu) {
      (void)world.privops().LoadIdt(cpu, &world.kernel().kernel_idt());
    };
  }
  if (name == "MSR") {
    return [](World& world, Cpu& cpu) {
      (void)world.privops().WriteMsr(cpu, msr::kIa32ApicTimer, 42);
    };
  }
  // GHCI: tdcall.tdreport. Natively the kernel can request it; under Erebor only the
  // monitor can, so measure the monitor-internal path via the model totals.
  return [](World& world, Cpu& cpu) {
    if (world.erebor_active()) {
      cpu.cycles().Charge(cpu.costs().EreborTdreportTotal());
    } else {
      uint64_t args[2] = {AddrOf(layout::kGeneralPoolFirstFrame),
                          AddrOf(layout::kGeneralPoolFirstFrame) + 512};
      (void)world.privops().Tdcall(cpu, tdcall_leaf::kTdReport, args, 2);
    }
  };
}

void RegisterAll() {
  static const char* kOps[] = {"MMU", "CR", "SMAP", "IDT", "MSR", "GHCI"};
  for (const char* op : kOps) {
    for (const SimMode mode : {SimMode::kNative, SimMode::kEreborFull}) {
      const std::string name =
          std::string("BM_") + op + (mode == SimMode::kNative ? "_Native" : "_Erebor");
      benchmark::RegisterBenchmark(
          name.c_str(),
          [op = std::string(op), mode](benchmark::State& state) {
            RunOne(state, op, mode, OpFor(op));
          })
          ->Iterations(500);
    }
  }
}

void PrintTable4() {
  struct PaperRow {
    double native;
    double erebor;
  };
  const std::map<std::string, PaperRow> paper = {
      {"MMU", {23, 1345}},   {"CR", {294, 1593}},  {"SMAP", {62, 1291}},
      {"IDT", {260, 1369}},  {"MSR", {364, 1613}}, {"GHCI", {126806, 128081}},
  };
  std::printf("\n=== Table 4: privileged-operation costs (CPU cycles) ===\n");
  std::printf("%-6s %12s %16s %10s | %12s %12s\n", "Op", "Native", "Erebor", "Times",
              "paperNative", "paperErebor");
  for (const auto& [name, row] : paper) {
    const double native = g_native.count(name) ? g_native[name] : 0;
    const double erebor = g_erebor.count(name) ? g_erebor[name] : 0;
    std::printf("%-6s %12.0f %16.0f %9.2fx | %12.0f %12.0f\n", name.c_str(), native,
                erebor, native > 0 ? erebor / native : 0, row.native, row.erebor);
  }
}

}  // namespace
}  // namespace erebor

int main(int argc, char** argv) {
  erebor::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  erebor::PrintTable4();
  return 0;
}
